package whirlpool

import (
	"errors"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lru"
	"repro/internal/pattern"
	"repro/internal/score"
	"repro/internal/synopsis"
)

// Synopsis is an annotated structure synopsis of a database — a strong
// dataguide with per-path counts and per-(path, tag) descendant
// statistics. It answers the component-predicate statistics queries
// that scorer and plan construction otherwise compute with index scans
// (exactly — the synopsis is not an estimate), so planning cost is
// independent of document size and, on a sharded corpus, requires no
// per-shard fan-out.
type Synopsis = synopsis.Synopsis

// QueryPlan is a compiled, cacheable query plan: server plans, a
// scorer, per-server routing statistics and a cost-based static server
// order. See Planner.
type QueryPlan = core.Plan

var errNilQuery = errors.New("whirlpool: nil query")

// CanonicalQueryKey returns the canonical cache identity of a query's
// shape: queries differing only in predicate declaration order share a
// key, structurally distinct queries never do.
func CanonicalQueryKey(q *Query) string { return pattern.CanonicalKey(q) }

// Synopsis returns the database's structure synopsis, built on first
// use and cached.
func (db *Database) Synopsis() *Synopsis {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.syn == nil {
		db.syn = synopsis.Build(db.doc)
	}
	return db.syn
}

// Synopsis returns the corpus synopsis, aggregated from per-shard
// synopses on first use and cached. It is identical to a whole-document
// build.
func (sdb *ShardedDatabase) Synopsis() *Synopsis { return sdb.corpus.Synopsis() }

// Planner compiles and caches query plans. Plans are keyed on the
// query's canonical shape (predicate order ignored) plus the relaxation
// mode and normalization, so textual variants of one query share a
// single compiled plan; construction is deduplicated in flight. All
// methods are safe for concurrent use.
type Planner struct {
	ix    index.Source
	syn   *Synopsis
	cache *lru.Cache[string, *QueryPlan]

	hits   atomic.Int64
	misses atomic.Int64
}

// NewPlanner returns a planner over the database bounded to capacity
// cached plans.
func (db *Database) NewPlanner(capacity int) *Planner {
	return &Planner{ix: db.ix, syn: db.Synopsis(), cache: lru.New[string, *QueryPlan](capacity)}
}

// NewPlanner returns a planner over the sharded corpus bounded to
// capacity cached plans. Its plans pre-resolve every value-free
// predicate's statistics from the merged synopsis, so planning fans no
// probes out across the shards.
func (sdb *ShardedDatabase) NewPlanner(capacity int) *Planner {
	return &Planner{ix: sdb.corpus, syn: sdb.Synopsis(), cache: lru.New[string, *QueryPlan](capacity)}
}

// PlanFor returns the cached plan for q's canonical shape under the
// given relaxation and normalization, compiling it on a miss. hit
// reports whether the plan (or its in-flight build) was already cached.
//
// The returned plan is compiled for the canonicalized query — equal for
// every predicate ordering of q — and engines built from it evaluate
// plan.Query, so answer Bindings are indexed by the canonical query's
// node IDs.
func (p *Planner) PlanFor(q *Query, r Relaxation, norm Normalization) (*QueryPlan, bool, error) {
	if q == nil {
		return nil, false, errNilQuery
	}
	key := pattern.CanonicalKey(q) + "|relax=" + strconv.Itoa(int(r)) + "|norm=" + strconv.Itoa(int(norm))
	plan, hit, err := p.cache.GetOrCreate(key, func() (*QueryPlan, error) {
		cq := pattern.Canonicalize(q)
		if err := cq.Validate(); err != nil {
			return nil, err
		}
		scorer := score.NewTFIDFWithStats(p.ix, p.syn, cq, norm)
		return core.CompilePlan(p.ix, p.syn, cq, r, scorer, key)
	})
	if err != nil {
		return nil, false, err
	}
	if hit {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
	}
	return plan, hit, err
}

// PlannerStats is a point-in-time snapshot of a planner's cache
// counters.
type PlannerStats struct {
	// Hits and Misses count PlanFor calls served from cache vs.
	// compiled (joining an in-flight compile counts as a hit).
	Hits, Misses int64
	// Evictions counts plans evicted for capacity.
	Evictions int64
	// Len and Cap are the cache's current size and bound.
	Len, Cap int
}

// Stats returns the planner's cache counters.
func (p *Planner) Stats() PlannerStats {
	return PlannerStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.cache.Evictions(),
		Len:       p.cache.Len(),
		Cap:       p.cache.Cap(),
	}
}
