// Package whirlpool is an adaptive top-k query processor for XML,
// reproducing "Adaptive Processing of Top-k Queries in XML" (Marian,
// Amer-Yahia, Koudas, Srivastava; ICDE 2005).
//
// It evaluates tree-pattern queries (an XPath subset) over XML documents
// and returns the k best answers, exact or approximate. Approximation is
// defined by query relaxation — edge generalization, leaf deletion and
// subtree promotion — and answers are ranked with an XML-specific tf*idf
// scoring function. Evaluation is adaptive: each partial match is routed
// individually through per-query-node servers, and matches that cannot
// reach the current top-k are pruned early.
//
// Basic usage:
//
//	db, _ := whirlpool.LoadFile("catalog.xml")
//	q, _ := whirlpool.ParseQuery("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
//	res, _ := db.TopK(q, whirlpool.Options{K: 5})
//	for _, a := range res.Answers {
//	    fmt.Println(a.Score, a.Root.Path())
//	}
//
// The four evaluation algorithms of the paper (Whirlpool-S, Whirlpool-M,
// LockStep, LockStep-NoPrun), its routing strategies and queue
// disciplines are all selectable through Options.
package whirlpool

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/index"
	"repro/internal/keyword"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// Re-exported building blocks. Aliases make the full vocabulary of the
// engine available from the public package.
type (
	// Node is one node of a parsed XML document.
	Node = xmltree.Node
	// Document is a parsed XML forest.
	Document = xmltree.Document
	// Query is a tree pattern (an XPath subset).
	Query = pattern.Query
	// QueryNode is one node of a tree pattern.
	QueryNode = pattern.Node
	// Result is the outcome of a top-k evaluation: answers plus stats.
	Result = core.Result
	// Answer is one ranked answer.
	Answer = core.Answer
	// Stats instruments an evaluation (server operations, join
	// comparisons, partial matches created, pruned, duration).
	Stats = core.Stats
	// Algorithm selects the evaluation strategy.
	Algorithm = core.Algorithm
	// Routing selects the adaptive routing strategy.
	Routing = core.Routing
	// Queue selects the priority queue discipline.
	Queue = core.Queue
	// Relaxation is the set of enabled query relaxations.
	Relaxation = relax.Relaxation
	// Normalization selects the tf*idf score normalization.
	Normalization = score.Normalization
	// Scorer computes score contributions; implement it to rank with a
	// custom function.
	Scorer = score.Scorer
	// Engine is a prepared evaluator for one (document, query, options)
	// combination, reusable across runs.
	Engine = core.Engine
	// Estimator supplies approximate routing statistics (fanout and
	// selectivity); see Database.MarkovEstimator.
	Estimator = core.Estimator
	// Explanation reports how one query node was satisfied in an answer.
	Explanation = core.Explanation
	// MatchKind classifies an Explanation (exact, edge-generalized,
	// promoted, deleted).
	MatchKind = core.MatchKind
	// TraceSink receives per-run observability events (routing
	// decisions, prune-threshold trajectory, queue depth samples, match
	// lifecycle counts); see internal/obs for ready-made sinks and
	// Options.Trace to attach one.
	TraceSink = obs.TraceSink
	// EngineTotals is an engine's cumulative instrumentation across
	// runs; see Engine.Totals.
	EngineTotals = core.Totals
)

// Explanation kinds.
const (
	MatchExact           = core.MatchExact
	MatchEdgeGeneralized = core.MatchEdgeGeneralized
	MatchPromoted        = core.MatchPromoted
	MatchDeleted         = core.MatchDeleted
)

// Explain classifies every query node of an answer: which bindings are
// exact, which required edge generalization or subtree promotion, and
// which were relaxed away.
func Explain(q *Query, a Answer) []Explanation { return core.Explain(q, a) }

// Evaluation algorithms (Section 6.1.2 of the paper).
const (
	// WhirlpoolS is the single-threaded adaptive algorithm.
	WhirlpoolS = core.WhirlpoolS
	// WhirlpoolM is the multi-threaded algorithm (one goroutine per
	// server).
	WhirlpoolM = core.WhirlpoolM
	// LockStep processes all matches through one server at a time.
	LockStep = core.LockStep
	// LockStepNoPrune is LockStep without pruning.
	LockStepNoPrune = core.LockStepNoPrune
)

// Routing strategies (Section 6.1.4).
const (
	RoutingStatic   = core.RoutingStatic
	RoutingMaxScore = core.RoutingMaxScore
	RoutingMinScore = core.RoutingMinScore
	RoutingMinAlive = core.RoutingMinAlive
)

// Queue disciplines (Section 6.1.3).
const (
	QueueMaxFinal     = core.QueueMaxFinal
	QueueFIFO         = core.QueueFIFO
	QueueCurrentScore = core.QueueCurrentScore
	QueueMaxNext      = core.QueueMaxNext
)

// Relaxations (Section 2).
const (
	EdgeGeneralization = relax.EdgeGeneralization
	LeafDeletion       = relax.LeafDeletion
	SubtreePromotion   = relax.SubtreePromotion
	RelaxNone          = relax.None
	RelaxAll           = relax.All
)

// Score normalizations (Section 6.2.2).
const (
	NormRaw    = score.Raw
	NormSparse = score.Sparse
	NormDense  = score.Dense
)

// Database is a loaded, indexed XML document ready for querying.
type Database struct {
	doc *Document
	ix  index.Source
	// snap is non-nil when the database serves from an mmapped v2
	// snapshot (see OpenSnapshot): postings, synopsis, keyword indexes
	// and shard layouts come from the mapped file instead of being
	// rebuilt.
	snap *store.SnapshotReader

	mu sync.Mutex
	// sharded caches one ShardedDatabase per shard count, built lazily
	// the first time Options.Shards asks for it.
	sharded map[int]*ShardedDatabase
	// syn is the lazily built structure synopsis (see Synopsis).
	syn *Synopsis
}

// Load parses an XML document (or forest) from r and indexes it.
func Load(r io.Reader) (*Database, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return FromDocument(doc), nil
}

// LoadString parses and indexes a document held in a string.
func LoadString(s string) (*Database, error) {
	doc, err := xmltree.ParseString(s)
	if err != nil {
		return nil, err
	}
	return FromDocument(doc), nil
}

// LoadFile parses and indexes the XML file at path.
func LoadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// FromDocument indexes an already parsed document.
func FromDocument(doc *Document) *Database {
	return &Database{doc: doc, ix: index.Build(doc)}
}

// LoadProjected parses XML from r keeping only the nodes the given
// queries can touch (their tags, plus every ancestor of a kept node).
// The projected database answers those queries exactly as a full load
// would — levels, containment and sibling order are preserved — while
// using far less memory on documents with rich irrelevant content.
func LoadProjected(r io.Reader, queries ...*Query) (*Database, error) {
	tags := make(map[string]bool)
	for _, q := range queries {
		if q == nil {
			return nil, fmt.Errorf("whirlpool: nil query")
		}
		for _, n := range q.Nodes {
			tags[n.Tag] = true
		}
	}
	doc, err := xmltree.ParseProjected(r, func(tag string) bool { return tags[tag] })
	if err != nil {
		return nil, err
	}
	return FromDocument(doc), nil
}

// Save persists the database as a compact binary snapshot at path.
// Opening a snapshot with Open is much faster than re-parsing and
// re-indexing the source XML.
func (db *Database) Save(path string) error {
	return store.Save(path, db.doc)
}

// Open loads a database snapshot previously written by Save or
// SaveSnapshot, sniffing the format from the file's magic: v2 mmap
// snapshots are served zero-copy via OpenSnapshot, legacy v1 snapshots
// through the lazy-decoding reader.
func Open(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	n, _ := io.ReadFull(f, magic[:])
	f.Close()
	if store.IsSnapshot(magic[:n]) {
		return OpenSnapshot(path)
	}
	r, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	return &Database{doc: r.Document(), ix: r}, nil
}

// SnapshotOptions selects what SaveSnapshot persists beyond the
// document, its postings and the structure synopsis (always included).
type SnapshotOptions struct {
	// Shards lists shard counts to persist partition layouts for; a
	// database opened from the snapshot assembles those sharded corpora
	// from the mapped postings without re-partitioning.
	Shards []int
	// KeywordScopes lists element tags to persist keyword indexes for,
	// so BuildKeywordIndex skips the subtree walk and tokenization.
	KeywordScopes []string
}

// SaveSnapshot persists the database in the v2 zero-copy snapshot
// format: a single page-aligned, checksummed file that OpenSnapshot
// mmaps and serves probes from directly — no parse, no index build, no
// synopsis build, and one kernel page cache shared by every process
// that opens it.
func (db *Database) SaveSnapshot(path string, opts SnapshotOptions) error {
	snap := &store.Snapshot{Doc: db.doc, Synopsis: db.Synopsis().Flatten()}
	for _, scope := range opts.KeywordScopes {
		snap.Keyword = append(snap.Keyword, db.BuildKeywordIndex(scope).Flatten())
	}
	for _, p := range opts.Shards {
		sdb, err := db.shardedFor(p)
		if err != nil {
			return err
		}
		lay := store.ShardLayout{P: p}
		for _, s := range sdb.corpus.Spine() {
			lay.Spine = append(lay.Spine, s.Ord)
		}
		for _, part := range sdb.corpus.Parts() {
			ords := make([]int, len(part.Units))
			for i, u := range part.Units {
				ords[i] = u.Ord
			}
			lay.Units = append(lay.Units, ords)
		}
		snap.Shards = append(snap.Shards, lay)
	}
	return store.SaveSnapshot(path, snap)
}

// OpenSnapshot opens a v2 snapshot written by SaveSnapshot, mapping it
// read-only and serving queries from the mapped pages. The persisted
// synopsis (when present) seeds the planner, persisted keyword indexes
// serve BuildKeywordIndex, and persisted shard layouts let
// Options.Shards skip partitioning. A checksum or format error is
// returned as-is so callers can fall back to the XML build path.
func OpenSnapshot(path string) (*Database, error) {
	r, err := store.OpenSnapshot(path)
	if err != nil {
		return nil, err
	}
	return &Database{doc: r.Document(), ix: r, snap: r, syn: r.Synopsis()}, nil
}

// SnapshotBacked reports whether the database serves from an mmapped
// v2 snapshot.
func (db *Database) SnapshotBacked() bool { return db.snap != nil }

// Close releases the snapshot mapping, if any. The database must not
// be used afterwards. Databases not opened from a snapshot need no
// Close; calling it is a no-op.
func (db *Database) Close() error {
	if db.snap != nil {
		return db.snap.Close()
	}
	return nil
}

// Document returns the underlying parsed document.
func (db *Database) Document() *Document { return db.doc }

// Size returns the number of nodes in the database.
func (db *Database) Size() int { return db.doc.Size() }

// ParseQuery parses the XPath subset used by the paper, e.g.
// "//item[./description/parlist and ./mailbox/mail/text]".
func ParseQuery(xpath string) (*Query, error) { return pattern.Parse(xpath) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(xpath string) *Query { return pattern.MustParse(xpath) }

// Options configures a top-k evaluation. The zero value asks for the
// paper's defaults: k = 10, Whirlpool-S, min_alive adaptive routing,
// max-possible-final queues, all relaxations, sparse tf*idf scoring.
type Options struct {
	// K is the number of answers (default 10).
	K int
	// Algorithm selects the evaluation strategy (default WhirlpoolS).
	Algorithm Algorithm
	// Routing selects the routing strategy (default RoutingMinAlive;
	// ignored by the LockStep algorithms).
	Routing Routing
	// Queue selects the queue discipline (default QueueMaxFinal).
	Queue Queue
	// Relax selects the enabled relaxations. Exactly RelaxNone computes
	// exact matches only; leaving Relax zero means RelaxNone, so set
	// RelaxAll (or use Approximate) for the paper's approximate mode.
	Relax Relaxation
	// Normalization selects the tf*idf normalization used when Scorer is
	// nil (default NormSparse).
	Normalization Normalization
	// Scorer overrides the default tf*idf scorer.
	Scorer Scorer
	// Order fixes the static server order for RoutingStatic/LockStep.
	Order []int
	// OpCost adds synthetic per-operation cost (adaptivity studies).
	OpCost time.Duration
	// Estimator supplies approximate routing statistics instead of exact
	// index scans; see Database.MarkovEstimator. Estimates only steer
	// routing — answers are unaffected.
	Estimator Estimator
	// Trace, when non-nil, receives per-run observability events. The
	// default (nil) leaves the hot path unchanged; a configured sink
	// must be safe for concurrent use (Whirlpool-M emits from several
	// goroutines).
	Trace TraceSink
	// Plan, when non-nil, supplies a precompiled query plan from a
	// Planner: engines skip server-plan construction and per-predicate
	// statistics probes, the plan's scorer applies when Scorer is nil,
	// and its cost-based order is the static-routing default when Order
	// is nil. The engine evaluates the plan's canonicalized query —
	// answers are identical to evaluating the original, but Bindings
	// are indexed by the canonical query's node IDs. The plan must have
	// been compiled for the same query shape and Relax mode.
	Plan *QueryPlan
	// Shards, when above 1, evaluates the query on a sharded execution
	// layer: the document is partitioned into that many shards of
	// complete subtrees, each with its own index and engine, all pruning
	// against one shared global top-k set (see ShardedDatabase). Honored
	// by TopK/TopKContext/TopKString — the per-count partition is built
	// once and cached on the Database — and ignored by NewEngine, which
	// always prepares a single-engine evaluator.
	Shards int
}

// Approximate returns the default options for approximate top-k matching
// with all relaxations enabled.
func Approximate(k int) Options { return Options{K: k, Relax: RelaxAll} }

// Exact returns the default options for exact top-k matching.
func Exact(k int) Options { return Options{K: k, Relax: RelaxNone} }

// engineConfig resolves opts against the defaults into a core.Config.
// The scorer, when defaulted, is built over ix — pass the whole corpus
// when the config will drive sharded engines, so scores stay comparable
// across shards.
func engineConfig(ix index.Source, q *Query, opts Options) (core.Config, error) {
	if q == nil {
		return core.Config{}, fmt.Errorf("whirlpool: nil query")
	}
	k := opts.K
	if k == 0 {
		k = 10
	}
	scorer := opts.Scorer
	if scorer == nil && opts.Plan != nil {
		scorer = opts.Plan.Scorer
	}
	if scorer == nil {
		norm := opts.Normalization
		if norm == score.Raw {
			norm = score.Sparse
		}
		scorer = score.NewTFIDF(ix, q, norm)
	}
	routing := opts.Routing
	if routing == core.RoutingStatic && opts.Order == nil && opts.Algorithm != LockStep && opts.Algorithm != LockStepNoPrune {
		routing = core.RoutingMinAlive
	}
	return core.Config{
		K:         k,
		Relax:     opts.Relax,
		Algorithm: opts.Algorithm,
		Routing:   routing,
		Order:     opts.Order,
		Queue:     opts.Queue,
		Scorer:    scorer,
		OpCost:    opts.OpCost,
		Estimator: opts.Estimator,
		Trace:     opts.Trace,
		Plan:      opts.Plan,
	}, nil
}

// planQuery substitutes the plan's canonicalized query for q when a
// plan is configured — the plan's node numbering is what its server
// plans and statistics are indexed by — after checking the plan was
// compiled for q's shape.
func planQuery(q *Query, opts Options) (*Query, error) {
	if opts.Plan == nil || q == nil {
		return q, nil
	}
	pq := opts.Plan.Query
	if q != pq && pattern.CanonicalKey(q) != pattern.CanonicalKey(pq) {
		return nil, fmt.Errorf("whirlpool: plan compiled for %s, not %s", pq, q)
	}
	return pq, nil
}

// NewEngine prepares a reusable engine for q under opts. With
// Options.Plan set, the engine evaluates the plan's canonicalized query
// (answer-equivalent; Bindings indexed by its node IDs).
func (db *Database) NewEngine(q *Query, opts Options) (*Engine, error) {
	q, err := planQuery(q, opts)
	if err != nil {
		return nil, err
	}
	cfg, err := engineConfig(db.ix, q, opts)
	if err != nil {
		return nil, err
	}
	return core.New(db.ix, q, cfg)
}

// TopK evaluates q and returns the k best answers.
func (db *Database) TopK(q *Query, opts Options) (*Result, error) {
	return db.TopKContext(context.Background(), q, opts)
}

// TopKContext is TopK with cancellation: when ctx is cancelled the
// evaluation winds down promptly and ctx's error is returned.
func (db *Database) TopKContext(ctx context.Context, q *Query, opts Options) (*Result, error) {
	if opts.Shards > 1 {
		sdb, err := db.shardedFor(opts.Shards)
		if err != nil {
			return nil, err
		}
		return sdb.TopKContext(ctx, q, opts)
	}
	e, err := db.NewEngine(q, opts)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// shardedFor returns the cached ShardedDatabase for p shards, splitting
// the document on first use.
func (db *Database) shardedFor(p int) (*ShardedDatabase, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if sdb, ok := db.sharded[p]; ok {
		return sdb, nil
	}
	sdb, err := db.buildSharded(p)
	if err != nil {
		return nil, err
	}
	if db.sharded == nil {
		db.sharded = make(map[int]*ShardedDatabase)
	}
	db.sharded[p] = sdb
	return sdb, nil
}

// buildSharded assembles a ShardedDatabase for p shards: from the
// snapshot's persisted layout when one exists — per-part sources serve
// straight from the mapped postings, no re-partitioning, no per-part
// index builds — and by splitting the document otherwise.
func (db *Database) buildSharded(p int) (*ShardedDatabase, error) {
	if db.snap != nil {
		if lay, ok := db.snap.Layout(p); ok {
			sources := make([]index.Source, len(lay.Units))
			for i, ords := range lay.Units {
				ps, err := db.snap.PartSource(ords)
				if err != nil {
					return nil, err
				}
				sources[i] = ps
			}
			corpus, err := shard.FromLayout(db.doc, lay.Spine, lay.Units, sources)
			if err != nil {
				return nil, err
			}
			if syn := db.snap.Synopsis(); syn != nil {
				corpus.SetSynopsis(syn)
			}
			return &ShardedDatabase{doc: db.doc, corpus: corpus}, nil
		}
	}
	return ShardDocument(db.doc, p)
}

// CostBasedOrder chooses a static server order a priori from index
// statistics (fewest expected alive extensions first) — a conventional
// optimizer's pick, usable as Options.Order with RoutingStatic or the
// LockStep algorithms.
func (db *Database) CostBasedOrder(q *Query, r Relaxation) []int {
	return core.CostBasedOrder(db.ix, q, r)
}

// TopKString parses the query and evaluates it in one call.
func (db *Database) TopKString(xpath string, opts Options) (*Result, error) {
	q, err := ParseQuery(xpath)
	if err != nil {
		return nil, err
	}
	return db.TopK(q, opts)
}

// ShardedEngine is a prepared sharded evaluator: one engine per shard,
// all sharing a global top-k set per run. It mirrors Engine's Run /
// RunContext contract and is reusable across concurrent runs.
type ShardedEngine = shard.Engines

// ShardInfo describes one shard's share of a partitioned document.
type ShardInfo = shard.PartInfo

// ShardTotals is one shard engine's cumulative instrumentation; see
// ShardedEngine.ShardTotals.
type ShardTotals = shard.ShardTotal

// ShardedDatabase is a Database partitioned into P shards of complete
// subtrees, each carrying its own index, evaluated by per-shard engines
// that prune against a single shared global top-k set: a high-scoring
// answer found on one shard immediately raises the threshold used to
// kill partial matches on all others. Because the shared threshold is
// always a lower bound on the true global k-th best score, the merged
// answers match a single-engine evaluation's.
//
//	sdb, _ := db.Shard(8)
//	res, _ := sdb.TopK(q, whirlpool.Approximate(10))
type ShardedDatabase struct {
	doc    *Document
	corpus *shard.Corpus
	reg    *obs.Registry
}

// Shard partitions the database into p shards (p ≥ 1). The partition is
// computed once; the returned ShardedDatabase is safe for concurrent
// queries.
func (db *Database) Shard(p int) (*ShardedDatabase, error) { return ShardDocument(db.doc, p) }

// ShardDocument partitions an already parsed document into p shards,
// building the per-shard indexes in parallel.
func ShardDocument(doc *Document, p int) (*ShardedDatabase, error) {
	if doc == nil {
		return nil, fmt.Errorf("whirlpool: nil document")
	}
	corpus, err := shard.Split(doc, p)
	if err != nil {
		return nil, err
	}
	return &ShardedDatabase{doc: doc, corpus: corpus}, nil
}

// ObserveInto routes per-run shard metrics (per-shard operation and
// prune counters, run-duration and merge-latency histograms, shard-skew
// gauge) from every engine subsequently built to reg.
func (sdb *ShardedDatabase) ObserveInto(reg *obs.Registry) { sdb.reg = reg }

// Document returns the underlying parsed document.
func (sdb *ShardedDatabase) Document() *Document { return sdb.doc }

// Size returns the number of nodes in the database.
func (sdb *ShardedDatabase) Size() int { return sdb.doc.Size() }

// Shards returns the partition's shard count.
func (sdb *ShardedDatabase) Shards() int { return len(sdb.corpus.Parts()) }

// Layout reports each shard's unit and node counts plus the number of
// spine nodes (cut interior nodes evaluated by a residual sub-engine).
func (sdb *ShardedDatabase) Layout() (parts []ShardInfo, spineNodes int) {
	return sdb.corpus.Layout()
}

// NewEngine prepares a reusable sharded engine for q under opts. The
// default scorer is built over the whole corpus — sharding never changes
// scores, only where the work runs. Options.Shards is ignored here: the
// shard count is the partition's.
func (sdb *ShardedDatabase) NewEngine(q *Query, opts Options) (*ShardedEngine, error) {
	q, err := planQuery(q, opts)
	if err != nil {
		return nil, err
	}
	cfg, err := engineConfig(sdb.corpus, q, opts)
	if err != nil {
		return nil, err
	}
	engs, err := sdb.corpus.NewEngines(q, cfg)
	if err != nil {
		return nil, err
	}
	if sdb.reg != nil {
		engs.ObserveInto(sdb.reg)
	}
	return engs, nil
}

// TopK evaluates q across all shards and returns the merged k best
// answers.
func (sdb *ShardedDatabase) TopK(q *Query, opts Options) (*Result, error) {
	return sdb.TopKContext(context.Background(), q, opts)
}

// TopKContext is TopK with cancellation; cancelling ctx winds down every
// shard promptly.
func (sdb *ShardedDatabase) TopKContext(ctx context.Context, q *Query, opts Options) (*Result, error) {
	e, err := sdb.NewEngine(q, opts)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// TopKString parses the query and evaluates it across all shards.
func (sdb *ShardedDatabase) TopKString(xpath string, opts Options) (*Result, error) {
	q, err := ParseQuery(xpath)
	if err != nil {
		return nil, err
	}
	return sdb.TopK(q, opts)
}

// AnswerScore computes the whole-answer tf*idf score of Definition 4.4
// for a candidate root node (the sum over component predicates of
// idf·tf), under the given normalization.
func (db *Database) AnswerScore(q *Query, norm Normalization, root *Node) float64 {
	s := score.NewTFIDF(db.ix, q, norm)
	return score.AnswerScore(db.ix, q, s, root)
}

// MarkovEstimator builds a one-pass Markov-table summary of the database
// (per-tag counts and parent→child transition counts) usable as
// Options.Estimator: routing statistics come from the summary instead of
// exact per-query index scans, trading estimate precision for a much
// cheaper engine build on large documents.
func (db *Database) MarkovEstimator() Estimator {
	return estimate.Summarize(db.doc)
}

// KeywordIndex is an inverted word index over the text of one element
// type, answering bag-of-words top-k queries with Fagin's threshold
// algorithm — the mediator-style ranking family the paper compares
// against (Section 3).
type KeywordIndex = keyword.Index

// KeywordAnswer is one ranked keyword-search result.
type KeywordAnswer = keyword.Answer

// ErrBadKeywordQuery marks keyword-query validation failures (no
// searchable words, non-positive k); test with errors.Is to map them to
// client errors.
var ErrBadKeywordQuery = keyword.ErrBadQuery

// BuildKeywordIndex indexes the text under every element with scopeTag
// (e.g. "item"): each such element becomes a candidate answer for
// KeywordTopK queries, scored Σ idf(word)·tf(word, element). When the
// database was opened from a snapshot carrying a keyword index for the
// scope, it is unflattened from the mapped arrays — no subtree walk, no
// tokenization; a snapshot without that scope (or a corrupt section)
// falls back to a fresh build.
func (db *Database) BuildKeywordIndex(scopeTag string) *KeywordIndex {
	if db.snap != nil {
		if ix, ok, err := db.snap.Keyword(scopeTag); ok && err == nil {
			return ix
		}
	}
	return keyword.Build(db.doc, scopeTag)
}

// XMarkOptions sizes a generated XMark-equivalent document. Set exactly
// one of Items or Bytes.
type XMarkOptions struct {
	// Seed drives generation; equal seeds generate identical documents.
	Seed int64
	// Items is the number of auction items to generate.
	Items int
	// Bytes targets a serialized document size instead (the paper's
	// 1 MB / 10 MB / 50 MB axis).
	Bytes int
}

// GenerateXMark builds and indexes a deterministic XMark-equivalent
// document (see internal/xmark for the structural features it shares with
// the XMark benchmark generator the paper used).
func GenerateXMark(opts XMarkOptions) (*Database, error) {
	if (opts.Items == 0) == (opts.Bytes == 0) {
		return nil, fmt.Errorf("whirlpool: set exactly one of Items or Bytes")
	}
	var doc *Document
	var err error
	if opts.Items > 0 {
		doc, err = xmark.Generate(xmark.Options{Seed: opts.Seed, Items: opts.Items})
	} else {
		doc, _, err = xmark.GenerateBytes(opts.Seed, opts.Bytes)
	}
	if err != nil {
		return nil, err
	}
	return FromDocument(doc), nil
}
