// Bookstore: the paper's Section 2 walkthrough. A heterogeneous
// collection of books from different online sellers (Figure 1) is
// queried with the Figure 2(a) pattern; query relaxation (edge
// generalization, leaf deletion, subtree promotion) lets every seller's
// book match, and the XML tf*idf scoring function ranks them by how well
// they fit.
package main

import (
	"fmt"
	"log"

	"repro"
)

// Figure 1's database: three books with heterogeneous structure, plus a
// couple of distractors.
const sellers = `
<book>
  <title>wodehouse</title>
  <info>
    <publisher><name>psmith</name><location>london</location></publisher>
    <isbn>1234</isbn>
  </info>
  <price>48.95</price>
</book>
<book>
  <title>wodehouse</title>
  <publisher><name>psmith</name></publisher>
  <info><isbn>1234</isbn><location>london</location></info>
</book>
<book>
  <reviews><title>wodehouse</title></reviews>
  <info><location>london</location></info>
  <price>19.99</price>
</book>
<book>
  <title>emma</title>
  <info><publisher><name>austen house</name></publisher></info>
</book>`

func main() {
	db, err := whirlpool.LoadString(sellers)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 2(a): /book[./title='wodehouse' and ./info/publisher/name='psmith'].
	query := whirlpool.MustParseQuery(
		"/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")

	fmt.Println("query:", query)
	fmt.Println()

	// Without relaxation only book 1 matches.
	exact, err := db.TopK(query, whirlpool.Exact(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact evaluation: %d match(es)\n", len(exact.Answers))

	// With the relaxations of Figure 2(b)-(d) every book becomes a
	// candidate, ranked by score.
	opts := whirlpool.Approximate(5)
	opts.Algorithm = whirlpool.WhirlpoolS
	res, err := db.TopK(query, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relaxed evaluation: %d ranked answer(s)\n\n", len(res.Answers))
	for i, a := range res.Answers {
		fmt.Printf("%d. score=%.3f book@%s\n", i+1, a.Score, a.Root.ID)
		for _, e := range whirlpool.Explain(query, a) {
			if e.NodeID == 0 {
				continue
			}
			value := ""
			if b := a.Bindings[e.NodeID]; b != nil && b.Value != "" {
				value = fmt.Sprintf(" = %q", b.Value)
			}
			fmt.Printf("     %-9s %-16s %s%s\n", e.Tag, "["+e.Kind.String()+"]", e.Detail, value)
		}
	}

	// Individual relaxations can be enabled selectively.
	egOnly := whirlpool.Options{K: 5, Relax: whirlpool.EdgeGeneralization}
	egRes, err := db.TopK(query, egOnly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nedge generalization only: %d answer(s) (containment still required)\n", len(egRes.Answers))
}
