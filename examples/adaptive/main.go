// Adaptive: demonstrates why per-match adaptive routing beats any static
// plan (the paper's Section 2 argument and Section 6.3.2 result). It runs
// the same top-k query under every static server order and under the
// adaptive min_alive_partial_matches router, comparing the work done.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	db, err := whirlpool.GenerateXMark(whirlpool.XMarkOptions{Seed: 11, Items: 250})
	if err != nil {
		log.Fatal(err)
	}
	q := whirlpool.MustParseQuery("//item[./description/parlist and ./mailbox/mail/text]")
	fmt.Printf("query: %s (%d nodes → %d static plans)\n\n", q, q.Size(), factorial(q.Size()-1))

	// Every static plan: all matches follow the same server order.
	type planResult struct {
		order string
		ops   int64
	}
	var plans []planResult
	for _, order := range q.ServerOrders() {
		opts := whirlpool.Approximate(10)
		opts.Routing = whirlpool.RoutingStatic
		opts.Order = order
		res, err := db.TopK(q, opts)
		if err != nil {
			log.Fatal(err)
		}
		plans = append(plans, planResult{orderName(q, order), res.Stats.ServerOps})
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].ops < plans[j].ops })

	fmt.Println("static plans by server operations:")
	fmt.Printf("  best:   %-55s %d ops\n", plans[0].order, plans[0].ops)
	fmt.Printf("  median: %-55s %d ops\n", plans[len(plans)/2].order, plans[len(plans)/2].ops)
	fmt.Printf("  worst:  %-55s %d ops\n", plans[len(plans)-1].order, plans[len(plans)-1].ops)

	// Adaptive routing: each partial match picks its own next server
	// based on the current top-k threshold and per-server estimates.
	adaptive, err := db.TopK(q, whirlpool.Approximate(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptive min_alive routing: %d ops\n", adaptive.Stats.ServerOps)
	fmt.Printf("vs best static plan (chosen with perfect hindsight): %.2fx\n",
		float64(adaptive.Stats.ServerOps)/float64(plans[0].ops))
	fmt.Printf("vs median static plan (a realistic optimizer pick):  %.2fx\n",
		float64(adaptive.Stats.ServerOps)/float64(plans[len(plans)/2].ops))
}

func orderName(q *whirlpool.Query, order []int) string {
	s := ""
	for i, id := range order {
		if i > 0 {
			s += "→"
		}
		s += q.Nodes[id].Tag
	}
	return s
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}
