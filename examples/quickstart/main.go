// Quickstart: load an XML catalog, run one approximate and one exact
// top-k query, and print the ranked answers.
package main

import (
	"fmt"
	"log"

	"repro"
)

const catalog = `
<book>
  <title>wodehouse</title>
  <info>
    <publisher><name>psmith</name><location>london</location></publisher>
    <isbn>1234</isbn>
  </info>
  <price>48.95</price>
</book>
<book>
  <title>wodehouse</title>
  <publisher><name>psmith</name></publisher>
  <info><isbn>1234</isbn></info>
</book>
<book>
  <reviews><title>wodehouse</title></reviews>
  <info><location>london</location></info>
</book>`

func main() {
	// A database is a parsed, indexed XML document (or forest).
	db, err := whirlpool.LoadString(catalog)
	if err != nil {
		log.Fatal(err)
	}

	// Queries are tree patterns written in an XPath subset.
	query := whirlpool.MustParseQuery(
		"/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")

	// Approximate top-k: relaxations let structurally different books
	// match, ranked by how closely they fit the original query.
	res, err := db.TopK(query, whirlpool.Approximate(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("approximate top-3:")
	for i, a := range res.Answers {
		fmt.Printf("  %d. score=%.3f  book at %s\n", i+1, a.Score, a.Root.ID)
	}

	// Exact top-k: only books matching the pattern precisely.
	res, err = db.TopK(query, whirlpool.Exact(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact matches:")
	for i, a := range res.Answers {
		fmt.Printf("  %d. score=%.3f  book at %s\n", i+1, a.Score, a.Root.ID)
	}

	fmt.Printf("stats: %d server operations, %d partial matches, %d pruned\n",
		res.Stats.ServerOps, res.Stats.MatchesCreated, res.Stats.Pruned)
}
