// XMark: generate an XMark-equivalent auction-site document (the paper's
// benchmark data substitute), run the paper's queries Q1–Q3 with each of
// the four evaluation algorithms, and compare their work.
package main

import (
	"fmt"
	"log"

	"repro"
)

var queries = []struct {
	name, xpath string
}{
	{"Q1 (3 nodes)", "//item[./description/parlist]"},
	{"Q2 (6 nodes)", "//item[./description/parlist and ./mailbox/mail/text]"},
	{"Q3 (8 nodes)", "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]"},
}

var algorithms = []struct {
	name string
	alg  whirlpool.Algorithm
}{
	{"Whirlpool-S", whirlpool.WhirlpoolS},
	{"Whirlpool-M", whirlpool.WhirlpoolM},
	{"LockStep", whirlpool.LockStep},
	{"LockStep-NoPrun", whirlpool.LockStepNoPrune},
}

func main() {
	db, err := whirlpool.GenerateXMark(whirlpool.XMarkOptions{Seed: 7, Items: 400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated auction site: %d nodes\n\n", db.Size())

	for _, qd := range queries {
		q := whirlpool.MustParseQuery(qd.xpath)
		fmt.Printf("%s: %s\n", qd.name, qd.xpath)
		var topScore float64
		for _, ad := range algorithms {
			opts := whirlpool.Approximate(15)
			opts.Algorithm = ad.alg
			res, err := db.TopK(q, opts)
			if err != nil {
				log.Fatal(err)
			}
			if len(res.Answers) > 0 {
				topScore = res.Answers[0].Score
			}
			fmt.Printf("  %-16s %4d answers  best=%.3f  ops=%-6d matches=%-6d pruned=%d\n",
				ad.name, len(res.Answers), topScore,
				res.Stats.ServerOps, res.Stats.MatchesCreated, res.Stats.Pruned)
		}
		fmt.Println()
	}

	// The best items for Q3, with their relaxed bindings.
	q := whirlpool.MustParseQuery(queries[2].xpath)
	res, err := db.TopK(q, whirlpool.Approximate(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q3 top-3 in detail:")
	for i, a := range res.Answers {
		fmt.Printf("  %d. score=%.3f item %s (%s)\n", i+1, a.Score, a.Root.ID, itemName(a))
	}
}

// itemName digs the bound <name> text out of an answer.
func itemName(a whirlpool.Answer) string {
	for id, b := range a.Bindings {
		if b != nil && id > 0 && b.Tag == "name" {
			return b.Value
		}
	}
	return "unnamed"
}
