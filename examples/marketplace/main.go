// Marketplace: a production-flavored workflow — generate a catalog,
// persist it as a binary snapshot, reopen it, and run top-k queries with
// the extended content predicates (numeric comparisons, contains,
// inequality) under a deadline. Also shows query-projected loading for
// memory-constrained ingestion.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
)

func main() {
	// Build a catalog and persist it.
	db, err := whirlpool.GenerateXMark(whirlpool.XMarkOptions{Seed: 21, Items: 300})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "marketplace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "catalog.wpx")
	if err := db.Save(snap); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(snap)
	fmt.Printf("catalog: %d nodes, snapshot %d KB\n\n", db.Size(), info.Size()/1024)

	// Reopen the snapshot (no XML re-parse) and query it.
	db, err = whirlpool.Open(snap)
	if err != nil {
		log.Fatal(err)
	}

	// Extended content predicates: cheap items in small quantities whose
	// name mentions "gold".
	queries := []string{
		"//item[./quantity < 3 and ./name contains 'gold']",
		"//item[./payment != 'Cash' and ./quantity >= 4]",
		"//item[./description/parlist and ./quantity <= 2]",
	}
	for _, xp := range queries {
		q, err := whirlpool.ParseQuery(xp)
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		res, err := db.TopKContext(ctx, q, whirlpool.Approximate(3))
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", xp)
		for i, a := range res.Answers {
			fmt.Printf("  %d. score=%.3f item@%s %s\n", i+1, a.Score, a.Root.ID, describe(q, a))
		}
		fmt.Println()
	}

	// Query-projected loading: re-ingest the serialized catalog keeping
	// only what one query needs.
	var xmlText strings.Builder
	if err := db.Document().Serialize(&xmlText); err != nil {
		log.Fatal(err)
	}
	q := whirlpool.MustParseQuery("//item[./quantity < 3 and ./name contains 'gold']")
	projected, err := whirlpool.LoadProjected(strings.NewReader(xmlText.String()), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projected load: %d nodes (full load had %d) — same top answer: ", projected.Size(), db.Size())
	full, _ := db.TopK(q, whirlpool.Approximate(1))
	proj, _ := projected.TopK(q, whirlpool.Approximate(1))
	fmt.Printf("%.3f vs %.3f\n", full.Answers[0].Score, proj.Answers[0].Score)
}

// describe pulls the bound name and quantity out of an answer.
func describe(q *whirlpool.Query, a whirlpool.Answer) string {
	name, qty := "?", "?"
	for id, b := range a.Bindings {
		if b == nil || id == 0 {
			continue
		}
		switch q.Nodes[id].Tag {
		case "name":
			name = b.Value
		case "quantity":
			qty = b.Value
		}
	}
	return fmt.Sprintf("(%s, qty %s)", name, qty)
}
