// Keyword: bag-of-words top-k search over XML elements with Fagin's
// threshold algorithm (TA) and its no-random-access variant (NRA) — the
// mediator-style ranking family the paper's related work builds on —
// compared against a full scan.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	db, err := whirlpool.GenerateXMark(whirlpool.XMarkOptions{Seed: 13, Items: 800})
	if err != nil {
		log.Fatal(err)
	}
	ki := db.BuildKeywordIndex("item")
	fmt.Printf("indexed %d items\n\n", ki.Scopes())

	for _, query := range []string{"gold", "gold silver jade", "carved antique oak"} {
		scan := ki.TopKScan(query, 3)
		ta, taStats, err := ki.TopKTA(query, 3)
		if err != nil {
			log.Fatal(err)
		}
		nra, nraStats := ki.TopKNRA(query, 3)

		fmt.Printf("query %q\n", query)
		for i, a := range ta {
			fmt.Printf("  %d. score=%.3f item@%s\n", i+1, a.Score, a.Node.ID)
		}
		fmt.Printf("  scan touched every posting; TA: %d sorted + %d random accesses; NRA: %d sorted\n",
			taStats.SortedAccesses, taStats.RandomAccesses, nraStats.SortedAccesses)
		if len(scan) != len(ta) || len(scan) != len(nra) {
			log.Fatalf("algorithms disagree: scan %d, TA %d, NRA %d", len(scan), len(ta), len(nra))
		}
		for i := range scan {
			if diff := scan[i].Score - ta[i].Score; diff > 1e-9 || diff < -1e-9 {
				log.Fatalf("TA diverged at %d: %v vs %v", i, ta[i].Score, scan[i].Score)
			}
		}
		fmt.Println()
	}
}
