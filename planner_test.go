package whirlpool

import (
	"fmt"
	"testing"
)

// TestPlannerEquivalence checks plan-driven evaluation returns exactly
// the answers of plain evaluation — same roots, same scores — on single
// and sharded databases, across relaxation modes, and that textual
// variants of one query share a single cached plan.
// +whirllint:exactscore plan-driven evaluation must reproduce scores bit-for-bit
func TestPlannerEquivalence(t *testing.T) {
	db, err := GenerateXMark(XMarkOptions{Seed: 5, Items: 120})
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := db.Shard(4)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//item[./description/parlist]",
		"//item[./description/parlist and ./mailbox/mail/text]",
		"//item[./name = 'no-such-name' and .//text]",
	}
	type evaler interface {
		TopKString(xpath string, opts Options) (*Result, error)
		NewPlanner(capacity int) *Planner
	}
	for dbName, ev := range map[string]evaler{"single": db, "shards-4": sdb} {
		planner := ev.NewPlanner(16)
		for _, qs := range queries {
			for _, r := range []Relaxation{RelaxNone, RelaxAll} {
				t.Run(fmt.Sprintf("%s/%s/relax=%v", dbName, qs, r), func(t *testing.T) {
					q := MustParseQuery(qs)
					plan, hit, err := planner.PlanFor(q, r, NormSparse)
					if err != nil {
						t.Fatal(err)
					}
					if hit {
						t.Fatal("first PlanFor reported a cache hit")
					}
					opts := Options{K: 5, Relax: r}
					want, err := ev.TopKString(qs, opts)
					if err != nil {
						t.Fatal(err)
					}
					opts.Plan = plan
					got, err := ev.TopKString(qs, opts)
					if err != nil {
						t.Fatal(err)
					}
					if len(want.Answers) != len(got.Answers) {
						t.Fatalf("%d answers with plan, %d without", len(got.Answers), len(want.Answers))
					}
					for i := range want.Answers {
						if want.Answers[i].Root != got.Answers[i].Root || want.Answers[i].Score != got.Answers[i].Score {
							t.Fatalf("answer %d: with plan (%v, %v), without (%v, %v)", i,
								got.Answers[i].Root, got.Answers[i].Score, want.Answers[i].Root, want.Answers[i].Score)
						}
					}
					if _, hit, err := planner.PlanFor(MustParseQuery(qs), r, NormSparse); err != nil || !hit {
						t.Fatalf("re-plan: hit=%v err=%v", hit, err)
					}
				})
			}
		}
		stats := planner.Stats()
		if stats.Misses != int64(len(queries)*2) || stats.Hits != int64(len(queries)*2) {
			t.Fatalf("planner stats = %+v, want %d misses and hits", stats, len(queries)*2)
		}
	}
}

// TestPlannerCanonicalSharing checks predicate-order variants share a
// plan, and that a plan is rejected for a structurally different query.
func TestPlannerCanonicalSharing(t *testing.T) {
	db, err := GenerateXMark(XMarkOptions{Seed: 5, Items: 40})
	if err != nil {
		t.Fatal(err)
	}
	planner := db.NewPlanner(8)
	a := "//item[./description/parlist and ./mailbox/mail/text]"
	b := "//item[./mailbox/mail/text and ./description/parlist]"
	planA, hit, err := planner.PlanFor(MustParseQuery(a), RelaxAll, NormSparse)
	if err != nil || hit {
		t.Fatalf("plan a: hit=%v err=%v", hit, err)
	}
	planB, hit, err := planner.PlanFor(MustParseQuery(b), RelaxAll, NormSparse)
	if err != nil || !hit {
		t.Fatalf("variant b missed the cache: hit=%v err=%v", hit, err)
	}
	if planA != planB {
		t.Fatal("order variants did not share one plan")
	}
	// Both variants evaluate through the shared plan.
	for _, qs := range []string{a, b} {
		if _, err := db.TopKString(qs, Options{K: 3, Relax: RelaxAll, Plan: planA}); err != nil {
			t.Fatalf("%s with shared plan: %v", qs, err)
		}
	}
	// Distinct normalizations and relaxations get distinct entries.
	if _, hit, err = planner.PlanFor(MustParseQuery(a), RelaxAll, NormDense); err != nil || hit {
		t.Fatalf("norm variant unexpectedly hit: %v %v", hit, err)
	}
	if _, hit, err = planner.PlanFor(MustParseQuery(a), RelaxNone, NormSparse); err != nil || hit {
		t.Fatalf("relax variant unexpectedly hit: %v %v", hit, err)
	}
	// A structurally different query must not ride on the plan.
	if _, err := db.TopK(MustParseQuery("//item[./payment]"), Options{K: 3, Relax: RelaxAll, Plan: planA}); err == nil {
		t.Fatal("mismatched plan accepted")
	}
}
