// Command benchcheck asserts properties of a BENCH_core.json report
// (written by `whirlbench -bench-json` / `make bench`). CI uses it to
// gate on the sharded-execution speedup and on the hot path's
// allocation profile:
//
//	benchcheck -file BENCH_core.json -case shards-8 -min-speedup 2
//	benchcheck -file BENCH_core.json -alloc-case single -max-alloc-ratio 0.2
//
// The allocation gate divides the pinned case's allocs/op (arena
// enabled) by its in-report baseline (the same run with reuse
// disabled); a ratio of 0.2 demands the memory-reuse layer eliminate at
// least 80% of hot-path allocations. It exits non-zero with a
// diagnostic when a named case is missing or a gate fails. Passing
// -max-alloc-ratio 0 (or -min-speedup 0) skips that gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report struct {
	Cores int `json:"cores"`
	Cases []struct {
		Name                string  `json:"name"`
		Shards              int     `json:"shards"`
		NsPerOp             int64   `json:"ns_per_op"`
		Speedup             float64 `json:"speedup"`
		AllocsPerOp         int64   `json:"allocs_per_op"`
		BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op"`
	} `json:"cases"`
}

func main() {
	var (
		file          = flag.String("file", "BENCH_core.json", "benchmark report to check")
		caseName      = flag.String("case", "shards-8", "case name for the speedup gate")
		minSpeedup    = flag.Float64("min-speedup", 2, "required speedup over the single-engine baseline (0 skips)")
		allocCase     = flag.String("alloc-case", "single", "case name for the allocation gate")
		maxAllocRatio = flag.Float64("max-alloc-ratio", 0, "required allocs/op ÷ baseline allocs/op ceiling (0 skips)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("%s: %w", *file, err))
	}
	if *minSpeedup > 0 {
		checkSpeedup(&rep, *file, *caseName, *minSpeedup)
	}
	if *maxAllocRatio > 0 {
		checkAllocs(&rep, *file, *allocCase, *maxAllocRatio)
	}
}

func checkSpeedup(rep *report, file, caseName string, minSpeedup float64) {
	for _, c := range rep.Cases {
		if c.Name != caseName {
			continue
		}
		if c.Speedup < minSpeedup {
			fatal(fmt.Errorf("%s: case %s speedup %.2fx < required %.2fx (%d cores, %d ns/op)",
				file, c.Name, c.Speedup, minSpeedup, rep.Cores, c.NsPerOp))
		}
		fmt.Printf("benchcheck: %s speedup %.2fx >= %.2fx (%d cores)\n",
			c.Name, c.Speedup, minSpeedup, rep.Cores)
		return
	}
	fatal(fmt.Errorf("%s: no case named %q", file, caseName))
}

func checkAllocs(rep *report, file, caseName string, maxRatio float64) {
	for _, c := range rep.Cases {
		if c.Name != caseName {
			continue
		}
		if c.BaselineAllocsPerOp <= 0 {
			fatal(fmt.Errorf("%s: case %s has no baseline_allocs_per_op (report predates the allocation gate; regenerate with whirlbench -bench-json)",
				file, c.Name))
		}
		ratio := float64(c.AllocsPerOp) / float64(c.BaselineAllocsPerOp)
		if ratio > maxRatio {
			fatal(fmt.Errorf("%s: case %s allocs/op ratio %.3f (%d of %d baseline) > allowed %.3f — the hot path regressed its allocation budget",
				file, c.Name, ratio, c.AllocsPerOp, c.BaselineAllocsPerOp, maxRatio))
		}
		fmt.Printf("benchcheck: %s allocs/op %d vs baseline %d (ratio %.3f <= %.3f, %.0f%% reduction)\n",
			c.Name, c.AllocsPerOp, c.BaselineAllocsPerOp, ratio, maxRatio, (1-ratio)*100)
		return
	}
	fatal(fmt.Errorf("%s: no case named %q", file, caseName))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
