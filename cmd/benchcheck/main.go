// Command benchcheck asserts properties of a BENCH_core.json report
// (written by `whirlbench -bench-json` / `make bench`). CI uses it to
// gate on the sharded-execution speedup and on the hot path's
// allocation profile:
//
//	benchcheck -file BENCH_core.json -case shards-8 -min-speedup 2
//	benchcheck -file BENCH_core.json -alloc-case single -max-alloc-ratio 0.2
//	benchcheck -file BENCH_core.json -multicore-case shards-8/gmp-8 -min-multicore-speedup 6 -require-steals
//	benchcheck -file BENCH_core.json -min-hot-speedup 2
//	benchcheck -file BENCH_core.json -min-snapshot-speedup 100
//
// The cached-planning gate divides the cold planning case's ns/op
// (scorer and routing statistics computed from index scans, plan built
// from scratch) by the hot case's (plan served from the planner cache):
// a floor of 2 demands a cache hit cost at most half a cold plan. Both
// cases are written by whirlbench -bench-json with -bench-hot (the
// default).
//
// The allocation gate divides the pinned case's allocs/op (arena
// enabled) by its in-report baseline (the same run with reuse
// disabled); a ratio of 0.2 demands the memory-reuse layer eliminate at
// least 80% of hot-path allocations.
//
// The multi-core gate checks a GOMAXPROCS-swept case (see whirlbench
// -bench-gmp). Its speedup requirement is only enforceable when the
// host actually delivered the cores the case asked for: when the
// case's effective cores fall short of its gomaxprocs the gate prints
// a notice and skips the speedup check — the number would measure the
// kernel's timeslicing, not the executor — unless -strict-multicore
// turns that honesty into a failure (for hosts known to have the
// cores). -require-steals is enforced regardless: work stealing is
// goroutine interleaving, which single-core hosts exhibit too.
//
// benchcheck exits non-zero with a diagnostic when a named case is
// missing or a gate fails. Passing -max-alloc-ratio 0, -min-speedup 0,
// -min-multicore-speedup 0 or -min-hot-speedup 0 skips that gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchCase struct {
	Name                string  `json:"name"`
	Shards              int     `json:"shards"`
	NsPerOp             int64   `json:"ns_per_op"`
	Speedup             float64 `json:"speedup"`
	GoMaxProcs          int     `json:"gomaxprocs"`
	Cores               int     `json:"cores"`
	Workers             int     `json:"workers"`
	Steals              int64   `json:"steals"`
	StolenMatches       int64   `json:"stolen_matches"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op"`
}

type report struct {
	Cores int         `json:"cores"`
	Cases []benchCase `json:"cases"`
}

func main() {
	var (
		file           = flag.String("file", "BENCH_core.json", "benchmark report to check")
		caseName       = flag.String("case", "shards-8", "case name for the speedup gate")
		minSpeedup     = flag.Float64("min-speedup", 2, "required speedup over the single-engine baseline (0 skips)")
		allocCase      = flag.String("alloc-case", "single", "case name for the allocation gate")
		maxAllocRatio  = flag.Float64("max-alloc-ratio", 0, "required allocs/op ÷ baseline allocs/op ceiling (0 skips)")
		mcCase         = flag.String("multicore-case", "shards-8/gmp-8", "case name for the multi-core gate")
		minMCSpeedup   = flag.Float64("min-multicore-speedup", 0, "required multi-core speedup over the single-engine gmp=1 baseline (0 skips the gate)")
		requireSteals  = flag.Bool("require-steals", false, "with the multi-core gate: fail unless the case recorded work-stealing activity")
		strictMC       = flag.Bool("strict-multicore", false, "fail (instead of skipping the speedup check) when the host has fewer cores than the case's GOMAXPROCS")
		hotCase        = flag.String("hot-case", "plan-hot", "case name for the cached-planning gate")
		coldCase       = flag.String("cold-case", "plan-cold", "baseline case name for the cached-planning gate")
		minHotSpeedup  = flag.Float64("min-hot-speedup", 0, "required cached-vs-cold planning speedup (0 skips the gate)")
		openCase       = flag.String("open-case", "snapshot-open", "case name for the snapshot cold-start gate")
		buildCase      = flag.String("build-case", "full-build", "baseline case name for the snapshot cold-start gate")
		minSnapSpeedup = flag.Float64("min-snapshot-speedup", 0, "required snapshot-open-vs-full-build speedup (0 skips the gate)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("%s: %w", *file, err))
	}
	if *minSpeedup > 0 {
		checkSpeedup(&rep, *file, *caseName, *minSpeedup)
	}
	if *maxAllocRatio > 0 {
		checkAllocs(&rep, *file, *allocCase, *maxAllocRatio)
	}
	if *minMCSpeedup > 0 || *requireSteals {
		checkMulticore(&rep, *file, *mcCase, *minMCSpeedup, *requireSteals, *strictMC)
	}
	if *minHotSpeedup > 0 {
		checkPlanning(&rep, *file, *hotCase, *coldCase, *minHotSpeedup)
	}
	if *minSnapSpeedup > 0 {
		checkSnapshot(&rep, *file, *openCase, *buildCase, *minSnapSpeedup)
	}
}

// checkSnapshot gates the mmap snapshot's cold-start win: opening the
// snapshot must beat rebuilding the index/synopsis/keyword/layout state
// from XML by the required factor. Both cases are wall times over the
// same pinned corpus, so their ns/op ratio is the boot-time saving a
// daemon sees from -snapshot.
func checkSnapshot(rep *report, file, openName, buildName string, minSpeedup float64) {
	find := func(name string) *benchCase {
		for i := range rep.Cases {
			if rep.Cases[i].Name == name {
				return &rep.Cases[i]
			}
		}
		return nil
	}
	open, build := find(openName), find(buildName)
	if open == nil || build == nil {
		fatal(fmt.Errorf("%s: missing case %q or %q (regenerate the report with whirlbench -bench-json; the snapshot cases need -bench-snapshot)",
			file, openName, buildName))
	}
	if open.NsPerOp <= 0 || build.NsPerOp <= 0 {
		fatal(fmt.Errorf("%s: cases %q/%q carry no ns/op", file, openName, buildName))
	}
	speedup := float64(build.NsPerOp) / float64(open.NsPerOp)
	if speedup < minSpeedup {
		fatal(fmt.Errorf("%s: snapshot open %.2fx over full build < required %.2fx (%s %d ns/op vs %s %d ns/op) — the mmap path is not collapsing cold start",
			file, speedup, minSpeedup, openName, open.NsPerOp, buildName, build.NsPerOp))
	}
	fmt.Printf("benchcheck: snapshot open %.0fx over full build >= %.0fx (%s %d ns/op, %s %d ns/op)\n",
		speedup, minSpeedup, openName, open.NsPerOp, buildName, build.NsPerOp)
}

// checkPlanning gates the planner cache: a hit must beat compiling a
// plan from scratch by the required factor. Both cases measure the
// same work (plan resolution plus engine construction, no evaluation)
// on the same document, so their ns/op ratio is a pure cache win.
func checkPlanning(rep *report, file, hotName, coldName string, minSpeedup float64) {
	find := func(name string) *benchCase {
		for i := range rep.Cases {
			if rep.Cases[i].Name == name {
				return &rep.Cases[i]
			}
		}
		return nil
	}
	hot, cold := find(hotName), find(coldName)
	if hot == nil || cold == nil {
		fatal(fmt.Errorf("%s: missing case %q or %q (regenerate the report with whirlbench -bench-json; the planning cases need -bench-hot)",
			file, hotName, coldName))
	}
	if hot.NsPerOp <= 0 || cold.NsPerOp <= 0 {
		fatal(fmt.Errorf("%s: cases %q/%q carry no ns/op", file, hotName, coldName))
	}
	speedup := float64(cold.NsPerOp) / float64(hot.NsPerOp)
	if speedup < minSpeedup {
		fatal(fmt.Errorf("%s: cached planning %.2fx over cold < required %.2fx (%s %d ns/op vs %s %d ns/op) — the plan cache is not paying for itself",
			file, speedup, minSpeedup, hotName, hot.NsPerOp, coldName, cold.NsPerOp))
	}
	fmt.Printf("benchcheck: cached planning %.1fx over cold >= %.1fx (%s %d ns/op, %s %d ns/op)\n",
		speedup, minSpeedup, hotName, hot.NsPerOp, coldName, cold.NsPerOp)
}

// checkMulticore gates a GOMAXPROCS-swept case: speedup when the host
// could physically deliver the parallelism, steal activity always.
func checkMulticore(rep *report, file, caseName string, minSpeedup float64, requireSteals, strict bool) {
	for _, c := range rep.Cases {
		if c.Name != caseName {
			continue
		}
		if c.GoMaxProcs == 0 {
			fatal(fmt.Errorf("%s: case %s has no gomaxprocs (report predates the multi-core sweep; regenerate with whirlbench -bench-json)",
				file, c.Name))
		}
		if requireSteals && c.Steals == 0 {
			fatal(fmt.Errorf("%s: case %s recorded no steals (workers=%d, gomaxprocs=%d) — the work-stealing executor is not moving matches",
				file, c.Name, c.Workers, c.GoMaxProcs))
		}
		if minSpeedup > 0 {
			if c.Cores < c.GoMaxProcs {
				msg := fmt.Sprintf("case %s ran at GOMAXPROCS=%d on a %d-core host (effective cores %d): multi-core speedup is unmeasurable here, recorded %.2fx",
					c.Name, c.GoMaxProcs, rep.Cores, c.Cores, c.Speedup)
				if strict {
					fatal(fmt.Errorf("%s: %s (-strict-multicore)", file, msg))
				}
				fmt.Printf("benchcheck: NOTICE: %s — speedup gate skipped\n", msg)
			} else if c.Speedup < minSpeedup {
				fatal(fmt.Errorf("%s: case %s speedup %.2fx < required %.2fx (%d effective cores, %d workers, %d ns/op)",
					file, c.Name, c.Speedup, minSpeedup, c.Cores, c.Workers, c.NsPerOp))
			} else {
				fmt.Printf("benchcheck: %s multi-core speedup %.2fx >= %.2fx (%d effective cores, %d workers)\n",
					c.Name, c.Speedup, minSpeedup, c.Cores, c.Workers)
			}
		}
		if requireSteals {
			fmt.Printf("benchcheck: %s steals %d (stolen matches %d)\n", c.Name, c.Steals, c.StolenMatches)
		}
		return
	}
	fatal(fmt.Errorf("%s: no case named %q (regenerate the report with whirlbench -bench-json -bench-gmp 1,4,8)", file, caseName))
}

func checkSpeedup(rep *report, file, caseName string, minSpeedup float64) {
	for _, c := range rep.Cases {
		if c.Name != caseName {
			continue
		}
		if c.Speedup < minSpeedup {
			fatal(fmt.Errorf("%s: case %s speedup %.2fx < required %.2fx (%d cores, %d ns/op)",
				file, c.Name, c.Speedup, minSpeedup, rep.Cores, c.NsPerOp))
		}
		fmt.Printf("benchcheck: %s speedup %.2fx >= %.2fx (%d cores)\n",
			c.Name, c.Speedup, minSpeedup, rep.Cores)
		return
	}
	fatal(fmt.Errorf("%s: no case named %q", file, caseName))
}

func checkAllocs(rep *report, file, caseName string, maxRatio float64) {
	for _, c := range rep.Cases {
		if c.Name != caseName {
			continue
		}
		if c.BaselineAllocsPerOp <= 0 {
			fatal(fmt.Errorf("%s: case %s has no baseline_allocs_per_op (report predates the allocation gate; regenerate with whirlbench -bench-json)",
				file, c.Name))
		}
		ratio := float64(c.AllocsPerOp) / float64(c.BaselineAllocsPerOp)
		if ratio > maxRatio {
			fatal(fmt.Errorf("%s: case %s allocs/op ratio %.3f (%d of %d baseline) > allowed %.3f — the hot path regressed its allocation budget",
				file, c.Name, ratio, c.AllocsPerOp, c.BaselineAllocsPerOp, maxRatio))
		}
		fmt.Printf("benchcheck: %s allocs/op %d vs baseline %d (ratio %.3f <= %.3f, %.0f%% reduction)\n",
			c.Name, c.AllocsPerOp, c.BaselineAllocsPerOp, ratio, maxRatio, (1-ratio)*100)
		return
	}
	fatal(fmt.Errorf("%s: no case named %q", file, caseName))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
