// Command benchcheck asserts properties of a BENCH_core.json report
// (written by `whirlbench -bench-json` / `make bench`). CI uses it to
// gate on the sharded-execution speedup:
//
//	benchcheck -file BENCH_core.json -case shards-8 -min-speedup 2
//
// It exits non-zero with a diagnostic when the named case is missing or
// slower than required.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report struct {
	Cores int `json:"cores"`
	Cases []struct {
		Name    string  `json:"name"`
		Shards  int     `json:"shards"`
		NsPerOp int64   `json:"ns_per_op"`
		Speedup float64 `json:"speedup"`
	} `json:"cases"`
}

func main() {
	var (
		file       = flag.String("file", "BENCH_core.json", "benchmark report to check")
		caseName   = flag.String("case", "shards-8", "case name to check")
		minSpeedup = flag.Float64("min-speedup", 2, "required speedup over the single-engine baseline")
	)
	flag.Parse()

	raw, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("%s: %w", *file, err))
	}
	for _, c := range rep.Cases {
		if c.Name != *caseName {
			continue
		}
		if c.Speedup < *minSpeedup {
			fatal(fmt.Errorf("%s: case %s speedup %.2fx < required %.2fx (%d cores, %d ns/op)",
				*file, c.Name, c.Speedup, *minSpeedup, rep.Cores, c.NsPerOp))
		}
		fmt.Printf("benchcheck: %s speedup %.2fx >= %.2fx (%d cores)\n",
			c.Name, c.Speedup, *minSpeedup, rep.Cores)
		return
	}
	fatal(fmt.Errorf("%s: no case named %q", *file, *caseName))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
