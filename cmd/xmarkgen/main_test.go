package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestGenerateByItems(t *testing.T) {
	var buf bytes.Buffer
	if err := generate(&buf, 3, 25, 0); err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	items := 0
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Tag == "item" {
			items++
		}
		return true
	})
	if items != 25 {
		t.Fatalf("items = %d", items)
	}
}

func TestGenerateByBytes(t *testing.T) {
	var buf bytes.Buffer
	if err := generate(&buf, 3, 0, 40_000); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 30_000 || buf.Len() > 60_000 {
		t.Fatalf("generated %d bytes for a 40k target", buf.Len())
	}
	if !strings.Contains(buf.String(), "<site>") {
		t.Fatal("missing site root")
	}
	if _, err := xmltree.Parse(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := generate(&a, 9, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := generate(&b, 9, 10, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different output")
	}
}
