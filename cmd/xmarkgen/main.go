// Command xmarkgen generates deterministic XMark-equivalent auction-site
// documents (the paper's benchmark data substitute).
//
// Usage:
//
//	xmarkgen -items 1000 > site.xml
//	xmarkgen -bytes 10485760 -seed 7 -o site-10mb.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/xmark"
)

func main() {
	var (
		items = flag.Int("items", 0, "number of items to generate")
		bytes = flag.Int("bytes", 0, "target serialized size in bytes (alternative to -items)")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if (*items == 0) == (*bytes == 0) {
		fmt.Fprintln(os.Stderr, "xmarkgen: set exactly one of -items or -bytes")
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	if err := generate(w, *seed, *items, *bytes); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
}

func generate(w io.Writer, seed int64, items, targetBytes int) error {
	if items > 0 {
		return xmark.Write(w, xmark.Options{Seed: seed, Items: items})
	}
	_, err := xmark.WriteBytes(w, seed, targetBytes)
	return err
}
