package main

import (
	"os"

	"path/filepath"
	whirlpool "repro"
	"testing"
)

func writeCatalog(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cat.xml")
	xml := `<book><title>wodehouse</title><info><publisher><name>psmith</name></publisher></info></book>
<book><title>wodehouse</title></book>`
	if err := os.WriteFile(path, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllOptionCombos(t *testing.T) {
	path := writeCatalog(t)
	query := "/book[./title = 'wodehouse']"
	for _, alg := range []string{"whirlpool-s", "whirlpool-m", "lockstep", "lockstep-noprun"} {
		if err := run(path, query, 2, alg, "min-alive", "max-final", "sparse", false, true, true, "", "", ""); err != nil {
			t.Fatalf("algorithm %s: %v", alg, err)
		}
	}
	for _, routing := range []string{"min-alive", "max-score", "min-score", "static"} {
		if err := run(path, query, 1, "whirlpool-s", routing, "max-final", "sparse", false, false, false, "", "", ""); err != nil {
			t.Fatalf("routing %s: %v", routing, err)
		}
	}
	for _, queue := range []string{"max-final", "max-next", "current", "fifo"} {
		if err := run(path, query, 1, "whirlpool-s", "min-alive", queue, "sparse", false, false, false, "", "", ""); err != nil {
			t.Fatalf("queue %s: %v", queue, err)
		}
	}
	for _, norm := range []string{"sparse", "dense", "raw"} {
		if err := run(path, query, 1, "whirlpool-s", "min-alive", "max-final", norm, true, false, false, "", "", ""); err != nil {
			t.Fatalf("norm %s: %v", norm, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeCatalog(t)
	query := "/book[./title]"
	cases := []struct {
		name string
		err  func() error
	}{
		{"missing file", func() error {
			return run(filepath.Join(t.TempDir(), "none.xml"), query, 1, "whirlpool-s", "min-alive", "max-final", "sparse", false, false, false, "", "", "")
		}},
		{"bad query", func() error {
			return run(path, "not a query", 1, "whirlpool-s", "min-alive", "max-final", "sparse", false, false, false, "", "", "")
		}},
		{"bad algorithm", func() error {
			return run(path, query, 1, "bogus", "min-alive", "max-final", "sparse", false, false, false, "", "", "")
		}},
		{"bad routing", func() error {
			return run(path, query, 1, "whirlpool-s", "bogus", "max-final", "sparse", false, false, false, "", "", "")
		}},
		{"bad queue", func() error {
			return run(path, query, 1, "whirlpool-s", "min-alive", "bogus", "sparse", false, false, false, "", "", "")
		}},
		{"bad norm", func() error {
			return run(path, query, 1, "whirlpool-s", "min-alive", "max-final", "bogus", false, false, false, "", "", "")
		}},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunSnapshotFile(t *testing.T) {
	xmlPath := writeCatalog(t)
	db, err := whirlpool.LoadFile(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "cat.wpx")
	if err := db.Save(snap); err != nil {
		t.Fatal(err)
	}
	if err := run(snap, "/book[./title = 'wodehouse']", 2, "whirlpool-s", "min-alive", "max-final", "sparse", false, true, false, "", "", ""); err != nil {
		t.Fatal(err)
	}
}
