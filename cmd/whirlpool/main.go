// Command whirlpool runs a top-k tree-pattern query against an XML file.
//
// Usage:
//
//	whirlpool -file catalog.xml -query "/book[./title = 'wodehouse']" -k 5
//	whirlpool -file site.xml -query "//item[./description/parlist]" -k 10 -algorithm whirlpool-m
//	whirlpool -file site.xml -query "//item[./name]" -exact -stats
//	whirlpool -file site.wpx -query "//item[./quantity < 3]"   # binary snapshot
//
// Flags select the algorithm (whirlpool-s, whirlpool-m, lockstep,
// lockstep-noprun), the routing strategy, the queue discipline and the
// scoring normalization; -exact disables query relaxation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		file      = flag.String("file", "", "XML file to query (required)")
		queryStr  = flag.String("query", "", "tree-pattern query, e.g. //item[./name] (required)")
		k         = flag.Int("k", 10, "number of answers")
		algorithm = flag.String("algorithm", "whirlpool-s", "whirlpool-s | whirlpool-m | lockstep | lockstep-noprun")
		routing   = flag.String("routing", "min-alive", "min-alive | max-score | min-score | static")
		queue     = flag.String("queue", "max-final", "max-final | max-next | current | fifo")
		norm      = flag.String("norm", "sparse", "sparse | dense | raw scoring normalization")
		exact     = flag.Bool("exact", false, "exact matches only (no relaxation)")
		stats     = flag.Bool("stats", false, "print evaluation statistics")
		bindings  = flag.Bool("bindings", false, "print per-answer bindings")
		saveSnap  = flag.String("save-snapshot", "", "write a zero-copy mmap snapshot (.wpxs) to this path; -query becomes optional")
		snShards  = flag.String("snapshot-shards", "", "comma-separated shard counts to persist layouts for (with -save-snapshot)")
		snScopes  = flag.String("snapshot-keyword", "", "comma-separated keyword scope tags to persist (with -save-snapshot)")
	)
	flag.Parse()
	if *file == "" || (*queryStr == "" && *saveSnap == "") {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*file, *queryStr, *k, *algorithm, *routing, *queue, *norm, *exact, *stats, *bindings,
		*saveSnap, *snShards, *snScopes); err != nil {
		fmt.Fprintln(os.Stderr, "whirlpool:", err)
		os.Exit(1)
	}
}

func run(file, queryStr string, k int, algorithm, routing, queue, norm string, exact, stats, bindings bool,
	saveSnap, snShards, snScopes string) error {
	var db *whirlpool.Database
	var err error
	if strings.HasSuffix(file, ".wpx") || strings.HasSuffix(file, ".wpxs") {
		db, err = whirlpool.Open(file)
	} else {
		db, err = whirlpool.LoadFile(file)
	}
	if err != nil {
		return err
	}
	defer db.Close()
	if saveSnap != "" {
		opts := whirlpool.SnapshotOptions{}
		if snShards != "" {
			for _, s := range strings.Split(snShards, ",") {
				var p int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &p); err != nil || p < 1 {
					return fmt.Errorf("bad -snapshot-shards entry %q", s)
				}
				opts.Shards = append(opts.Shards, p)
			}
		}
		if snScopes != "" {
			for _, s := range strings.Split(snScopes, ",") {
				opts.KeywordScopes = append(opts.KeywordScopes, strings.TrimSpace(s))
			}
		}
		if err := db.SaveSnapshot(saveSnap, opts); err != nil {
			return err
		}
		if fi, err := os.Stat(saveSnap); err == nil {
			fmt.Printf("snapshot: %s (%d bytes, %d nodes)\n", saveSnap, fi.Size(), db.Size())
		}
		if queryStr == "" {
			return nil
		}
	}
	q, err := whirlpool.ParseQuery(queryStr)
	if err != nil {
		return err
	}
	opts := whirlpool.Options{K: k, Relax: whirlpool.RelaxAll}
	if exact {
		opts.Relax = whirlpool.RelaxNone
	}
	switch algorithm {
	case "whirlpool-s":
		opts.Algorithm = whirlpool.WhirlpoolS
	case "whirlpool-m":
		opts.Algorithm = whirlpool.WhirlpoolM
	case "lockstep":
		opts.Algorithm = whirlpool.LockStep
	case "lockstep-noprun":
		opts.Algorithm = whirlpool.LockStepNoPrune
	default:
		return fmt.Errorf("unknown algorithm %q", algorithm)
	}
	switch routing {
	case "min-alive":
		opts.Routing = whirlpool.RoutingMinAlive
	case "max-score":
		opts.Routing = whirlpool.RoutingMaxScore
	case "min-score":
		opts.Routing = whirlpool.RoutingMinScore
	case "static":
		opts.Routing = whirlpool.RoutingStatic
	default:
		return fmt.Errorf("unknown routing %q", routing)
	}
	switch queue {
	case "max-final":
		opts.Queue = whirlpool.QueueMaxFinal
	case "max-next":
		opts.Queue = whirlpool.QueueMaxNext
	case "current":
		opts.Queue = whirlpool.QueueCurrentScore
	case "fifo":
		opts.Queue = whirlpool.QueueFIFO
	default:
		return fmt.Errorf("unknown queue %q", queue)
	}
	switch norm {
	case "sparse":
		opts.Normalization = whirlpool.NormSparse
	case "dense":
		opts.Normalization = whirlpool.NormDense
	case "raw":
		opts.Normalization = whirlpool.NormRaw
	default:
		return fmt.Errorf("unknown normalization %q", norm)
	}

	res, err := db.TopK(q, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%d answer(s) for %s\n", len(res.Answers), q)
	for i, a := range res.Answers {
		fmt.Printf("%2d. score=%.4f  %s @ %s\n", i+1, a.Score, a.Root.Path(), a.Root.ID)
		if bindings {
			for id, b := range a.Bindings {
				node := q.Nodes[id]
				switch {
				case b == nil && id == 0:
				case b == nil:
					fmt.Printf("      %-12s (relaxed away)\n", node.Tag)
				default:
					val := b.Value
					if len(val) > 40 {
						val = val[:40] + "…"
					}
					fmt.Printf("      %-12s %s %s\n", node.Tag, b.ID, strings.TrimSpace(val))
				}
			}
		}
	}
	if stats {
		s := res.Stats
		fmt.Printf("stats: %v, %d server ops, %d join comparisons, %d matches created, %d pruned\n",
			s.Duration.Round(10_000), s.ServerOps, s.JoinComparisons, s.MatchesCreated, s.Pruned)
	}
	return nil
}
