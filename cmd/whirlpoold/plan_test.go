package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestQueryVariantsShareOneEngine checks the engine cache keys on the
// canonical plan key, not the raw query text: whitespace and
// predicate-order variants of one query must hit the same cached
// engine.
func TestQueryVariantsShareOneEngine(t *testing.T) {
	s := testServer(t)
	variants := []string{
		"//item[./description/parlist and ./mailbox/mail/text]",
		"//item[./mailbox/mail/text and ./description/parlist]",
		"//item[ ./description/parlist   and ./mailbox/mail/text ]",
	}
	for i, qs := range variants {
		w := post(t, s, "/query", queryRequest{Query: qs, K: 3})
		if w.Code != 200 {
			t.Fatalf("variant %d: %d %s", i, w.Code, w.Body.String())
		}
		var resp queryResponse
		if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		want := "hit"
		if i == 0 {
			want = "miss"
		}
		if resp.Cache != want {
			t.Fatalf("variant %d cache = %q, want %q", i, resp.Cache, want)
		}
	}
	if n := s.engines.Len(); n != 1 {
		t.Fatalf("engine cache holds %d entries for one canonical query, want 1", n)
	}
	ps := s.planner.Stats()
	if ps.Misses != 1 || ps.Hits != 2 {
		t.Fatalf("planner stats = %+v, want 1 miss and 2 hits", ps)
	}
	// Same shape at a different k shares the plan but not the engine.
	if w := post(t, s, "/query", queryRequest{Query: variants[0], K: 7}); w.Code != 200 {
		t.Fatalf("k=7: %d %s", w.Code, w.Body.String())
	}
	if n := s.engines.Len(); n != 2 {
		t.Fatalf("engine cache holds %d entries, want 2", n)
	}
	if ps := s.planner.Stats(); ps.Misses != 1 || ps.Hits != 3 {
		t.Fatalf("planner stats after k=7 = %+v, want 1 miss and 3 hits", ps)
	}
}

// TestPlanMetricsExposed checks /metrics carries the plan-cache
// counters and the planning-duration histogram after serving queries.
func TestPlanMetricsExposed(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 3; i++ {
		if w := post(t, s, "/query", queryRequest{Query: "//item[./description/parlist]", K: 3}); w.Code != 200 {
			t.Fatalf("query %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	w := get(t, s, "/metrics?format=prometheus")
	if w.Code != 200 {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"whirlpoold_plan_cache_hits_total 2",
		"whirlpoold_plan_cache_misses_total 1",
		"whirlpoold_plan_cache_entries 1",
		"whirlpoold_plan_cache_evictions 0",
		"whirlpoold_planning_duration_us",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestShardedPlanServing checks plan-keyed serving works end to end on
// a sharded server too.
// +whirllint:exactscore plan-keyed and fresh serving must return bit-identical scores
func TestShardedPlanServing(t *testing.T) {
	s := testServerOpts(t, serverOptions{Shards: 4})
	a := "//item[./description/parlist and ./mailbox/mail/text]"
	b := "//item[./mailbox/mail/text and ./description/parlist]"
	var first queryResponse
	w := post(t, s, "/query", queryRequest{Query: a, K: 5})
	if w.Code != 200 {
		t.Fatalf("query a: %d %s", w.Code, w.Body.String())
	}
	if err := json.NewDecoder(w.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	var second queryResponse
	w = post(t, s, "/query", queryRequest{Query: b, K: 5})
	if w.Code != 200 {
		t.Fatalf("query b: %d %s", w.Code, w.Body.String())
	}
	if err := json.NewDecoder(w.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" {
		t.Fatalf("variant cache = %q, want hit", second.Cache)
	}
	if len(first.Answers) != len(second.Answers) {
		t.Fatalf("answer counts differ: %d vs %d", len(first.Answers), len(second.Answers))
	}
	for i := range first.Answers {
		if first.Answers[i].Dewey != second.Answers[i].Dewey || first.Answers[i].Score != second.Answers[i].Score {
			t.Fatalf("answer %d differs between variants: %+v vs %+v", i, first.Answers[i], second.Answers[i])
		}
	}
}
