package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/lru"
	"repro/internal/obs"
)

// defaultCacheSize bounds the engine/query and keyword-index caches
// when the -cache flag (or serverOptions) does not say otherwise.
const defaultCacheSize = 256

// server routes HTTP requests to a shared database. Engines are cached
// per (query, options) signature so repeated queries skip plan and
// scorer construction; keyword indexes are cached per scope tag. Both
// caches are LRU-bounded and build entries outside any server-wide
// lock: a slow engine or index construction only ever blocks requests
// for the same cache key (per-key singleflight), never the rest of the
// serving path.
type server struct {
	db *whirlpool.Database
	// sdb, when non-nil, routes every /query through sharded execution:
	// engines are built over the partition and run one goroutine per
	// shard against a shared top-k set.
	sdb       *whirlpool.ShardedDatabase
	mux       *http.ServeMux
	reg       *obs.Registry
	started   time.Time
	accessLog *log.Logger // nil disables access logging

	engines *lru.Cache[string, *engineEntry]
	kwIdx   *lru.Cache[string, *whirlpool.KeywordIndex]
	// planner compiles and caches query plans keyed on the canonical
	// query shape; engine cache keys derive from plan keys, so textual
	// variants of one query share both the plan and the engine.
	planner *whirlpool.Planner

	// buildHook, when non-nil, runs inside every engine / keyword-index
	// construction, outside all server locks. Test seam: the contention
	// tests block it to prove builds do not stall unrelated requests.
	buildHook func()
}

// engineEntry is one cached (query, options) signature: the prepared
// engine — single or sharded, exactly one is set — and its parsed query
// (needed to label bindings in responses).
type engineEntry struct {
	key     string
	eng     *whirlpool.Engine
	sharded *whirlpool.ShardedEngine
	q       *whirlpool.Query
}

func (e *engineEntry) run(ctx context.Context) (*whirlpool.Result, error) {
	if e.sharded != nil {
		return e.sharded.RunContext(ctx)
	}
	return e.eng.RunContext(ctx)
}

// totals aggregates the entry's cumulative instrumentation. For a
// sharded entry, operation counters sum across shards, Runs/Aborted are
// per-run (every shard runs once per query, so the max is the count) and
// Duration is the summed per-shard engine time — CPU time, not wall
// clock.
func (e *engineEntry) totals() whirlpool.EngineTotals {
	if e.sharded == nil {
		return e.eng.Totals()
	}
	var out whirlpool.EngineTotals
	for _, st := range e.sharded.ShardTotals() {
		if st.Totals.Runs > out.Runs {
			out.Runs = st.Totals.Runs
		}
		if st.Totals.Aborted > out.Aborted {
			out.Aborted = st.Totals.Aborted
		}
		out.ServerOps += st.Totals.ServerOps
		out.JoinComparisons += st.Totals.JoinComparisons
		out.MatchesCreated += st.Totals.MatchesCreated
		out.Pruned += st.Totals.Pruned
		out.PrunedRemote += st.Totals.PrunedRemote
		out.Duration += st.Totals.Duration
	}
	return out
}

// serverOptions configures newServer.
type serverOptions struct {
	// CacheSize bounds each LRU cache (engines, keyword indexes);
	// 0 means defaultCacheSize.
	CacheSize int
	// AccessLog, when non-nil, receives one structured JSON line per
	// request.
	AccessLog *log.Logger
	// Shards above 1 partitions the document into that many shards at
	// startup and evaluates every /query with one engine per shard
	// pruning against a shared top-k set.
	Shards int
	// SnapshotOpen is how long whirlpool.OpenSnapshot took when the
	// database was booted from an mmap snapshot; recorded into the
	// whirlpoold_snapshot_open_us histogram so the cold-start win is
	// visible on /metrics. Leave zero for build-served databases.
	SnapshotOpen time.Duration
}

func newServer(db *whirlpool.Database, opts serverOptions) (*server, error) {
	if opts.CacheSize <= 0 {
		opts.CacheSize = defaultCacheSize
	}
	s := &server{
		db:        db,
		mux:       http.NewServeMux(),
		reg:       obs.NewRegistry(),
		started:   time.Now(),
		accessLog: opts.AccessLog,
		engines:   lru.New[string, *engineEntry](opts.CacheSize),
		kwIdx:     lru.New[string, *whirlpool.KeywordIndex](opts.CacheSize),
	}
	if opts.Shards > 1 {
		sdb, err := db.Shard(opts.Shards)
		if err != nil {
			return nil, err
		}
		sdb.ObserveInto(s.reg)
		s.sdb = sdb
		s.planner = sdb.NewPlanner(opts.CacheSize)
	} else {
		s.planner = db.NewPlanner(opts.CacheSize)
	}
	// Pre-register the plan-cache metrics so /metrics carries them (at
	// zero) from boot, not from the first hit or miss.
	s.reg.Counter("whirlpoold_plan_cache_hits_total")
	s.reg.Counter("whirlpoold_plan_cache_misses_total")
	if db.SnapshotBacked() {
		s.reg.Histogram("whirlpoold_snapshot_open_us").Observe(opts.SnapshotOpen.Microseconds())
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/keyword", s.handleKeyword)
	return s, nil
}

// reqInfo carries per-request annotations from handlers back to the
// access-log middleware.
type reqInfo struct {
	cache string // "hit", "miss" or "-" (endpoint has no cache)
}

type reqInfoKey struct{}

// requestInfo returns the request's annotation record (always present
// under ServeHTTP; a fresh throwaway otherwise, so handlers stay usable
// in isolation).
func requestInfo(r *http.Request) *reqInfo {
	if ri, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
		return ri
	}
	return &reqInfo{cache: "-"}
}

// statusWriter captures the response status and size for metrics and
// access logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// endpointLabel maps a request path onto a bounded label set so metric
// cardinality cannot grow with traffic.
func endpointLabel(path string) string {
	switch path {
	case "/healthz", "/stats", "/metrics", "/query", "/keyword":
		return strings.TrimPrefix(path, "/")
	default:
		return "other"
	}
}

// ServeHTTP dispatches to the mux wrapped in the observability
// middleware: per-endpoint request counters and latency/size
// histograms, plus one structured access-log line per request.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ri := &reqInfo{cache: "-"}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri)))

	elapsed := time.Since(start)
	endpoint := endpointLabel(r.URL.Path)
	s.reg.Counter("whirlpoold_http_requests_total",
		"endpoint", endpoint, "code", strconv.Itoa(sw.status)).Inc()
	s.reg.Histogram("whirlpoold_http_request_duration_us", "endpoint", endpoint).
		Observe(elapsed.Microseconds())
	s.reg.Histogram("whirlpoold_http_response_bytes", "endpoint", endpoint).
		Observe(sw.bytes)
	if s.accessLog != nil {
		line, err := json.Marshal(map[string]any{
			"time":   start.UTC().Format(time.RFC3339Nano),
			"method": r.Method,
			"path":   r.URL.Path,
			"status": sw.status,
			"dur_ms": float64(elapsed.Microseconds()) / 1000,
			"bytes":  sw.bytes,
			"cache":  ri.cache,
			"remote": r.RemoteAddr,
		})
		if err == nil {
			s.accessLog.Printf("%s", line)
		}
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// engineStats is one engine's cumulative instrumentation in /stats.
type engineStats struct {
	Key             string       `json:"key"`
	Runs            int64        `json:"runs"`
	Aborted         int64        `json:"aborted,omitempty"`
	ServerOps       int64        `json:"server_ops"`
	JoinComparisons int64        `json:"join_comparisons"`
	MatchesCreated  int64        `json:"matches_created"`
	Pruned          int64        `json:"pruned"`
	PrunedRemote    int64        `json:"pruned_remote,omitempty"`
	TotalMS         float64      `json:"total_ms"`
	Shards          []shardStats `json:"shards,omitempty"`
}

// shardStats is one shard engine's share of a sharded entry's totals.
type shardStats struct {
	Shard          int     `json:"shard"`
	Runs           int64   `json:"runs"`
	ServerOps      int64   `json:"server_ops"`
	MatchesCreated int64   `json:"matches_created"`
	Pruned         int64   `json:"pruned"`
	PrunedRemote   int64   `json:"pruned_remote"`
	TotalMS        float64 `json:"total_ms"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	planStats := s.planner.Stats()
	engines := make([]engineStats, 0, s.engines.Len())
	for _, it := range s.engines.Items() {
		tot := it.Value.totals()
		es := engineStats{
			Key:             it.Key,
			Runs:            tot.Runs,
			Aborted:         tot.Aborted,
			ServerOps:       tot.ServerOps,
			JoinComparisons: tot.JoinComparisons,
			MatchesCreated:  tot.MatchesCreated,
			Pruned:          tot.Pruned,
			PrunedRemote:    tot.PrunedRemote,
			TotalMS:         float64(tot.Duration.Microseconds()) / 1000,
		}
		if it.Value.sharded != nil {
			for _, st := range it.Value.sharded.ShardTotals() {
				es.Shards = append(es.Shards, shardStats{
					Shard:          st.Shard,
					Runs:           st.Totals.Runs,
					ServerOps:      st.Totals.ServerOps,
					MatchesCreated: st.Totals.MatchesCreated,
					Pruned:         st.Totals.Pruned,
					PrunedRemote:   st.Totals.PrunedRemote,
					TotalMS:        float64(st.Totals.Duration.Microseconds()) / 1000,
				})
			}
		}
		engines = append(engines, es)
	}
	stats := map[string]any{
		"nodes":    s.db.Size(),
		"roots":    len(s.db.Document().Roots),
		"snapshot": s.db.SnapshotBacked(),
		"uptime_s": time.Since(s.started).Seconds(),
		"cache": map[string]any{
			"engines": map[string]int{"len": s.engines.Len(), "cap": s.engines.Cap()},
			"keyword": map[string]int{"len": s.kwIdx.Len(), "cap": s.kwIdx.Cap()},
			"plans": map[string]int64{
				"len": int64(planStats.Len), "cap": int64(planStats.Cap),
				"hits": planStats.Hits, "misses": planStats.Misses, "evictions": planStats.Evictions,
			},
		},
		"engines": engines,
	}
	if s.sdb != nil {
		parts, spine := s.sdb.Layout()
		stats["sharding"] = map[string]any{
			"shards":      s.sdb.Shards(),
			"spine_nodes": spine,
			"layout":      parts,
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleMetrics serves the registry: JSON by default, Prometheus text
// exposition with ?format=prometheus (or an Accept header preferring
// text/plain).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Gauge("whirlpoold_engine_cache_entries").Set(int64(s.engines.Len()))
	s.reg.Gauge("whirlpoold_keyword_cache_entries").Set(int64(s.kwIdx.Len()))
	ps := s.planner.Stats()
	s.reg.Gauge("whirlpoold_plan_cache_entries").Set(int64(ps.Len))
	s.reg.Gauge("whirlpoold_plan_cache_evictions").Set(ps.Evictions)
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s": time.Since(s.started).Seconds(),
		"metrics":  s.reg.Snapshot(),
	})
}

func wantsPrometheus(r *http.Request) bool {
	if f := r.URL.Query().Get("format"); f != "" {
		return f == "prometheus" || f == "prom" || f == "text"
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// queryRequest is the POST /query payload.
type queryRequest struct {
	Query     string `json:"query"`
	K         int    `json:"k"`
	Exact     bool   `json:"exact"`
	Algorithm string `json:"algorithm"`
	TimeoutMS int    `json:"timeout_ms"`
}

// queryAnswer is one result row. Bindings are keyed "nodeID:tag" — the
// query-node ID disambiguates two nodes with the same tag (e.g.
// /a[./b and .//b]), which a tag-only key would silently collapse.
type queryAnswer struct {
	Score    float64           `json:"score"`
	Path     string            `json:"path"`
	Dewey    string            `json:"dewey"`
	Bindings map[string]string `json:"bindings,omitempty"`
}

type queryResponse struct {
	Answers      []queryAnswer `json:"answers"`
	ServerOps    int64         `json:"server_ops"`
	Matches      int64         `json:"matches_created"`
	Pruned       int64         `json:"pruned"`
	PrunedRemote int64         `json:"pruned_remote,omitempty"`
	TookMS       float64       `json:"took_ms"`
	Cache        string        `json:"cache"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("query is required"))
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	ent, hit, err := s.engineFor(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ri := requestInfo(r)
	if hit {
		ri.cache = "hit"
		s.reg.Counter("whirlpoold_engine_cache_hits_total").Inc()
	} else {
		ri.cache = "miss"
		s.reg.Counter("whirlpoold_engine_cache_misses_total").Inc()
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := ent.run(ctx)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
			s.reg.Counter("whirlpoold_query_timeouts_total").Inc()
		}
		writeError(w, status, err)
		return
	}
	// Cumulative engine-side measures (the paper's Figures 6–7 and
	// Table 2 counters), live per process.
	s.reg.Counter("whirlpoold_engine_server_ops_total").Add(res.Stats.ServerOps)
	s.reg.Counter("whirlpoold_engine_matches_created_total").Add(res.Stats.MatchesCreated)
	s.reg.Counter("whirlpoold_engine_matches_pruned_total").Add(res.Stats.Pruned)
	s.reg.Counter("whirlpoold_engine_pruned_remote_total").Add(res.Stats.PrunedRemote)
	s.reg.Histogram("whirlpoold_query_duration_us").Observe(res.Stats.Duration.Microseconds())

	resp := queryResponse{
		Answers:      make([]queryAnswer, 0, len(res.Answers)),
		ServerOps:    res.Stats.ServerOps,
		Matches:      res.Stats.MatchesCreated,
		Pruned:       res.Stats.Pruned,
		PrunedRemote: res.Stats.PrunedRemote,
		TookMS:       float64(res.Stats.Duration.Microseconds()) / 1000,
		Cache:        ri.cache,
	}
	for _, a := range res.Answers {
		qa := queryAnswer{
			Score:    a.Score,
			Path:     a.Root.Path(),
			Dewey:    a.Root.ID.String(),
			Bindings: map[string]string{},
		}
		for id, b := range a.Bindings {
			if b == nil || id == 0 {
				continue
			}
			qa.Bindings[strconv.Itoa(id)+":"+ent.q.Nodes[id].Tag] = b.ID.String()
		}
		resp.Answers = append(resp.Answers, qa)
	}
	writeJSON(w, http.StatusOK, resp)
}

// engineFor returns a cached engine for the request signature, building
// it on a miss. Construction happens outside any server-wide lock:
// concurrent requests for the same signature share one build, requests
// for other signatures (and cached ones) proceed immediately.
func (s *server) engineFor(req queryRequest) (*engineEntry, bool, error) {
	opts := whirlpool.Approximate(req.K)
	if req.Exact {
		opts.Relax = whirlpool.RelaxNone
	}
	switch req.Algorithm {
	case "", "whirlpool-s":
		opts.Algorithm = whirlpool.WhirlpoolS
	case "whirlpool-m":
		opts.Algorithm = whirlpool.WhirlpoolM
	case "lockstep":
		opts.Algorithm = whirlpool.LockStep
	case "lockstep-noprun":
		opts.Algorithm = whirlpool.LockStepNoPrune
	default:
		return nil, false, fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
	q, err := whirlpool.ParseQuery(req.Query)
	if err != nil {
		return nil, false, err
	}
	planStart := time.Now()
	plan, planHit, err := s.planner.PlanFor(q, opts.Relax, whirlpool.NormSparse)
	if err != nil {
		return nil, false, err
	}
	s.reg.Histogram("whirlpoold_planning_duration_us").Observe(time.Since(planStart).Microseconds())
	if planHit {
		s.reg.Counter("whirlpoold_plan_cache_hits_total").Inc()
	} else {
		s.reg.Counter("whirlpoold_plan_cache_misses_total").Inc()
	}
	opts.Plan = plan
	// The engine cache keys on the plan's canonical key — not the query
	// text — so whitespace and predicate-order variants share one
	// engine. Only the dimensions the plan key does not cover (k,
	// algorithm) are appended.
	key := fmt.Sprintf("%s|k=%d|alg=%d", plan.Key, req.K, opts.Algorithm)
	return s.engines.GetOrCreate(key, func() (*engineEntry, error) {
		if s.buildHook != nil {
			s.buildHook()
		}
		if s.sdb != nil {
			engs, err := s.sdb.NewEngine(q, opts)
			if err != nil {
				return nil, err
			}
			return &engineEntry{key: key, sharded: engs, q: plan.Query}, nil
		}
		eng, err := s.db.NewEngine(q, opts)
		if err != nil {
			return nil, err
		}
		return &engineEntry{key: key, eng: eng, q: plan.Query}, nil
	})
}

// keywordRequest is the POST /keyword payload.
type keywordRequest struct {
	Scope string `json:"scope"`
	Query string `json:"query"`
	K     int    `json:"k"`
}

func (s *server) handleKeyword(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req keywordRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Scope == "" || req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("scope and query are required"))
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	ki, hit, err := s.keywordIndex(req.Scope)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ri := requestInfo(r)
	if hit {
		ri.cache = "hit"
	} else {
		ri.cache = "miss"
	}
	if ki.Scopes() == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown scope tag %q", req.Scope))
		return
	}
	answers, _, err := ki.TopKTA(req.Query, req.K)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, whirlpool.ErrBadKeywordQuery) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	out := make([]queryAnswer, 0, len(answers))
	for _, a := range answers {
		out = append(out, queryAnswer{Score: a.Score, Path: a.Node.Path(), Dewey: a.Node.ID.String()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"answers": out, "cache": ri.cache})
}

// keywordIndex returns the cached inverted index for a scope tag,
// building it on a miss — outside any server-wide lock, like engineFor.
func (s *server) keywordIndex(scope string) (*whirlpool.KeywordIndex, bool, error) {
	return s.kwIdx.GetOrCreate(scope, func() (*whirlpool.KeywordIndex, error) {
		if s.buildHook != nil {
			s.buildHook()
		}
		return s.db.BuildKeywordIndex(scope), nil
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
