package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro"
)

// server routes HTTP requests to a shared database. Engines are cached
// per (query, options) signature so repeated queries skip plan and
// scorer construction.
type server struct {
	db  *whirlpool.Database
	mux *http.ServeMux

	mu      sync.Mutex
	engines map[string]*whirlpool.Engine
	queries map[string]*whirlpool.Query
	kwIdx   map[string]*whirlpool.KeywordIndex
}

func newServer(db *whirlpool.Database) *server {
	s := &server{
		db:      db,
		mux:     http.NewServeMux(),
		engines: make(map[string]*whirlpool.Engine),
		queries: make(map[string]*whirlpool.Query),
		kwIdx:   make(map[string]*whirlpool.KeywordIndex),
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/keyword", s.handleKeyword)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes": s.db.Size(),
		"roots": len(s.db.Document().Roots),
	})
}

// queryRequest is the POST /query payload.
type queryRequest struct {
	Query     string `json:"query"`
	K         int    `json:"k"`
	Exact     bool   `json:"exact"`
	Algorithm string `json:"algorithm"`
	TimeoutMS int    `json:"timeout_ms"`
}

// queryAnswer is one result row.
type queryAnswer struct {
	Score    float64           `json:"score"`
	Path     string            `json:"path"`
	Dewey    string            `json:"dewey"`
	Bindings map[string]string `json:"bindings,omitempty"`
}

type queryResponse struct {
	Answers   []queryAnswer `json:"answers"`
	ServerOps int64         `json:"server_ops"`
	Matches   int64         `json:"matches_created"`
	Pruned    int64         `json:"pruned"`
	TookMS    float64       `json:"took_ms"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("query is required"))
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	eng, q, err := s.engineFor(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := eng.RunContext(ctx)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err)
		return
	}
	resp := queryResponse{
		Answers:   make([]queryAnswer, 0, len(res.Answers)),
		ServerOps: res.Stats.ServerOps,
		Matches:   res.Stats.MatchesCreated,
		Pruned:    res.Stats.Pruned,
		TookMS:    float64(res.Stats.Duration.Microseconds()) / 1000,
	}
	for _, a := range res.Answers {
		qa := queryAnswer{
			Score:    a.Score,
			Path:     a.Root.Path(),
			Dewey:    a.Root.ID.String(),
			Bindings: map[string]string{},
		}
		for id, b := range a.Bindings {
			if b == nil || id == 0 {
				continue
			}
			qa.Bindings[q.Nodes[id].Tag] = b.ID.String()
		}
		resp.Answers = append(resp.Answers, qa)
	}
	writeJSON(w, http.StatusOK, resp)
}

// engineFor returns a cached engine for the request signature.
func (s *server) engineFor(req queryRequest) (*whirlpool.Engine, *whirlpool.Query, error) {
	opts := whirlpool.Approximate(req.K)
	if req.Exact {
		opts.Relax = whirlpool.RelaxNone
	}
	switch req.Algorithm {
	case "", "whirlpool-s":
		opts.Algorithm = whirlpool.WhirlpoolS
	case "whirlpool-m":
		opts.Algorithm = whirlpool.WhirlpoolM
	case "lockstep":
		opts.Algorithm = whirlpool.LockStep
	case "lockstep-noprun":
		opts.Algorithm = whirlpool.LockStepNoPrune
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
	key := fmt.Sprintf("%s|%d|%v|%s", req.Query, req.K, req.Exact, req.Algorithm)
	s.mu.Lock()
	defer s.mu.Unlock()
	if eng, ok := s.engines[key]; ok {
		return eng, s.queries[key], nil
	}
	q, err := whirlpool.ParseQuery(req.Query)
	if err != nil {
		return nil, nil, err
	}
	eng, err := s.db.NewEngine(q, opts)
	if err != nil {
		return nil, nil, err
	}
	s.engines[key] = eng
	s.queries[key] = q
	return eng, q, nil
}

// keywordRequest is the POST /keyword payload.
type keywordRequest struct {
	Scope string `json:"scope"`
	Query string `json:"query"`
	K     int    `json:"k"`
}

func (s *server) handleKeyword(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req keywordRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Scope == "" || req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("scope and query are required"))
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	ki := s.keywordIndex(req.Scope)
	answers, _ := ki.TopKTA(req.Query, req.K)
	out := make([]queryAnswer, 0, len(answers))
	for _, a := range answers {
		out = append(out, queryAnswer{Score: a.Score, Path: a.Node.Path(), Dewey: a.Node.ID.String()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"answers": out})
}

func (s *server) keywordIndex(scope string) *whirlpool.KeywordIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ki, ok := s.kwIdx[scope]; ok {
		return ki
	}
	ki := s.db.BuildKeywordIndex(scope)
	s.kwIdx[scope] = ki
	return ki
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
