package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

func testServer(t *testing.T) *server {
	t.Helper()
	db, err := whirlpool.GenerateXMark(whirlpool.XMarkOptions{Seed: 3, Items: 120})
	if err != nil {
		t.Fatal(err)
	}
	return newServer(db)
}

func post(t *testing.T, s *server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestHealthAndStats(t *testing.T) {
	s := testServer(t)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats map[string]int
	if err := json.NewDecoder(w.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["nodes"] == 0 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/query", queryRequest{Query: "//item[./description/parlist]", K: 5})
	if w.Code != 200 {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	var resp queryResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 5 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	if resp.ServerOps == 0 {
		t.Fatal("missing stats")
	}
	a := resp.Answers[0]
	if a.Score <= 0 || a.Path == "" || a.Dewey == "" {
		t.Fatalf("answer = %+v", a)
	}
	if a.Bindings["parlist"] == "" {
		t.Fatalf("bindings = %v", a.Bindings)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		body   any
		status int
	}{
		{queryRequest{}, http.StatusBadRequest},                                    // missing query
		{queryRequest{Query: "not an xpath"}, http.StatusBadRequest},               // parse error
		{queryRequest{Query: "//item", Algorithm: "bogus"}, http.StatusBadRequest}, // bad algorithm
		{"not even json {{", http.StatusBadRequest},                                // malformed body
	}
	for i, c := range cases {
		w := post(t, s, "/query", c.body)
		if w.Code != c.status {
			t.Errorf("case %d: status %d, want %d (%s)", i, w.Code, c.status, w.Body.String())
		}
	}
	// GET is not allowed.
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/query", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d", w.Code)
	}
}

func TestQueryEngineCacheAndConcurrency(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := queryRequest{Query: "//item[./description/parlist and ./mailbox/mail/text]", K: 3}
			if i%2 == 0 {
				body.Algorithm = "whirlpool-m"
			}
			w := post(t, s, "/query", body)
			if w.Code != 200 {
				t.Errorf("concurrent query: %d %s", w.Code, w.Body.String())
			}
		}(i)
	}
	wg.Wait()
	s.mu.Lock()
	cached := len(s.engines)
	s.mu.Unlock()
	if cached != 2 {
		t.Fatalf("engine cache entries = %d, want 2", cached)
	}
}

func TestKeywordEndpoint(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/keyword", keywordRequest{Scope: "item", Query: "gold silver", K: 3})
	if w.Code != 200 {
		t.Fatalf("keyword: %d %s", w.Code, w.Body.String())
	}
	var resp struct {
		Answers []queryAnswer `json:"answers"`
	}
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no keyword answers")
	}
	// Missing fields rejected.
	if w := post(t, s, "/keyword", keywordRequest{Scope: "item"}); w.Code != http.StatusBadRequest {
		t.Fatalf("missing query: %d", w.Code)
	}
}

func TestQueryTimeout(t *testing.T) {
	s := testServer(t)
	// A 0ms... 1ms timeout may or may not fire; accept either success or
	// gateway timeout, but never another error.
	w := post(t, s, "/query", queryRequest{Query: "//item[./mailbox/mail/text[./bold and ./keyword] and ./name]", K: 15, TimeoutMS: 1})
	if w.Code != 200 && w.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout query: %d %s", w.Code, w.Body.String())
	}
}
