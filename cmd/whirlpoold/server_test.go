package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

func testServer(t *testing.T) *server {
	t.Helper()
	return testServerOpts(t, serverOptions{})
}

func testServerOpts(t *testing.T, opts serverOptions) *server {
	t.Helper()
	db, err := whirlpool.GenerateXMark(whirlpool.XMarkOptions{Seed: 3, Items: 120})
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func post(t *testing.T, s *server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestHealthAndStats(t *testing.T) {
	s := testServer(t)
	w := get(t, s, "/healthz")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}
	// Run one query so /stats has a cached engine to report on.
	if w := post(t, s, "/query", queryRequest{Query: "//item[./description/parlist]", K: 3}); w.Code != 200 {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	w = get(t, s, "/stats")
	var stats struct {
		Nodes int `json:"nodes"`
		Cache struct {
			Engines struct{ Len, Cap int } `json:"engines"`
		} `json:"cache"`
		Engines []engineStats `json:"engines"`
	}
	if err := json.NewDecoder(w.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Nodes == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Cache.Engines.Len != 1 || stats.Cache.Engines.Cap != defaultCacheSize {
		t.Fatalf("cache stats = %+v", stats.Cache)
	}
	if len(stats.Engines) != 1 {
		t.Fatalf("engine stats = %+v", stats.Engines)
	}
	es := stats.Engines[0]
	if es.Runs != 1 || es.ServerOps == 0 || es.MatchesCreated == 0 {
		t.Fatalf("engine totals = %+v", es)
	}
}

// +whirllint:exactscore served scores must match the engine's exactly
func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/query", queryRequest{Query: "//item[./description/parlist]", K: 5})
	if w.Code != 200 {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	var resp queryResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 5 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	if resp.ServerOps == 0 {
		t.Fatal("missing stats")
	}
	if resp.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", resp.Cache)
	}
	a := resp.Answers[0]
	if a.Score <= 0 || a.Path == "" || a.Dewey == "" {
		t.Fatalf("answer = %+v", a)
	}
	// Bindings are keyed "nodeID:tag" so same-tag query nodes cannot
	// collide; the parlist binding must be present under some node ID.
	found := false
	for k, v := range a.Bindings {
		if strings.HasSuffix(k, ":parlist") && v != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bindings = %v", a.Bindings)
	}

	// The same request again is served from the engine cache.
	w = post(t, s, "/query", queryRequest{Query: "//item[./description/parlist]", K: 5})
	if w.Code != 200 {
		t.Fatalf("repeat query: %d %s", w.Code, w.Body.String())
	}
	resp = queryResponse{}
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" {
		t.Fatalf("repeat request cache = %q, want hit", resp.Cache)
	}
}

// TestBindingKeysDisambiguateSameTag pins the nodeID:tag key format: a
// query with two nodes of the same tag must report both bindings, not
// silently collapse them into one map entry.
func TestBindingKeysDisambiguateSameTag(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/query", queryRequest{Query: "//item[./description/parlist/listitem and ./mailbox/mail/text/keyword and ./name]", K: 3})
	if w.Code != 200 {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	var resp queryResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no answers")
	}
	// Every binding key must carry a node-ID prefix.
	for _, a := range resp.Answers {
		for k := range a.Bindings {
			parts := strings.SplitN(k, ":", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				t.Fatalf("binding key %q not in nodeID:tag form", k)
			}
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		body   any
		status int
	}{
		{queryRequest{}, http.StatusBadRequest},                                    // missing query
		{queryRequest{Query: "not an xpath"}, http.StatusBadRequest},               // parse error
		{queryRequest{Query: "//item", Algorithm: "bogus"}, http.StatusBadRequest}, // bad algorithm
		{"not even json {{", http.StatusBadRequest},                                // malformed body
	}
	for i, c := range cases {
		w := post(t, s, "/query", c.body)
		if w.Code != c.status {
			t.Errorf("case %d: status %d, want %d (%s)", i, w.Code, c.status, w.Body.String())
		}
	}
	// GET is not allowed.
	if w := get(t, s, "/query"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d", w.Code)
	}
}

// TestQueryErrorsNotCached pins that a failed engine build does not
// poison the cache: the same bad query fails identically twice and
// leaves no entry behind.
func TestQueryErrorsNotCached(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 2; i++ {
		if w := post(t, s, "/query", queryRequest{Query: "not an xpath"}); w.Code != http.StatusBadRequest {
			t.Fatalf("attempt %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	if n := s.engines.Len(); n != 0 {
		t.Fatalf("failed builds left %d cache entries", n)
	}
}

func TestQueryEngineCacheAndConcurrency(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := queryRequest{Query: "//item[./description/parlist and ./mailbox/mail/text]", K: 3}
			if i%2 == 0 {
				body.Algorithm = "whirlpool-m"
			}
			w := post(t, s, "/query", body)
			if w.Code != 200 {
				t.Errorf("concurrent query: %d %s", w.Code, w.Body.String())
			}
		}(i)
	}
	wg.Wait()
	// Per-key singleflight: 16 requests over 2 signatures build exactly
	// 2 engines.
	if cached := s.engines.Len(); cached != 2 {
		t.Fatalf("engine cache entries = %d, want 2", cached)
	}
}

// TestEngineCacheLRUBound pins the leak fix: the engine cache never
// exceeds its capacity no matter how many distinct signatures arrive.
func TestEngineCacheLRUBound(t *testing.T) {
	s := testServerOpts(t, serverOptions{CacheSize: 4})
	for k := 1; k <= 10; k++ {
		w := post(t, s, "/query", queryRequest{Query: "//item[./description/parlist]", K: k})
		if w.Code != 200 {
			t.Fatalf("k=%d: %d %s", k, w.Code, w.Body.String())
		}
	}
	if n, c := s.engines.Len(), s.engines.Cap(); n != 4 || c != 4 {
		t.Fatalf("engine cache len=%d cap=%d, want 4/4", n, c)
	}
	// Evicted signatures still work (rebuilt on demand).
	if w := post(t, s, "/query", queryRequest{Query: "//item[./description/parlist]", K: 1}); w.Code != 200 {
		t.Fatalf("evicted signature: %d %s", w.Code, w.Body.String())
	}
}

// TestBuildDoesNotBlockServingPath is the regression test for the
// serving-path stall: under the old server-wide lock, any request
// arriving while an engine (or keyword index) was being built blocked
// until the build finished — even requests whose engine was already
// cached. Now construction happens outside the cache lock, so a parked
// build must not delay cached requests for other keys.
// +whirllint:managed request goroutines signal completion on their reply channels
func TestBuildDoesNotBlockServingPath(t *testing.T) {
	s := testServer(t)
	warmQuery := queryRequest{Query: "//item[./description/parlist]", K: 3}
	warmKeyword := keywordRequest{Scope: "item", Query: "gold silver", K: 3}
	if w := post(t, s, "/query", warmQuery); w.Code != 200 {
		t.Fatalf("warm query: %d %s", w.Code, w.Body.String())
	}
	if w := post(t, s, "/keyword", warmKeyword); w.Code != 200 {
		t.Fatalf("warm keyword: %d %s", w.Code, w.Body.String())
	}

	entered := make(chan struct{})
	gate := make(chan struct{})
	s.buildHook = func() {
		entered <- struct{}{}
		<-gate
	}

	slowDone := make(chan int, 1)
	go func() {
		w := post(t, s, "/query", queryRequest{Query: "//item[./mailbox/mail/text]", K: 3})
		slowDone <- w.Code
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("slow build never started")
	}

	// With the build for the new signature parked inside buildHook, the
	// warm requests must still be served promptly.
	fastDone := make(chan string, 2)
	go func() {
		w := post(t, s, "/query", warmQuery)
		fastDone <- fmt.Sprintf("query:%d", w.Code)
	}()
	go func() {
		w := post(t, s, "/keyword", warmKeyword)
		fastDone <- fmt.Sprintf("keyword:%d", w.Code)
	}()
	for i := 0; i < 2; i++ {
		select {
		case res := <-fastDone:
			if !strings.HasSuffix(res, ":200") {
				t.Fatalf("cached request failed during in-flight build: %s", res)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cached request blocked on another key's in-flight build")
		}
	}

	close(gate)
	select {
	case code := <-slowDone:
		if code != 200 {
			t.Fatalf("slow build request: %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow build request never finished")
	}
	s.buildHook = nil
}

func TestKeywordEndpoint(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/keyword", keywordRequest{Scope: "item", Query: "gold silver", K: 3})
	if w.Code != 200 {
		t.Fatalf("keyword: %d %s", w.Code, w.Body.String())
	}
	var resp struct {
		Answers []queryAnswer `json:"answers"`
		Cache   string        `json:"cache"`
	}
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no keyword answers")
	}
	if resp.Cache != "miss" {
		t.Fatalf("first keyword cache = %q, want miss", resp.Cache)
	}
	// Missing fields rejected.
	if w := post(t, s, "/keyword", keywordRequest{Scope: "item"}); w.Code != http.StatusBadRequest {
		t.Fatalf("missing query: %d", w.Code)
	}
}

// TestKeywordErrors pins the error propagation fix: TopKTA failures
// are client errors (400), not silently-empty 200s.
func TestKeywordErrors(t *testing.T) {
	s := testServer(t)
	// A query that tokenizes to nothing is a bad query.
	w := post(t, s, "/keyword", keywordRequest{Scope: "item", Query: "!!! ...", K: 3})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unsearchable query: %d %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "no searchable words") {
		t.Fatalf("error body = %s", w.Body.String())
	}
	// An unknown scope tag indexes nothing.
	w = post(t, s, "/keyword", keywordRequest{Scope: "nonesuch", Query: "gold", K: 3})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown scope: %d %s", w.Code, w.Body.String())
	}
}

// TestMetricsAdvance asserts the acceptance criterion: after a query,
// /metrics exposes advanced request counters, latency histograms and
// engine counters in both JSON and Prometheus text forms.
func TestMetricsAdvance(t *testing.T) {
	s := testServer(t)
	if w := post(t, s, "/query", queryRequest{Query: "//item[./description/parlist]", K: 3}); w.Code != 200 {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}

	w := get(t, s, "/metrics")
	if w.Code != 200 {
		t.Fatalf("/metrics: %d", w.Code)
	}
	var body struct {
		Metrics []obs.Metric `json:"metrics"`
	}
	if err := json.NewDecoder(w.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	find := func(name string, labels map[string]string) *obs.Metric {
		for i := range body.Metrics {
			m := &body.Metrics[i]
			if m.Name != name {
				continue
			}
			ok := true
			for k, v := range labels {
				if m.Labels[k] != v {
					ok = false
				}
			}
			if ok {
				return m
			}
		}
		return nil
	}
	if m := find("whirlpoold_http_requests_total", map[string]string{"endpoint": "query", "code": "200"}); m == nil || m.Value < 1 {
		t.Fatalf("request counter missing or zero: %+v", m)
	}
	if m := find("whirlpoold_http_request_duration_us", map[string]string{"endpoint": "query"}); m == nil || m.Kind != "histogram" || m.Histogram == nil || m.Histogram.Count < 1 {
		t.Fatalf("latency histogram missing or empty: %+v", m)
	}
	if m := find("whirlpoold_engine_server_ops_total", nil); m == nil || m.Value < 1 {
		t.Fatalf("engine server-ops counter missing or zero: %+v", m)
	}
	if m := find("whirlpoold_query_duration_us", nil); m == nil || m.Histogram == nil || m.Histogram.Count < 1 {
		t.Fatalf("query duration histogram missing or empty: %+v", m)
	}
	if m := find("whirlpoold_engine_cache_misses_total", nil); m == nil || m.Value != 1 {
		t.Fatalf("cache miss counter = %+v", m)
	}

	// Prometheus text exposition of the same registry.
	w = get(t, s, "/metrics?format=prometheus")
	if w.Code != 200 {
		t.Fatalf("/metrics?format=prometheus: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	text := w.Body.String()
	for _, want := range []string{
		"# TYPE whirlpoold_http_requests_total counter",
		`whirlpoold_http_requests_total{endpoint="query",code="200"} `,
		"# TYPE whirlpoold_http_request_duration_us histogram",
		`whirlpoold_http_request_duration_us_bucket{endpoint="query",le="+Inf"} `,
		`whirlpoold_http_request_duration_us_count{endpoint="query"} `,
		"# TYPE whirlpoold_engine_server_ops_total counter",
		"# TYPE whirlpoold_engine_cache_entries gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestMixedConcurrentLoad drives /query and /keyword together (run
// under -race in CI): handlers share the caches and the registry but
// must never block on each other's construction, and the LRU bound
// must hold throughout.
func TestMixedConcurrentLoad(t *testing.T) {
	s := testServerOpts(t, serverOptions{CacheSize: 3})
	queries := []queryRequest{
		{Query: "//item[./description/parlist]", K: 3},
		{Query: "//item[./description/parlist]", K: 3, Algorithm: "whirlpool-m"},
		{Query: "//item[./mailbox/mail/text]", K: 2},
		{Query: "//item[./name]", K: 4, Algorithm: "lockstep"},
	}
	keywords := []keywordRequest{
		{Scope: "item", Query: "gold silver", K: 3},
		{Scope: "keyword", Query: "gold", K: 2},
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%3 == 2 {
				w := post(t, s, "/keyword", keywords[i%len(keywords)])
				if w.Code != 200 {
					t.Errorf("keyword %d: %d %s", i, w.Code, w.Body.String())
				}
				return
			}
			w := post(t, s, "/query", queries[i%len(queries)])
			if w.Code != 200 {
				t.Errorf("query %d: %d %s", i, w.Code, w.Body.String())
			}
		}(i)
	}
	wg.Wait()
	if n, c := s.engines.Len(), s.engines.Cap(); n > c {
		t.Fatalf("engine cache exceeded bound: len=%d cap=%d", n, c)
	}
	if n, c := s.kwIdx.Len(), s.kwIdx.Cap(); n > c {
		t.Fatalf("keyword cache exceeded bound: len=%d cap=%d", n, c)
	}
	if w := get(t, s, "/metrics"); w.Code != 200 {
		t.Fatalf("/metrics after load: %d", w.Code)
	}
}

// TestAccessLog asserts the structured access-log line: one JSON object
// per request with method, path, status, latency and cache annotation.
func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := log.New(syncWriter{mu: &mu, w: &buf}, "", 0)
	s := testServerOpts(t, serverOptions{AccessLog: logger})
	if w := post(t, s, "/query", queryRequest{Query: "//item[./description/parlist]", K: 3}); w.Code != 200 {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("access log lines = %d: %q", len(lines), lines)
	}
	var entry struct {
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		DurMS  float64 `json:"dur_ms"`
		Cache  string  `json:"cache"`
		Bytes  int64   `json:"bytes"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("access log not JSON: %v (%q)", err, lines[0])
	}
	if entry.Method != "POST" || entry.Path != "/query" || entry.Status != 200 {
		t.Fatalf("access log entry = %+v", entry)
	}
	if entry.Cache != "miss" {
		t.Fatalf("cache annotation = %q, want miss", entry.Cache)
	}
	if entry.DurMS < 0 || entry.Bytes <= 0 {
		t.Fatalf("access log entry = %+v", entry)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestQueryTimeout(t *testing.T) {
	s := testServer(t)
	// A 1ms timeout may or may not fire; accept either success or
	// gateway timeout, but never another error.
	w := post(t, s, "/query", queryRequest{Query: "//item[./mailbox/mail/text[./bold and ./keyword] and ./name]", K: 15, TimeoutMS: 1})
	if w.Code != 200 && w.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout query: %d %s", w.Code, w.Body.String())
	}
}

// +whirllint:exactscore sharded and unsharded serving must agree exactly
func TestShardedServing(t *testing.T) {
	s := testServerOpts(t, serverOptions{Shards: 4})
	base := testServer(t)

	req := queryRequest{Query: "//item[./description/parlist and ./mailbox/mail/text]", K: 5}
	w := post(t, s, "/query", req)
	if w.Code != 200 {
		t.Fatalf("sharded query: %d %s", w.Code, w.Body.String())
	}
	var got, want queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	bw := post(t, base, "/query", req)
	if err := json.Unmarshal(bw.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("sharded answers = %d, unsharded %d", len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if got.Answers[i].Score != want.Answers[i].Score {
			t.Fatalf("answer %d: sharded score %v, unsharded %v",
				i, got.Answers[i].Score, want.Answers[i].Score)
		}
	}

	// /stats carries the sharding layout and a per-shard breakdown for
	// the cached engine.
	sw := get(t, s, "/stats")
	if sw.Code != 200 {
		t.Fatalf("stats: %d", sw.Code)
	}
	var stats struct {
		Sharding struct {
			Shards int `json:"shards"`
			Layout []struct {
				Shard     int `json:"shard"`
				NodeCount int `json:"node_count"`
			} `json:"layout"`
		} `json:"sharding"`
		Engines []engineStats `json:"engines"`
	}
	if err := json.Unmarshal(sw.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sharding.Shards != 4 || len(stats.Sharding.Layout) != 4 {
		t.Fatalf("sharding section = %+v", stats.Sharding)
	}
	if len(stats.Engines) != 1 {
		t.Fatalf("engines = %d, want 1", len(stats.Engines))
	}
	es := stats.Engines[0]
	if es.Runs != 1 || len(es.Shards) == 0 {
		t.Fatalf("engine stats = %+v", es)
	}
	var ops int64
	for _, sh := range es.Shards {
		ops += sh.ServerOps
	}
	if ops != es.ServerOps {
		t.Fatalf("per-shard ops sum %d, engine total %d", ops, es.ServerOps)
	}

	// Per-shard metrics reached the registry.
	mw := get(t, s, "/metrics?format=prometheus")
	if !strings.Contains(mw.Body.String(), "whirlpool_shard_server_ops_total") {
		t.Fatal("metrics missing per-shard counters")
	}
}
