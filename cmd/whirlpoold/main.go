// Command whirlpoold serves top-k XML queries over HTTP. It loads one
// document (XML or .wpx snapshot) at startup and answers concurrent
// queries with the Whirlpool engine.
//
//	whirlpoold -file site.xml -addr :8080
//
// Endpoints:
//
//	GET  /healthz          → 200 "ok"
//	GET  /stats            → document statistics (JSON)
//	POST /query            → top-k evaluation (JSON in/out)
//	POST /keyword          → bag-of-words top-k (JSON in/out)
//
// POST /query body:
//
//	{
//	  "query": "//item[./description/parlist]",
//	  "k": 10,
//	  "exact": false,
//	  "algorithm": "whirlpool-s",     // optional
//	  "timeout_ms": 2000              // optional
//	}
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		file = flag.String("file", "", "XML file or .wpx snapshot to serve (required)")
		addr = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	var db *whirlpool.Database
	var err error
	if strings.HasSuffix(*file, ".wpx") {
		db, err = whirlpool.Open(*file)
	} else {
		db, err = whirlpool.LoadFile(*file)
	}
	if err != nil {
		log.Fatal(err)
	}
	srv := newServer(db)
	log.Printf("whirlpoold: serving %s (%d nodes) on %s", *file, db.Size(), *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
