// Command whirlpoold serves top-k XML queries over HTTP. It loads one
// document (XML or .wpx snapshot) at startup and answers concurrent
// queries with the Whirlpool engine.
//
//	whirlpoold -file site.xml -addr :8080
//	whirlpoold -snapshot site.wpxs -addr :8080   # mmap, no build pass
//
// -snapshot boots from a zero-copy v2 snapshot: postings, Dewey arrays,
// synopsis and shard layouts are served straight from mapped pages, so
// startup skips the parse/index/synopsis builds entirely and concurrent
// daemons share one kernel page cache. A -file given alongside acts as a
// fallback when the snapshot is missing or corrupt.
//
// Endpoints:
//
//	GET  /healthz          → 200 "ok"
//	GET  /stats            → document, cache and per-engine statistics (JSON)
//	GET  /metrics          → request/engine metrics (JSON; ?format=prometheus
//	                         for Prometheus text exposition)
//	POST /query            → top-k evaluation (JSON in/out)
//	POST /keyword          → bag-of-words top-k (JSON in/out)
//
// POST /query body:
//
//	{
//	  "query": "//item[./description/parlist]",
//	  "k": 10,
//	  "exact": false,
//	  "algorithm": "whirlpool-s",     // optional
//	  "timeout_ms": 2000              // optional
//	}
//
// Engines and keyword indexes are cached per request signature in
// LRU caches bounded by -cache; -access-log emits one structured JSON
// line per request to stderr. -shards N partitions the document into N
// shards at startup: every query then runs one engine per shard in
// parallel, all pruning against a shared top-k set, and /stats gains a
// per-shard breakdown.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		file      = flag.String("file", "", "XML file or .wpx snapshot to serve")
		snapshot  = flag.String("snapshot", "", "boot from a zero-copy mmap snapshot (.wpxs); falls back to -file on error")
		addr      = flag.String("addr", ":8080", "listen address")
		cacheSize = flag.Int("cache", defaultCacheSize, "max cached engines / keyword indexes (LRU)")
		accessLog = flag.Bool("access-log", false, "log one structured JSON line per request to stderr")
		shards    = flag.Int("shards", 1, "partition the document into N shards evaluated in parallel per query")
	)
	flag.Parse()
	if *file == "" && *snapshot == "" {
		flag.Usage()
		os.Exit(2)
	}
	var db *whirlpool.Database
	var err error
	var openTook time.Duration
	served := *file
	if *snapshot != "" {
		start := time.Now()
		db, err = whirlpool.OpenSnapshot(*snapshot)
		openTook = time.Since(start)
		if err != nil {
			if *file == "" {
				log.Fatal(err)
			}
			log.Printf("whirlpoold: snapshot %s unusable (%v), rebuilding from %s", *snapshot, err, *file)
		} else {
			served = *snapshot
		}
	}
	if db == nil {
		if strings.HasSuffix(*file, ".wpx") || strings.HasSuffix(*file, ".wpxs") {
			db, err = whirlpool.Open(*file)
		} else {
			db, err = whirlpool.LoadFile(*file)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	opts := serverOptions{CacheSize: *cacheSize, Shards: *shards}
	if db.SnapshotBacked() {
		opts.SnapshotOpen = openTook
	}
	if *accessLog {
		opts.AccessLog = log.New(os.Stderr, "", 0)
	}
	srv, err := newServer(db, opts)
	if err != nil {
		log.Fatal(err)
	}
	mode := ""
	if db.SnapshotBacked() {
		mode = ", mmap snapshot"
	}
	if *shards > 1 {
		log.Printf("whirlpoold: serving %s (%d nodes, %d shards%s) on %s", served, db.Size(), *shards, mode, *addr)
	} else {
		log.Printf("whirlpoold: serving %s (%d nodes%s) on %s", served, db.Size(), mode, *addr)
	}
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
