package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func TestRunCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := repoRoot(t)
	wd, _ := os.Getwd()
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if code := run([]string{"./..."}); code != 0 {
		t.Fatalf("whirlpool-lint ./... exited %d on the repo, want 0", code)
	}
}

func TestRunFindsSeededViolations(t *testing.T) {
	root := repoRoot(t)
	testdata := filepath.Join(root, "internal", "analysis", "testdata", "src", "goroutineleak")
	if code := run([]string{testdata}); code != 1 {
		t.Fatalf("whirlpool-lint on seeded testdata exited %d, want 1", code)
	}
}

func TestListFlag(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
}

func TestVersionHandshake(t *testing.T) {
	if code := run([]string{"-V=full"}); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	if code := run([]string{"-flags"}); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
}

// TestVetToolProtocol drives the binary exactly the way `go vet
// -vettool` does: build it, then let the go command invoke it per
// package with config files.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	root := repoRoot(t)
	tool := filepath.Join(t.TempDir(), "whirlpool-lint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/whirlpool-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tool: %v\n%s", err, out)
	}

	clean := exec.Command("go", "vet", "-vettool="+tool, "./internal/core/")
	clean.Dir = root
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package: %v\n%s", err, out)
	}

	seeded := exec.Command("go", "vet", "-vettool="+tool,
		"./internal/analysis/testdata/src/lockguard/")
	seeded.Dir = root
	out, err := seeded.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on seeded testdata succeeded; output:\n%s", out)
	}
	if !strings.Contains(string(out), "guarded by counter.mu") {
		t.Fatalf("vet output missing lockguard diagnostic:\n%s", out)
	}
}
