package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func TestRunCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := repoRoot(t)
	wd, _ := os.Getwd()
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if code := run([]string{"./..."}, os.Stdout); code != 0 {
		t.Fatalf("whirlpool-lint ./... exited %d on the repo, want 0", code)
	}
}

// TestRunCleanOnRepoWithTests is the satellite acceptance gate: the
// suite must also pass over the module's _test.go files.
func TestRunCleanOnRepoWithTests(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module including tests")
	}
	root := repoRoot(t)
	wd, _ := os.Getwd()
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if code := run([]string{"-tests", "./..."}, os.Stdout); code != 0 {
		t.Fatalf("whirlpool-lint -tests ./... exited %d on the repo, want 0", code)
	}
}

func TestRunFindsSeededViolations(t *testing.T) {
	root := repoRoot(t)
	testdata := filepath.Join(root, "internal", "analysis", "testdata", "src", "goroutineleak")
	if code := run([]string{"-baseline", "", testdata}, os.Stdout); code != 1 {
		t.Fatalf("whirlpool-lint on seeded testdata exited %d, want 1", code)
	}
}

// TestBaselineWorkflow exercises the suppression loop: record current
// findings with -update-baseline, then a re-run with that baseline is
// clean, and the committed file format is stable JSON.
func TestBaselineWorkflow(t *testing.T) {
	root := repoRoot(t)
	testdata := filepath.Join(root, "internal", "analysis", "testdata", "src", "lockguard")
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	if code := run([]string{"-baseline", baseline, "-update-baseline", testdata}, os.Stdout); code != 0 {
		t.Fatalf("-update-baseline exited %d, want 0", code)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var file struct {
		Version int `json:"version"`
		Entries []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Message  string `json:"message"`
			Count    int    `json:"count"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if file.Version != 1 || len(file.Entries) == 0 {
		t.Fatalf("baseline version=%d entries=%d, want version 1 and seeded entries", file.Version, len(file.Entries))
	}

	if code := run([]string{"-baseline", baseline, testdata}, os.Stdout); code != 0 {
		t.Fatalf("run with full baseline exited %d, want 0 (all findings suppressed)", code)
	}
}

// TestSARIFOutput checks the report file is valid SARIF 2.1.0 with the
// seeded findings as results.
func TestSARIFOutput(t *testing.T) {
	root := repoRoot(t)
	testdata := filepath.Join(root, "internal", "analysis", "testdata", "src", "floatscore")
	sarif := filepath.Join(t.TempDir(), "lint.sarif")

	if code := run([]string{"-baseline", "", "-sarif", sarif, testdata}, os.Stdout); code != 1 {
		t.Fatalf("seeded run exited %d, want 1", code)
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatalf("SARIF not written: %v", err)
	}
	var report struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID        string `json:"ruleId"`
				BaselineState string `json:"baselineState"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if report.Version != "2.1.0" || len(report.Runs) != 1 {
		t.Fatalf("SARIF version=%q runs=%d, want 2.1.0 with one run", report.Version, len(report.Runs))
	}
	if len(report.Runs[0].Results) == 0 {
		t.Fatal("SARIF has no results for seeded testdata")
	}
	for _, r := range report.Runs[0].Results {
		if r.BaselineState != "new" {
			t.Fatalf("result baselineState=%q with no baseline, want new", r.BaselineState)
		}
	}
}

func TestListFlag(t *testing.T) {
	if code := run([]string{"-list"}, os.Stdout); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
}

func TestVersionHandshake(t *testing.T) {
	if code := run([]string{"-V=full"}, os.Stdout); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	if code := run([]string{"-flags"}, os.Stdout); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
}

// TestVetToolProtocol drives the binary exactly the way `go vet
// -vettool` does: build it, then let the go command invoke it per
// package with config files.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	root := repoRoot(t)
	tool := filepath.Join(t.TempDir(), "whirlpool-lint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/whirlpool-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tool: %v\n%s", err, out)
	}

	clean := exec.Command("go", "vet", "-vettool="+tool, "./internal/core/")
	clean.Dir = root
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package: %v\n%s", err, out)
	}

	seeded := exec.Command("go", "vet", "-vettool="+tool,
		"./internal/analysis/testdata/src/lockguard/")
	seeded.Dir = root
	out, err := seeded.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on seeded testdata succeeded; output:\n%s", out)
	}
	if !strings.Contains(string(out), "guarded by counter.mu") {
		t.Fatalf("vet output missing lockguard diagnostic:\n%s", out)
	}
}
