// Command whirlpool-lint runs the Whirlpool analyzer suite
// (internal/analysis): arenaescape, ctxpoll, floatscore, goroutineleak,
// lockguard.
//
// Standalone, over package patterns (exit 1 on findings):
//
//	go run ./cmd/whirlpool-lint ./...
//	whirlpool-lint ./internal/core/ ./cmd/whirlpoold/
//
// Or as a vet tool, one package per invocation driven by the go
// command:
//
//	go vet -vettool=$(which whirlpool-lint) ./...
//
// Deliberate exceptions are annotated in source; see each analyzer's
// doc (whirlpool-lint -list) and the Static analysis section of the
// README.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command identifies a vet tool by running it with -V=full
	// before handing it package config files.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return 0
	}
	// The second handshake: the go command asks which flags the tool
	// accepts (JSON list). This suite has no per-analyzer flags.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.RunVetTool(args[0], analysis.All())
	}

	fs := flag.NewFlagSet("whirlpool-lint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: whirlpool-lint [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.Path, terr)
			broken = true
		}
	}
	if broken {
		return 1
	}
	diags, err := analysis.Run(analysis.All(), pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printVersion implements the -V=full handshake: the go command folds
// the line into its build cache key, so it must change when the tool
// does — hash the executable.
func printVersion() {
	name := "whirlpool-lint"
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:8])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}
