// Command whirlpool-lint runs the Whirlpool analyzer suite
// (internal/analysis): arenaescape, atomicfield, ctxpoll, deadlinewait,
// errflow, floatscore, goroutineleak, hotalloc, lockguard, lockorder.
//
// Standalone, over package patterns (exit 1 on non-baselined findings):
//
//	go run ./cmd/whirlpool-lint ./...
//	whirlpool-lint -tests -sarif lint.sarif ./...
//
// Findings that are deliberate debt live in a committed baseline file
// (lint.baseline.json by default): baselined findings are reported in
// SARIF with baselineState "unchanged" but do not fail the run, and
// -update-baseline rewrites the file to the current findings.
//
// Or as a vet tool, one package per invocation driven by the go
// command (facts flow between units through .vetx files):
//
//	go vet -vettool=$(which whirlpool-lint) ./...
//
// Deliberate exceptions are annotated in source; see each analyzer's
// doc (whirlpool-lint -list) and the Static analysis section of
// DESIGN.md.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout *os.File) int {
	// The go command identifies a vet tool by running it with -V=full
	// before handing it package config files.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion(stdout)
		return 0
	}
	// The second handshake: the go command asks which flags the tool
	// accepts (JSON list). This suite has no per-analyzer flags.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.RunVetTool(args[0], analysis.All())
	}

	fs := flag.NewFlagSet("whirlpool-lint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	tests := fs.Bool("tests", false, "analyze _test.go files too (test variants of each package)")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 report to this file (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "lint.baseline.json", "suppression file; findings recorded there do not fail the run (\"\" disables)")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the baseline file to the current findings and exit 0")
	auditAnnotations := fs.Bool("audit-annotations", false, "audit +whirllint annotations instead of running the analyzers: fail on unknown tags and on justifications naming symbols that no longer exist")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: whirlpool-lint [-list] [-tests] [-sarif file] [-baseline file] [-update-baseline] [-audit-annotations] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	load := analysis.Load
	if *tests {
		load = analysis.LoadTests
	}
	pkgs, err := load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Degenerate inputs — syntax errors, packages with no Go files,
	// unresolvable imports — are reported per package, not fatal to the
	// whole run; any of them still fails the invocation.
	broken := false
	for _, pkg := range pkgs {
		for _, lerr := range pkg.LoadErrors {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.PkgPath(), lerr)
			broken = true
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.PkgPath(), terr)
			broken = true
		}
	}
	if broken {
		return 1
	}
	if *auditAnnotations {
		stale := analysis.AuditAnnotations(pkgs)
		for _, d := range stale {
			fmt.Fprintln(stdout, d)
		}
		if len(stale) > 0 {
			return 1
		}
		return 0
	}
	diags, err := analysis.Run(analysis.All(), pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *updateBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "whirlpool-lint: -update-baseline needs a -baseline path")
			return 1
		}
		b := analysis.NewBaseline(diags, root)
		if err := b.Save(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "whirlpool-lint: baseline %s updated with %d finding(s)\n", *baselinePath, b.Len())
		return 0
	}

	baselined := func(analysis.Diagnostic) bool { return false }
	fresh := diags
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		var old []analysis.Diagnostic
		fresh, old, baselined = b.Filter(diags, root)
		if len(old) > 0 {
			fmt.Fprintf(stdout, "whirlpool-lint: %d baselined finding(s) suppressed (see %s)\n", len(old), *baselinePath)
		}
	}

	if *sarifPath != "" {
		report, err := analysis.SARIF(analysis.All(), diags, root, baselined)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *sarifPath == "-" {
			fmt.Fprintf(stdout, "%s\n", report)
		} else if err := os.WriteFile(*sarifPath, append(report, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	for _, d := range fresh {
		fmt.Fprintln(stdout, d)
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

// printVersion implements the -V=full handshake: the go command folds
// the line into its build cache key, so it must change when the tool
// does — hash the executable.
func printVersion(stdout *os.File) {
	name := "whirlpool-lint"
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:8])
		}
	}
	fmt.Fprintf(stdout, "%s version devel buildID=%s\n", name, id)
}
