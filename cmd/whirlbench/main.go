// Command whirlbench regenerates the tables and figures of the paper's
// evaluation section (Section 6). By default it runs every experiment at
// a reduced document scale; -full runs the paper's 1/10/50 MB documents
// with the paper's ~1.8 ms per-operation cost (slow).
//
// Usage:
//
//	whirlbench                 # all experiments, reduced scale
//	whirlbench -fig 6          # a single figure (3, 5–11)
//	whirlbench -table 2        # a single table
//	whirlbench -ablations      # queue-discipline and scoring ablations
//	whirlbench -full           # paper-scale parameters
//	whirlbench -scale 0.1 -k 15 -opcost 200us -seed 7
//	whirlbench -trace run.jsonl  # dump one run's engine events as JSONL
//	whirlbench -shards 1,2,4,8   # sharded-execution scaling sweep
//	whirlbench -bench-json BENCH_core.json   # pinned core benchmark → JSON
//	whirlbench -bench-json BENCH_core.json -bench-gmp 1,4,8   # GOMAXPROCS sweep
//	whirlbench -bench-json BENCH_core.json -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "run a single figure (3, 5, 6, 7, 8, 9, 10, 11); 0 = all")
		tableNo    = flag.Int("table", 0, "run a single table (2); 0 = all")
		ablations  = flag.Bool("ablations", false, "run only the queue/scoring ablations")
		full       = flag.Bool("full", false, "paper-scale documents (1/10/50 MB) and 1.8 ms op cost")
		scale      = flag.Float64("scale", 0, "document scale factor vs the paper's sizes (default 0.02)")
		k          = flag.Int("k", 0, "top-k (default 15)")
		seed       = flag.Int64("seed", 0, "generator seed (default 1)")
		opcost     = flag.Duration("opcost", 0, "synthetic per-operation cost (default 100µs)")
		orders     = flag.Int("orders", 0, "static permutations to sweep (default all 120)")
		trace      = flag.String("trace", "", "dump one representative run's engine events to FILE as JSONL and exit")
		shards     = flag.String("shards", "", "comma-separated shard counts to sweep (e.g. 1,2,4,8) and exit")
		benchJSON  = flag.String("bench-json", "", "run the pinned core benchmark, write the JSON report to FILE and exit")
		benchFast  = flag.Bool("bench-short", false, "with -bench-json: smaller document and fewer rounds (CI short mode)")
		benchGMP   = flag.String("bench-gmp", "1,4,8", "with -bench-json: comma-separated GOMAXPROCS sweep (must start at 1, the speedup baseline)")
		benchHot   = flag.Bool("bench-hot", true, "with -bench-json: include the planning-path cases (plan-cold, plan-synopsis, plan-hot)")
		benchSnap  = flag.Bool("bench-snapshot", true, "with -bench-json: include the cold-start cases (full-build, snapshot-write, snapshot-open)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to FILE")
		memprofile = flag.String("memprofile", "", "write an allocs/heap profile to FILE on exit")
	)
	flag.Parse()

	cfg := bench.Config{
		Scale:        *scale,
		K:            *k,
		Seed:         *seed,
		OpCost:       *opcost,
		StaticOrders: *orders,
	}
	if *full {
		if cfg.Scale == 0 {
			cfg.Scale = 1
		}
		if cfg.OpCost == 0 {
			cfg.OpCost = 1800 * time.Microsecond
		}
	}

	// Profiles bracket the selected experiment so the pprof output
	// covers exactly the measured work; they are flushed before any
	// error exit so a failing run still leaves usable profiles.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
	}

	err := dispatch(cfg, *trace, *benchJSON, *benchFast, *benchHot, *benchSnap, *benchGMP, *shards, *fig, *tableNo, *ablations)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if perr := writeMemProfile(*memprofile); err == nil && perr != nil {
			err = perr
		}
	}
	if err != nil {
		fatal(err)
	}
}

// dispatch runs the experiment the flags selected.
func dispatch(cfg bench.Config, trace, benchJSON string, benchFast, benchHot, benchSnap bool, benchGMP, shards string, fig, tableNo int, ablations bool) error {
	switch {
	case trace != "":
		return dumpTrace(os.Stdout, cfg, trace)
	case benchJSON != "":
		gmps, err := parseCounts(benchGMP)
		if err != nil {
			return fmt.Errorf("-bench-gmp: %w", err)
		}
		return bench.BenchCore(os.Stdout, benchJSON, benchFast, gmps, benchHot, benchSnap)
	case shards != "":
		counts, err := parseCounts(shards)
		if err != nil {
			return err
		}
		return bench.ShardSweep(os.Stdout, cfg, counts)
	default:
		return run(os.Stdout, cfg, fig, tableNo, ablations)
	}
}

// writeMemProfile records the cumulative allocation profile (every
// allocation site, not just live heap) after a final GC, the view the
// zero-allocation hot-path work optimizes for.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whirlbench:", err)
	os.Exit(1)
}

// parseCounts parses the -shards list ("1,2,4,8").
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// dumpTrace runs one representative evaluation with a JSONL trace sink
// writing to path.
func dumpTrace(out io.Writer, cfg bench.Config, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sink := obs.NewJSONL(f)
	runErr := bench.TraceRun(out, cfg, sink)
	if err := sink.Err(); runErr == nil && err != nil {
		runErr = fmt.Errorf("writing trace: %w", err)
	}
	if err := f.Close(); runErr == nil && err != nil {
		runErr = err
	}
	if runErr == nil {
		fmt.Fprintf(out, "trace: events written to %s\n", path)
	}
	return runErr
}

func run(out io.Writer, cfg bench.Config, fig, tableNo int, ablations bool) error {
	sep := func() { fmt.Fprintln(out) }

	type exp struct {
		fig int
		fn  func() error
	}
	figures := []exp{
		{3, func() error { return bench.Figure3(out) }},
		{5, func() error { return bench.Figure5(out, cfg) }},
		{6, func() error { return bench.Figure6(out, cfg) }},
		{7, func() error { return bench.Figure7(out, cfg) }},
		{8, func() error { return bench.Figure8(out, cfg, nil) }},
		{9, func() error { return bench.Figure9(out, cfg) }},
		{10, func() error { return bench.Figure10(out, cfg) }},
		{11, func() error { return bench.Figure11(out, cfg) }},
	}

	if ablations {
		if err := bench.QueueDisciplines(out, cfg); err != nil {
			return err
		}
		sep()
		if err := bench.ScoringFunctions(out, cfg); err != nil {
			return err
		}
		sep()
		if err := bench.RewritingVsPlanRelaxation(out, cfg); err != nil {
			return err
		}
		sep()
		if err := bench.ExactBaseline(out, cfg); err != nil {
			return err
		}
		sep()
		return bench.DiskVsMemory(out, cfg)
	}
	if fig != 0 {
		for _, e := range figures {
			if e.fig == fig {
				return e.fn()
			}
		}
		return fmt.Errorf("unknown figure %d (have 3, 5-11)", fig)
	}
	if tableNo != 0 {
		if tableNo == 2 {
			return bench.Table2(out, cfg)
		}
		return fmt.Errorf("unknown table %d (have 2)", tableNo)
	}
	for _, e := range figures {
		if err := e.fn(); err != nil {
			return err
		}
		sep()
	}
	if err := bench.Table2(out, cfg); err != nil {
		return err
	}
	sep()
	if err := bench.QueueDisciplines(out, cfg); err != nil {
		return err
	}
	sep()
	if err := bench.ScoringFunctions(out, cfg); err != nil {
		return err
	}
	sep()
	if err := bench.RewritingVsPlanRelaxation(out, cfg); err != nil {
		return err
	}
	sep()
	if err := bench.ExactBaseline(out, cfg); err != nil {
		return err
	}
	sep()
	return bench.DiskVsMemory(out, cfg)
}
