package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func fastCfg() bench.Config {
	return bench.Config{Scale: 0.004, Seed: 2, K: 5, OpCost: time.Microsecond, StaticOrders: 4}
}

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastCfg(), 3, 0, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunSingleTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastCfg(), 0, 2, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastCfg(), 0, 0, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Queue-discipline", "Scoring-function", "Rewriting"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownSelectors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastCfg(), 4, 0, false); err == nil {
		t.Fatal("figure 4 does not exist")
	}
	if err := run(&buf, fastCfg(), 0, 1, false); err == nil {
		t.Fatal("table 1 is not an experiment")
	}
}

func TestDumpTrace(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	var buf bytes.Buffer
	if err := dumpTrace(&buf, fastCfg(), path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "events written to") {
		t.Fatalf("output:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has %d events", len(lines))
	}
	var first, last struct {
		Kind    string          `json:"event"`
		Run     *obs.RunInfo    `json:"run"`
		Summary *obs.RunSummary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if first.Kind != "run_start" || first.Run == nil || first.Run.Algorithm != "Whirlpool-S" {
		t.Fatalf("first event = %+v", first)
	}
	if last.Kind != "run_end" || last.Summary == nil || last.Summary.ServerOps == 0 {
		t.Fatalf("last event = %+v", last)
	}
}
