package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

func fastCfg() bench.Config {
	return bench.Config{Scale: 0.004, Seed: 2, K: 5, OpCost: time.Microsecond, StaticOrders: 4}
}

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastCfg(), 3, 0, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunSingleTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastCfg(), 0, 2, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastCfg(), 0, 0, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Queue-discipline", "Scoring-function", "Rewriting"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownSelectors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fastCfg(), 4, 0, false); err == nil {
		t.Fatal("figure 4 does not exist")
	}
	if err := run(&buf, fastCfg(), 0, 1, false); err == nil {
		t.Fatal("table 1 is not an experiment")
	}
}
