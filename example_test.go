package whirlpool_test

import (
	"fmt"
	"log"

	whirlpool "repro"
)

const exampleCatalog = `
<book>
  <title>wodehouse</title>
  <info><publisher><name>psmith</name></publisher></info>
  <price>48.95</price>
</book>
<book>
  <title>wodehouse</title>
  <publisher><name>psmith</name></publisher>
</book>
<book>
  <reviews><title>wodehouse</title></reviews>
</book>`

func ExampleDatabase_TopK() {
	db, err := whirlpool.LoadString(exampleCatalog)
	if err != nil {
		log.Fatal(err)
	}
	q := whirlpool.MustParseQuery("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	res, err := db.TopK(q, whirlpool.Approximate(3))
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range res.Answers {
		fmt.Printf("%d. book@%s score=%.3f\n", i+1, a.Root.ID, a.Score)
	}
	// Output:
	// 1. book@0 score=5.000
	// 2. book@1 score=3.322
	// 3. book@2 score=1.756
}

func ExampleExact() {
	db, err := whirlpool.LoadString(exampleCatalog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.TopKString("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']", whirlpool.Exact(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d exact match(es)\n", len(res.Answers))
	// Output:
	// 1 exact match(es)
}

func ExampleExplain() {
	db, err := whirlpool.LoadString(exampleCatalog)
	if err != nil {
		log.Fatal(err)
	}
	q := whirlpool.MustParseQuery("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	res, err := db.TopK(q, whirlpool.Approximate(3))
	if err != nil {
		log.Fatal(err)
	}
	// The last answer only has a nested title: everything else was
	// relaxed away.
	for _, e := range whirlpool.Explain(q, res.Answers[2]) {
		fmt.Printf("%s: %s\n", e.Tag, e.Kind)
	}
	// Output:
	// book: exact
	// title: edge-generalized
	// info: deleted
	// publisher: deleted
	// name: deleted
}

func ExampleParseQuery() {
	q, err := whirlpool.ParseQuery("//item[./quantity < 3 and ./name contains 'gold']")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.Size(), "query nodes")
	// Output:
	// 3 query nodes
}
