package score

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// Figure 1's three heterogeneous books plus a fourth plain one.
const booksXML = `
<library>
  <book>
    <title>wodehouse</title>
    <info>
      <publisher><name>psmith</name><location>london</location></publisher>
      <isbn>1234</isbn>
    </info>
    <price>48.95</price>
  </book>
  <book>
    <title>wodehouse</title>
    <publisher><name>psmith</name></publisher>
    <info><isbn>1234</isbn></info>
  </book>
  <book>
    <reviews><title>wodehouse</title></reviews>
    <info><location>london</location></info>
  </book>
  <book>
    <title>other</title>
  </book>
</library>`

func buildIx(t *testing.T) *index.Index {
	t.Helper()
	doc, err := xmltree.ParseString(booksXML)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc)
}

func TestTFIDFExactVsRelaxedIDF(t *testing.T) {
	ix := buildIx(t)
	q := pattern.MustParse("/book[./title = 'wodehouse']")
	s := NewTFIDF(ix, q, Raw)
	exact, relaxed := s.IDF(1)
	// pc(book, title='wodehouse') is satisfied by 2 of 4 books;
	// ad by 3 of 4 — the relaxed predicate is less selective.
	wantExact := math.Log(1 + 4.0/2.0)
	wantRelaxed := math.Log(1 + 4.0/3.0)
	if math.Abs(exact-wantExact) > 1e-12 {
		t.Fatalf("exact idf = %v, want %v", exact, wantExact)
	}
	if math.Abs(relaxed-wantRelaxed) > 1e-12 {
		t.Fatalf("relaxed idf = %v, want %v", relaxed, wantRelaxed)
	}
	if relaxed > exact {
		t.Fatal("relaxed idf must not exceed exact idf")
	}
}

func TestTFIDFUnsatisfiablePredicate(t *testing.T) {
	ix := buildIx(t)
	q := pattern.MustParse("/book[./nonexistent]")
	s := NewTFIDF(ix, q, Raw)
	exact, relaxed := s.IDF(1)
	want := math.Log(1 + 4.0)
	if exact != want || relaxed != want {
		t.Fatalf("unsatisfiable idf = %v/%v, want max %v", exact, relaxed, want)
	}
}

func TestTFIDFContributionOrdering(t *testing.T) {
	ix := buildIx(t)
	q := pattern.MustParse("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	for _, norm := range []Normalization{Raw, Sparse, Dense} {
		s := NewTFIDF(ix, q, norm)
		for id := 0; id < q.Size(); id++ {
			e := s.Contribution(id, Exact, ix.Doc.Nodes[0])
			r := s.Contribution(id, Relaxed, ix.Doc.Nodes[0])
			m := s.Contribution(id, Missing, nil)
			if m != 0 {
				t.Fatalf("%v node %d: missing contributes %v", norm, id, m)
			}
			if r > e {
				t.Fatalf("%v node %d: relaxed %v > exact %v", norm, id, r, e)
			}
			if e < 0 || r < 0 {
				t.Fatalf("%v node %d: negative contribution", norm, id)
			}
			if got := s.MaxContribution(id); math.Abs(got-e) > 1e-12 {
				t.Fatalf("%v node %d: MaxContribution %v != exact %v", norm, id, got, e)
			}
			if got := s.MinContribution(id); math.Abs(got-r) > 1e-12 {
				t.Fatalf("%v node %d: MinContribution %v != relaxed %v", norm, id, got, r)
			}
			exp := s.ExpectedContribution(id)
			if exp < r-1e-12 || exp > e+1e-12 {
				t.Fatalf("%v node %d: expected %v outside [%v, %v]", norm, id, exp, r, e)
			}
		}
	}
}

func TestTFIDFSparseNormalization(t *testing.T) {
	ix := buildIx(t)
	q := pattern.MustParse("/book[./title = 'wodehouse' and ./price]")
	s := NewTFIDF(ix, q, Sparse)
	// Sparse: every predicate's exact contribution is exactly 1.
	for id := 0; id < q.Size(); id++ {
		if got := s.MaxContribution(id); math.Abs(got-1) > 1e-12 {
			t.Fatalf("sparse max contribution of node %d = %v, want 1", id, got)
		}
	}
}

func TestTFIDFDenseNormalization(t *testing.T) {
	ix := buildIx(t)
	q := pattern.MustParse("/book[./title = 'wodehouse' and ./price]")
	s := NewTFIDF(ix, q, Dense)
	// Dense: the single most selective predicate reaches 1; others less.
	max := 0.0
	for id := 0; id < q.Size(); id++ {
		if c := s.MaxContribution(id); c > max {
			max = c
		}
		if c := s.MaxContribution(id); c > 1+1e-12 {
			t.Fatalf("dense contribution of node %d = %v > 1", id, c)
		}
	}
	if math.Abs(max-1) > 1e-12 {
		t.Fatalf("dense global max = %v, want 1", max)
	}
}

// +whirllint:exactscore ranking assertions compare exact scorer output
func TestAnswerScoreRanksExactMatchFirst(t *testing.T) {
	ix := buildIx(t)
	q := pattern.MustParse("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := NewTFIDF(ix, q, Raw)
	books := ix.Nodes("book")
	scores := make([]float64, len(books))
	for i, b := range books {
		scores[i] = AnswerScore(ix, q, s, b)
	}
	// Book 1 satisfies every exact predicate; book 4 satisfies none
	// beyond being a book.
	for i := 1; i < len(books); i++ {
		if scores[0] < scores[i] {
			t.Fatalf("book 1 (%v) must outscore book %d (%v)", scores[0], i+1, scores[i])
		}
	}
	if scores[3] >= scores[0] {
		t.Fatal("plain book must rank below the exact match")
	}
	if scores[0] <= 0 {
		t.Fatal("exact match must have positive score")
	}
}

func TestAnswerScoreCountsTF(t *testing.T) {
	// Two child titles double the tf contribution of that predicate.
	doc, err := xmltree.ParseString(`<shelf>
	  <book><title>x</title><title>x</title></book>
	  <book><title>x</title></book>
	</shelf>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	q := pattern.MustParse("/book[./title = 'x']")
	s := NewTFIDF(ix, q, Raw)
	b1 := AnswerScore(ix, q, s, ix.Nodes("book")[0])
	b2 := AnswerScore(ix, q, s, ix.Nodes("book")[1])
	if b1 <= b2 {
		t.Fatalf("tf=2 book (%v) must outscore tf=1 book (%v)", b1, b2)
	}
	exact, _ := s.IDF(1)
	if math.Abs((b1-b2)-exact) > 1e-12 {
		t.Fatalf("score gap %v should equal one idf unit %v", b1-b2, exact)
	}
}

func TestTableScorer(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><a>1</a><a>2</a></r>`)
	a1, a2 := doc.Nodes[1], doc.Nodes[2]
	tab := NewTable(2)
	tab.Set(1, a1, 0.3)
	tab.Set(1, a2, 0.1)
	if got := tab.Contribution(1, Exact, a1); got != 0.3 {
		t.Fatalf("contribution = %v", got)
	}
	if got := tab.Contribution(1, Missing, nil); got != 0 {
		t.Fatalf("missing = %v", got)
	}
	if got := tab.MaxContribution(1); got != 0.3 {
		t.Fatalf("max = %v", got)
	}
	if got := tab.MinContribution(1); got != 0.1 {
		t.Fatalf("min = %v", got)
	}
	if got := tab.ExpectedContribution(1); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("expected = %v", got)
	}
	// Unknown binding gets the default.
	tab.Default = 0.05
	if got := tab.Contribution(0, Exact, a1); got != 0.05 {
		t.Fatalf("default = %v", got)
	}
	// Relaxed discount.
	tab.RelaxedFactor = 0.5
	if got := tab.Contribution(1, Relaxed, a1); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("relaxed = %v", got)
	}
}

// +whirllint:exactscore determinism means bit-identical scores across calls
func TestRandomScorerDeterminism(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><a>1</a><a>2</a></r>`)
	n := doc.Nodes[1]
	s1 := NewRandomSparse(7)
	s2 := NewRandomSparse(7)
	if s1.Contribution(1, Exact, n) != s2.Contribution(1, Exact, n) {
		t.Fatal("same seed must give same scores")
	}
	s3 := NewRandomSparse(8)
	if s1.Contribution(1, Exact, n) == s3.Contribution(1, Exact, n) {
		t.Fatal("different seeds should differ (overwhelmingly)")
	}
}

// +whirllint:exactscore bound checks are exact by definition
func TestRandomScorerBounds(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><a>1</a><a>2</a><a>3</a></r>`)
	sparse := NewRandomSparse(1)
	dense := NewRandomDense(1)
	f := func(ord uint8, nodeID uint8) bool {
		n := doc.Nodes[int(ord)%doc.Size()]
		id := int(nodeID) % 4
		cs := sparse.Contribution(id, Exact, n)
		cd := dense.Contribution(id, Exact, n)
		if cs < 0 || cs > sparse.MaxContribution(id) {
			return false
		}
		if cd < dense.MinContribution(id)/dense.RelaxedFactor-1e-9 || cd > dense.MaxContribution(id)+1e-9 {
			return false
		}
		// Relaxed never exceeds exact.
		if sparse.Contribution(id, Relaxed, n) > cs {
			return false
		}
		return sparse.Contribution(id, Missing, nil) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// +whirllint:exactscore cluster membership compares exact contributions
func TestRandomDenseIsClustered(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><a>1</a><a>2</a><a>3</a><a>4</a><a>5</a></r>`)
	dense := NewRandomDense(3)
	for _, n := range doc.Nodes[1:] {
		c := dense.Contribution(1, Exact, n)
		if c < 0.45 || c > 0.55 {
			t.Fatalf("dense score %v outside [0.45, 0.55]", c)
		}
	}
	if dense.ExpectedContribution(1) != 0.5 {
		t.Fatalf("dense expectation = %v", dense.ExpectedContribution(1))
	}
}

func TestVariantAndNormalizationStrings(t *testing.T) {
	if Exact.String() != "exact" || Relaxed.String() != "relaxed" || Missing.String() != "missing" {
		t.Fatal("variant names")
	}
	if Variant(9).String() != "variant(?)" {
		t.Fatal("unknown variant")
	}
	if Raw.String() != "raw" || Sparse.String() != "sparse" || Dense.String() != "dense" {
		t.Fatal("normalization names")
	}
	if Normalization(9).String() != "norm(?)" {
		t.Fatal("unknown normalization")
	}
}

func TestRootPredicateIDF(t *testing.T) {
	// For //item every item satisfies the root predicate; for /item only
	// forest roots do.
	doc, _ := xmltree.ParseString(`<site><item/><sub><item/></sub></site>`)
	ix := index.Build(doc)
	qDesc := pattern.MustParse("//item[./x]")
	qRoot := pattern.MustParse("/site[./item]")
	sDesc := NewTFIDF(ix, qDesc, Raw)
	sRoot := NewTFIDF(ix, qRoot, Raw)
	exact, relaxed := sDesc.IDF(0)
	if exact != relaxed {
		t.Fatalf("//item root idf exact %v != relaxed %v", exact, relaxed)
	}
	re, rr := sRoot.IDF(0)
	if re != rr || re <= 0 {
		t.Fatalf("/site root idf = %v/%v", re, rr)
	}
}
