package score

import (
	"testing"
	"testing/quick"
)

// TestPropIDFMonotone: idf never increases as the satisfying count grows,
// and stays non-negative and finite for sane inputs.
func TestPropIDFMonotone(t *testing.T) {
	f := func(rootsRaw, satARaw, satBRaw uint16) bool {
		roots := int(rootsRaw)%1000 + 1
		satA := int(satARaw) % (roots + 1)
		satB := int(satBRaw) % (roots + 1)
		if satA > satB {
			satA, satB = satB, satA
		}
		a := idf(roots, satA)
		b := idf(roots, satB)
		if a < 0 || b < 0 {
			return false
		}
		// Fewer satisfying roots ⇒ larger (or equal) idf.
		return a >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDFBoundaries(t *testing.T) {
	if idf(0, 0) != 0 {
		t.Fatal("empty database idf must be 0")
	}
	if idf(10, 0) < idf(10, 1) {
		t.Fatal("unsatisfiable predicate must not rank below any satisfiable one")
	}
	if idf(10, 1) <= idf(10, 5) {
		t.Fatal("idf must strictly separate clearly different selectivities")
	}
	if idf(10, 10) <= 0 {
		t.Fatal("even a universal predicate keeps positive idf (smoothed)")
	}
}
