package score

import (
	"math/rand"

	"repro/internal/xmltree"
)

// Table is a fully synthetic scorer mapping (query node, document node)
// to a fixed contribution, with an optional exactness discount. It powers
// the paper's motivating example (Figure 3 injects title 3×0.3, location
// {0.3, 0.2, 0.1, 0.1, 0.1}, price 0.2) and any experiment that needs
// hand-placed scores.
type Table struct {
	// contrib[nodeID][docOrd] — missing entries default to Default.
	contrib map[int]map[int]float64
	// Default is the contribution of a binding absent from the table.
	Default float64
	// RelaxedFactor multiplies the tabled value for Relaxed bindings
	// (1.0 treats exact and relaxed alike).
	RelaxedFactor float64

	max, min, sum []float64
	count         []int
	size          int
}

// NewTable creates an empty table for a query with size query nodes.
func NewTable(size int) *Table {
	t := &Table{
		contrib:       make(map[int]map[int]float64),
		RelaxedFactor: 1,
		max:           make([]float64, size),
		min:           make([]float64, size),
		sum:           make([]float64, size),
		count:         make([]int, size),
		size:          size,
	}
	for i := range t.min {
		t.min[i] = 0
	}
	return t
}

// Set assigns the contribution of binding document node n to query node
// nodeID.
func (t *Table) Set(nodeID int, n *xmltree.Node, c float64) {
	m := t.contrib[nodeID]
	if m == nil {
		m = make(map[int]float64)
		t.contrib[nodeID] = m
	}
	m[n.Ord] = c
	if c > t.max[nodeID] {
		t.max[nodeID] = c
	}
	if t.count[nodeID] == 0 || c < t.min[nodeID] {
		t.min[nodeID] = c
	}
	t.sum[nodeID] += c
	t.count[nodeID]++
}

// Contribution implements Scorer.
func (t *Table) Contribution(nodeID int, v Variant, n *xmltree.Node) float64 {
	if v == Missing {
		return 0
	}
	c := t.Default
	if m := t.contrib[nodeID]; m != nil {
		if tc, ok := m[n.Ord]; ok {
			c = tc
		}
	}
	if v == Relaxed {
		c *= t.RelaxedFactor
	}
	return c
}

// MaxContribution implements Scorer.
func (t *Table) MaxContribution(nodeID int) float64 {
	if t.max[nodeID] > t.Default {
		return t.max[nodeID]
	}
	return t.Default
}

// MinContribution implements Scorer. When the table has entries for the
// node, their minimum is used (tabled scores are taken as the universe of
// bindings); otherwise Default.
func (t *Table) MinContribution(nodeID int) float64 {
	m := t.Default
	if t.count[nodeID] > 0 {
		m = t.min[nodeID]
	}
	if t.RelaxedFactor < 1 {
		m *= t.RelaxedFactor
	}
	return m
}

// ExpectedContribution implements Scorer.
func (t *Table) ExpectedContribution(nodeID int) float64 {
	if t.count[nodeID] == 0 {
		return t.Default
	}
	return t.sum[nodeID] / float64(t.count[nodeID])
}

// Random is a deterministic pseudo-random scorer: every (query node,
// document node) pair gets a stable score drawn from either a sparse
// (uniform in [0, 1]) or a dense (clustered around Center ± Spread)
// distribution — the paper's "randomly generated sparse and dense scoring
// functions" (Section 6.2.2). Scores are derived by hashing, so the
// scorer is stateless and safe for concurrent use.
type Random struct {
	// Seed differentiates independent scorers.
	Seed int64
	// Dense selects the clustered distribution.
	Dense bool
	// Center and Spread parameterize the dense distribution; zero values
	// default to 0.5 ± 0.05.
	Center, Spread float64
	// RelaxedFactor multiplies relaxed contributions (default 0.5 at
	// construction).
	RelaxedFactor float64
}

// NewRandomSparse returns a sparse random scorer.
func NewRandomSparse(seed int64) *Random {
	return &Random{Seed: seed, RelaxedFactor: 0.5}
}

// NewRandomDense returns a dense random scorer clustered at 0.5 ± 0.05.
func NewRandomDense(seed int64) *Random {
	return &Random{Seed: seed, Dense: true, Center: 0.5, Spread: 0.05, RelaxedFactor: 0.5}
}

// Contribution implements Scorer.
func (r *Random) Contribution(nodeID int, v Variant, n *xmltree.Node) float64 {
	if v == Missing {
		return 0
	}
	u := r.uniform(nodeID, n.Ord)
	var c float64
	if r.Dense {
		center, spread := r.Center, r.Spread
		if center == 0 && spread == 0 {
			center, spread = 0.5, 0.05
		}
		c = center + (2*u-1)*spread
	} else {
		c = u
	}
	if c < 0 {
		c = 0
	}
	if v == Relaxed {
		c *= r.RelaxedFactor
	}
	return c
}

// uniform hashes (seed, nodeID, ord) to a stable value in [0, 1).
func (r *Random) uniform(nodeID, ord int) float64 {
	h := rand.New(rand.NewSource(r.Seed*1_000_003 + int64(nodeID)*8_191 + int64(ord)))
	return h.Float64()
}

// MaxContribution implements Scorer.
func (r *Random) MaxContribution(nodeID int) float64 {
	if r.Dense {
		center, spread := r.Center, r.Spread
		if center == 0 && spread == 0 {
			center, spread = 0.5, 0.05
		}
		return center + spread
	}
	return 1
}

// MinContribution implements Scorer.
func (r *Random) MinContribution(nodeID int) float64 {
	if r.Dense {
		center, spread := r.Center, r.Spread
		if center == 0 && spread == 0 {
			center, spread = 0.5, 0.05
		}
		m := center - spread
		if m < 0 {
			m = 0
		}
		return m * r.RelaxedFactor
	}
	return 0
}

// ExpectedContribution implements Scorer.
func (r *Random) ExpectedContribution(nodeID int) float64 {
	if r.Dense {
		if r.Center == 0 && r.Spread == 0 {
			return 0.5
		}
		return r.Center
	}
	return 0.5
}
