package score

import (
	"repro/internal/relax"
)

// RelaxationUpperBound computes an admissible upper bound on the score
// of any answer tuple produced by relaxed query rq, scored against the
// original query orig's component predicates (the rewriting-based
// evaluator's scoring rule: node i of rq contributes orig node
// rq.NodeMap[i]'s exact idf when the original root path predicate holds
// for its binding, the relaxed idf otherwise).
//
// For each rq node the bound takes the exact contribution only when the
// exact variant is achievable — when the level-difference constraint of
// the original root path rootPath[origID] = (m, e) intersects rq's own
// composed root path (m', e'), which confines every binding's level
// difference to {m'} (e') or [m', ∞) (¬e'):
//
//	e ∧ e':  achievable iff m = m'
//	e ∧ ¬e': achievable iff m ≥ m'
//	¬e ∧ e': achievable iff m' ≥ m
//	¬e ∧ ¬e': always achievable
//
// Otherwise every binding scores the relaxed contribution, which the
// bound uses exactly. The root term always takes the exact
// contribution (≥ the relaxed one by the scorer's clamp).
//
// The bound holds in float arithmetic, not just over the reals: terms
// are accumulated in rq node-id order — the same order the evaluator
// sums a tuple's contributions — and IEEE rounding is monotone, so a
// term-wise ≥ sum stays ≥ after rounding.
//
// The scorer must be node-independent — MaxContribution equal to every
// exact contribution and MinContribution equal to every relaxed one, as
// the paper's tf*idf is — and must never score a relaxed variant above
// the exact one; TFIDF guarantees both.
//
// rootPath[id] must hold relax.ComposePath(orig, 0, id) for every
// non-root id of the original query.
func RelaxationUpperBound(s Scorer, rootPath []relax.PathPredicate, rq relax.RelaxedQuery) float64 {
	bound := s.MaxContribution(0)
	for i := 1; i < rq.Query.Size(); i++ {
		origID := rq.NodeMap[i]
		composed := relax.ComposePath(rq.Query, 0, i)
		if exactAchievable(rootPath[origID], composed) {
			bound += s.MaxContribution(origID)
		} else {
			bound += s.MinContribution(origID)
		}
	}
	return bound
}

// exactAchievable reports whether some level difference satisfies both
// the original predicate (m, e) and the relaxed query's composed
// predicate (m', e') that constrains the candidate bindings.
func exactAchievable(orig, composed relax.PathPredicate) bool {
	switch {
	case orig.Exact && composed.Exact:
		return orig.MinLevels == composed.MinLevels
	case orig.Exact:
		return orig.MinLevels >= composed.MinLevels
	case composed.Exact:
		return composed.MinLevels >= orig.MinLevels
	default:
		return true
	}
}
