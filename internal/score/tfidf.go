package score

import (
	"math"
	"sync"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/xmltree"
)

// Axis aliases keeping the scoring code terse.
const (
	pcRootAxis      = dewey.Child
	deweyDescendant = dewey.Descendant
)

// Normalization selects how raw idf contributions are rescaled — the
// paper's sparse/dense scoring functions (Section 6.2.2), synthesized to
// simulate datasets with uniform vs. skewed predicate scores.
type Normalization int

const (
	// Raw applies no normalization.
	Raw Normalization = iota
	// Sparse normalizes each predicate's scores to [0, 1] independently
	// (every predicate can contribute up to 1), yielding spread-out final
	// scores and aggressive pruning.
	Sparse
	// Dense normalizes all predicates by the single global maximum, so
	// low-idf predicates contribute little and final scores bunch
	// together, weakening pruning.
	Dense
)

// String returns the normalization name.
func (n Normalization) String() string {
	switch n {
	case Raw:
		return "raw"
	case Sparse:
		return "sparse"
	case Dense:
		return "dense"
	default:
		return "norm(?)"
	}
}

// TFIDF scores bindings with the paper's XML tf*idf. For every query node
// qi it precomputes the idf of the exact component predicate p(q0, qi)
// (the unrelaxed composition of axes from the root) and of its fully
// relaxed form; an exact binding contributes the exact idf, a relaxed
// binding the (never larger) relaxed idf. Per-tuple tf is 1 — a root with
// several ways to satisfy a predicate spawns several tuples, and the
// top-k set keeps its best (AnswerScore aggregates the full Definition
// 4.4 sum when whole-answer scores are wanted).
type TFIDF struct {
	idfExact   []float64
	idfRelaxed []float64
	norm       Normalization
	scale      []float64 // per-node divisor derived from norm
	expected   []float64
}

// StatsSource supplies pre-resolved component-predicate statistics —
// typically a corpus structure synopsis (internal/synopsis) — so a
// scorer can be built without fanning index probes out across every
// shard at query time. ok must be false whenever the source cannot
// answer the node's predicate exactly (e.g. content predicates); the
// scorer then falls back to scanning for that node only.
type StatsSource interface {
	ComponentStats(q *pattern.Query, id int) (exact, relaxed index.PredicateStats, ok bool)
}

// NewTFIDF builds a tf*idf scorer for q against the indexed database ix.
func NewTFIDF(ix index.Source, q *pattern.Query, norm Normalization) *TFIDF {
	return NewTFIDFWithStats(ix, nil, q, norm)
}

// NewTFIDFWithStats is NewTFIDF drawing per-predicate statistics from
// stats where it can answer (value-free predicates), scanning ix only
// for the rest. A synopsis-backed stats source yields exactly the
// numbers the scan produces, so the resulting scorer is identical to
// NewTFIDF's — just cheaper to build.
func NewTFIDFWithStats(ix index.Source, stats StatsSource, q *pattern.Query, norm Normalization) *TFIDF {
	n := q.Size()
	s := &TFIDF{
		idfExact:   make([]float64, n),
		idfRelaxed: make([]float64, n),
		norm:       norm,
		scale:      make([]float64, n),
		expected:   make([]float64, n),
	}
	rootTag := q.Root().Tag
	rootCount := ix.CountTag(rootTag)
	for id := 0; id < n; id++ {
		var exactStats, relaxedStats index.PredicateStats
		resolved := false
		if stats != nil {
			exactStats, relaxedStats, resolved = stats.ComponentStats(q, id)
		}
		if !resolved {
			exactStats, relaxedStats = predicateStats(ix, q, id)
		}
		s.idfExact[id] = idf(rootCount, exactStats.Satisfying)
		s.idfRelaxed[id] = idf(rootCount, relaxedStats.Satisfying)
		if s.idfRelaxed[id] > s.idfExact[id] {
			// Guard: relaxation can only widen the satisfying set, but
			// smoothing could in principle invert degenerate cases.
			s.idfRelaxed[id] = s.idfExact[id]
		}
		// Expected contribution ≈ selectivity-weighted average of the
		// two variants: of the roots satisfying the relaxed predicate,
		// the exactly-satisfying fraction earns the exact idf.
		if relaxedStats.Satisfying > 0 {
			pExact := float64(exactStats.Satisfying) / float64(relaxedStats.Satisfying)
			s.expected[id] = pExact*s.idfExact[id] + (1-pExact)*s.idfRelaxed[id]
		}
	}
	var global float64
	for id := 0; id < n; id++ {
		if s.idfExact[id] > global {
			global = s.idfExact[id]
		}
	}
	for id := 0; id < n; id++ {
		switch norm {
		case Sparse:
			s.scale[id] = s.idfExact[id]
		case Dense:
			s.scale[id] = global
		default:
			s.scale[id] = 1
		}
		if s.scale[id] == 0 {
			s.scale[id] = 1
		}
	}
	return s
}

// idf is Definition 4.2 with add-one smoothing so that predicates
// satisfied by every root still separate from unsatisfiable ones:
// log(1 + rootCount/satisfying); an unsatisfiable predicate takes the
// maximum log(1 + rootCount).
func idf(rootCount, satisfying int) float64 {
	if rootCount == 0 {
		return 0
	}
	if satisfying == 0 {
		return math.Log(1 + float64(rootCount))
	}
	return math.Log(1 + float64(rootCount)/float64(satisfying))
}

// predicateStats computes database statistics for the exact and relaxed
// variants of component predicate p(q0, qi). When ix is physically
// sharded, the per-root scan for id > 0 — the expensive part of building
// a TFIDF scorer — fans out across the sub-sources in parallel and the
// partial statistics are merged; each sub-source holds complete subtrees,
// so its local scan is exact for its own roots.
func predicateStats(ix index.Source, q *pattern.Query, id int) (exact, relaxed index.PredicateStats) {
	if id > 0 {
		if sh, ok := ix.(index.ShardedSource); ok {
			if subs := sh.ShardSources(); len(subs) > 1 {
				return shardedPredicateStats(subs, q, id)
			}
		}
	}
	return scanPredicate(ix, q, id)
}

// shardedPredicateStats runs scanPredicate over each sub-source
// concurrently and merges: counts sum, max term frequencies take the max.
func shardedPredicateStats(subs []index.Source, q *pattern.Query, id int) (exact, relaxed index.PredicateStats) {
	exacts := make([]index.PredicateStats, len(subs))
	relaxeds := make([]index.PredicateStats, len(subs))
	var wg sync.WaitGroup
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub index.Source) {
			defer wg.Done()
			exacts[i], relaxeds[i] = scanPredicate(sub, q, id)
		}(i, sub)
	}
	wg.Wait()
	for i := range subs {
		mergeStats(&exact, exacts[i])
		mergeStats(&relaxed, relaxeds[i])
	}
	return exact, relaxed
}

func mergeStats(dst *index.PredicateStats, s index.PredicateStats) {
	dst.RootCount += s.RootCount
	dst.Satisfying += s.Satisfying
	dst.TotalPairs += s.TotalPairs
	if s.MaxTF > dst.MaxTF {
		dst.MaxTF = s.MaxTF
	}
}

// scanPredicate is the sequential statistics scan over one source.
func scanPredicate(ix index.Source, q *pattern.Query, id int) (exact, relaxed index.PredicateStats) {
	rootTag := q.Root().Tag
	node := q.Nodes[id]
	if id == 0 {
		// The root's own predicate relates it to the virtual document
		// root: a[parent::doc-root]. Exact requires a forest root for pc.
		roots := ix.Nodes(rootTag)
		exact.RootCount = len(roots)
		relaxed.RootCount = len(roots)
		for _, r := range roots {
			relaxed.Satisfying++
			relaxed.TotalPairs++
			if node.Axis != pcRootAxis || r.Level() == 1 {
				exact.Satisfying++
				exact.TotalPairs++
			}
		}
		exact.MaxTF, relaxed.MaxTF = 1, 1
		return exact, relaxed
	}
	pp := relax.ComposePath(q, 0, id)
	vt := index.Test(node.ValueOp, node.Value)
	roots := ix.Nodes(rootTag)
	exact.RootCount = len(roots)
	relaxed.RootCount = len(roots)
	var buf []*xmltree.Node // probe scratch reused across roots
	for _, r := range roots {
		tfExact, tfRelaxed := 0, 0
		buf = ix.AppendCandidates(buf[:0], r, deweyDescendant, node.Tag, vt)
		for _, c := range buf {
			tfRelaxed++
			if pp.HoldsExact(r.ID, c.ID) {
				tfExact++
			}
		}
		accumulate(&exact, tfExact)
		accumulate(&relaxed, tfRelaxed)
	}
	return exact, relaxed
}

func accumulate(st *index.PredicateStats, tf int) {
	if tf > 0 {
		st.Satisfying++
		st.TotalPairs += tf
		if tf > st.MaxTF {
			st.MaxTF = tf
		}
	}
}

// Contribution implements Scorer.
func (s *TFIDF) Contribution(nodeID int, v Variant, n *xmltree.Node) float64 {
	switch v {
	case Exact:
		return s.idfExact[nodeID] / s.scale[nodeID]
	case Relaxed:
		return s.idfRelaxed[nodeID] / s.scale[nodeID]
	default:
		return 0
	}
}

// MaxContribution implements Scorer.
func (s *TFIDF) MaxContribution(nodeID int) float64 {
	return s.idfExact[nodeID] / s.scale[nodeID]
}

// MinContribution implements Scorer.
func (s *TFIDF) MinContribution(nodeID int) float64 {
	return s.idfRelaxed[nodeID] / s.scale[nodeID]
}

// ExpectedContribution implements Scorer.
func (s *TFIDF) ExpectedContribution(nodeID int) float64 {
	return s.expected[nodeID] / s.scale[nodeID]
}

// IDF exposes the raw (unnormalized) idf values of the exact and relaxed
// variants of node nodeID's component predicate, for inspection and
// tests.
func (s *TFIDF) IDF(nodeID int) (exact, relaxed float64) {
	return s.idfExact[nodeID], s.idfRelaxed[nodeID]
}

// AnswerScore computes Definition 4.4's whole-answer score for a root
// binding n: Σ over component predicates of idf(p)·tf(p, n), using the
// exact predicate variants (an exact-match score; relaxation-aware
// ranking flows through the engine's per-tuple scores instead). The same
// normalization as the scorer applies.
func AnswerScore(ix index.Source, q *pattern.Query, s *TFIDF, n *xmltree.Node) float64 {
	total := 0.0
	var buf []*xmltree.Node // probe scratch reused across query nodes
	for id := 0; id < q.Size(); id++ {
		qn := q.Nodes[id]
		var tf int
		if id == 0 {
			if qn.Axis != pcRootAxis || n.Level() == 1 {
				tf = 1
			}
		} else {
			pp := relax.ComposePath(q, 0, id)
			buf = ix.AppendCandidates(buf[:0], n, deweyDescendant, qn.Tag, index.Test(qn.ValueOp, qn.Value))
			for _, c := range buf {
				if pp.HoldsExact(n.ID, c.ID) {
					tf++
				}
			}
		}
		total += s.idfExact[id] / s.scale[id] * float64(tf)
	}
	return total
}
