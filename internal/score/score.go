// Package score implements the paper's XML scoring framework (Section 4):
// a conservative extension of tf*idf from keyword queries to XPath tree
// patterns. A query decomposes into component predicates p(q0, qi)
// linking the returned node q0 to every other query node qi; each
// predicate has an idf (how selective it is across the database,
// Definition 4.2) and, per candidate answer, a tf (in how many ways the
// answer satisfies it, Definition 4.3). The score of an answer is
// Σ idf·tf (Definition 4.4).
//
// The engine consumes scores through the Scorer interface so the tf*idf
// scorer, the paper's sparse/dense normalizations, and fully synthetic
// score tables (used by the Figure 3 reproduction and by randomized
// experiments) are interchangeable.
package score

import "repro/internal/xmltree"

// Variant says how a binding satisfies its component predicate.
type Variant int

const (
	// Exact: the unrelaxed predicate holds.
	Exact Variant = iota
	// Relaxed: only a relaxed form of the predicate holds.
	Relaxed
	// Missing: the query node is unmatched (leaf deletion); always
	// contributes zero.
	Missing
)

// String returns the variant name.
func (v Variant) String() string {
	switch v {
	case Exact:
		return "exact"
	case Relaxed:
		return "relaxed"
	case Missing:
		return "missing"
	default:
		return "variant(?)"
	}
}

// Scorer assigns per-binding score contributions. Implementations must be
// safe for concurrent use (Whirlpool-M calls them from server goroutines)
// and contributions must be non-negative — the engine's pruning bound
// relies on scores growing monotonically.
type Scorer interface {
	// Contribution returns the score added when query node nodeID is
	// bound to n under the given variant. n is nil iff v == Missing.
	Contribution(nodeID int, v Variant, n *xmltree.Node) float64
	// MaxContribution returns an upper bound on Contribution over every
	// possible binding of nodeID; it feeds the maximum-possible-final
	// score used for pruning and queue priorities.
	MaxContribution(nodeID int) float64
	// MinContribution returns a lower bound over non-missing bindings;
	// routing estimates use the [min, max] contribution range.
	MinContribution(nodeID int) float64
	// ExpectedContribution returns the anticipated contribution of a
	// typical binding, used by the score-based routing strategies
	// (max_score / min_score, Section 6.1.4).
	ExpectedContribution(nodeID int) float64
}
