package score_test

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/score"
	"repro/internal/shard"
	"repro/internal/synopsis"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// TestTFIDFWithSynopsisStats checks that a scorer built from synopsis
// statistics is bit-identical — every idf, scale and contribution — to
// one built with per-root index scans, on single and sharded sources,
// including queries with content predicates (which fall back to
// scanning per node).
// +whirllint:exactscore synopsis-fed scorers must be bit-identical to scan-built ones
func TestTFIDFWithSynopsisStats(t *testing.T) {
	queries := []string{
		"//item[./description/parlist]",
		"//item[./description/parlist and ./mailbox/mail/text]",
		"/site[.//item]",
		"//item[./mailbox//text and ./name]",
		"//item[./name = 'no-such-name' and .//text]",
	}
	for _, items := range []int{60, 250} {
		doc, err := xmark.Generate(xmark.Options{Seed: 1, Items: items})
		if err != nil {
			t.Fatal(err)
		}
		sources := map[string]index.Source{"single": index.Build(doc)}
		for _, p := range []int{2, 8} {
			c, err := shard.Split(doc, p)
			if err != nil {
				t.Fatal(err)
			}
			sources[fmt.Sprintf("shards-%d", p)] = c
		}
		syn := synopsis.Build(doc)
		for srcName, src := range sources {
			for _, qs := range queries {
				for _, norm := range []score.Normalization{score.Raw, score.Sparse, score.Dense} {
					t.Run(fmt.Sprintf("items=%d/%s/%s/%v", items, srcName, qs, norm), func(t *testing.T) {
						q := pattern.MustParse(qs)
						want := score.NewTFIDF(src, q, norm)
						got := score.NewTFIDFWithStats(src, syn, q, norm)
						var probe xmltree.Node
						for id := 0; id < q.Size(); id++ {
							we, wr := want.IDF(id)
							ge, gr := got.IDF(id)
							if we != ge || wr != gr {
								t.Fatalf("node %d idf: synopsis (%v, %v), scan (%v, %v)", id, ge, gr, we, wr)
							}
							for _, v := range []score.Variant{score.Exact, score.Relaxed} {
								if want.Contribution(id, v, &probe) != got.Contribution(id, v, &probe) {
									t.Fatalf("node %d %v contribution differs", id, v)
								}
							}
							if want.MaxContribution(id) != got.MaxContribution(id) ||
								want.MinContribution(id) != got.MinContribution(id) ||
								want.ExpectedContribution(id) != got.ExpectedContribution(id) {
								t.Fatalf("node %d contribution bounds differ", id)
							}
						}
					})
				}
			}
		}
	}
}
