package store

import (
	"encoding/binary"
	"unsafe"
)

// The v2 snapshot is written little-endian with every section aligned so
// a reader on a little-endian 64-bit host can view the mapped bytes as
// typed slices without copying. The helpers below do exactly that when
// the host allows it and fall back to a decoded copy otherwise — the
// format stays portable, the fast path stays zero-copy.

// hostLittle reports whether the host stores integers little-endian.
var hostLittle = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

func aligned(b []byte, to uintptr) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%to == 0
}

// u32view returns b viewed as little-endian uint32s. len(b) must be a
// multiple of 4 (checked by the section validator before any view is
// taken). Zero-copy on aligned little-endian hosts.
func u32view(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// i32view returns b viewed as little-endian int32s. len(b) must be a
// multiple of 4. Zero-copy on aligned little-endian hosts.
func i32view(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// s64view returns b viewed as little-endian int64s. len(b) must be a
// multiple of 8. Zero-copy on aligned little-endian hosts.
func s64view(b []byte) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// intview returns b (little-endian int64s) viewed as Go ints — the form
// dewey.ID and the synopsis arrays consume directly. Zero-copy when the
// host is little-endian with 64-bit ints; otherwise each value is
// materialized (truncation on 32-bit hosts is guarded by the caller's
// range validation).
func intview(b []byte) []int {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle && strconvIntSize == 64 && aligned(b, 8) {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

// strconvIntSize mirrors strconv.IntSize without the import.
const strconvIntSize = 32 << (^uint(0) >> 63)

// byteString views b as a string without copying. The returned string
// aliases b: it stays valid exactly as long as the underlying mapping.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
