package store

import (
	"container/list"

	"repro/internal/xmltree"
)

// lruCache is a bounded map from postings key to decoded list, evicting
// the least recently used entry on overflow. Limit 0 means unbounded.
// Callers synchronize access (the Reader holds its mutex).
type lruCache struct {
	limit   int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheItem struct {
	key   string
	nodes []*xmltree.Node
}

func newLRUCache(limit int) *lruCache {
	return &lruCache{
		limit:   limit,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

func (c *lruCache) get(key string) ([]*xmltree.Node, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).nodes, true
}

// +whirllint:allocok one list element per cached postings key, bounded by the LRU limit
func (c *lruCache) put(key string, nodes []*xmltree.Node) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).nodes = nodes
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, nodes: nodes})
	c.evict()
}

func (c *lruCache) evict() {
	if c.limit <= 0 {
		return
	}
	for len(c.entries) > c.limit {
		back := c.order.Back()
		if back == nil {
			return
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheItem).key)
	}
}

// setLimit changes the bound, evicting immediately if needed.
func (c *lruCache) setLimit(limit int) {
	c.limit = limit
	c.evict()
}

func (c *lruCache) len() int { return len(c.entries) }
