// Package store persists an indexed document as a compact binary
// snapshot: opening a snapshot is much cheaper than re-parsing and
// re-indexing the XML, and postings lists are decoded lazily per tag, so
// a query touches only the access paths it probes. The Reader implements
// index.Source, making it a drop-in replacement for the in-memory index
// in the engine — the paper's disk-resident scenario (Section 6.3.3).
//
// File layout (all integers are unsigned varints unless noted):
//
//	magic   "WPX1" (4 bytes)
//	nodeCnt
//	tagCnt, tagCnt × { len, bytes }          — tag table
//	nodeCnt × {                              — node records, preorder
//	    tagID
//	    parentOrd+1   (0 = forest root)
//	    len, bytes    — text value
//	}
//	postCnt, postCnt × {                     — per-tag postings
//	    tagID
//	    n, n × delta-encoded ordinals
//	}
//	valCnt, valCnt × {                       — per-(tag,value) postings
//	    tagID, len, valueBytes
//	    n, n × delta-encoded ordinals
//	}
//
// The Dewey IDs and children lists are reconstructed from parent links
// at open time in one pass.
package store

import (
	"encoding/binary"
	"fmt"
)

var magic = [4]byte{'W', 'P', 'X', '1'}

// enc is an append-only varint encoder.
type enc struct{ buf []byte }

func (e *enc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *enc) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *enc) str(s string) { e.bytes([]byte(s)) }

// dec is a sequential varint decoder with positional error reporting.
// base shifts reported offsets so a decoder handed a sub-slice (a
// postings span) still names the absolute file offset.
type dec struct {
	buf  []byte
	pos  int
	base int
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("store: short read: need a varint at offset %d but the file ends at %d",
				d.base+d.pos, d.base+len(d.buf))
		}
		return 0, fmt.Errorf("store: corrupt varint at offset %d", d.base+d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *dec) int() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	const maxInt = int(^uint(0) >> 1)
	if v > uint64(maxInt) {
		return 0, fmt.Errorf("store: value %d overflows int at offset %d", v, d.base+d.pos)
	}
	return int(v), nil
}

func (d *dec) bytes() ([]byte, error) {
	n, err := d.int()
	if err != nil {
		return nil, err
	}
	if d.pos+n > len(d.buf) {
		return nil, fmt.Errorf("store: short read: %d-byte field at offset %d overruns the file end at %d",
			n, d.base+d.pos, d.base+len(d.buf))
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *dec) str() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

// skipOrds fast-forwards over a delta-encoded ordinal list, returning the
// byte range it occupied so lazy readers can come back to it.
func (d *dec) skipOrds() (start, end, count int, err error) {
	n, err := d.int()
	if err != nil {
		return 0, 0, 0, err
	}
	start = d.pos
	for i := 0; i < n; i++ {
		if _, err := d.uvarint(); err != nil {
			return 0, 0, 0, err
		}
	}
	return start, d.pos, n, nil
}

// decodeOrds decodes a delta-encoded ordinal list from a byte range.
// base is the range's offset within the snapshot file, so corruption
// errors name the absolute position.
func decodeOrds(buf []byte, count int, base int) ([]int, error) {
	d := &dec{buf: buf, base: base}
	out := make([]int, count)
	prev := -1
	for i := 0; i < count; i++ {
		delta, err := d.int()
		if err != nil {
			return nil, err
		}
		prev += delta + 1
		out[i] = prev
	}
	return out, nil
}

// encodeOrds delta-encodes a strictly increasing ordinal list.
func (e *enc) encodeOrds(ords []int) {
	e.uvarint(uint64(len(ords)))
	prev := -1
	for _, o := range ords {
		e.uvarint(uint64(o - prev - 1))
		prev = o
	}
}
