package store

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

// FuzzParseSnapshot feeds arbitrary (and mutated-valid) bytes to the
// snapshot decoder: it must never panic, and whatever it accepts must
// have internally consistent structure.
func FuzzParseSnapshot(f *testing.F) {
	// Seed with a couple of valid snapshots and trivial corruptions.
	for _, xml := range []string{
		`<a/>`,
		`<a><b>x</b><b>y</b></a>`,
		`<site><item id="1"><name>gold</name></item></site>`,
	} {
		doc, err := xmltree.ParseString(xml)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, doc); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 8 {
			mutated := append([]byte{}, buf.Bytes()...)
			mutated[buf.Len()/2] ^= 0xFF
			f.Add(mutated)
			f.Add(mutated[:buf.Len()-3])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("WPX1"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := Parse(raw)
		if err != nil {
			return
		}
		doc := r.Document()
		for i, n := range doc.Nodes {
			if n.Ord != i {
				t.Fatalf("ordinal mismatch at %d", i)
			}
			if n.Parent != nil && !n.Parent.ID.IsParentOf(n.ID) {
				t.Fatalf("Dewey inconsistency at %d", i)
			}
		}
		// Probing any stored tag must not panic, even on corrupt
		// postings (they surface as empty lists; Verify reports them).
		for _, tag := range r.tags {
			_ = r.Nodes(tag)
			_ = r.CountTag(tag)
		}
		_ = r.Verify()
	})
}
