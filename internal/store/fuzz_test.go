package store

import (
	"bytes"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/keyword"
	"repro/internal/synopsis"
	"repro/internal/xmltree"
)

// FuzzParseSnapshot feeds arbitrary (and mutated-valid) bytes to the
// snapshot decoder: it must never panic, and whatever it accepts must
// have internally consistent structure.
func FuzzParseSnapshot(f *testing.F) {
	// Seed with a couple of valid snapshots and trivial corruptions.
	for _, xml := range []string{
		`<a/>`,
		`<a><b>x</b><b>y</b></a>`,
		`<site><item id="1"><name>gold</name></item></site>`,
	} {
		doc, err := xmltree.ParseString(xml)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, doc); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 8 {
			mutated := append([]byte{}, buf.Bytes()...)
			mutated[buf.Len()/2] ^= 0xFF
			f.Add(mutated)
			f.Add(mutated[:buf.Len()-3])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("WPX1"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := Parse(raw)
		if err != nil {
			return
		}
		doc := r.Document()
		for i, n := range doc.Nodes {
			if n.Ord != i {
				t.Fatalf("ordinal mismatch at %d", i)
			}
			if n.Parent != nil && !n.Parent.ID.IsParentOf(n.ID) {
				t.Fatalf("Dewey inconsistency at %d", i)
			}
		}
		// Probing any stored tag must not panic, even on corrupt
		// postings (they surface as empty lists; Verify reports them).
		for _, tag := range r.tags {
			_ = r.Nodes(tag)
			_ = r.CountTag(tag)
		}
		_ = r.Verify()
	})
}

// FuzzSnapshotV2Corruption feeds arbitrary and mutated-valid bytes to
// the v2 mmap-format decoder. Truncations, flipped bytes, bad magic,
// versions and checksums must all surface as errors — never a panic —
// and anything the decoder does accept must serve structurally
// consistent candidates.
func FuzzSnapshotV2Corruption(f *testing.F) {
	for _, xml := range []string{
		`<a/>`,
		`<a><b>x</b><b>y</b></a>`,
		`<site><item id="1"><name>gold</name><desc>aa bb</desc></item></site>`,
	} {
		doc, err := xmltree.ParseString(xml)
		if err != nil {
			f.Fatal(err)
		}
		snap := &Snapshot{Doc: doc, Synopsis: synopsis.Build(doc).Flatten()}
		if len(doc.Nodes) > 0 {
			snap.Keyword = []*keyword.Flat{keyword.Build(doc, doc.Nodes[0].Tag).Flatten()}
			snap.Shards = []ShardLayout{{P: 1, Units: [][]int{{0}}}}
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, snap); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		raw := buf.Bytes()
		for _, off := range []int{0, 4, 12, 24, 28, headerSize + 8, len(raw) / 2, len(raw) - 1} {
			mutated := append([]byte{}, raw...)
			mutated[off] ^= 0x01
			f.Add(mutated)
		}
		f.Add(raw[:len(raw)/2])
		f.Add(raw[:headerSize])
	}
	f.Add([]byte{})
	f.Add([]byte("WPXS"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := ParseSnapshot(raw)
		if err != nil {
			return
		}
		doc := r.Document()
		for i, n := range doc.Nodes {
			if n.Ord != i {
				t.Fatalf("ordinal mismatch at %d", i)
			}
			if n.Parent != nil && n.Parent.Ord >= i {
				t.Fatalf("parent after child at %d", i)
			}
		}
		for _, tag := range r.tags {
			nodes := r.Nodes(tag)
			if len(nodes) != r.CountTag(tag) {
				t.Fatalf("Nodes/CountTag disagree for %q", tag)
			}
			for _, root := range doc.Roots {
				_ = r.Candidates(root, dewey.Descendant, tag, index.Test("contains", "a"))
				_ = r.TF(root, dewey.Descendant, tag, index.ValueTest{})
			}
		}
		for _, scope := range r.KeywordScopes() {
			_, _, _ = r.Keyword(scope)
		}
		for _, p := range r.ShardCounts() {
			lay, _ := r.Layout(p)
			for _, part := range lay.Units {
				if _, err := r.PartSource(part); err != nil {
					t.Fatalf("persisted layout rejected: %v", err)
				}
			}
		}
	})
}
