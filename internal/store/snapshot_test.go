package store

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/keyword"
	"repro/internal/shard"
	"repro/internal/synopsis"
	"repro/internal/xmltree"
)

// fullSnapshot builds a Snapshot carrying every optional section: the
// synopsis, an item-scope keyword index, and partition layouts for 1
// and 4 shards.
func fullSnapshot(t testing.TB, doc *xmltree.Document) *Snapshot {
	t.Helper()
	s := &Snapshot{
		Doc:      doc,
		Synopsis: synopsis.Build(doc).Flatten(),
		Keyword:  []*keyword.Flat{keyword.Build(doc, "item").Flatten()},
	}
	for _, p := range []int{1, 4} {
		c, err := shard.Split(doc, p)
		if err != nil {
			t.Fatal(err)
		}
		lay := ShardLayout{P: p}
		for _, sp := range c.Spine() {
			lay.Spine = append(lay.Spine, sp.Ord)
		}
		for _, part := range c.Parts() {
			ords := make([]int, len(part.Units))
			for i, u := range part.Units {
				ords[i] = u.Ord
			}
			lay.Units = append(lay.Units, ords)
		}
		s.Shards = append(s.Shards, lay)
	}
	return s
}

func writeSnap(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func parseSnap(t testing.TB, raw []byte) *SnapshotReader {
	t.Helper()
	r, err := ParseSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSnapshotRoundTripStructure(t *testing.T) {
	doc := genDoc(t, 30)
	r := parseSnap(t, writeSnap(t, &Snapshot{Doc: doc}))
	got := r.Document()
	if got.Size() != doc.Size() {
		t.Fatalf("size %d != %d", got.Size(), doc.Size())
	}
	if len(got.Roots) != len(doc.Roots) {
		t.Fatalf("roots %d != %d", len(got.Roots), len(doc.Roots))
	}
	for i := range doc.Nodes {
		a, b := doc.Nodes[i], got.Nodes[i]
		if a.Tag != b.Tag || a.Value != b.Value || !a.ID.Equal(b.ID) || a.Ord != b.Ord {
			t.Fatalf("node %d: %v vs %v", i, a, b)
		}
		if (a.Parent == nil) != (b.Parent == nil) {
			t.Fatalf("node %d parent presence mismatch", i)
		}
		if a.Parent != nil && a.Parent.Ord != b.Parent.Ord {
			t.Fatalf("node %d parent ord %d vs %d", i, a.Parent.Ord, b.Parent.Ord)
		}
		if len(a.Children) != len(b.Children) {
			t.Fatalf("node %d children %d vs %d", i, len(a.Children), len(b.Children))
		}
		for j := range a.Children {
			if a.Children[j].Ord != b.Children[j].Ord {
				t.Fatalf("node %d child %d ord mismatch", i, j)
			}
		}
	}
}

func TestSnapshotMatchesIndex(t *testing.T) {
	doc := genDoc(t, 40)
	ix := index.Build(doc)
	r := parseSnap(t, writeSnap(t, &Snapshot{Doc: doc}))

	tags := []string{"item", "description", "parlist", "text", "mail", "name", "absent"}
	for _, tag := range tags {
		if ix.CountTag(tag) != r.CountTag(tag) {
			t.Fatalf("CountTag(%s): %d vs %d", tag, ix.CountTag(tag), r.CountTag(tag))
		}
		a, b := ix.Nodes(tag), r.Nodes(tag)
		if len(a) != len(b) {
			t.Fatalf("Nodes(%s): %d vs %d", tag, len(a), len(b))
		}
		for i := range a {
			if a[i].Ord != b[i].Ord {
				t.Fatalf("Nodes(%s)[%d]: ord %d vs %d", tag, i, a[i].Ord, b[i].Ord)
			}
		}
	}

	// A spread of content predicates, including ones the value postings
	// serve and ones that filter the tag postings.
	vts := []index.ValueTest{
		index.ValueEq(""),
		index.Test("contains", "a"),
		index.Test("!=", "x"),
		index.Test(">", "100"),
	}
	if names := ix.Nodes("name"); len(names) > 0 {
		vts = append(vts, index.ValueEq(names[0].Value))
	}
	for _, anchorIx := range ix.Nodes("item") {
		anchorR := r.Document().Nodes[anchorIx.Ord]
		for _, tag := range []string{"parlist", "text", "incategory", "name"} {
			for _, ax := range []dewey.Axis{dewey.Self, dewey.Child, dewey.Descendant} {
				for _, vt := range vts {
					a := ix.Candidates(anchorIx, ax, tag, vt)
					b := r.Candidates(anchorR, ax, tag, vt)
					if len(a) != len(b) {
						t.Fatalf("Candidates(%v,%v,%s,%v): %d vs %d", anchorIx, ax, tag, vt, len(a), len(b))
					}
					for i := range a {
						if a[i].Ord != b[i].Ord {
							t.Fatalf("Candidates(%v,%v,%s,%v)[%d]: ord mismatch", anchorIx, ax, tag, vt, i)
						}
					}
					if got, want := r.TF(anchorR, ax, tag, vt), ix.TF(anchorIx, ax, tag, vt); got != want {
						t.Fatalf("TF(%v,%v,%s,%v): %d vs %d", anchorIx, ax, tag, vt, got, want)
					}
				}
			}
		}
	}
	for _, tag := range []string{"parlist", "incategory", "name"} {
		for _, vt := range vts {
			a := ix.Predicate("item", dewey.Descendant, tag, vt)
			b := r.Predicate("item", dewey.Descendant, tag, vt)
			if a != b {
				t.Fatalf("Predicate(%s,%v): %+v vs %+v", tag, vt, a, b)
			}
			am, bm := ix.NodesMatching(tag, vt), r.NodesMatching(tag, vt)
			if len(am) != len(bm) {
				t.Fatalf("NodesMatching(%s,%v): %d vs %d", tag, vt, len(am), len(bm))
			}
			for i := range am {
				if am[i].Ord != bm[i].Ord {
					t.Fatalf("NodesMatching(%s,%v)[%d]: ord mismatch", tag, vt, i)
				}
			}
		}
	}
}

func TestSnapshotSynopsisKeywordLayouts(t *testing.T) {
	doc := genDoc(t, 40)
	snap := fullSnapshot(t, doc)
	r := parseSnap(t, writeSnap(t, snap))

	want := synopsis.Build(doc)
	if r.Synopsis() == nil {
		t.Fatal("snapshot lost the synopsis")
	}
	if r.Synopsis().Fingerprint() != want.Fingerprint() {
		t.Fatal("persisted synopsis fingerprint diverges from a fresh build")
	}

	scopes := r.KeywordScopes()
	if len(scopes) != 1 || scopes[0] != "item" {
		t.Fatalf("keyword scopes = %v", scopes)
	}
	built := keyword.Build(doc, "item")
	got, ok, err := r.Keyword("item")
	if err != nil || !ok {
		t.Fatalf("Keyword(item): ok=%v err=%v", ok, err)
	}
	if got.Scopes() != built.Scopes() {
		t.Fatalf("scopes %d vs %d", got.Scopes(), built.Scopes())
	}
	for _, w := range []string{"gold", "a", "character", "xyzzy"} {
		if got.IDF(w) != built.IDF(w) {
			t.Fatalf("IDF(%s): %v vs %v", w, got.IDF(w), built.IDF(w))
		}
		a, b := built.Postings(w), got.Postings(w)
		if len(a) != len(b) {
			t.Fatalf("Postings(%s): %d vs %d", w, len(a), len(b))
		}
		for i := range a {
			if a[i].TF != b[i].TF || a[i].Node.Ord != b[i].Node.Ord {
				t.Fatalf("Postings(%s)[%d] mismatch", w, i)
			}
		}
	}
	if _, ok, _ := r.Keyword("mail"); ok {
		t.Fatal("unexpected keyword index for unpersisted scope")
	}

	for _, wantLay := range snap.Shards {
		gotLay, ok := r.Layout(wantLay.P)
		if !ok {
			t.Fatalf("layout for p=%d missing", wantLay.P)
		}
		if len(gotLay.Spine) != len(wantLay.Spine) || len(gotLay.Units) != len(wantLay.Units) {
			t.Fatalf("layout p=%d shape mismatch", wantLay.P)
		}
		for i := range wantLay.Spine {
			if gotLay.Spine[i] != wantLay.Spine[i] {
				t.Fatalf("layout p=%d spine[%d] mismatch", wantLay.P, i)
			}
		}
		for i := range wantLay.Units {
			if len(gotLay.Units[i]) != len(wantLay.Units[i]) {
				t.Fatalf("layout p=%d part %d size mismatch", wantLay.P, i)
			}
			for j := range wantLay.Units[i] {
				if gotLay.Units[i][j] != wantLay.Units[i][j] {
					t.Fatalf("layout p=%d part %d unit %d mismatch", wantLay.P, i, j)
				}
			}
		}
	}
	if _, ok := r.Layout(7); ok {
		t.Fatal("unexpected layout for p=7")
	}
}

func TestSnapshotPartSourceMatchesPartIndex(t *testing.T) {
	doc := genDoc(t, 40)
	c, err := shard.Split(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := parseSnap(t, writeSnap(t, &Snapshot{Doc: doc}))
	vts := []index.ValueTest{index.ValueEq(""), index.Test("contains", "a")}
	for _, part := range c.Parts() {
		ref := index.Build(part.Doc)
		ords := make([]int, len(part.Units))
		for i, u := range part.Units {
			ords[i] = u.Ord
		}
		ps, err := r.PartSource(ords)
		if err != nil {
			t.Fatal(err)
		}
		for _, tag := range []string{"item", "parlist", "incategory", "name", "absent"} {
			if a, b := ref.CountTag(tag), ps.CountTag(tag); a != b {
				t.Fatalf("part %d CountTag(%s): %d vs %d", part.ID, tag, a, b)
			}
			for _, vt := range vts {
				a, b := ref.NodesMatching(tag, vt), ps.NodesMatching(tag, vt)
				if len(a) != len(b) {
					t.Fatalf("part %d NodesMatching(%s,%v): %d vs %d", part.ID, tag, vt, len(a), len(b))
				}
				for i := range a {
					if a[i].Ord != b[i].Ord {
						t.Fatalf("part %d NodesMatching(%s,%v)[%d]: ord mismatch", part.ID, tag, vt, i)
					}
				}
				pa := ref.Predicate("item", dewey.Descendant, tag, vt)
				pb := ps.Predicate("item", dewey.Descendant, tag, vt)
				if pa != pb {
					t.Fatalf("part %d Predicate(%s,%v): %+v vs %+v", part.ID, tag, vt, pa, pb)
				}
			}
		}
		for _, anchor := range ref.Nodes("item") {
			a := ref.Candidates(anchor, dewey.Descendant, "text", index.ValueEq(""))
			b := ps.Candidates(r.Document().Nodes[anchor.Ord], dewey.Descendant, "text", index.ValueEq(""))
			if len(a) != len(b) {
				t.Fatalf("part %d Candidates: %d vs %d", part.ID, len(a), len(b))
			}
		}
	}
}

func TestSnapshotSaveOpenMmap(t *testing.T) {
	doc := genDoc(t, 20)
	path := filepath.Join(t.TempDir(), "snap.wpxs")
	if err := SaveSnapshot(path, fullSnapshot(t, doc)); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if runtime.GOOS == "linux" && !r.Mapped() {
		t.Fatal("expected an mmapped reader on linux")
	}
	if r.SizeBytes()%1 != 0 || r.SizeBytes() == 0 {
		t.Fatal("empty snapshot file")
	}
	if r.Document().Size() != doc.Size() {
		t.Fatalf("size %d != %d", r.Document().Size(), doc.Size())
	}
	ix := index.Build(doc)
	for _, tag := range []string{"item", "name", "text"} {
		if ix.CountTag(tag) != r.CountTag(tag) {
			t.Fatalf("CountTag(%s) diverges", tag)
		}
	}
	if _, err := OpenSnapshot(filepath.Join(t.TempDir(), "missing.wpxs")); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestSnapshotProbeAllocs pins the tentpole's zero-allocation property:
// steady-state descendant probes against the mapped postings allocate
// nothing.
func TestSnapshotProbeAllocs(t *testing.T) {
	doc := genDoc(t, 40)
	r := parseSnap(t, writeSnap(t, &Snapshot{Doc: doc}))
	items := r.Nodes("item")
	if len(items) == 0 {
		t.Fatal("no items")
	}
	anchor := items[0]
	var val string
	for _, n := range r.Nodes("name") {
		if n.Value != "" {
			val = n.Value
			break
		}
	}
	vts := []index.ValueTest{
		index.ValueEq(""),
		index.ValueEq(val),
		index.Test("contains", "a"),
		index.Test(">", "10"),
	}
	scratch := make([]*xmltree.Node, 0, len(doc.Nodes))
	probe := func() {
		for _, vt := range vts {
			scratch = r.AppendCandidates(scratch[:0], anchor, dewey.Descendant, "name", vt)
			scratch = r.AppendCandidates(scratch[:0], anchor, dewey.Child, "name", vt)
			_ = r.TF(anchor, dewey.Descendant, "name", vt)
		}
		_ = r.CountTag("item")
	}
	probe() // warm scratch growth
	if allocs := testing.AllocsPerRun(200, probe); allocs != 0 {
		t.Fatalf("snapshot probe path allocates %.1f per run, want 0", allocs)
	}
}

func TestSnapshotCorruptionRejected(t *testing.T) {
	doc := genDoc(t, 10)
	raw := writeSnap(t, fullSnapshot(t, doc))
	if _, err := ParseSnapshot(raw); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	mut := func(off int, b byte) []byte {
		m := append([]byte(nil), raw...)
		m[off] ^= b
		return m
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     raw[:headerSize-1],
		"bad magic":        mut(0, 0xFF),
		"bad version":      mut(4, 0xFF),
		"bad page size":    mut(12, 0xFF),
		"bad file size":    mut(16, 0xFF),
		"bad crc":          mut(24, 0xFF),
		"bad sec count":    mut(28, 0xFF),
		"table flip":       mut(headerSize+8, 0x01),
		"body flip":        mut(len(raw)/2, 0x01),
		"tail flip":        mut(len(raw)-1, 0x01),
		"truncated":        raw[:len(raw)/2],
		"truncated 1 byte": raw[:len(raw)-1],
		"extended":         append(append([]byte(nil), raw...), 0),
	}
	for name, data := range cases {
		if _, err := ParseSnapshot(data); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestSnapshotRejectsUnrenumberedDoc(t *testing.T) {
	doc := genDoc(t, 5)
	doc.Nodes[2].Ord = 99
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, &Snapshot{Doc: doc}); err == nil {
		t.Fatal("unrenumbered document accepted")
	}
}

func TestSnapshotEmptyAndForest(t *testing.T) {
	empty := xmltree.NewDocument()
	r := parseSnap(t, writeSnap(t, &Snapshot{Doc: empty}))
	if r.Document().Size() != 0 || len(r.Nodes("x")) != 0 || r.CountTag("x") != 0 {
		t.Fatal("empty document snapshot broken")
	}

	forest, err := xmltree.ParseString(`<a><b>1</b></a><a><c>2</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	r = parseSnap(t, writeSnap(t, &Snapshot{Doc: forest}))
	if len(r.Document().Roots) != 2 {
		t.Fatalf("roots = %d", len(r.Document().Roots))
	}
}

func TestIsSnapshotSniff(t *testing.T) {
	doc := genDoc(t, 5)
	v2 := writeSnap(t, &Snapshot{Doc: doc})
	if !IsSnapshot(v2) {
		t.Fatal("v2 image not recognized")
	}
	var v1 bytes.Buffer
	if err := Write(&v1, doc); err != nil {
		t.Fatal(err)
	}
	if IsSnapshot(v1.Bytes()) {
		t.Fatal("v1 image misrecognized as v2")
	}
}
