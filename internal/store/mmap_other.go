//go:build !unix

package store

import (
	"fmt"
	"os"
)

// mmapFile is unavailable on this platform; OpenSnapshot falls back to
// reading the file into an aligned heap buffer.
func mmapFile(f *os.File, size int) (data []byte, release func() error, err error) {
	return nil, nil, fmt.Errorf("store: mmap unsupported on this platform")
}

const mmapSupported = false
