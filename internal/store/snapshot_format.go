// The v2 snapshot format ("WPXS") lays a fully built corpus — tag and
// value postings, Dewey arrays, subtree extents, the structure synopsis
// and keyword indexes, plus precomputed shard layouts — out as flat
// little-endian arrays in page-aligned sections, so a reader can mmap
// the file and serve structural probes directly from the mapped pages.
// See DESIGN.md, "Snapshot storage", for the layout diagram and the
// alignment/endianness/ownership rules.
//
//	header       64 bytes (magic, version, flags, page size, file size,
//	             crc32c over bytes [32, fileSize), section count)
//	section tab  sectionCount × 32 bytes {kind u32, shard s32,
//	             off u64, len u64, count u64}
//	sections     each starting on a 4096-byte boundary, gaps zeroed
//
// Everything after byte 32 — the reserved header tail, the section
// table and every section — is covered by the checksum, so a flipped
// bit anywhere that matters fails fast at open with a positioned error
// instead of surfacing as wrong candidates at query time.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

var snapshotMagic = [4]byte{'W', 'P', 'X', 'S'}

const (
	snapshotVersion = 2
	snapshotPage    = 4096
	headerSize      = 64
	sectionEntry    = 32
	// crcFrom is the file offset the body checksum starts at: the
	// header's reserved tail, so the section table is covered too.
	crcFrom = 32
)

// castagnoli is the CRC-32C table; the polynomial has hardware support
// (SSE4.2 / ARMv8 CRC) in hash/crc32, so checksumming a mapped snapshot
// at open costs single-digit milliseconds per gigabyte-ish corpus.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section kinds. Node-level sections are indexed by preorder ordinal;
// "offsets" sections carry one extra terminator entry so element i
// spans [off[i], off[i+1]).
const (
	secTagOffsets    = 1  // u32[tagCnt+1] byte offsets into the tag blob
	secTagBlob       = 2  // tag names, concatenated
	secNodeTags      = 3  // u32[n] tag id per node
	secNodeParents   = 4  // u32[n] parent ordinal + 1; 0 = forest root
	secSubtree       = 5  // u32[n] subtree size, self included
	secValueOffsets  = 6  // u32[n+1] byte offsets into the value blob
	secValueBlob     = 7  // node text values, concatenated
	secDeweyOffsets  = 8  // u32[n+1] offsets into the component array
	secDeweyComps    = 9  // s64[m] Dewey components, all nodes concatenated
	secTagPostOff    = 10 // u32[tagCnt+1] offsets into the tag postings
	secTagPostOrds   = 11 // u32[n] ordinals grouped by tag, ascending
	secValPostTags   = 12 // u32[v] tag id per (tag, value) key
	secValPostKeyOff = 13 // u32[v+1] byte offsets into the key blob
	secValPostKeys   = 14 // value bytes of the keys, concatenated
	secValPostOff    = 15 // u32[v+1] offsets into the value postings
	secValPostOrds   = 16 // u32[mv] ordinals grouped by key, ascending
	secKeyword       = 18 // one per keyword scope (see snapshotKeyword)
	secShardSpine    = 19 // shard = P: u32[] spine ordinals
	secShardUnits    = 20 // shard = P: per part, u32 unit count then ords

	// Synopsis sections: the column form of synopsis.Flat, with tag
	// names replaced by snapshot tag ids. secSynArrays is the dominant
	// payload and is consumed in place by synopsis.Unflatten.
	secSynMeta       = 29 // s64[1] summarized node count
	secSynTagIDs     = 30 // u32[st], sorted by tag name
	secSynTagCount   = 31 // s64[st]
	secSynTagValued  = 32 // s64[st]
	secSynPathParent = 33 // u32[np] parent path index + 1; 0 = virtual root
	secSynPathTag    = 34 // u32[np]
	secSynPathCount  = 35 // s64[np]
	secSynDescPath   = 36 // u32[nd]
	secSynDescTag    = 37 // u32[nd]
	secSynDescOff    = 38 // s64[nd+1]
	secSynArrays     = 39 // s64[...] the five per-level stat arrays
)

// sectionName labels kinds in error messages, keeping on-disk
// corruption debuggable (the satellite fix this format generalizes).
func sectionName(kind uint32) string {
	names := map[uint32]string{
		secTagOffsets: "tag offsets", secTagBlob: "tag blob",
		secNodeTags: "node tags", secNodeParents: "node parents",
		secSubtree: "subtree sizes", secValueOffsets: "value offsets",
		secValueBlob: "value blob", secDeweyOffsets: "dewey offsets",
		secDeweyComps: "dewey components", secTagPostOff: "tag postings offsets",
		secTagPostOrds: "tag postings", secValPostTags: "value postings tags",
		secValPostKeyOff: "value postings key offsets", secValPostKeys: "value postings keys",
		secValPostOff: "value postings offsets", secValPostOrds: "value postings",
		secKeyword: "keyword index", secShardSpine: "shard spine",
		secShardUnits: "shard units", secSynMeta: "synopsis meta",
		secSynTagIDs: "synopsis tags", secSynTagCount: "synopsis tag counts",
		secSynTagValued: "synopsis tag valued", secSynPathParent: "synopsis path parents",
		secSynPathTag: "synopsis path tags", secSynPathCount: "synopsis path counts",
		secSynDescPath: "synopsis desc paths", secSynDescTag: "synopsis desc tags",
		secSynDescOff: "synopsis desc offsets", secSynArrays: "synopsis arrays",
	}
	if n, ok := names[kind]; ok {
		return n
	}
	return fmt.Sprintf("kind %d", kind)
}

// section is one parsed section-table entry.
type section struct {
	kind  uint32
	shard int32
	off   uint64
	len   uint64
	count uint64
}

// data returns the section's byte range within the snapshot; bounds were
// validated when the table was parsed.
func (s section) data(file []byte) []byte { return file[s.off : s.off+s.len] }

// header is the fixed 64-byte snapshot header.
type header struct {
	version  uint32
	flags    uint32
	pageSize uint32
	fileSize uint64
	bodyCRC  uint32
	sections uint32
}

func (h header) encode() []byte {
	b := make([]byte, headerSize)
	copy(b, snapshotMagic[:])
	binary.LittleEndian.PutUint32(b[4:], h.version)
	binary.LittleEndian.PutUint32(b[8:], h.flags)
	binary.LittleEndian.PutUint32(b[12:], h.pageSize)
	binary.LittleEndian.PutUint64(b[16:], h.fileSize)
	binary.LittleEndian.PutUint32(b[24:], h.bodyCRC)
	binary.LittleEndian.PutUint32(b[28:], h.sections)
	return b
}

// IsSnapshot reports whether data begins with the v2 snapshot magic —
// the sniff Open uses to dispatch between the legacy varint format and
// the mmap format.
func IsSnapshot(data []byte) bool {
	return len(data) >= 4 && data[0] == snapshotMagic[0] && data[1] == snapshotMagic[1] &&
		data[2] == snapshotMagic[2] && data[3] == snapshotMagic[3]
}

// parseHeader validates the fixed header against the actual input size.
func parseHeader(data []byte) (header, error) {
	if len(data) < headerSize {
		return header{}, fmt.Errorf("store: snapshot truncated: %d bytes, need %d-byte header", len(data), headerSize)
	}
	if !IsSnapshot(data) {
		return header{}, fmt.Errorf("store: bad snapshot magic % x at offset 0", data[:4])
	}
	h := header{
		version:  binary.LittleEndian.Uint32(data[4:]),
		flags:    binary.LittleEndian.Uint32(data[8:]),
		pageSize: binary.LittleEndian.Uint32(data[12:]),
		fileSize: binary.LittleEndian.Uint64(data[16:]),
		bodyCRC:  binary.LittleEndian.Uint32(data[24:]),
		sections: binary.LittleEndian.Uint32(data[28:]),
	}
	if h.version != snapshotVersion {
		return header{}, fmt.Errorf("store: unsupported snapshot version %d (want %d) at offset 4", h.version, snapshotVersion)
	}
	if h.pageSize != snapshotPage {
		return header{}, fmt.Errorf("store: unsupported snapshot page size %d (want %d) at offset 12", h.pageSize, snapshotPage)
	}
	if h.fileSize != uint64(len(data)) {
		return header{}, fmt.Errorf("store: snapshot declares %d bytes but input holds %d (offset 16)", h.fileSize, len(data))
	}
	if uint64(h.sections) > (h.fileSize-headerSize)/sectionEntry {
		return header{}, fmt.Errorf("store: section count %d exceeds input size (offset 28)", h.sections)
	}
	return h, nil
}

// parseSections validates the checksum and the section table, returning
// the parsed entries. Every structural error carries the file offset it
// was detected at.
func parseSections(data []byte, h header) ([]section, error) {
	if got := crc32.Checksum(data[crcFrom:], castagnoli); got != h.bodyCRC {
		return nil, fmt.Errorf("store: snapshot checksum mismatch: body crc32c %08x, header declares %08x (offset 24)", got, h.bodyCRC)
	}
	secs := make([]section, h.sections)
	for i := range secs {
		off := headerSize + i*sectionEntry
		e := data[off : off+sectionEntry]
		s := section{
			kind:  binary.LittleEndian.Uint32(e[0:]),
			shard: int32(binary.LittleEndian.Uint32(e[4:])),
			off:   binary.LittleEndian.Uint64(e[8:]),
			len:   binary.LittleEndian.Uint64(e[16:]),
			count: binary.LittleEndian.Uint64(e[24:]),
		}
		if s.off%snapshotPage != 0 {
			return nil, fmt.Errorf("store: %s section is not page-aligned (offset %d in table entry %d)", sectionName(s.kind), s.off, i)
		}
		if s.off < uint64(headerSize+int(h.sections)*sectionEntry) || s.off+s.len < s.off || s.off+s.len > h.fileSize {
			return nil, fmt.Errorf("store: %s section [%d, %d) escapes the %d-byte file (table entry %d)", sectionName(s.kind), s.off, s.off+s.len, h.fileSize, i)
		}
		secs[i] = s
	}
	return secs, nil
}
