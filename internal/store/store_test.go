package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func genDoc(t testing.TB, items int) *xmltree.Document {
	t.Helper()
	doc, err := xmark.Generate(xmark.Options{Seed: 5, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func roundTrip(t testing.TB, doc *xmltree.Document) *Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	r, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTripStructure(t *testing.T) {
	doc := genDoc(t, 30)
	r := roundTrip(t, doc)
	got := r.Document()
	if got.Size() != doc.Size() {
		t.Fatalf("size %d != %d", got.Size(), doc.Size())
	}
	for i := range doc.Nodes {
		a, b := doc.Nodes[i], got.Nodes[i]
		if a.Tag != b.Tag || a.Value != b.Value || !a.ID.Equal(b.ID) || a.Ord != b.Ord {
			t.Fatalf("node %d: %v vs %v", i, a, b)
		}
		if (a.Parent == nil) != (b.Parent == nil) {
			t.Fatalf("node %d parent mismatch", i)
		}
		if a.Parent != nil && a.Parent.Ord != b.Parent.Ord {
			t.Fatalf("node %d parent ord %d vs %d", i, a.Parent.Ord, b.Parent.Ord)
		}
		if len(a.Children) != len(b.Children) {
			t.Fatalf("node %d children %d vs %d", i, len(a.Children), len(b.Children))
		}
	}
}

func TestReaderMatchesIndex(t *testing.T) {
	doc := genDoc(t, 40)
	ix := index.Build(doc)
	r := roundTrip(t, doc)
	tags := []string{"item", "description", "parlist", "text", "mail", "name", "absent"}
	for _, tag := range tags {
		if ix.CountTag(tag) != r.CountTag(tag) {
			t.Fatalf("CountTag(%s): %d vs %d", tag, ix.CountTag(tag), r.CountTag(tag))
		}
		a, b := ix.Nodes(tag), r.Nodes(tag)
		if len(a) != len(b) {
			t.Fatalf("Nodes(%s): %d vs %d", tag, len(a), len(b))
		}
		for i := range a {
			if a[i].Ord != b[i].Ord {
				t.Fatalf("Nodes(%s)[%d]: ord %d vs %d", tag, i, a[i].Ord, b[i].Ord)
			}
		}
	}
	// Probe equivalence on every item anchor.
	for _, anchorIx := range ix.Nodes("item") {
		anchorR := r.Document().Nodes[anchorIx.Ord]
		for _, tag := range []string{"parlist", "text", "incategory"} {
			for _, ax := range []dewey.Axis{dewey.Child, dewey.Descendant} {
				a := ix.Candidates(anchorIx, ax, tag, index.ValueEq(""))
				b := r.Candidates(anchorR, ax, tag, index.ValueEq(""))
				if len(a) != len(b) {
					t.Fatalf("Candidates(%v,%v,%s): %d vs %d", anchorIx, ax, tag, len(a), len(b))
				}
			}
		}
	}
	// Predicate stats equivalence.
	for _, tag := range []string{"parlist", "incategory"} {
		a := ix.Predicate("item", dewey.Descendant, tag, index.ValueEq(""))
		b := r.Predicate("item", dewey.Descendant, tag, index.ValueEq(""))
		if a != b {
			t.Fatalf("Predicate(%s): %+v vs %+v", tag, a, b)
		}
	}
}

func TestValuePostings(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><a>x</a><a>y</a><a>x</a><b>x</b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, doc)
	if got := len(r.NodesValued("a", "x")); got != 2 {
		t.Fatalf("a=x postings = %d", got)
	}
	if got := len(r.NodesValued("a", "z")); got != 0 {
		t.Fatalf("a=z postings = %d", got)
	}
	if got := len(r.NodesValued("a", "")); got != 3 {
		t.Fatalf("a postings = %d", got)
	}
	// Cached second call returns identical slice.
	p1 := r.NodesValued("a", "x")
	p2 := r.NodesValued("a", "x")
	if &p1[0] != &p2[0] {
		t.Fatal("postings not cached")
	}
}

func TestSaveOpen(t *testing.T) {
	doc := genDoc(t, 10)
	path := filepath.Join(t.TempDir(), "snap.wpx")
	if err := Save(path, doc); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if r.Document().Size() != doc.Size() {
		t.Fatal("size mismatch after save/open")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.wpx")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestCorruptionDetected(t *testing.T) {
	doc := genDoc(t, 5)
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Parse([]byte("nope")); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := Parse(raw[:len(raw)/2]); err == nil {
		t.Fatal("truncated snapshot should error")
	}
	trailing := append(append([]byte{}, raw...), 0xFF)
	if _, err := Parse(trailing); err == nil {
		t.Fatal("trailing bytes should error")
	}
	if _, err := Parse(nil); err == nil {
		t.Fatal("empty input should error")
	}
}

// TestCorruptionErrorsCarryOffsets pins the debuggability contract: a
// short read or corrupt field names the absolute file offset and the
// section being decoded, never a bare EOF.
func TestCorruptionErrorsCarryOffsets(t *testing.T) {
	doc := genDoc(t, 5)
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for cut := 5; cut < len(raw); cut += len(raw) / 7 {
		_, err := Parse(raw[:cut])
		if err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("truncation at %d: error lacks offset context: %v", cut, err)
		}
	}

	// A snapshot whose postings span is truncated mid-list must name the
	// absolute offset of the corrupt varint, not one relative to the span.
	r, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	var sp span
	for _, s := range r.tagPost {
		if s.count > 0 {
			sp = s
			break
		}
	}
	if sp.count == 0 {
		t.Fatal("no non-empty postings span")
	}
	if _, err := decodeOrds(raw[sp.start:sp.start], sp.count, sp.start); err == nil {
		t.Fatal("truncated postings should error")
	} else if !strings.Contains(err.Error(), fmt.Sprintf("offset %d", sp.start)) {
		t.Fatalf("postings error should name absolute offset %d: %v", sp.start, err)
	}
}

func TestEmptyDocument(t *testing.T) {
	doc := xmltree.NewDocument()
	r := roundTrip(t, doc)
	if r.Document().Size() != 0 {
		t.Fatal("empty document round trip broken")
	}
	if r.Nodes("anything") != nil {
		t.Fatal("postings of empty doc")
	}
}

func TestForestRoundTrip(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><b/></a><a><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, doc)
	if len(r.Document().Roots) != 2 {
		t.Fatalf("roots = %d", len(r.Document().Roots))
	}
}

func TestSnapshotSmallerThanXML(t *testing.T) {
	doc := genDoc(t, 200)
	var snap bytes.Buffer
	if err := Write(&snap, doc); err != nil {
		t.Fatal(err)
	}
	xmlSize := doc.SerializedSize()
	if snap.Len() >= xmlSize {
		t.Fatalf("snapshot (%d) should be smaller than XML (%d)", snap.Len(), xmlSize)
	}
}

func TestCacheLimitEvicts(t *testing.T) {
	doc := genDoc(t, 30)
	r := roundTrip(t, doc)
	r.SetCacheLimit(2)
	tags := []string{"item", "name", "description", "parlist", "mailbox", "mail"}
	for _, tag := range tags {
		_ = r.Nodes(tag)
	}
	if got := r.CachedLists(); got > 2 {
		t.Fatalf("cached lists = %d, want ≤ 2", got)
	}
	// Evicted lists re-decode correctly.
	ix := index.Build(doc)
	for _, tag := range tags {
		if len(r.Nodes(tag)) != ix.CountTag(tag) {
			t.Fatalf("tag %s mis-decoded after eviction", tag)
		}
	}
	// Raising the limit back to unbounded keeps everything.
	r.SetCacheLimit(0)
	for _, tag := range tags {
		_ = r.Nodes(tag)
	}
	if got := r.CachedLists(); got < len(tags) {
		t.Fatalf("unbounded cache holds %d lists, want ≥ %d", got, len(tags))
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", nil)
	c.put("b", nil)
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", nil) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should survive")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be present")
	}
	// Overwriting an existing key must not grow the cache.
	c.put("a", nil)
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}
