package store

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/keyword"
	"repro/internal/synopsis"
	"repro/internal/xmltree"
)

// SnapshotReader serves a v2 snapshot as an index.Source. Postings,
// Dewey components, node values and the synopsis statistic arrays all
// alias the snapshot bytes — when the file was mmapped, structural
// probes are answered straight from the kernel page cache, shared by
// every process that has the same snapshot open. The only per-corpus
// heap cost is the node slab (Tag/Parent/Children wiring the engine's
// *xmltree.Node API requires).
//
// Everything a SnapshotReader or any structure derived from it hands
// out (node values, Dewey IDs, synopsis arrays) stays valid until
// Close; see DESIGN.md "Snapshot storage" for the ownership rules.
type SnapshotReader struct {
	data    []byte
	release func() error
	mapped  bool

	tags   []string // aliases the tag blob
	tagIDs map[string]int

	// The node slab is materialized lazily on first touch (Document,
	// PartSource, the first plan-time enumeration): every input column is
	// validated at open, so materialization cannot fail, and opening a
	// snapshot stays O(map + checksum + validation) — the per-process
	// boot cost N daemons sharing one page cache each pay. docReady
	// gates the fast path with one atomic load; mu guards the build.
	docReady atomic.Bool
	nodes    []xmltree.Node
	doc      *xmltree.Document

	// Validated column views feeding the lazy materialization; all alias
	// the snapshot.
	n        int // node count
	nodeTags []uint32
	parents  []uint32 // parent ordinal + 1, 0 = forest root
	valOff   []uint32
	valBlob  []byte
	dewOff   []uint32
	dewComps []int

	subtree     []uint32 // subtree size per ordinal
	tagPostOff  []uint32
	tagPostOrds []uint32
	valTags     []uint32
	valKeyOff   []uint32
	valKeys     []byte
	valPostOff  []uint32
	valPostOrds []uint32

	syn        *synopsis.Synopsis
	keywordSec map[string]section
	layouts    map[int]ShardLayout

	mu       sync.Mutex
	matTag   map[string][]*xmltree.Node // cache: tag postings as node pointers
	filtered map[string][]*xmltree.Node // cache: non-any value tests
}

var _ index.Source = (*SnapshotReader)(nil)

// OpenSnapshot maps the snapshot at path and wires a reader over it.
// The file is mmapped read-only when the platform allows it; otherwise
// (or if the mapping fails) it is read into memory, preserving behavior
// at the cost of sharing. Validation — header, CRC-32C over the body,
// section table, and every structural invariant the probe paths rely
// on — happens here, so corruption fails at open with a positioned
// error instead of surfacing at query time.
func OpenSnapshot(path string) (*SnapshotReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("store: snapshot %s: %d bytes exceed the address space", path, size)
	}
	var (
		data    []byte
		release func() error
		mapped  bool
	)
	if mmapSupported {
		data, release, err = mmapFile(f, int(size))
		mapped = err == nil
	}
	if !mapped {
		data = make([]byte, size)
		if _, err := f.ReadAt(data, 0); err != nil {
			return nil, fmt.Errorf("store: snapshot %s: %w", path, err)
		}
		release = nil
	}
	r, err := newSnapshotReader(data, release, mapped)
	if err != nil {
		if release != nil {
			release()
		}
		return nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	return r, nil
}

// ParseSnapshot wires a reader over an in-memory snapshot image. Used
// by tests and the corruption fuzzer; OpenSnapshot is the mmap path.
func ParseSnapshot(data []byte) (*SnapshotReader, error) {
	return newSnapshotReader(data, nil, false)
}

// Close releases the mapping. After Close no node, value, Dewey ID or
// synopsis obtained from the reader may be used.
func (r *SnapshotReader) Close() error {
	rel := r.release
	r.release = nil
	if rel != nil {
		return rel()
	}
	return nil
}

// Mapped reports whether the reader serves from an mmapped file (true)
// or a heap copy (false).
func (r *SnapshotReader) Mapped() bool { return r.mapped }

// SizeBytes returns the snapshot file size.
func (r *SnapshotReader) SizeBytes() int { return len(r.data) }

// Document returns the document, materializing the node slab on first
// call. Node values and Dewey IDs alias the snapshot.
func (r *SnapshotReader) Document() *xmltree.Document {
	r.ensureDoc()
	return r.doc
}

// Synopsis returns the persisted structure synopsis, or nil if the
// snapshot was written without one.
func (r *SnapshotReader) Synopsis() *synopsis.Synopsis { return r.syn }

// KeywordScopes lists the scope tags with persisted keyword indexes.
func (r *SnapshotReader) KeywordScopes() []string {
	out := make([]string, 0, len(r.keywordSec))
	for tag := range r.keywordSec {
		out = append(out, tag)
	}
	return out
}

// ShardCounts lists the shard counts with persisted partition layouts.
func (r *SnapshotReader) ShardCounts() []int {
	out := make([]int, 0, len(r.layouts))
	for p := range r.layouts {
		out = append(out, p)
	}
	return out
}

// Layout returns the persisted partition layout for p shards, if any.
func (r *SnapshotReader) Layout(p int) (ShardLayout, bool) {
	l, ok := r.layouts[p]
	return l, ok
}

// sectionSizes maps kinds to their element width for length validation;
// 1 marks byte blobs.
var sectionSizes = map[uint32]uint64{
	secTagOffsets: 4, secTagBlob: 1, secNodeTags: 4, secNodeParents: 4,
	secSubtree: 4, secValueOffsets: 4, secValueBlob: 1, secDeweyOffsets: 4,
	secDeweyComps: 8, secTagPostOff: 4, secTagPostOrds: 4, secValPostTags: 4,
	secValPostKeyOff: 4, secValPostKeys: 1, secValPostOff: 4, secValPostOrds: 4,
	secKeyword: 0, secShardSpine: 4, secShardUnits: 4,
	secSynMeta: 8, secSynTagIDs: 4, secSynTagCount: 8, secSynTagValued: 8,
	secSynPathParent: 4, secSynPathTag: 4, secSynPathCount: 8,
	secSynDescPath: 4, secSynDescTag: 4, secSynDescOff: 8, secSynArrays: 8,
}

func newSnapshotReader(data []byte, release func() error, mapped bool) (*SnapshotReader, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	secs, err := parseSections(data, h)
	if err != nil {
		return nil, err
	}
	r := &SnapshotReader{
		data:       data,
		release:    release,
		mapped:     mapped,
		keywordSec: make(map[string]section),
		layouts:    make(map[int]ShardLayout),
		matTag:     make(map[string][]*xmltree.Node),
		filtered:   make(map[string][]*xmltree.Node),
	}
	single := make(map[uint32]section)
	spines := make(map[int32]section)
	unitSecs := make(map[int32]section)
	var kwSecs []section
	for i, s := range secs {
		elem, known := sectionSizes[s.kind]
		if !known {
			continue // forward compatibility: unknown kinds are skipped
		}
		if elem > 1 && (s.len%elem != 0 || s.count != s.len/elem) {
			return nil, fmt.Errorf("store: %s section length %d does not hold %d %d-byte entries (table entry %d)",
				sectionName(s.kind), s.len, s.count, elem, i)
		}
		if elem == 1 && s.len != s.count {
			return nil, fmt.Errorf("store: %s section length %d disagrees with count %d (table entry %d)",
				sectionName(s.kind), s.len, s.count, i)
		}
		switch s.kind {
		case secKeyword:
			kwSecs = append(kwSecs, s)
		case secShardSpine:
			spines[s.shard] = s
		case secShardUnits:
			unitSecs[s.shard] = s
		default:
			if _, dup := single[s.kind]; dup {
				return nil, fmt.Errorf("store: duplicate %s section (table entry %d)", sectionName(s.kind), i)
			}
			single[s.kind] = s
		}
	}
	get := func(kind uint32) (section, error) {
		s, ok := single[kind]
		if !ok {
			return section{}, fmt.Errorf("store: snapshot is missing the %s section", sectionName(kind))
		}
		return s, nil
	}
	if err := r.loadTags(get); err != nil {
		return nil, err
	}
	for _, s := range kwSecs {
		if err := r.registerKeyword(s); err != nil {
			return nil, err
		}
	}
	if err := r.loadNodes(get); err != nil {
		return nil, err
	}
	if err := r.loadPostings(get); err != nil {
		return nil, err
	}
	if _, hasSyn := single[secSynMeta]; hasSyn {
		if err := r.loadSynopsis(get); err != nil {
			return nil, err
		}
	}
	if err := r.loadLayouts(spines, unitSecs); err != nil {
		return nil, err
	}
	return r, nil
}

// loadTags materializes the tag table; the strings alias the blob.
func (r *SnapshotReader) loadTags(get func(uint32) (section, error)) error {
	offSec, err := get(secTagOffsets)
	if err != nil {
		return err
	}
	blobSec, err := get(secTagBlob)
	if err != nil {
		return err
	}
	off := u32view(offSec.data(r.data))
	blob := blobSec.data(r.data)
	if len(off) == 0 || off[0] != 0 || uint64(off[len(off)-1]) != blobSec.len {
		return fmt.Errorf("store: tag offsets do not span the %d-byte tag blob (section at offset %d)", blobSec.len, offSec.off)
	}
	r.tags = make([]string, len(off)-1)
	r.tagIDs = make(map[string]int, len(off)-1)
	for i := range r.tags {
		if off[i] > off[i+1] {
			return fmt.Errorf("store: tag offsets decrease at entry %d (section at offset %d)", i, offSec.off)
		}
		r.tags[i] = byteString(blob[off[i]:off[i+1]])
		r.tagIDs[r.tags[i]] = i
	}
	return nil
}

// loadNodes validates the per-node columns — tag ids, parent ordering,
// subtree sizes, value and Dewey offsets — and stashes their views. The
// node slab itself is built lazily (see materialize): validation here
// guarantees the build cannot fail, so corruption still surfaces at
// open while the open path stays free of the O(n) heap materialization.
func (r *SnapshotReader) loadNodes(get func(uint32) (section, error)) error {
	tagSec, err := get(secNodeTags)
	if err != nil {
		return err
	}
	parSec, err := get(secNodeParents)
	if err != nil {
		return err
	}
	subSec, err := get(secSubtree)
	if err != nil {
		return err
	}
	valOffSec, err := get(secValueOffsets)
	if err != nil {
		return err
	}
	valBlobSec, err := get(secValueBlob)
	if err != nil {
		return err
	}
	dewOffSec, err := get(secDeweyOffsets)
	if err != nil {
		return err
	}
	dewCompSec, err := get(secDeweyComps)
	if err != nil {
		return err
	}
	n := int(tagSec.count)
	if parSec.count != uint64(n) || subSec.count != uint64(n) {
		return fmt.Errorf("store: node sections disagree on the node count (%d tags, %d parents, %d subtree sizes)",
			tagSec.count, parSec.count, subSec.count)
	}
	if valOffSec.count != uint64(n)+1 || dewOffSec.count != uint64(n)+1 {
		return fmt.Errorf("store: offset sections want %d entries, have %d value and %d dewey offsets",
			n+1, valOffSec.count, dewOffSec.count)
	}
	r.n = n
	r.nodeTags = u32view(tagSec.data(r.data))
	r.parents = u32view(parSec.data(r.data))
	r.subtree = u32view(subSec.data(r.data))
	r.valOff = u32view(valOffSec.data(r.data))
	r.valBlob = valBlobSec.data(r.data)
	r.dewOff = u32view(dewOffSec.data(r.data))
	r.dewComps = intview(dewCompSec.data(r.data))

	if err := checkOffsets(r.valOff, uint32(valBlobSec.len), "value offsets", valOffSec.off); err != nil {
		return err
	}
	if err := checkOffsets(r.dewOff, uint32(dewCompSec.count), "dewey offsets", dewOffSec.off); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if int(r.nodeTags[i]) >= len(r.tags) {
			return fmt.Errorf("store: node %d has tag id %d, only %d tags (node tags section at offset %d)",
				i, r.nodeTags[i], len(r.tags), tagSec.off)
		}
		if p := r.parents[i]; p != 0 && int(p)-1 >= i {
			return fmt.Errorf("store: node %d has parent %d at or after it (node parents section at offset %d)",
				i, p-1, parSec.off)
		}
		if s := r.subtree[i]; s < 1 || uint64(i)+uint64(s) > uint64(n) {
			return fmt.Errorf("store: node %d has subtree size %d in a %d-node document (subtree section at offset %d)",
				i, s, n, subSec.off)
		}
	}
	return nil
}

// ensureDoc materializes the node slab exactly once. The fast path is a
// single atomic load, cheap enough for probe entry points.
// +whirllint:hotpath
func (r *SnapshotReader) ensureDoc() {
	if r.docReady.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.docReady.Load() {
		r.materialize()
		r.docReady.Store(true)
	}
}

// materialize builds the node slab: one xmltree.Node per ordinal with
// values and Dewey IDs aliasing the snapshot, children wired through a
// single CSR slab. Every input was validated at open, so this cannot
// fail. Called once under r.mu (see ensureDoc).
// +whirllint:allocok one-time deferred slab build on first touch; every later ensureDoc is a single atomic load
func (r *SnapshotReader) materialize() {
	n := r.n
	childCnt := make([]int32, n)
	for i := 0; i < n; i++ {
		if p := r.parents[i]; p != 0 {
			childCnt[p-1]++
		}
	}
	// CSR child slab: one allocation wires every Children slice.
	childOff := make([]int32, n+1)
	for i := 0; i < n; i++ {
		childOff[i+1] = childOff[i] + childCnt[i]
	}
	childSlab := make([]*xmltree.Node, childOff[n])
	cursor := childCnt // reuse the count slab as the fill cursor
	copy(cursor, childOff[:n])

	r.nodes = make([]xmltree.Node, n)
	ptrs := make([]*xmltree.Node, n)
	var roots []*xmltree.Node
	for i := 0; i < n; i++ {
		nd := &r.nodes[i]
		ptrs[i] = nd
		nd.Tag = r.tags[r.nodeTags[i]]
		nd.Value = byteString(r.valBlob[r.valOff[i]:r.valOff[i+1]])
		nd.ID = dewey.ID(r.dewComps[r.dewOff[i]:r.dewOff[i+1]])
		nd.Ord = i
		nd.Children = childSlab[childOff[i]:childOff[i+1]:childOff[i+1]]
		if p := r.parents[i]; p != 0 {
			nd.Parent = &r.nodes[p-1]
			childSlab[cursor[p-1]] = nd
			cursor[p-1]++
		} else {
			roots = append(roots, nd)
		}
	}
	r.doc = &xmltree.Document{Roots: roots, Nodes: ptrs}
}

// loadPostings validates the tag and (tag, value) postings; all arrays
// stay views of the snapshot.
func (r *SnapshotReader) loadPostings(get func(uint32) (section, error)) error {
	n := r.n
	tpoSec, err := get(secTagPostOff)
	if err != nil {
		return err
	}
	tpSec, err := get(secTagPostOrds)
	if err != nil {
		return err
	}
	if tpoSec.count != uint64(len(r.tags))+1 || tpSec.count != uint64(n) {
		return fmt.Errorf("store: tag postings hold %d offsets and %d ordinals, want %d and %d",
			tpoSec.count, tpSec.count, len(r.tags)+1, n)
	}
	r.tagPostOff = u32view(tpoSec.data(r.data))
	r.tagPostOrds = u32view(tpSec.data(r.data))
	if err := checkOffsets(r.tagPostOff, uint32(n), "tag postings offsets", tpoSec.off); err != nil {
		return err
	}
	nodeTags := u32view(mustGet(get, secNodeTags).data(r.data))
	for t := 0; t < len(r.tags); t++ {
		g := r.tagPostOrds[r.tagPostOff[t]:r.tagPostOff[t+1]]
		for j, o := range g {
			if int(o) >= n || int(nodeTags[o]) != t || (j > 0 && g[j-1] >= o) {
				return fmt.Errorf("store: tag postings for %q are not ascending ordinals of that tag (entry %d, section at offset %d)",
					r.tags[t], j, tpSec.off)
			}
		}
	}

	vtSec, err := get(secValPostTags)
	if err != nil {
		return err
	}
	vkoSec, err := get(secValPostKeyOff)
	if err != nil {
		return err
	}
	vkSec, err := get(secValPostKeys)
	if err != nil {
		return err
	}
	vpoSec, err := get(secValPostOff)
	if err != nil {
		return err
	}
	vpSec, err := get(secValPostOrds)
	if err != nil {
		return err
	}
	v := int(vtSec.count)
	if vkoSec.count != uint64(v)+1 || vpoSec.count != uint64(v)+1 {
		return fmt.Errorf("store: value postings hold %d keys but %d key offsets and %d postings offsets",
			v, vkoSec.count, vpoSec.count)
	}
	r.valTags = u32view(vtSec.data(r.data))
	r.valKeyOff = u32view(vkoSec.data(r.data))
	r.valKeys = vkSec.data(r.data)
	r.valPostOff = u32view(vpoSec.data(r.data))
	r.valPostOrds = u32view(vpSec.data(r.data))
	if err := checkOffsets(r.valKeyOff, uint32(vkSec.len), "value postings key offsets", vkoSec.off); err != nil {
		return err
	}
	if err := checkOffsets(r.valPostOff, uint32(vpSec.count), "value postings offsets", vpoSec.off); err != nil {
		return err
	}
	for k := 0; k < v; k++ {
		if int(r.valTags[k]) >= len(r.tags) {
			return fmt.Errorf("store: value postings key %d has tag id %d, only %d tags (section at offset %d)",
				k, r.valTags[k], len(r.tags), vtSec.off)
		}
		if k > 0 {
			prev := byteString(r.valKeys[r.valKeyOff[k-1]:r.valKeyOff[k]])
			cur := byteString(r.valKeys[r.valKeyOff[k]:r.valKeyOff[k+1]])
			if r.valTags[k-1] > r.valTags[k] || (r.valTags[k-1] == r.valTags[k] && prev >= cur) {
				return fmt.Errorf("store: value postings keys are not sorted at entry %d (section at offset %d)", k, vkSec.off)
			}
		}
		if r.valPostOff[k] == r.valPostOff[k+1] {
			return fmt.Errorf("store: value postings key %d has an empty postings list (section at offset %d)", k, vpoSec.off)
		}
		g := r.valPostOrds[r.valPostOff[k]:r.valPostOff[k+1]]
		for j, o := range g {
			if int(o) >= n || nodeTags[o] != r.valTags[k] || (j > 0 && g[j-1] >= o) {
				return fmt.Errorf("store: value postings for key %d are not ascending ordinals of its tag (entry %d, section at offset %d)",
					k, j, vpSec.off)
			}
		}
	}
	return nil
}

// mustGet is get for sections already validated present.
func mustGet(get func(uint32) (section, error), kind uint32) section {
	s, _ := get(kind)
	return s
}

// checkOffsets validates a prefix-sum offsets array: starts at zero,
// never decreases, ends exactly at limit.
func checkOffsets(off []uint32, limit uint32, what string, at uint64) error {
	if len(off) == 0 || off[0] != 0 || off[len(off)-1] != limit {
		return fmt.Errorf("store: %s do not span [0, %d) (section at offset %d)", what, limit, at)
	}
	for i := 1; i < len(off); i++ {
		if off[i-1] > off[i] {
			return fmt.Errorf("store: %s decrease at entry %d (section at offset %d)", what, i, at)
		}
	}
	return nil
}

// loadSynopsis rebuilds the structure synopsis. The small trie columns
// are materialized (tag ids mapped back to synopsis tag indices); the
// dominant statistic arrays alias the snapshot via synopsis.Unflatten.
func (r *SnapshotReader) loadSynopsis(get func(uint32) (section, error)) error {
	need := func(kind uint32) ([]byte, uint64, error) {
		s, err := get(kind)
		if err != nil {
			return nil, 0, err
		}
		return s.data(r.data), s.count, nil
	}
	metaB, metaCnt, err := need(secSynMeta)
	if err != nil {
		return err
	}
	if metaCnt < 1 {
		return fmt.Errorf("store: synopsis meta section is empty")
	}
	idsB, st, err := need(secSynTagIDs)
	if err != nil {
		return err
	}
	cntB, cnt2, err := need(secSynTagCount)
	if err != nil {
		return err
	}
	valB, cnt3, err := need(secSynTagValued)
	if err != nil {
		return err
	}
	ppB, np, err := need(secSynPathParent)
	if err != nil {
		return err
	}
	ptB, np2, err := need(secSynPathTag)
	if err != nil {
		return err
	}
	pcB, np3, err := need(secSynPathCount)
	if err != nil {
		return err
	}
	dpB, ndc, err := need(secSynDescPath)
	if err != nil {
		return err
	}
	dtB, ndc2, err := need(secSynDescTag)
	if err != nil {
		return err
	}
	doB, ndo, err := need(secSynDescOff)
	if err != nil {
		return err
	}
	arrB, _, err := need(secSynArrays)
	if err != nil {
		return err
	}
	if cnt2 != st || cnt3 != st || np2 != np || np3 != np || ndc2 != ndc || ndo != ndc+1 {
		return fmt.Errorf("store: synopsis sections disagree on their counts")
	}
	ids := u32view(idsB)
	synIdx := make(map[uint32]int32, len(ids))
	f := &synopsis.Flat{
		NodeCount: int(s64view(metaB)[0]),
		Tags:      make([]string, len(ids)),
		TagCount:  intview(cntB),
		TagValued: intview(valB),
		PathCount: s64view(pcB),
		DescOff:   s64view(doB),
		Arrays:    intview(arrB),
	}
	for i, id := range ids {
		if int(id) >= len(r.tags) {
			return fmt.Errorf("store: synopsis tag %d has tag id %d, only %d tags", i, id, len(r.tags))
		}
		f.Tags[i] = r.tags[id]
		synIdx[id] = int32(i)
	}
	pp := u32view(ppB)
	pt := u32view(ptB)
	f.PathParent = make([]int32, len(pp))
	f.PathTag = make([]int32, len(pp))
	for i := range pp {
		f.PathParent[i] = int32(pp[i]) - 1
		idx, ok := synIdx[pt[i]]
		if !ok {
			return fmt.Errorf("store: synopsis path %d names tag id %d outside the synopsis tag table", i, pt[i])
		}
		f.PathTag[i] = idx
	}
	dp := u32view(dpB)
	dt := u32view(dtB)
	f.DescPath = make([]int32, len(dp))
	f.DescTag = make([]int32, len(dp))
	for i := range dp {
		f.DescPath[i] = int32(dp[i])
		idx, ok := synIdx[dt[i]]
		if !ok {
			return fmt.Errorf("store: synopsis desc %d names tag id %d outside the synopsis tag table", i, dt[i])
		}
		f.DescTag[i] = idx
	}
	syn, err := synopsis.Unflatten(f)
	if err != nil {
		return fmt.Errorf("store: persisted synopsis rejected: %w", err)
	}
	r.syn = syn
	return nil
}

// registerKeyword records a keyword section by its scope tag; the
// payload is parsed lazily at the first Keyword call. Only the fixed
// 24-byte payload header is touched here. Runs after loadTags.
func (r *SnapshotReader) registerKeyword(s section) error {
	b := s.data(r.data)
	if len(b) < 24 {
		return fmt.Errorf("store: keyword section at offset %d is %d bytes, need a 24-byte header", s.off, len(b))
	}
	id := u32view(b[:4])[0]
	if int(id) >= len(r.tags) {
		return fmt.Errorf("store: keyword section at offset %d scopes tag id %d, only %d tags", s.off, id, len(r.tags))
	}
	if _, dup := r.keywordSec[r.tags[id]]; dup {
		return fmt.Errorf("store: duplicate keyword section for scope %q (offset %d)", r.tags[id], s.off)
	}
	r.keywordSec[r.tags[id]] = s
	return nil
}

// Keyword unflattens the persisted keyword index for the scope tag.
// Returns (nil, false, nil) when the snapshot holds none. The heavy
// arrays (entry ordinals, term frequencies, the word blob) alias the
// snapshot; only the per-word maps are rebuilt.
func (r *SnapshotReader) Keyword(scopeTag string) (*keyword.Index, bool, error) {
	s, ok := r.keywordSec[scopeTag]
	if !ok {
		return nil, false, nil
	}
	b := s.data(r.data)
	hdr := u32view(b[:24])
	scopeCnt, wordCnt, entryCnt, blobLen := int(hdr[1]), int(hdr[2]), int(hdr[3]), int(hdr[4])
	want := 24 + 4*(scopeCnt+2*(wordCnt+1)+2*entryCnt) + blobLen
	if scopeCnt < 0 || wordCnt < 0 || entryCnt < 0 || blobLen < 0 || len(b) != want {
		return nil, true, fmt.Errorf("store: keyword section for %q is %d bytes, header implies %d (offset %d)",
			scopeTag, len(b), want, s.off)
	}
	p := 24
	take := func(n int) []byte {
		out := b[p : p+4*n]
		p += 4 * n
		return out
	}
	f := &keyword.Flat{
		ScopeTag:  scopeTag,
		ScopeOrds: i32view(take(scopeCnt)),
		WordOff:   i32view(take(wordCnt + 1)),
		PostOff:   i32view(take(wordCnt + 1)),
		EntryOrd:  i32view(take(entryCnt)),
		EntryTF:   i32view(take(entryCnt)),
	}
	f.Words = byteString(b[p : p+blobLen])
	r.ensureDoc()
	ix, err := keyword.Unflatten(r.doc, f)
	if err != nil {
		return nil, true, fmt.Errorf("store: persisted keyword index for %q rejected: %w", scopeTag, err)
	}
	return ix, true, nil
}

// loadLayouts parses the persisted shard layouts.
func (r *SnapshotReader) loadLayouts(spines, unitSecs map[int32]section) error {
	n := r.n
	for p := range unitSecs {
		if _, ok := spines[p]; !ok {
			// An empty spine (p=1) may be elided; synthesize a zero-length entry.
			spines[p] = section{kind: secShardSpine, shard: p}
		}
	}
	for p, sp := range spines {
		if p < 1 {
			return fmt.Errorf("store: shard layout for invalid shard count %d (section at offset %d)", p, sp.off)
		}
		us, ok := unitSecs[p]
		if !ok {
			return fmt.Errorf("store: shard layout for p=%d has a spine but no units section", p)
		}
		lay := ShardLayout{P: int(p)}
		if sp.len > 0 {
			for _, o := range u32view(sp.data(r.data)) {
				if int(o) >= n {
					return fmt.Errorf("store: shard spine for p=%d names ordinal %d of %d nodes (offset %d)", p, o, n, sp.off)
				}
				lay.Spine = append(lay.Spine, int(o))
			}
		}
		words := u32view(us.data(r.data))
		for len(words) > 0 {
			cnt := int(words[0])
			words = words[1:]
			if cnt < 0 || cnt > len(words) {
				return fmt.Errorf("store: shard units for p=%d truncated (offset %d)", p, us.off)
			}
			part := make([]int, cnt)
			for i := 0; i < cnt; i++ {
				if int(words[i]) >= n {
					return fmt.Errorf("store: shard unit for p=%d names ordinal %d of %d nodes (offset %d)", p, words[i], n, us.off)
				}
				part[i] = int(words[i])
			}
			words = words[cnt:]
			lay.Units = append(lay.Units, part)
		}
		if len(lay.Units) != int(p) {
			return fmt.Errorf("store: shard layout for p=%d holds %d part lists (offset %d)", p, len(lay.Units), us.off)
		}
		r.layouts[int(p)] = lay
	}
	return nil
}

// ---- index.Source ----------------------------------------------------

// Nodes returns all nodes with the tag in document order, materializing
// the pointer slice once per tag.
// +whirllint:allocok cache fill on the first plan-time Nodes call per tag; probes use AppendCandidates
func (r *SnapshotReader) Nodes(tag string) []*xmltree.Node {
	r.ensureDoc()
	r.mu.Lock()
	defer r.mu.Unlock()
	if cached, ok := r.matTag[tag]; ok {
		return cached
	}
	var out []*xmltree.Node
	if t, ok := r.tagIDs[tag]; ok {
		g := r.tagPostOrds[r.tagPostOff[t]:r.tagPostOff[t+1]]
		out = make([]*xmltree.Node, len(g))
		for i, o := range g {
			out[i] = &r.nodes[o]
		}
	}
	r.matTag[tag] = out
	return out
}

// NodesMatching returns the tag nodes satisfying vt in document order.
// +whirllint:allocok cache fill on the first probe of a (tag, predicate) pair; steady-state hits are allocation-free
func (r *SnapshotReader) NodesMatching(tag string, vt index.ValueTest) []*xmltree.Node {
	if vt.Any() {
		return r.Nodes(tag)
	}
	key := tag + "\x01" + vt.Op + "\x01" + vt.Value
	r.ensureDoc()
	r.mu.Lock()
	defer r.mu.Unlock()
	if cached, ok := r.filtered[key]; ok {
		return cached
	}
	var out []*xmltree.Node
	t, ok := r.tagIDs[tag]
	if ok && vt.IsEquality() {
		if k := r.findValKey(uint32(t), vt.Value); k >= 0 {
			g := r.valPostOrds[r.valPostOff[k]:r.valPostOff[k+1]]
			out = make([]*xmltree.Node, len(g))
			for i, o := range g {
				out[i] = &r.nodes[o]
			}
		}
	} else if ok {
		for _, o := range r.tagPostOrds[r.tagPostOff[t]:r.tagPostOff[t+1]] {
			if vt.Matches(r.nodes[o].Value) {
				out = append(out, &r.nodes[o])
			}
		}
	}
	r.filtered[key] = out
	return out
}

// CountTag returns the number of nodes with the tag — one subtraction
// on the mapped offsets array.
func (r *SnapshotReader) CountTag(tag string) int {
	t, ok := r.tagIDs[tag]
	if !ok {
		return 0
	}
	return int(r.tagPostOff[t+1] - r.tagPostOff[t])
}

// Candidates returns the candidates on the axis of anchor.
func (r *SnapshotReader) Candidates(anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	return r.AppendCandidates(nil, anchor, axis, tag, vt)
}

// AppendCandidates serves a structural probe straight from the mapped
// postings: a node's strict descendants are the contiguous ordinal
// interval (ord, ord+subtree), so a Descendant probe is two binary
// searches on the tag's (or key's) sorted ordinal group plus appends —
// no decode, no per-probe allocation, pages shared across processes.
// +whirllint:hotpath
func (r *SnapshotReader) AppendCandidates(dst []*xmltree.Node, anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	switch axis {
	case dewey.Self:
		if anchor.Tag == tag && vt.Matches(anchor.Value) {
			return append(dst, anchor)
		}
		return dst
	case dewey.Child:
		for _, c := range anchor.Children {
			if c.Tag == tag && vt.Matches(c.Value) {
				dst = append(dst, c)
			}
		}
		return dst
	case dewey.Descendant:
		return r.appendDescendants(dst, anchor, tag, vt)
	default:
		return dst
	}
}

// appendDescendants appends the tag nodes satisfying vt inside anchor's
// descendant interval.
// +whirllint:hotpath
func (r *SnapshotReader) appendDescendants(dst []*xmltree.Node, anchor *xmltree.Node, tag string, vt index.ValueTest) []*xmltree.Node {
	t, ok := r.tagIDs[tag]
	if !ok || uint(anchor.Ord) >= uint(len(r.subtree)) {
		return dst
	}
	aLo := uint32(anchor.Ord)
	aHi := aLo + r.subtree[anchor.Ord]
	var g []uint32
	if vt.IsEquality() {
		k := r.findValKey(uint32(t), vt.Value)
		if k < 0 {
			return dst
		}
		g = r.valPostOrds[r.valPostOff[k]:r.valPostOff[k+1]]
	} else {
		g = r.tagPostOrds[r.tagPostOff[t]:r.tagPostOff[t+1]]
	}
	lo := lowerBound(g, aLo+1)
	hi := lowerBound(g, aHi)
	if vt.Any() || vt.IsEquality() {
		for _, o := range g[lo:hi] {
			dst = append(dst, &r.nodes[o])
		}
		return dst
	}
	for _, o := range g[lo:hi] {
		if vt.Matches(r.nodes[o].Value) {
			dst = append(dst, &r.nodes[o])
		}
	}
	return dst
}

// countCandidates counts without materializing; the Descendant/Any and
// Descendant/equality cases are pure interval arithmetic on the mapped
// arrays.
// +whirllint:hotpath
func (r *SnapshotReader) countCandidates(anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) int {
	switch axis {
	case dewey.Self:
		if anchor.Tag == tag && vt.Matches(anchor.Value) {
			return 1
		}
		return 0
	case dewey.Child:
		cnt := 0
		for _, c := range anchor.Children {
			if c.Tag == tag && vt.Matches(c.Value) {
				cnt++
			}
		}
		return cnt
	case dewey.Descendant:
		t, ok := r.tagIDs[tag]
		if !ok || uint(anchor.Ord) >= uint(len(r.subtree)) {
			return 0
		}
		aLo := uint32(anchor.Ord)
		aHi := aLo + r.subtree[anchor.Ord]
		var g []uint32
		if vt.IsEquality() {
			k := r.findValKey(uint32(t), vt.Value)
			if k < 0 {
				return 0
			}
			g = r.valPostOrds[r.valPostOff[k]:r.valPostOff[k+1]]
		} else {
			g = r.tagPostOrds[r.tagPostOff[t]:r.tagPostOff[t+1]]
		}
		lo := lowerBound(g, aLo+1)
		hi := lowerBound(g, aHi)
		if vt.Any() || vt.IsEquality() {
			return hi - lo
		}
		cnt := 0
		for _, o := range g[lo:hi] {
			if vt.Matches(r.nodes[o].Value) {
				cnt++
			}
		}
		return cnt
	default:
		return 0
	}
}

// Predicate computes database statistics for the component predicate:
// one interval count per rootTag node, all on mapped arrays.
func (r *SnapshotReader) Predicate(rootTag string, axis dewey.Axis, tag string, vt index.ValueTest) index.PredicateStats {
	st := index.PredicateStats{}
	t, ok := r.tagIDs[rootTag]
	if !ok {
		return st
	}
	r.ensureDoc()
	roots := r.tagPostOrds[r.tagPostOff[t]:r.tagPostOff[t+1]]
	st.RootCount = len(roots)
	for _, o := range roots {
		tf := r.countCandidates(&r.nodes[o], axis, tag, vt)
		if tf > 0 {
			st.Satisfying++
			st.TotalPairs += tf
			if tf > st.MaxTF {
				st.MaxTF = tf
			}
		}
	}
	return st
}

// TF returns Definition 4.3's term frequency for node n.
// +whirllint:hotpath
func (r *SnapshotReader) TF(n *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) int {
	return r.countCandidates(n, axis, tag, vt)
}

// findValKey binary-searches the (tag, value) key table; -1 when the
// key does not exist. The probe compares against the mapped key blob
// without allocating.
// +whirllint:hotpath
func (r *SnapshotReader) findValKey(t uint32, value string) int {
	lo, hi := 0, len(r.valTags)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		mt := r.valTags[m]
		if mt < t {
			lo = m + 1
			continue
		}
		if mt > t {
			hi = m
			continue
		}
		k := byteString(r.valKeys[r.valKeyOff[m]:r.valKeyOff[m+1]])
		switch {
		case k < value:
			lo = m + 1
		case k > value:
			hi = m
		default:
			return m
		}
	}
	return -1
}

// lowerBound returns the first index i with g[i] >= x. Hand-rolled so
// the probe loop carries no closure.
// +whirllint:hotpath
func lowerBound(g []uint32, x uint32) int {
	lo, hi := 0, len(g)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if g[m] < x {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// ---- per-part source -------------------------------------------------

// PartSource serves one shard's view of the snapshot. Because shard
// parts hold complete subtrees with global ordinals, every probe
// anchored at a part node is answered by the global mapped postings
// unchanged; only whole-part enumerations (Nodes, Predicate roots)
// intersect the global groups with the part's unit intervals.
type PartSource struct {
	r     *SnapshotReader
	units []*xmltree.Node

	mu       sync.Mutex
	matTag   map[string][]*xmltree.Node
	filtered map[string][]*xmltree.Node
}

var _ index.Source = (*PartSource)(nil)

// PartSource wires a source over the part whose unit roots have the
// given global ordinals (one entry of a persisted ShardLayout).
func (r *SnapshotReader) PartSource(unitOrds []int) (*PartSource, error) {
	r.ensureDoc()
	units := make([]*xmltree.Node, len(unitOrds))
	for i, o := range unitOrds {
		if o < 0 || o >= len(r.nodes) {
			return nil, fmt.Errorf("store: part unit ordinal %d outside the %d-node document", o, len(r.nodes))
		}
		units[i] = &r.nodes[o]
	}
	return &PartSource{
		r:        r,
		units:    units,
		matTag:   make(map[string][]*xmltree.Node),
		filtered: make(map[string][]*xmltree.Node),
	}, nil
}

// Units returns the part's unit roots (global nodes, document order).
func (p *PartSource) Units() []*xmltree.Node { return p.units }

// appendUnitRange appends the part's members of group g satisfying vt.
func (p *PartSource) appendUnitRange(dst []*xmltree.Node, g []uint32, vt index.ValueTest) []*xmltree.Node {
	for _, u := range p.units {
		uLo := uint32(u.Ord)
		uHi := uLo + p.r.subtree[u.Ord]
		lo := lowerBound(g, uLo)
		hi := lowerBound(g, uHi)
		for _, o := range g[lo:hi] {
			if vt.Any() || vt.Matches(p.r.nodes[o].Value) {
				dst = append(dst, &p.r.nodes[o])
			}
		}
	}
	return dst
}

// Nodes returns the part's nodes with the tag in document order.
// +whirllint:allocok cache fill on the first plan-time Nodes call per tag; probes use AppendCandidates
func (p *PartSource) Nodes(tag string) []*xmltree.Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cached, ok := p.matTag[tag]; ok {
		return cached
	}
	var out []*xmltree.Node
	if t, ok := p.r.tagIDs[tag]; ok {
		g := p.r.tagPostOrds[p.r.tagPostOff[t]:p.r.tagPostOff[t+1]]
		out = p.appendUnitRange(out, g, index.ValueTest{})
	}
	p.matTag[tag] = out
	return out
}

// NodesMatching returns the part's tag nodes satisfying vt.
// +whirllint:allocok cache fill on the first probe of a (tag, predicate) pair; steady-state hits are allocation-free
func (p *PartSource) NodesMatching(tag string, vt index.ValueTest) []*xmltree.Node {
	if vt.Any() {
		return p.Nodes(tag)
	}
	key := tag + "\x01" + vt.Op + "\x01" + vt.Value
	p.mu.Lock()
	defer p.mu.Unlock()
	if cached, ok := p.filtered[key]; ok {
		return cached
	}
	var out []*xmltree.Node
	if t, ok := p.r.tagIDs[tag]; ok {
		if vt.IsEquality() {
			if k := p.r.findValKey(uint32(t), vt.Value); k >= 0 {
				g := p.r.valPostOrds[p.r.valPostOff[k]:p.r.valPostOff[k+1]]
				out = p.appendUnitRange(out, g, index.ValueTest{})
			}
		} else {
			g := p.r.tagPostOrds[p.r.tagPostOff[t]:p.r.tagPostOff[t+1]]
			out = p.appendUnitRange(out, g, vt)
		}
	}
	p.filtered[key] = out
	return out
}

// CountTag counts the part's nodes with the tag: two binary searches
// per unit on the mapped group.
func (p *PartSource) CountTag(tag string) int {
	t, ok := p.r.tagIDs[tag]
	if !ok {
		return 0
	}
	g := p.r.tagPostOrds[p.r.tagPostOff[t]:p.r.tagPostOff[t+1]]
	cnt := 0
	for _, u := range p.units {
		uLo := uint32(u.Ord)
		uHi := uLo + p.r.subtree[u.Ord]
		cnt += lowerBound(g, uHi) - lowerBound(g, uLo)
	}
	return cnt
}

// Candidates returns the candidates on the axis of anchor.
func (p *PartSource) Candidates(anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	return p.AppendCandidates(nil, anchor, axis, tag, vt)
}

// AppendCandidates delegates to the global mapped postings: a part
// anchor's descendant interval lies wholly inside the part, so the
// global answer IS the part answer.
// +whirllint:hotpath
func (p *PartSource) AppendCandidates(dst []*xmltree.Node, anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	return p.r.AppendCandidates(dst, anchor, axis, tag, vt)
}

// Predicate computes the statistics over the part's rootTag nodes.
func (p *PartSource) Predicate(rootTag string, axis dewey.Axis, tag string, vt index.ValueTest) index.PredicateStats {
	st := index.PredicateStats{}
	t, ok := p.r.tagIDs[rootTag]
	if !ok {
		return st
	}
	g := p.r.tagPostOrds[p.r.tagPostOff[t]:p.r.tagPostOff[t+1]]
	for _, u := range p.units {
		uLo := uint32(u.Ord)
		uHi := uLo + p.r.subtree[u.Ord]
		lo := lowerBound(g, uLo)
		hi := lowerBound(g, uHi)
		st.RootCount += hi - lo
		for _, o := range g[lo:hi] {
			tf := p.r.countCandidates(&p.r.nodes[o], axis, tag, vt)
			if tf > 0 {
				st.Satisfying++
				st.TotalPairs += tf
				if tf > st.MaxTF {
					st.MaxTF = tf
				}
			}
		}
	}
	return st
}

// TF returns the term frequency for node n.
// +whirllint:hotpath
func (p *PartSource) TF(n *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) int {
	return p.r.countCandidates(n, axis, tag, vt)
}
