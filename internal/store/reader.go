package store

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// Reader serves a snapshot as an index.Source. Node structure is
// materialized at open; postings lists stay encoded until a query first
// probes them (decoded lists are cached).
type Reader struct {
	// Immutable after Parse: safe to read without the mutex.
	doc     *xmltree.Document
	tags    []string
	raw     []byte
	tagPost map[string]span // encoded per-tag postings
	valPost map[string]span // encoded per-(tag,value) postings

	mu       sync.Mutex
	tagCache *lruCache
	valCache *lruCache
}

// SetCacheLimit bounds the decoded-postings caches to at most limit
// entries each, evicting least-recently-used lists (they re-decode on
// the next probe). Limit 0 restores the unbounded default.
func (r *Reader) SetCacheLimit(limit int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tagCache.setLimit(limit)
	r.valCache.setLimit(limit)
}

// CachedLists reports how many decoded postings lists are currently
// held (tag lists + value lists).
func (r *Reader) CachedLists() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tagCache.len() + r.valCache.len()
}

// span locates an encoded ordinal list within the snapshot.
type span struct {
	start, end, count int
}

var _ index.Source = (*Reader)(nil)

// Open loads the snapshot at path.
func Open(path string) (*Reader, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Parse decodes a snapshot held in memory. The Reader retains raw.
func Parse(raw []byte) (*Reader, error) {
	if len(raw) < 4 || raw[0] != magic[0] || raw[1] != magic[1] || raw[2] != magic[2] || raw[3] != magic[3] {
		return nil, fmt.Errorf("store: bad magic (not a snapshot, or unsupported version)")
	}
	d := &dec{buf: raw, pos: 4}
	nodeCnt, err := d.int()
	if err != nil {
		return nil, err
	}
	tagCnt, err := d.int()
	if err != nil {
		return nil, err
	}
	// Sanity-bound the declared counts by the input size before
	// allocating: every node record needs ≥ 3 bytes and every tag ≥ 1,
	// so a forged header cannot trigger a huge allocation.
	if nodeCnt > len(raw)/3+1 {
		return nil, fmt.Errorf("store: node count %d exceeds input size", nodeCnt)
	}
	if tagCnt > len(raw) {
		return nil, fmt.Errorf("store: tag count %d exceeds input size", tagCnt)
	}
	tags := make([]string, tagCnt)
	for i := range tags {
		if tags[i], err = d.str(); err != nil {
			return nil, fmt.Errorf("store: tag table entry %d of %d: %w", i, tagCnt, err)
		}
	}

	doc := xmltree.NewDocument()
	nodes := make([]*xmltree.Node, nodeCnt)
	for ord := 0; ord < nodeCnt; ord++ {
		tagID, err := d.int()
		if err != nil {
			return nil, fmt.Errorf("store: node record %d of %d: %w", ord, nodeCnt, err)
		}
		if tagID >= tagCnt {
			return nil, fmt.Errorf("store: node %d references tag %d of %d", ord, tagID, tagCnt)
		}
		parentRef, err := d.int()
		if err != nil {
			return nil, fmt.Errorf("store: node record %d of %d: %w", ord, nodeCnt, err)
		}
		value, err := d.str()
		if err != nil {
			return nil, fmt.Errorf("store: node record %d of %d: %w", ord, nodeCnt, err)
		}
		n := &xmltree.Node{Tag: tags[tagID], Value: value, Ord: ord}
		if parentRef == 0 {
			n.ID = (dewey.ID{}).Child(len(doc.Roots))
			doc.Roots = append(doc.Roots, n)
		} else {
			p := parentRef - 1
			if p >= ord {
				return nil, fmt.Errorf("store: node %d has forward parent %d", ord, p)
			}
			parent := nodes[p]
			n.Parent = parent
			n.ID = parent.ID.Child(len(parent.Children))
			parent.Children = append(parent.Children, n)
		}
		nodes[ord] = n
		doc.Nodes = append(doc.Nodes, n)
	}

	r := &Reader{
		doc:      doc,
		tags:     tags,
		tagPost:  make(map[string]span),
		valPost:  make(map[string]span),
		tagCache: newLRUCache(0),
		valCache: newLRUCache(0),
		raw:      raw,
	}

	postCnt, err := d.int()
	if err != nil {
		return nil, err
	}
	if postCnt > len(raw) {
		return nil, fmt.Errorf("store: postings count %d exceeds input size", postCnt)
	}
	for i := 0; i < postCnt; i++ {
		tagID, err := d.int()
		if err != nil {
			return nil, fmt.Errorf("store: tag postings entry %d of %d: %w", i, postCnt, err)
		}
		if tagID >= tagCnt {
			return nil, fmt.Errorf("store: postings reference tag %d of %d", tagID, tagCnt)
		}
		start, end, count, err := d.skipOrds()
		if err != nil {
			return nil, fmt.Errorf("store: tag postings entry %d of %d (tag %q): %w", i, postCnt, tags[tagID], err)
		}
		r.tagPost[tags[tagID]] = span{start, end, count}
	}
	valCnt, err := d.int()
	if err != nil {
		return nil, err
	}
	if valCnt > len(raw) {
		return nil, fmt.Errorf("store: value postings count %d exceeds input size", valCnt)
	}
	for i := 0; i < valCnt; i++ {
		tagID, err := d.int()
		if err != nil {
			return nil, fmt.Errorf("store: value postings entry %d of %d: %w", i, valCnt, err)
		}
		if tagID >= tagCnt {
			return nil, fmt.Errorf("store: value postings reference tag %d of %d", tagID, tagCnt)
		}
		value, err := d.str()
		if err != nil {
			return nil, fmt.Errorf("store: value postings entry %d of %d: %w", i, valCnt, err)
		}
		start, end, count, err := d.skipOrds()
		if err != nil {
			return nil, fmt.Errorf("store: value postings entry %d of %d (tag %q): %w", i, valCnt, tags[tagID], err)
		}
		r.valPost[valueKey(tags[tagID], value)] = span{start, end, count}
	}
	if d.pos != len(raw) {
		return nil, fmt.Errorf("store: %d trailing bytes", len(raw)-d.pos)
	}
	return r, nil
}

func valueKey(tag, value string) string { return tag + "\x00" + value }

// Document returns the reconstructed document.
func (r *Reader) Document() *xmltree.Document { return r.doc }

// decode materializes one postings list.
// +whirllint:allocok cache-miss materialization of one postings list; results are LRU-cached
func (r *Reader) decode(sp span) ([]*xmltree.Node, error) {
	ords, err := decodeOrds(r.raw[sp.start:sp.end], sp.count, sp.start)
	if err != nil {
		return nil, err
	}
	out := make([]*xmltree.Node, len(ords))
	for i, o := range ords {
		if o >= len(r.doc.Nodes) {
			return nil, fmt.Errorf("store: posting ordinal %d out of range", o)
		}
		out[i] = r.doc.Nodes[o]
	}
	return out, nil
}

// Nodes implements index.Source. Corrupt postings surface as an empty
// list; Verify reports them eagerly.
func (r *Reader) Nodes(tag string) []*xmltree.Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cached, ok := r.tagCache.get(tag); ok {
		return cached
	}
	sp, ok := r.tagPost[tag]
	if !ok {
		r.tagCache.put(tag, nil)
		return nil
	}
	nodes, err := r.decode(sp)
	if err != nil {
		nodes = nil
	}
	r.tagCache.put(tag, nodes)
	return nodes
}

// NodesValued returns nodes with the tag and exactly the given text
// value (any value when empty).
func (r *Reader) NodesValued(tag, value string) []*xmltree.Node {
	if value == "" {
		return r.Nodes(tag)
	}
	key := valueKey(tag, value)
	r.mu.Lock()
	defer r.mu.Unlock()
	if cached, ok := r.valCache.get(key); ok {
		return cached
	}
	sp, ok := r.valPost[key]
	if !ok {
		r.valCache.put(key, nil)
		return nil
	}
	nodes, err := r.decode(sp)
	if err != nil {
		nodes = nil
	}
	r.valCache.put(key, nodes)
	return nodes
}

// NodesMatching implements index.Source: equality and match-any tests
// hit the stored postings; other operators filter the tag postings, with
// the result cached.
// +whirllint:allocok cache fill on the first probe of a (tag, predicate) pair; steady-state hits are allocation-free
func (r *Reader) NodesMatching(tag string, vt index.ValueTest) []*xmltree.Node {
	switch {
	case vt.Any():
		return r.Nodes(tag)
	case vt.IsEquality():
		return r.NodesValued(tag, vt.Value)
	}
	key := tag + "\x01" + vt.Op + "\x01" + vt.Value
	r.mu.Lock()
	if cached, ok := r.valCache.get(key); ok {
		r.mu.Unlock()
		return cached
	}
	r.mu.Unlock()
	var out []*xmltree.Node
	for _, n := range r.Nodes(tag) {
		if vt.Matches(n.Value) {
			out = append(out, n)
		}
	}
	r.mu.Lock()
	r.valCache.put(key, out)
	r.mu.Unlock()
	return out
}

// CountTag implements index.Source without decoding the list.
func (r *Reader) CountTag(tag string) int {
	return r.tagPost[tag].count
}

// Candidates implements index.Source with the same semantics as the
// in-memory index.
func (r *Reader) Candidates(anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	return r.AppendCandidates(nil, anchor, axis, tag, vt)
}

// AppendCandidates implements index.Source's append-into-scratch probe.
// +whirllint:hotpath
func (r *Reader) AppendCandidates(dst []*xmltree.Node, anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	switch axis {
	case dewey.Self:
		if anchor.Tag == tag && vt.Matches(anchor.Value) {
			return append(dst, anchor)
		}
		return dst
	case dewey.Child:
		for _, c := range anchor.Children {
			if c.Tag == tag && vt.Matches(c.Value) {
				dst = append(dst, c)
			}
		}
		return dst
	case dewey.Descendant:
		postings := r.NodesMatching(tag, vt)
		lo := sort.Search(len(postings), func(i int) bool {
			return postings[i].ID.Compare(anchor.ID) > 0
		})
		for i := lo; i < len(postings); i++ {
			if !anchor.ID.IsAncestorOf(postings[i].ID) {
				break
			}
			dst = append(dst, postings[i])
		}
		return dst
	default:
		return dst
	}
}

// TF implements index.Source.
func (r *Reader) TF(n *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) int {
	return len(r.Candidates(n, axis, tag, vt))
}

// Predicate implements index.Source. The per-root probe appends into one
// scratch buffer reused across the whole scan.
func (r *Reader) Predicate(rootTag string, axis dewey.Axis, tag string, vt index.ValueTest) index.PredicateStats {
	roots := r.Nodes(rootTag)
	st := index.PredicateStats{RootCount: len(roots)}
	var buf []*xmltree.Node
	for _, root := range roots {
		buf = r.AppendCandidates(buf[:0], root, axis, tag, vt)
		tf := len(buf)
		if tf > 0 {
			st.Satisfying++
			st.TotalPairs += tf
			if tf > st.MaxTF {
				st.MaxTF = tf
			}
		}
	}
	return st
}

// Verify eagerly decodes every postings list, returning the first
// corruption found. Use it after Open when failing fast is preferable to
// empty probe results.
func (r *Reader) Verify() error {
	for _, sp := range r.tagPost {
		if _, err := r.decode(sp); err != nil {
			return err
		}
	}
	for _, sp := range r.valPost {
		if _, err := r.decode(sp); err != nil {
			return err
		}
	}
	return nil
}
