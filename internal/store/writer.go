package store

import (
	"bufio"
	"io"
	"os"
	"sort"

	"repro/internal/xmltree"
)

// Write serializes doc (with its access paths) to w in snapshot format.
func Write(w io.Writer, doc *xmltree.Document) error {
	e := &enc{buf: make([]byte, 0, 1<<16)}
	e.buf = append(e.buf, magic[:]...)
	e.uvarint(uint64(doc.Size()))

	// Tag table in first-appearance order.
	tagID := make(map[string]int)
	var tags []string
	for _, n := range doc.Nodes {
		if _, ok := tagID[n.Tag]; !ok {
			tagID[n.Tag] = len(tags)
			tags = append(tags, n.Tag)
		}
	}
	e.uvarint(uint64(len(tags)))
	for _, t := range tags {
		e.str(t)
	}

	// Node records in preorder.
	for _, n := range doc.Nodes {
		e.uvarint(uint64(tagID[n.Tag]))
		if n.Parent == nil {
			e.uvarint(0)
		} else {
			e.uvarint(uint64(n.Parent.Ord + 1))
		}
		e.str(n.Value)
	}

	// Per-tag postings.
	byTag := make(map[string][]int)
	type valKey struct{ tag, value string }
	byVal := make(map[valKey][]int)
	for _, n := range doc.Nodes {
		byTag[n.Tag] = append(byTag[n.Tag], n.Ord)
		if n.Value != "" {
			k := valKey{n.Tag, n.Value}
			byVal[k] = append(byVal[k], n.Ord)
		}
	}
	e.uvarint(uint64(len(byTag)))
	for _, t := range tags { // deterministic order
		if ords, ok := byTag[t]; ok {
			e.uvarint(uint64(tagID[t]))
			e.encodeOrds(ords)
		}
	}
	valKeys := make([]valKey, 0, len(byVal))
	for k := range byVal {
		valKeys = append(valKeys, k)
	}
	sort.Slice(valKeys, func(i, j int) bool {
		if valKeys[i].tag != valKeys[j].tag {
			return valKeys[i].tag < valKeys[j].tag
		}
		return valKeys[i].value < valKeys[j].value
	})
	e.uvarint(uint64(len(valKeys)))
	for _, k := range valKeys {
		e.uvarint(uint64(tagID[k.tag]))
		e.str(k.value)
		e.encodeOrds(byVal[k])
	}

	_, err := w.Write(e.buf)
	return err
}

// Save writes the snapshot to a file, replacing any existing file
// atomically (write to a temp file in the same directory, then rename).
func Save(path string, doc *xmltree.Document) error {
	tmp, err := os.CreateTemp(dirOf(path), ".wpx-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := Write(bw, doc); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
