package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/keyword"
	"repro/internal/synopsis"
	"repro/internal/xmltree"
)

// Snapshot describes a fully built corpus for serialization into the v2
// mmap format: the document itself plus the derived read-only structures
// that are expensive to rebuild at boot. Only Doc is required; absent
// parts simply produce no sections, and OpenSnapshot falls back to the
// in-memory build path for them.
type Snapshot struct {
	// Doc is the indexed document; its nodes must be in preorder with
	// Nodes[i].Ord == i (any parsed or renumbered document qualifies).
	Doc *xmltree.Document
	// Synopsis is the flattened structure synopsis (synopsis.Build then
	// Flatten), persisted so planners skip the ~per-corpus build cost.
	Synopsis *synopsis.Flat
	// Keyword holds flattened keyword indexes, one per scope tag.
	Keyword []*keyword.Flat
	// Shards holds precomputed partition layouts, one per shard count,
	// so a sharded corpus can be assembled from the mapped postings
	// without re-partitioning.
	Shards []ShardLayout
}

// ShardLayout is one shard.Corpus partition expressed in preorder
// ordinals: the spine (cut interior nodes) and each part's unit roots.
type ShardLayout struct {
	// P is the shard count the layout was computed for.
	P int
	// Spine lists the cut interior nodes, document order.
	Spine []int
	// Units lists each part's unit-root ordinals, part order.
	Units [][]int
}

// secPayload is one section staged for writing.
type secPayload struct {
	kind  uint32
	shard int32
	count uint64
	data  []byte
}

// leBuf is an append-only little-endian array builder.
type leBuf struct{ b []byte }

func (e *leBuf) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *leBuf) s64(v int64)  { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *leBuf) raw(p []byte) { e.b = append(e.b, p...) }
func (e *leBuf) str(s string) { e.b = append(e.b, s...) }
func (e *leBuf) ords(v []int) error {
	for _, o := range v {
		if o < 0 || o > math.MaxUint32-1 {
			return fmt.Errorf("store: ordinal %d does not fit the snapshot format", o)
		}
		e.u32(uint32(o))
	}
	return nil
}

// WriteSnapshot serializes s to w in the v2 mmap snapshot format.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	payloads, err := buildSections(s)
	if err != nil {
		return err
	}
	tableEnd := headerSize + len(payloads)*sectionEntry
	out := make([]byte, alignUp(tableEnd, snapshotPage))
	for i := range payloads {
		p := &payloads[i]
		off := len(out)
		out = append(out, p.data...)
		if i < len(payloads)-1 {
			out = append(out, make([]byte, alignUp(len(out), snapshotPage)-len(out))...)
		}
		e := out[headerSize+i*sectionEntry:]
		binary.LittleEndian.PutUint32(e[0:], p.kind)
		binary.LittleEndian.PutUint32(e[4:], uint32(p.shard))
		binary.LittleEndian.PutUint64(e[8:], uint64(off))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(p.data)))
		binary.LittleEndian.PutUint64(e[24:], p.count)
	}
	h := header{
		version:  snapshotVersion,
		pageSize: snapshotPage,
		fileSize: uint64(len(out)),
		bodyCRC:  crc32.Checksum(out[crcFrom:], castagnoli),
		sections: uint32(len(payloads)),
	}
	copy(out[:headerSize], h.encode())
	_, err = w.Write(out)
	return err
}

// SaveSnapshot writes the snapshot to path, replacing any existing file
// atomically (temp file in the same directory, then rename).
func SaveSnapshot(path string, s *Snapshot) error {
	tmp, err := os.CreateTemp(dirOf(path), ".wpsnap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := WriteSnapshot(bw, s); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func alignUp(v, to int) int { return (v + to - 1) / to * to }

func buildSections(s *Snapshot) ([]secPayload, error) {
	if s == nil || s.Doc == nil {
		return nil, fmt.Errorf("store: nil snapshot document")
	}
	doc := s.Doc
	n := len(doc.Nodes)
	if n > math.MaxUint32-1 {
		return nil, fmt.Errorf("store: %d nodes exceed the snapshot format's capacity", n)
	}
	for i, nd := range doc.Nodes {
		if nd.Ord != i {
			return nil, fmt.Errorf("store: document is not renumbered (node %d has ord %d)", i, nd.Ord)
		}
	}
	var payloads []secPayload
	add := func(kind uint32, shard int32, count int, e *leBuf) {
		payloads = append(payloads, secPayload{kind: kind, shard: shard, count: uint64(count), data: e.b})
	}

	// Tag table, first-appearance order.
	tagID := make(map[string]uint32)
	var tags []string
	for _, nd := range doc.Nodes {
		if _, ok := tagID[nd.Tag]; !ok {
			tagID[nd.Tag] = uint32(len(tags))
			tags = append(tags, nd.Tag)
		}
	}
	{
		off, blob := &leBuf{}, &leBuf{}
		off.u32(0)
		for _, t := range tags {
			blob.str(t)
			if len(blob.b) > math.MaxUint32 {
				return nil, fmt.Errorf("store: tag blob exceeds 4 GiB")
			}
			off.u32(uint32(len(blob.b)))
		}
		add(secTagOffsets, -1, len(tags)+1, off)
		add(secTagBlob, -1, len(blob.b), blob)
	}

	// Per-node columns.
	{
		nt, np, st := &leBuf{}, &leBuf{}, &leBuf{}
		vo, vb := &leBuf{}, &leBuf{}
		do, dc := &leBuf{}, &leBuf{}
		sizes := subtreeSizes(doc)
		vo.u32(0)
		do.u32(0)
		comps := 0
		for _, nd := range doc.Nodes {
			nt.u32(tagID[nd.Tag])
			if nd.Parent == nil {
				np.u32(0)
			} else {
				np.u32(uint32(nd.Parent.Ord) + 1)
			}
			st.u32(uint32(sizes[nd.Ord]))
			vb.str(nd.Value)
			if len(vb.b) > math.MaxUint32 {
				return nil, fmt.Errorf("store: value blob exceeds 4 GiB")
			}
			vo.u32(uint32(len(vb.b)))
			for _, c := range nd.ID {
				dc.s64(int64(c))
			}
			comps += len(nd.ID)
			if comps > math.MaxUint32 {
				return nil, fmt.Errorf("store: dewey component array exceeds the snapshot format's capacity")
			}
			do.u32(uint32(comps))
		}
		add(secNodeTags, -1, n, nt)
		add(secNodeParents, -1, n, np)
		add(secSubtree, -1, n, st)
		add(secValueOffsets, -1, n+1, vo)
		add(secValueBlob, -1, len(vb.b), vb)
		add(secDeweyOffsets, -1, n+1, do)
		add(secDeweyComps, -1, comps, dc)
	}

	// Tag postings: ordinals grouped by tag id, ascending within each
	// group (one pass over preorder yields both).
	{
		cnt := make([]int, len(tags))
		for _, nd := range doc.Nodes {
			cnt[tagID[nd.Tag]]++
		}
		off := &leBuf{}
		off.u32(0)
		sum := 0
		starts := make([]int, len(tags))
		for t, c := range cnt {
			starts[t] = sum
			sum += c
			off.u32(uint32(sum))
		}
		ords := make([]uint32, n)
		pos := append([]int(nil), starts...)
		for _, nd := range doc.Nodes {
			t := tagID[nd.Tag]
			ords[pos[t]] = uint32(nd.Ord)
			pos[t]++
		}
		ob := &leBuf{}
		for _, o := range ords {
			ob.u32(o)
		}
		add(secTagPostOff, -1, len(tags)+1, off)
		add(secTagPostOrds, -1, n, ob)
	}

	// Value postings, keyed by (tag id, value bytes), sorted.
	{
		type valKey struct {
			tag   uint32
			value string
		}
		byVal := make(map[valKey][]int)
		for _, nd := range doc.Nodes {
			if nd.Value != "" {
				k := valKey{tagID[nd.Tag], nd.Value}
				byVal[k] = append(byVal[k], nd.Ord)
			}
		}
		keys := make([]valKey, 0, len(byVal))
		for k := range byVal {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].tag != keys[j].tag {
				return keys[i].tag < keys[j].tag
			}
			return keys[i].value < keys[j].value
		})
		tagsB, keyOff, keyBlob, postOff, postOrds := &leBuf{}, &leBuf{}, &leBuf{}, &leBuf{}, &leBuf{}
		keyOff.u32(0)
		postOff.u32(0)
		total := 0
		for _, k := range keys {
			tagsB.u32(k.tag)
			keyBlob.str(k.value)
			if len(keyBlob.b) > math.MaxUint32 {
				return nil, fmt.Errorf("store: value-postings key blob exceeds 4 GiB")
			}
			keyOff.u32(uint32(len(keyBlob.b)))
			if err := postOrds.ords(byVal[k]); err != nil {
				return nil, err
			}
			total += len(byVal[k])
			postOff.u32(uint32(total))
		}
		add(secValPostTags, -1, len(keys), tagsB)
		add(secValPostKeyOff, -1, len(keys)+1, keyOff)
		add(secValPostKeys, -1, len(keyBlob.b), keyBlob)
		add(secValPostOff, -1, len(keys)+1, postOff)
		add(secValPostOrds, -1, total, postOrds)
	}

	if s.Synopsis != nil {
		if err := buildSynopsisSections(s.Synopsis, tagID, add); err != nil {
			return nil, err
		}
	}
	for i, kf := range s.Keyword {
		if kf == nil {
			continue
		}
		e, words, err := buildKeywordPayload(kf, tagID)
		if err != nil {
			return nil, err
		}
		add(secKeyword, int32(i), words, e)
	}
	for _, lay := range s.Shards {
		if lay.P < 1 || lay.P != len(lay.Units) {
			return nil, fmt.Errorf("store: shard layout for p=%d has %d part lists", lay.P, len(lay.Units))
		}
		sp := &leBuf{}
		if err := sp.ords(lay.Spine); err != nil {
			return nil, err
		}
		add(secShardSpine, int32(lay.P), len(lay.Spine), sp)
		un := &leBuf{}
		words := 0
		for _, part := range lay.Units {
			un.u32(uint32(len(part)))
			if err := un.ords(part); err != nil {
				return nil, err
			}
			words += 1 + len(part)
		}
		add(secShardUnits, int32(lay.P), words, un)
	}
	return payloads, nil
}

func buildSynopsisSections(f *synopsis.Flat, tagID map[string]uint32, add func(uint32, int32, int, *leBuf)) error {
	synTag := make([]uint32, len(f.Tags))
	for i, t := range f.Tags {
		id, ok := tagID[t]
		if !ok {
			return fmt.Errorf("store: synopsis tag %q is not in the document", t)
		}
		synTag[i] = id
	}
	meta := &leBuf{}
	meta.s64(int64(f.NodeCount))
	add(secSynMeta, -1, 1, meta)

	ids, cnts, vals := &leBuf{}, &leBuf{}, &leBuf{}
	for i := range f.Tags {
		ids.u32(synTag[i])
		cnts.s64(int64(f.TagCount[i]))
		vals.s64(int64(f.TagValued[i]))
	}
	add(secSynTagIDs, -1, len(f.Tags), ids)
	add(secSynTagCount, -1, len(f.Tags), cnts)
	add(secSynTagValued, -1, len(f.Tags), vals)

	pp, pt, pc := &leBuf{}, &leBuf{}, &leBuf{}
	for i := range f.PathTag {
		pp.u32(uint32(f.PathParent[i] + 1))
		pt.u32(synTag[f.PathTag[i]])
		pc.s64(f.PathCount[i])
	}
	add(secSynPathParent, -1, len(f.PathTag), pp)
	add(secSynPathTag, -1, len(f.PathTag), pt)
	add(secSynPathCount, -1, len(f.PathTag), pc)

	dp, dt, doff, arr := &leBuf{}, &leBuf{}, &leBuf{}, &leBuf{}
	for i := range f.DescPath {
		dp.u32(uint32(f.DescPath[i]))
		dt.u32(synTag[f.DescTag[i]])
	}
	for _, o := range f.DescOff {
		doff.s64(o)
	}
	for _, v := range f.Arrays {
		arr.s64(int64(v))
	}
	add(secSynDescPath, -1, len(f.DescPath), dp)
	add(secSynDescTag, -1, len(f.DescPath), dt)
	add(secSynDescOff, -1, len(f.DescOff), doff)
	add(secSynArrays, -1, len(f.Arrays), arr)
	return nil
}

// buildKeywordPayload lays one keyword scope out as:
//
//	u32 scopeTagID, scopeCnt, wordCnt, entryCnt, wordBlobLen, 0
//	u32[scopeCnt]  scope ordinals
//	u32[wordCnt+1] word blob offsets
//	u32[wordCnt+1] postings offsets
//	u32[entryCnt]  entry ordinals
//	u32[entryCnt]  entry term frequencies
//	bytes          word blob
func buildKeywordPayload(f *keyword.Flat, tagID map[string]uint32) (*leBuf, int, error) {
	id, ok := tagID[f.ScopeTag]
	if !ok {
		return nil, 0, fmt.Errorf("store: keyword scope tag %q is not in the document", f.ScopeTag)
	}
	words := len(f.WordOff) - 1
	if words < 0 || len(f.PostOff) != words+1 || len(f.EntryOrd) != len(f.EntryTF) {
		return nil, 0, fmt.Errorf("store: keyword flat form for %q is inconsistent", f.ScopeTag)
	}
	e := &leBuf{}
	e.u32(id)
	e.u32(uint32(len(f.ScopeOrds)))
	e.u32(uint32(words))
	e.u32(uint32(len(f.EntryOrd)))
	e.u32(uint32(len(f.Words)))
	e.u32(0)
	for _, o := range f.ScopeOrds {
		e.u32(uint32(o))
	}
	for _, o := range f.WordOff {
		e.u32(uint32(o))
	}
	for _, o := range f.PostOff {
		e.u32(uint32(o))
	}
	for _, o := range f.EntryOrd {
		e.u32(uint32(o))
	}
	for _, tf := range f.EntryTF {
		e.u32(uint32(tf))
	}
	e.str(f.Words)
	return e, words, nil
}

// subtreeSizes computes the subtree node count per ordinal in one
// reverse-preorder pass (children precede their parent when iterating
// backwards).
func subtreeSizes(doc *xmltree.Document) []int {
	sizes := make([]int, len(doc.Nodes))
	for i := len(doc.Nodes) - 1; i >= 0; i-- {
		nd := doc.Nodes[i]
		s := 1
		for _, ch := range nd.Children {
			s += sizes[ch.Ord]
		}
		sizes[nd.Ord] = s
	}
	return sizes
}
