//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so every process
// opening the same snapshot serves queries from one kernel page cache.
// The returned release func unmaps; after calling it any data still
// aliasing the mapping (node values, Dewey components, synopsis arrays)
// must no longer be referenced.
func mmapFile(f *os.File, size int) (data []byte, release func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

const mmapSupported = true
