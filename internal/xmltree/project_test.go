package xmltree

import (
	"strings"
	"testing"
)

const siteXML = `
<site>
  <regions>
    <africa>
      <item id="i1">
        <name>vase</name>
        <payment>Cash</payment>
        <description><parlist><listitem><text>x</text></listitem></parlist></description>
      </item>
    </africa>
    <asia>
      <item id="i2">
        <name>urn</name>
        <shipping>worldwide</shipping>
      </item>
    </asia>
  </regions>
</site>`

func TestParseProjectedKeepsQueryTags(t *testing.T) {
	keep := KeepTags("item", "name", "description", "parlist")
	doc, err := ParseProjected(strings.NewReader(siteXML), keep)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ParseString(siteXML)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Size() >= full.Size() {
		t.Fatalf("projection did not shrink: %d vs %d", doc.Size(), full.Size())
	}
	count := func(d *Document, tag string) int {
		n := 0
		d.Walk(func(node *Node) bool {
			if node.Tag == tag {
				n++
			}
			return true
		})
		return n
	}
	// Kept tags survive in full.
	for _, tag := range []string{"item", "name", "description", "parlist"} {
		if count(doc, tag) != count(full, tag) {
			t.Fatalf("tag %s: %d vs %d", tag, count(doc, tag), count(full, tag))
		}
	}
	// Dropped subtrees are gone.
	for _, tag := range []string{"payment", "shipping", "text", "listitem", "@id"} {
		if count(doc, tag) != 0 {
			t.Fatalf("tag %s survived projection", tag)
		}
	}
	// Ancestors of kept nodes survive even when not requested.
	for _, tag := range []string{"site", "regions", "africa", "asia"} {
		if count(doc, tag) != count(full, tag) {
			t.Fatalf("ancestor %s: %d vs %d", tag, count(doc, tag), count(full, tag))
		}
	}
}

func TestParseProjectedPreservesLevelsAndValues(t *testing.T) {
	keep := KeepTags("item", "name")
	doc, err := ParseProjected(strings.NewReader(siteXML), keep)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := ParseString(siteXML)
	findAll := func(d *Document, tag string) []*Node {
		var out []*Node
		d.Walk(func(n *Node) bool {
			if n.Tag == tag {
				out = append(out, n)
			}
			return true
		})
		return out
	}
	pItems, fItems := findAll(doc, "item"), findAll(full, "item")
	if len(pItems) != len(fItems) {
		t.Fatal("item counts differ")
	}
	for i := range pItems {
		if pItems[i].Level() != fItems[i].Level() {
			t.Fatalf("item %d level %d vs %d", i, pItems[i].Level(), fItems[i].Level())
		}
	}
	pNames := findAll(doc, "name")
	if len(pNames) != 2 || pNames[0].Value != "vase" || pNames[1].Value != "urn" {
		t.Fatalf("name values lost: %v", pNames)
	}
	// pc relationship item→name preserved via Dewey.
	for i, n := range pNames {
		if !n.ID.IsChildOf(pItems[i].ID) {
			t.Fatalf("name %d not a Dewey child of its item", i)
		}
		if n.Parent != pItems[i] {
			t.Fatalf("name %d parent pointer broken", i)
		}
	}
}

func TestParseProjectedAttributes(t *testing.T) {
	keep := KeepTags("item", "@id")
	doc, err := ParseProjected(strings.NewReader(siteXML), keep)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	doc.Walk(func(n *Node) bool {
		if n.Tag == "@id" {
			found++
			if n.Parent.Tag != "item" {
				t.Fatalf("@id parent = %s", n.Parent.Tag)
			}
		}
		return true
	})
	if found != 2 {
		t.Fatalf("@id nodes = %d", found)
	}
}

func TestParseProjectedKeepNothing(t *testing.T) {
	doc, err := ParseProjected(strings.NewReader(siteXML), KeepTags())
	if err != nil {
		t.Fatal(err)
	}
	if doc.Size() != 0 {
		t.Fatalf("empty projection has %d nodes", doc.Size())
	}
}

func TestParseProjectedErrors(t *testing.T) {
	for _, bad := range []string{"<a><b></a>", "<a>"} {
		if _, err := ParseProjected(strings.NewReader(bad), KeepTags("a")); err == nil {
			t.Errorf("ParseProjected(%q) should fail", bad)
		}
	}
}

func TestParseProjectedOrdinalsAreConsistent(t *testing.T) {
	doc, err := ParseProjected(strings.NewReader(siteXML), KeepTags("item", "name", "description"))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range doc.Nodes {
		if n.Ord != i {
			t.Fatalf("ordinal mismatch at %d", i)
		}
		if n.Parent != nil && !n.Parent.ID.IsParentOf(n.ID) {
			t.Fatalf("Dewey inconsistency at %v", n)
		}
	}
	// Preorder document order.
	for i := 1; i < len(doc.Nodes); i++ {
		if doc.Nodes[i].ID.Compare(doc.Nodes[i-1].ID) <= 0 {
			t.Fatal("projected nodes out of document order")
		}
	}
}
