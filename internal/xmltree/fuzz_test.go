package xmltree

import (
	"bytes"
	"testing"
)

// FuzzParse checks that the XML parser never panics, assigns consistent
// structure to whatever it accepts, and that Serialize output re-parses
// to the same shape.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a><b>text</b></a>",
		`<a x="1"><b/><b/></a>`,
		"<a>x &amp; y</a>",
		"<a><b></a>",
		"<a>",
		"</a>",
		"<a/><b/>",
		"<a>\xff\xfe</a>",
		"<a><![CDATA[raw]]></a>",
		"<?xml version=\"1.0\"?><a/>",
		"<a><!-- comment --><b/></a>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := ParseString(input)
		if err != nil {
			return
		}
		// Invariants of accepted documents.
		for i, n := range doc.Nodes {
			if n.Ord != i {
				t.Fatalf("ordinal mismatch at %d", i)
			}
			if n.Parent != nil && !n.Parent.ID.IsParentOf(n.ID) {
				t.Fatalf("Dewey/parent inconsistency at %v", n)
			}
			for _, c := range n.Children {
				if c.Parent != n {
					t.Fatalf("child %v does not point back to %v", c, n)
				}
			}
		}
		// Serialize must produce re-parseable XML with the same shape.
		var buf bytes.Buffer
		if err := doc.Serialize(&buf); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		doc2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialized output: %v\n%s", err, buf.String())
		}
		if doc2.Size() != doc.Size() {
			t.Fatalf("round trip changed node count: %d -> %d", doc.Size(), doc2.Size())
		}
		for i := range doc.Nodes {
			if doc.Nodes[i].Tag != doc2.Nodes[i].Tag {
				t.Fatalf("round trip changed tag at %d", i)
			}
		}
	})
}
