package xmltree

import (
	"strings"
	"testing"
)

func TestParseMixedContentConcatenation(t *testing.T) {
	// Character data around child elements concatenates into the
	// element's own value.
	doc, err := ParseString(`<p>hello <b>bold</b> world</p>`)
	if err != nil {
		t.Fatal(err)
	}
	p := doc.Roots[0]
	if p.Value != "hello  world" && p.Value != "hello world" {
		t.Fatalf("mixed content value = %q", p.Value)
	}
	if p.Children[0].Value != "bold" {
		t.Fatalf("child value = %q", p.Children[0].Value)
	}
}

func TestParseCommentsAndPI(t *testing.T) {
	doc, err := ParseString(`<?xml version="1.0"?><!-- c --><a><!-- inner --><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Size() != 2 {
		t.Fatalf("size = %d (comments/PIs must not become nodes)", doc.Size())
	}
}

func TestParseCDATA(t *testing.T) {
	doc, err := ParseString(`<a><![CDATA[raw <stuff> & more]]></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.Roots[0].Value, "<stuff>") {
		t.Fatalf("CDATA value = %q", doc.Roots[0].Value)
	}
}

func TestParseDeepNesting(t *testing.T) {
	var b strings.Builder
	const depth = 200
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	doc, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if doc.Size() != depth {
		t.Fatalf("size = %d", doc.Size())
	}
	deepest := doc.Nodes[depth-1]
	if deepest.Level() != depth || deepest.Value != "x" {
		t.Fatalf("deepest = %v level %d", deepest, deepest.Level())
	}
}

func TestSerializeAttributesRoundTrip(t *testing.T) {
	doc, err := ParseString(`<a x="1" y="two words"><b z="&lt;"/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := doc.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	find := func(d *Document, tag string) *Node {
		var out *Node
		d.Walk(func(n *Node) bool {
			if n.Tag == tag {
				out = n
				return false
			}
			return true
		})
		return out
	}
	for _, attr := range []string{"@x", "@y", "@z"} {
		a, b := find(doc, attr), find(doc2, attr)
		if a == nil || b == nil || a.Value != b.Value {
			t.Fatalf("attribute %s lost in round trip (%v vs %v)", attr, a, b)
		}
	}
}
