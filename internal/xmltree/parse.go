package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/dewey"
)

// Parse reads serialized XML from r and returns the document forest.
// Character data directly under an element becomes the element's Value
// (whitespace-trimmed); attributes become child nodes tagged "@name" so
// that structural predicates can address them uniformly.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = true
	doc := NewDocument()
	var stack []*Node
	var texts []*strings.Builder

	push := func(n *Node) {
		stack = append(stack, n)
		texts = append(texts, &strings.Builder{})
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var n *Node
			if len(stack) == 0 {
				n = &Node{Tag: t.Name.Local}
				n.ID = (dewey.ID{}).Child(len(doc.Roots))
				doc.Roots = append(doc.Roots, n)
			} else {
				parent := stack[len(stack)-1]
				n = &Node{
					Tag:    t.Name.Local,
					ID:     parent.ID.Child(len(parent.Children)),
					Parent: parent,
				}
				parent.Children = append(parent.Children, n)
			}
			for _, attr := range t.Attr {
				a := &Node{
					Tag:    "@" + attr.Name.Local,
					Value:  attr.Value,
					ID:     n.ID.Child(len(n.Children)),
					Parent: n,
				}
				n.Children = append(n.Children, a)
			}
			push(n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", t.Name.Local)
			}
			top := stack[len(stack)-1]
			top.Value = strings.TrimSpace(texts[len(texts)-1].String())
			stack = stack[:len(stack)-1]
			texts = texts[:len(texts)-1]
		case xml.CharData:
			if len(stack) > 0 {
				texts[len(texts)-1].Write(t)
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: %d unclosed element(s)", len(stack))
	}
	doc.renumber()
	return doc, nil
}

// ParseString parses a document from a string.
func ParseString(s string) (*Document, error) { return Parse(strings.NewReader(s)) }

// Serialize writes the document back as indented XML. Attribute nodes
// (tag "@name") are rendered as attributes; order of children is
// preserved. The output is sufficient to round-trip through Parse.
func (d *Document) Serialize(w io.Writer) error {
	for _, r := range d.Roots {
		if err := writeNode(w, r, 0); err != nil {
			return err
		}
	}
	return nil
}

// SerializedSize returns the number of bytes Serialize would write. It is
// used to calibrate generated documents against the paper's 1/10/50 MB
// document sizes.
func (d *Document) SerializedSize() int {
	var c countWriter
	_ = d.Serialize(&c)
	return int(c)
}

type countWriter int

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

func writeNode(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	var attrs strings.Builder
	var elems []*Node
	for _, c := range n.Children {
		if strings.HasPrefix(c.Tag, "@") {
			fmt.Fprintf(&attrs, " %s=\"%s\"", c.Tag[1:], escapeAttr(c.Value))
		} else {
			elems = append(elems, c)
		}
	}
	if len(elems) == 0 && n.Value == "" {
		_, err := fmt.Fprintf(w, "%s<%s%s/>\n", indent, n.Tag, attrs.String())
		return err
	}
	if len(elems) == 0 {
		_, err := fmt.Fprintf(w, "%s<%s%s>%s</%s>\n", indent, n.Tag, attrs.String(), escapeText(n.Value), n.Tag)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s%s>", indent, n.Tag, attrs.String()); err != nil {
		return err
	}
	if n.Value != "" {
		if _, err := io.WriteString(w, escapeText(n.Value)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, c := range elems {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Tag)
	return err
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

func escapeText(s string) string { return textEscaper.Replace(s) }

var attrEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "\n", "&#10;", "\t", "&#9;",
)

func escapeAttr(s string) string { return attrEscaper.Replace(s) }
