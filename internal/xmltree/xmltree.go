// Package xmltree implements the paper's XML data model: information is a
// forest of node-labeled trees (Section 2). Every element node carries its
// tag, an optional text value (the concatenated character data directly
// under it), a Dewey identifier, and pointers to its parent and children.
//
// Documents are parsed from serialized XML with encoding/xml and can be
// serialized back; attributes are modeled as child nodes tagged "@name" so
// structural predicates treat them uniformly (the paper's queries do not
// use attributes, but XMark documents carry them).
package xmltree

import (
	"sort"
	"strings"

	"repro/internal/dewey"
)

// Node is one node of a node-labeled XML tree.
type Node struct {
	// Tag is the element name (or "@name" for an attribute node).
	Tag string
	// Value is the trimmed character data directly under the element.
	// Empty for pure-structure nodes.
	Value string
	// ID is the node's Dewey identifier within its tree. Roots of the
	// forest get IDs [i] under a virtual forest root, so IDs are unique
	// document-wide.
	ID dewey.ID
	// Ord is the node's preorder ordinal within the document; it doubles
	// as a compact unique identifier.
	Ord int

	Parent   *Node
	Children []*Node
}

// Document is a parsed XML forest with global bookkeeping.
type Document struct {
	// Roots holds the top-level element(s). A well-formed XML document
	// has exactly one; the model permits a forest (Figure 1 shows three
	// book trees side by side).
	Roots []*Node
	// Nodes lists every node in document (preorder) order; Nodes[i].Ord == i.
	Nodes []*Node
}

// NewDocument builds an empty document.
func NewDocument() *Document { return &Document{} }

// AddRoot appends a new top-level element with the given tag and returns it.
func (d *Document) AddRoot(tag string) *Node {
	n := &Node{Tag: tag, ID: dewey.ID{}.Child(len(d.Roots))}
	d.Roots = append(d.Roots, n)
	d.renumber()
	return n
}

// AddChild appends a new child element to parent and returns it. The
// document's preorder numbering is not refreshed automatically; call
// Renumber after bulk construction (Builder does this for you).
func (d *Document) AddChild(parent *Node, tag, value string) *Node {
	n := &Node{
		Tag:    tag,
		Value:  value,
		ID:     parent.ID.Child(len(parent.Children)),
		Parent: parent,
	}
	parent.Children = append(parent.Children, n)
	return n
}

// Renumber rebuilds the preorder Nodes slice and ordinals after manual
// tree construction.
func (d *Document) Renumber() { d.renumber() }

func (d *Document) renumber() {
	d.Nodes = d.Nodes[:0]
	var walk func(n *Node)
	walk = func(n *Node) {
		n.Ord = len(d.Nodes)
		d.Nodes = append(d.Nodes, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range d.Roots {
		walk(r)
	}
}

// Size returns the number of nodes in the document.
func (d *Document) Size() int { return len(d.Nodes) }

// NodeByOrd returns the node with the given preorder ordinal, or nil.
func (d *Document) NodeByOrd(ord int) *Node {
	if ord < 0 || ord >= len(d.Nodes) {
		return nil
	}
	return d.Nodes[ord]
}

// Walk visits every node in preorder, stopping early if fn returns false.
func (d *Document) Walk(fn func(*Node) bool) {
	for _, n := range d.Nodes {
		if !fn(n) {
			return
		}
	}
}

// Tags returns the sorted set of distinct tags in the document.
func (d *Document) Tags() []string {
	set := make(map[string]struct{})
	for _, n := range d.Nodes {
		set[n.Tag] = struct{}{}
	}
	tags := make([]string, 0, len(set))
	for t := range set {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// Path returns the slash-separated tag path from the tree root to n,
// e.g. "site/regions/africa/item".
func (n *Node) Path() string {
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		parts = append(parts, cur.Tag)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// Descendants appends all strict descendants of n in document order.
func (n *Node) Descendants() []*Node {
	var out []*Node
	var walk func(c *Node)
	walk = func(c *Node) {
		out = append(out, c)
		for _, cc := range c.Children {
			walk(cc)
		}
	}
	for _, c := range n.Children {
		walk(c)
	}
	return out
}

// Level returns the node's depth: 1 for a forest root (its Dewey ID has
// one component under the virtual forest root).
func (n *Node) Level() int { return n.ID.Level() }

// String renders "tag(value)@dewey" for debugging and error messages.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	if n.Value != "" {
		return n.Tag + "(" + n.Value + ")@" + n.ID.String()
	}
	return n.Tag + "@" + n.ID.String()
}
