package xmltree

import (
	"bytes"
	"strings"
	"testing"
)

const bookXML = `
<book>
  <title>wodehouse</title>
  <info>
    <publisher>
      <name>psmith</name>
      <location>london</location>
    </publisher>
    <isbn>1234</isbn>
  </info>
  <price>48.95</price>
</book>`

func TestParseBasicStructure(t *testing.T) {
	doc, err := ParseString(bookXML)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(doc.Roots))
	}
	book := doc.Roots[0]
	if book.Tag != "book" {
		t.Fatalf("root tag = %q", book.Tag)
	}
	if len(book.Children) != 3 {
		t.Fatalf("book children = %d, want 3", len(book.Children))
	}
	title := book.Children[0]
	if title.Tag != "title" || title.Value != "wodehouse" {
		t.Fatalf("title = %v", title)
	}
	if title.Parent != book {
		t.Fatal("parent pointer broken")
	}
	name := book.Children[1].Children[0].Children[0]
	if name.Tag != "name" || name.Value != "psmith" {
		t.Fatalf("nested node = %v", name)
	}
}

func TestParseDeweyAssignment(t *testing.T) {
	doc, err := ParseString(bookXML)
	if err != nil {
		t.Fatal(err)
	}
	book := doc.Roots[0]
	if got := book.ID.String(); got != "0" {
		t.Fatalf("root ID = %s, want 0", got)
	}
	loc := book.Children[1].Children[0].Children[1]
	if got := loc.ID.String(); got != "0.1.0.1" {
		t.Fatalf("location ID = %s, want 0.1.0.1", got)
	}
	if !book.ID.IsAncestorOf(loc.ID) {
		t.Fatal("Dewey ancestor relation broken")
	}
}

func TestParsePreorderOrdinals(t *testing.T) {
	doc, err := ParseString(bookXML)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range doc.Nodes {
		if n.Ord != i {
			t.Fatalf("ordinal mismatch at %d: %d", i, n.Ord)
		}
	}
	// Preorder: each node's Dewey ID must be >= the previous one's.
	for i := 1; i < len(doc.Nodes); i++ {
		if doc.Nodes[i].ID.Compare(doc.Nodes[i-1].ID) <= 0 {
			t.Fatalf("preorder violated between %v and %v", doc.Nodes[i-1], doc.Nodes[i])
		}
	}
}

func TestParseAttributesBecomeNodes(t *testing.T) {
	doc, err := ParseString(`<item id="i7"><name>gold</name></item>`)
	if err != nil {
		t.Fatal(err)
	}
	item := doc.Roots[0]
	if len(item.Children) != 2 {
		t.Fatalf("children = %d, want 2 (attr + name)", len(item.Children))
	}
	attr := item.Children[0]
	if attr.Tag != "@id" || attr.Value != "i7" {
		t.Fatalf("attr node = %v", attr)
	}
}

func TestParseForest(t *testing.T) {
	// The model accepts a forest (Figure 1's three books).
	doc, err := ParseString(`<book><title>a</title></book><book><title>b</title></book>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(doc.Roots))
	}
	if doc.Roots[0].ID.String() != "0" || doc.Roots[1].ID.String() != "1" {
		t.Fatalf("forest IDs = %s, %s", doc.Roots[0].ID, doc.Roots[1].ID)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"<a><b></a>", "<a>", "</a>", "<a attr=></a>"} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	doc, err := ParseString(bookXML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	doc2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if doc2.Size() != doc.Size() {
		t.Fatalf("round trip size %d != %d", doc2.Size(), doc.Size())
	}
	for i := range doc.Nodes {
		a, b := doc.Nodes[i], doc2.Nodes[i]
		if a.Tag != b.Tag || a.Value != b.Value || !a.ID.Equal(b.ID) {
			t.Fatalf("node %d mismatch: %v vs %v", i, a, b)
		}
	}
}

func TestSerializeEscapesText(t *testing.T) {
	doc, err := ParseString(`<a>x &amp; y &lt; z</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Roots[0].Value != "x & y < z" {
		t.Fatalf("value = %q", doc.Roots[0].Value)
	}
	var buf bytes.Buffer
	if err := doc.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "&amp;") || !strings.Contains(buf.String(), "&lt;") {
		t.Fatalf("unescaped output: %s", buf.String())
	}
	if _, err := Parse(&buf); err != nil {
		t.Fatalf("re-parse of escaped output: %v", err)
	}
}

func TestSerializedSize(t *testing.T) {
	doc, _ := ParseString(bookXML)
	var buf bytes.Buffer
	if err := doc.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	if got := doc.SerializedSize(); got != buf.Len() {
		t.Fatalf("SerializedSize = %d, want %d", got, buf.Len())
	}
}

func TestBuilder(t *testing.T) {
	doc := NewBuilder().
		Root("site").
		Open("items").
		Open("item").Leaf("name", "vase").Leaf("price", "12").Close().
		Open("item").Leaf("name", "urn").Close().
		Close().
		Doc()
	if len(doc.Roots) != 1 || doc.Roots[0].Tag != "site" {
		t.Fatal("builder root broken")
	}
	items := doc.Roots[0].Children[0]
	if len(items.Children) != 2 {
		t.Fatalf("items children = %d", len(items.Children))
	}
	if items.Children[0].Children[1].Value != "12" {
		t.Fatal("leaf value lost")
	}
	// Ordinals assigned.
	if doc.Nodes[0].Ord != 0 || doc.Size() != 7 {
		t.Fatalf("size = %d, want 7", doc.Size())
	}
}

func TestNodeHelpers(t *testing.T) {
	doc, _ := ParseString(bookXML)
	book := doc.Roots[0]
	name := book.Children[1].Children[0].Children[0]
	if got := name.Path(); got != "book/info/publisher/name" {
		t.Fatalf("Path = %q", got)
	}
	desc := book.Descendants()
	if len(desc) != doc.Size()-1 {
		t.Fatalf("descendants = %d, want %d", len(desc), doc.Size()-1)
	}
	if book.Level() != 1 || name.Level() != 4 {
		t.Fatalf("levels = %d, %d", book.Level(), name.Level())
	}
	if s := name.String(); s != "name(psmith)@0.1.0.0" {
		t.Fatalf("String = %q", s)
	}
	var nilNode *Node
	if nilNode.String() != "<nil>" {
		t.Fatal("nil String")
	}
}

func TestTags(t *testing.T) {
	doc, _ := ParseString(bookXML)
	tags := doc.Tags()
	want := []string{"book", "info", "isbn", "location", "name", "price", "publisher", "title"}
	if len(tags) != len(want) {
		t.Fatalf("tags = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tags = %v, want %v", tags, want)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	doc, _ := ParseString(bookXML)
	count := 0
	doc.Walk(func(n *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("walk visited %d, want 3", count)
	}
}

func TestNodeByOrd(t *testing.T) {
	doc, _ := ParseString(bookXML)
	if doc.NodeByOrd(0) != doc.Roots[0] {
		t.Fatal("NodeByOrd(0) broken")
	}
	if doc.NodeByOrd(-1) != nil || doc.NodeByOrd(doc.Size()) != nil {
		t.Fatal("out-of-range NodeByOrd should be nil")
	}
}

func TestAddRootAndAddChildRenumber(t *testing.T) {
	doc := NewDocument()
	r := doc.AddRoot("a")
	doc.AddChild(r, "b", "v")
	doc.Renumber()
	if doc.Size() != 2 || doc.Nodes[1].Value != "v" {
		t.Fatalf("manual construction broken: %v", doc.Nodes)
	}
}
