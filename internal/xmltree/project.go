package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/dewey"
)

// ParseProjected parses XML from r keeping only the nodes whose tag the
// keep function accepts, plus every ancestor of a kept node (so the
// structural relationships among kept nodes survive). This implements
// the paper's observation that only "nodes involved in the query are
// stored in indexes" (Section 6.2.1): projecting a large document to a
// query's tags shrinks memory by orders of magnitude while preserving
// levels, ancestor/descendant relationships and sibling order — every
// predicate the engine evaluates.
//
// Dewey IDs are assigned over the projected tree; because whole subtrees
// are dropped (never intermediate nodes), prefix relations and node
// levels match the original document's.
func ParseProjected(r io.Reader, keep func(tag string) bool) (*Document, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = true
	doc := NewDocument()

	// frame is a pending open element: it materializes if its own tag is
	// kept or any descendant materialized under it.
	type frame struct {
		tag      string
		kept     bool
		text     *strings.Builder
		children []*Node // materialized children, in document order
	}
	var stack []*frame

	materialize := func(f *frame) *Node {
		n := &Node{Tag: f.tag}
		if f.text != nil {
			n.Value = strings.TrimSpace(f.text.String())
		}
		n.Children = f.children
		return n
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: projected parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			f := &frame{tag: t.Name.Local, kept: keep(t.Name.Local)}
			if f.kept {
				f.text = &strings.Builder{}
			}
			for _, attr := range t.Attr {
				if keep("@" + attr.Name.Local) {
					f.children = append(f.children, &Node{Tag: "@" + attr.Name.Local, Value: attr.Value})
				}
			}
			stack = append(stack, f)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", t.Name.Local)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !f.kept && len(f.children) == 0 {
				continue // drop silently
			}
			n := materialize(f)
			if len(stack) == 0 {
				doc.Roots = append(doc.Roots, n)
			} else {
				parent := stack[len(stack)-1]
				parent.children = append(parent.children, n)
			}
		case xml.CharData:
			if len(stack) > 0 && stack[len(stack)-1].text != nil {
				stack[len(stack)-1].text.Write(t)
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: %d unclosed element(s)", len(stack))
	}

	// Assign Dewey IDs and parent links over the projected forest.
	var link func(n *Node, parent *Node, id dewey.ID)
	for i, root := range doc.Roots {
		link = func(n *Node, parent *Node, id dewey.ID) {
			n.Parent = parent
			n.ID = id
			for ci, c := range n.Children {
				link(c, n, id.Child(ci))
			}
		}
		link(root, nil, (dewey.ID{}).Child(i))
	}
	doc.renumber()
	return doc, nil
}

// KeepTags returns a keep function accepting exactly the given tags.
func KeepTags(tags ...string) func(string) bool {
	set := make(map[string]bool, len(tags))
	for _, t := range tags {
		set[t] = true
	}
	return func(tag string) bool { return set[tag] }
}
