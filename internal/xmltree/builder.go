package xmltree

import "repro/internal/dewey"

// Builder offers a fluent way to construct documents programmatically —
// used by tests, examples and the XMark generator. It tracks a cursor
// node; Open descends, Close ascends, Leaf adds a valued child without
// moving the cursor.
type Builder struct {
	doc    *Document
	cursor *Node
}

// NewBuilder returns a Builder over a fresh document.
func NewBuilder() *Builder { return &Builder{doc: NewDocument()} }

// Root starts a new top-level element and moves the cursor to it.
func (b *Builder) Root(tag string) *Builder {
	n := &Node{Tag: tag, ID: (dewey.ID{}).Child(len(b.doc.Roots))}
	b.doc.Roots = append(b.doc.Roots, n)
	b.cursor = n
	return b
}

// Open appends a child element to the cursor and descends into it.
func (b *Builder) Open(tag string) *Builder {
	b.cursor = b.doc.AddChild(b.cursor, tag, "")
	return b
}

// Leaf appends a valued child element without moving the cursor.
func (b *Builder) Leaf(tag, value string) *Builder {
	b.doc.AddChild(b.cursor, tag, value)
	return b
}

// Text sets the cursor element's own text value.
func (b *Builder) Text(value string) *Builder {
	b.cursor.Value = value
	return b
}

// Close ascends to the cursor's parent. Closing a root leaves the cursor
// nil; a following Open would panic, which surfaces builder misuse early.
func (b *Builder) Close() *Builder {
	b.cursor = b.cursor.Parent
	return b
}

// Cursor returns the current cursor node (for attaching custom subtrees).
func (b *Builder) Cursor() *Node { return b.cursor }

// Doc finalizes preorder numbering and returns the document.
func (b *Builder) Doc() *Document {
	b.doc.renumber()
	return b.doc
}
