package core

import (
	"repro/internal/obs"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/xmltree"
)

// scratch is one worker's reusable buffers for process: the candidate
// probe appends into cands, spawned extensions accumulate in exts. Both
// retain their grown capacity across calls, so a worker's steady state
// allocates nothing. The returned extension slice aliases sc.exts — the
// caller must consume it before its next process call with the same
// scratch (every algorithm does: extensions are checked and enqueued
// immediately).
// +whirllint:matchowner
type scratch struct {
	cands []*xmltree.Node
	exts  []*match
}

// process runs one server operation (Section 5.2.1): the partial match m
// arrives at server sid, the server probes the index for candidates
// satisfying the (relaxed) structural predicate against the bound root,
// validates each candidate through the conditional predicate sequence,
// scores it, and spawns extended matches. When no candidate survives, the
// outer-join spawns the null-extended match under leaf deletion;
// otherwise the match dies. m stays owned by the caller: extensions copy
// out of it, so the caller releases it after consuming the result.
// +whirllint:hotpath
func (r *run) process(m *match, sid int, sc *scratch) []*match {
	e := r.Engine
	r.stats.serverOps.Add(1)
	spin(e.cfg.OpCost)
	plan := e.plans[sid]
	root := m.bindings[0]
	sc.cands = e.ix.AppendCandidates(sc.cands[:0], root, plan.ProbeAxis(), plan.Tag, e.vts[sid])

	exts := sc.exts[:0]
	for _, c := range sc.cands {
		r.stats.joinComparisons.Add(1)
		structExact := plan.RootPath.HoldsExact(root.ID, c.ID)
		if e.cfg.Relax == relax.None && !structExact {
			continue
		}
		valid := true
		for i := range plan.Conds {
			cond := &plan.Conds[i]
			if !m.isVisited(cond.OtherID) {
				continue
			}
			other := m.bindings[cond.OtherID]
			if other == nil {
				// The related node was relaxed away. A candidate whose
				// direct pattern parent is missing can only attach via
				// subtree promotion.
				if cond.DirectParent && cond.OtherIsAncestor && !e.cfg.Relax.Has(relax.SubtreePromotion) {
					valid = false
					break
				}
				continue
			}
			r.stats.joinComparisons.Add(1)
			if plan.Check(*cond, c.ID, other.ID) == relax.CondFailed {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		variant := score.Relaxed
		if structExact {
			variant = score.Exact
		}
		contrib := e.cfg.Scorer.Contribution(sid, variant, c)
		exts = append(exts, m.extendInto(r.arena.get(), sid, c, contrib, e.maxContrib[sid], r.nextSeq()))
	}
	if len(exts) == 0 {
		if !e.cfg.Relax.Has(relax.LeafDeletion) || !r.nullAllowed(m, sid) {
			sc.exts = exts
			return nil // inner-join semantics: the match dies
		}
		exts = append(exts, m.extendInto(r.arena.get(), sid, nil, 0, e.maxContrib[sid], r.nextSeq()))
	}
	sc.exts = exts
	r.stats.matchesCreated.Add(int64(len(exts)))
	r.traceMatch(obs.MatchesSpawned, len(exts))
	return exts
}

// nullAllowed reports whether the null (leaf-deleted) extension of m at
// server sid is consistent: without subtree promotion, deleting a node
// whose pattern child is already bound would orphan that child.
func (r *run) nullAllowed(m *match, sid int) bool {
	if r.cfg.Relax.Has(relax.SubtreePromotion) {
		return true
	}
	for _, cid := range r.query.Nodes[sid].Children {
		if m.bindings[cid] != nil {
			return false
		}
	}
	return true
}
