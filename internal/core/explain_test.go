package core

import (
	"strings"
	"testing"

	"repro/internal/relax"
	"repro/internal/score"
)

func TestExplainBookstore(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	res := runWith(t, ix, q, Config{K: 4, Relax: relax.All, Algorithm: WhirlpoolS, Scorer: s})
	if len(res.Answers) != 4 {
		t.Fatalf("answers = %d", len(res.Answers))
	}
	byTag := func(ex []Explanation, tag string) Explanation {
		for _, e := range ex {
			if e.Tag == tag {
				return e
			}
		}
		t.Fatalf("no explanation for %s", tag)
		return Explanation{}
	}

	// Answer 1 (book 1): everything exact.
	ex := Explain(q, res.Answers[0])
	if len(ex) != q.Size() {
		t.Fatalf("explanations = %d", len(ex))
	}
	for _, e := range ex {
		if e.Kind != MatchExact {
			t.Fatalf("book 1 %s: kind = %v (%s)", e.Tag, e.Kind, e.Detail)
		}
	}

	// Book 2: publisher hangs off book directly — info is deleted or the
	// publisher promoted; name stays exact relative to publisher but the
	// root path is broken, so it cannot be MatchExact.
	var book2 *Answer
	for i := range res.Answers {
		if res.Answers[i].Root == ix.Nodes("book")[1] {
			book2 = &res.Answers[i]
		}
	}
	if book2 == nil {
		t.Fatal("book 2 not in answers")
	}
	ex2 := Explain(q, *book2)
	pub := byTag(ex2, "publisher")
	info := byTag(ex2, "info")
	if pub.Kind == MatchExact {
		t.Fatalf("book 2 publisher should not be exact: %s", pub.Detail)
	}
	if info.Kind == MatchExact && pub.Kind != MatchPromoted {
		t.Fatalf("book 2: info %v / publisher %v inconsistent", info.Kind, pub.Kind)
	}

	// Book 3: title is nested under reviews — edge generalized; publisher
	// and name deleted.
	var book3 *Answer
	for i := range res.Answers {
		if res.Answers[i].Root == ix.Nodes("book")[2] {
			book3 = &res.Answers[i]
		}
	}
	ex3 := Explain(q, *book3)
	title := byTag(ex3, "title")
	if title.Kind != MatchEdgeGeneralized {
		t.Fatalf("book 3 title kind = %v (%s)", title.Kind, title.Detail)
	}
	name := byTag(ex3, "name")
	if name.Kind != MatchDeleted {
		t.Fatalf("book 3 name kind = %v", name.Kind)
	}
}

func TestExplainRootGeneralized(t *testing.T) {
	xml := `<wrap><book><title>x</title></book></wrap>`
	ix, q := buildEnv(t, xml, "/book[./title]")
	s := score.NewTFIDF(ix, q, score.Sparse)
	res := runWith(t, ix, q, Config{K: 1, Relax: relax.All, Algorithm: WhirlpoolS, Scorer: s})
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %d", len(res.Answers))
	}
	ex := Explain(q, res.Answers[0])
	if ex[0].Kind != MatchEdgeGeneralized {
		t.Fatalf("nested /book root should be edge-generalized: %v (%s)", ex[0].Kind, ex[0].Detail)
	}
	if !strings.Contains(ex[0].Detail, "//book") {
		t.Fatalf("detail = %q", ex[0].Detail)
	}
}

func TestMatchKindStrings(t *testing.T) {
	names := map[MatchKind]string{
		MatchExact: "exact", MatchEdgeGeneralized: "edge-generalized",
		MatchPromoted: "promoted", MatchDeleted: "deleted",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if MatchKind(9).String() != "kind(?)" {
		t.Fatal("unknown kind")
	}
}
