package core

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/xmltree"
)

// topkSet is the shared candidate set of the k best (partial or complete)
// matches, at most one per root node (Section 5.1). It provides the
// currentTopK pruning threshold: the k-th best guaranteed score. A score
// is guaranteed when the match's current score is a lower bound on some
// final answer for its root — always true under leaf deletion (the match
// as-is, with every remaining node deleted, is an answer), and true for
// complete matches otherwise; callers enforce that policy by only
// offering guaranteed scores.
//
// One topkSet may be shared by several engines evaluating disjoint data
// shards (see SharedTopK): offers carry a shard id so pruning can be
// attributed to a local or remote threshold rise.
type topkSet struct {
	k int
	// floor seeds the threshold (Config.Threshold / Figure 3's
	// exogenous currentTopK).
	floor    float64
	hasFloor bool

	// thrBits caches the current threshold as float bits so the hot
	// prunable/estimateAlive paths read it with one atomic load instead
	// of taking mu. NaN is the sentinel for "no threshold yet". Written
	// only under mu (in publish), so plain stores suffice; the cached
	// value is monotonically non-decreasing.
	thrBits atomic.Uint64
	// thrSrc is the shard whose k-th entry produced the cached
	// threshold, or -1 while the floor (or nothing) governs.
	thrSrc atomic.Int32

	mu   sync.Mutex
	best map[int]*topkEntry // root ordinal -> best known
	top  []*topkEntry       // k best entries, sorted desc (score, then root asc)

	// Entry slab: entries and their bindings copies are carved from
	// chunked backing arrays (see newEntry). qn is the query's binding
	// width, learned from the first offered match.
	qn       int
	freeEnts []topkEntry
	freeBnd  []*xmltree.Node
}

// entryChunk is how many topkEntry records (and bindings copies) one
// slab allocation covers.
const entryChunk = 256

// topkEntry is one root's best guaranteed answer. It owns its bindings
// slice — offer copies the match's bindings out rather than aliasing
// them, because offered matches are arena-owned (internal/core/arena.go)
// and may be recycled the moment the offering algorithm releases them.
type topkEntry struct {
	rootOrd  int
	score    float64
	bindings []*xmltree.Node // entry-owned copy, never aliases a match
	inTop    bool
	pos      int // index in top while inTop
}

func newTopkSet(k int, floor float64, hasFloor bool) *topkSet {
	t := &topkSet{
		k:        k,
		floor:    floor,
		hasFloor: hasFloor,
		best:     make(map[int]*topkEntry),
	}
	if hasFloor {
		t.thrBits.Store(math.Float64bits(floor))
	} else {
		t.thrBits.Store(math.Float64bits(math.NaN()))
	}
	t.thrSrc.Store(-1)
	return t
}

// bindingsLess orders two binding vectors over the same query
// deterministically: lexicographically by document order of the bound
// nodes, with nil (a relaxed-away binding) after any bound node. The
// preorder ordinal is unique per node, so the order is total on distinct
// vectors; it depends only on the vectors, never on evaluation timing.
func bindingsLess(a, b []*xmltree.Node) bool {
	for i := range a {
		an, bn := a[i], b[i]
		switch {
		case an == bn:
			continue
		case an == nil:
			return false
		case bn == nil:
			return true
		default:
			return an.Ord < bn.Ord
		}
	}
	return false
}

// offer records that root rootOrd is guaranteed to reach at least
// m.score, on behalf of shard src. It keeps the best match per root and
// maintains the top-k slice. Score comparisons here are deliberately
// exact: equal scores tie-break on the bindings' document order (per
// root) and on the root ordinal (across roots) for deterministic
// results, and an epsilon would make "equal" depend on accumulation
// order.
// +whirllint:exactscore
// +whirllint:hotpath
func (t *topkSet) offer(m *match, src int32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rootOrd := m.rootOrd()
	e := t.best[rootOrd]
	if e == nil {
		e = t.newEntry(rootOrd, m)
		t.best[rootOrd] = e
	} else {
		if m.score < e.score || (m.score == e.score && !bindingsLess(m.bindings, e.bindings)) {
			return
		}
		e.score = m.score
		copy(e.bindings, m.bindings)
	}
	if e.inTop {
		t.fixUp(e.pos)
		t.publish(src)
		return
	}
	if len(t.top) < t.k {
		e.inTop = true
		e.pos = len(t.top)
		t.top = append(t.top, e)
		t.fixUp(e.pos)
		t.publish(src)
		return
	}
	last := t.top[len(t.top)-1]
	if e.score > last.score || (e.score == last.score && e.rootOrd < last.rootOrd) {
		last.inTop = false
		e.inTop = true
		e.pos = len(t.top) - 1
		t.top[e.pos] = e
		t.fixUp(e.pos)
		t.publish(src)
	}
}

// newEntry carves a fresh entry — with its entry-owned bindings copy —
// from the set's slab. Entries live as long as the set itself (the best
// map keeps every root's record even after eviction from top), so this
// is plain chunked allocation, not a freelist: two heap allocations per
// entryChunk distinct roots instead of two per root. Every match
// offered into one set binds the same query, so the binding width qn is
// fixed after the first offer. Callers hold t.mu.
// +whirllint:locked
// +whirllint:allocok amortized: two allocations per entryChunk distinct roots, not per offer
func (t *topkSet) newEntry(rootOrd int, m *match) *topkEntry {
	if t.qn != len(m.bindings) {
		if t.qn == 0 {
			t.qn = len(m.bindings)
		} else {
			// Defensive: a foreign-width match would corrupt the slab
			// carve; give it a private allocation instead.
			return &topkEntry{
				rootOrd:  rootOrd,
				score:    m.score,
				bindings: append([]*xmltree.Node(nil), m.bindings...),
			}
		}
	}
	if len(t.freeEnts) == 0 {
		t.freeEnts = make([]topkEntry, entryChunk)
		t.freeBnd = make([]*xmltree.Node, entryChunk*t.qn)
	}
	e := &t.freeEnts[0]
	t.freeEnts = t.freeEnts[1:]
	e.bindings = t.freeBnd[:t.qn:t.qn]
	t.freeBnd = t.freeBnd[t.qn:]
	e.rootOrd = rootOrd
	e.score = m.score
	copy(e.bindings, m.bindings)
	return e
}

// fixUp restores the sort order after the entry at index i improved its
// score: at most that one entry is out of place, so a single leftward
// insertion pass replaces the former full re-sort. Callers hold t.mu;
// exact score comparison is the deterministic sort tie-break.
// +whirllint:locked
// +whirllint:exactscore
func (t *topkSet) fixUp(i int) {
	e := t.top[i]
	for i > 0 {
		p := t.top[i-1]
		if p.score > e.score || (p.score == e.score && p.rootOrd < e.rootOrd) {
			break
		}
		t.top[i] = p
		p.pos = i
		i--
	}
	t.top[i] = e
	e.pos = i
}

// publish refreshes the cached threshold after a mutation of the top-k
// slice. Callers hold t.mu. The k-th best guaranteed score never
// decreases (per-root entries only improve, and replacement requires
// ranking above the old k-th), so the cache is monotone; src is recorded
// only when the k-th entry — not the floor — governs the new value.
// +whirllint:locked
// +whirllint:exactscore
func (t *topkSet) publish(src int32) {
	if len(t.top) < t.k {
		return // the seeded floor (or no threshold) still governs
	}
	v := t.top[len(t.top)-1].score
	fromSet := true
	if t.hasFloor && t.floor > v {
		v, fromSet = t.floor, false
	}
	old := math.Float64frombits(t.thrBits.Load())
	if !math.IsNaN(old) && old >= v {
		return // unchanged (or a repeat of the floor)
	}
	t.thrBits.Store(math.Float64bits(v))
	if fromSet {
		t.thrSrc.Store(src)
	}
}

// threshold returns currentTopK: the k-th best guaranteed score, or the
// seeded floor while fewer than k roots are known. ok is false when no
// threshold exists yet (no pruning possible). Lock-free: one atomic load
// of the cache maintained by publish, so the hot pruning paths (and
// remote shards sharing the set) never contend on t.mu.
func (t *topkSet) threshold() (v float64, ok bool) {
	v = math.Float64frombits(t.thrBits.Load())
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// thresholdSrc returns the shard whose entry produced the current
// threshold, or -1 while the floor (or nothing) governs.
func (t *topkSet) thresholdSrc() int32 { return t.thrSrc.Load() }

// answers returns the final top-k, best first. Bindings are copied out
// of the entries: offer overwrites entry bindings in place when a root
// improves, so a returned snapshot must not alias them.
func (t *topkSet) answers() []Answer {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Answer, 0, len(t.top))
	for _, e := range t.top {
		b := append([]*xmltree.Node(nil), e.bindings...)
		out = append(out, Answer{
			Root:     b[0],
			Bindings: b,
			Score:    e.score,
		})
	}
	return out
}

// SharedTopK is a top-k candidate set shared by several engines
// evaluating disjoint shards of one corpus. Every engine offers into and
// prunes against the same set, so a high-scoring answer found on one
// shard immediately raises the threshold used to kill partial matches on
// all others. Create one per sharded evaluation with NewSharedTopK and
// pass it to each engine's RunShared; it is safe for concurrent use.
//
// The threshold it publishes is, at all times, a lower bound on the true
// global k-th best score — it is the k-th best of the guaranteed scores
// offered so far, over all shards — so cross-shard pruning can never
// discard a match that belongs in the global top-k.
type SharedTopK struct {
	set *topkSet
}

// NewSharedTopK creates a shared top-k set for k answers. floor, when
// positive, seeds the pruning threshold (Config.Threshold semantics).
func NewSharedTopK(k int, floor float64) *SharedTopK {
	return &SharedTopK{set: newTopkSet(k, floor, floor > 0)}
}

// K returns the set's capacity.
func (s *SharedTopK) K() int { return s.set.k }

// Threshold returns the current global pruning threshold; ok is false
// while no threshold exists yet.
func (s *SharedTopK) Threshold() (v float64, ok bool) { return s.set.threshold() }

// Answers returns the current top-k, best first (score descending, ties
// by document order of the root). After every participating RunShared
// has returned, this is the merged global result.
func (s *SharedTopK) Answers() []Answer { return s.set.answers() }
