package core

import (
	"sort"
	"sync"
)

// topkSet is the shared candidate set of the k best (partial or complete)
// matches, at most one per root node (Section 5.1). It provides the
// currentTopK pruning threshold: the k-th best guaranteed score. A score
// is guaranteed when the match's current score is a lower bound on some
// final answer for its root — always true under leaf deletion (the match
// as-is, with every remaining node deleted, is an answer), and true for
// complete matches otherwise; callers enforce that policy by only
// offering guaranteed scores.
type topkSet struct {
	mu sync.Mutex
	k  int
	// floor seeds the threshold (Config.Threshold / Figure 3's
	// exogenous currentTopK).
	floor    float64
	hasFloor bool

	best map[int]*topkEntry // root ordinal -> best known
	top  []*topkEntry       // k best entries, sorted desc (score, then root asc)
}

type topkEntry struct {
	rootOrd int
	score   float64
	m       *match
	inTop   bool
}

func newTopkSet(k int, floor float64, hasFloor bool) *topkSet {
	return &topkSet{
		k:        k,
		floor:    floor,
		hasFloor: hasFloor,
		best:     make(map[int]*topkEntry),
	}
}

// offer records that root rootOrd is guaranteed to reach at least
// m.score. It keeps the best match per root and maintains the top-k
// slice. Score comparisons here are deliberately exact: equal scores
// tie-break on seq / root ordinal for deterministic results, and an
// epsilon would make "equal" depend on accumulation order.
// +whirllint:exactscore
func (t *topkSet) offer(m *match) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rootOrd := m.rootOrd()
	e := t.best[rootOrd]
	if e == nil {
		e = &topkEntry{rootOrd: rootOrd, score: m.score, m: m}
		t.best[rootOrd] = e
	} else {
		if m.score < e.score || (m.score == e.score && m.seq >= e.m.seq) {
			return
		}
		e.score = m.score
		e.m = m
	}
	if e.inTop {
		t.sortTop()
		return
	}
	if len(t.top) < t.k {
		e.inTop = true
		t.top = append(t.top, e)
		t.sortTop()
		return
	}
	last := t.top[len(t.top)-1]
	if e.score > last.score || (e.score == last.score && e.rootOrd < last.rootOrd) {
		last.inTop = false
		e.inTop = true
		t.top[len(t.top)-1] = e
		t.sortTop()
	}
}

// sortTop re-sorts the top-k slice. Callers hold t.mu; exact score
// comparison is the deterministic sort tie-break.
// +whirllint:locked
// +whirllint:exactscore
func (t *topkSet) sortTop() {
	sort.Slice(t.top, func(i, j int) bool {
		if t.top[i].score != t.top[j].score {
			return t.top[i].score > t.top[j].score
		}
		return t.top[i].rootOrd < t.top[j].rootOrd
	})
}

// threshold returns currentTopK: the k-th best guaranteed score, or the
// seeded floor while fewer than k roots are known. ok is false when no
// threshold exists yet (no pruning possible).
func (t *topkSet) threshold() (v float64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.top) == t.k {
		v, ok = t.top[len(t.top)-1].score, true
		if t.hasFloor && t.floor > v {
			v = t.floor
		}
		return v, ok
	}
	if t.hasFloor {
		return t.floor, true
	}
	return 0, false
}

// answers returns the final top-k, best first.
func (t *topkSet) answers() []Answer {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Answer, 0, len(t.top))
	for _, e := range t.top {
		out = append(out, Answer{
			Root:     e.m.bindings[0],
			Bindings: e.m.bindings,
			Score:    e.score,
		})
	}
	return out
}
