package core

import (
	"math/rand"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/relax"
	"repro/internal/score"
)

// TestServerWorkersAgree verifies the multi-worker-per-server extension
// (the paper's future-work item) produces the same answers as the
// baseline, on random inputs.
func TestServerWorkersAgree(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		r := rand.New(rand.NewSource(int64(3000 + trial)))
		doc := randomDoc(r)
		q := randomQuery(r)
		ix := index.Build(doc)
		s := score.NewTFIDF(ix, q, score.Sparse)
		var base []float64
		for _, workers := range []int{1, 2, 4} {
			eng, err := New(ix, q, Config{
				K: 3, Relax: relax.All, Algorithm: WhirlpoolM,
				Routing: RoutingMinAlive, Scorer: s, ServerWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			got := scoresOf(res)
			if base == nil {
				base = got
				continue
			}
			if !almostEqual(got, base) {
				t.Fatalf("trial %d workers=%d: %v vs %v", trial, workers, got, base)
			}
		}
	}
}

// TestRouterBatchAgree verifies bulk routing (the paper's "adaptivity in
// bulk" future-work item) preserves answers for both algorithms.
func TestRouterBatchAgree(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		r := rand.New(rand.NewSource(int64(4000 + trial)))
		doc := randomDoc(r)
		q := randomQuery(r)
		ix := index.Build(doc)
		s := score.NewTFIDF(ix, q, score.Sparse)
		for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM} {
			var base []float64
			for _, batch := range []int{1, 4, 16} {
				eng, err := New(ix, q, Config{
					K: 3, Relax: relax.All, Algorithm: alg,
					Routing: RoutingMinAlive, Scorer: s, RouterBatch: batch,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				got := scoresOf(res)
				if base == nil {
					base = got
					continue
				}
				if !almostEqual(got, base) {
					t.Fatalf("trial %d %v batch=%d: %v vs %v", trial, alg, batch, got, base)
				}
			}
		}
	}
}

// TestRouterBatchReducesRoutingWithoutChangingAnswers sanity-checks that
// batching still terminates and prunes on a workload with contention.
func TestRouterBatchStress(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	for _, batch := range []int{2, 8} {
		res := runWith(t, ix, q, Config{
			K: 1, Relax: relax.All, Algorithm: WhirlpoolS,
			Routing: RoutingMinAlive, Scorer: s, RouterBatch: batch,
		})
		if len(res.Answers) != 1 {
			t.Fatalf("batch=%d: answers = %d", batch, len(res.Answers))
		}
	}
}

// markovStats adapts internal/estimate's interface shape for tests
// without importing it (core cannot import estimate test-only); instead
// we use a hand-rolled estimator to verify the hook.
type fixedEstimator struct{ fanout, sel float64 }

func (f fixedEstimator) Fanout(string, dewey.Axis, string) float64      { return f.fanout }
func (f fixedEstimator) Selectivity(string, dewey.Axis, string) float64 { return f.sel }

// TestEstimatorOnlySteersRouting verifies that plugging in (even wildly
// wrong) routing estimates never changes the answers.
func TestEstimatorOnlySteersRouting(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		r := rand.New(rand.NewSource(int64(5000 + trial)))
		doc := randomDoc(r)
		q := randomQuery(r)
		ix := index.Build(doc)
		s := score.NewTFIDF(ix, q, score.Sparse)
		base, err := New(ix, q, Config{K: 3, Relax: relax.All, Algorithm: WhirlpoolS, Routing: RoutingMinAlive, Scorer: s})
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, est := range []Estimator{fixedEstimator{0.1, 0.1}, fixedEstimator{50, 0.99}} {
			eng, err := New(ix, q, Config{
				K: 3, Relax: relax.All, Algorithm: WhirlpoolS,
				Routing: RoutingMinAlive, Scorer: s, Estimator: est,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(scoresOf(got), scoresOf(want)) {
				t.Fatalf("trial %d: estimator changed answers: %v vs %v", trial, scoresOf(got), scoresOf(want))
			}
		}
	}
}
