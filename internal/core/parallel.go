package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// stealQueue is the concurrent router queue of a ParallelRun: the same
// max-heap ordering as the single-threaded pq, behind a mutex, with a
// batch dequeue so a stealing worker amortizes one lock acquisition
// over a whole grab of matches. It is a sanctioned match holder — a
// queued match is owned by the queue until popped.
// +whirllint:matchowner
type stealQueue struct {
	mu sync.Mutex
	h  matchHeap
}

// +whirllint:hotpath
func (q *stealQueue) push(m *match, priority float64) {
	q.mu.Lock()
	q.h.push(prioritized{m: m, priority: priority})
	q.mu.Unlock()
}

// popBatch appends up to max matches — best priority first — to dst and
// returns the extended slice. One lock acquisition covers the whole
// batch: this is the steal-safe dequeue the sharded executor's work
// stealing is built on. Ownership of every returned match transfers to
// the caller.
// +whirllint:hotpath
func (q *stealQueue) popBatch(dst []*match, max int) []*match {
	q.mu.Lock()
	for len(dst) < max && len(q.h) > 0 {
		dst = append(dst, q.h.pop().m)
	}
	q.mu.Unlock()
	return dst
}

// len samples the queue's depth — the steal policy's load signal. Stale
// the moment the lock is released, which is fine for a heuristic.
func (q *stealQueue) len() int {
	q.mu.Lock()
	n := len(q.h)
	q.mu.Unlock()
	return n
}

// Scratch is one worker goroutine's reusable buffers for driving
// ParallelRun.Step: the per-server probe scratch plus the batch and
// survivor slices of the step loop. A Scratch must not be shared
// between goroutines; matches held in its slices are owned by the
// stepping worker until released or re-queued.
// +whirllint:matchowner
type Scratch struct {
	sc    scratch
	batch []*match
	surv  []*match
}

// NewScratch returns an empty Scratch. Each pool worker allocates one
// up front; the steady-state step loop then allocates nothing.
func NewScratch() *Scratch { return &Scratch{} }

// ParallelRun is one engine evaluation opened up for external,
// multi-goroutine scheduling: instead of looping to completion inside
// RunShared, the run exposes its router queue so any number of workers
// can pop batches of alive partial matches and process them through the
// engine's servers concurrently — the primitive behind the sharded
// executor's match-level work stealing (internal/shard). Only
// Whirlpool-S runs can be parallelized this way; the other algorithms
// own their control flow.
//
// Protocol: NewParallelRun → Seed (exactly once) → any number of
// concurrent Step calls (each worker with its own Scratch) until IsDone
// or the context is cancelled → Finish (exactly once, after the last
// Step returned).
//
// The run's arena uses the sharded, locked freelists (as Whirlpool-M
// does), so a match carved by one worker and released by another —
// exactly what a steal produces — returns to its home freelist shard
// without racing. Answer equivalence is unaffected by which worker
// processes a match: offers and prunes go through the same shared
// top-k set, whose threshold is a lower bound on the true k-th score
// at all times (see DESIGN.md, sharded execution).
type ParallelRun struct {
	r *run
	q stealQueue
	// live counts matches alive anywhere: queued or held by a stepping
	// worker. Children are counted in before their parent is counted
	// out, so it can never dip to zero mid-flight. When it reaches zero
	// after seeding, the run is done.
	live     atomic.Int64
	doneFlag atomic.Bool
	doneAtNS atomic.Int64
	start    time.Time
}

// NewParallelRun prepares a steal-capable run of the engine against
// shared, attributed to shardID. The context governs cancellation of
// every subsequent Seed/Step; Finish reports its error if it fires.
func (e *Engine) NewParallelRun(ctx context.Context, shared *SharedTopK, shardID int) (*ParallelRun, error) {
	if e.cfg.Algorithm != WhirlpoolS {
		return nil, fmt.Errorf("core: parallel runs require Whirlpool-S, got %v", e.cfg.Algorithm)
	}
	if shared.set.k != e.cfg.K {
		return nil, fmt.Errorf("core: shared top-k capacity %d != Config.K %d", shared.set.k, e.cfg.K)
	}
	r := &run{
		Engine: e,
		topk:   shared.set,
		// Concurrent workers get and release matches from any goroutine,
		// so the arena always uses the locked, sharded freelists here.
		arena:   newMatchArena(e.query.Size(), true, e.cfg.DisableReuse),
		shardID: int32(shardID),
		sharded: true,
		ctx:     ctx,
	}
	r.lastThreshold.Store(math.Float64bits(math.Inf(-1)))
	return &ParallelRun{r: r}, nil
}

// Seed evaluates the root server and enqueues the surviving initial
// matches. It must be called exactly once, before any Step; a run that
// seeds zero survivors is immediately done. The live count is published
// before the first push so a concurrent thief draining the queue early
// cannot observe a transient zero and mark the run done prematurely.
func (p *ParallelRun) Seed() {
	r := p.r
	p.start = time.Now()
	if t := r.cfg.Trace; t != nil {
		t.RunStart(obs.RunInfo{
			Algorithm:  r.cfg.Algorithm.String(),
			Routing:    r.cfg.Routing.String(),
			Queue:      r.cfg.Queue.String(),
			K:          r.cfg.K,
			QueryNodes: r.query.Size(),
		})
	}
	alive := r.filterAlive(r.initialMatches())
	if len(alive) == 0 {
		p.markDone()
		return
	}
	p.live.Store(int64(len(alive)))
	for _, m := range alive {
		p.q.push(m, r.priority(m, -1))
	}
}

// Step pops a batch of up to budget matches from the run's queue and
// processes each through its next server, offering into the shared
// top-k set and re-queueing surviving extensions. It returns how many
// matches it consumed; 0 means the queue was momentarily empty (the
// run is done only once IsDone reports true — other workers may still
// be about to re-queue survivors). Safe for concurrent use, one
// Scratch per worker. Cancellation is polled on every match, so a
// cancelled run stops within one batch; the unprocessed remainder is
// released back to the arena with the live count kept exact.
// +whirllint:hotpath
func (p *ParallelRun) Step(ws *Scratch, budget int) int {
	r := p.r
	if budget < 1 {
		budget = 1
	}
	batch := p.q.popBatch(ws.batch[:0], budget)
	ws.batch = batch
	processed := 0
	for i, m := range batch {
		if r.cancelled() {
			for _, rest := range batch[i:] {
				r.release(rest)
			}
			p.liveAdd(int64(i - len(batch)))
			return processed
		}
		processed++
		// currentTopK may have grown since the match was queued.
		if r.prunable(m) {
			r.prune()
			r.release(m)
			p.liveAdd(-1)
			continue
		}
		sid := r.nextServer(m)
		r.traceRoute(m, sid)
		if r.cfg.Trace != nil {
			r.traceDepth(-1, p.q.len())
		}
		surv := ws.surv[:0]
		for _, ext := range r.process(m, sid, &ws.sc) {
			if r.checkTopK(ext) {
				surv = append(surv, ext)
			} else {
				r.release(ext)
			}
		}
		ws.surv = surv
		// Extensions copied everything they need out of the parent;
		// recycle it before handing the survivors on.
		r.release(m)
		if len(surv) > 0 {
			// Children in before the parent out: live can't hit zero
			// while this match's offspring are mid-flight.
			p.live.Add(int64(len(surv)))
			for _, s := range surv {
				p.q.push(s, r.priority(s, -1))
			}
		}
		p.liveAdd(-1)
	}
	return processed
}

// liveAdd adjusts the live-match count and marks the run done when it
// reaches zero.
// +whirllint:hotpath
func (p *ParallelRun) liveAdd(d int64) {
	if p.live.Add(d) == 0 {
		p.markDone()
	}
}

// markDone records the run's completion exactly once.
func (p *ParallelRun) markDone() {
	if p.doneFlag.CompareAndSwap(false, true) {
		p.doneAtNS.Store(time.Since(p.start).Nanoseconds())
	}
}

// IsDone reports whether every match of the run has been consumed —
// completed, pruned, or dead — so no Step can ever find work again.
func (p *ParallelRun) IsDone() bool { return p.doneFlag.Load() }

// Depth samples the router queue's depth: the work-stealing load
// signal.
func (p *ParallelRun) Depth() int { return p.q.len() }

// Live returns the current live-match count (queued plus in-flight).
func (p *ParallelRun) Live() int64 { return p.live.Load() }

// Created returns how many matches the run has created so far — the
// per-shard feedback signal the steal policy breaks depth ties with.
func (p *ParallelRun) Created() int64 { return p.r.stats.matchesCreated.Load() }

// Finish closes the run out after every worker has stopped stepping:
// it snapshots the stats (Duration is seed-to-done wall clock), folds
// them into the engine's cumulative totals, and emits the RunEnd trace
// event. When the run's context was cancelled, the partial work is
// discarded and the context's error returned, mirroring RunContext.
// Call it exactly once.
func (p *ParallelRun) Finish() (Stats, error) {
	r := p.r
	stats := r.stats.snapshot()
	switch {
	case p.start.IsZero():
		// Never seeded (cancelled before any work).
	case p.IsDone():
		stats.Duration = time.Duration(p.doneAtNS.Load())
	default:
		stats.Duration = time.Since(p.start)
	}
	if err := r.ctx.Err(); err != nil {
		r.Engine.totals.aborted.Add(1)
		if t := r.cfg.Trace; t != nil {
			t.RunEnd(runSummary(stats, 0, true))
		}
		return Stats{}, err
	}
	r.Engine.totals.add(stats)
	if t := r.cfg.Trace; t != nil {
		t.RunEnd(runSummary(stats, len(r.topk.answers()), false))
	}
	return stats, nil
}
