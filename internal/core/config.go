// Package core implements the Whirlpool engine (Section 5): per-query-node
// servers, the adaptive router, the shared top-k set, and the four
// evaluation algorithms compared in the paper — Whirlpool-S (single
// threaded), Whirlpool-M (multi-threaded, one goroutine per server),
// LockStep (all partial matches pass one server before the next) and
// LockStep-NoPrun (LockStep without score pruning).
package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/xmltree"
)

// Algorithm selects the top-k evaluation strategy (Section 6.1.2).
type Algorithm int

const (
	// WhirlpoolS is the single-threaded adaptive strategy: one router
	// queue, partial matches processed in priority order, each routed
	// individually to its next server.
	WhirlpoolS Algorithm = iota
	// WhirlpoolM is the multi-threaded strategy: one goroutine per
	// server plus a router goroutine, with per-server priority queues.
	WhirlpoolM
	// LockStep processes every partial match through one server before
	// the next server is considered, pruning against the top-k set.
	LockStep
	// LockStepNoPrune is LockStep with pruning disabled: every partial
	// match is fully evaluated and the k best are selected at the end.
	// It bounds the maximum possible number of partial matches (Table 2).
	LockStepNoPrune
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case WhirlpoolS:
		return "Whirlpool-S"
	case WhirlpoolM:
		return "Whirlpool-M"
	case LockStep:
		return "LockStep"
	case LockStepNoPrune:
		return "LockStep-NoPrun"
	default:
		return "algorithm(?)"
	}
}

// Routing selects how the router picks the next server for a partial
// match (Section 6.1.4).
type Routing int

const (
	// RoutingStatic sends every match through the same server order
	// (Config.Order, defaulting to query-node order).
	RoutingStatic Routing = iota
	// RoutingMaxScore picks the unvisited server expected to increase
	// the match's score the most.
	RoutingMaxScore
	// RoutingMinScore picks the server expected to increase the score
	// the least.
	RoutingMinScore
	// RoutingMinAlive picks the server expected to yield the fewest
	// alive extensions after pruning — the paper's
	// min_alive_partial_matches strategy, its overall winner.
	RoutingMinAlive
)

// String returns the paper's name for the routing strategy.
func (r Routing) String() string {
	switch r {
	case RoutingStatic:
		return "static"
	case RoutingMaxScore:
		return "max_score"
	case RoutingMinScore:
		return "min_score"
	case RoutingMinAlive:
		return "min_alive_partial_matches"
	default:
		return "routing(?)"
	}
}

// Queue selects the priority discipline for server and router queues
// (Section 6.1.3).
type Queue int

const (
	// QueueMaxFinal orders by maximum possible final score — the
	// paper's best-performing discipline and the default.
	QueueMaxFinal Queue = iota
	// QueueFIFO processes matches in arrival order.
	QueueFIFO
	// QueueCurrentScore orders by current score.
	QueueCurrentScore
	// QueueMaxNext orders by current score plus the maximum
	// contribution of the queue's server.
	QueueMaxNext
)

// String returns the paper's name for the queue discipline.
func (q Queue) String() string {
	switch q {
	case QueueMaxFinal:
		return "max-possible-final"
	case QueueFIFO:
		return "fifo"
	case QueueCurrentScore:
		return "current-score"
	case QueueMaxNext:
		return "max-possible-next"
	default:
		return "queue(?)"
	}
}

// Config parameterizes one evaluation.
type Config struct {
	// K is the number of answers to return. Required, ≥ 1.
	K int
	// Relax selects the enabled relaxations; relax.None computes exact
	// matches only, relax.All the paper's approximate-match setting.
	Relax relax.Relaxation
	// Algorithm selects the evaluation strategy.
	Algorithm Algorithm
	// Routing selects the adaptive routing strategy (ignored by the
	// LockStep algorithms, which are static by nature).
	Routing Routing
	// Order is the static server order (query node IDs, each non-root
	// node exactly once). Used by RoutingStatic and as the LockStep
	// phase order; defaults to ascending node IDs.
	Order []int
	// Queue is the priority discipline for the router and server queues.
	Queue Queue
	// Scorer supplies contribution scores; required.
	Scorer score.Scorer
	// OpCost, when positive, adds a synthetic CPU cost to every server
	// operation — the Figure 8 knob for studying when adaptivity pays.
	OpCost time.Duration
	// Threshold seeds the top-k set's pruning threshold (currentTopK),
	// as in the Figure 3 analysis. Zero means no seed.
	Threshold float64
	// ServerWorkers is the number of goroutines per server in
	// Whirlpool-M (default 1). Values above 1 implement the paper's
	// "several threads for the same server" future-work extension,
	// lifting the parallelism cap of (#servers + 2) threads.
	ServerWorkers int
	// Estimator, when non-nil, supplies the routing statistics (fanout
	// and selectivity per server) from a summary instead of exact index
	// scans — the paper's pointer to XML selectivity estimation
	// (Section 6.1.4). Estimates only steer routing; answers are
	// unaffected.
	Estimator Estimator
	// Trace, when non-nil, receives per-run observability events:
	// routing decisions, the prune-threshold trajectory, queue depth
	// samples and match lifecycle counts (see internal/obs). Every
	// emission is nil-checked, so the default — no sink — leaves the
	// hot path with one predictable branch and no allocation. Under
	// Whirlpool-M the sink is invoked from multiple goroutines and must
	// be safe for concurrent use.
	Trace obs.TraceSink
	// DisableReuse turns off the per-run match arena: every partial
	// match and bindings slice is heap-allocated and release is a
	// no-op, as before the arena existed. It is the allocation-
	// measurement baseline (internal/bench records both modes) and a
	// debugging escape hatch; answers and stats are unaffected.
	DisableReuse bool
	// Plan, when non-nil, supplies a precompiled query plan
	// (CompilePlan): server plans, per-server routing statistics and a
	// cost-based static order, typically drawn from a shared plan cache.
	// The plan must have been compiled for the same pattern and the same
	// Relax mode; New verifies both. Answers are identical with or
	// without a plan — only construction cost and the static-order
	// default change.
	Plan *Plan
	// RouterBatch, when above 1, makes the adaptive router take routing
	// decisions for groups of up to RouterBatch queue-adjacent partial
	// matches at once (the paper's "adaptivity in bulk" future-work
	// idea): the decision is computed for the batch head — the matches
	// closest in priority — and applied to the whole batch, amortizing
	// routing cost at a small loss of per-match precision.
	RouterBatch int
}

// Stats instruments one evaluation with the paper's measures
// (Section 6.2.3).
type Stats struct {
	// ServerOps counts partial matches processed by servers (including
	// the root server's batch as one op per generated match).
	ServerOps int64
	// JoinComparisons counts individual join-predicate comparisons —
	// the Figure 3 metric.
	JoinComparisons int64
	// MatchesCreated counts partial matches created, the Table 2
	// scalability metric.
	MatchesCreated int64
	// Pruned counts partial matches discarded against the top-k set.
	Pruned int64
	// PrunedRemote counts the subset of Pruned discarded while the
	// threshold was owned by another shard's entry — matches this run
	// never had to finish because a different shard of a sharded
	// evaluation found a better answer first. Always 0 for standalone
	// runs.
	PrunedRemote int64
	// Steals counts work-stealing grabs: batches of queued matches
	// taken by a pool worker other than the owning shard's primary
	// worker (sharded executor only; always 0 for standalone runs).
	Steals int64
	// StolenMatches counts the partial matches processed via those
	// grabs.
	StolenMatches int64
	// Duration is the wall-clock query execution time.
	Duration time.Duration
}

// Answer is one of the top-k results.
type Answer struct {
	// Root is the matched instantiation of the query's returned node.
	Root *xmltree.Node
	// Bindings maps query node ID to the bound document node; nil means
	// the node was relaxed away (leaf deletion).
	Bindings []*xmltree.Node
	// Score is the answer's final score.
	Score float64
}

// Result is the outcome of one evaluation.
type Result struct {
	// Answers holds at most K answers with distinct roots, best first
	// (ties broken by document order of the root).
	Answers []Answer
	// Stats holds the run's instrumentation.
	Stats Stats
}

func (c *Config) validate(querySize int) error {
	if c.K < 1 {
		return fmt.Errorf("core: K must be ≥ 1, got %d", c.K)
	}
	if c.Scorer == nil {
		return fmt.Errorf("core: Scorer is required")
	}
	if querySize > 64 {
		return fmt.Errorf("core: queries are limited to 64 nodes, got %d", querySize)
	}
	if c.Order != nil {
		if len(c.Order) != querySize-1 {
			return fmt.Errorf("core: Order must list the %d non-root nodes, got %d", querySize-1, len(c.Order))
		}
		seen := make(map[int]bool)
		for _, id := range c.Order {
			if id < 1 || id >= querySize || seen[id] {
				return fmt.Errorf("core: Order must be a permutation of 1..%d", querySize-1)
			}
			seen[id] = true
		}
	}
	return nil
}
