package core

import (
	"fmt"

	"repro/internal/dewey"
	"repro/internal/pattern"
	"repro/internal/relax"
)

// MatchKind classifies how a query node was satisfied in an answer.
type MatchKind int

const (
	// MatchExact: the binding satisfies the original, unrelaxed pattern
	// position.
	MatchExact MatchKind = iota
	// MatchEdgeGeneralized: the binding is a deeper descendant than the
	// pc chain prescribes (edge generalization).
	MatchEdgeGeneralized
	// MatchPromoted: the binding is not contained in its pattern
	// parent's binding (subtree promotion re-anchored it).
	MatchPromoted
	// MatchDeleted: the node was relaxed away (leaf deletion).
	MatchDeleted
)

// String names the kind.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchEdgeGeneralized:
		return "edge-generalized"
	case MatchPromoted:
		return "promoted"
	case MatchDeleted:
		return "deleted"
	default:
		return "kind(?)"
	}
}

// Explanation reports how one query node was satisfied.
type Explanation struct {
	// NodeID is the query node.
	NodeID int
	// Tag is the node's tag, for display.
	Tag string
	// Kind classifies the satisfaction.
	Kind MatchKind
	// Detail is a human-readable sentence.
	Detail string
}

// Explain classifies every query node of an answer: which bindings are
// exact, which required edge generalization or subtree promotion, and
// which were deleted. It makes the engine's relaxation decisions legible
// in results (see examples/bookstore).
func Explain(q *pattern.Query, a Answer) []Explanation {
	out := make([]Explanation, 0, q.Size())
	for id := 0; id < q.Size(); id++ {
		n := q.Nodes[id]
		b := a.Bindings[id]
		e := Explanation{NodeID: id, Tag: n.Tag}
		switch {
		case id == 0:
			if n.Axis == dewey.Child && b.Level() != 1 {
				e.Kind = MatchEdgeGeneralized
				e.Detail = fmt.Sprintf("returned node bound at depth %d (/%s generalized to //%s)", b.Level(), n.Tag, n.Tag)
			} else {
				e.Kind = MatchExact
				e.Detail = "returned node"
			}
		case b == nil:
			e.Kind = MatchDeleted
			e.Detail = "relaxed away by leaf deletion"
		default:
			e.Kind, e.Detail = classify(q, a, id)
		}
		out = append(out, e)
	}
	return out
}

// classify determines a bound node's kind from its pattern parent's
// binding and the exact composed path from the root.
func classify(q *pattern.Query, a Answer, id int) (MatchKind, string) {
	n := q.Nodes[id]
	b := a.Bindings[id]
	root := a.Bindings[0]
	parentBind := a.Bindings[n.Parent]

	if n.Axis == dewey.FollowingSibling {
		// fs bindings are order-exact whenever present.
		return MatchExact, fmt.Sprintf("follows its %s sibling as required", q.Nodes[n.Parent].Tag)
	}
	if parentBind == nil {
		return MatchPromoted, fmt.Sprintf("re-anchored below %s (its pattern parent %s was deleted)", root.Tag, q.Nodes[n.Parent].Tag)
	}
	if !parentBind.ID.IsAncestorOf(b.ID) {
		return MatchPromoted, fmt.Sprintf("not contained in its pattern parent's binding %s (subtree promotion)", parentBind.ID)
	}
	exactEdge := parentBind.ID.IsParentOf(b.ID)
	if n.Axis == dewey.Descendant {
		exactEdge = true
	}
	rootExact := relax.ComposePath(q, 0, id).HoldsExact(root.ID, b.ID)
	if exactEdge && rootExact {
		return MatchExact, "matched at its exact pattern position"
	}
	if exactEdge {
		// The edge to the parent is exact but an ancestor edge was
		// relaxed, so the absolute position differs from the pattern's.
		return MatchEdgeGeneralized, fmt.Sprintf("in exact position under %s, whose own position was relaxed", q.Nodes[n.Parent].Tag)
	}
	return MatchEdgeGeneralized, fmt.Sprintf("matched %d level(s) below its pattern parent (pc generalized to ad)", b.Level()-parentBind.Level())
}
