package core

import (
	"sort"
	"testing"

	"repro/internal/relax"
	"repro/internal/score"
)

func TestCostBasedOrderIsAPermutation(t *testing.T) {
	ix, q, s := xmarkEnv(t, 100, "//item[./description/parlist and ./mailbox/mail/text]")
	_ = s
	order := CostBasedOrder(ix, q, relax.All)
	if len(order) != q.Size()-1 {
		t.Fatalf("order length = %d", len(order))
	}
	seen := make(map[int]bool)
	for _, id := range order {
		if id < 1 || id >= q.Size() || seen[id] {
			t.Fatalf("bad order %v", order)
		}
		seen[id] = true
	}
	// The order must be accepted by the engine.
	eng, err := New(ix, q, Config{
		K: 5, Relax: relax.All, Algorithm: WhirlpoolS,
		Routing: RoutingStatic, Order: order,
		Scorer: score.NewTFIDF(ix, q, score.Sparse),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCostBasedOrderBeatsMedianStatic(t *testing.T) {
	ix, q, s := xmarkEnv(t, 200, "//item[./description/parlist and ./mailbox/mail/text]")
	runOrder := func(order []int) int64 {
		eng, err := New(ix, q, Config{
			K: 10, Relax: relax.All, Algorithm: WhirlpoolS,
			Routing: RoutingStatic, Order: order, Scorer: s,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.ServerOps
	}
	var all []int64
	for _, o := range q.ServerOrders() {
		all = append(all, runOrder(o))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	median := all[len(all)/2]
	cb := runOrder(CostBasedOrder(ix, q, relax.All))
	if cb > median {
		t.Fatalf("cost-based order (%d ops) should not exceed the median static plan (%d ops; best %d, worst %d)",
			cb, median, all[0], all[len(all)-1])
	}
}

func TestCostBasedOrderPrefersSelectivePredicates(t *testing.T) {
	// "common" appears once in every item; "rare" appears (once) in one
	// item of five. In exact mode rare's expected alive count (0.2) beats
	// common's (1.0), so rare must be probed first despite its later
	// query-node ID.
	xml := `<item><common>1</common><rare>1</rare></item>` +
		`<item><common>1</common></item>` +
		`<item><common>1</common></item>` +
		`<item><common>1</common></item>` +
		`<item><common>1</common></item>`
	ix, q := buildEnv(t, xml, "/item[./common and ./rare]")
	order := CostBasedOrder(ix, q, relax.None)
	var commonID, rareID int
	for _, n := range q.Nodes {
		switch n.Tag {
		case "common":
			commonID = n.ID
		case "rare":
			rareID = n.ID
		}
	}
	if order[0] != rareID || order[1] != commonID {
		t.Fatalf("order = %v, want rare before common", order)
	}
	// Under leaf deletion the null extension keeps non-satisfying roots
	// alive, so rare's advantage shrinks to 0.2 + 0.8 = 1.0 — a tie,
	// broken by node ID.
	relaxedOrder := CostBasedOrder(ix, q, relax.All)
	if relaxedOrder[0] != commonID && relaxedOrder[0] != rareID {
		t.Fatalf("relaxed order = %v", relaxedOrder)
	}
}
