package core

import (
	"testing"

	"repro/internal/index"
	"repro/internal/naive"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
)

const shopXML = `
<book><title>wodehouse stories</title><price>48.95</price></book>
<book><title>more wodehouse</title><price>12.50</price></book>
<book><title>austen</title><price>9.99</price></book>
<book><title>dickens</title><price>30</price></book>
<book><title>untagged</title></book>`

func TestNumericComparisonPredicates(t *testing.T) {
	ix, q := buildEnv(t, shopXML, "/book[./price < 20]")
	s := score.NewTFIDF(ix, q, score.Sparse)
	res := runWith(t, ix, q, Config{K: 5, Relax: relax.None, Algorithm: WhirlpoolS, Scorer: s})
	if len(res.Answers) != 2 {
		t.Fatalf("price<20 exact answers = %d, want 2", len(res.Answers))
	}
	ix2, q2 := buildEnv(t, shopXML, "/book[./price >= 30]")
	s2 := score.NewTFIDF(ix2, q2, score.Sparse)
	res2 := runWith(t, ix2, q2, Config{K: 5, Relax: relax.None, Algorithm: WhirlpoolS, Scorer: s2})
	if len(res2.Answers) != 2 {
		t.Fatalf("price>=30 exact answers = %d, want 2", len(res2.Answers))
	}
}

func TestContainsPredicate(t *testing.T) {
	ix, q := buildEnv(t, shopXML, "/book[./title contains 'wodehouse']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	res := runWith(t, ix, q, Config{K: 5, Relax: relax.None, Algorithm: WhirlpoolS, Scorer: s})
	if len(res.Answers) != 2 {
		t.Fatalf("contains answers = %d, want 2", len(res.Answers))
	}
}

func TestNotEqualPredicate(t *testing.T) {
	ix, q := buildEnv(t, shopXML, "/book[./title != 'austen']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	res := runWith(t, ix, q, Config{K: 5, Relax: relax.None, Algorithm: WhirlpoolS, Scorer: s})
	if len(res.Answers) != 4 {
		t.Fatalf("!= answers = %d, want 4", len(res.Answers))
	}
}

func TestValueOpsAgreeWithNaiveRelaxed(t *testing.T) {
	for _, xp := range []string{
		"/book[./price < 20 and ./title contains 'wodehouse']",
		"/book[./price > 10]",
		"/book[./title != 'austen' and ./price <= 48.95]",
	} {
		ix, q := buildEnv(t, shopXML, xp)
		s := score.NewTFIDF(ix, q, score.Sparse)
		want := naive.TopK(ix, q, relax.All, s, 5)
		for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune} {
			res := runWith(t, ix, q, Config{K: 5, Relax: relax.All, Algorithm: alg, Routing: RoutingMinAlive, Scorer: s})
			if len(res.Answers) != len(want) {
				t.Fatalf("%s %v: %d answers, want %d", xp, alg, len(res.Answers), len(want))
			}
			for i := range want {
				if diff := res.Answers[i].Score - want[i].Score; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s %v: score %d = %v, want %v", xp, alg, i, res.Answers[i].Score, want[i].Score)
				}
			}
		}
	}
}

func TestValueOpsStringRoundTrip(t *testing.T) {
	for _, xp := range []string{
		"/book[./price < 20]",
		"/book[./price >= 30.5]",
		"/book[./title contains 'wode']",
		"/book[./title != 'x']",
	} {
		q := pattern.MustParse(xp)
		q2, err := pattern.Parse(q.String())
		if err != nil {
			t.Fatalf("%s -> %s: %v", xp, q.String(), err)
		}
		for i := range q.Nodes {
			a, b := q.Nodes[i], q2.Nodes[i]
			if a.Value != b.Value || a.ValueOp != b.ValueOp {
				t.Fatalf("%s: node %d predicate changed: %q%q vs %q%q", xp, i, a.ValueOp, a.Value, b.ValueOp, b.Value)
			}
		}
	}
}

func TestValueOpValidation(t *testing.T) {
	if _, err := pattern.Parse("/book[./price < 'cheap']"); err == nil {
		t.Fatal("non-numeric ordered comparison should fail")
	}
	q := pattern.New("a", 1)
	q.AddValueOp(0, "b", 1, "~", "x")
	if err := q.Validate(); err == nil {
		t.Fatal("unsupported operator should fail validation")
	}
}

func TestValueTestMatching(t *testing.T) {
	cases := []struct {
		op, cmp, v string
		want       bool
	}{
		{"", "", "anything", true},
		{"=", "x", "x", true},
		{"=", "x", "y", false},
		{"!=", "x", "y", true},
		{"!=", "x", "x", false},
		{"contains", "ode", "wodehouse", true},
		{"contains", "ode", "austen", false},
		{"<", "10", "9.5", true},
		{"<", "10", "10", false},
		{"<=", "10", "10", true},
		{">", "10", "11", true},
		{">=", "10", "9", false},
		{"<", "10", "not-a-number", false},
	}
	for _, c := range cases {
		vt := index.Test(c.op, c.cmp)
		if got := vt.Matches(c.v); got != c.want {
			t.Errorf("Test(%q,%q).Matches(%q) = %v, want %v", c.op, c.cmp, c.v, got, c.want)
		}
	}
	if index.Test("", "x").Op != "=" {
		t.Fatal("legacy value should normalize to equality")
	}
	if err := index.Test("<", "abc").Valid(); err == nil {
		t.Fatal("non-numeric ordered comparand should be invalid")
	}
	if err := index.Test("??", "x").Valid(); err == nil {
		t.Fatal("unknown op should be invalid")
	}
}
