package core

import (
	"sort"
	"sync"
	"sync/atomic"
)

// runS is Whirlpool-S (Section 6.1.2): a single thread, no server queues —
// a partial match is processed as soon as the router picks it, and the
// router queue orders matches by the configured discipline (maximum
// possible final score by default, the MPro/Upper-style schedule).
func (r *run) runS() {
	var q pq
	sc := &scratch{}
	for _, m := range r.initialMatches() {
		if r.checkTopK(m) {
			q.push(m, r.priority(m, -1))
		} else {
			r.release(m)
		}
	}
	batchSize := r.cfg.RouterBatch
	if batchSize < 1 {
		batchSize = 1
	}
	// batch and skipped are reused across router iterations so the
	// steady-state loop allocates nothing.
	var batch, skipped []*match
	for {
		if r.cancelled() {
			return
		}
		m, ok := q.pop()
		if !ok {
			return
		}
		// currentTopK may have grown since the match was queued.
		if r.prunable(m) {
			r.prune()
			r.release(m)
			continue
		}
		sid := r.nextServer(m)
		r.traceRoute(m, sid)
		r.traceDepth(-1, q.len())
		batch = append(batch[:0], m)
		// Bulk adaptivity: matches adjacent in the router queue (and so
		// closest in priority) share the head's routing decision.
		skipped = skipped[:0]
		for len(batch) < batchSize {
			m2, ok := q.pop()
			if !ok {
				break
			}
			if r.prunable(m2) {
				r.prune()
				r.release(m2)
				continue
			}
			if m2.isVisited(sid) {
				skipped = append(skipped, m2)
				continue
			}
			r.traceRoute(m2, sid)
			batch = append(batch, m2)
		}
		for _, bm := range batch {
			for _, ext := range r.process(bm, sid, sc) {
				if r.checkTopK(ext) {
					q.push(ext, r.priority(ext, -1))
				} else {
					r.release(ext)
				}
			}
			r.release(bm)
		}
		for _, sm := range skipped {
			q.push(sm, r.priority(sm, -1))
		}
	}
}

// runLockStep processes every alive partial match through one server
// before the next server is considered (static by nature). With prune
// set, matches are checked against the top-k set as they are produced —
// the paper's LockStep (≈ OptThres [2]); without it, everything is
// evaluated and the k best matches selected at the end (LockStep-NoPrun).
func (r *run) runLockStep(prune bool) {
	sc := &scratch{}
	alive := r.initialMatches()
	if prune {
		alive = r.filterAlive(alive)
	}
	for _, sid := range r.order {
		// Server queues are priority queues too (max-possible-final by
		// default): within a phase, promising matches go first so
		// currentTopK rises early.
		sort.SliceStable(alive, func(i, j int) bool {
			return r.priority(alive[i], sid) > r.priority(alive[j], sid)
		})
		// One depth sample per phase: the whole alive set queues at sid.
		r.traceDepth(sid, len(alive))
		var next []*match
		for _, m := range alive {
			if r.cancelled() {
				return
			}
			if prune && r.prunable(m) {
				r.prune()
				r.release(m)
				continue
			}
			for _, ext := range r.process(m, sid, sc) {
				if prune && !r.checkTopK(ext) {
					r.release(ext)
					continue
				}
				next = append(next, ext)
			}
			r.release(m)
		}
		alive = next
	}
	if !prune {
		// All survivors are complete; select the k best now. offer
		// copies out of the match, so it can be released immediately.
		for _, m := range alive {
			r.topk.offer(m, r.shardID)
			r.release(m)
		}
	}
}

func (r *run) filterAlive(ms []*match) []*match {
	out := ms[:0]
	for _, m := range ms {
		if r.checkTopK(m) {
			out = append(out, m)
		} else {
			r.release(m)
		}
	}
	return out
}

// liveCounter tracks the number of matches alive anywhere in
// Whirlpool-M's pipeline; done closes when it reaches zero.
type liveCounter struct {
	n    atomic.Int64
	done chan struct{}
	once sync.Once
}

func newLiveCounter() *liveCounter {
	return &liveCounter{done: make(chan struct{})}
}

func (c *liveCounter) add(d int64) {
	if c.n.Add(d) == 0 {
		c.markDone()
	}
}

func (c *liveCounter) markDone() {
	c.once.Do(func() { close(c.done) })
}

// runM is Whirlpool-M: one goroutine per server with its own priority
// queue, a router goroutine with the router queue, and the main goroutine
// watching for termination (Section 6.1.2). Matches circulate
// router → server → top-k check → router until everything is complete or
// pruned.
func (r *run) runM() {
	n := r.query.Size()
	routerQ := newBlockingPQ()
	serverQs := make([]*blockingPQ, n)
	for sid := 1; sid < n; sid++ {
		serverQs[sid] = newBlockingPQ()
	}
	live := newLiveCounter()
	var wg sync.WaitGroup

	workers := r.cfg.ServerWorkers
	if workers < 1 {
		workers = 1
	}
	for sid := 1; sid < n; sid++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sid int) {
				defer wg.Done()
				r.serveM(sid, serverQs[sid], routerQ, live)
			}(sid)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.routeM(routerQ, serverQs, live)
	}()

	var survivors []*match
	for _, m := range r.initialMatches() {
		if r.checkTopK(m) {
			survivors = append(survivors, m)
		} else {
			r.release(m)
		}
	}
	if len(survivors) == 0 {
		live.markDone()
	} else {
		live.add(int64(len(survivors)))
		for _, m := range survivors {
			routerQ.push(m, r.priority(m, -1))
		}
	}

	<-live.done
	routerQ.close()
	for sid := 1; sid < n; sid++ {
		serverQs[sid].close()
	}
	wg.Wait()
}

// serveM is one Whirlpool-M server worker: pop a match from the server's
// queue, process it, check extensions against the top-k set, and hand
// survivors back to the router.
func (r *run) serveM(sid int, in *blockingPQ, routerQ *blockingPQ, live *liveCounter) {
	sc := &scratch{}
	var survivors []*match
	for {
		m, ok := in.pop()
		if !ok {
			return
		}
		if r.cancelled() {
			r.release(m)
			live.add(-1) // drain so the live counter reaches zero
			continue
		}
		survivors = survivors[:0]
		for _, ext := range r.process(m, sid, sc) {
			if r.checkTopK(ext) {
				survivors = append(survivors, ext)
			} else {
				r.release(ext)
			}
		}
		// The parent's extensions have copied everything they need;
		// recycle it before handing survivors on.
		r.release(m)
		// Count children in before decrementing the parent so the live
		// counter can never dip to zero mid-flight.
		live.add(int64(len(survivors)))
		for _, s := range survivors {
			routerQ.push(s, r.priority(s, -1))
		}
		live.add(-1)
	}
}

// routeM is the Whirlpool-M router goroutine: re-check each match against
// currentTopK (it may have grown while the match sat in the queue), pick
// its next server, and enqueue it there. With RouterBatch > 1, routing
// decisions are shared by groups of queue-adjacent matches.
func (r *run) routeM(routerQ *blockingPQ, serverQs []*blockingPQ, live *liveCounter) {
	batchSize := r.cfg.RouterBatch
	if batchSize < 1 {
		batchSize = 1
	}
	for {
		m, ok := routerQ.pop()
		if !ok {
			return
		}
		if r.cancelled() {
			r.release(m)
			live.add(-1) // drain so the live counter reaches zero
			continue
		}
		if r.prunable(m) {
			r.prune()
			r.release(m)
			live.add(-1)
			continue
		}
		sid := r.nextServer(m)
		r.traceRoute(m, sid)
		serverQs[sid].push(m, r.priority(m, sid))
		r.traceDepth(sid, serverQs[sid].len())
		// Bulk adaptivity: drain up to batchSize-1 more matches that can
		// reuse the decision without blocking for new arrivals.
		for extra := 1; extra < batchSize; extra++ {
			m2, ok := routerQ.tryPop()
			if !ok {
				break
			}
			if r.prunable(m2) {
				r.prune()
				r.release(m2)
				live.add(-1)
				continue
			}
			if m2.isVisited(sid) {
				sid2 := r.nextServer(m2)
				r.traceRoute(m2, sid2)
				serverQs[sid2].push(m2, r.priority(m2, sid))
				continue
			}
			r.traceRoute(m2, sid)
			serverQs[sid].push(m2, r.priority(m2, sid))
		}
	}
}
