package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/naive"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/xmltree"
)

// randomDoc builds a small random forest over a fixed tag alphabet.
func randomDoc(r *rand.Rand) *xmltree.Document {
	tags := []string{"a", "b", "c", "d"}
	values := []string{"", "", "x", "y"}
	b := xmltree.NewBuilder()
	roots := 1 + r.Intn(3)
	var grow func(depth int)
	grow = func(depth int) {
		if depth > 3 {
			return
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			b.Open(tags[r.Intn(len(tags))])
			if v := values[r.Intn(len(values))]; v != "" {
				b.Text(v)
			}
			grow(depth + 1)
			b.Close()
		}
	}
	for i := 0; i < roots; i++ {
		b.Root("a")
		grow(1)
	}
	return b.Doc()
}

// randomQuery builds a small random tree pattern over the same alphabet.
func randomQuery(r *rand.Rand) *pattern.Query {
	tags := []string{"a", "b", "c", "d"}
	axes := []dewey.Axis{dewey.Child, dewey.Descendant}
	q := pattern.New("a", axes[r.Intn(2)])
	nodes := 1 + r.Intn(4)
	for i := 0; i < nodes; i++ {
		parent := r.Intn(q.Size())
		id := q.Add(parent, tags[r.Intn(len(tags))], axes[r.Intn(2)])
		if r.Intn(4) == 0 {
			q.Nodes[id].Value = []string{"x", "y"}[r.Intn(2)]
		}
	}
	return q
}

// TestRandomizedCrossValidation compares every algorithm against the
// independent naive evaluator on random documents and queries, in both
// exact and fully relaxed modes. Scores (not root identities) are
// compared, so k-th-place ties do not flake.
func TestRandomizedCrossValidation(t *testing.T) {
	algorithms := []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune}
	modes := []relax.Relaxation{relax.None, relax.All}
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		doc := randomDoc(r)
		q := randomQuery(r)
		ix := index.Build(doc)
		s := score.NewTFIDF(ix, q, score.Sparse)
		k := 1 + r.Intn(4)
		for _, mode := range modes {
			want := naive.TopK(ix, q, mode, s, k)
			wantScores := make([]float64, len(want))
			for i, a := range want {
				wantScores[i] = a.Score
			}
			for _, alg := range algorithms {
				eng, err := New(ix, q, Config{
					K: k, Relax: mode, Algorithm: alg,
					Routing: RoutingMinAlive, Scorer: s,
				})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				res, err := eng.Run()
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if len(res.Answers) != len(wantScores) {
					t.Fatalf("trial %d %v/%v k=%d q=%s:\n got %d answers %v\n want %d %v\ndoc: %s",
						trial, alg, mode, k, q, len(res.Answers), scoresOf(res), len(wantScores), wantScores, dumpDoc(doc))
				}
				for i := range wantScores {
					if math.Abs(res.Answers[i].Score-wantScores[i]) > 1e-9 {
						t.Fatalf("trial %d %v/%v k=%d q=%s: score[%d]=%v want %v\n got %v want %v\ndoc: %s",
							trial, alg, mode, k, q, i, res.Answers[i].Score, wantScores[i], scoresOf(res), wantScores, dumpDoc(doc))
					}
				}
			}
		}
	}
}

// TestRandomizedRoutingInvariance verifies that every routing strategy
// and queue discipline produces the same answer scores on random inputs.
func TestRandomizedRoutingInvariance(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		doc := randomDoc(r)
		q := randomQuery(r)
		ix := index.Build(doc)
		s := score.NewTFIDF(ix, q, score.Sparse)
		var base []float64
		for _, routing := range []Routing{RoutingStatic, RoutingMaxScore, RoutingMinScore, RoutingMinAlive} {
			for _, queue := range []Queue{QueueMaxFinal, QueueFIFO, QueueCurrentScore, QueueMaxNext} {
				eng, err := New(ix, q, Config{
					K: 3, Relax: relax.All, Algorithm: WhirlpoolS,
					Routing: routing, Queue: queue, Scorer: s,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				got := scoresOf(res)
				if base == nil {
					base = got
					continue
				}
				if !almostEqual(got, base) {
					t.Fatalf("trial %d %v/%v: %v vs %v (q=%s)", trial, routing, queue, got, base, q)
				}
			}
		}
	}
}

// TestRandomizedPruningNeverChangesAnswers checks the admissibility of
// the maxFinal bound: LockStep with and without pruning agree on scores.
func TestRandomizedPruningNeverChangesAnswers(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rand.New(rand.NewSource(int64(2000 + trial)))
		doc := randomDoc(r)
		q := randomQuery(r)
		ix := index.Build(doc)
		s := score.NewTFIDF(ix, q, score.Sparse)
		k := 1 + r.Intn(3)
		var results [2]*Result
		for i, alg := range []Algorithm{LockStep, LockStepNoPrune} {
			eng, err := New(ix, q, Config{K: k, Relax: relax.All, Algorithm: alg, Scorer: s})
			if err != nil {
				t.Fatal(err)
			}
			results[i], err = eng.Run()
			if err != nil {
				t.Fatal(err)
			}
		}
		if !almostEqual(scoresOf(results[0]), scoresOf(results[1])) {
			t.Fatalf("trial %d: pruning changed answers: %v vs %v (q=%s)",
				trial, scoresOf(results[0]), scoresOf(results[1]), q)
		}
		if results[0].Stats.MatchesCreated > results[1].Stats.MatchesCreated {
			t.Fatalf("trial %d: pruning increased matches", trial)
		}
	}
}

func dumpDoc(doc *xmltree.Document) string {
	s := ""
	for _, n := range doc.Nodes {
		s += fmt.Sprintf("%s ", n)
	}
	return s
}

// relaxAllForTest aliases the full relaxation set for property tests.
const relaxAllForTest = relax.All

// buildRandomEngineEnv indexes a random document and builds a sparse
// tf*idf scorer for q.
func buildRandomEngineEnv(doc *xmltree.Document, q *pattern.Query) (*index.Index, *score.TFIDF, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	ix := index.Build(doc)
	return ix, score.NewTFIDF(ix, q, score.Sparse), nil
}
