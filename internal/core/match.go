package core

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// match is a partial or complete match: one tuple of bindings flowing
// through the servers. Query node i is in one of three states:
//
//   - unvisited: visited bit clear, bindings[i] == nil
//   - bound:     visited bit set,   bindings[i] != nil
//   - missing:   visited and missing bits set, bindings[i] == nil
//     (the node was relaxed away by leaf deletion)
//
// score grows monotonically as servers add non-negative contributions;
// maxFinal = score + Σ maximum contributions of unvisited servers is the
// admissible upper bound pruning compares against currentTopK.
type match struct {
	bindings []*xmltree.Node
	visited  uint64
	missing  uint64
	score    float64
	maxFinal float64
	seq      int64
	// home is the arena shard the match was carved from; release
	// returns it there so Whirlpool-M goroutines recycle without
	// funnelling through one freelist lock.
	home int32
}

func (m *match) isVisited(id int) bool { return m.visited&(1<<uint(id)) != 0 }
func (m *match) isMissing(id int) bool { return m.missing&(1<<uint(id)) != 0 }

// complete reports whether every server has processed the match.
func (m *match) complete(all uint64) bool { return m.visited == all }

// rootOrd returns the document ordinal of the root binding, the key the
// top-k set deduplicates on.
func (m *match) rootOrd() int { return m.bindings[0].Ord }

// extend clones m with query node id bound to n (nil = missing),
// contributing c to the score. maxContrib is the server's precomputed
// maximum contribution that the maxFinal bound releases. The hot path
// goes through extendInto with an arena-recycled target; this
// allocating form remains for tests and one-off construction.
func (m *match) extend(id int, n *xmltree.Node, c, maxContrib float64, seq int64) *match {
	return m.extendInto(&match{bindings: make([]*xmltree.Node, len(m.bindings))}, id, n, c, maxContrib, seq)
}

// extendInto writes the extension of m into ext, whose bindings slice
// must already have m's width (arena matches do), and returns ext.
func (m *match) extendInto(ext *match, id int, n *xmltree.Node, c, maxContrib float64, seq int64) *match {
	copy(ext.bindings, m.bindings)
	ext.bindings[id] = n
	ext.visited = m.visited | 1<<uint(id)
	ext.missing = m.missing
	ext.score = m.score + c
	ext.maxFinal = m.maxFinal - maxContrib + c
	ext.seq = seq
	if n == nil {
		ext.missing |= 1 << uint(id)
	}
	return ext
}

// String renders the match for debugging: bound tags, score and bound.
func (m *match) String() string {
	var b strings.Builder
	b.WriteString("match{")
	for i, n := range m.bindings {
		if i > 0 {
			b.WriteString(" ")
		}
		switch {
		case n != nil:
			fmt.Fprintf(&b, "%d:%s", i, n.ID)
		case m.isMissing(i):
			fmt.Fprintf(&b, "%d:⊥", i)
		default:
			fmt.Fprintf(&b, "%d:?", i)
		}
	}
	fmt.Fprintf(&b, " score=%.4f max=%.4f}", m.score, m.maxFinal)
	return b.String()
}
