package core

import (
	"sort"

	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/relax"
)

// CostBasedOrder chooses a static server order a priori from index
// statistics — the paper's suggestion that "for homogeneous data sets
// [static routing] might actually be the strategy of choice, where the
// sequence can be determined a priori in a cost-based manner" (Section
// 6.1.4). Servers are ordered by increasing expected number of partial
// matches they leave alive per input match (selectivity × fanout, plus
// the null extension for non-satisfying roots), the size-based analog of
// selectivity-ordered join plans.
func CostBasedOrder(ix index.Source, q *pattern.Query, r relax.Relaxation) []int {
	plans := relax.BuildPlans(q, r)
	rootTag := q.Root().Tag
	type cost struct {
		id    int
		alive float64
	}
	costs := make([]cost, 0, q.Size()-1)
	for id := 1; id < q.Size(); id++ {
		st := ix.Predicate(rootTag, plans[id].ProbeAxis(), q.Nodes[id].Tag, index.Test(q.Nodes[id].ValueOp, q.Nodes[id].Value))
		p := st.Selectivity()
		alive := p * st.MeanFanout()
		if r.Has(relax.LeafDeletion) {
			alive += 1 - p // the outer-join's null extension
		}
		costs = append(costs, cost{id: id, alive: alive})
	}
	sort.SliceStable(costs, func(i, j int) bool {
		if costs[i].alive != costs[j].alive {
			return costs[i].alive < costs[j].alive
		}
		return costs[i].id < costs[j].id
	})
	order := make([]int, len(costs))
	for i, c := range costs {
		order[i] = c.id
	}
	return order
}
