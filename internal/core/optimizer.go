package core

import (
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/relax"
)

// CostBasedOrder chooses a static server order a priori from index
// statistics — the paper's suggestion that "for homogeneous data sets
// [static routing] might actually be the strategy of choice, where the
// sequence can be determined a priori in a cost-based manner" (Section
// 6.1.4). Servers are ordered by increasing expected number of partial
// matches they leave alive per input match (selectivity × fanout, plus
// the null extension for non-satisfying roots), the size-based analog of
// selectivity-ordered join plans.
func CostBasedOrder(ix index.Source, q *pattern.Query, r relax.Relaxation) []int {
	plans := relax.BuildPlans(q, r)
	rootTag := q.Root().Tag
	satisfyProb := make([]float64, q.Size())
	fanout := make([]float64, q.Size())
	for id := 1; id < q.Size(); id++ {
		st := ix.Predicate(rootTag, plans[id].ProbeAxis(), q.Nodes[id].Tag, index.Test(q.Nodes[id].ValueOp, q.Nodes[id].Value))
		satisfyProb[id] = st.Selectivity()
		fanout[id] = st.MeanFanout()
	}
	return orderByAlive(satisfyProb, fanout, r)
}
