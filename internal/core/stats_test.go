package core

import (
	"testing"

	"repro/internal/relax"
	"repro/internal/score"
)

// TestLockStepHonorsConfiguredOrder verifies the LockStep phase order
// follows Config.Order.
func TestLockStepHonorsConfiguredOrder(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	// Different orders must process different op counts on this skewed
	// workload, while answers agree.
	var ops []int64
	var base []float64
	for _, order := range q.ServerOrders()[:6] {
		res := runWith(t, ix, q, Config{
			K: 1, Relax: relax.All, Algorithm: LockStep, Order: order, Scorer: s,
		})
		ops = append(ops, res.Stats.ServerOps)
		if base == nil {
			base = scoresOf(res)
		} else if !almostEqual(base, scoresOf(res)) {
			t.Fatalf("order %v changed answers", order)
		}
	}
	same := true
	for _, o := range ops {
		if o != ops[0] {
			same = false
		}
	}
	if same {
		t.Log("all sampled orders cost the same (acceptable on tiny data)")
	}
}

// TestStatsRelationships checks internal consistency of the
// instrumentation counters.
func TestStatsRelationships(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune} {
		res := runWith(t, ix, q, Config{K: 2, Relax: relax.All, Algorithm: alg, Scorer: s})
		st := res.Stats
		// Every server op processes one match; every processed match was
		// created; created ≥ ops is not guaranteed the other way, but
		// matches created must be at least the answers returned.
		if st.MatchesCreated < int64(len(res.Answers)) {
			t.Fatalf("%v: created %d < answers %d", alg, st.MatchesCreated, len(res.Answers))
		}
		if st.ServerOps <= 0 || st.JoinComparisons <= 0 {
			t.Fatalf("%v: empty counters %+v", alg, st)
		}
		if alg == LockStepNoPrune && st.Pruned != 0 {
			t.Fatalf("NoPrune pruned %d", st.Pruned)
		}
	}
}

// TestSeededThresholdRespectedByAllAlgorithms drives every algorithm
// with a floor that admits only the best match.
func TestSeededThresholdRespectedByAllAlgorithms(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep} {
		res := runWith(t, ix, q, Config{
			K: 4, Relax: relax.All, Algorithm: alg, Scorer: s, Threshold: 4.5,
		})
		// Only book 1 reaches a score above 4.5 (it scores 5.0); other
		// partial matches are pruned but their roots may retain lower
		// offered scores. The winner must still be found.
		if len(res.Answers) == 0 || res.Answers[0].Score < 4.5 {
			t.Fatalf("%v: answers = %v", alg, scoresOf(res))
		}
	}
}
