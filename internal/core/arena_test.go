package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/xmltree"
)

// TestArenaGetReleaseRecycles pins the freelist mechanics: a released
// match is handed out again by the next get, fully cleared, with its
// bindings slice retained (no fresh allocation) but wiped.
// +whirllint:exactscore recycled fields must be exactly zero
// +whirllint:matchowner test inspects the recycled match it owns
func TestArenaGetReleaseRecycles(t *testing.T) {
	a := newMatchArena(3, false, false)
	m := a.get()
	if len(m.bindings) != 3 {
		t.Fatalf("bindings len = %d, want 3", len(m.bindings))
	}
	n := &xmltree.Node{Tag: "x"}
	m.bindings[1] = n
	m.visited, m.missing = 5, 2
	m.score, m.maxFinal, m.seq = 1.5, 2.5, 42
	a.release(m)
	m2 := a.get()
	if m2 != m {
		t.Fatal("released match was not recycled by the next get")
	}
	for i, b := range m2.bindings {
		if b != nil {
			t.Fatalf("recycled bindings[%d] = %v, want nil", i, b)
		}
	}
	if m2.visited != 0 || m2.missing != 0 || m2.score != 0 || m2.maxFinal != 0 || m2.seq != 0 {
		t.Fatalf("recycled match not cleared: %+v", m2)
	}
	// Distinct lives never alias.
	m3 := a.get()
	if m3 == m2 {
		t.Fatal("two live matches alias")
	}
	if &m3.bindings[0] == &m2.bindings[0] {
		t.Fatal("two live matches share a bindings slice")
	}
	a.release(nil) // nil-safe
}

// TestArenaDisabled checks the DisableReuse escape hatch: every get is a
// fresh allocation and release never recycles.
func TestArenaDisabled(t *testing.T) {
	a := newMatchArena(2, false, true)
	m := a.get()
	a.release(m)
	if m2 := a.get(); m2 == m {
		t.Fatal("disabled arena recycled a match")
	}
}

// TestArenaConcurrentRoundTrip exercises the sharded (locked) layout
// under -race: goroutines get, populate, and release matches through the
// same arena; every handed-out match must be exclusively owned.
// +whirllint:managed workers signal completion on the done channel
func TestArenaConcurrentRoundTrip(t *testing.T) {
	a := newMatchArena(4, true, false)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			n := &xmltree.Node{Ord: g}
			ok := true
			for i := 0; i < 500; i++ {
				m := a.get()
				m.bindings[0] = n
				m.seq = int64(g)
				if m.bindings[0] != n || m.seq != int64(g) {
					ok = false
				}
				a.release(m)
			}
			done <- ok
		}(g)
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("a match was mutated while owned")
		}
	}
}

// arenaAlgorithms are the algorithm x relaxation grid the poison
// property tests sweep: every serving loop, with and without the
// relaxations that change the match lifecycle (null extensions, partial
// offers).
var arenaAlgorithms = []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune}

// TestArenaPoisonEquivalence is the leak/reuse property test: with
// arenaPoison on, release scrambles every field of a recycled match —
// so if any released match were still reachable from the top-k set, a
// queue, or a batch slice, answers would come back with nil bindings or
// NaN scores. Identical answers with poison on and off therefore prove
// no algorithm retains a match past its release. Run with -race to also
// catch cross-goroutine reuse in Whirlpool-M.
// +whirllint:exactscore poison equivalence compares answer scores bit-for-bit
func TestArenaPoisonEquivalence(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	for _, rl := range []relax.Relaxation{relax.None, relax.All} {
		for _, alg := range arenaAlgorithms {
			t.Run(fmt.Sprintf("%v/%v", alg, rl), func(t *testing.T) {
				cfg := Config{K: 4, Relax: rl, Algorithm: alg, Routing: RoutingMinAlive, Scorer: s}
				want := runWith(t, ix, q, cfg)
				arenaPoison.Store(true)
				defer arenaPoison.Store(false)
				got := runWith(t, ix, q, cfg)
				if len(got.Answers) != len(want.Answers) {
					t.Fatalf("answers = %d, want %d", len(got.Answers), len(want.Answers))
				}
				for i := range want.Answers {
					w, g := want.Answers[i], got.Answers[i]
					if g.Score != w.Score || math.IsNaN(g.Score) {
						t.Fatalf("answer %d score = %v, want %v", i, g.Score, w.Score)
					}
					if g.Root != w.Root {
						t.Fatalf("answer %d root = %v, want %v", i, g.Root, w.Root)
					}
					for j := range w.Bindings {
						if g.Bindings[j] != w.Bindings[j] {
							t.Fatalf("answer %d binding %d = %v, want %v", i, j, g.Bindings[j], w.Bindings[j])
						}
					}
				}
			})
		}
	}
}

// TestTopKDoesNotRetainReleasedMatch pins the copy-out contract of
// topkSet.offer: entries own their bindings, so poisoning the offered
// match after release must not corrupt the recorded answer.
// +whirllint:exactscore copy-out contract asserts the exact recorded score
func TestTopKDoesNotRetainReleasedMatch(t *testing.T) {
	arenaPoison.Store(true)
	defer arenaPoison.Store(false)
	a := newMatchArena(2, false, false)
	tk := newTopkSet(1, 0, false)
	root := &xmltree.Node{Tag: "r", Ord: 7}
	leaf := &xmltree.Node{Tag: "l", Ord: 8}
	m := a.get()
	m.bindings[0], m.bindings[1] = root, leaf
	m.visited = 3
	m.score = 0.9
	m.seq = 1
	tk.offer(m, 0)
	a.release(m) // poisons bindings to nil, score to NaN
	ans := tk.answers()
	if len(ans) != 1 {
		t.Fatalf("answers = %d, want 1", len(ans))
	}
	if ans[0].Root != root || ans[0].Bindings[1] != leaf || ans[0].Score != 0.9 {
		t.Fatalf("answer corrupted by release: %+v", ans[0])
	}
}

// BenchmarkProcessAllocs measures — and asserts — the zero-allocation
// steady state of the server operation: once the scratch buffers have
// grown and the arena freelist is primed, process + release must not
// allocate at all.
func BenchmarkProcessAllocs(b *testing.B) {
	doc, err := xmltree.ParseString(booksXML)
	if err != nil {
		b.Fatal(err)
	}
	ix := index.Build(doc)
	q := pattern.MustParse("/book[./title and ./info/isbn]")
	s := score.NewTFIDF(ix, q, score.Sparse)
	e, err := New(ix, q, Config{K: 2, Relax: relax.All, Algorithm: WhirlpoolS, Routing: RoutingMinAlive, Scorer: s})
	if err != nil {
		b.Fatal(err)
	}
	shared := NewSharedTopK(2, 0)
	r := &run{
		Engine: e,
		topk:   shared.set,
		arena:  newMatchArena(q.Size(), false, false),
		ctx:    context.Background(),
	}
	r.lastThreshold.Store(math.Float64bits(math.Inf(-1)))
	m := r.arena.get()
	m.bindings[0] = ix.Nodes("book")[0]
	m.visited = 1
	m.seq = r.nextSeq()
	sc := &scratch{}
	step := func() {
		for _, sid := range []int{1, 2} {
			for _, x := range r.process(m, sid, sc) {
				r.release(x)
			}
		}
	}
	step() // warm-up: slab carve, scratch growth, lazy index fills
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		b.Fatalf("process allocates %.1f objects/op in steady state, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
