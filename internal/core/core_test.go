package core

import (
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/naive"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/xmltree"
)

// Figure 1's heterogeneous bookstore: a forest of book trees, so /book
// queries bind forest roots exactly.
const booksXML = `
<book>
  <title>wodehouse</title>
  <info>
    <publisher><name>psmith</name><location>london</location></publisher>
    <isbn>1234</isbn>
  </info>
  <price>48.95</price>
</book>
<book>
  <title>wodehouse</title>
  <publisher><name>psmith</name></publisher>
  <info><isbn>1234</isbn></info>
</book>
<book>
  <reviews><title>wodehouse</title></reviews>
  <info><location>london</location></info>
</book>
<book>
  <title>other</title>
  <price>10</price>
</book>`

func buildEnv(t *testing.T, xml, xpath string) (*index.Index, *pattern.Query) {
	t.Helper()
	doc, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc), pattern.MustParse(xpath)
}

func runWith(t *testing.T, ix *index.Index, q *pattern.Query, cfg Config) *Result {
	t.Helper()
	e, err := New(ix, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func scoresOf(res *Result) []float64 {
	out := make([]float64, len(res.Answers))
	for i, a := range res.Answers {
		out[i] = a.Score
	}
	return out
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestRelaxedTopKMatchesNaive(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	for k := 1; k <= 4; k++ {
		want := naive.TopK(ix, q, relax.All, s, k)
		wantScores := make([]float64, len(want))
		for i, a := range want {
			wantScores[i] = a.Score
		}
		for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune} {
			res := runWith(t, ix, q, Config{
				K: k, Relax: relax.All, Algorithm: alg,
				Routing: RoutingMinAlive, Scorer: s,
			})
			if got := scoresOf(res); !almostEqual(got, wantScores) {
				t.Errorf("k=%d %v: scores %v, want %v", k, alg, got, wantScores)
			}
		}
	}
}

func TestRelaxedRankingOrder(t *testing.T) {
	// Book 1 is the exact match; book 2 satisfies publisher/name only
	// approximately; book 3 has only a nested title; book 4 has neither
	// wodehouse title nor psmith.
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	res := runWith(t, ix, q, Config{K: 4, Relax: relax.All, Algorithm: WhirlpoolS, Routing: RoutingMinAlive, Scorer: s})
	if len(res.Answers) != 4 {
		t.Fatalf("answers = %d, want 4", len(res.Answers))
	}
	books := ix.Nodes("book")
	if res.Answers[0].Root != books[0] {
		t.Fatalf("best answer should be the exact match, got %v", res.Answers[0].Root)
	}
	if res.Answers[3].Root != books[3] {
		t.Fatalf("worst answer should be book 4, got %v", res.Answers[3].Root)
	}
	for i := 1; i < len(res.Answers); i++ {
		if res.Answers[i].Score > res.Answers[i-1].Score {
			t.Fatal("answers must be sorted by descending score")
		}
	}
}

func TestExactModeOnlyExactMatches(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Raw)
	for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune} {
		res := runWith(t, ix, q, Config{K: 4, Relax: relax.None, Algorithm: alg, Scorer: s})
		if len(res.Answers) != 1 {
			t.Fatalf("%v: exact answers = %d, want 1 (only book 1)", alg, len(res.Answers))
		}
		if res.Answers[0].Root != ix.Nodes("book")[0] {
			t.Fatalf("%v: wrong exact answer", alg)
		}
		// Every binding must be present in an exact match.
		for id, b := range res.Answers[0].Bindings {
			if b == nil {
				t.Fatalf("%v: exact match missing binding %d", alg, id)
			}
		}
	}
}

func TestExactModeMatchesNaive(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse']")
	s := score.NewTFIDF(ix, q, score.Raw)
	want := naive.TopK(ix, q, relax.None, s, 3)
	res := runWith(t, ix, q, Config{K: 3, Relax: relax.None, Algorithm: WhirlpoolS, Scorer: s})
	if len(res.Answers) != len(want) {
		t.Fatalf("answers = %d, want %d", len(res.Answers), len(want))
	}
	for i := range want {
		if math.Abs(res.Answers[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("score %d = %v, want %v", i, res.Answers[i].Score, want[i].Score)
		}
	}
}

func TestAllRoutingStrategiesAgreeOnAnswers(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	base := runWith(t, ix, q, Config{K: 2, Relax: relax.All, Algorithm: WhirlpoolS, Routing: RoutingStatic, Scorer: s})
	for _, routing := range []Routing{RoutingMaxScore, RoutingMinScore, RoutingMinAlive} {
		res := runWith(t, ix, q, Config{K: 2, Relax: relax.All, Algorithm: WhirlpoolS, Routing: routing, Scorer: s})
		if !almostEqual(scoresOf(res), scoresOf(base)) {
			t.Errorf("routing %v changed the answers: %v vs %v", routing, scoresOf(res), scoresOf(base))
		}
	}
}

func TestAllQueueDisciplinesAgreeOnAnswers(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	base := runWith(t, ix, q, Config{K: 2, Relax: relax.All, Algorithm: WhirlpoolS, Queue: QueueMaxFinal, Scorer: s})
	for _, queue := range []Queue{QueueFIFO, QueueCurrentScore, QueueMaxNext} {
		for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep} {
			res := runWith(t, ix, q, Config{K: 2, Relax: relax.All, Algorithm: alg, Queue: queue, Scorer: s})
			if !almostEqual(scoresOf(res), scoresOf(base)) {
				t.Errorf("%v/%v changed the answers: %v vs %v", alg, queue, scoresOf(res), scoresOf(base))
			}
		}
	}
}

func TestAllStaticOrdersAgree(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	var baseline []float64
	for _, order := range q.ServerOrders() {
		res := runWith(t, ix, q, Config{K: 3, Relax: relax.All, Algorithm: WhirlpoolS, Routing: RoutingStatic, Order: order, Scorer: s})
		if baseline == nil {
			baseline = scoresOf(res)
			continue
		}
		if !almostEqual(scoresOf(res), baseline) {
			t.Fatalf("order %v changed answers: %v vs %v", order, scoresOf(res), baseline)
		}
	}
}

func TestPruningReducesWork(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	pruned := runWith(t, ix, q, Config{K: 1, Relax: relax.All, Algorithm: LockStep, Scorer: s})
	noPrune := runWith(t, ix, q, Config{K: 1, Relax: relax.All, Algorithm: LockStepNoPrune, Scorer: s})
	if pruned.Stats.MatchesCreated > noPrune.Stats.MatchesCreated {
		t.Fatalf("pruning created more matches (%d) than no-pruning (%d)",
			pruned.Stats.MatchesCreated, noPrune.Stats.MatchesCreated)
	}
	if !almostEqual(scoresOf(pruned), scoresOf(noPrune)) {
		t.Fatalf("pruning changed the answer: %v vs %v", scoresOf(pruned), scoresOf(noPrune))
	}
}

func TestDistinctRootsInvariant(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[.//title = 'wodehouse']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	res := runWith(t, ix, q, Config{K: 4, Relax: relax.All, Algorithm: WhirlpoolS, Scorer: s})
	seen := make(map[int]bool)
	for _, a := range res.Answers {
		if seen[a.Root.Ord] {
			t.Fatalf("duplicate root %v in answers", a.Root)
		}
		seen[a.Root.Ord] = true
	}
}

func TestSeededThresholdPrunesEverything(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	// With an impossible currentTopK floor, every match should be pruned
	// immediately after root generation.
	res := runWith(t, ix, q, Config{K: 1, Relax: relax.All, Algorithm: WhirlpoolS, Scorer: s, Threshold: 1e9})
	if res.Stats.ServerOps > int64(ix.CountTag("book")) {
		t.Fatalf("expected no post-root server ops, got %d", res.Stats.ServerOps)
	}
	if res.Stats.Pruned == 0 {
		t.Fatal("expected pruning with seeded threshold")
	}
}

func TestConfigValidation(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title]")
	s := score.NewTFIDF(ix, q, score.Raw)
	cases := []Config{
		{K: 0, Scorer: s},                        // bad K
		{K: 1},                                   // missing scorer
		{K: 1, Scorer: s, Order: []int{1, 1}},    // duplicate order
		{K: 1, Scorer: s, Order: []int{2}},       // out of range
		{K: 1, Scorer: s, Order: []int{1, 2, 3}}, // wrong length
	}
	for i, cfg := range cases {
		if _, err := New(ix, q, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New(ix, q, Config{K: 1, Scorer: s, Order: []int{1}}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestSingleNodeQuery(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book")
	s := score.NewTFIDF(ix, q, score.Raw)
	for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune} {
		res := runWith(t, ix, q, Config{K: 2, Relax: relax.All, Algorithm: alg, Scorer: s})
		if len(res.Answers) != 2 {
			t.Fatalf("%v: answers = %d, want 2", alg, len(res.Answers))
		}
	}
}

func TestNoMatchesAtAll(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/magazine[./title]")
	s := score.NewTFIDF(ix, q, score.Raw)
	for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune} {
		res := runWith(t, ix, q, Config{K: 3, Relax: relax.All, Algorithm: alg, Scorer: s})
		if len(res.Answers) != 0 {
			t.Fatalf("%v: expected no answers, got %d", alg, len(res.Answers))
		}
	}
}

func TestKLargerThanAnswerSet(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title]")
	s := score.NewTFIDF(ix, q, score.Raw)
	res := runWith(t, ix, q, Config{K: 100, Relax: relax.All, Algorithm: WhirlpoolS, Scorer: s})
	if len(res.Answers) != 4 {
		t.Fatalf("answers = %d, want all 4 books", len(res.Answers))
	}
}

func TestStatsPopulated(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	res := runWith(t, ix, q, Config{K: 1, Relax: relax.All, Algorithm: WhirlpoolS, Routing: RoutingMinAlive, Scorer: s})
	st := res.Stats
	if st.ServerOps == 0 || st.JoinComparisons == 0 || st.MatchesCreated == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Duration <= 0 {
		t.Fatal("duration not measured")
	}
}

func TestEnumNames(t *testing.T) {
	if WhirlpoolS.String() != "Whirlpool-S" || WhirlpoolM.String() != "Whirlpool-M" ||
		LockStep.String() != "LockStep" || LockStepNoPrune.String() != "LockStep-NoPrun" {
		t.Fatal("algorithm names")
	}
	if Algorithm(9).String() != "algorithm(?)" {
		t.Fatal("unknown algorithm name")
	}
	if RoutingStatic.String() != "static" || RoutingMinAlive.String() != "min_alive_partial_matches" ||
		RoutingMaxScore.String() != "max_score" || RoutingMinScore.String() != "min_score" {
		t.Fatal("routing names")
	}
	if Routing(9).String() != "routing(?)" {
		t.Fatal("unknown routing name")
	}
	if QueueMaxFinal.String() != "max-possible-final" || QueueFIFO.String() != "fifo" ||
		QueueCurrentScore.String() != "current-score" || QueueMaxNext.String() != "max-possible-next" {
		t.Fatal("queue names")
	}
	if Queue(9).String() != "queue(?)" {
		t.Fatal("unknown queue name")
	}
}
