package core

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/synopsis"
	"repro/internal/xmark"
)

// TestEngineFromPlanMatchesScratch builds every engine twice — once the
// ordinary way and once from a compiled plan backed by a synopsis — and
// checks the routing statistics are bit-identical and the answers (roots
// and scores) agree exactly, across relaxation modes and algorithms.
// +whirllint:exactscore plan-built engines must reproduce scratch scores bit-for-bit
func TestEngineFromPlanMatchesScratch(t *testing.T) {
	doc, err := xmark.Generate(xmark.Options{Seed: 3, Items: 80})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	syn := synopsis.Build(doc)
	queries := []string{
		"//item[./description/parlist]",
		"//item[./description/parlist and ./mailbox/mail/text]",
		"//item[./name = 'no-such-name' and .//text]",
	}
	for _, qs := range queries {
		for _, r := range []relax.Relaxation{relax.None, relax.All} {
			for _, alg := range []Algorithm{WhirlpoolS, LockStep} {
				t.Run(fmt.Sprintf("%s/relax=%v/%v", qs, r, alg), func(t *testing.T) {
					q := pattern.MustParse(qs)
					s := score.NewTFIDFWithStats(ix, syn, q, score.Sparse)
					plan, err := CompilePlan(ix, syn, q, r, s, "test-key")
					if err != nil {
						t.Fatal(err)
					}
					if len(plan.Order) != q.Size()-1 {
						t.Fatalf("plan order has %d entries, want %d", len(plan.Order), q.Size()-1)
					}
					cfg := Config{K: 5, Relax: r, Algorithm: alg, Scorer: s}
					scratch, err := New(ix, q, cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Plan = plan
					planned, err := New(ix, q, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for id := 1; id < q.Size(); id++ {
						if scratch.fanout[id] != planned.fanout[id] || scratch.satisfyProb[id] != planned.satisfyProb[id] {
							t.Fatalf("node %d stats: plan (%v, %v), scratch (%v, %v)",
								id, planned.fanout[id], planned.satisfyProb[id], scratch.fanout[id], scratch.satisfyProb[id])
						}
					}
					for i, id := range plan.Order {
						if planned.order[i] != id {
							t.Fatalf("engine order %v ignores plan order %v", planned.order, plan.Order)
						}
					}
					want, err := scratch.Run()
					if err != nil {
						t.Fatal(err)
					}
					got, err := planned.Run()
					if err != nil {
						t.Fatal(err)
					}
					if len(want.Answers) != len(got.Answers) {
						t.Fatalf("%d answers from plan, %d from scratch", len(got.Answers), len(want.Answers))
					}
					for i := range want.Answers {
						if want.Answers[i].Root != got.Answers[i].Root || want.Answers[i].Score != got.Answers[i].Score {
							t.Fatalf("answer %d: plan (%v, %v), scratch (%v, %v)", i,
								got.Answers[i].Root, got.Answers[i].Score, want.Answers[i].Root, want.Answers[i].Score)
						}
					}
				})
			}
		}
	}
}

// TestPlanMismatchesRejected checks New refuses a plan compiled for a
// different relaxation mode or a different query.
func TestPlanMismatchesRejected(t *testing.T) {
	doc, err := xmark.Generate(xmark.Options{Seed: 3, Items: 20})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	q := pattern.MustParse("//item[./name]")
	s := score.NewTFIDF(ix, q, score.Sparse)
	plan, err := CompilePlan(ix, nil, q, relax.All, s, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ix, q, Config{K: 1, Relax: relax.None, Scorer: s, Plan: plan}); err == nil {
		t.Fatal("relaxation mismatch accepted")
	}
	other := pattern.MustParse("//item[./payment]")
	so := score.NewTFIDF(ix, other, score.Sparse)
	if _, err := New(ix, other, Config{K: 1, Relax: relax.All, Scorer: so, Plan: plan}); err == nil {
		t.Fatal("query mismatch accepted")
	}
}
