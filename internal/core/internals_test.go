package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/xmltree"
)

func mkMatch(rootOrd int, score float64, seq int64) *match {
	n := &xmltree.Node{Tag: "r", Ord: rootOrd}
	return &match{
		bindings: []*xmltree.Node{n},
		visited:  1,
		score:    score,
		maxFinal: score,
		seq:      seq,
	}
}

// +whirllint:exactscore synthetic scores are exact by construction
func TestTopkSetBasics(t *testing.T) {
	tk := newTopkSet(2, 0, false)
	if _, ok := tk.threshold(); ok {
		t.Fatal("empty set should have no threshold")
	}
	tk.offer(mkMatch(1, 0.5, 1), 0)
	if _, ok := tk.threshold(); ok {
		t.Fatal("one of two entries should not yield a threshold")
	}
	tk.offer(mkMatch(2, 0.8, 2), 0)
	if v, ok := tk.threshold(); !ok || v != 0.5 {
		t.Fatalf("threshold = %v, %v", v, ok)
	}
	// Better score for an existing root raises it.
	tk.offer(mkMatch(1, 0.9, 3), 0)
	if v, _ := tk.threshold(); v != 0.8 {
		t.Fatalf("threshold after update = %v", v)
	}
	// A new root displacing the weakest.
	tk.offer(mkMatch(3, 1.0, 4), 0)
	if v, _ := tk.threshold(); v != 0.9 {
		t.Fatalf("threshold after displacement = %v", v)
	}
	ans := tk.answers()
	if len(ans) != 2 || ans[0].Score != 1.0 || ans[1].Score != 0.9 {
		t.Fatalf("answers = %v", ans)
	}
}

// +whirllint:exactscore synthetic scores are exact by construction
func TestTopkSetOnePerRoot(t *testing.T) {
	tk := newTopkSet(3, 0, false)
	tk.offer(mkMatch(7, 0.5, 1), 0)
	tk.offer(mkMatch(7, 0.7, 2), 0)
	tk.offer(mkMatch(7, 0.6, 3), 0) // worse than best, ignored
	ans := tk.answers()
	if len(ans) != 1 || ans[0].Score != 0.7 {
		t.Fatalf("answers = %v", ans)
	}
}

func TestTopkSetFloor(t *testing.T) {
	tk := newTopkSet(2, 0.9, true)
	if v, ok := tk.threshold(); !ok || v != 0.9 {
		t.Fatalf("seeded threshold = %v, %v", v, ok)
	}
	// Entries below the floor do not lower it.
	tk.offer(mkMatch(1, 0.2, 1), 0)
	tk.offer(mkMatch(2, 0.3, 2), 0)
	if v, _ := tk.threshold(); v != 0.9 {
		t.Fatalf("floored threshold = %v", v)
	}
	// A full set above the floor overrides it.
	tk.offer(mkMatch(3, 1.2, 3), 0)
	tk.offer(mkMatch(4, 1.1, 4), 0)
	if v, _ := tk.threshold(); v != 1.1 {
		t.Fatalf("threshold = %v", v)
	}
}

// +whirllint:exactscore synthetic scores are exact by construction
func TestTopkSetEvictedRootCanReturn(t *testing.T) {
	tk := newTopkSet(1, 0, false)
	tk.offer(mkMatch(1, 0.5, 1), 0)
	tk.offer(mkMatch(2, 0.8, 2), 0) // evicts root 1
	tk.offer(mkMatch(1, 0.9, 3), 0) // root 1 returns with a better score
	ans := tk.answers()
	if len(ans) != 1 || ans[0].Root.Ord != 1 || ans[0].Score != 0.9 {
		t.Fatalf("answers = %v", ans)
	}
}

func TestTopkSetDeterministicTieBreak(t *testing.T) {
	tk := newTopkSet(1, 0, false)
	tk.offer(mkMatch(5, 0.5, 1), 0)
	tk.offer(mkMatch(2, 0.5, 2), 0) // same score, smaller root ord wins
	ans := tk.answers()
	if ans[0].Root.Ord != 2 {
		t.Fatalf("tie break picked root %d", ans[0].Root.Ord)
	}
}

// mkBoundMatch is mkMatch with extra non-root bindings, for tie-break
// tests that need distinct binding vectors at equal scores. Matches for
// one root share the root node pointer, as they do in a real run.
func mkBoundMatch(root *xmltree.Node, score float64, others ...*xmltree.Node) *match {
	return &match{
		bindings: append([]*xmltree.Node{root}, others...),
		visited:  1,
		score:    score,
		maxFinal: score,
		seq:      1,
	}
}

func TestTopkSetEqualScoreKeepsDocOrderBindings(t *testing.T) {
	root := &xmltree.Node{Tag: "r", Ord: 1}
	early := &xmltree.Node{Tag: "a", Ord: 3}
	late := &xmltree.Node{Tag: "a", Ord: 9}
	// Regardless of arrival order, the kept representative for a root at
	// an equal score is the bindings vector earliest in document order.
	for _, first := range []*xmltree.Node{early, late} {
		second := late
		if first == late {
			second = early
		}
		tk := newTopkSet(1, 0, false)
		tk.offer(mkBoundMatch(root, 0.5, first), 0)
		tk.offer(mkBoundMatch(root, 0.5, second), 0)
		ans := tk.answers()
		if len(ans) != 1 || ans[0].Bindings[1] != early {
			t.Fatalf("first ord %d: kept binding ord %d, want ord 3", first.Ord, ans[0].Bindings[1].Ord)
		}
	}
	// nil (relaxed-away) sorts after any bound node.
	tk := newTopkSet(1, 0, false)
	tk.offer(mkBoundMatch(root, 0.5, nil), 0)
	tk.offer(mkBoundMatch(root, 0.5, late), 0)
	if ans := tk.answers(); ans[0].Bindings[1] != late {
		t.Fatalf("kept %v, want bound node over nil", ans[0].Bindings[1])
	}
}

func TestTopkSetThresholdSource(t *testing.T) {
	tk := newTopkSet(2, 0, false)
	if src := tk.thresholdSrc(); src != -1 {
		t.Fatalf("empty set source = %d, want -1", src)
	}
	tk.offer(mkMatch(1, 0.5, 1), 3)
	tk.offer(mkMatch(2, 0.8, 2), 4) // fills the set: k-th is shard 3's 0.5
	if src := tk.thresholdSrc(); src != 4 {
		// The offer that completed the set published the threshold.
		t.Fatalf("source after fill = %d, want 4", src)
	}
	tk.offer(mkMatch(3, 1.0, 3), 5) // displaces 0.5; threshold rises to 0.8
	if src := tk.thresholdSrc(); src != 5 {
		t.Fatalf("source after displacement = %d, want 5", src)
	}
	// An offer that does not move the threshold keeps the attribution.
	tk.offer(mkMatch(4, 0.1, 4), 6)
	if src := tk.thresholdSrc(); src != 5 {
		t.Fatalf("source after no-op offer = %d, want 5", src)
	}
}

func TestTopkSetFloorSourceStaysRemoteless(t *testing.T) {
	tk := newTopkSet(1, 2.0, true)
	tk.offer(mkMatch(1, 0.5, 1), 7)
	if v, _ := tk.threshold(); v != 2.0 {
		t.Fatalf("threshold = %v, want floor", v)
	}
	if src := tk.thresholdSrc(); src != -1 {
		t.Fatalf("floor-governed source = %d, want -1", src)
	}
}

// TestTopkSetThresholdMonotone hammers the lock-free threshold cache
// from concurrent offerers and checks it never decreases.
// +whirllint:busywait watcher spins on the threshold cache deliberately; bounded by the offerers' Wait
func TestTopkSetThresholdMonotone(t *testing.T) {
	tk := newTopkSet(3, 0, false)
	stop := make(chan struct{})
	var bad atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := -1.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v, ok := tk.threshold(); ok {
				if v < last {
					bad.Store(true)
					return
				}
				last = v
			}
		}
	}()
	var offerers sync.WaitGroup
	for g := 0; g < 4; g++ {
		offerers.Add(1)
		go func(g int) {
			defer offerers.Done()
			for i := 0; i < 500; i++ {
				tk.offer(mkMatch(g*1000+i, float64(i%97)/97, int64(i)), int32(g))
			}
		}(g)
	}
	offerers.Wait()
	close(stop)
	wg.Wait()
	if bad.Load() {
		t.Fatal("threshold decreased")
	}
}

func TestSharedTopKAcrossRuns(t *testing.T) {
	// Two sequential runs share one set: the second run evaluates
	// against the threshold the first established, so its prunes are
	// attributed to the other shard id.
	ix, q := buildEnv(t, booksXML, "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	s := score.NewTFIDF(ix, q, score.Sparse)
	cfg := Config{K: 1, Relax: relax.All, Algorithm: WhirlpoolS, Scorer: s}
	eng, err := New(ix, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shared := NewSharedTopK(cfg.K, 0)
	st0, err := eng.RunShared(context.Background(), shared, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st0.PrunedRemote != 0 {
		t.Fatalf("lone shard recorded %d remote prunes", st0.PrunedRemote)
	}
	st1, err := eng.RunShared(context.Background(), shared, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Pruned == 0 {
		t.Fatal("second run should prune against the inherited threshold")
	}
	if st1.PrunedRemote != st1.Pruned {
		t.Fatalf("second run: %d of %d prunes attributed remotely",
			st1.PrunedRemote, st1.Pruned)
	}
	if got := len(shared.Answers()); got != 1 {
		t.Fatalf("answers = %d, want 1", got)
	}
}

// +whirllint:busywait drains a three-element queue; pop's ok=false ends the loop
func TestPQOrdering(t *testing.T) {
	var q pq
	q.push(mkMatch(1, 0.1, 3), 0.1)
	q.push(mkMatch(2, 0.9, 1), 0.9)
	q.push(mkMatch(3, 0.5, 2), 0.5)
	var got []int
	for {
		m, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, m.rootOrd())
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("pop order = %v", got)
	}
	if q.len() != 0 {
		t.Fatal("len after drain")
	}
}

func TestPQTieBreakBySeq(t *testing.T) {
	var q pq
	q.push(mkMatch(1, 0.5, 9), 0.5)
	q.push(mkMatch(2, 0.5, 1), 0.5)
	m, _ := q.pop()
	if m.seq != 1 {
		t.Fatalf("tie should pop earliest seq, got %d", m.seq)
	}
}

func TestBlockingPQCloseUnblocks(t *testing.T) {
	q := newBlockingPQ()
	var wg sync.WaitGroup
	results := make([]bool, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, ok := q.pop()
			results[i] = ok
		}(i)
	}
	q.push(mkMatch(1, 0.5, 1), 0.5)
	q.close()
	wg.Wait()
	popped := 0
	for _, ok := range results {
		if ok {
			popped++
		}
	}
	if popped != 1 {
		t.Fatalf("exactly one waiter should receive the item, got %d", popped)
	}
	if _, ok := q.tryPop(); ok {
		t.Fatal("tryPop after drain should fail")
	}
}

func TestLiveCounterSignalsZero(t *testing.T) {
	c := newLiveCounter()
	c.add(3)
	c.add(-1)
	c.add(-1)
	select {
	case <-c.done:
		t.Fatal("done closed early")
	default:
	}
	c.add(-1)
	select {
	case <-c.done:
	default:
		t.Fatal("done not closed at zero")
	}
	// markDone is idempotent.
	c.markDone()
}

// +whirllint:exactscore extendInto's score arithmetic is exact on these inputs
// +whirllint:matchowner test inspects the extension it owns
func TestMatchExtend(t *testing.T) {
	m := mkMatch(1, 0.4, 1)
	m.bindings = append(m.bindings, nil, nil)
	m.maxFinal = 0.4 + 0.3 + 0.2
	n := &xmltree.Node{Tag: "x", Ord: 9}
	ext := m.extend(1, n, 0.25, 0.3, 2)
	if ext.score != 0.65 {
		t.Fatalf("score = %v", ext.score)
	}
	if diff := ext.maxFinal - (0.4 + 0.3 + 0.2 - 0.3 + 0.25); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("maxFinal = %v", ext.maxFinal)
	}
	if !ext.isVisited(1) || ext.isMissing(1) {
		t.Fatal("visited bits wrong")
	}
	if m.isVisited(1) {
		t.Fatal("extend mutated parent")
	}
	// Null extension.
	null := m.extend(2, nil, 0, 0.2, 3)
	if !null.isMissing(2) || null.score != 0.4 {
		t.Fatalf("null extension = %v", null)
	}
	if null.maxFinal != 0.4+0.3 {
		t.Fatalf("null maxFinal = %v", null.maxFinal)
	}
	// complete() over a 3-node query.
	if ext.complete(0b111) {
		t.Fatal("ext not complete")
	}
	both := ext.extend(2, nil, 0, 0.2, 4)
	if !both.complete(0b111) {
		t.Fatal("both should be complete")
	}
}

func TestMatchString(t *testing.T) {
	m := mkMatch(1, 0.4, 1)
	m.bindings = append(m.bindings, nil, nil)
	m.visited |= 1 << 2
	m.missing |= 1 << 2
	s := m.String()
	for _, want := range []string{"0:", "1:?", "2:⊥", "score=0.4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String = %q missing %q", s, want)
		}
	}
}
