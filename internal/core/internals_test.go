package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

func mkMatch(rootOrd int, score float64, seq int64) *match {
	n := &xmltree.Node{Tag: "r", Ord: rootOrd}
	return &match{
		bindings: []*xmltree.Node{n},
		visited:  1,
		score:    score,
		maxFinal: score,
		seq:      seq,
	}
}

func TestTopkSetBasics(t *testing.T) {
	tk := newTopkSet(2, 0, false)
	if _, ok := tk.threshold(); ok {
		t.Fatal("empty set should have no threshold")
	}
	tk.offer(mkMatch(1, 0.5, 1))
	if _, ok := tk.threshold(); ok {
		t.Fatal("one of two entries should not yield a threshold")
	}
	tk.offer(mkMatch(2, 0.8, 2))
	if v, ok := tk.threshold(); !ok || v != 0.5 {
		t.Fatalf("threshold = %v, %v", v, ok)
	}
	// Better score for an existing root raises it.
	tk.offer(mkMatch(1, 0.9, 3))
	if v, _ := tk.threshold(); v != 0.8 {
		t.Fatalf("threshold after update = %v", v)
	}
	// A new root displacing the weakest.
	tk.offer(mkMatch(3, 1.0, 4))
	if v, _ := tk.threshold(); v != 0.9 {
		t.Fatalf("threshold after displacement = %v", v)
	}
	ans := tk.answers()
	if len(ans) != 2 || ans[0].Score != 1.0 || ans[1].Score != 0.9 {
		t.Fatalf("answers = %v", ans)
	}
}

func TestTopkSetOnePerRoot(t *testing.T) {
	tk := newTopkSet(3, 0, false)
	tk.offer(mkMatch(7, 0.5, 1))
	tk.offer(mkMatch(7, 0.7, 2))
	tk.offer(mkMatch(7, 0.6, 3)) // worse than best, ignored
	ans := tk.answers()
	if len(ans) != 1 || ans[0].Score != 0.7 {
		t.Fatalf("answers = %v", ans)
	}
}

func TestTopkSetFloor(t *testing.T) {
	tk := newTopkSet(2, 0.9, true)
	if v, ok := tk.threshold(); !ok || v != 0.9 {
		t.Fatalf("seeded threshold = %v, %v", v, ok)
	}
	// Entries below the floor do not lower it.
	tk.offer(mkMatch(1, 0.2, 1))
	tk.offer(mkMatch(2, 0.3, 2))
	if v, _ := tk.threshold(); v != 0.9 {
		t.Fatalf("floored threshold = %v", v)
	}
	// A full set above the floor overrides it.
	tk.offer(mkMatch(3, 1.2, 3))
	tk.offer(mkMatch(4, 1.1, 4))
	if v, _ := tk.threshold(); v != 1.1 {
		t.Fatalf("threshold = %v", v)
	}
}

func TestTopkSetEvictedRootCanReturn(t *testing.T) {
	tk := newTopkSet(1, 0, false)
	tk.offer(mkMatch(1, 0.5, 1))
	tk.offer(mkMatch(2, 0.8, 2)) // evicts root 1
	tk.offer(mkMatch(1, 0.9, 3)) // root 1 returns with a better score
	ans := tk.answers()
	if len(ans) != 1 || ans[0].Root.Ord != 1 || ans[0].Score != 0.9 {
		t.Fatalf("answers = %v", ans)
	}
}

func TestTopkSetDeterministicTieBreak(t *testing.T) {
	tk := newTopkSet(1, 0, false)
	tk.offer(mkMatch(5, 0.5, 1))
	tk.offer(mkMatch(2, 0.5, 2)) // same score, smaller root ord wins
	ans := tk.answers()
	if ans[0].Root.Ord != 2 {
		t.Fatalf("tie break picked root %d", ans[0].Root.Ord)
	}
}

func TestPQOrdering(t *testing.T) {
	var q pq
	q.push(mkMatch(1, 0.1, 3), 0.1)
	q.push(mkMatch(2, 0.9, 1), 0.9)
	q.push(mkMatch(3, 0.5, 2), 0.5)
	var got []int
	for {
		m, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, m.rootOrd())
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("pop order = %v", got)
	}
	if q.len() != 0 {
		t.Fatal("len after drain")
	}
}

func TestPQTieBreakBySeq(t *testing.T) {
	var q pq
	q.push(mkMatch(1, 0.5, 9), 0.5)
	q.push(mkMatch(2, 0.5, 1), 0.5)
	m, _ := q.pop()
	if m.seq != 1 {
		t.Fatalf("tie should pop earliest seq, got %d", m.seq)
	}
}

func TestBlockingPQCloseUnblocks(t *testing.T) {
	q := newBlockingPQ()
	var wg sync.WaitGroup
	results := make([]bool, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, ok := q.pop()
			results[i] = ok
		}(i)
	}
	q.push(mkMatch(1, 0.5, 1), 0.5)
	q.close()
	wg.Wait()
	popped := 0
	for _, ok := range results {
		if ok {
			popped++
		}
	}
	if popped != 1 {
		t.Fatalf("exactly one waiter should receive the item, got %d", popped)
	}
	if _, ok := q.tryPop(); ok {
		t.Fatal("tryPop after drain should fail")
	}
}

func TestLiveCounterSignalsZero(t *testing.T) {
	c := newLiveCounter()
	c.add(3)
	c.add(-1)
	c.add(-1)
	select {
	case <-c.done:
		t.Fatal("done closed early")
	default:
	}
	c.add(-1)
	select {
	case <-c.done:
	default:
		t.Fatal("done not closed at zero")
	}
	// markDone is idempotent.
	c.markDone()
}

func TestMatchExtend(t *testing.T) {
	m := mkMatch(1, 0.4, 1)
	m.bindings = append(m.bindings, nil, nil)
	m.maxFinal = 0.4 + 0.3 + 0.2
	n := &xmltree.Node{Tag: "x", Ord: 9}
	ext := m.extend(1, n, 0.25, 0.3, 2)
	if ext.score != 0.65 {
		t.Fatalf("score = %v", ext.score)
	}
	if diff := ext.maxFinal - (0.4 + 0.3 + 0.2 - 0.3 + 0.25); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("maxFinal = %v", ext.maxFinal)
	}
	if !ext.isVisited(1) || ext.isMissing(1) {
		t.Fatal("visited bits wrong")
	}
	if m.isVisited(1) {
		t.Fatal("extend mutated parent")
	}
	// Null extension.
	null := m.extend(2, nil, 0, 0.2, 3)
	if !null.isMissing(2) || null.score != 0.4 {
		t.Fatalf("null extension = %v", null)
	}
	if null.maxFinal != 0.4+0.3 {
		t.Fatalf("null maxFinal = %v", null.maxFinal)
	}
	// complete() over a 3-node query.
	if ext.complete(0b111) {
		t.Fatal("ext not complete")
	}
	both := ext.extend(2, nil, 0, 0.2, 4)
	if !both.complete(0b111) {
		t.Fatal("both should be complete")
	}
}

func TestMatchString(t *testing.T) {
	m := mkMatch(1, 0.4, 1)
	m.bindings = append(m.bindings, nil, nil)
	m.visited |= 1 << 2
	m.missing |= 1 << 2
	s := m.String()
	for _, want := range []string{"0:", "1:?", "2:⊥", "score=0.4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String = %q missing %q", s, want)
		}
	}
}
