package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/xmark"
)

func xmarkEnv(t *testing.T, items int, xpath string) (*index.Index, *pattern.Query, *score.TFIDF) {
	t.Helper()
	doc, err := xmark.Generate(xmark.Options{Seed: 3, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	q := pattern.MustParse(xpath)
	return ix, q, score.NewTFIDF(ix, q, score.Sparse)
}

func TestRunContextPreCancelled(t *testing.T) {
	ix, q, s := xmarkEnv(t, 20, "//item[./name]")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune} {
		eng, err := New(ix, q, Config{K: 3, Relax: relax.All, Algorithm: alg, Scorer: s})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunContext(ctx); err != context.Canceled {
			t.Fatalf("%v: err = %v, want context.Canceled", alg, err)
		}
	}
}

func TestRunContextCancelMidFlight(t *testing.T) {
	// A large-ish workload with per-op cost so cancellation lands while
	// the engine is busy; the run must terminate promptly and report the
	// context error without deadlocking Whirlpool-M's goroutines.
	ix, q, s := xmarkEnv(t, 300, "//item[./description/parlist and ./mailbox/mail/text]")
	for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep} {
		eng, err := New(ix, q, Config{
			K: 15, Relax: relax.All, Algorithm: alg,
			Routing: RoutingMinAlive, Scorer: s,
			OpCost: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		start := time.Now()
		_, err = eng.RunContext(ctx)
		elapsed := time.Since(start)
		cancel()
		if err != context.DeadlineExceeded {
			// The run may legitimately finish before the deadline on a
			// fast machine; accept success but not other errors.
			if err != nil {
				t.Fatalf("%v: err = %v", alg, err)
			}
			continue
		}
		if elapsed > 2*time.Second {
			t.Fatalf("%v: cancellation took %v", alg, elapsed)
		}
	}
}

func TestRunContextSuccessEqualsRun(t *testing.T) {
	ix, q, s := xmarkEnv(t, 50, "//item[./description/parlist]")
	eng, err := New(ix, q, Config{K: 5, Relax: relax.All, Algorithm: WhirlpoolS, Scorer: s})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(scoresOf(r1), scoresOf(r2)) {
		t.Fatal("RunContext with background context must equal Run")
	}
}
