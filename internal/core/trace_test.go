package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/relax"
	"repro/internal/score"
)

// traceQuery has enough servers and candidates that every event kind
// fires: routing decisions, threshold updates, pruning, completion.
const traceQuery = "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']"

// +whirllint:exactscore threshold events must be non-decreasing under exact comparison
func TestTraceEventsWhirlpoolS(t *testing.T) {
	ix, q := buildEnv(t, booksXML, traceQuery)
	s := score.NewTFIDF(ix, q, score.Sparse)
	sink := &obs.Collector{}
	res := runWith(t, ix, q, Config{
		K: 2, Relax: relax.All, Algorithm: WhirlpoolS,
		Routing: RoutingMinAlive, Scorer: s, Trace: sink,
	})

	if got := sink.CountKind("run_start"); got != 1 {
		t.Fatalf("run_start events = %d", got)
	}
	if got := sink.CountKind("run_end"); got != 1 {
		t.Fatalf("run_end events = %d", got)
	}
	events := sink.Events()
	first, last := events[0], events[len(events)-1]
	if first.Kind != "run_start" || first.Run == nil {
		t.Fatalf("first event = %+v", first)
	}
	if first.Run.Algorithm != "Whirlpool-S" || first.Run.Routing != "min_alive_partial_matches" || first.Run.QueryNodes != q.Size() {
		t.Fatalf("run info = %+v", first.Run)
	}
	if last.Kind != "run_end" || last.Summary == nil || last.Summary.Aborted {
		t.Fatalf("last event = %+v", last)
	}

	// The trace's lifecycle totals must agree with the run's Stats.
	if got := sink.LifeTotal(obs.MatchesSpawned); got != res.Stats.MatchesCreated {
		t.Errorf("created trace total = %d, stats = %d", got, res.Stats.MatchesCreated)
	}
	if got := sink.LifeTotal(obs.MatchesPruned); got != res.Stats.Pruned {
		t.Errorf("pruned trace total = %d, stats = %d", got, res.Stats.Pruned)
	}
	if last.Summary.ServerOps != res.Stats.ServerOps || last.Summary.Answers != len(res.Answers) {
		t.Errorf("summary = %+v, stats = %+v", last.Summary, res.Stats)
	}

	// Routing decisions name real non-root servers, and the threshold
	// trajectory is strictly increasing (Whirlpool-S is single-threaded).
	routes := 0
	lastThreshold := -1.0
	for _, e := range events {
		switch e.Kind {
		case "route":
			routes++
			if e.Server < 1 || e.Server >= q.Size() {
				t.Fatalf("route to bogus server: %+v", e)
			}
		case "threshold":
			if e.Value <= lastThreshold {
				t.Fatalf("threshold trajectory not increasing: %v after %v", e.Value, lastThreshold)
			}
			lastThreshold = e.Value
		case "queue_depth":
			if e.Server != -1 {
				t.Fatalf("Whirlpool-S samples the router queue only: %+v", e)
			}
		}
	}
	if routes == 0 {
		t.Fatal("no routing decisions traced")
	}
	if lastThreshold < 0 {
		t.Fatal("no threshold trajectory traced")
	}
}

func TestTraceEventsWhirlpoolM(t *testing.T) {
	ix, q := buildEnv(t, booksXML, traceQuery)
	s := score.NewTFIDF(ix, q, score.Sparse)
	sink := &obs.Collector{}
	res := runWith(t, ix, q, Config{
		K: 2, Relax: relax.All, Algorithm: WhirlpoolM,
		Routing: RoutingMinAlive, Scorer: s, Trace: sink,
	})
	if got := sink.LifeTotal(obs.MatchesSpawned); got != res.Stats.MatchesCreated {
		t.Errorf("created trace total = %d, stats = %d", got, res.Stats.MatchesCreated)
	}
	if got := sink.LifeTotal(obs.MatchesPruned); got != res.Stats.Pruned {
		t.Errorf("pruned trace total = %d, stats = %d", got, res.Stats.Pruned)
	}
	// Per-server queue depth samples name real servers.
	depths := 0
	for _, e := range sink.Events() {
		if e.Kind == "queue_depth" {
			depths++
			if e.Server < 1 || e.Server >= q.Size() {
				t.Fatalf("depth sample for bogus server: %+v", e)
			}
		}
	}
	if depths == 0 {
		t.Fatal("no queue depth samples traced")
	}
}

func TestTraceEventsLockStep(t *testing.T) {
	ix, q := buildEnv(t, booksXML, traceQuery)
	s := score.NewTFIDF(ix, q, score.Sparse)
	sink := &obs.Collector{}
	runWith(t, ix, q, Config{
		K: 2, Relax: relax.All, Algorithm: LockStep, Scorer: s, Trace: sink,
	})
	// One depth sample per phase (= per non-root server).
	if got := sink.CountKind("queue_depth"); got != q.Size()-1 {
		t.Fatalf("phase depth samples = %d, want %d", got, q.Size()-1)
	}
	// LockStep routes statically: no router decisions.
	if got := sink.CountKind("route"); got != 0 {
		t.Fatalf("route events = %d, want 0", got)
	}
}

func TestEngineTotalsAccumulate(t *testing.T) {
	ix, q := buildEnv(t, booksXML, traceQuery)
	s := score.NewTFIDF(ix, q, score.Sparse)
	e, err := New(ix, q, Config{K: 2, Relax: relax.All, Algorithm: WhirlpoolS, Routing: RoutingMinAlive, Scorer: s})
	if err != nil {
		t.Fatal(err)
	}
	var wantOps, wantCreated int64
	for i := 0; i < 3; i++ {
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		wantOps += res.Stats.ServerOps
		wantCreated += res.Stats.MatchesCreated
	}
	tot := e.Totals()
	if tot.Runs != 3 || tot.Aborted != 0 {
		t.Fatalf("totals runs = %+v", tot)
	}
	if tot.ServerOps != wantOps || tot.MatchesCreated != wantCreated {
		t.Fatalf("totals = %+v, want ops %d created %d", tot, wantOps, wantCreated)
	}
	if tot.Duration <= 0 {
		t.Fatalf("totals duration = %v", tot.Duration)
	}
}

func TestNoTraceNoEvents(t *testing.T) {
	// The default configuration must run identically with no sink — the
	// other tests cover behavior; this pins the nil-safety of every
	// emission site across all four algorithms.
	ix, q := buildEnv(t, booksXML, traceQuery)
	s := score.NewTFIDF(ix, q, score.Sparse)
	for _, alg := range []Algorithm{WhirlpoolS, WhirlpoolM, LockStep, LockStepNoPrune} {
		res := runWith(t, ix, q, Config{K: 2, Relax: relax.All, Algorithm: alg, Routing: RoutingMinAlive, Scorer: s})
		if len(res.Answers) == 0 {
			t.Fatalf("%v: no answers", alg)
		}
	}
}
