package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
)

// Estimator supplies approximate routing statistics (see
// internal/estimate for the Markov-table implementation).
type Estimator interface {
	// Fanout estimates the expected number of tag nodes on the axis of
	// one anchorTag node (over all anchors, satisfying or not).
	Fanout(anchorTag string, axis dewey.Axis, tag string) float64
	// Selectivity estimates the fraction of anchorTag nodes with at
	// least one tag node on the axis.
	Selectivity(anchorTag string, axis dewey.Axis, tag string) float64
}

// Engine evaluates top-k queries for one (document, query, config)
// combination. It precomputes the server plans (Algorithm 1), the
// per-server maximum contributions backing the maximum-possible-final
// bound, and the fanout statistics the size-based router uses. An Engine
// is immutable after New — except for the atomic cumulative totals
// behind Totals — and safe for repeated and concurrent Run calls.
type Engine struct {
	cfg   Config
	ix    index.Source
	query *pattern.Query
	plans []*relax.ServerPlan

	maxContrib  []float64 // per query node
	minContrib  []float64
	expContrib  []float64
	fanout      []float64 // expected extensions per satisfying root
	satisfyProb []float64 // fraction of roots with ≥1 candidate
	sumMax      float64   // Σ maxContrib over non-root nodes
	allVisited  uint64
	order       []int             // static order (defaulted)
	vts         []index.ValueTest // per-node content predicates

	totals engineTotals // cumulative across runs, atomic
}

// engineTotals accumulates per-run Stats across the engine's lifetime
// with atomics, so concurrent RunContext calls can share it. It backs
// the per-engine cumulative stats whirlpoold serves in /stats.
type engineTotals struct {
	runs            atomic.Int64
	aborted         atomic.Int64
	serverOps       atomic.Int64
	joinComparisons atomic.Int64
	matchesCreated  atomic.Int64
	pruned          atomic.Int64
	prunedRemote    atomic.Int64
	durationNS      atomic.Int64
}

func (t *engineTotals) add(s Stats) {
	t.runs.Add(1)
	t.serverOps.Add(s.ServerOps)
	t.joinComparisons.Add(s.JoinComparisons)
	t.matchesCreated.Add(s.MatchesCreated)
	t.pruned.Add(s.Pruned)
	t.prunedRemote.Add(s.PrunedRemote)
	t.durationNS.Add(int64(s.Duration))
}

// Totals is a point-in-time snapshot of an engine's cumulative
// instrumentation: the sums of every completed run's Stats (the paper's
// Section 6.2.3 measures) plus run counts. Aborted counts cancelled
// runs, whose partial work is not included in the sums.
type Totals struct {
	Runs            int64
	Aborted         int64
	ServerOps       int64
	JoinComparisons int64
	MatchesCreated  int64
	Pruned          int64
	PrunedRemote    int64
	Duration        time.Duration
}

// Totals returns the engine's cumulative statistics over all completed
// RunContext calls. Safe for concurrent use with in-flight runs.
func (e *Engine) Totals() Totals {
	return Totals{
		Runs:            e.totals.runs.Load(),
		Aborted:         e.totals.aborted.Load(),
		ServerOps:       e.totals.serverOps.Load(),
		JoinComparisons: e.totals.joinComparisons.Load(),
		MatchesCreated:  e.totals.matchesCreated.Load(),
		Pruned:          e.totals.pruned.Load(),
		PrunedRemote:    e.totals.prunedRemote.Load(),
		Duration:        time.Duration(e.totals.durationNS.Load()),
	}
}

// New validates cfg and builds an engine for query q over the indexed
// document ix.
func New(ix index.Source, q *pattern.Query, cfg Config) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(q.Size()); err != nil {
		return nil, err
	}
	if cfg.Plan != nil {
		if err := cfg.Plan.checkAgainst(q, &cfg); err != nil {
			return nil, err
		}
	}
	plans := cfg.Plan.serverPlans()
	if plans == nil {
		plans = relax.BuildPlans(q, cfg.Relax)
	}
	e := &Engine{
		cfg:         cfg,
		ix:          ix,
		query:       q,
		plans:       plans,
		maxContrib:  make([]float64, q.Size()),
		minContrib:  make([]float64, q.Size()),
		expContrib:  make([]float64, q.Size()),
		fanout:      make([]float64, q.Size()),
		satisfyProb: make([]float64, q.Size()),
		vts:         make([]index.ValueTest, q.Size()),
	}
	for id, n := range q.Nodes {
		e.vts[id] = index.Test(n.ValueOp, n.Value)
	}
	for id := 0; id < q.Size(); id++ {
		e.maxContrib[id] = cfg.Scorer.MaxContribution(id)
		e.minContrib[id] = cfg.Scorer.MinContribution(id)
		e.expContrib[id] = cfg.Scorer.ExpectedContribution(id)
		if e.maxContrib[id] < 0 {
			return nil, fmt.Errorf("core: negative max contribution for node %d", id)
		}
		e.allVisited |= 1 << uint(id)
		if id > 0 {
			e.sumMax += e.maxContrib[id]
			axis := e.plans[id].ProbeAxis()
			if cfg.Plan != nil {
				e.fanout[id] = cfg.Plan.Fanout[id]
				e.satisfyProb[id] = cfg.Plan.SatisfyProb[id]
			} else if cfg.Estimator != nil {
				p := cfg.Estimator.Selectivity(q.Root().Tag, axis, q.Nodes[id].Tag)
				f := cfg.Estimator.Fanout(q.Root().Tag, axis, q.Nodes[id].Tag)
				e.satisfyProb[id] = p
				if p > 0 {
					e.fanout[id] = f / p
				}
			} else {
				st := ix.Predicate(q.Root().Tag, axis, q.Nodes[id].Tag, e.vts[id])
				e.fanout[id] = st.MeanFanout()
				e.satisfyProb[id] = st.Selectivity()
			}
		}
	}
	switch {
	case cfg.Order != nil:
		e.order = cfg.Order
	case cfg.Plan != nil && len(cfg.Plan.Order) == q.Size()-1:
		e.order = cfg.Plan.Order
	default:
		e.order = make([]int, 0, q.Size()-1)
		for id := 1; id < q.Size(); id++ {
			e.order = append(e.order, id)
		}
	}
	return e, nil
}

// Query returns the engine's tree pattern.
func (e *Engine) Query() *pattern.Query { return e.query }

// Run executes the configured algorithm and returns the top-k answers
// with instrumentation.
func (e *Engine) Run() (*Result, error) { return e.RunContext(context.Background()) }

// RunContext is Run with cancellation: when ctx is cancelled the
// evaluation winds down promptly and ctx's error is returned (any
// partial result is discarded).
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	shared := NewSharedTopK(e.cfg.K, e.cfg.Threshold)
	stats, err := e.runShared(ctx, shared, 0, false)
	if err != nil {
		return nil, err
	}
	return &Result{Answers: shared.Answers(), Stats: stats}, nil
}

// RunShared executes the configured algorithm against a caller-supplied
// top-k set, offering guaranteed scores into it and pruning against its
// threshold. It is the building block of sharded execution: several
// engines over disjoint data shards run concurrently against one
// SharedTopK (each with a distinct shardID for prune attribution), and
// the set's Answers — not any single run's — are the merged result.
// The set's capacity must equal the engine's Config.K.
func (e *Engine) RunShared(ctx context.Context, shared *SharedTopK, shardID int) (Stats, error) {
	return e.runShared(ctx, shared, shardID, true)
}

// runShared is the common run body. sharded records whether sibling
// shards may share the top-k set: standalone runs (RunContext) pass
// false and skip the per-prune threshold-source attribution.
func (e *Engine) runShared(ctx context.Context, shared *SharedTopK, shardID int, sharded bool) (Stats, error) {
	if shared.set.k != e.cfg.K {
		return Stats{}, fmt.Errorf("core: shared top-k capacity %d != Config.K %d", shared.set.k, e.cfg.K)
	}
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	r := &run{
		Engine:  e,
		topk:    shared.set,
		arena:   newMatchArena(e.query.Size(), e.cfg.Algorithm == WhirlpoolM, e.cfg.DisableReuse),
		shardID: int32(shardID),
		sharded: sharded,
		ctx:     ctx,
	}
	r.lastThreshold.Store(math.Float64bits(math.Inf(-1)))
	if t := e.cfg.Trace; t != nil {
		t.RunStart(obs.RunInfo{
			Algorithm:  e.cfg.Algorithm.String(),
			Routing:    e.cfg.Routing.String(),
			Queue:      e.cfg.Queue.String(),
			K:          e.cfg.K,
			QueryNodes: e.query.Size(),
		})
	}
	start := time.Now()
	switch e.cfg.Algorithm {
	case WhirlpoolS:
		r.runS()
	case WhirlpoolM:
		r.runM()
	case LockStep:
		r.runLockStep(true)
	case LockStepNoPrune:
		r.runLockStep(false)
	default:
		return Stats{}, fmt.Errorf("core: unknown algorithm %d", e.cfg.Algorithm)
	}
	stats := r.stats.snapshot()
	stats.Duration = time.Since(start)
	if err := ctx.Err(); err != nil {
		e.totals.aborted.Add(1)
		if t := e.cfg.Trace; t != nil {
			t.RunEnd(runSummary(stats, 0, true))
		}
		return Stats{}, err
	}
	e.totals.add(stats)
	if t := e.cfg.Trace; t != nil {
		t.RunEnd(runSummary(stats, len(shared.set.answers()), false))
	}
	return stats, nil
}

func runSummary(s Stats, answers int, aborted bool) obs.RunSummary {
	return obs.RunSummary{
		ServerOps:       s.ServerOps,
		JoinComparisons: s.JoinComparisons,
		MatchesCreated:  s.MatchesCreated,
		Pruned:          s.Pruned,
		PrunedRemote:    s.PrunedRemote,
		Answers:         answers,
		DurationUS:      s.Duration.Microseconds(),
		Aborted:         aborted,
	}
}

// guaranteedPartial reports whether a partial match's current score is a
// guaranteed lower bound for its root (true under leaf deletion: the
// match completed by deleting every remaining node is a valid answer).
func (e *Engine) guaranteedPartial() bool { return e.cfg.Relax.Has(relax.LeafDeletion) }

// priority computes a match's queue priority under the configured
// discipline. serverID is the queue's server, or -1 for the router queue.
func (e *Engine) priority(m *match, serverID int) float64 {
	switch e.cfg.Queue {
	case QueueFIFO:
		return -float64(m.seq)
	case QueueCurrentScore:
		return m.score
	case QueueMaxNext:
		if serverID >= 0 {
			return m.score + e.maxContrib[serverID]
		}
		return m.maxFinal
	default: // QueueMaxFinal
		return m.maxFinal
	}
}

// spin burns CPU for d, simulating per-operation join cost (Figure 8).
// The deadline is computed once up front; the loop then busy-waits
// against the monotonic clock with no runtime.Gosched — yielding would
// let other server goroutines interleave and under-report the simulated
// cost. Bounded by d, so cancellation polling is not needed here.
// +whirllint:busywait
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// initialMatches evaluates the root server: every document node matching
// the root tag/value and the root's structural predicate spawns a partial
// match.
func (r *run) initialMatches() []*match {
	e := r.Engine
	rootNode := e.query.Root()
	plan := e.plans[0]
	cands := e.ix.NodesMatching(rootNode.Tag, e.vts[0])
	var out []*match
	virtual := dewey.ID{}
	for _, c := range cands {
		r.stats.joinComparisons.Add(1)
		variant := score.Exact
		if !plan.RootPath.HoldsExact(virtual, c.ID) {
			// /tag with a non-root binding: admissible only under edge
			// generalization of the root edge.
			if !e.cfg.Relax.Has(relax.EdgeGeneralization) {
				continue
			}
			variant = score.Relaxed
		}
		contrib := e.cfg.Scorer.Contribution(0, variant, c)
		m := r.arena.get()
		m.bindings[0] = c
		m.visited = 1
		m.score = contrib
		m.maxFinal = contrib + e.sumMax
		m.seq = r.nextSeq()
		r.stats.serverOps.Add(1)
		r.stats.matchesCreated.Add(1)
		out = append(out, m)
	}
	r.traceMatch(obs.MatchesSpawned, len(out))
	return out
}
