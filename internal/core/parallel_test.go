package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/relax"
	"repro/internal/score"
)

// driveParallel runs a ParallelRun to completion on n concurrent
// workers and returns its stats.
func driveParallel(t *testing.T, p *ParallelRun, workers int) Stats {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := NewScratch()
			for !p.IsDone() {
				if p.Step(ws, 4) == 0 {
					// Empty queue but live matches in flight elsewhere.
					time.Sleep(time.Microsecond)
				}
			}
		}(w)
	}
	// One worker seeds; the others spin on the (initially empty) queue.
	p.Seed()
	wg.Wait()
	stats, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestParallelRunMatchesRunContext: the externally-scheduled run must
// produce the same answers as the engine's own loop, for any number of
// driving workers, with the arena poison catching any use of a match
// whose ownership was handed off incorrectly between workers.
func TestParallelRunMatchesRunContext(t *testing.T) {
	SetArenaPoisonForTest(true)
	defer SetArenaPoisonForTest(false)
	ix, q := buildEnv(t, booksXML, "/book[./title and ./info/isbn]")
	for _, rel := range []relax.Relaxation{relax.None, relax.All} {
		cfg := Config{K: 3, Relax: rel, Algorithm: WhirlpoolS, Scorer: score.NewTFIDF(ix, q, score.Sparse)}
		e, err := New(ix, q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		base, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			shared := NewSharedTopK(cfg.K, 0)
			p, err := e.NewParallelRun(context.Background(), shared, 0)
			if err != nil {
				t.Fatal(err)
			}
			stats := driveParallel(t, p, workers)
			if got := shared.Answers(); !almostEqual(scoresFromAnswers(got), scoresOf(base)) {
				t.Fatalf("rel=%d workers=%d: scores %v, baseline %v",
					rel, workers, scoresFromAnswers(got), scoresOf(base))
			}
			if stats.MatchesCreated == 0 || stats.ServerOps == 0 {
				t.Fatalf("rel=%d workers=%d: empty stats %+v", rel, workers, stats)
			}
		}
	}
}

func scoresFromAnswers(as []Answer) []float64 {
	out := make([]float64, len(as))
	for i, a := range as {
		out[i] = a.Score
	}
	return out
}

// TestParallelRunRequiresWhirlpoolS: the other algorithms own their
// control flow and must be rejected up front.
func TestParallelRunRequiresWhirlpoolS(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title]")
	for _, alg := range []Algorithm{WhirlpoolM, LockStep, LockStepNoPrune} {
		cfg := Config{K: 2, Algorithm: alg, Scorer: score.NewTFIDF(ix, q, score.Sparse)}
		e, err := New(ix, q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.NewParallelRun(context.Background(), NewSharedTopK(2, 0), 0); err == nil {
			t.Fatalf("%v: NewParallelRun unexpectedly succeeded", alg)
		}
	}
}

// TestParallelRunCapacityMismatch mirrors runShared's k validation.
func TestParallelRunCapacityMismatch(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title]")
	cfg := Config{K: 2, Algorithm: WhirlpoolS, Scorer: score.NewTFIDF(ix, q, score.Sparse)}
	e, err := New(ix, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewParallelRun(context.Background(), NewSharedTopK(3, 0), 0); err == nil {
		t.Fatal("capacity mismatch unexpectedly accepted")
	}
}

// TestParallelRunCancellation: a cancelled context stops Step within
// one batch, Finish reports the context error, and the abort is
// counted — partial work never reaches the engine totals.
func TestParallelRunCancellation(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/book[./title and ./info/isbn]")
	cfg := Config{K: 3, Relax: relax.All, Algorithm: WhirlpoolS, Scorer: score.NewTFIDF(ix, q, score.Sparse)}
	e, err := New(ix, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p, err := e.NewParallelRun(ctx, NewSharedTopK(cfg.K, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed()
	cancel()
	ws := NewScratch()
	// Post-cancel steps consume nothing: the first popped batch is
	// released wholesale, later ones find the queue drained.
	p.Step(ws, 1<<20)
	if n := p.Step(ws, 1<<20); n != 0 {
		t.Fatalf("post-cancel Step processed %d matches", n)
	}
	if _, err := p.Finish(); err != context.Canceled {
		t.Fatalf("Finish error %v, want context.Canceled", err)
	}
	if got := e.Totals().Aborted; got != 1 {
		t.Fatalf("Aborted total %d, want 1", got)
	}
}

// TestParallelRunZeroSeed: a query with no root candidates is done the
// moment it seeds.
func TestParallelRunZeroSeed(t *testing.T) {
	ix, q := buildEnv(t, booksXML, "/nosuch")
	cfg := Config{K: 2, Algorithm: WhirlpoolS, Scorer: score.NewTFIDF(ix, q, score.Sparse)}
	e, err := New(ix, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.NewParallelRun(context.Background(), NewSharedTopK(2, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed()
	if !p.IsDone() {
		t.Fatal("zero-candidate run not done after Seed")
	}
	if _, err := p.Finish(); err != nil {
		t.Fatal(err)
	}
}
