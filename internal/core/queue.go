package core

import (
	"container/heap"
	"sync"
)

// prioritized pairs a match with its queue priority. Higher priority pops
// first; ties pop in seq (creation) order, keeping single-threaded runs
// deterministic.
type prioritized struct {
	m        *match
	priority float64
}

type matchHeap []prioritized

func (h matchHeap) Len() int { return len(h) }
func (h matchHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].m.seq < h[j].m.seq
}
func (h matchHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x any)   { *h = append(*h, x.(prioritized)) }
func (h *matchHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = prioritized{}
	*h = old[:n-1]
	return it
}

// pq is a plain (single-goroutine) priority queue.
type pq struct{ h matchHeap }

func (q *pq) push(m *match, priority float64) {
	heap.Push(&q.h, prioritized{m: m, priority: priority})
}

func (q *pq) pop() (*match, bool) {
	if len(q.h) == 0 {
		return nil, false
	}
	it := heap.Pop(&q.h).(prioritized)
	return it.m, true
}

func (q *pq) len() int { return len(q.h) }

// blockingPQ is the concurrent priority queue behind Whirlpool-M's server
// and router queues: pop blocks until an item arrives or the queue is
// closed.
type blockingPQ struct {
	mu     sync.Mutex
	cond   *sync.Cond
	h      matchHeap
	closed bool
}

func newBlockingPQ() *blockingPQ {
	q := &blockingPQ{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *blockingPQ) push(m *match, priority float64) {
	q.mu.Lock()
	heap.Push(&q.h, prioritized{m: m, priority: priority})
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until an item is available (returning it with ok = true) or
// the queue is closed and drained of interest (ok = false).
func (q *blockingPQ) pop() (*match, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.h) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.h) == 0 {
		return nil, false
	}
	it := heap.Pop(&q.h).(prioritized)
	return it.m, true
}

// tryPop returns an item if one is immediately available, without
// blocking.
func (q *blockingPQ) tryPop() (*match, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return nil, false
	}
	it := heap.Pop(&q.h).(prioritized)
	return it.m, true
}

// len samples the queue's current depth (observability only: the value
// is stale the moment the lock is released).
func (q *blockingPQ) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

func (q *blockingPQ) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
