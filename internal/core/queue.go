package core

import (
	"sync"
)

// prioritized pairs a match with its queue priority. Higher priority pops
// first; ties pop in seq (creation) order, keeping single-threaded runs
// deterministic. Queues are sanctioned match holders: a queued match is
// owned by the queue until popped.
// +whirllint:matchowner
type prioritized struct {
	m        *match
	priority float64
}

// matchHeap is a binary max-heap of prioritized matches with the sift
// operations written out directly rather than through container/heap:
// the heap.Interface methods box every pushed and popped element into an
// `any`, which costs one heap allocation per queue operation — the
// dominant allocation site of the serving loop once matches themselves
// are arena-recycled. The ordering (priority desc, then seq asc) is
// total, so every correct heap pops the same sequence and determinism
// does not depend on sift details.
type matchHeap []prioritized

func (h matchHeap) less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].m.seq < h[j].m.seq
}

// +whirllint:hotpath
func (h *matchHeap) push(it prioritized) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

// +whirllint:hotpath
func (h *matchHeap) pop() prioritized {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	it := old[n]
	old[n] = prioritized{}
	*h = old[:n]
	if n > 0 {
		old[:n].down(0)
	}
	return it
}

func (h matchHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h matchHeap) down(i int) {
	n := len(h)
	for l := 2*i + 1; l < n; l = 2*i + 1 {
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// pq is a plain (single-goroutine) priority queue.
type pq struct{ h matchHeap }

func (q *pq) push(m *match, priority float64) {
	q.h.push(prioritized{m: m, priority: priority})
}

func (q *pq) pop() (*match, bool) {
	if len(q.h) == 0 {
		return nil, false
	}
	it := q.h.pop()
	return it.m, true
}

func (q *pq) len() int { return len(q.h) }

// blockingPQ is the concurrent priority queue behind Whirlpool-M's server
// and router queues: pop blocks until an item arrives or the queue is
// closed.
type blockingPQ struct {
	mu     sync.Mutex
	cond   *sync.Cond
	h      matchHeap
	closed bool
}

func newBlockingPQ() *blockingPQ {
	q := &blockingPQ{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *blockingPQ) push(m *match, priority float64) {
	q.mu.Lock()
	q.h.push(prioritized{m: m, priority: priority})
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until an item is available (returning it with ok = true) or
// the queue is closed and drained of interest (ok = false).
func (q *blockingPQ) pop() (*match, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.h) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.h) == 0 {
		return nil, false
	}
	it := q.h.pop()
	return it.m, true
}

// tryPop returns an item if one is immediately available, without
// blocking.
func (q *blockingPQ) tryPop() (*match, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return nil, false
	}
	it := q.h.pop()
	return it.m, true
}

// len samples the queue's current depth (observability only: the value
// is stale the moment the lock is released).
func (q *blockingPQ) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

func (q *blockingPQ) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
