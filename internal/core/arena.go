package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/xmltree"
)

// arenaChunk is the number of matches carved per slab allocation: one
// []match block plus one flat bindings block amortize to two heap
// allocations per arenaChunk matches instead of two per match.
const arenaChunk = 256

// arenaPoison, when set by a test, makes release scramble every field of
// a recycled match before it reaches the freelist, so any use of a match
// past its release shows up as corrupted scores or nil bindings instead
// of silently reading stale-but-plausible data.
var arenaPoison atomic.Bool

// SetArenaPoisonForTest toggles poison-on-release globally. It exists
// for cross-package property tests (internal/shard's work-stealing
// equivalence suite) that need use-after-release bugs across shard
// freelists to surface as corrupted answers; production code must
// never call it.
func SetArenaPoisonForTest(v bool) { arenaPoison.Store(v) }

// matchArena recycles the run's dead matches — pruned, completed, or
// consumed by a server operation — instead of dropping them for the GC.
// Section 5.2.1's server operation spawns one match per extension; on a
// pinned Q2 run that is ~62k matches plus as many bindings slices, all
// short-lived. The arena caps that churn: bindings come from chunked
// flat slabs (queries are capped at 64 nodes by Config.validate, so one
// slab holds arenaChunk vectors), and a released match returns to a
// freelist with its bindings slice attached, ready to be overwritten.
//
// Ownership rules (enforced by whirllint's arenaescape analyzer):
//
//   - a *match obtained from get is owned by exactly one holder at a
//     time: a queue, a batch slice, or the goroutine processing it;
//   - release transfers ownership back to the arena — the caller must
//     not touch the match afterwards;
//   - anything that outlives the match must copy out of it, never alias
//     it: the top-k set copies bindings into entry-owned storage
//     (topkSet.offer) precisely so completed matches can be released.
//
// Whirlpool-S and the LockStep algorithms run single-goroutine, so they
// get one unlocked shard. Whirlpool-M's server workers allocate and
// release concurrently, so the arena shards its freelists (each behind
// its own mutex) and every match remembers its home shard: get spreads
// over shards round-robin, release returns to the home shard, keeping
// goroutines from serializing on a single freelist lock.
type matchArena struct {
	n        int // bindings per match == query size
	disabled bool
	// locked is set for concurrent (Whirlpool-M) arenas: shard mutexes
	// are taken on every get/release. It is independent of the shard
	// count — GOMAXPROCS=1 still runs multiple goroutines.
	locked bool
	shards []arenaShard
	ctr    atomic.Uint32 // round-robin get cursor (concurrent arenas)
}

// arenaShard is one freelist plus its slab cursor. The pad keeps
// neighbouring shards out of one cache line under Whirlpool-M.
// +whirllint:matchowner
type arenaShard struct {
	mu   sync.Mutex
	free []*match
	slab []match         // current match slab, carved sequentially
	bnd  []*xmltree.Node // current flat bindings slab
	_    [64]byte
}

// newMatchArena sizes the arena for matches of n bindings. concurrent
// selects the sharded (locked) layout for Whirlpool-M; disabled turns
// every get into a plain allocation and release into a no-op — the
// allocation-baseline and debugging escape hatch (Config.DisableReuse).
func newMatchArena(n int, concurrent, disabled bool) *matchArena {
	a := &matchArena{n: n, disabled: disabled, locked: concurrent && !disabled}
	nshards := 1
	if a.locked {
		nshards = runtime.GOMAXPROCS(0)
		if nshards > 16 {
			nshards = 16
		}
		if nshards < 1 {
			nshards = 1
		}
	}
	a.shards = make([]arenaShard, nshards)
	return a
}

// get returns a cleared match with a bindings slice of the arena's
// width: recycled when the freelist has one, otherwise carved from the
// current slab.
// +whirllint:hotpath
func (a *matchArena) get() *match {
	if a.disabled {
		return a.getUnpooled()
	}
	idx := 0
	s := &a.shards[0]
	if a.locked {
		idx = int(a.ctr.Add(1)) % len(a.shards)
		s = &a.shards[idx]
		s.mu.Lock()
	}
	m := s.getLocked(a.n, int32(idx))
	if a.locked {
		s.mu.Unlock()
	}
	return m
}

// getUnpooled is the reuse-disabled path: matches come straight from
// the heap so the GC (not the freelist) reclaims them — the baseline
// configurations measure against exactly this cost.
// +whirllint:allocok arena reuse disabled by config: every get deliberately heap-allocates
func (a *matchArena) getUnpooled() *match {
	return &match{bindings: make([]*xmltree.Node, a.n)}
}

// getLocked pops the freelist or carves the slab. Callers hold s.mu
// when the arena is sharded; the single-shard layout has no lock to
// hold, which the annotation records.
// +whirllint:locked
// +whirllint:allocok amortized: one slab of arenaChunk matches per refill, not one per get
func (s *arenaShard) getLocked(n int, home int32) *match {
	if ln := len(s.free); ln > 0 {
		m := s.free[ln-1]
		s.free[ln-1] = nil
		s.free = s.free[:ln-1]
		clear(m.bindings)
		m.visited, m.missing = 0, 0
		m.score, m.maxFinal = 0, 0
		m.seq = 0
		return m
	}
	if len(s.slab) == 0 {
		s.slab = make([]match, arenaChunk)
		s.bnd = make([]*xmltree.Node, arenaChunk*n)
	}
	m := &s.slab[0]
	s.slab = s.slab[1:]
	m.bindings = s.bnd[:n:n]
	s.bnd = s.bnd[n:]
	m.home = home
	return m
}

// release returns a dead match to the arena. The caller gives up
// ownership: the match may be handed out again by the very next get, so
// no reference to it — or to its bindings slice — may be retained.
// Nil-safe; a no-op when reuse is disabled.
// +whirllint:hotpath
func (a *matchArena) release(m *match) {
	if m == nil || a.disabled {
		return
	}
	if arenaPoison.Load() {
		for i := range m.bindings {
			m.bindings[i] = nil
		}
		m.visited, m.missing = ^uint64(0), ^uint64(0)
		m.score, m.maxFinal = math.NaN(), math.Inf(-1)
		m.seq = -1
	}
	s := &a.shards[m.home]
	if a.locked {
		s.mu.Lock()
		s.free = append(s.free, m)
		s.mu.Unlock()
		return
	}
	s.free = append(s.free, m)
}

// release is the run-level entry point every algorithm uses when a
// match dies: pruned, completed, failed an inner join, or consumed by a
// server operation that spawned its extensions.
func (r *run) release(m *match) { r.arena.release(m) }
