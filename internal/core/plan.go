package core

import (
	"fmt"
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
)

// PlanStats supplies exact per-predicate statistics from a corpus
// structure synopsis (internal/synopsis implements it), so plans can be
// compiled without touching the index — and, on a sharded corpus,
// without fanning a probe out to every shard. ok must be false when the
// source cannot answer the (anchor, axis, tag) combination; the
// compiler then falls back to an index probe.
type PlanStats interface {
	Predicate(anchorTag string, axis dewey.Axis, tag string) (index.PredicateStats, bool)
}

// Plan is a compiled, immutable query plan: everything engine
// construction needs that depends only on (query shape, relaxation
// mode, corpus statistics) — server plans, a scorer, per-server routing
// statistics and a cost-based static order. Plans are safe to share
// across engines and goroutines and to cache under their Key; New
// accepts one via Config.Plan and skips the corresponding per-engine
// work.
type Plan struct {
	// Key is the canonical cache key the plan was compiled under
	// (pattern.CanonicalKey plus scoring/relaxation qualifiers); purely
	// informational for the engine.
	Key string
	// Query is the pattern the plan was compiled for. Engines built
	// from the plan must evaluate a query with the same String().
	Query *pattern.Query
	// Relax is the relaxation mode the server plans encode.
	Relax relax.Relaxation
	// Plans are the per-node server plans (Algorithm 1).
	Plans []*relax.ServerPlan
	// Scorer is the scorer compiled with the plan. The engine does not
	// read it from here — whirlpool's facade passes it through
	// Config.Scorer — but caching it beside the plans is what makes a
	// cache hit skip scorer construction too.
	Scorer score.Scorer
	// Fanout[id] is the mean number of node-id extensions per
	// satisfying root; SatisfyProb[id] the fraction of roots with at
	// least one. Index 0 is unused.
	Fanout      []float64
	SatisfyProb []float64
	// Order is the cost-based static server order (fewest expected
	// alive matches first), used when Config.Order is nil.
	Order []int
}

// CompilePlan builds a Plan for q under relaxation r. Statistics come
// from stats where it can answer (value-free predicates); only the rest
// probe ix. The resulting engine behavior is identical to New without a
// plan — same server plans, same statistics — except that the static
// order defaults to the cost-based one instead of ascending node IDs.
func CompilePlan(ix index.Source, stats PlanStats, q *pattern.Query, r relax.Relaxation, scorer score.Scorer, key string) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{
		Key:         key,
		Query:       q,
		Relax:       r,
		Plans:       relax.BuildPlans(q, r),
		Scorer:      scorer,
		Fanout:      make([]float64, q.Size()),
		SatisfyProb: make([]float64, q.Size()),
	}
	rootTag := q.Root().Tag
	for id := 1; id < q.Size(); id++ {
		axis := p.Plans[id].ProbeAxis()
		vt := index.Test(q.Nodes[id].ValueOp, q.Nodes[id].Value)
		var st index.PredicateStats
		resolved := false
		if stats != nil && vt.Any() {
			st, resolved = stats.Predicate(rootTag, axis, q.Nodes[id].Tag)
		}
		if !resolved {
			st = ix.Predicate(rootTag, axis, q.Nodes[id].Tag, vt)
		}
		p.Fanout[id] = st.MeanFanout()
		p.SatisfyProb[id] = st.Selectivity()
	}
	p.Order = orderByAlive(p.SatisfyProb, p.Fanout, r)
	return p, nil
}

// serverPlans returns the compiled server plans, nil-safe so callers
// can try a possibly-absent plan first and fall back to BuildPlans.
func (p *Plan) serverPlans() []*relax.ServerPlan {
	if p == nil {
		return nil
	}
	return p.Plans
}

// checkAgainst verifies the plan is usable for (q, cfg): compiled for
// the same pattern and relaxation mode.
func (p *Plan) checkAgainst(q *pattern.Query, cfg *Config) error {
	if p.Relax != cfg.Relax {
		return fmt.Errorf("core: plan compiled for relaxation %v, config wants %v", p.Relax, cfg.Relax)
	}
	if len(p.Plans) != q.Size() || len(p.Fanout) != q.Size() || len(p.SatisfyProb) != q.Size() {
		return fmt.Errorf("core: plan sized for %d query nodes, query has %d", len(p.Plans), q.Size())
	}
	if p.Query != q && p.Query.String() != q.String() {
		return fmt.Errorf("core: plan compiled for %s, engine query is %s", p.Query, q)
	}
	return nil
}

// orderByAlive sorts the non-root servers by increasing expected alive
// partial matches per input match — selectivity × fanout, plus the
// outer-join null extension under leaf deletion — tie-breaking on node
// ID so the order is deterministic.
func orderByAlive(satisfyProb, fanout []float64, r relax.Relaxation) []int {
	type cost struct {
		id    int
		alive float64
	}
	costs := make([]cost, 0, len(satisfyProb)-1)
	for id := 1; id < len(satisfyProb); id++ {
		alive := satisfyProb[id] * fanout[id]
		if r.Has(relax.LeafDeletion) {
			alive += 1 - satisfyProb[id]
		}
		costs = append(costs, cost{id: id, alive: alive})
	}
	sort.SliceStable(costs, func(i, j int) bool {
		if costs[i].alive != costs[j].alive {
			return costs[i].alive < costs[j].alive
		}
		return costs[i].id < costs[j].id
	})
	order := make([]int, len(costs))
	for i, c := range costs {
		order[i] = c.id
	}
	return order
}
