package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

// TestPropTopkSetMatchesSort drives the top-k set with random offer
// sequences and checks it against a straightforward sort of the best
// score per root.
// +whirllint:exactscore the model and the set must agree bit-for-bit for determinism
func TestPropTopkSetMatchesSort(t *testing.T) {
	f := func(seed int64, kRaw uint8, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw)%5 + 1
		n := int(nRaw)%40 + 1
		tk := newTopkSet(k, 0, false)
		best := make(map[int]float64)
		for i := 0; i < n; i++ {
			rootOrd := r.Intn(8)
			sc := float64(r.Intn(100)) / 10
			m := &match{
				bindings: []*xmltree.Node{{Tag: "r", Ord: rootOrd}},
				visited:  1,
				score:    sc,
				maxFinal: sc,
				seq:      int64(i),
			}
			tk.offer(m, 0)
			if cur, ok := best[rootOrd]; !ok || sc > cur {
				best[rootOrd] = sc
			}
		}
		// Expected top-k scores.
		var want []float64
		for _, sc := range best {
			want = append(want, sc)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if len(want) > k {
			want = want[:k]
		}
		got := tk.answers()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Score != want[i] {
				return false
			}
		}
		// Threshold invariant: defined iff k roots known; equals the
		// k-th best.
		th, ok := tk.threshold()
		if ok != (len(best) >= k) {
			return false
		}
		if ok && th != want[len(want)-1] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMaxFinalIsAdmissible checks on random engine runs that no
// final answer score ever exceeds what the match's maxFinal promised at
// any point — indirectly, that offered scores never exceed maxFinal.
func TestPropMaxFinalIsAdmissible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r)
		q := randomQuery(r)
		ix, s, err := buildRandomEngineEnv(doc, q)
		if err != nil {
			return true // degenerate query; skip
		}
		eng, err := New(ix, q, Config{K: 3, Relax: relaxAllForTest, Algorithm: WhirlpoolS, Scorer: s})
		if err != nil {
			return false
		}
		res, err := eng.Run()
		if err != nil {
			return false
		}
		// Every answer's score must be bounded by the sum of max
		// contributions (the loosest maxFinal).
		bound := s.MaxContribution(0)
		for id := 1; id < q.Size(); id++ {
			bound += s.MaxContribution(id)
		}
		for _, a := range res.Answers {
			if a.Score > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
