package core

import (
	"context"
	"math"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/xmltree"
)

// run is the mutable state of a single evaluation.
type run struct {
	*Engine
	topk *topkSet
	// arena recycles dead matches and their bindings for this run; see
	// internal/core/arena.go for the ownership rules.
	arena *matchArena
	// shardID identifies this run within a sharded evaluation sharing
	// topk with other engines (0 for a standalone run). Offers carry it
	// so prunes caused by another shard's threshold can be counted.
	shardID int32
	// sharded is set when sibling shards share topk; standalone runs
	// skip the threshold-source attribution (one atomic load per prune)
	// it exists for.
	sharded bool
	stats   runStats
	seq     atomic.Int64
	ctx     context.Context
	// lastThreshold holds the float bits of the highest currentTopK
	// value already emitted to the trace sink, deduplicating the
	// threshold trajectory. Initialized to -Inf by RunContext.
	lastThreshold atomic.Uint64
}

// cancelled reports whether the run's context has been cancelled.
func (r *run) cancelled() bool {
	select {
	case <-r.ctx.Done():
		return true
	default:
		return false
	}
}

func (r *run) nextSeq() int64 { return r.seq.Add(1) }

// runStats collects instrumentation with atomics so Whirlpool-M's
// goroutines can share it.
type runStats struct {
	serverOps       atomic.Int64
	joinComparisons atomic.Int64
	matchesCreated  atomic.Int64
	pruned          atomic.Int64
	prunedRemote    atomic.Int64
}

func (s *runStats) snapshot() Stats {
	return Stats{
		ServerOps:       s.serverOps.Load(),
		JoinComparisons: s.joinComparisons.Load(),
		MatchesCreated:  s.matchesCreated.Load(),
		Pruned:          s.pruned.Load(),
		PrunedRemote:    s.prunedRemote.Load(),
	}
}

func makeBindings(n int, root *xmltree.Node) []*xmltree.Node {
	b := make([]*xmltree.Node, n)
	b[0] = root
	return b
}

// Trace helpers. Each is nil-checked so the default (no sink) costs one
// predictable branch per call site and never allocates; arguments are
// scalars, so a configured sink sees no per-event allocation either.

func (r *run) traceMatch(kind obs.Lifecycle, n int) {
	if t := r.cfg.Trace; t != nil && n > 0 {
		t.MatchLifecycle(kind, n)
	}
}

func (r *run) traceRoute(m *match, next int) {
	if t := r.cfg.Trace; t != nil {
		t.RouteDecision(m.seq, next)
	}
}

func (r *run) traceDepth(server, depth int) {
	if t := r.cfg.Trace; t != nil {
		t.QueueDepth(server, depth)
	}
}

// prune discards a partial match against currentTopK, keeping the
// counters and the trace in step. A prune is "remote" when the current
// threshold was produced by an entry offered from another shard — the
// cross-shard pruning the sharded execution layer exists to create.
// Standalone runs have no sibling shards, so they skip the
// threshold-source load entirely (PrunedRemote is 0 by definition).
func (r *run) prune() {
	r.stats.pruned.Add(1)
	if r.sharded {
		if src := r.topk.thresholdSrc(); src >= 0 && src != r.shardID {
			r.stats.prunedRemote.Add(1)
		}
	}
	r.traceMatch(obs.MatchesPruned, 1)
}

// traceThreshold emits the prune-threshold trajectory: each call
// forwards the current threshold to the sink iff it exceeds the last
// emitted value. The exact >= comparison is deliberate — it
// deduplicates repeats of the same float, not a score decision — and
// the CAS keeps concurrent Whirlpool-M emitters from double-reporting
// one value (trajectory order across goroutines stays best-effort).
// +whirllint:exactscore
func (r *run) traceThreshold() {
	sink := r.cfg.Trace
	if sink == nil {
		return
	}
	t, ok := r.topk.threshold()
	if !ok {
		return
	}
	old := r.lastThreshold.Load()
	for math.Float64frombits(old) < t {
		if r.lastThreshold.CompareAndSwap(old, math.Float64bits(t)) {
			sink.Threshold(t)
			return
		}
		old = r.lastThreshold.Load()
	}
}

// checkTopK implements Section 5.2.2's checkTopK: offer the match's
// guaranteed score to the top-k set, then decide whether the match stays
// alive. Complete matches never stay alive (they are done); matches whose
// maximum possible final score cannot beat currentTopK are pruned.
func (r *run) checkTopK(m *match) (alive bool) {
	complete := m.complete(r.allVisited)
	if complete || r.guaranteedPartial() {
		r.topk.offer(m, r.shardID)
		r.traceThreshold()
	}
	if complete {
		r.traceMatch(obs.MatchesCompleted, 1)
		return false
	}
	if r.prunable(m) {
		r.prune()
		return false
	}
	return true
}

// pruneEps absorbs floating-point noise in the ≤ comparison below.
const pruneEps = 1e-12

// prunable reports whether m cannot improve the top-k set: its maximum
// possible final score does not exceed currentTopK. Ties are prunable —
// k answers with at least that score are already guaranteed, and a tying
// match can neither displace an entry nor raise its own root's entry
// above the threshold.
func (r *run) prunable(m *match) bool {
	t, ok := r.topk.threshold()
	return ok && m.maxFinal <= t+pruneEps
}

// nextServer implements the routing decision (Section 6.1.4) for the
// match's unvisited servers.
func (r *run) nextServer(m *match) int {
	switch r.cfg.Routing {
	case RoutingStatic:
		for _, id := range r.order {
			if !m.isVisited(id) {
				return id
			}
		}
	case RoutingMaxScore, RoutingMinScore:
		best, bestVal := -1, 0.0
		for _, id := range r.order {
			if m.isVisited(id) {
				continue
			}
			v := r.expContrib[id] * r.satisfyProb[id]
			if best == -1 ||
				(r.cfg.Routing == RoutingMaxScore && v > bestVal) ||
				(r.cfg.Routing == RoutingMinScore && v < bestVal) {
				best, bestVal = id, v
			}
		}
		return best
	case RoutingMinAlive:
		// One atomic threshold load per routing decision: currentTopK is
		// memoized here instead of re-read inside estimateAliveAt for
		// every candidate server.
		t, ok := r.topk.threshold()
		best, bestVal := -1, 0.0
		for _, id := range r.order {
			if m.isVisited(id) {
				continue
			}
			v := r.estimateAliveAt(m, id, t, ok)
			if best == -1 || v < bestVal {
				best, bestVal = id, v
			}
		}
		return best
	}
	return -1
}

// estimateAlive predicts how many extensions of m would survive pruning
// after processing at server id — the min_alive_partial_matches cost
// model: expected fanout × the fraction of the contribution range that
// keeps the extension's maximum possible final score above currentTopK,
// plus the survival of the null (leaf-deleted) extension when the server
// is expected to find nothing.
func (r *run) estimateAlive(m *match, id int) float64 {
	t, ok := r.topk.threshold()
	return r.estimateAliveAt(m, id, t, ok)
}

// estimateAliveAt is estimateAlive against a caller-supplied threshold
// snapshot, so nextServer's candidate loop loads currentTopK once.
func (r *run) estimateAliveAt(m *match, id int, t float64, ok bool) float64 {
	maxC, minC := r.maxContrib[id], r.minContrib[id]
	pSat, fan := r.satisfyProb[id], r.fanout[id]
	frac := 1.0
	nullSurvives := 1.0
	if ok {
		need := t - m.maxFinal + maxC // minimum contribution to survive
		switch {
		case need <= minC:
			frac = 1
		case need > maxC:
			frac = 0
		case maxC > minC:
			frac = (maxC - need) / (maxC - minC)
		default:
			frac = 0
		}
		if m.maxFinal-maxC < t {
			nullSurvives = 0
		}
	}
	return pSat*fan*frac + (1-pSat)*nullSurvives
}
