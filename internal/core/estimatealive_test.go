package core

import (
	"math"
	"testing"
)

// aliveRun builds a bare run around the min_alive_partial_matches cost
// model's inputs for server 1.
func aliveRun(maxC, minC, pSat, fan float64, tk *topkSet) *run {
	return &run{
		Engine: &Engine{
			maxContrib:  []float64{0, maxC},
			minContrib:  []float64{0, minC},
			satisfyProb: []float64{0, pSat},
			fanout:      []float64{0, fan},
		},
		topk: tk,
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestEstimateAliveNoThreshold(t *testing.T) {
	// Without a threshold nothing can be pruned: every expected
	// extension survives, and so does the null extension.
	r := aliveRun(4, 2, 0.5, 3, newTopkSet(1, 0, false))
	m := mkMatch(0, 0, 1)
	m.maxFinal = 3
	if got := r.estimateAlive(m, 1); !almost(got, 0.5*3+0.5) {
		t.Fatalf("estimateAlive without threshold = %v, want %v", got, 0.5*3+0.5)
	}
}

func TestEstimateAliveNeedAtMostMinC(t *testing.T) {
	// need = t - maxFinal + maxC = 2 - 4.5 + 4 = 1.5 ≤ minC: even the
	// weakest contribution keeps the extension alive (frac = 1). The
	// null extension dies: maxFinal - maxC = 0.5 < t.
	r := aliveRun(4, 2, 0.5, 3, newTopkSet(1, 2, true))
	m := mkMatch(0, 0, 1)
	m.maxFinal = 4.5
	if got := r.estimateAlive(m, 1); !almost(got, 0.5*3) {
		t.Fatalf("estimateAlive need≤minC = %v, want %v", got, 0.5*3)
	}
}

func TestEstimateAliveNeedAboveMaxC(t *testing.T) {
	// need = 2 - 1.5 + 4 = 4.5 > maxC: no contribution can save the
	// extension and the null extension is below threshold too.
	r := aliveRun(4, 2, 0.5, 3, newTopkSet(1, 2, true))
	m := mkMatch(0, 0, 1)
	m.maxFinal = 1.5
	if got := r.estimateAlive(m, 1); got != 0 {
		t.Fatalf("estimateAlive need>maxC = %v, want 0", got)
	}
}

func TestEstimateAliveFraction(t *testing.T) {
	// need = 2 - 3 + 4 = 3 sits mid-range: frac = (4-3)/(4-2) = 0.5.
	r := aliveRun(4, 2, 0.5, 3, newTopkSet(1, 2, true))
	m := mkMatch(0, 0, 1)
	m.maxFinal = 3
	if got := r.estimateAlive(m, 1); !almost(got, 0.5*3*0.5) {
		t.Fatalf("estimateAlive mid-range = %v, want %v", got, 0.5*3*0.5)
	}
}

func TestEstimateAliveDegenerateRange(t *testing.T) {
	// maxC == minC: the contribution range is a point, so frac is all
	// or nothing — no division by a zero-width range.
	r := aliveRun(3, 3, 0.5, 2, newTopkSet(1, 2, true))

	// need = 2 - 6 + 3 = -1 ≤ minC → frac 1; null survives (6-3 ≥ 2).
	m := mkMatch(0, 0, 1)
	m.maxFinal = 6
	if got := r.estimateAlive(m, 1); !almost(got, 0.5*2+0.5) {
		t.Fatalf("degenerate range, need≤minC: %v, want %v", got, 0.5*2+0.5)
	}

	// need = 2 - 1.9 + 3 = 3.1 > maxC → frac 0; null dies.
	m.maxFinal = 1.9
	if got := r.estimateAlive(m, 1); got != 0 {
		t.Fatalf("degenerate range, need>maxC: %v, want 0", got)
	}
}

func TestPrunableTieAtEpsilon(t *testing.T) {
	// Section 5.2.2 bound with tie pruning: maxFinal ≤ t + pruneEps is
	// prunable; anything clearly above the noise band is not.
	const t0 = 1.0
	r := &run{Engine: &Engine{}, topk: newTopkSet(1, t0, true)}

	cases := []struct {
		name     string
		maxFinal float64
		want     bool
	}{
		{"clearly below", t0 - 0.1, true},
		{"exact tie", t0, true},
		{"tie at exactly t+pruneEps", t0 + pruneEps, true},
		{"just above the noise band", t0 + 3*pruneEps, false},
		{"clearly above", t0 + 0.1, false},
	}
	for _, tc := range cases {
		m := mkMatch(0, 0, 1)
		m.maxFinal = tc.maxFinal
		if got := r.prunable(m); got != tc.want {
			t.Errorf("%s: prunable(maxFinal=%v) = %v, want %v",
				tc.name, tc.maxFinal, got, tc.want)
		}
	}
}

func TestPrunableWithoutThreshold(t *testing.T) {
	r := &run{Engine: &Engine{}, topk: newTopkSet(2, 0, false)}
	m := mkMatch(0, 0, 1)
	m.maxFinal = -1
	if r.prunable(m) {
		t.Fatal("nothing is prunable before a threshold exists")
	}
}
