// Package keyword implements top-k keyword search over XML elements with
// Fagin-family algorithms — the mediator-style related work the paper
// positions Whirlpool against (Section 3, [13, 14], and [19]'s "bag of
// single path queries"). Each scope element (e.g. every <item>) is a
// candidate answer scored Σ over query words of idf(w)·tf(w, element),
// where tf counts occurrences in the element's descendant text.
//
// Two classic algorithms are provided over per-word postings lists sorted
// by descending tf:
//
//   - TA (threshold algorithm): round-robin sorted access plus random
//     access to complete each seen candidate; stops when the threshold
//     (the score an unseen candidate could still reach) drops to the
//     current k-th score.
//   - NRA (no random access): maintains [lower, upper] score bounds per
//     candidate from sorted access only.
//
// Both are cross-checked against a full scan in the tests; their access
// counts are reported so the early-termination behavior is observable.
package keyword

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode"

	"repro/internal/xmltree"
)

// ErrBadQuery marks keyword-query validation failures (no searchable
// words, non-positive k). Callers can errors.Is against it to map the
// failure to a client error rather than a server one.
var ErrBadQuery = errors.New("keyword: bad query")

// Tokenize lower-cases s and splits it into maximal alphanumeric runs.
func Tokenize(s string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return words
}

// Entry is one postings entry: a scope element and the term frequency of
// the word within it.
type Entry struct {
	Node *xmltree.Node
	TF   int
}

// Index is an inverted word index over the text of scope elements.
type Index struct {
	scopeTag string
	scopes   []*xmltree.Node
	postings map[string][]Entry     // sorted by TF desc, then Ord asc
	direct   map[string]map[int]int // word -> scope ord -> tf (random access)
	idf      map[string]float64
}

// Build indexes every element with scopeTag in doc: the words of all
// text values in the element's subtree (inclusive) are counted.
func Build(doc *xmltree.Document, scopeTag string) *Index {
	ix := &Index{
		scopeTag: scopeTag,
		postings: make(map[string][]Entry),
		direct:   make(map[string]map[int]int),
		idf:      make(map[string]float64),
	}
	for _, n := range doc.Nodes {
		if n.Tag != scopeTag {
			continue
		}
		ix.scopes = append(ix.scopes, n)
		counts := make(map[string]int)
		collect(n, counts)
		for w, tf := range counts {
			ix.postings[w] = append(ix.postings[w], Entry{Node: n, TF: tf})
			m := ix.direct[w]
			if m == nil {
				m = make(map[int]int)
				ix.direct[w] = m
			}
			m[n.Ord] = tf
		}
	}
	nScopes := float64(len(ix.scopes))
	for w, list := range ix.postings {
		sort.Slice(list, func(i, j int) bool {
			if list[i].TF != list[j].TF {
				return list[i].TF > list[j].TF
			}
			return list[i].Node.Ord < list[j].Node.Ord
		})
		ix.postings[w] = list
		ix.idf[w] = math.Log(1 + nScopes/float64(len(list)))
	}
	return ix
}

func collect(n *xmltree.Node, counts map[string]int) {
	for _, w := range Tokenize(n.Value) {
		counts[w]++
	}
	for _, c := range n.Children {
		collect(c, counts)
	}
}

// Scopes returns the number of indexed scope elements.
func (ix *Index) Scopes() int { return len(ix.scopes) }

// IDF returns the word's inverse document frequency over scope elements
// (0 for words absent from the index).
func (ix *Index) IDF(word string) float64 { return ix.idf[word] }

// Postings returns the word's postings, sorted by descending tf.
func (ix *Index) Postings(word string) []Entry { return ix.postings[word] }

// TF performs random access: the word's frequency within the scope
// element with the given preorder ordinal.
func (ix *Index) TF(word string, ord int) int { return ix.direct[word][ord] }

// Answer is one ranked keyword-search result.
type Answer struct {
	Node  *xmltree.Node
	Score float64
}

// Stats counts the list accesses an algorithm performed.
type Stats struct {
	SortedAccesses int
	RandomAccesses int
}

// score aggregates Σ idf(w)·tf(w, node).
func (ix *Index) score(ord int, words []string) float64 {
	total := 0.0
	for _, w := range words {
		total += ix.idf[w] * float64(ix.TF(w, ord))
	}
	return total
}

// TopKScan is the brute-force baseline: score every scope element.
func (ix *Index) TopKScan(query string, k int) []Answer {
	words := dedup(Tokenize(query))
	answers := make([]Answer, 0, len(ix.scopes))
	for _, n := range ix.scopes {
		if s := ix.score(n.Ord, words); s > 0 {
			answers = append(answers, Answer{Node: n, Score: s})
		}
	}
	sortAnswers(answers)
	return trim(answers, k)
}

// TopKTA runs Fagin's threshold algorithm: round-robin sorted access over
// the query words' postings, random access to complete each newly seen
// candidate, terminating when k candidates score at least the threshold
// Σ idf(w)·tf_w(current depth). A query that tokenizes to nothing or a
// non-positive k is a validation error (ErrBadQuery), distinguishing
// "you asked a malformed question" from a genuinely empty result.
func (ix *Index) TopKTA(query string, k int) ([]Answer, Stats, error) {
	words := dedup(Tokenize(query))
	var st Stats
	if len(words) == 0 {
		return nil, st, fmt.Errorf("%w: no searchable words in %q", ErrBadQuery, query)
	}
	if k < 1 {
		return nil, st, fmt.Errorf("%w: k must be ≥ 1, got %d", ErrBadQuery, k)
	}
	lists := make([][]Entry, len(words))
	for i, w := range words {
		lists[i] = ix.postings[w]
	}
	seen := make(map[int]float64)
	var scoreBuf []float64 // reused across depths by the termination test
	depth := 0
	for {
		progressed := false
		for i, w := range words {
			if depth >= len(lists[i]) {
				continue
			}
			progressed = true
			st.SortedAccesses++
			e := lists[i][depth]
			if _, ok := seen[e.Node.Ord]; !ok {
				// Complete the candidate by random access on the other
				// words.
				total := 0.0
				for j, w2 := range words {
					if j == i {
						total += ix.idf[w] * float64(e.TF)
						continue
					}
					st.RandomAccesses++
					total += ix.idf[w2] * float64(ix.TF(w2, e.Node.Ord))
				}
				seen[e.Node.Ord] = total
			}
		}
		if !progressed {
			break
		}
		// Threshold: best score an unseen candidate could still attain.
		threshold := 0.0
		for i, w := range words {
			d := depth
			if d >= len(lists[i]) {
				continue
			}
			threshold += ix.idf[w] * float64(lists[i][d].TF)
		}
		var done bool
		done, scoreBuf = kthAtLeast(seen, k, threshold, scoreBuf)
		if done {
			break
		}
		depth++
	}
	return ix.finalize(seen, k), st, nil
}

// TopKNRA runs the no-random-access algorithm: candidates carry
// [lower, upper] bounds refined by sorted access; termination when the
// k-th lower bound is at least every other candidate's upper bound and
// the unseen threshold.
func (ix *Index) TopKNRA(query string, k int) ([]Answer, Stats) {
	words := dedup(Tokenize(query))
	var st Stats
	lists := make([][]Entry, len(words))
	for i, w := range words {
		lists[i] = ix.postings[w]
	}
	type bounds struct {
		lower float64
		seen  []bool
	}
	cands := make(map[int]*bounds)
	lastTF := make([]float64, len(words)) // tf at current depth per list
	var lowers []float64                  // reused across depths
	depth := 0
	for {
		progressed := false
		for i, w := range words {
			if depth >= len(lists[i]) {
				lastTF[i] = 0
				continue
			}
			progressed = true
			st.SortedAccesses++
			e := lists[i][depth]
			lastTF[i] = float64(e.TF)
			b := cands[e.Node.Ord]
			if b == nil {
				b = &bounds{seen: make([]bool, len(words))}
				cands[e.Node.Ord] = b
			}
			b.lower += ix.idf[w] * float64(e.TF)
			b.seen[i] = true
		}
		if !progressed {
			break
		}
		// Upper bound per candidate: lower + Σ over unseen words of
		// idf·(tf at current depth). Unseen-candidate threshold: Σ over
		// all words.
		unseenMax := 0.0
		for i, w := range words {
			unseenMax += ix.idf[w] * lastTF[i]
		}
		lowers = lowers[:0]
		for _, b := range cands {
			lowers = append(lowers, b.lower)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(lowers)))
		if len(lowers) >= k {
			kth := lowers[k-1]
			done := kth >= unseenMax
			if done {
				for _, b := range cands {
					upper := b.lower
					for i, w := range words {
						if !b.seen[i] {
							upper += ix.idf[w] * lastTF[i]
						}
					}
					if b.lower < kth && upper > kth {
						done = false
						break
					}
				}
			}
			if done {
				break
			}
		}
		depth++
	}
	// NRA's lower bounds equal final scores once every list is fully
	// consumed or the candidate was seen in all lists; completing with
	// random access here would violate NRA, so finalize with the exact
	// scores for result fidelity (the access counts above still reflect
	// NRA's early stop).
	final := make(map[int]float64, len(cands))
	for ord := range cands {
		final[ord] = ix.score(ord, words)
	}
	return ix.finalize(final, k), st
}

func (ix *Index) finalize(scores map[int]float64, k int) []Answer {
	byOrd := make(map[int]*xmltree.Node, len(ix.scopes))
	for _, n := range ix.scopes {
		byOrd[n.Ord] = n
	}
	answers := make([]Answer, 0, len(scores))
	for ord, s := range scores {
		if s > 0 {
			answers = append(answers, Answer{Node: byOrd[ord], Score: s})
		}
	}
	sortAnswers(answers)
	return trim(answers, k)
}

// sortAnswers orders answers best first. The score comparison is
// deliberately exact: equal scores tie-break on the node ordinal so
// TA/NRA/scan return identical rankings.
// +whirllint:exactscore
func sortAnswers(answers []Answer) {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Score != answers[j].Score {
			return answers[i].Score > answers[j].Score
		}
		return answers[i].Node.Ord < answers[j].Node.Ord
	})
}

func trim(answers []Answer, k int) []Answer {
	if len(answers) > k {
		return answers[:k]
	}
	return answers
}

// taEps absorbs floating-point noise in TA's termination test, the
// same way pruneEps does for the engine's pruning bound
// (internal/core/run.go): idf·tf sums accumulate in different orders
// on the sorted- and random-access paths, so a raw >= could keep
// scanning one depth past the true stopping point — or stop one early.
const taEps = 1e-12

// kthAtLeast reports whether the k-th best seen score reaches the
// threshold. buf is a scratch slice reused across calls (TA invokes this
// once per depth); the possibly-regrown buffer is returned for the next
// call.
func kthAtLeast(seen map[int]float64, k int, threshold float64, buf []float64) (bool, []float64) {
	if len(seen) < k {
		return false, buf
	}
	buf = buf[:0]
	for _, s := range seen {
		buf = append(buf, s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(buf)))
	return buf[k-1] >= threshold-taEps, buf
}

func dedup(words []string) []string {
	seen := make(map[string]bool, len(words))
	out := words[:0]
	for _, w := range words {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
