package keyword

import (
	"testing"

	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// TestKeywordFlattenRoundTrip checks that Flatten → Unflatten rebuilds
// an index that answers identically to the original on a real corpus.
// Round-trip scores must be bit-identical, not merely close — the
// persisted IDF columns are the same float64 bits.
//
// +whirllint:exactscore round-trip equality is exact by construction
func TestKeywordFlattenRoundTrip(t *testing.T) {
	doc, err := xmark.Generate(xmark.Options{Seed: 3, Items: 120})
	if err != nil {
		t.Fatal(err)
	}
	orig := Build(doc, "item")
	got, err := Unflatten(doc, orig.Flatten())
	if err != nil {
		t.Fatal(err)
	}
	if got.Scopes() != orig.Scopes() || got.ScopeTag() != orig.ScopeTag() {
		t.Fatalf("scope mismatch: %d/%s vs %d/%s", got.Scopes(), got.ScopeTag(), orig.Scopes(), orig.ScopeTag())
	}
	for w, list := range orig.postings {
		if got.IDF(w) != orig.IDF(w) {
			t.Fatalf("idf(%q): %v vs %v", w, got.IDF(w), orig.IDF(w))
		}
		gl := got.Postings(w)
		if len(gl) != len(list) {
			t.Fatalf("postings(%q): %d vs %d entries", w, len(gl), len(list))
		}
		for i := range list {
			if gl[i].Node != list[i].Node || gl[i].TF != list[i].TF {
				t.Fatalf("postings(%q)[%d]: %v/%d vs %v/%d", w, i, gl[i].Node, gl[i].TF, list[i].Node, list[i].TF)
			}
		}
	}
	for _, q := range []string{"gold", "creditcard gold", "shakespeare honour", "xyzzy"} {
		a1, _, err1 := orig.TopKTA(q, 5)
		a2, _, err2 := got.TopKTA(q, 5)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("TopKTA(%q) error divergence: %v vs %v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if len(a1) != len(a2) {
			t.Fatalf("TopKTA(%q): %d vs %d answers", q, len(a1), len(a2))
		}
		for i := range a1 {
			if a1[i].Node != a2[i].Node || a1[i].Score != a2[i].Score {
				t.Fatalf("TopKTA(%q)[%d]: %v/%v vs %v/%v", q, i, a1[i].Node, a1[i].Score, a2[i].Node, a2[i].Score)
			}
		}
	}
}

// TestKeywordUnflattenRejectsMalformed checks corrupted column data
// errors instead of panicking.
func TestKeywordUnflattenRejectsMalformed(t *testing.T) {
	doc, err := xmltree.ParseString(shopXML)
	if err != nil {
		t.Fatal(err)
	}
	base := Build(doc, "item").Flatten()
	mutate := map[string]func(f *Flat){
		"nil":             nil,
		"bad-scope-ord":   func(f *Flat) { f.ScopeOrds[0] = int32(len(doc.Nodes)) },
		"neg-scope-ord":   func(f *Flat) { f.ScopeOrds[0] = -1 },
		"bad-entry-ord":   func(f *Flat) { f.EntryOrd[0] = int32(len(doc.Nodes)) },
		"bad-word-off":    func(f *Flat) { f.WordOff[1] = int32(len(f.Words)) + 9 },
		"bad-post-off":    func(f *Flat) { f.PostOff[len(f.PostOff)-1] = int32(len(f.EntryOrd)) + 2 },
		"offsets-cross":   func(f *Flat) { f.PostOff[1] = f.PostOff[0] - 1 },
		"short-tf-column": func(f *Flat) { f.EntryTF = f.EntryTF[:1] },
		"short-post-offs": func(f *Flat) { f.PostOff = f.PostOff[:len(f.PostOff)-1] },
	}
	for name, fn := range mutate {
		var f *Flat
		if fn != nil {
			clone := *base
			clone.ScopeOrds = append([]int32(nil), base.ScopeOrds...)
			clone.WordOff = append([]int32(nil), base.WordOff...)
			clone.PostOff = append([]int32(nil), base.PostOff...)
			clone.EntryOrd = append([]int32(nil), base.EntryOrd...)
			clone.EntryTF = append([]int32(nil), base.EntryTF...)
			fn(&clone)
			f = &clone
		}
		if _, err := Unflatten(doc, f); err == nil {
			t.Errorf("%s: corrupted flat form unflattened without error", name)
		}
	}
}
