package keyword

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xmltree"
)

// Flat is the column-oriented form of an Index used by the snapshot
// store: scope elements and postings entries are referenced by preorder
// ordinal, words by offsets into one concatenated blob, so the whole
// structure serializes as fixed-width integers plus one byte string.
//
// Words are sorted; per-word postings keep their query-time order
// (descending tf, then ascending ordinal). Entry i of word w occupies
// EntryOrd/EntryTF[PostOff[w]:PostOff[w+1]]. The idf values are not
// stored: they are a pure function of the scope count and each list's
// length, recomputed exactly by Unflatten.
type Flat struct {
	// ScopeTag is the indexed element tag.
	ScopeTag string
	// ScopeOrds are the preorder ordinals of the scope elements, in
	// document order.
	ScopeOrds []int32
	// Words is the sorted vocabulary, concatenated; word w is
	// Words[WordOff[w]:WordOff[w+1]].
	Words   string
	WordOff []int32
	// PostOff has one entry per word plus a terminator; EntryOrd/EntryTF
	// are the flattened postings.
	PostOff  []int32
	EntryOrd []int32
	EntryTF  []int32
}

// Flatten converts the index into its column form.
func (ix *Index) Flatten() *Flat {
	f := &Flat{ScopeTag: ix.scopeTag, PostOff: []int32{0}}
	for _, n := range ix.scopes {
		f.ScopeOrds = append(f.ScopeOrds, int32(n.Ord))
	}
	words := make([]string, 0, len(ix.postings))
	for w := range ix.postings {
		words = append(words, w)
	}
	sort.Strings(words)
	f.WordOff = append(f.WordOff, 0)
	for _, w := range words {
		f.Words += w
		f.WordOff = append(f.WordOff, int32(len(f.Words)))
		for _, e := range ix.postings[w] {
			f.EntryOrd = append(f.EntryOrd, int32(e.Node.Ord))
			f.EntryTF = append(f.EntryTF, int32(e.TF))
		}
		f.PostOff = append(f.PostOff, int32(len(f.EntryOrd)))
	}
	return f
}

// Unflatten rebuilds an Index over doc from its column form, resolving
// ordinals against doc.Nodes and recomputing idf — no subtree walk, no
// tokenization, which is what makes snapshot-served keyword search skip
// the expensive part of Build. Malformed input returns an error rather
// than panicking.
func Unflatten(doc *xmltree.Document, f *Flat) (*Index, error) {
	if f == nil {
		return nil, fmt.Errorf("keyword: nil flat form")
	}
	n := int32(len(doc.Nodes))
	nw := len(f.WordOff) - 1
	if nw < 0 || len(f.PostOff) != nw+1 {
		return nil, fmt.Errorf("keyword: word columns disagree: %d word offsets, %d postings offsets",
			len(f.WordOff), len(f.PostOff))
	}
	if len(f.EntryOrd) != len(f.EntryTF) {
		return nil, fmt.Errorf("keyword: %d entry ordinals vs %d tfs", len(f.EntryOrd), len(f.EntryTF))
	}
	ix := &Index{
		scopeTag: f.ScopeTag,
		scopes:   make([]*xmltree.Node, len(f.ScopeOrds)),
		postings: make(map[string][]Entry, nw),
		direct:   make(map[string]map[int]int, nw),
		idf:      make(map[string]float64, nw),
	}
	for i, ord := range f.ScopeOrds {
		if ord < 0 || ord >= n {
			return nil, fmt.Errorf("keyword: scope ordinal %d out of range [0, %d)", ord, n)
		}
		ix.scopes[i] = doc.Nodes[ord]
	}
	nScopes := float64(len(ix.scopes))
	for w := 0; w < nw; w++ {
		lo, hi := f.WordOff[w], f.WordOff[w+1]
		if lo < 0 || hi < lo || int(hi) > len(f.Words) {
			return nil, fmt.Errorf("keyword: word %d has invalid span [%d, %d) of %d", w, lo, hi, len(f.Words))
		}
		word := f.Words[lo:hi]
		plo, phi := f.PostOff[w], f.PostOff[w+1]
		if plo < 0 || phi < plo || int(phi) > len(f.EntryOrd) {
			return nil, fmt.Errorf("keyword: word %q has invalid postings span [%d, %d) of %d", word, plo, phi, len(f.EntryOrd))
		}
		list := make([]Entry, 0, phi-plo)
		m := make(map[int]int, phi-plo)
		for i := plo; i < phi; i++ {
			ord := f.EntryOrd[i]
			if ord < 0 || ord >= n {
				return nil, fmt.Errorf("keyword: posting ordinal %d out of range [0, %d)", ord, n)
			}
			list = append(list, Entry{Node: doc.Nodes[ord], TF: int(f.EntryTF[i])})
			m[int(ord)] = int(f.EntryTF[i])
		}
		if len(list) == 0 {
			return nil, fmt.Errorf("keyword: word %q has no postings", word)
		}
		ix.postings[word] = list
		ix.direct[word] = m
		ix.idf[word] = math.Log(1 + nScopes/float64(len(list)))
	}
	return ix, nil
}

// ScopeTag returns the indexed element tag.
func (ix *Index) ScopeTag() string { return ix.scopeTag }
