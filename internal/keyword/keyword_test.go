package keyword

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Gold Ring", []string{"gold", "ring"}},
		{"  a,b;C(d)", []string{"a", "b", "c", "d"}},
		{"", nil},
		{"...", nil},
		{"item42 x", []string{"item42", "x"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

const shopXML = `
<shop>
  <item><name>gold ring</name><desc>fine gold band gold</desc></item>
  <item><name>silver ring</name><desc>plain silver band</desc></item>
  <item><name>gold necklace</name><desc>long chain</desc></item>
  <item><name>wooden bowl</name><desc>carved oak</desc></item>
</shop>`

func buildIx(t *testing.T) *Index {
	t.Helper()
	doc, err := xmltree.ParseString(shopXML)
	if err != nil {
		t.Fatal(err)
	}
	return Build(doc, "item")
}

func TestBuildPostings(t *testing.T) {
	ix := buildIx(t)
	if ix.Scopes() != 4 {
		t.Fatalf("scopes = %d", ix.Scopes())
	}
	gold := ix.Postings("gold")
	if len(gold) != 2 {
		t.Fatalf("gold postings = %d", len(gold))
	}
	// Sorted by tf descending: item 1 has gold×3.
	if gold[0].TF != 3 || gold[1].TF != 1 {
		t.Fatalf("gold tfs = %d, %d", gold[0].TF, gold[1].TF)
	}
	if ix.TF("gold", gold[0].Node.Ord) != 3 {
		t.Fatal("random access mismatch")
	}
	// gold and ring each appear in two items: equal idf.
	if ix.IDF("gold") != ix.IDF("ring") {
		t.Fatalf("idf(gold)=%v != idf(ring)=%v", ix.IDF("gold"), ix.IDF("ring"))
	}
	if ix.IDF("absent") != 0 {
		t.Fatal("absent word idf should be 0")
	}
	// Rarer word has higher idf.
	if !(ix.IDF("oak") > ix.IDF("gold")) {
		t.Fatalf("idf(oak)=%v should exceed idf(gold)=%v", ix.IDF("oak"), ix.IDF("gold"))
	}
}

func TestScanRanking(t *testing.T) {
	ix := buildIx(t)
	res := ix.TopKScan("gold ring", 4)
	if len(res) != 3 {
		t.Fatalf("answers = %d, want 3 (bowl has neither word)", len(res))
	}
	// The triple-gold ring item must win.
	if res[0].Node.Children[0].Value != "gold ring" {
		t.Fatalf("top answer = %v", res[0].Node)
	}
}

func TestTAMatchesScan(t *testing.T) {
	ix := buildIx(t)
	for _, query := range []string{"gold", "gold ring", "silver band oak", "absent", "gold gold"} {
		for k := 1; k <= 4; k++ {
			want := ix.TopKScan(query, k)
			got, _, err := ix.TopKTA(query, k)
			if err != nil {
				t.Fatal(err)
			}
			assertSame(t, query, k, got, want)
			gotNRA, _ := ix.TopKNRA(query, k)
			assertSame(t, query+" (NRA)", k, gotNRA, want)
		}
	}
}

func assertSame(t *testing.T, label string, k int, got, want []Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s k=%d: %d answers, want %d", label, k, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("%s k=%d: score %d = %v, want %v", label, k, i, got[i].Score, want[i].Score)
		}
	}
}

func TestTARandomizedAgainstScan(t *testing.T) {
	vocab := []string{"gold", "silver", "oak", "jade", "ring", "bowl", "chain", "band"}
	for trial := 0; trial < 25; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		b := xmltree.NewBuilder().Root("shop")
		items := 3 + r.Intn(10)
		for i := 0; i < items; i++ {
			b.Open("item")
			var sb strings.Builder
			for w := 0; w < 1+r.Intn(8); w++ {
				sb.WriteString(vocab[r.Intn(len(vocab))] + " ")
			}
			b.Leaf("desc", sb.String())
			b.Close()
		}
		ix := Build(b.Doc(), "item")
		queryWords := make([]string, 1+r.Intn(3))
		for i := range queryWords {
			queryWords[i] = vocab[r.Intn(len(vocab))]
		}
		query := strings.Join(queryWords, " ")
		k := 1 + r.Intn(4)
		want := ix.TopKScan(query, k)
		got, _, err := ix.TopKTA(query, k)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, query, k, got, want)
		gotNRA, _ := ix.TopKNRA(query, k)
		assertSame(t, query+" (NRA)", k, gotNRA, want)
	}
}

func TestTAEarlyTermination(t *testing.T) {
	// On a large corpus with a skewed word, TA must stop long before
	// scanning every posting.
	doc, err := xmark.Generate(xmark.Options{Seed: 4, Items: 500})
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc, "item")
	_, st, err := ix.TopKTA("gold silver", 5)
	if err != nil {
		t.Fatal(err)
	}
	total := len(ix.Postings("gold")) + len(ix.Postings("silver"))
	if st.SortedAccesses >= total {
		t.Fatalf("TA did not terminate early: %d sorted accesses of %d postings", st.SortedAccesses, total)
	}
	if st.RandomAccesses == 0 {
		t.Fatal("TA performed no random accesses")
	}
	// NRA must not use random access... by construction it reports only
	// sorted accesses.
	_, stNRA := ix.TopKNRA("gold silver", 5)
	if stNRA.RandomAccesses != 0 {
		t.Fatal("NRA must not use random access")
	}
	if stNRA.SortedAccesses == 0 {
		t.Fatal("NRA did no work")
	}
}

func TestEmptyQueryAndUnknownScope(t *testing.T) {
	ix := buildIx(t)
	if res := ix.TopKScan("", 3); len(res) != 0 {
		t.Fatalf("empty query answers = %d", len(res))
	}
	if _, _, err := ix.TopKTA("", 3); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty TA query error = %v, want ErrBadQuery", err)
	}
	if _, _, err := ix.TopKTA("gold", 0); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("k=0 TA error = %v, want ErrBadQuery", err)
	}
	doc, _ := xmltree.ParseString(shopXML)
	empty := Build(doc, "nothing")
	if empty.Scopes() != 0 {
		t.Fatal("unknown scope should index nothing")
	}
	if res, _, err := empty.TopKTA("gold", 3); err != nil || len(res) != 0 {
		t.Fatalf("empty index should answer nothing without error, got %d answers, err %v", len(res), err)
	}
}
