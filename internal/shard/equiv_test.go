package shard_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/shard"
	"repro/internal/xmltree"
)

// TestShardedTopKEquivalence is the sharding safety property: a sharded
// evaluation must return the same answers as the single-engine baseline
// across strategies {Whirlpool-S, Whirlpool-M} × relaxations {None, All}
// × shard counts {1, 2, 8}. Both sides share one whole-corpus scorer and
// static routing, so every match accumulates contributions in the same
// order and scores are bit-comparable.
//
// What "same" means at the k-th place: entries tying the k-th best score
// are prunable (by design — see prunable in internal/core), so WHICH
// tying root fills the last slot can legitimately depend on timing, in
// the sharded and in the unsharded engine alike. The score vector is
// still fully determined, and every answer scoring strictly above the
// k-th score is byte-identical — same root, same bindings, same order.
func TestShardedTopKEquivalence(t *testing.T) {
	doc := xmarkDoc(t, 50)
	whole := index.Build(doc)
	queries := []string{
		"//item[./description/parlist]",
		"//item[./description/parlist and ./mailbox/mail/text]",
		"//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]",
	}
	algos := []core.Algorithm{core.WhirlpoolS, core.WhirlpoolM}
	relaxes := []relax.Relaxation{relax.None, relax.All}
	counts := []int{1, 2, 8}

	corpora := make(map[int]*shard.Corpus)
	for _, p := range counts {
		c, err := shard.Split(doc, p)
		if err != nil {
			t.Fatal(err)
		}
		corpora[p] = c
	}

	for _, xpath := range queries {
		q := pattern.MustParse(xpath)
		scorer := score.NewTFIDF(whole, q, score.Sparse)
		for _, algo := range algos {
			for _, rel := range relaxes {
				// k=10 exercises pruning; k=4096 returns every root, so
				// no pruning can hide a divergence.
				for _, k := range []int{10, 4096} {
					cfg := core.Config{K: k, Relax: rel, Algorithm: algo, Scorer: scorer}
					baseEng, err := core.New(whole, q, cfg)
					if err != nil {
						t.Fatal(err)
					}
					base, err := baseEng.Run()
					if err != nil {
						t.Fatal(err)
					}
					for _, p := range counts {
						name := fmt.Sprintf("%s/%v/rel=%d/k=%d/p=%d", xpath, algo, rel, k, p)
						engs, err := corpora[p].NewEngines(q, cfg)
						if err != nil {
							t.Fatal(err)
						}
						res, err := engs.Run()
						if err != nil {
							t.Fatal(err)
						}
						compareResults(t, name, base, res)
						if res.Stats.PrunedRemote > res.Stats.Pruned {
							t.Fatalf("%s: PrunedRemote %d > Pruned %d", name, res.Stats.PrunedRemote, res.Stats.Pruned)
						}
					}
				}
			}
		}
	}
}

// TestShardedTopKEquivalenceRandomDocs repeats the property on random
// forests, where unit shapes (deep chains, empty shards, multi-root
// forests) differ wildly from XMark's.
func TestShardedTopKEquivalenceRandomDocs(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	queries := []string{
		"//r[./a and ./b]",
		"//a[./b/c]",
		"//r[./a[./c] and ./d]",
	}
	for i := 0; i < 8; i++ {
		doc := randomDoc(r)
		whole := index.Build(doc)
		for _, xpath := range queries {
			q := pattern.MustParse(xpath)
			scorer := score.NewTFIDF(whole, q, score.Sparse)
			cfg := core.Config{K: 5, Relax: relax.All, Algorithm: core.WhirlpoolS, Scorer: scorer}
			baseEng, err := core.New(whole, q, cfg)
			if err != nil {
				t.Fatal(err)
			}
			base, err := baseEng.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{2, 8} {
				c, err := shard.Split(doc, p)
				if err != nil {
					t.Fatal(err)
				}
				engs, err := c.NewEngines(q, cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := engs.Run()
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, fmt.Sprintf("doc%d/%s/p=%d", i, xpath, p), base, res)
			}
		}
	}
}

// TestShardedStealingEquivalence is the work-stealing safety property:
// the pooled Whirlpool-S executor must return the same answers as the
// single-engine baseline across shard counts {1, 2, 8} × GOMAXPROCS
// {1, 4, 8} (which sizes the default worker pool) × stealing {on, off}.
// Arena poison is on for the whole matrix, so a match touched after its
// ownership moved across workers — or released to the wrong shard
// freelist and recycled — surfaces as NaN scores or nil bindings, not
// as silently stale data. Run under -race this doubles as the memory-
// model check for the cross-worker queue handoff.
func TestShardedStealingEquivalence(t *testing.T) {
	core.SetArenaPoisonForTest(true)
	defer core.SetArenaPoisonForTest(false)
	oldGMP := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(oldGMP)

	doc := xmarkDoc(t, 50)
	whole := index.Build(doc)
	queries := []string{
		"//item[./description/parlist]",
		"//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]",
	}
	counts := []int{1, 2, 8}
	corpora := make(map[int]*shard.Corpus)
	for _, p := range counts {
		c, err := shard.Split(doc, p)
		if err != nil {
			t.Fatal(err)
		}
		corpora[p] = c
	}

	for _, xpath := range queries {
		q := pattern.MustParse(xpath)
		scorer := score.NewTFIDF(whole, q, score.Sparse)
		for _, k := range []int{10, 4096} {
			cfg := core.Config{K: k, Relax: relax.All, Algorithm: core.WhirlpoolS, Scorer: scorer}
			baseEng, err := core.New(whole, q, cfg)
			if err != nil {
				t.Fatal(err)
			}
			base, err := baseEng.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range counts {
				for _, gmp := range []int{1, 4, 8} {
					for _, stealing := range []bool{true, false} {
						name := fmt.Sprintf("%s/k=%d/p=%d/gmp=%d/steal=%v", xpath, k, p, gmp, stealing)
						engs, err := corpora[p].NewEngines(q, cfg)
						if err != nil {
							t.Fatal(err)
						}
						engs.SetExecOptions(shard.ExecOptions{DisableStealing: !stealing, StealBatch: 4})
						runtime.GOMAXPROCS(gmp)
						res, err := engs.Run()
						runtime.GOMAXPROCS(oldGMP)
						if err != nil {
							t.Fatal(err)
						}
						compareResults(t, name, base, res)
						if bound, peak := engs.LastRunWorkers(); bound > gmp || peak > bound {
							t.Fatalf("%s: workers bound=%d peak=%d exceed gmp=%d", name, bound, peak, gmp)
						}
						if !stealing && res.Stats.StolenMatches != 0 {
							t.Fatalf("%s: %d matches stolen with stealing disabled", name, res.Stats.StolenMatches)
						}
					}
				}
			}
		}
	}
}

func compareResults(t *testing.T, name string, base, got *core.Result) {
	t.Helper()
	if len(got.Answers) != len(base.Answers) {
		t.Fatalf("%s: %d answers, baseline %d", name, len(got.Answers), len(base.Answers))
	}
	if len(base.Answers) == 0 {
		return
	}
	const eps = 1e-9
	for i := range base.Answers {
		if math.Abs(got.Answers[i].Score-base.Answers[i].Score) > eps {
			t.Fatalf("%s: answer %d score %v, baseline %v", name, i, got.Answers[i].Score, base.Answers[i].Score)
		}
	}
	// Strictly above the k-th boundary score, answers are byte-identical:
	// same root node, same bindings, same order.
	boundary := base.Answers[len(base.Answers)-1].Score
	for i := range base.Answers {
		if base.Answers[i].Score <= boundary+eps {
			continue
		}
		if got.Answers[i].Root != base.Answers[i].Root {
			t.Fatalf("%s: answer %d root ord %d, baseline %d",
				name, i, got.Answers[i].Root.Ord, base.Answers[i].Root.Ord)
		}
		if !sameBindings(got.Answers[i].Bindings, base.Answers[i].Bindings) {
			t.Fatalf("%s: answer %d bindings %v, baseline %v",
				name, i, fmtBindings(got.Answers[i].Bindings), fmtBindings(base.Answers[i].Bindings))
		}
	}
}

func sameBindings(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fmtBindings(bs []*xmltree.Node) []int {
	out := make([]int, len(bs))
	for i, b := range bs {
		if b == nil {
			out[i] = -1
		} else {
			out[i] = b.Ord
		}
	}
	return out
}
