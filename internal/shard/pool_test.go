package shard_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/shard"
)

// poolEnv builds a p-way sharded Engines over an XMark document for the
// pool tests, with a whole-corpus scorer as NewEngines requires.
func poolEnv(t *testing.T, items, p int, algo core.Algorithm) *shard.Engines {
	t.Helper()
	doc := xmarkDoc(t, items)
	whole := index.Build(doc)
	q := pattern.MustParse("//item[./description/parlist and ./mailbox/mail/text]")
	cfg := core.Config{K: 10, Relax: relax.All, Algorithm: algo, Scorer: score.NewTFIDF(whole, q, score.Sparse)}
	c, err := shard.Split(doc, p)
	if err != nil {
		t.Fatal(err)
	}
	engs, err := c.NewEngines(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return engs
}

// TestWorkerBoundRegression pins the fix for the old one-goroutine-per-
// shard fan-out: the pool never runs more engine workers concurrently
// than min(GOMAXPROCS, shards), for the stealing (Whirlpool-S) and the
// bounded (Whirlpool-M) executor alike.
func TestWorkerBoundRegression(t *testing.T) {
	for _, algo := range []core.Algorithm{core.WhirlpoolS, core.WhirlpoolM} {
		// 8 shards, 4 workers requested: the bound is the worker cap.
		engs := poolEnv(t, 40, 8, algo)
		engs.SetExecOptions(shard.ExecOptions{Workers: 4})
		if _, err := engs.Run(); err != nil {
			t.Fatal(err)
		}
		bound, peak := engs.LastRunWorkers()
		if bound != 4 {
			t.Fatalf("%v: worker bound %d, want 4", algo, bound)
		}
		if peak < 1 || peak > 4 {
			t.Fatalf("%v: peak concurrent workers %d, want 1..4", algo, peak)
		}

		// 2 shards, 8 workers requested: shards cap the pool — more
		// workers than shards would only contend on the two queues.
		engs = poolEnv(t, 40, 2, algo)
		engs.SetExecOptions(shard.ExecOptions{Workers: 8})
		if _, err := engs.Run(); err != nil {
			t.Fatal(err)
		}
		bound, peak = engs.LastRunWorkers()
		if bound != 2 {
			t.Fatalf("%v: worker bound %d, want 2", algo, bound)
		}
		if peak < 1 || peak > 2 {
			t.Fatalf("%v: peak concurrent workers %d, want 1..2", algo, peak)
		}
	}
}

// TestWorkerBoundDefaultsToGOMAXPROCS: with no override, the pool sizes
// itself to min(GOMAXPROCS, shards).
func TestWorkerBoundDefaultsToGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	engs := poolEnv(t, 40, 8, core.WhirlpoolS)
	if _, err := engs.Run(); err != nil {
		t.Fatal(err)
	}
	bound, peak := engs.LastRunWorkers()
	if bound != 2 {
		t.Fatalf("worker bound %d, want min(GOMAXPROCS=2, shards=8) = 2", bound)
	}
	if peak > 2 {
		t.Fatalf("peak concurrent workers %d exceeds bound 2", peak)
	}
}

// TestStealingMovesMatches: with several workers over many shards, some
// matches get processed by non-owner workers, and the run reports them.
// Scheduling decides exactly when a queue is stolen from, so the test
// retries a few runs before declaring stealing dead. GOMAXPROCS > 1
// lets the OS timeslice the workers even on a single-core host — on one
// P a worker runs its shards to completion before anyone can steal.
func TestStealingMovesMatches(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	engs := poolEnv(t, 60, 8, core.WhirlpoolS)
	engs.SetExecOptions(shard.ExecOptions{Workers: 4, StealBatch: 2})
	for attempt := 0; attempt < 50; attempt++ {
		res, err := engs.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Steals > 0 {
			if res.Stats.StolenMatches < res.Stats.Steals {
				t.Fatalf("stolen matches %d < steal batches %d", res.Stats.StolenMatches, res.Stats.Steals)
			}
			return
		}
	}
	t.Fatal("no steals observed across 50 runs of a 4-worker, 8-shard layout")
}

// TestStealingDisabled: the A/B switch really pins shards to owners.
func TestStealingDisabled(t *testing.T) {
	engs := poolEnv(t, 60, 8, core.WhirlpoolS)
	engs.SetExecOptions(shard.ExecOptions{Workers: 4, DisableStealing: true})
	for i := 0; i < 10; i++ {
		res, err := engs.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Steals != 0 || res.Stats.StolenMatches != 0 {
			t.Fatalf("stealing disabled but run reports steals=%d stolen=%d",
				res.Stats.Steals, res.Stats.StolenMatches)
		}
	}
}

// TestPoolCancellation: a cancelled context surfaces from RunContext for
// both executor paths, before and during the run.
// +whirllint:managed the run goroutine signals completion on the done channel
func TestPoolCancellation(t *testing.T) {
	for _, algo := range []core.Algorithm{core.WhirlpoolS, core.WhirlpoolM} {
		engs := poolEnv(t, 40, 8, algo)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := engs.RunContext(ctx); err != context.Canceled {
			t.Fatalf("%v: pre-cancelled run returned %v, want context.Canceled", algo, err)
		}

		// Mid-run cancellation must return promptly; on a small document
		// the run may legitimately win the race and complete.
		ctx, cancel = context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := engs.RunContext(ctx)
			done <- err
		}()
		cancel()
		select {
		case err := <-done:
			if err != nil && err != context.Canceled {
				t.Fatalf("%v: mid-run cancel returned %v", algo, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: cancelled run did not return within 10s", algo)
		}
	}
}
