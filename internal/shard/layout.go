package shard

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/synopsis"
	"repro/internal/xmltree"
)

// FromLayout rebuilds a Corpus from a stored partition layout — the
// spine ordinals and each part's unit-root ordinals, as produced by a
// previous Split — without re-running the cut/assign passes. sources
// optionally supplies each part's access path (e.g. snapshot-backed
// sources serving probes from mapped postings); when nil, per-part
// indexes are built from the views, which still skips partitioning.
//
// The layout is validated against doc: ordinals must be in range, and
// the spine plus the unit subtrees must cover every node exactly once —
// a layout saved for a different document fails here instead of
// corrupting query answers.
func FromLayout(doc *xmltree.Document, spineOrds []int, unitOrds [][]int, sources []index.Source) (*Corpus, error) {
	if doc == nil {
		return nil, fmt.Errorf("shard: nil document")
	}
	if len(unitOrds) < 1 {
		return nil, fmt.Errorf("shard: layout has no parts")
	}
	if sources != nil && len(sources) != len(unitOrds) {
		return nil, fmt.Errorf("shard: %d sources for %d parts", len(sources), len(unitOrds))
	}
	n := len(doc.Nodes)
	node := func(ord int) (*xmltree.Node, error) {
		if ord < 0 || ord >= n {
			return nil, fmt.Errorf("shard: layout ordinal %d outside the %d-node document", ord, n)
		}
		return doc.Nodes[ord], nil
	}
	c := &Corpus{
		doc:         doc,
		spineByTag:  make(map[string][]*xmltree.Node),
		homes:       make(map[int]int),
		mergedTag:   make(map[string][]*xmltree.Node),
		mergedMatch: make(map[string][]*xmltree.Node),
	}
	covered := 0
	for _, ord := range spineOrds {
		s, err := node(ord)
		if err != nil {
			return nil, err
		}
		if _, dup := c.homes[s.Ord]; dup {
			return nil, fmt.Errorf("shard: layout places node %d twice", s.Ord)
		}
		c.spine = append(c.spine, s)
		c.spineByTag[s.Tag] = append(c.spineByTag[s.Tag], s)
		c.homes[s.Ord] = -1
		covered++
	}
	sizes := subtreeSizes(doc)
	for id, ords := range unitOrds {
		part := &Part{ID: id}
		for _, ord := range ords {
			u, err := node(ord)
			if err != nil {
				return nil, err
			}
			if _, dup := c.homes[u.Ord]; dup {
				return nil, fmt.Errorf("shard: layout places node %d twice", u.Ord)
			}
			part.Units = append(part.Units, u)
			c.homes[u.Ord] = id
			covered += sizes[u.Ord]
		}
		part.Doc = viewDoc(part.Units)
		part.NodeCount = len(part.Doc.Nodes)
		if sources != nil {
			part.Ix = sources[id]
		} else {
			part.Ix = index.Build(part.Doc)
		}
		c.parts = append(c.parts, part)
	}
	if covered != n {
		return nil, fmt.Errorf("shard: layout covers %d of %d nodes", covered, n)
	}
	// Every spine node's parent must itself be on the spine (or be a
	// root), and every unit's parent must be a spine node — the
	// invariants Candidates' home() walk and the spine fold rely on.
	for _, s := range c.spine {
		if s.Parent != nil {
			if h, ok := c.homes[s.Parent.Ord]; !ok || h != -1 {
				return nil, fmt.Errorf("shard: spine node %d hangs off a non-spine parent", s.Ord)
			}
		}
	}
	for _, p := range c.parts {
		for _, u := range p.Units {
			if u.Parent != nil {
				if h, ok := c.homes[u.Parent.Ord]; !ok || h != -1 {
					return nil, fmt.Errorf("shard: unit %d hangs off a non-spine parent", u.Ord)
				}
			}
		}
	}
	return c, nil
}

// SetSynopsis seeds the memoized corpus synopsis — used when a
// persisted synopsis was loaded alongside the layout, so the first
// planner call doesn't pay the parallel build.
func (c *Corpus) SetSynopsis(s *synopsis.Synopsis) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syn = s
}
