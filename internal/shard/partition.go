// Package shard implements Whirlpool's sharded execution layer: one
// document forest is partitioned into P disjoint shards of complete
// subtrees, each with its own index.Index and per-shard engine, and the
// shards evaluate a query concurrently against a single shared global
// top-k set (core.SharedTopK). A high-scoring answer found on one shard
// immediately raises the currentTopK threshold every other shard prunes
// against, so the paper's adaptive-pruning insight (Section 5)
// parallelizes without weakening: the shared threshold is at all times a
// lower bound on the true global k-th best score, and results merge
// deterministically (score descending, document order ascending).
package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/synopsis"
	"repro/internal/xmltree"
)

// splitFactor oversizes the unit pool relative to the shard count so the
// longest-processing-time assignment can balance shards even when
// subtree sizes are skewed.
const splitFactor = 4

// Part is one shard of a partitioned corpus: a set of complete subtrees
// ("units") with their own postings index. The part's view document
// shares the corpus's nodes — Dewey IDs and preorder ordinals stay
// global — so every structural probe anchored inside the part returns
// exactly what a whole-document index would.
type Part struct {
	// ID is the shard number, 0-based.
	ID int
	// Units are the subtree roots assigned to this shard, in document
	// order.
	Units []*xmltree.Node
	// Doc is the part's view: Roots are the units, Nodes their subtrees
	// in global preorder. Node ordinals are NOT re-numbered.
	Doc *xmltree.Document
	// Ix is the part's access path: an index.Index built over the view
	// (Split), or a snapshot-backed source serving the same probes from
	// mapped postings (FromLayout).
	Ix index.Source
	// NodeCount is the number of nodes in the part.
	NodeCount int
}

// Corpus is a partitioned document forest. It implements index.Source
// over the whole forest (merging across parts) and index.ShardedSource
// so per-shard consumers can fan out.
type Corpus struct {
	doc   *xmltree.Document
	parts []*Part
	// spine holds the interior nodes that were cut to expose their
	// children as units: the ancestors of every unit, in document order.
	// Their (small) residual forest is evaluated by a dedicated spine
	// sub-source, since their subtrees span parts.
	spine      []*xmltree.Node
	spineByTag map[string][]*xmltree.Node
	// homes locates a node's shard: unit-root ordinal -> part ID, spine
	// ordinal -> -1. Every document node resolves by walking to its
	// nearest mapped ancestor.
	homes map[int]int

	mu          sync.Mutex
	mergedTag   map[string][]*xmltree.Node // cache: tag -> merged postings
	mergedMatch map[string][]*xmltree.Node // cache: filtered postings
	syn         *synopsis.Synopsis         // memoized corpus synopsis (see synopsis.go)
}

// Split partitions doc into p shards of complete subtrees. The unit pool
// starts as the forest roots; while it holds fewer than splitFactor*p
// units, the largest unit with children is cut — moved to the spine, its
// children promoted to units — so even a single-rooted document (an
// XMark site) yields enough units to balance. Units are then assigned to
// shards longest-processing-time first. Part indexes are built in
// parallel, one goroutine per part.
func Split(doc *xmltree.Document, p int) (*Corpus, error) {
	if doc == nil {
		return nil, fmt.Errorf("shard: nil document")
	}
	if p < 1 {
		return nil, fmt.Errorf("shard: shard count must be ≥ 1, got %d", p)
	}
	for i, n := range doc.Nodes {
		if n.Ord != i {
			return nil, fmt.Errorf("shard: document is not renumbered (node %d has ord %d)", i, n.Ord)
		}
	}
	sizes := subtreeSizes(doc)
	units, spine := cut(doc, p, sizes)
	c := &Corpus{
		doc:         doc,
		spine:       spine,
		spineByTag:  make(map[string][]*xmltree.Node),
		homes:       make(map[int]int),
		mergedTag:   make(map[string][]*xmltree.Node),
		mergedMatch: make(map[string][]*xmltree.Node),
	}
	for _, s := range spine {
		c.spineByTag[s.Tag] = append(c.spineByTag[s.Tag], s)
		c.homes[s.Ord] = -1
	}
	c.parts = assign(units, sizes, p)
	for _, part := range c.parts {
		for _, u := range part.Units {
			c.homes[u.Ord] = part.ID
		}
	}
	// Build the per-part views and indexes in parallel — the sharded
	// replacement for one sequential whole-document index.Build.
	var wg sync.WaitGroup
	for _, part := range c.parts {
		wg.Add(1)
		go func(part *Part) {
			defer wg.Done()
			part.Doc = viewDoc(part.Units)
			part.NodeCount = len(part.Doc.Nodes)
			part.Ix = index.Build(part.Doc)
		}(part)
	}
	wg.Wait()
	return c, nil
}

// subtreeSizes computes the subtree node count per ordinal in one
// reverse-preorder pass: children follow their parent in preorder, so
// iterating the slice backwards sees every child before its parent.
func subtreeSizes(doc *xmltree.Document) []int {
	sizes := make([]int, len(doc.Nodes))
	for i := len(doc.Nodes) - 1; i >= 0; i-- {
		n := doc.Nodes[i]
		s := 1
		for _, ch := range n.Children {
			s += sizes[ch.Ord]
		}
		sizes[n.Ord] = s
	}
	return sizes
}

// cut grows the unit pool: starting from the forest roots, repeatedly
// move the largest unit that has children to the spine and promote its
// children to units. Cutting continues until the pool holds at least
// splitFactor*p units AND no single unit exceeds a shard's fair share
// (total/p nodes) — a pool that merely reaches the size target can
// still hide one dominant subtree that forces the shard it lands on to
// ~2-3x the mean load, which is exactly the 4-shard skew anomaly the
// earlier size-only stop produced on XMark. The largest-unit pick
// tie-breaks on the smaller preorder ordinal, so the cut sequence is a
// pure function of the document and p, never of the pool's mutation
// history. The iteration cap bounds pathological deep chains where each
// cut nets zero or one new unit.
func cut(doc *xmltree.Document, p int, sizes []int) (units, spine []*xmltree.Node) {
	units = append(units, doc.Roots...)
	target := splitFactor * p
	if p == 1 {
		// One shard: no parallelism to feed, keep the forest whole.
		return units, nil
	}
	total := len(doc.Nodes)
	for iter := 0; iter < 10*target; iter++ {
		bi := -1
		for i, u := range units {
			if len(u.Children) == 0 {
				continue
			}
			if bi == -1 ||
				sizes[u.Ord] > sizes[units[bi].Ord] ||
				(sizes[u.Ord] == sizes[units[bi].Ord] && u.Ord < units[bi].Ord) {
				bi = i
			}
		}
		if bi == -1 {
			break // every unit is a leaf
		}
		if len(units) >= target && sizes[units[bi].Ord]*p <= total {
			break // enough units, and none dominates a fair share
		}
		u := units[bi]
		units = append(units[:bi], units[bi+1:]...)
		spine = append(spine, u)
		units = append(units, u.Children...)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Ord < units[j].Ord })
	sort.Slice(spine, func(i, j int) bool { return spine[i].Ord < spine[j].Ord })
	return units, spine
}

// assign distributes units over p parts, largest first to the currently
// lightest part (LPT). Ties break on document order, so the layout is a
// pure function of the document and p.
func assign(units []*xmltree.Node, sizes []int, p int) []*Part {
	order := append([]*xmltree.Node(nil), units...)
	sort.Slice(order, func(i, j int) bool {
		si, sj := sizes[order[i].Ord], sizes[order[j].Ord]
		if si != sj {
			return si > sj
		}
		return order[i].Ord < order[j].Ord
	})
	parts := make([]*Part, p)
	load := make([]int, p)
	for i := range parts {
		parts[i] = &Part{ID: i}
	}
	for _, u := range order {
		best := 0
		for i := 1; i < p; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		parts[best].Units = append(parts[best].Units, u)
		load[best] += sizes[u.Ord]
	}
	for _, part := range parts {
		sort.Slice(part.Units, func(i, j int) bool { return part.Units[i].Ord < part.Units[j].Ord })
	}
	return parts
}

// viewDoc builds a part's view document: the units as roots and their
// subtrees as the preorder node slice. Node ordinals and Dewey IDs are
// left untouched — they stay globally unique and globally ordered, which
// is what keeps per-part indexes exact for their own anchors (and makes
// Renumber on a view a corruption; none is ever called).
func viewDoc(units []*xmltree.Node) *xmltree.Document {
	view := &xmltree.Document{Roots: units}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		view.Nodes = append(view.Nodes, n)
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, u := range units {
		walk(u)
	}
	return view
}

// Parts returns the partition, shard order.
func (c *Corpus) Parts() []*Part { return c.parts }

// Spine returns the cut interior nodes, document order.
func (c *Corpus) Spine() []*xmltree.Node { return c.spine }

// Doc returns the underlying whole document.
func (c *Corpus) Doc() *xmltree.Document { return c.doc }

// PartInfo describes one shard's share of the corpus for layout
// reporting (whirlpoold /stats, whirlbench tables).
type PartInfo struct {
	Shard     int `json:"shard"`
	Units     int `json:"units"`
	NodeCount int `json:"nodes"`
}

// Layout returns the per-shard unit and node counts plus the spine size.
func (c *Corpus) Layout() (parts []PartInfo, spineNodes int) {
	for _, p := range c.parts {
		parts = append(parts, PartInfo{Shard: p.ID, Units: len(p.Units), NodeCount: p.NodeCount})
	}
	return parts, len(c.spine)
}
