package shard_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// randomDoc builds a random forest with a few tags so partitions hit
// uneven subtree shapes, deep chains and repeated tags.
func randomDoc(r *rand.Rand) *xmltree.Document {
	tags := []string{"a", "b", "c", "d"}
	doc := xmltree.NewDocument()
	roots := r.Intn(3) + 1
	for i := 0; i < roots; i++ {
		root := doc.AddRoot("r")
		var grow func(n *xmltree.Node, depth int)
		grow = func(n *xmltree.Node, depth int) {
			if depth > 5 {
				return
			}
			kids := r.Intn(4)
			for j := 0; j < kids; j++ {
				val := ""
				if r.Intn(3) == 0 {
					val = fmt.Sprintf("v%d", r.Intn(3))
				}
				c := doc.AddChild(n, tags[r.Intn(len(tags))], val)
				grow(c, depth+1)
			}
		}
		grow(root, 1)
	}
	doc.Renumber()
	return doc
}

func xmarkDoc(t *testing.T, items int) *xmltree.Document {
	t.Helper()
	doc, err := xmark.Generate(xmark.Options{Seed: 1, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSplitPartitionInvariants checks the structural contract: every
// document node lands in exactly one part or on the spine, parts hold
// complete subtrees, ordinals stay global, and postings stay in
// document order.
func TestSplitPartitionInvariants(t *testing.T) {
	docs := map[string]*xmltree.Document{"xmark": xmarkDoc(t, 40)}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		docs[fmt.Sprintf("random%d", i)] = randomDoc(r)
	}
	for name, doc := range docs {
		for _, p := range []int{1, 2, 3, 8, 64} {
			t.Run(fmt.Sprintf("%s/p=%d", name, p), func(t *testing.T) {
				c, err := shard.Split(doc, p)
				if err != nil {
					t.Fatal(err)
				}
				if got := len(c.Parts()); got != p {
					t.Fatalf("parts = %d, want %d", got, p)
				}
				seen := make(map[int]int) // ord -> count
				for _, s := range c.Spine() {
					seen[s.Ord]++
				}
				for _, part := range c.Parts() {
					lastOrd := -1
					for _, n := range part.Doc.Nodes {
						seen[n.Ord]++
						if n.Ord <= lastOrd {
							t.Fatalf("part %d view not in document order", part.ID)
						}
						lastOrd = n.Ord
					}
					// Complete subtrees: every child of a part node is in
					// the same part.
					for _, u := range part.Units {
						for _, d := range u.Descendants() {
							if d.Parent == nil {
								t.Fatalf("descendant %v lost its parent", d)
							}
						}
					}
					if part.NodeCount != len(part.Doc.Nodes) {
						t.Fatalf("part %d NodeCount = %d, want %d", part.ID, part.NodeCount, len(part.Doc.Nodes))
					}
				}
				if len(seen) != doc.Size() {
					t.Fatalf("covered %d of %d nodes", len(seen), doc.Size())
				}
				for ord, n := range seen {
					if n != 1 {
						t.Fatalf("node %d assigned %d times", ord, n)
					}
				}
				// Ordinals must still be the global preorder ones.
				for i, n := range doc.Nodes {
					if n.Ord != i {
						t.Fatalf("global ordinals corrupted at %d", i)
					}
				}
			})
		}
	}
}

// TestSplitBalance asserts the partition is actually balanced, not just
// structurally valid: on an XMark document the node-count skew
// (largest part over the mean) stays within 2.0 for every shard count
// the pinned benchmark sweeps. This pins the fix for the 4-shard
// anomaly where cut() stopped at the unit-count target while one
// dominant subtree still exceeded a shard's fair share, forcing its
// shard to ~2.6x the mean load.
func TestSplitBalance(t *testing.T) {
	doc := xmarkDoc(t, 200)
	for _, p := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c, err := shard.Split(doc, p)
			if err != nil {
				t.Fatal(err)
			}
			total, max := 0, 0
			for _, part := range c.Parts() {
				total += part.NodeCount
				if part.NodeCount > max {
					max = part.NodeCount
				}
			}
			mean := float64(total) / float64(p)
			if mean == 0 {
				t.Fatal("empty partition")
			}
			if skew := float64(max) / mean; skew > 2.0 {
				layout, spine := c.Layout()
				t.Fatalf("node-count skew %.2f > 2.0 (layout %+v, spine %d)", skew, layout, spine)
			}
		})
	}
}

// TestSplitDeterministic asserts the layout is a pure function of the
// document and p: the largest-unit cut order tie-breaks on preorder
// ordinal, so repeated Splits must agree unit for unit.
func TestSplitDeterministic(t *testing.T) {
	doc := xmarkDoc(t, 120)
	for _, p := range []int{2, 4, 8} {
		a, err := shard.Split(doc, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := shard.Split(doc, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Parts() {
			pa, pb := a.Parts()[i], b.Parts()[i]
			if len(pa.Units) != len(pb.Units) {
				t.Fatalf("p=%d part %d: %d vs %d units", p, i, len(pa.Units), len(pb.Units))
			}
			for j := range pa.Units {
				if pa.Units[j].Ord != pb.Units[j].Ord {
					t.Fatalf("p=%d part %d unit %d: ord %d vs %d", p, i, j, pa.Units[j].Ord, pb.Units[j].Ord)
				}
			}
		}
	}
}

// TestSplitSingleShardKeepsForestWhole ensures p=1 does not cut anything:
// the single part's roots are the document roots.
func TestSplitSingleShardKeepsForestWhole(t *testing.T) {
	doc := xmarkDoc(t, 20)
	c, err := shard.Split(doc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Spine()) != 0 {
		t.Fatalf("spine has %d nodes, want 0", len(c.Spine()))
	}
	if got := len(c.Parts()[0].Units); got != len(doc.Roots) {
		t.Fatalf("units = %d, want %d roots", got, len(doc.Roots))
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := shard.Split(nil, 2); err == nil {
		t.Fatal("nil document accepted")
	}
	doc := xmarkDoc(t, 5)
	if _, err := shard.Split(doc, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
}

func TestSplitEmptyDocument(t *testing.T) {
	doc := xmltree.NewDocument()
	c, err := shard.Split(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CountTag("anything"); got != 0 {
		t.Fatalf("CountTag on empty = %d", got)
	}
}

// TestCorpusSourceEquivalence drives the Corpus index.Source against a
// whole-document index: every access path must answer identically, for
// anchors inside parts and on the spine alike.
func TestCorpusSourceEquivalence(t *testing.T) {
	docs := []*xmltree.Document{xmarkDoc(t, 30)}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		docs = append(docs, randomDoc(r))
	}
	axes := []dewey.Axis{dewey.Self, dewey.Child, dewey.Descendant}
	for di, doc := range docs {
		whole := index.Build(doc)
		for _, p := range []int{1, 2, 8} {
			c, err := shard.Split(doc, p)
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("doc%d/p=%d", di, p)
			tags := doc.Tags()
			for _, tag := range tags {
				if got, want := nodeOrds(c.Nodes(tag)), nodeOrds(whole.Nodes(tag)); !equalInts(got, want) {
					t.Fatalf("%s: Nodes(%q) = %v, want %v", name, tag, got, want)
				}
				if got, want := c.CountTag(tag), whole.CountTag(tag); got != want {
					t.Fatalf("%s: CountTag(%q) = %d, want %d", name, tag, got, want)
				}
				vt := index.Test("", "v1")
				if got, want := nodeOrds(c.NodesMatching(tag, vt)), nodeOrds(whole.NodesMatching(tag, vt)); !equalInts(got, want) {
					t.Fatalf("%s: NodesMatching(%q, =v1) mismatch", name, tag)
				}
			}
			// Sample anchors: every 7th node plus every spine node.
			anchors := c.Spine()
			for i := 0; i < len(doc.Nodes); i += 7 {
				anchors = append(anchors, doc.Nodes[i])
			}
			any := index.Test("", "")
			for _, anchor := range anchors {
				for _, axis := range axes {
					for _, tag := range tags {
						got := nodeOrds(c.Candidates(anchor, axis, tag, any))
						want := nodeOrds(whole.Candidates(anchor, axis, tag, any))
						if !equalInts(got, want) {
							t.Fatalf("%s: Candidates(ord %d, %v, %q) = %v, want %v",
								name, anchor.Ord, axis, tag, got, want)
						}
						if got, want := c.TF(anchor, axis, tag, any), whole.TF(anchor, axis, tag, any); got != want {
							t.Fatalf("%s: TF(ord %d, %v, %q) = %d, want %d",
								name, anchor.Ord, axis, tag, got, want)
						}
					}
				}
			}
			for _, rootTag := range tags {
				for _, tag := range tags {
					got := c.Predicate(rootTag, dewey.Descendant, tag, any)
					want := whole.Predicate(rootTag, dewey.Descendant, tag, any)
					if got != want {
						t.Fatalf("%s: Predicate(%q//%q) = %+v, want %+v", name, rootTag, tag, got, want)
					}
				}
			}
		}
	}
}

// TestShardSourcesPartitionRoots checks the ShardedSource contract: the
// sub-sources' postings for any tag partition the corpus's.
func TestShardSourcesPartitionRoots(t *testing.T) {
	doc := xmarkDoc(t, 30)
	c, err := shard.Split(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	subs := c.ShardSources()
	if len(subs) < 4 {
		t.Fatalf("sub-sources = %d, want ≥ 4", len(subs))
	}
	for _, tag := range doc.Tags() {
		seen := make(map[int]bool)
		total := 0
		for _, sub := range subs {
			for _, n := range sub.Nodes(tag) {
				if seen[n.Ord] {
					t.Fatalf("tag %q node %d in two sub-sources", tag, n.Ord)
				}
				seen[n.Ord] = true
				total++
			}
		}
		if want := c.CountTag(tag); total != want {
			t.Fatalf("tag %q: sub-sources hold %d nodes, corpus %d", tag, total, want)
		}
	}
}

func nodeOrds(ns []*xmltree.Node) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = n.Ord
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
