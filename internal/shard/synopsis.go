package shard

import (
	"sync"

	"repro/internal/synopsis"
	"repro/internal/xmltree"
)

// Synopsis returns the corpus's structure synopsis, built per shard in
// parallel and merged so the result is byte-identical to a
// whole-document synopsis.Build — every part holds complete subtrees,
// so its anchors' descendant statistics are exact locally; the spine
// nodes (whose subtrees span parts) are folded in from per-unit level
// histograms. The synopsis is computed once and memoized; the build
// runs under mu, so concurrent first callers wait rather than race.
func (c *Corpus) Synopsis() *synopsis.Synopsis {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.syn == nil {
		c.syn = c.buildSynopsis()
	}
	return c.syn
}

func (c *Corpus) buildSynopsis() *synopsis.Synopsis {
	// Per-part partial synopses, one goroutine per part (same shape as
	// the parallel index build in Split). Each also collects its units'
	// absolute-level histograms for the spine fold below.
	partial := make([]*synopsis.Synopsis, len(c.parts))
	unitHists := make([]map[int]map[string][]int, len(c.parts))
	var wg sync.WaitGroup
	for i, p := range c.parts {
		wg.Add(1)
		go func(i int, p *Part) {
			defer wg.Done()
			b := synopsis.NewBuilder()
			hists := make(map[int]map[string][]int, len(p.Units))
			for _, u := range p.Units {
				b.AddSubtree(u)
				hists[u.Ord] = synopsis.SubtreeHist(u)
			}
			partial[i] = b.Synopsis()
			unitHists[i] = hists
		}(i, p)
	}
	wg.Wait()
	histByOrd := make(map[int]map[string][]int)
	for _, m := range unitHists {
		for ord, h := range m {
			histByOrd[ord] = h
		}
	}

	// Spine fold: every child of a spine node is either a spine node or
	// a unit root (cutting promotes all children to units; some are cut
	// again later), so one bottom-up pass — descending preorder ordinal
	// visits children before parents — assembles each spine subtree's
	// histogram from memoized pieces without re-walking any shard.
	sb := synopsis.NewBuilder()
	spineHist := make(map[int]map[string][]int, len(c.spine))
	for i := len(c.spine) - 1; i >= 0; i-- {
		s := c.spine[i]
		sum := make(map[string][]int)
		for _, ch := range s.Children {
			if c.homes[ch.Ord] == -1 {
				synopsis.MergeHist(sum, spineHist[ch.Ord])
			} else {
				synopsis.MergeHist(sum, histByOrd[ch.Ord])
			}
		}
		lvl := s.Level()
		tf := make(map[string][]int, len(sum))
		for tag, arr := range sum {
			if len(arr) <= lvl+1 {
				continue // no entries strictly below the anchor
			}
			shifted := make([]int, len(arr)-lvl)
			copy(shifted[1:], arr[lvl+1:])
			tf[tag] = shifted
		}
		sb.AddAnchor(spinePath(s), s.Value != "", tf)
		own := make([]int, lvl+1)
		own[lvl] = 1
		synopsis.MergeHist(sum, map[string][]int{s.Tag: own})
		spineHist[s.Ord] = sum
	}

	return synopsis.Merge(append(partial, sb.Synopsis())...)
}

// spinePath returns n's full root path, outermost tag first, ending
// with n's own tag.
func spinePath(n *xmltree.Node) []string {
	var path []string
	for a := n; a != nil; a = a.Parent {
		path = append(path, a.Tag)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
