package shard

import (
	"bytes"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/store"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func layoutOf(c *Corpus) (spine []int, units [][]int) {
	for _, s := range c.Spine() {
		spine = append(spine, s.Ord)
	}
	for _, p := range c.Parts() {
		ords := make([]int, len(p.Units))
		for i, u := range p.Units {
			ords[i] = u.Ord
		}
		units = append(units, ords)
	}
	return spine, units
}

func compareCorpora(t *testing.T, want, got *Corpus) {
	t.Helper()
	for _, tag := range []string{"item", "name", "parlist", "incategory", "absent"} {
		a, b := want.Nodes(tag), got.Nodes(tag)
		if len(a) != len(b) {
			t.Fatalf("Nodes(%s): %d vs %d", tag, len(a), len(b))
		}
		for i := range a {
			if a[i].Ord != b[i].Ord {
				t.Fatalf("Nodes(%s)[%d] ord mismatch", tag, i)
			}
		}
		pa := want.Predicate("item", dewey.Descendant, tag, index.ValueEq(""))
		pb := got.Predicate("item", dewey.Descendant, tag, index.ValueEq(""))
		if pa != pb {
			t.Fatalf("Predicate(%s): %+v vs %+v", tag, pa, pb)
		}
	}
	// Probe every item anchor and every spine anchor on both corpora.
	wd, gd := want.Doc(), got.Doc()
	for _, anchor := range want.Nodes("item") {
		a := want.Candidates(anchor, dewey.Descendant, "text", index.ValueEq(""))
		b := got.Candidates(gd.Nodes[anchor.Ord], dewey.Descendant, "text", index.ValueEq(""))
		if len(a) != len(b) {
			t.Fatalf("item %d Candidates: %d vs %d", anchor.Ord, len(a), len(b))
		}
	}
	for _, s := range want.Spine() {
		a := want.Candidates(s, dewey.Descendant, "item", index.ValueEq(""))
		b := got.Candidates(gd.Nodes[s.Ord], dewey.Descendant, "item", index.ValueEq(""))
		if len(a) != len(b) {
			t.Fatalf("spine %d Candidates: %d vs %d", s.Ord, len(a), len(b))
		}
	}
	if want.Synopsis().Fingerprint() != got.Synopsis().Fingerprint() {
		t.Fatal("synopsis fingerprints diverge")
	}
	_ = wd
}

func TestFromLayoutMatchesSplit(t *testing.T) {
	doc, err := xmark.Generate(xmark.Options{Seed: 11, Items: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		want, err := Split(doc, p)
		if err != nil {
			t.Fatal(err)
		}
		spine, units := layoutOf(want)
		got, err := FromLayout(doc, spine, units, nil)
		if err != nil {
			t.Fatal(err)
		}
		compareCorpora(t, want, got)
	}
}

func TestFromLayoutSnapshotSources(t *testing.T) {
	doc, err := xmark.Generate(xmark.Options{Seed: 11, Items: 40})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Split(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	spine, units := layoutOf(want)

	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf, &store.Snapshot{Doc: doc}); err != nil {
		t.Fatal(err)
	}
	r, err := store.ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]index.Source, len(units))
	for i, ords := range units {
		ps, err := r.PartSource(ords)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = ps
	}
	got, err := FromLayout(r.Document(), spine, units, sources)
	if err != nil {
		t.Fatal(err)
	}
	compareCorpora(t, want, got)
}

func TestFromLayoutRejectsBadLayouts(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><b><c/></b><d/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Split(doc, 1)
	if err != nil {
		t.Fatal(err)
	}
	spine, units := layoutOf(want)
	if _, err := FromLayout(doc, spine, units, nil); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	cases := map[string]func() (spine []int, units [][]int){
		"no parts":       func() ([]int, [][]int) { return nil, nil },
		"out of range":   func() ([]int, [][]int) { return nil, [][]int{{99}} },
		"duplicate":      func() ([]int, [][]int) { return nil, [][]int{{0, 0}} },
		"partial cover":  func() ([]int, [][]int) { return nil, [][]int{{1}} },
		"orphan unit":    func() ([]int, [][]int) { return nil, [][]int{{1, 2, 3}} },
		"non-spine root": func() ([]int, [][]int) { return []int{1}, [][]int{{2, 3}} },
	}
	for name, fn := range cases {
		s, u := fn()
		if _, err := FromLayout(doc, s, u, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := FromLayout(doc, spine, units, []index.Source{nil, nil}); err == nil {
		t.Error("source count mismatch accepted")
	}
}
