package shard

import (
	"slices"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// Corpus implements index.Source over the whole forest by merging the
// per-part indexes (plus the spine), and index.ShardedSource so
// whole-corpus scans — the TFIDF statistics pass above all — can fan out
// across the parts in parallel.
var (
	_ index.Source        = (*Corpus)(nil)
	_ index.ShardedSource = (*Corpus)(nil)
)

// Nodes returns all nodes with the tag in document order, merged across
// parts and spine. Merged postings are cached per tag; the returned
// slice is shared and must not be modified.
func (c *Corpus) Nodes(tag string) []*xmltree.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodesLocked(tag)
}

// nodesLocked is Nodes with c.mu held.
// +whirllint:locked
func (c *Corpus) nodesLocked(tag string) []*xmltree.Node {
	if cached, ok := c.mergedTag[tag]; ok {
		return cached
	}
	var out []*xmltree.Node
	for _, p := range c.parts {
		out = append(out, p.Ix.Nodes(tag)...)
	}
	out = append(out, c.spineByTag[tag]...)
	slices.SortFunc(out, func(a, b *xmltree.Node) int { return a.Ord - b.Ord })
	c.mergedTag[tag] = out
	return out
}

// NodesMatching returns the tag nodes satisfying vt in document order.
// Non-trivial value tests filter the merged postings once and cache.
func (c *Corpus) NodesMatching(tag string, vt index.ValueTest) []*xmltree.Node {
	if vt.Any() {
		return c.Nodes(tag)
	}
	key := tag + "\x01" + vt.Op + "\x01" + vt.Value
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.mergedMatch[key]; ok {
		return cached
	}
	var out []*xmltree.Node
	for _, n := range c.nodesLocked(tag) {
		if vt.Matches(n.Value) {
			out = append(out, n)
		}
	}
	c.mergedMatch[key] = out
	return out
}

// CountTag returns the number of nodes with the tag.
func (c *Corpus) CountTag(tag string) int { return len(c.Nodes(tag)) }

// home resolves the shard holding n: the part ID of its nearest
// unit-root ancestor, or -1 when n sits on the spine.
func (c *Corpus) home(n *xmltree.Node) int {
	for cur := n; cur != nil; cur = cur.Parent {
		if h, ok := c.homes[cur.Ord]; ok {
			return h
		}
	}
	return -1
}

// Candidates returns the tag nodes satisfying vt on the axis of anchor,
// in document order. Anchors inside a part delegate to that part's index
// — complete subtrees make the local answer globally exact. Spine
// anchors (whose subtrees span parts) merge the spine with per-part
// range scans under the dominated units.
func (c *Corpus) Candidates(anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	return c.AppendCandidates(nil, anchor, axis, tag, vt)
}

// AppendCandidates implements index.Source's append-into-scratch probe
// with the same delegation structure as Candidates.
// +whirllint:hotpath
func (c *Corpus) AppendCandidates(dst []*xmltree.Node, anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	switch axis {
	case dewey.Self:
		if anchor.Tag == tag && vt.Matches(anchor.Value) {
			return append(dst, anchor)
		}
		return dst
	case dewey.Child:
		for _, ch := range anchor.Children {
			if ch.Tag == tag && vt.Matches(ch.Value) {
				dst = append(dst, ch)
			}
		}
		return dst
	case dewey.Descendant:
		if h := c.home(anchor); h >= 0 {
			return c.parts[h].Ix.AppendCandidates(dst, anchor, axis, tag, vt)
		}
		return c.spineDescendants(dst, anchor, tag, vt)
	default:
		return dst
	}
}

// spineDescendants appends the tag descendants of a spine anchor to dst:
// the matching spine nodes strictly below it, plus — for every unit the
// anchor dominates — the unit root and the unit's local descendant scan.
// Only the appended tail is sorted, so dst's existing prefix is untouched.
func (c *Corpus) spineDescendants(dst []*xmltree.Node, anchor *xmltree.Node, tag string, vt index.ValueTest) []*xmltree.Node {
	start := len(dst)
	for _, s := range c.spineByTag[tag] {
		if s != anchor && anchor.ID.IsAncestorOf(s.ID) && vt.Matches(s.Value) {
			dst = append(dst, s)
		}
	}
	for _, p := range c.parts {
		for _, u := range p.Units {
			if !anchor.ID.IsAncestorOf(u.ID) {
				continue
			}
			if u.Tag == tag && vt.Matches(u.Value) {
				dst = append(dst, u)
			}
			dst = p.Ix.AppendCandidates(dst, u, dewey.Descendant, tag, vt)
		}
	}
	tail := dst[start:]
	slices.SortFunc(tail, func(a, b *xmltree.Node) int { return a.Ord - b.Ord })
	return dst
}

// Predicate computes whole-corpus statistics for the component predicate
// relating rootTag nodes to (tag, vt) nodes via axis. Probes append into
// one scratch buffer reused across roots; descendant probes of part
// anchors count via the part's TF without materializing.
func (c *Corpus) Predicate(rootTag string, axis dewey.Axis, tag string, vt index.ValueTest) index.PredicateStats {
	roots := c.Nodes(rootTag)
	st := index.PredicateStats{RootCount: len(roots)}
	var buf []*xmltree.Node
	for _, r := range roots {
		var tf int
		if h := c.home(r); axis == dewey.Descendant && h >= 0 {
			tf = c.parts[h].Ix.TF(r, axis, tag, vt)
		} else {
			buf = c.AppendCandidates(buf[:0], r, axis, tag, vt)
			tf = len(buf)
		}
		if tf > 0 {
			st.Satisfying++
			st.TotalPairs += tf
			if tf > st.MaxTF {
				st.MaxTF = tf
			}
		}
	}
	return st
}

// TF returns the term frequency of (tag, vt) on the axis of n.
func (c *Corpus) TF(n *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) int {
	if axis == dewey.Descendant {
		if h := c.home(n); h >= 0 {
			return c.parts[h].Ix.TF(n, axis, tag, vt)
		}
	}
	return len(c.Candidates(n, axis, tag, vt))
}

// ShardSources implements index.ShardedSource: one sub-source per part,
// plus — when interior nodes were cut — a spine sub-source covering the
// residual forest whose subtrees span parts. Together the sub-sources'
// root sets partition the corpus's, and each is exact for its own
// anchors.
func (c *Corpus) ShardSources() []index.Source {
	out := make([]index.Source, 0, len(c.parts)+1)
	for _, p := range c.parts {
		out = append(out, p.Ix)
	}
	if len(c.spine) > 0 {
		out = append(out, &spineView{c: c})
	}
	return out
}

// spineView exposes the spine — the cut interior nodes whose subtrees
// span parts — as an index.Source. Tag scans see only spine nodes
// (that is the partition contract: the spine owns these roots), while
// structural probes anchored at a spine node answer over the whole
// corpus via Corpus.Candidates.
type spineView struct {
	c *Corpus
}

var _ index.Source = (*spineView)(nil)

func (v *spineView) Nodes(tag string) []*xmltree.Node { return v.c.spineByTag[tag] }

func (v *spineView) NodesMatching(tag string, vt index.ValueTest) []*xmltree.Node {
	if vt.Any() {
		return v.c.spineByTag[tag]
	}
	var out []*xmltree.Node
	for _, n := range v.c.spineByTag[tag] {
		if vt.Matches(n.Value) {
			out = append(out, n)
		}
	}
	return out
}

func (v *spineView) CountTag(tag string) int { return len(v.c.spineByTag[tag]) }

func (v *spineView) Candidates(anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	return v.c.Candidates(anchor, axis, tag, vt)
}

// +whirllint:hotpath
func (v *spineView) AppendCandidates(dst []*xmltree.Node, anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	return v.c.AppendCandidates(dst, anchor, axis, tag, vt)
}

func (v *spineView) Predicate(rootTag string, axis dewey.Axis, tag string, vt index.ValueTest) index.PredicateStats {
	roots := v.Nodes(rootTag)
	st := index.PredicateStats{RootCount: len(roots)}
	var buf []*xmltree.Node
	for _, r := range roots {
		buf = v.AppendCandidates(buf[:0], r, axis, tag, vt)
		tf := len(buf)
		if tf > 0 {
			st.Satisfying++
			st.TotalPairs += tf
			if tf > st.MaxTF {
				st.MaxTF = tf
			}
		}
	}
	return st
}

func (v *spineView) TF(n *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) int {
	return v.c.TF(n, axis, tag, vt)
}
