package shard

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// Corpus implements index.Source over the whole forest by merging the
// per-part indexes (plus the spine), and index.ShardedSource so
// whole-corpus scans — the TFIDF statistics pass above all — can fan out
// across the parts in parallel.
var (
	_ index.Source        = (*Corpus)(nil)
	_ index.ShardedSource = (*Corpus)(nil)
)

// Nodes returns all nodes with the tag in document order, merged across
// parts and spine. Merged postings are cached per tag; the returned
// slice is shared and must not be modified.
func (c *Corpus) Nodes(tag string) []*xmltree.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodesLocked(tag)
}

// nodesLocked is Nodes with c.mu held.
// +whirllint:locked
func (c *Corpus) nodesLocked(tag string) []*xmltree.Node {
	if cached, ok := c.mergedTag[tag]; ok {
		return cached
	}
	var out []*xmltree.Node
	for _, p := range c.parts {
		out = append(out, p.Ix.Nodes(tag)...)
	}
	out = append(out, c.spineByTag[tag]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Ord < out[j].Ord })
	c.mergedTag[tag] = out
	return out
}

// NodesMatching returns the tag nodes satisfying vt in document order.
// Non-trivial value tests filter the merged postings once and cache.
func (c *Corpus) NodesMatching(tag string, vt index.ValueTest) []*xmltree.Node {
	if vt.Any() {
		return c.Nodes(tag)
	}
	key := tag + "\x01" + vt.Op + "\x01" + vt.Value
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.mergedMatch[key]; ok {
		return cached
	}
	var out []*xmltree.Node
	for _, n := range c.nodesLocked(tag) {
		if vt.Matches(n.Value) {
			out = append(out, n)
		}
	}
	c.mergedMatch[key] = out
	return out
}

// CountTag returns the number of nodes with the tag.
func (c *Corpus) CountTag(tag string) int { return len(c.Nodes(tag)) }

// home resolves the shard holding n: the part ID of its nearest
// unit-root ancestor, or -1 when n sits on the spine.
func (c *Corpus) home(n *xmltree.Node) int {
	for cur := n; cur != nil; cur = cur.Parent {
		if h, ok := c.homes[cur.Ord]; ok {
			return h
		}
	}
	return -1
}

// Candidates returns the tag nodes satisfying vt on the axis of anchor,
// in document order. Anchors inside a part delegate to that part's index
// — complete subtrees make the local answer globally exact. Spine
// anchors (whose subtrees span parts) merge the spine with per-part
// range scans under the dominated units.
func (c *Corpus) Candidates(anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	switch axis {
	case dewey.Self:
		if anchor.Tag == tag && vt.Matches(anchor.Value) {
			return []*xmltree.Node{anchor}
		}
		return nil
	case dewey.Child:
		var out []*xmltree.Node
		for _, ch := range anchor.Children {
			if ch.Tag == tag && vt.Matches(ch.Value) {
				out = append(out, ch)
			}
		}
		return out
	case dewey.Descendant:
		if h := c.home(anchor); h >= 0 {
			return c.parts[h].Ix.Candidates(anchor, axis, tag, vt)
		}
		return c.spineDescendants(anchor, tag, vt)
	default:
		return nil
	}
}

// spineDescendants collects the tag descendants of a spine anchor: the
// matching spine nodes strictly below it, plus — for every unit the
// anchor dominates — the unit root and the unit's local descendant scan.
func (c *Corpus) spineDescendants(anchor *xmltree.Node, tag string, vt index.ValueTest) []*xmltree.Node {
	var out []*xmltree.Node
	for _, s := range c.spineByTag[tag] {
		if s != anchor && anchor.ID.IsAncestorOf(s.ID) && vt.Matches(s.Value) {
			out = append(out, s)
		}
	}
	for _, p := range c.parts {
		for _, u := range p.Units {
			if !anchor.ID.IsAncestorOf(u.ID) {
				continue
			}
			if u.Tag == tag && vt.Matches(u.Value) {
				out = append(out, u)
			}
			out = append(out, p.Ix.Candidates(u, dewey.Descendant, tag, vt)...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ord < out[j].Ord })
	return out
}

// Predicate computes whole-corpus statistics for the component predicate
// relating rootTag nodes to (tag, vt) nodes via axis.
func (c *Corpus) Predicate(rootTag string, axis dewey.Axis, tag string, vt index.ValueTest) index.PredicateStats {
	roots := c.Nodes(rootTag)
	st := index.PredicateStats{RootCount: len(roots)}
	for _, r := range roots {
		tf := c.TF(r, axis, tag, vt)
		if tf > 0 {
			st.Satisfying++
			st.TotalPairs += tf
			if tf > st.MaxTF {
				st.MaxTF = tf
			}
		}
	}
	return st
}

// TF returns the term frequency of (tag, vt) on the axis of n.
func (c *Corpus) TF(n *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) int {
	if axis == dewey.Descendant {
		if h := c.home(n); h >= 0 {
			return c.parts[h].Ix.TF(n, axis, tag, vt)
		}
	}
	return len(c.Candidates(n, axis, tag, vt))
}

// ShardSources implements index.ShardedSource: one sub-source per part,
// plus — when interior nodes were cut — a spine sub-source covering the
// residual forest whose subtrees span parts. Together the sub-sources'
// root sets partition the corpus's, and each is exact for its own
// anchors.
func (c *Corpus) ShardSources() []index.Source {
	out := make([]index.Source, 0, len(c.parts)+1)
	for _, p := range c.parts {
		out = append(out, p.Ix)
	}
	if len(c.spine) > 0 {
		out = append(out, &spineView{c: c})
	}
	return out
}

// spineView exposes the spine — the cut interior nodes whose subtrees
// span parts — as an index.Source. Tag scans see only spine nodes
// (that is the partition contract: the spine owns these roots), while
// structural probes anchored at a spine node answer over the whole
// corpus via Corpus.Candidates.
type spineView struct {
	c *Corpus
}

var _ index.Source = (*spineView)(nil)

func (v *spineView) Nodes(tag string) []*xmltree.Node { return v.c.spineByTag[tag] }

func (v *spineView) NodesMatching(tag string, vt index.ValueTest) []*xmltree.Node {
	if vt.Any() {
		return v.c.spineByTag[tag]
	}
	var out []*xmltree.Node
	for _, n := range v.c.spineByTag[tag] {
		if vt.Matches(n.Value) {
			out = append(out, n)
		}
	}
	return out
}

func (v *spineView) CountTag(tag string) int { return len(v.c.spineByTag[tag]) }

func (v *spineView) Candidates(anchor *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) []*xmltree.Node {
	return v.c.Candidates(anchor, axis, tag, vt)
}

func (v *spineView) Predicate(rootTag string, axis dewey.Axis, tag string, vt index.ValueTest) index.PredicateStats {
	roots := v.Nodes(rootTag)
	st := index.PredicateStats{RootCount: len(roots)}
	for _, r := range roots {
		tf := v.TF(r, axis, tag, vt)
		if tf > 0 {
			st.Satisfying++
			st.TotalPairs += tf
			if tf > st.MaxTF {
				st.MaxTF = tf
			}
		}
	}
	return st
}

func (v *spineView) TF(n *xmltree.Node, axis dewey.Axis, tag string, vt index.ValueTest) int {
	return v.c.TF(n, axis, tag, vt)
}
