package shard_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/shard"
	"repro/internal/synopsis"
	"repro/internal/xmltree"
)

// TestCorpusSynopsisMatchesWholeDoc partitions documents at several
// shard counts and checks the merged per-shard synopsis is identical —
// same paths, counts and all per-diff descendant arrays — to a
// whole-document build. This is what makes planner statistics
// shard-count independent.
func TestCorpusSynopsisMatchesWholeDoc(t *testing.T) {
	docs := map[string]*xmltree.Document{
		"xmark-S": xmarkDoc(t, 40),
		"xmark-M": xmarkDoc(t, 200),
	}
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 3; i++ {
		docs[fmt.Sprintf("random%d", i)] = randomDoc(r)
	}
	for name, doc := range docs {
		whole := synopsis.Build(doc).Fingerprint()
		for _, p := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/p=%d", name, p), func(t *testing.T) {
				c, err := shard.Split(doc, p)
				if err != nil {
					t.Fatal(err)
				}
				syn := c.Synopsis()
				if got := syn.Fingerprint(); got != whole {
					t.Fatalf("sharded synopsis fingerprint %s != whole-doc %s", got, whole)
				}
				if again := c.Synopsis(); again != syn {
					t.Fatal("Synopsis must be memoized")
				}
			})
		}
	}
}
