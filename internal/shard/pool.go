package shard

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ExecOptions tunes the sharded executor's worker pool.
type ExecOptions struct {
	// Workers bounds the pool. 0 (the default) resolves to
	// min(GOMAXPROCS, shards): enough workers to saturate the cores the
	// runtime will actually schedule on, never more goroutines than
	// shards to schedule them over.
	Workers int
	// DisableStealing pins every shard to its owning worker: idle
	// workers park instead of pulling batches from loaded queues. The
	// A/B switch for the equivalence suite and for measuring what
	// stealing buys under skew.
	DisableStealing bool
	// StealBatch is how many matches one Step consumes per grab
	// (default 32): large enough to amortize the victim queue's lock,
	// small enough that cancellation and threshold growth stay prompt.
	StealBatch int
}

// defaultStealBatch is the per-grab match budget when ExecOptions
// leaves StealBatch zero.
const defaultStealBatch = 32

// SetExecOptions replaces the executor options. Call before the first
// run; the zero value restores the defaults.
func (e *Engines) SetExecOptions(opts ExecOptions) { e.opts = opts }

// resolveWorkers returns the pool bound for this Engines: the
// configured override, else min(GOMAXPROCS, shards), never below 1.
func (e *Engines) resolveWorkers() int {
	w := e.opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(e.engs) {
		w = len(e.engs)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// LastRunWorkers reports the most recent run's pool geometry: the
// worker bound it resolved and the peak number of worker goroutines
// observed running concurrently. Peak can never exceed the bound; the
// regression test for the old one-goroutine-per-shard fan-out pins
// both. Values are per-Engines and last-writer-wins under concurrent
// runs — a diagnostic, not a synchronization point.
func (e *Engines) LastRunWorkers() (bound, peak int) {
	return int(e.lastWorkers.Load()), int(e.lastPeak.Load())
}

// poolState is the shared state of one pooled evaluation.
type poolState struct {
	runs     []*core.ParallelRun
	workers  int
	batch    int
	stealing bool

	running atomic.Int64
	peak    atomic.Int64

	steals     atomic.Int64
	stolen     atomic.Int64
	stolenFrom []atomic.Int64 // per shard index: matches taken by non-owners
}

// runPooled evaluates a Whirlpool-S sharded query on a bounded worker
// pool with match-level work stealing. Each worker seeds and primarily
// serves the shards congruent to its index; once its own queues drain
// it pulls batches from the most loaded foreign queue, processing them
// through that shard's engine against the same shared top-k set. The
// per-shard stats and steal counters come back for merging.
func (e *Engines) runPooled(ctx context.Context, shared *core.SharedTopK) ([]core.Stats, *poolState, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &poolState{
		workers:    e.resolveWorkers(),
		batch:      e.opts.StealBatch,
		stealing:   !e.opts.DisableStealing,
		runs:       make([]*core.ParallelRun, len(e.engs)),
		stolenFrom: make([]atomic.Int64, len(e.engs)),
	}
	if st.batch < 1 {
		st.batch = defaultStealBatch
	}
	for i, rn := range e.engs {
		pr, err := rn.eng.NewParallelRun(runCtx, shared, rn.shard)
		if err != nil {
			return nil, nil, err
		}
		st.runs[i] = pr
	}

	var wg sync.WaitGroup
	for w := 0; w < st.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			poolWorker(runCtx, w, st)
		}(w)
	}
	wg.Wait()

	e.lastWorkers.Store(int64(st.workers))
	e.lastPeak.Store(st.peak.Load())

	if err := ctx.Err(); err != nil {
		// Record the aborts (Finish counts them into engine totals) and
		// surface the cancellation.
		for _, pr := range st.runs {
			pr.Finish() //nolint:errcheck — the context error is returned below
		}
		return nil, nil, err
	}
	stats := make([]core.Stats, len(st.runs))
	for i, pr := range st.runs {
		s, err := pr.Finish()
		if err != nil {
			return nil, nil, err
		}
		stats[i] = s
	}
	return stats, st, nil
}

// poolWorker is one bounded worker: it allocates its scratch, seeds
// the shards it owns, then enters the steal loop. Lifecycle is tied to
// the pool's WaitGroup in runPooled.
func poolWorker(ctx context.Context, w int, st *poolState) {
	raisePeak(&st.peak, st.running.Add(1))
	defer st.running.Add(-1)

	ws := core.NewScratch()
	// Seed own shards before working: every shard has exactly one owner
	// (workers ≥ 1), so every shard gets seeded exactly once, and
	// thieves only ever see a queue that Seed has fully published.
	for i := w; i < len(st.runs); i += st.workers {
		select {
		case <-ctx.Done():
			return
		default:
		}
		st.runs[i].Seed()
	}
	stealLoop(ctx, w, st, ws)
}

// raisePeak lifts the peak high-water mark to at least n. The loop
// terminates the moment another raiser has published an equal or higher
// peak, so contention only ever shortens it.
func raisePeak(peak *atomic.Int64, n int64) {
	for p := peak.Load(); n > p; p = peak.Load() {
		if peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// Idle backoff: a worker that found no runnable shard yields first and
// naps once the pool has clearly outrun it, so waiting for in-flight
// matches on other workers never spins a core hot.
const (
	idleSpins = 64
	idleNap   = 5 * time.Microsecond
)

// stealLoop is the worker's steady state: pick a shard — own first,
// then the deepest foreign queue — and step a batch of its matches.
// Cancellation is polled every iteration here and every match inside
// Step, so a cancelled query stops within one batch. The loop body is
// allocation-free (the whirllint hotalloc gate walks it from this
// root).
// +whirllint:hotpath
func stealLoop(ctx context.Context, w int, st *poolState, ws *core.Scratch) {
	idles := 0
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		idx, stolen := st.pick(w)
		if idx < 0 {
			if st.allDone() {
				return
			}
			idles++
			if idles > idleSpins {
				time.Sleep(idleNap)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idles = 0
		n := st.runs[idx].Step(ws, st.batch)
		if n > 0 && stolen {
			st.steals.Add(1)
			st.stolen.Add(int64(n))
			st.stolenFrom[idx].Add(int64(n))
		}
	}
}

// pick chooses the next shard for worker w: any of its own shards with
// queued work first (no steal), otherwise — when stealing is enabled —
// the foreign shard with the deepest queue, ties broken toward the
// shard that has created the most matches (the hottest producer, the
// per-shard matches_created feedback). Returns -1 when no queue has
// work right now; stolen reports whether the choice crosses ownership.
func (st *poolState) pick(w int) (idx int, stolen bool) {
	for i := w; i < len(st.runs); i += st.workers {
		r := st.runs[i]
		if !r.IsDone() && r.Depth() > 0 {
			return i, false
		}
	}
	if !st.stealing {
		return -1, false
	}
	best, bestDepth := -1, 0
	var bestCreated int64
	for i := range st.runs {
		r := st.runs[i]
		if r.IsDone() {
			continue
		}
		d := r.Depth()
		if d == 0 {
			continue
		}
		c := r.Created()
		if d > bestDepth || (d == bestDepth && c > bestCreated) {
			best, bestDepth, bestCreated = i, d, c
		}
	}
	if best < 0 {
		return -1, false
	}
	return best, best%st.workers != w
}

// allDone reports whether every shard run has consumed its last match.
func (st *poolState) allDone() bool {
	for _, r := range st.runs {
		if !r.IsDone() {
			return false
		}
	}
	return true
}

// runBounded evaluates the non-steal algorithms (Whirlpool-M, the
// LockSteps): each shard engine still runs its own RunShared to
// completion, but at most min(GOMAXPROCS, shards) of them concurrently
// — shard indices flow through a channel to a bounded worker set
// instead of one unconditional goroutine per shard. The first engine
// error cancels the remaining shards.
func (e *Engines) runBounded(ctx context.Context, shared *core.SharedTopK) ([]core.Stats, []error, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.resolveWorkers()
	stats := make([]core.Stats, len(e.engs))
	errs := make([]error, len(e.engs))
	idxc := make(chan int)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raisePeak(&peak, running.Add(1))
			defer running.Add(-1)
			for i := range idxc {
				rn := e.engs[i]
				stats[i], errs[i] = rn.eng.RunShared(runCtx, shared, rn.shard)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := range e.engs {
		idxc <- i
	}
	close(idxc)
	wg.Wait()

	e.lastWorkers.Store(int64(workers))
	e.lastPeak.Store(peak.Load())
	return stats, errs, nil
}
