package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/pattern"
)

// Engines evaluates one query over a partitioned corpus: one core.Engine
// per sub-source with root candidates, all offering into and pruning
// against a single core.SharedTopK per run. Like core.Engine it is
// immutable after construction (except the engines' atomic totals) and
// safe for repeated, concurrent RunContext calls.
type Engines struct {
	corpus *Corpus
	cfg    core.Config
	engs   []runner
	reg    *obs.Registry
	opts   ExecOptions

	// Most recent run's pool geometry, for LastRunWorkers.
	lastWorkers atomic.Int64
	lastPeak    atomic.Int64
}

// runner pairs an engine with its shard id (the index of its sub-source
// in the corpus's ShardSources — the spine, when present, is the last).
type runner struct {
	shard int
	eng   *core.Engine
}

// NewEngines builds the per-shard engines for q over the corpus. cfg is
// the standard engine configuration; cfg.Scorer must be built against
// the whole corpus (one global scorer keeps scores — and therefore the
// shared threshold — comparable across shards). Sub-sources without a
// single root candidate are skipped: they cannot spawn a match.
func (c *Corpus) NewEngines(q *pattern.Query, cfg core.Config) (*Engines, error) {
	if cfg.Scorer == nil {
		return nil, fmt.Errorf("shard: Config.Scorer is required (build it over the whole corpus)")
	}
	root := q.Root()
	vt := index.Test(root.ValueOp, root.Value)
	e := &Engines{corpus: c, cfg: cfg}
	for shard, sub := range c.ShardSources() {
		if len(sub.NodesMatching(root.Tag, vt)) == 0 {
			continue
		}
		eng, err := core.New(sub, q, cfg)
		if err != nil {
			return nil, err
		}
		e.engs = append(e.engs, runner{shard: shard, eng: eng})
	}
	return e, nil
}

// ObserveInto registers per-run shard metrics (per-shard counters, run
// duration and skew histograms, merge latency) with reg. Call before the
// first run; a nil registry disables recording.
func (e *Engines) ObserveInto(reg *obs.Registry) { e.reg = reg }

// Shards returns the number of participating engines.
func (e *Engines) Shards() int { return len(e.engs) }

// Config returns the engines' shared configuration.
func (e *Engines) Config() core.Config { return e.cfg }

// Corpus returns the partitioned corpus the engines evaluate.
func (e *Engines) Corpus() *Corpus { return e.corpus }

// Run evaluates the query over all shards concurrently and returns the
// merged result.
func (e *Engines) Run() (*core.Result, error) { return e.RunContext(context.Background()) }

// RunContext evaluates every shard against one fresh SharedTopK, so
// each shard's guaranteed scores immediately tighten the pruning
// threshold of all others, then merges: answers come from the shared
// set (already deterministic — score descending, document order
// ascending), stats are summed, Duration is the sharded wall clock.
//
// Concurrency is bounded at min(GOMAXPROCS, shards) worker goroutines
// (override with ExecOptions.Workers) instead of one unconditional
// goroutine per shard. Whirlpool-S shards additionally share their
// router queues with the pool: an idle worker steals batches of alive
// partial matches from the most loaded shard's queue and runs them
// through that shard's servers, so a skewed layout no longer leaves
// cores idle behind one hot shard (see internal/shard/pool.go and
// DESIGN.md, work stealing). The other algorithms run one shard per
// worker with no stealing; the first engine error cancels the rest.
func (e *Engines) RunContext(ctx context.Context) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	shared := core.NewSharedTopK(e.cfg.K, e.cfg.Threshold)
	start := time.Now()

	var stats []core.Stats
	var st *poolState
	if e.cfg.Algorithm == core.WhirlpoolS {
		var err error
		stats, st, err = e.runPooled(ctx, shared)
		if err != nil {
			return nil, err
		}
	} else {
		var errs []error
		var err error
		stats, errs, err = e.runBounded(ctx, shared)
		if err != nil {
			return nil, err
		}
		if err := firstError(ctx, errs); err != nil {
			return nil, err
		}
	}

	mergeStart := time.Now()
	res := &core.Result{Answers: shared.Answers()}
	mergeDur := time.Since(mergeStart)
	for _, s := range stats {
		res.Stats.ServerOps += s.ServerOps
		res.Stats.JoinComparisons += s.JoinComparisons
		res.Stats.MatchesCreated += s.MatchesCreated
		res.Stats.Pruned += s.Pruned
		res.Stats.PrunedRemote += s.PrunedRemote
	}
	if st != nil {
		res.Stats.Steals = st.steals.Load()
		res.Stats.StolenMatches = st.stolen.Load()
	}
	res.Stats.Duration = time.Since(start)
	e.observe(stats, st, mergeDur)
	return res, nil
}

// firstError picks the error to surface: the parent context's when it
// was cancelled, otherwise the first engine error that is not the echo
// of our own cross-shard cancellation.
func firstError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// observe records one run's per-shard metrics and emits per-shard
// summaries to a configured ShardSink. pool is the pooled run's state
// (nil for the bounded non-stealing path); it supplies the per-shard
// stolen-match attribution and the run's steal totals.
func (e *Engines) observe(stats []core.Stats, pool *poolState, mergeDur time.Duration) {
	sink, _ := e.cfg.Trace.(obs.ShardSink)
	var maxDur, sumDur time.Duration
	for i, rn := range e.engs {
		st := stats[i]
		if st.Duration > maxDur {
			maxDur = st.Duration
		}
		sumDur += st.Duration
		var stolenFrom int64
		if pool != nil {
			stolenFrom = pool.stolenFrom[i].Load()
		}
		if sink != nil {
			sink.ShardRun(rn.shard, obs.RunSummary{
				ServerOps:       st.ServerOps,
				JoinComparisons: st.JoinComparisons,
				MatchesCreated:  st.MatchesCreated,
				Pruned:          st.Pruned,
				PrunedRemote:    st.PrunedRemote,
				StolenMatches:   stolenFrom,
				DurationUS:      st.Duration.Microseconds(),
			})
		}
		if e.reg == nil {
			continue
		}
		shard := fmt.Sprintf("%d", rn.shard)
		e.reg.Counter("whirlpool_shard_server_ops_total", "shard", shard).Add(st.ServerOps)
		e.reg.Counter("whirlpool_shard_matches_created_total", "shard", shard).Add(st.MatchesCreated)
		e.reg.Counter("whirlpool_shard_matches_pruned_total", "shard", shard).Add(st.Pruned)
		e.reg.Counter("whirlpool_shard_pruned_remote_total", "shard", shard).Add(st.PrunedRemote)
		e.reg.Counter("whirlpool_shard_stolen_matches_total", "shard", shard).Add(stolenFrom)
		e.reg.Histogram("whirlpool_shard_run_duration_us", "shard", shard).Observe(st.Duration.Microseconds())
	}
	if e.reg == nil {
		return
	}
	if pool != nil {
		e.reg.Counter("whirlpool_shard_steal_batches_total").Add(pool.steals.Load())
		e.reg.Counter("whirlpool_shard_steals_total").Add(pool.stolen.Load())
		e.reg.Gauge("whirlpool_shard_workers").Set(int64(pool.workers))
		e.reg.Gauge("whirlpool_shard_workers_peak").Set(pool.peak.Load())
	}
	e.reg.Histogram("whirlpool_shard_merge_duration_us").Observe(mergeDur.Microseconds())
	if n := len(e.engs); n > 0 && sumDur > 0 {
		// Skew: slowest shard over mean shard duration, in permille.
		// Under the pooled executor a shard's duration is seed-to-done
		// wall clock, so this measures completion-time spread — stealing
		// narrows it even when per-shard work stays skewed.
		mean := sumDur / time.Duration(n)
		e.reg.Gauge("whirlpool_shard_skew_permille").Set(int64(maxDur * 1000 / mean))
	}
}

// ShardTotal is one shard engine's cumulative instrumentation.
type ShardTotal struct {
	Shard  int
	Totals core.Totals
}

// ShardTotals snapshots every shard engine's cumulative totals across
// all completed runs, shard order.
func (e *Engines) ShardTotals() []ShardTotal {
	out := make([]ShardTotal, 0, len(e.engs))
	for _, rn := range e.engs {
		out = append(out, ShardTotal{Shard: rn.shard, Totals: rn.eng.Totals()})
	}
	return out
}
