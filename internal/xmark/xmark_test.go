package xmark

import (
	"bytes"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/score"
	"repro/internal/xmltree"
)

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Write(&a, Options{Seed: 42, Items: 30}); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, Options{Seed: 42, Items: 30}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed must generate identical documents")
	}
	var c bytes.Buffer
	if err := Write(&c, Options{Seed: 43, Items: 30}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateParses(t *testing.T) {
	doc, err := Generate(Options{Seed: 1, Items: 50})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	if got := ix.CountTag("item"); got != 50 {
		t.Fatalf("items = %d, want 50", got)
	}
	// Every item has a name and a description (other sections add their
	// own, so count by parent).
	itemNames, itemDescs := 0, 0
	for _, n := range ix.Nodes("name") {
		if n.Parent.Tag == "item" {
			itemNames++
		}
	}
	for _, d := range ix.Nodes("description") {
		if d.Parent.Tag == "item" {
			itemDescs++
		}
	}
	if itemNames != 50 || itemDescs != 50 {
		t.Fatalf("item names = %d, item descriptions = %d", itemNames, itemDescs)
	}
	// The full XMark site sections are present with valid references.
	for _, tag := range []string{"category", "person", "open_auction", "closed_auction", "itemref", "personref"} {
		if ix.CountTag(tag) == 0 {
			t.Fatalf("missing section element %s", tag)
		}
	}
	items := make(map[string]bool)
	for _, it := range ix.Nodes("item") {
		for _, c := range it.Children {
			if c.Tag == "@id" {
				items[c.Value] = true
			}
		}
	}
	for _, ref := range ix.Nodes("itemref") {
		for _, c := range ref.Children {
			if c.Tag == "@item" && !items[c.Value] {
				t.Fatalf("dangling itemref %s", c.Value)
			}
		}
	}
}

func TestGenerateStructuralFeatures(t *testing.T) {
	doc, err := Generate(Options{Seed: 7, Items: 200})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	// Recursive parlists: some parlist must contain a nested parlist.
	nested := 0
	for _, p := range ix.Nodes("parlist") {
		for _, d := range ix.Candidates(p, dewey.Descendant, "parlist", index.ValueEq("")) {
			_ = d
			nested++
		}
	}
	if nested == 0 {
		t.Fatal("no recursive parlists generated (edge generalization unexercised)")
	}
	// Optional incategory: some items have one, some do not.
	withCat := ix.Predicate("item", dewey.Descendant, "incategory", index.ValueEq("")).Satisfying
	if withCat == 0 || withCat == 200 {
		t.Fatalf("incategory satisfying = %d; must be optional", withCat)
	}
	// Shared text: text appears under both mail and listitem.
	underMail, underListitem := 0, 0
	for _, txt := range ix.Nodes("text") {
		switch txt.Parent.Tag {
		case "mail":
			underMail++
		case "listitem":
			underListitem++
		}
	}
	if underMail == 0 || underListitem == 0 {
		t.Fatalf("text sharing broken: mail=%d listitem=%d", underMail, underListitem)
	}
}

// +whirllint:exactscore answers must clear the exact zero-score bar
func TestPaperQueriesHaveMatches(t *testing.T) {
	doc, err := Generate(Options{Seed: 3, Items: 300})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	queries := []string{
		"//item[./description/parlist]",
		"//item[./description/parlist and ./mailbox/mail/text]",
		"//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]",
	}
	for _, xp := range queries {
		q := pattern.MustParse(xp)
		s := score.NewTFIDF(ix, q, score.Sparse)
		// Each query must have at least one exact match in a document of
		// this size — the structural probabilities guarantee it
		// overwhelmingly.
		exact := 0
		for _, item := range ix.Nodes("item") {
			if score.AnswerScore(ix, q, s, item) >= float64(q.Size())-1e-9 {
				exact++
			}
		}
		if exact == 0 {
			t.Errorf("query %s has no exact matches in 300 items", xp)
		}
	}
}

func TestGenerateBytesCalibration(t *testing.T) {
	for _, target := range []int{50_000, 200_000} {
		doc, size, err := GenerateBytes(11, target)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(size) / float64(target)
		if ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("target %d: generated %d bytes (ratio %.2f)", target, size, ratio)
		}
		if doc.Size() == 0 {
			t.Fatal("empty document")
		}
	}
}

func TestGenerateZeroItems(t *testing.T) {
	doc, err := Generate(Options{Seed: 1, Items: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Roots) != 1 || doc.Roots[0].Tag != "site" {
		t.Fatal("zero-item document should still be a site")
	}
}

func TestWriteRoundTripsThroughSerializer(t *testing.T) {
	doc, err := Generate(Options{Seed: 5, Items: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	doc2, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Size() != doc.Size() {
		t.Fatalf("round trip size %d != %d", doc2.Size(), doc.Size())
	}
}
