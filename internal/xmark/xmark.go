// Package xmark generates deterministic XMark-equivalent auction-site
// documents. The paper evaluates on documents produced by the XMark
// benchmark generator (Section 6.2.1); this package synthesizes documents
// with the same structural features its queries Q1–Q3 and relaxations
// exercise:
//
//   - recursive nodes (parlist inside description) enable edge
//     generalization: ./description/parlist vs .//parlist,
//   - optional nodes (incategory, mailbox contents) enable leaf deletion,
//   - shared nodes (text under both mail and listitem) enable subtree
//     promotion.
//
// Generation is seeded and fully deterministic; documents can be produced
// as parsed trees (Generate) or streamed as serialized XML (Write), and
// sized by item count or by target serialized bytes (GenerateBytes) to
// match the paper's 1 MB / 10 MB / 50 MB configurations.
package xmark

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/xmltree"
)

// Options configures generation.
type Options struct {
	// Seed drives all randomness; equal seeds give identical documents.
	Seed int64
	// Items is the number of item elements to generate.
	Items int
}

var (
	regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	words   = []string{
		"gold", "silver", "amber", "vintage", "rare", "antique", "brass",
		"carved", "painted", "woven", "glass", "ivory", "oak", "walnut",
		"ceramic", "bronze", "linen", "silk", "jade", "pearl", "crystal",
		"ornate", "rustic", "gilded", "enamel", "lacquer", "marble", "onyx",
	}
	locations = []string{"United States", "Germany", "Japan", "France", "Brazil", "Kenya"}
	payments  = []string{"Creditcard", "Cash", "Money order", "Personal check"}
)

// Write streams a generated document as XML to w. Beyond the items the
// paper's queries touch, the document carries the XMark benchmark's
// other sections in realistic proportions: categories, people (with
// category interests), and open/closed auctions referencing items and
// people by id.
func Write(w io.Writer, opts Options) error {
	g := &generator{r: rand.New(rand.NewSource(opts.Seed)), w: w}
	categories := opts.Items/10 + 1
	people := opts.Items/2 + 1
	openAuctions := opts.Items / 4
	closedAuctions := opts.Items / 8

	g.emit("<site>")
	g.emit("<categories>")
	for i := 0; i < categories; i++ {
		g.category(i)
	}
	g.emit("</categories>")
	g.emit("<regions>")
	perRegion := opts.Items / len(regions)
	extra := opts.Items % len(regions)
	id := 0
	for ri, region := range regions {
		n := perRegion
		if ri < extra {
			n++
		}
		if n == 0 {
			continue
		}
		g.emit("<%s>", region)
		for i := 0; i < n; i++ {
			g.item(id)
			id++
		}
		g.emit("</%s>", region)
	}
	g.emit("</regions>")
	g.emit("<people>")
	for i := 0; i < people; i++ {
		g.person(i, categories)
	}
	g.emit("</people>")
	g.emit("<open_auctions>")
	for i := 0; i < openAuctions; i++ {
		g.openAuction(i, opts.Items, people)
	}
	g.emit("</open_auctions>")
	g.emit("<closed_auctions>")
	for i := 0; i < closedAuctions; i++ {
		g.closedAuction(i, opts.Items, people)
	}
	g.emit("</closed_auctions>")
	g.emit("</site>")
	return g.err
}

// category emits one category with a text description.
func (g *generator) category(id int) {
	g.emit(`<category id="c%d"><name>%s</name><description>`, id, g.phrase(2))
	g.text()
	g.emit("</description></category>")
}

// person emits one person with optional interests referencing categories.
func (g *generator) person(id, categories int) {
	g.emit(`<person id="p%d"><name>%s %s</name><emailaddress>mailto:%s@%s.example</emailaddress>`,
		id, g.word(), g.word(), g.word(), g.word())
	if g.r.Float64() < 0.6 {
		g.emit("<profile><education>%s</education>", g.word())
		for i, n := 0, g.r.Intn(3); i < n; i++ {
			g.emit(`<interest category="c%d"/>`, g.r.Intn(categories))
		}
		g.emit("<business>%s</business></profile>", yesNo(g.r.Intn(2)))
	}
	g.emit("</person>")
}

// openAuction emits an auction over a random item with bidders.
func (g *generator) openAuction(id, items, people int) {
	g.emit(`<open_auction id="oa%d"><itemref item="item%d"/>`, id, g.r.Intn(maxInt(items, 1)))
	for i, n := 0, g.r.Intn(4); i < n; i++ {
		g.emit(`<bidder><personref person="p%d"/><increase>%d.%02d</increase></bidder>`,
			g.r.Intn(people), 1+g.r.Intn(50), g.r.Intn(100))
	}
	g.emit("<current>%d.%02d</current><quantity>%d</quantity></open_auction>",
		1+g.r.Intn(500), g.r.Intn(100), 1+g.r.Intn(3))
}

// closedAuction emits a completed sale referencing buyer, seller, item.
func (g *generator) closedAuction(id, items, people int) {
	g.emit(`<closed_auction><seller person="p%d"/><buyer person="p%d"/><itemref item="item%d"/>`,
		g.r.Intn(people), g.r.Intn(people), g.r.Intn(maxInt(items, 1)))
	g.emit("<price>%d.%02d</price><date>%02d/%02d/2004</date>",
		1+g.r.Intn(1000), g.r.Intn(100), 1+g.r.Intn(12), 1+g.r.Intn(28))
	g.emit("<annotation>")
	g.text()
	g.emit("</annotation></closed_auction>")
}

func yesNo(v int) string {
	if v == 0 {
		return "No"
	}
	return "Yes"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate returns a generated document as a parsed tree.
func Generate(opts Options) (*xmltree.Document, error) {
	var buf bytes.Buffer
	if err := Write(&buf, opts); err != nil {
		return nil, err
	}
	return xmltree.Parse(&buf)
}

// ItemsForBytes calibrates how many items yield approximately
// targetBytes of serialized XML for the given seed.
func ItemsForBytes(seed int64, targetBytes int) (int, error) {
	var probe, base bytes.Buffer
	const probeItems = 64
	if err := Write(&probe, Options{Seed: seed, Items: probeItems}); err != nil {
		return 0, err
	}
	if err := Write(&base, Options{Seed: seed, Items: 0}); err != nil {
		return 0, err
	}
	perItem := (probe.Len() - base.Len()) / probeItems
	if perItem <= 0 {
		perItem = 1
	}
	items := targetBytes / perItem
	if items < 1 {
		items = 1
	}
	return items, nil
}

// WriteBytes streams a document of approximately targetBytes to w and
// returns the number of items generated.
func WriteBytes(w io.Writer, seed int64, targetBytes int) (int, error) {
	items, err := ItemsForBytes(seed, targetBytes)
	if err != nil {
		return 0, err
	}
	return items, Write(w, Options{Seed: seed, Items: items})
}

// GenerateBytes generates a document whose serialized size is
// approximately targetBytes (within one item's worth), matching the
// paper's document-size axis. It returns the document and the actual
// byte size generated.
func GenerateBytes(seed int64, targetBytes int) (*xmltree.Document, int, error) {
	var buf bytes.Buffer
	if _, err := WriteBytes(&buf, seed, targetBytes); err != nil {
		return nil, 0, err
	}
	size := buf.Len()
	doc, err := xmltree.Parse(&buf)
	if err != nil {
		return nil, 0, err
	}
	return doc, size, nil
}

type generator struct {
	r   *rand.Rand
	w   io.Writer
	err error
}

func (g *generator) emit(format string, args ...any) {
	if g.err != nil {
		return
	}
	_, g.err = fmt.Fprintf(g.w, format, args...)
}

func (g *generator) word() string { return words[g.r.Intn(len(words))] }

func (g *generator) phrase(n int) string {
	s := g.word()
	for i := 1; i < n; i++ {
		s += " " + g.word()
	}
	return s
}

func (g *generator) item(id int) {
	g.emit(`<item id="item%d">`, id)
	g.emit("<location>%s</location>", locations[g.r.Intn(len(locations))])
	g.emit("<quantity>%d</quantity>", 1+g.r.Intn(5))
	g.emit("<name>%s</name>", g.phrase(2+g.r.Intn(2)))
	g.emit("<payment>%s</payment>", payments[g.r.Intn(len(payments))])
	g.emit("<description>")
	// 40% of descriptions carry a parlist (Q1/Q2's structural feature);
	// the rest are plain text. parlist recursion enables edge
	// generalization: a nested parlist is .//parlist but not ./parlist
	// of description.
	if g.r.Float64() < 0.4 {
		g.parlist(0)
	} else {
		g.text()
	}
	g.emit("</description>")
	g.emit("<shipping>%s</shipping>", g.phrase(3))
	// incategory is optional (leaf deletion): 0–3 occurrences.
	for i, n := 0, g.r.Intn(4); i < n; i++ {
		g.emit(`<incategory category="c%d"/>`, g.r.Intn(100))
	}
	// mailbox with 0–3 mails; mail text shares the text element with
	// listitem (subtree promotion).
	g.emit("<mailbox>")
	for i, n := 0, g.r.Intn(4); i < n; i++ {
		g.emit("<mail><from>%s</from><to>%s</to><date>%02d/%02d/2004</date>",
			g.word(), g.word(), 1+g.r.Intn(12), 1+g.r.Intn(28))
		g.text()
		g.emit("</mail>")
	}
	g.emit("</mailbox>")
	g.emit("</item>")
}

// text emits a text element with optional bold/keyword/emph children
// (Q3's nested predicates).
func (g *generator) text() {
	g.emit("<text>%s", g.phrase(3+g.r.Intn(5)))
	if g.r.Float64() < 0.5 {
		g.emit("<bold>%s</bold>", g.word())
	}
	if g.r.Float64() < 0.5 {
		g.emit("<keyword>%s</keyword>", g.word())
	}
	if g.r.Float64() < 0.3 {
		g.emit("<emph>%s</emph>", g.word())
	}
	g.emit("</text>")
}

// parlist emits a parlist whose listitems contain either text or, with
// decreasing probability, nested parlists (the DTD's recursion).
func (g *generator) parlist(depth int) {
	g.emit("<parlist>")
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		g.emit("<listitem>")
		if depth < 3 && g.r.Float64() < 0.35 {
			g.parlist(depth + 1)
		} else {
			g.text()
		}
		g.emit("</listitem>")
	}
	g.emit("</parlist>")
}
