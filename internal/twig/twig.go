// Package twig implements holistic twig matching in the PathStack /
// TwigJoin family (Bruno, Koudas, Srivastava: "Holistic Twig Joins",
// SIGMOD 2002) — the index-retrieval + structural-join evaluation style
// the paper adopts for exact answers (Section 3). The tree pattern is
// decomposed into root-to-leaf paths; each path's solutions are computed
// with the linear-time PathStack algorithm over document-ordered
// postings; path solutions are then merge-joined on their shared prefix
// nodes into full twig matches.
//
// Parent-child edges are evaluated by generalizing to
// ancestor-descendant during the stack phase and post-filtering path
// solutions by exact level differences, as in the original paper.
// Following-sibling edges are handled in the final merge.
//
// The package is the third independent exact-matching implementation in
// this repository (after the Whirlpool engine's exact mode and
// internal/joins' binary join plans); the tests cross-check all three.
package twig

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// Match is one exact twig match: Bindings[i] instantiates query node i.
type Match struct {
	Bindings []*xmltree.Node
}

// Stats reports the work performed.
type Stats struct {
	// PathSolutions is the total number of root-to-leaf path solutions
	// produced by the PathStack phase.
	PathSolutions int
	// Pushes counts stack pushes across all paths.
	Pushes int
}

// Matches computes every exact match of q over ix.
func Matches(ix index.Source, q *pattern.Query) ([]Match, Stats) {
	var st Stats
	prepped := reparentSiblings(q)
	paths := rootToLeafPaths(prepped)
	// Solutions per path: each is a map from query node ID to binding.
	pathSols := make([][][]*xmltree.Node, len(paths))
	for pi, path := range paths {
		sols := pathStack(ix, prepped, path, &st)
		st.PathSolutions += len(sols)
		pathSols[pi] = sols
	}
	merged := mergePaths(prepped, paths, pathSols)
	out := filterSiblingOrder(q, merged)
	return out, st
}

// reparentSiblings rewrites each following-sibling node as a pc child of
// its anchor's parent — the level-correct containment relation the stack
// phase requires; the sibling-order constraint itself is enforced by
// filterSiblingOrder against the original pattern.
func reparentSiblings(q *pattern.Query) *pattern.Query {
	needs := false
	for _, n := range q.Nodes {
		if n.Axis == dewey.FollowingSibling {
			needs = true
		}
	}
	if !needs {
		return q
	}
	c := q.Clone()
	for _, n := range c.Nodes {
		if n.Axis != dewey.FollowingSibling {
			continue
		}
		oldParent := n.Parent
		grand := c.Nodes[oldParent].Parent
		kids := c.Nodes[oldParent].Children[:0]
		for _, k := range c.Nodes[oldParent].Children {
			if k != n.ID {
				kids = append(kids, k)
			}
		}
		c.Nodes[oldParent].Children = kids
		n.Parent = grand
		n.Axis = dewey.Child
		c.Nodes[grand].Children = append(c.Nodes[grand].Children, n.ID)
		sort.Ints(c.Nodes[grand].Children)
	}
	return c
}

// rootToLeafPaths decomposes the pattern into its root-to-leaf node-ID
// paths, in leaf declaration order.
func rootToLeafPaths(q *pattern.Query) [][]int {
	var paths [][]int
	var walk func(id int, acc []int)
	walk = func(id int, acc []int) {
		acc = append(acc, id)
		if len(q.Nodes[id].Children) == 0 {
			paths = append(paths, append([]int(nil), acc...))
			return
		}
		for _, c := range q.Nodes[id].Children {
			walk(c, acc)
		}
	}
	walk(0, nil)
	return paths
}

// pathStack computes the exact solutions of one root-to-leaf path. Each
// solution is a full-width binding slice with only the path's nodes set.
func pathStack(ix index.Source, q *pattern.Query, path []int, st *Stats) [][]*xmltree.Node {
	m := len(path)
	streams := make([][]*xmltree.Node, m)
	for i, id := range path {
		n := q.Nodes[id]
		if i == 0 {
			streams[i] = rootStream(ix, q)
		} else {
			streams[i] = ix.NodesMatching(n.Tag, index.Test(n.ValueOp, n.Value))
		}
		if len(streams[i]) == 0 {
			return nil
		}
	}
	type entry struct {
		node      *xmltree.Node
		parentTop int // index of the parent stack's top at push time
	}
	stacks := make([][]entry, m)
	pos := make([]int, m)

	var solutions [][]*xmltree.Node

	// emit enumerates the chains ending at the leaf entry just pushed.
	var emit func(level, maxIdx int, acc []*xmltree.Node)
	emit = func(level, maxIdx int, acc []*xmltree.Node) {
		if level < 0 {
			row := make([]*xmltree.Node, q.Size())
			for i, id := range path {
				row[id] = acc[i]
			}
			solutions = append(solutions, row)
			return
		}
		for j := 0; j <= maxIdx; j++ {
			e := stacks[level][j]
			acc[level] = e.node
			if level == 0 {
				emit(-1, 0, acc)
			} else {
				emit(level-1, e.parentTop, acc)
			}
		}
	}

	for {
		// qmin: the non-exhausted stream whose head starts first. Ties
		// (the same node appearing in several same-tag streams) go to
		// the deeper path level, so a node is considered as a descendant
		// binding before it lands on any ancestor stack — a node must
		// never chain to itself.
		qmin := -1
		for i := range path {
			if pos[i] >= len(streams[i]) {
				continue
			}
			if qmin == -1 || streams[i][pos[i]].ID.Compare(streams[qmin][pos[qmin]].ID) <= 0 {
				qmin = i
			}
		}
		if qmin == -1 {
			break
		}
		head := streams[qmin][pos[qmin]]
		// Pop entries (on every stack) whose subtrees ended before head;
		// an entry equal to head stays — its subtree still encloses
		// head's (same-tag streams share nodes across levels).
		for i := range path {
			for len(stacks[i]) > 0 {
				top := stacks[i][len(stacks[i])-1].node
				if top.ID.IsAncestorOf(head.ID) || top.ID.Equal(head.ID) {
					break
				}
				stacks[i] = stacks[i][:len(stacks[i])-1]
			}
		}
		if qmin == 0 || len(stacks[qmin-1]) > 0 {
			st.Pushes++
			parentTop := -1
			if qmin > 0 {
				parentTop = len(stacks[qmin-1]) - 1
			}
			stacks[qmin] = append(stacks[qmin], entry{node: head, parentTop: parentTop})
			if qmin == m-1 {
				acc := make([]*xmltree.Node, m)
				top := stacks[qmin][len(stacks[qmin])-1]
				acc[qmin] = top.node
				if qmin == 0 {
					emit(-1, 0, acc)
				} else {
					emit(qmin-1, top.parentTop, acc)
				}
				// The leaf entry itself never anchors deeper pushes.
				stacks[qmin] = stacks[qmin][:len(stacks[qmin])-1]
			}
		}
		pos[qmin]++
	}

	// Post-filter parent-child (and root-level) exactness.
	exact := solutions[:0]
	for _, row := range solutions {
		if pathLevelsOK(q, path, row) {
			exact = append(exact, row)
		}
	}
	return exact
}

// rootStream returns the candidate bindings of the query root under its
// document-root axis.
func rootStream(ix index.Source, q *pattern.Query) []*xmltree.Node {
	root := q.Root()
	all := ix.NodesMatching(root.Tag, index.Test(root.ValueOp, root.Value))
	if root.Axis != dewey.Child {
		return all
	}
	var out []*xmltree.Node
	for _, n := range all {
		if n.Level() == 1 {
			out = append(out, n)
		}
	}
	return out
}

// pathLevelsOK enforces pc-edge exactness (level difference one) along
// the path; fs edges are validated in the final merge.
func pathLevelsOK(q *pattern.Query, path []int, row []*xmltree.Node) bool {
	for i := 1; i < len(path); i++ {
		n := q.Nodes[path[i]]
		if n.Axis != dewey.Child {
			continue
		}
		parent := row[path[i-1]]
		child := row[path[i]]
		if !parent.ID.IsParentOf(child.ID) {
			return false
		}
	}
	return true
}

// mergePaths hash-joins the per-path solution sets on their shared query
// nodes, accumulating full twig matches.
func mergePaths(q *pattern.Query, paths [][]int, pathSols [][][]*xmltree.Node) []Match {
	if len(paths) == 0 {
		return nil
	}
	acc := pathSols[0]
	bound := make(map[int]bool)
	for _, id := range paths[0] {
		bound[id] = true
	}
	for pi := 1; pi < len(paths); pi++ {
		var shared []int
		for _, id := range paths[pi] {
			if bound[id] {
				shared = append(shared, id)
			}
		}
		// Hash the new path's solutions by their shared-node bindings.
		buckets := make(map[string][][]*xmltree.Node)
		for _, sol := range pathSols[pi] {
			buckets[bindKey(sol, shared)] = append(buckets[bindKey(sol, shared)], sol)
		}
		var next [][]*xmltree.Node
		for _, row := range acc {
			for _, sol := range buckets[bindKey(row, shared)] {
				nr := make([]*xmltree.Node, len(row))
				copy(nr, row)
				for _, id := range paths[pi] {
					nr[id] = sol[id]
				}
				next = append(next, nr)
			}
		}
		acc = next
		for _, id := range paths[pi] {
			bound[id] = true
		}
		if len(acc) == 0 {
			return nil
		}
	}
	out := make([]Match, len(acc))
	for i, row := range acc {
		out[i] = Match{Bindings: row}
	}
	sortMatches(out)
	return out
}

func bindKey(row []*xmltree.Node, shared []int) string {
	key := make([]byte, 0, len(shared)*4)
	for _, id := range shared {
		ord := row[id].Ord
		key = append(key, byte(ord), byte(ord>>8), byte(ord>>16), byte(ord>>24))
	}
	return string(key)
}

// filterSiblingOrder drops matches violating following-sibling edges.
func filterSiblingOrder(q *pattern.Query, ms []Match) []Match {
	hasFS := false
	for _, n := range q.Nodes {
		if n.Axis == dewey.FollowingSibling {
			hasFS = true
		}
	}
	if !hasFS {
		return ms
	}
	out := ms[:0]
	for _, m := range ms {
		ok := true
		for _, n := range q.Nodes {
			if n.Axis != dewey.FollowingSibling {
				continue
			}
			anchor := m.Bindings[n.Parent]
			self := m.Bindings[n.ID]
			if !self.ID.IsFollowingSiblingOf(anchor.ID) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m)
		}
	}
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i].Bindings, ms[j].Bindings
		for x := range a {
			if a[x].Ord != b[x].Ord {
				return a[x].Ord < b[x].Ord
			}
		}
		return false
	})
}
