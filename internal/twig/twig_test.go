package twig

import (
	"math/rand"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/joins"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func key(b []*xmltree.Node) string {
	out := make([]byte, 0, len(b)*4)
	for _, n := range b {
		out = append(out, byte(n.Ord), byte(n.Ord>>8), byte(n.Ord>>16), byte(n.Ord>>24))
	}
	return string(out)
}

// assertSameMatches compares twig output with the binary-join baseline
// as sets of full binding tuples.
func assertSameMatches(t *testing.T, label string, ix index.Source, q *pattern.Query) {
	t.Helper()
	got, _ := Matches(ix, q)
	want, _ := joins.ExactMatches(ix, q)
	if len(got) != len(want) {
		t.Fatalf("%s: twig %d matches, joins %d", label, len(got), len(want))
	}
	seen := make(map[string]int)
	for _, m := range want {
		seen[key(m.Bindings)]++
	}
	for _, m := range got {
		if seen[key(m.Bindings)] == 0 {
			t.Fatalf("%s: twig produced tuple joins did not: %v", label, m.Bindings)
		}
		seen[key(m.Bindings)]--
	}
}

func TestPathOnlyQuery(t *testing.T) {
	doc, err := xmltree.ParseString(`
<a><b><c/></b><b><d><c/></d></b></a>
<a><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	for _, xp := range []string{"/a[./b/c]", "/a[.//c]", "//b[.//c]", "/a[./b//c]"} {
		assertSameMatches(t, xp, ix, pattern.MustParse(xp))
	}
}

func TestTwigQueries(t *testing.T) {
	doc, err := xmark.Generate(xmark.Options{Seed: 2, Items: 120})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	for _, xp := range []string{
		"//item[./description/parlist]",
		"//item[./description/parlist and ./mailbox/mail/text]",
		"//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]",
		"//item[./quantity < 3 and ./name]",
	} {
		assertSameMatches(t, xp, ix, pattern.MustParse(xp))
	}
}

func TestFollowingSibling(t *testing.T) {
	doc, err := xmltree.ParseString(`
<a><x/><c>1</c><e>2</e></a>
<a><e>2</e><c>1</c></a>
<a><c>1</c><c>1</c><e>2</e></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	q := pattern.MustParse("/a[./c[following-sibling::e]]")
	assertSameMatches(t, "fs", ix, q)
	got, _ := Matches(ix, q)
	if len(got) != 3 { // a1: (c,e); a3: (c1,e), (c2,e)
		t.Fatalf("fs matches = %d, want 3", len(got))
	}
}

func TestRecursiveTags(t *testing.T) {
	// Same-tag nesting exercises the stack chains.
	doc, err := xmltree.ParseString(`
<a><a><b/><a><b/></a></a></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	for _, xp := range []string{"//a[.//b]", "//a[./a//b]", "//a[.//a and .//b]"} {
		assertSameMatches(t, xp, ix, pattern.MustParse(xp))
	}
}

func TestRandomizedAgainstJoins(t *testing.T) {
	tags := []string{"a", "b", "c"}
	for trial := 0; trial < 40; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		b := xmltree.NewBuilder()
		for roots := 0; roots <= r.Intn(2); roots++ {
			b.Root("a")
			var grow func(depth int)
			grow = func(depth int) {
				if depth > 4 {
					return
				}
				for i, n := 0, r.Intn(3); i < n; i++ {
					b.Open(tags[r.Intn(len(tags))])
					grow(depth + 1)
					b.Close()
				}
			}
			grow(1)
		}
		doc := b.Doc()
		ix := index.Build(doc)
		// Random query over the same alphabet.
		axes := []dewey.Axis{dewey.Child, dewey.Descendant}
		q := pattern.New("a", axes[r.Intn(2)])
		for i, n := 0, 1+r.Intn(4); i < n; i++ {
			q.Add(r.Intn(q.Size()), tags[r.Intn(len(tags))], axes[r.Intn(2)])
		}
		assertSameMatches(t, q.String(), ix, q)
	}
}

func TestStatsReported(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b><c/></b></a>`)
	ix := index.Build(doc)
	_, st := Matches(ix, pattern.MustParse("/a[./b/c]"))
	if st.Pushes == 0 || st.PathSolutions == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmptyStreamShortCircuit(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b/></a>`)
	ix := index.Build(doc)
	got, _ := Matches(ix, pattern.MustParse("/a[./zz]"))
	if len(got) != 0 {
		t.Fatalf("matches = %d", len(got))
	}
}

func TestRootFSRejectedByValidate(t *testing.T) {
	if _, err := pattern.Parse("/a[following-sibling::b]"); err == nil {
		t.Fatal("following-sibling on the returned node must be rejected")
	}
}
