package joins

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/index"
	"repro/internal/naive"
	"repro/internal/pattern"
	"repro/internal/relax"
	"repro/internal/score"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// randomTree builds a random document for join cross-checks.
func randomTree(seed int64) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	tags := []string{"a", "b", "c"}
	b := xmltree.NewBuilder().Root("root")
	var grow func(depth int)
	grow = func(depth int) {
		if depth > 4 {
			return
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			b.Open(tags[r.Intn(len(tags))])
			grow(depth + 1)
			b.Close()
		}
	}
	grow(0)
	return b.Doc()
}

func TestAncestorDescendantPairsAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		doc := randomTree(seed)
		ix := index.Build(doc)
		ancs := ix.Nodes("a")
		descs := ix.Nodes("b")
		got := AncestorDescendantPairs(ancs, descs)
		var want []Pair
		for _, a := range ancs {
			for _, d := range descs {
				if a.ID.IsAncestorOf(d.ID) {
					want = append(want, Pair{Anc: a, Desc: d})
				}
			}
		}
		sortPairs(got)
		sortPairs(want)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d pairs, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: pair %d = %v, want %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestParentChildPairsAgainstBruteForce(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		doc := randomTree(seed)
		ix := index.Build(doc)
		got := ParentChildPairs(ix.Nodes("a"), ix.Nodes("c"))
		count := 0
		for _, a := range ix.Nodes("a") {
			for _, c := range a.Children {
				if c.Tag == "c" {
					count++
				}
			}
		}
		if len(got) != count {
			t.Fatalf("seed %d: %d pairs, want %d", seed, len(got), count)
		}
	}
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Anc.Ord != ps[j].Anc.Ord {
			return ps[i].Anc.Ord < ps[j].Anc.Ord
		}
		return ps[i].Desc.Ord < ps[j].Desc.Ord
	})
}

func TestExactMatchesBookstore(t *testing.T) {
	doc, err := xmltree.ParseString(`
<book><title>wodehouse</title><info><publisher><name>psmith</name></publisher></info></book>
<book><title>wodehouse</title><publisher><name>psmith</name></publisher></book>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	q := pattern.MustParse("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	matches, st := ExactMatches(ix, q)
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(matches))
	}
	if matches[0].Bindings[0] != doc.Roots[0] {
		t.Fatal("wrong root matched")
	}
	for id, b := range matches[0].Bindings {
		if b == nil {
			t.Fatalf("binding %d missing in exact match", id)
		}
	}
	if st.JoinPairs == 0 || st.Intermediate == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExactMatchesFollowingSibling(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><c>1</c><e>2</e></a><a><e>2</e><c>1</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	q := pattern.MustParse("/a[./c[following-sibling::e]]")
	matches, _ := ExactMatches(ix, q)
	if len(matches) != 1 || matches[0].Bindings[0] != doc.Roots[0] {
		t.Fatalf("matches = %v", matches)
	}
}

func TestTopKMatchesWhirlpoolExactMode(t *testing.T) {
	doc, err := xmark.Generate(xmark.Options{Seed: 8, Items: 150})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	for _, xp := range []string{
		"//item[./description/parlist]",
		"//item[./description/parlist and ./mailbox/mail/text]",
		"//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]",
	} {
		q := pattern.MustParse(xp)
		s := score.NewTFIDF(ix, q, score.Sparse)
		got, _ := TopK(ix, q, s, 10)
		want := naive.TopK(ix, q, relax.None, s, 10)
		if len(got) != len(want) {
			t.Fatalf("%s: %d answers, want %d", xp, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("%s: answer %d score %v, want %v", xp, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestTopKEmptyResult(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b/></a>`)
	ix := index.Build(doc)
	q := pattern.MustParse("/a[./zz]")
	s := score.NewTFIDF(ix, q, score.Sparse)
	got, _ := TopK(ix, q, s, 5)
	if len(got) != 0 {
		t.Fatalf("answers = %v", got)
	}
}

func TestExactMatchesRootAxis(t *testing.T) {
	doc, _ := xmltree.ParseString(`<wrap><a><b/></a></wrap><a><b/></a>`)
	ix := index.Build(doc)
	// /a binds only the forest root a.
	rooted, _ := ExactMatches(ix, pattern.MustParse("/a[./b]"))
	if len(rooted) != 1 {
		t.Fatalf("rooted matches = %d", len(rooted))
	}
	// //a binds both.
	anywhere, _ := ExactMatches(ix, pattern.MustParse("//a[./b]"))
	if len(anywhere) != 2 {
		t.Fatalf("anywhere matches = %d", len(anywhere))
	}
}
