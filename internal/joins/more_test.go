package joins

import (
	"testing"

	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/score"
	"repro/internal/xmltree"
)

func TestPairsEmptyInputs(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b/></a>`)
	ix := index.Build(doc)
	if got := AncestorDescendantPairs(nil, ix.Nodes("b")); len(got) != 0 {
		t.Fatalf("nil ancs: %d pairs", len(got))
	}
	if got := AncestorDescendantPairs(ix.Nodes("a"), nil); len(got) != 0 {
		t.Fatalf("nil descs: %d pairs", len(got))
	}
	if got := ParentChildPairs(nil, nil); len(got) != 0 {
		t.Fatalf("nil/nil: %d pairs", len(got))
	}
}

func TestPairsSameList(t *testing.T) {
	// Joining a tag's postings with itself: strict containment only.
	doc, _ := xmltree.ParseString(`<a><a><a/></a></a><a/>`)
	ix := index.Build(doc)
	as := ix.Nodes("a")
	pairs := AncestorDescendantPairs(as, as)
	// a1⊃a2, a1⊃a3, a2⊃a3 — the standalone a4 pairs with nothing.
	if len(pairs) != 3 {
		t.Fatalf("self-join pairs = %d, want 3", len(pairs))
	}
	for _, p := range pairs {
		if p.Anc == p.Desc {
			t.Fatal("self pair emitted")
		}
	}
}

func TestTopKDistinctRoots(t *testing.T) {
	doc, _ := xmltree.ParseString(`
<a><b/><b/><b/></a>
<a><b/></a>`)
	ix := index.Build(doc)
	q := pattern.MustParse("/a[./b]")
	s := newUnitScorer(q.Size())
	answers, st := TopK(ix, q, s, 5)
	if len(answers) != 2 {
		t.Fatalf("answers = %d, want 2 distinct roots", len(answers))
	}
	if st.JoinPairs != 4 {
		t.Fatalf("join pairs = %d, want 4", st.JoinPairs)
	}
}

// unitScorer gives every binding contribution 1.
type unitScorer struct{ n int }

func newUnitScorer(n int) *unitScorer                                        { return &unitScorer{n} }
func (u *unitScorer) Contribution(int, score.Variant, *xmltree.Node) float64 { return 1 }
func (u *unitScorer) MaxContribution(int) float64                            { return 1 }
func (u *unitScorer) MinContribution(int) float64                            { return 1 }
func (u *unitScorer) ExpectedContribution(int) float64                       { return 1 }
