// Package joins implements the conventional exact XPath evaluation
// strategy the paper builds on (Section 3): binary join plans over
// index-retrieved postings lists, with stack-based structural join
// algorithms deciding the pc/ad axes. It serves as an independent exact
// baseline for the Whirlpool engine (cross-checked in tests) and as the
// "evaluate everything, then rank" comparator in the benchmarks.
package joins

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/score"
	"repro/internal/xmltree"
)

// Pair is one (ancestor, descendant) result of a structural join.
type Pair struct {
	Anc, Desc *xmltree.Node
}

// AncestorDescendantPairs computes all pairs (a, d) with a ∈ ancs an
// ancestor of d ∈ descs, using the stack-tree merge: both inputs must be
// in document order; the output is in (desc, anc) document order. The
// cost is O(|ancs| + |descs| + |output|).
func AncestorDescendantPairs(ancs, descs []*xmltree.Node) []Pair {
	var out []Pair
	var stack []*xmltree.Node
	ai := 0
	for _, d := range descs {
		// Push every ancestor candidate that starts before d, keeping
		// the stack a containment chain: a subtree is a contiguous
		// document-order interval, so a popped entry can contain neither
		// the pushed candidate nor anything after it.
		for ai < len(ancs) && ancs[ai].ID.Compare(d.ID) < 0 {
			a := ancs[ai]
			for len(stack) > 0 && !stack[len(stack)-1].ID.IsAncestorOf(a.ID) {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, a)
			ai++
		}
		// Pop chain entries whose subtrees ended before d; the rest all
		// contain d (each contains the next, and the top contains d).
		for len(stack) > 0 && !stack[len(stack)-1].ID.IsAncestorOf(d.ID) {
			stack = stack[:len(stack)-1]
		}
		for _, a := range stack {
			out = append(out, Pair{Anc: a, Desc: d})
		}
	}
	return out
}

// ParentChildPairs is AncestorDescendantPairs restricted to direct
// parents.
func ParentChildPairs(ancs, descs []*xmltree.Node) []Pair {
	all := AncestorDescendantPairs(ancs, descs)
	out := all[:0]
	for _, p := range all {
		if p.Anc.ID.IsParentOf(p.Desc.ID) {
			out = append(out, p)
		}
	}
	return out
}

// Match is one exact match tuple: Bindings[i] instantiates query node i.
type Match struct {
	Bindings []*xmltree.Node
}

// Stats counts the work a plan execution performed.
type Stats struct {
	// JoinPairs is the total number of structural-join output pairs.
	JoinPairs int
	// Intermediate is the peak number of intermediate tuples.
	Intermediate int
}

// ExactMatches computes every exact match of q using a left-deep binary
// join plan in query-node order (parents join before their children, as
// node IDs guarantee).
func ExactMatches(ix index.Source, q *pattern.Query) ([]Match, Stats) {
	var st Stats
	root := q.Root()
	var tuples [][]*xmltree.Node
	for _, r := range ix.NodesMatching(root.Tag, index.Test(root.ValueOp, root.Value)) {
		if root.Axis == dewey.Child && r.Level() != 1 {
			continue
		}
		row := make([]*xmltree.Node, q.Size())
		row[0] = r
		tuples = append(tuples, row)
	}
	if len(tuples) > st.Intermediate {
		st.Intermediate = len(tuples)
	}
	for id := 1; id < q.Size() && len(tuples) > 0; id++ {
		qn := q.Nodes[id]
		postings := ix.NodesMatching(qn.Tag, index.Test(qn.ValueOp, qn.Value))
		switch qn.Axis {
		case dewey.Child, dewey.Descendant:
			tuples = joinStep(tuples, qn, postings, &st)
		case dewey.FollowingSibling:
			tuples = siblingStep(tuples, qn, &st)
		}
		if len(tuples) > st.Intermediate {
			st.Intermediate = len(tuples)
		}
	}
	out := make([]Match, len(tuples))
	for i, row := range tuples {
		out[i] = Match{Bindings: row}
	}
	return out, st
}

// joinStep extends every tuple with the qn bindings structurally related
// to the tuple's parent-column binding.
func joinStep(tuples [][]*xmltree.Node, qn *pattern.Node, postings []*xmltree.Node, st *Stats) [][]*xmltree.Node {
	parentCol := qn.Parent
	// Distinct parent bindings in document order.
	seen := make(map[int]*xmltree.Node)
	for _, row := range tuples {
		p := row[parentCol]
		seen[p.Ord] = p
	}
	parents := make([]*xmltree.Node, 0, len(seen))
	for _, p := range seen {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i].Ord < parents[j].Ord })

	var pairs []Pair
	if qn.Axis == dewey.Child {
		pairs = ParentChildPairs(parents, postings)
	} else {
		pairs = AncestorDescendantPairs(parents, postings)
	}
	st.JoinPairs += len(pairs)
	byParent := make(map[int][]*xmltree.Node)
	for _, p := range pairs {
		byParent[p.Anc.Ord] = append(byParent[p.Anc.Ord], p.Desc)
	}
	var next [][]*xmltree.Node
	for _, row := range tuples {
		for _, d := range byParent[row[parentCol].Ord] {
			nr := make([]*xmltree.Node, len(row))
			copy(nr, row)
			nr[qn.ID] = d
			next = append(next, nr)
		}
	}
	return next
}

// siblingStep extends tuples along a following-sibling edge by scanning
// the anchor binding's parent's children.
func siblingStep(tuples [][]*xmltree.Node, qn *pattern.Node, st *Stats) [][]*xmltree.Node {
	anchorCol := qn.Parent
	var next [][]*xmltree.Node
	for _, row := range tuples {
		anchor := row[anchorCol]
		if anchor.Parent == nil {
			continue
		}
		vt := index.Test(qn.ValueOp, qn.Value)
		for _, sib := range anchor.Parent.Children {
			st.JoinPairs++
			if sib.Tag != qn.Tag || !vt.Matches(sib.Value) {
				continue
			}
			if !sib.ID.IsFollowingSiblingOf(anchor.ID) {
				continue
			}
			nr := make([]*xmltree.Node, len(row))
			copy(nr, row)
			nr[qn.ID] = sib
			next = append(next, nr)
		}
	}
	return next
}

// Answer is one ranked exact answer.
type Answer struct {
	Root  *xmltree.Node
	Score float64
}

// TopK ranks the exact matches of q: every tuple is scored with s (each
// binding contributes its exact component-predicate score), each root
// keeps its best tuple, and the k best distinct roots are returned —
// the "evaluate everything, then sort" strategy top-k processing avoids.
func TopK(ix index.Source, q *pattern.Query, s score.Scorer, k int) ([]Answer, Stats) {
	matches, st := ExactMatches(ix, q)
	best := make(map[int]Answer)
	for _, m := range matches {
		total := 0.0
		for id, b := range m.Bindings {
			total += s.Contribution(id, score.Exact, b)
		}
		root := m.Bindings[0]
		if cur, ok := best[root.Ord]; !ok || total > cur.Score {
			best[root.Ord] = Answer{Root: root, Score: total}
		}
	}
	answers := make([]Answer, 0, len(best))
	for _, a := range best {
		answers = append(answers, a)
	}
	sortAnswers(answers)
	if len(answers) > k {
		answers = answers[:k]
	}
	return answers, st
}

// sortAnswers orders answers best first. The score comparison is
// deliberately exact: equal scores tie-break on the root ordinal so
// the baseline's ranking is deterministic.
// +whirllint:exactscore
func sortAnswers(answers []Answer) {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Score != answers[j].Score {
			return answers[i].Score > answers[j].Score
		}
		return answers[i].Root.Ord < answers[j].Root.Ord
	})
}
