// Package lru is a small fixed-capacity LRU cache with
// singleflight-style construction: GetOrCreate runs the builder for a
// missing key exactly once, outside the cache lock, while concurrent
// callers for the same key wait on the in-flight build and callers for
// other keys proceed untouched. whirlpoold uses it for its engine,
// query and keyword-index caches, where the old unbounded map guarded
// by one mutex let a single slow index build stall every in-flight
// request.
package lru

import (
	"container/list"
	"sync"
)

// flight is one cache slot: the key, the built value, and the
// singleflight rendezvous. ready closes when the build finishes; val
// and err are immutable afterwards.
type flight[K comparable, V any] struct {
	key   K
	ready chan struct{}
	val   V
	err   error
}

// Cache is a bounded LRU map. All methods are safe for concurrent use.
// Eviction removes the least recently used entry, including entries
// whose build is still in flight (their waiters are unaffected — they
// hold the slot pointer — but the result is no longer cached).
type Cache[K comparable, V any] struct {
	mu        sync.Mutex
	capacity  int
	entries   map[K]*list.Element
	order     *list.List // front = most recently used
	evictions int64
}

// New returns a cache bounded to capacity entries (minimum 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		capacity: capacity,
		entries:  make(map[K]*list.Element),
		order:    list.New(),
	}
}

// Cap returns the cache's capacity.
func (c *Cache[K, V]) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Len returns the number of cached entries (including in-flight builds).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Get returns the value cached under k, waiting for an in-flight build
// to finish. ok is false when k is absent or its build failed.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	el, ok := c.entries[k]
	if !ok {
		c.mu.Unlock()
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	f := el.Value.(*flight[K, V])
	c.mu.Unlock()
	<-f.ready
	if f.err != nil {
		var zero V
		return zero, false
	}
	return f.val, true
}

// GetOrCreate returns the value under k, building it with build on a
// miss. The builder runs outside the cache lock; concurrent callers for
// the same key share one build (and its error), callers for other keys
// are never blocked by it. hit reports whether the value (or in-flight
// build) was already cached. A failed build is not cached: the slot is
// removed so a later call retries.
func (c *Cache[K, V]) GetOrCreate(k K, build func() (V, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		f := el.Value.(*flight[K, V])
		c.mu.Unlock()
		<-f.ready
		return f.val, true, f.err
	}
	f := &flight[K, V]{key: k, ready: make(chan struct{})}
	el := c.order.PushFront(f)
	c.entries[k] = el
	c.evictLocked()
	c.mu.Unlock()

	f.val, f.err = build()
	close(f.ready)
	if f.err != nil {
		c.mu.Lock()
		// Only remove our own slot: it may already have been evicted, or
		// (after eviction) a fresh build may occupy the key.
		if cur, ok := c.entries[k]; ok && cur == el {
			c.order.Remove(el)
			delete(c.entries, k)
		}
		c.mu.Unlock()
	}
	return f.val, false, f.err
}

// evictLocked trims the cache to capacity. Callers hold c.mu.
// +whirllint:locked
func (c *Cache[K, V]) evictLocked() {
	for c.order.Len() > c.capacity {
		el := c.order.Back()
		if el == nil {
			return
		}
		f := el.Value.(*flight[K, V])
		c.order.Remove(el)
		delete(c.entries, f.key)
		c.evictions++
	}
}

// Evictions returns the number of entries evicted for capacity since
// the cache was created (failed builds removed by their own caller are
// not evictions).
func (c *Cache[K, V]) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Item is one completed cache entry.
type Item[K comparable, V any] struct {
	Key   K
	Value V
}

// Items returns the completed entries, most recently used first.
// Entries still building and entries whose build failed are skipped.
func (c *Cache[K, V]) Items() []Item[K, V] {
	c.mu.Lock()
	flights := make([]*flight[K, V], 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		flights = append(flights, el.Value.(*flight[K, V]))
	}
	c.mu.Unlock()
	out := make([]Item[K, V], 0, len(flights))
	for _, f := range flights {
		select {
		case <-f.ready:
			if f.err == nil {
				out = append(out, Item[K, V]{Key: f.key, Value: f.val})
			}
		default: // build still in flight
		}
	}
	return out
}
