package lru

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustCreate(t *testing.T, c *Cache[string, int], k string, v int) {
	t.Helper()
	got, hit, err := c.GetOrCreate(k, func() (int, error) { return v, nil })
	if err != nil || hit || got != v {
		t.Fatalf("GetOrCreate(%q) = %d, hit=%v, err=%v", k, got, hit, err)
	}
}

func TestBasicsAndEviction(t *testing.T) {
	c := New[string, int](2)
	if c.Cap() != 2 {
		t.Fatalf("cap = %d", c.Cap())
	}
	mustCreate(t, c, "a", 1)
	mustCreate(t, c, "b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "a" was just used, so inserting "c" evicts "b".
	mustCreate(t, c, "c", 3)
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	// A re-requested evicted key rebuilds (miss).
	v, hit, err := c.GetOrCreate("b", func() (int, error) { return 20, nil })
	if err != nil || hit || v != 20 {
		t.Fatalf("rebuild b = %d, hit=%v, err=%v", v, hit, err)
	}
}

func TestEvictionsCounter(t *testing.T) {
	c := New[string, int](2)
	mustCreate(t, c, "a", 1)
	mustCreate(t, c, "b", 2)
	if n := c.Evictions(); n != 0 {
		t.Fatalf("evictions = %d before capacity reached", n)
	}
	mustCreate(t, c, "c", 3)
	mustCreate(t, c, "d", 4)
	if n := c.Evictions(); n != 2 {
		t.Fatalf("evictions = %d, want 2", n)
	}
	// A failed build removed by its own caller is not an eviction.
	_, _, err := c.GetOrCreate("e", func() (int, error) { return 0, errors.New("boom") })
	if err == nil {
		t.Fatal("expected build error")
	}
	if n := c.Evictions(); n != 3 {
		// Inserting "e" evicted one entry; its failure-removal must not
		// count again.
		t.Fatalf("evictions = %d, want 3", n)
	}
}

func TestHitReporting(t *testing.T) {
	c := New[string, int](4)
	mustCreate(t, c, "k", 9)
	v, hit, err := c.GetOrCreate("k", func() (int, error) {
		t.Fatal("builder must not run on a hit")
		return 0, nil
	})
	if err != nil || !hit || v != 9 {
		t.Fatalf("hit = %d, %v, %v", v, hit, err)
	}
}

func TestErrorNotCached(t *testing.T) {
	c := New[string, int](4)
	boom := errors.New("boom")
	_, _, err := c.GetOrCreate("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed build left len = %d", c.Len())
	}
	v, hit, err := c.GetOrCreate("k", func() (int, error) { return 7, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("retry = %d, %v, %v", v, hit, err)
	}
}

func TestSingleflight(t *testing.T) {
	c := New[string, int](4)
	var builds atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrCreate("k", func() (int, error) {
				builds.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("GetOrCreate = %d, %v", v, err)
			}
		}()
	}
	// Give every goroutine a chance to reach the cache.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
}

func TestOtherKeysNotBlockedByInflightBuild(t *testing.T) {
	c := New[string, int](4)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.GetOrCreate("slow", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	// The slow build must not hold the cache lock.
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		mustCreate(t, c, "fast", 2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("an unrelated key was blocked by an in-flight build")
	}
	close(release)
	wg.Wait()
}

func TestBoundHoldsUnderConcurrency(t *testing.T) {
	const capacity = 8
	c := New[string, int](capacity)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := fmt.Sprintf("k%d", (i*200+j)%50)
				_, _, _ = c.GetOrCreate(k, func() (int, error) { return j, nil })
				if n := c.Len(); n > capacity {
					t.Errorf("len %d exceeds capacity %d", n, capacity)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Fatalf("final len %d exceeds capacity %d", n, capacity)
	}
}

func TestItems(t *testing.T) {
	c := New[string, int](4)
	mustCreate(t, c, "a", 1)
	mustCreate(t, c, "b", 2)
	items := c.Items()
	if len(items) != 2 || items[0].Key != "b" || items[1].Key != "a" {
		t.Fatalf("items = %+v", items)
	}
	// In-flight builds are skipped.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.GetOrCreate("slow", func() (int, error) {
			close(started)
			<-release
			return 3, nil
		})
	}()
	<-started
	if items := c.Items(); len(items) != 2 {
		t.Fatalf("in-flight build leaked into Items: %+v", items)
	}
	close(release)
	wg.Wait()
	if items := c.Items(); len(items) != 3 {
		t.Fatalf("completed build missing from Items: %+v", items)
	}
}
