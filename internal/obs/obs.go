// Package obs is the stdlib-only observability layer shared by the
// engine, the daemon and the benchmark driver: atomic counters, gauges
// and log-bucketed histograms behind a named registry with JSON and
// Prometheus text exposition, plus a pluggable TraceSink (trace.go) for
// per-run engine events. It imports nothing from the rest of the
// repository so every layer can depend on it without cycles.
//
// The metrics the registry exposes at serving time are the same
// measures the paper reports offline (Section 6.2.3): server
// operations, partial matches created and partial matches pruned —
// Figures 6–7 and Table 2 — surfaced live per process instead of per
// experiment.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and are dropped
// to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of log2 buckets: bucket 0 holds values
// ≤ 0, bucket i (1 ≤ i ≤ 64) holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a log-bucketed (base 2) histogram of int64 observations
// — latencies in microseconds, sizes in bytes or entries. Buckets double
// in width, so 64 buckets cover the whole int64 range with ≤ 2×
// resolution error, and recording is two atomic adds plus one atomic
// increment. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= 64:
		return math.MaxInt64
	default:
		return int64(1)<<uint(i) - 1
	}
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	// Le is the bucket's inclusive upper bound.
	Le int64 `json:"le"`
	// Count is the number of observations in this bucket alone (not
	// cumulative; the Prometheus exposition cumulates).
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's non-empty buckets. Concurrent
// observers may land between the per-bucket loads, so the bucket total
// can transiently trail Count by in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketUpper(i), Count: n})
		}
	}
	return s
}

// metric is one registered name+labels instrument.
type metric struct {
	name  string
	pairs []string // alternating key, value
	kind  string   // "counter" | "gauge" | "histogram"
	c     *Counter
	g     *Gauge
	h     *Histogram
}

// Registry holds named metrics. Metrics are created on first use and
// live for the registry's lifetime; lookups after creation are one map
// access under a mutex, and the returned instruments update with
// atomics only, so cache the pointer in hot paths.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// key renders the canonical identity of a metric: name plus its label
// pairs in the given order.
func key(name string, pairs []string) string {
	if len(pairs) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	writeLabels(&b, pairs)
	b.WriteByte('}')
	return b.String()
}

func writeLabels(b *strings.Builder, pairs []string) {
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%s=%q", pairs[i], pairs[i+1])
	}
}

// lookup returns the metric registered under (name, labels), creating
// it with the given kind on first use. Labels are alternating key,
// value strings; an odd count or a kind clash panics — both are
// programming errors, not runtime conditions.
func (r *Registry) lookup(kind, name string, labels []string) *metric {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for metric %s: %v", name, labels))
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[k]
	if !ok {
		m = &metric{name: name, pairs: append([]string(nil), labels...), kind: kind}
		switch kind {
		case "counter":
			m.c = &Counter{}
		case "gauge":
			m.g = &Gauge{}
		case "histogram":
			m.h = &Histogram{}
		}
		r.metrics[k] = m
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", k, m.kind, kind))
	}
	return m
}

// Counter returns the counter for name and the alternating key/value
// label pairs, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup("counter", name, labels).c
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup("gauge", name, labels).g
}

// Histogram returns the histogram for name and labels, creating it on
// first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.lookup("histogram", name, labels).h
}

// Metric is one registry entry in a snapshot, shaped for JSON.
type Metric struct {
	Name      string             `json:"name"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Kind      string             `json:"kind"`
	Value     int64              `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// sortedMetrics returns the registered metrics ordered by name then
// rendered labels, for deterministic exposition.
func (r *Registry) sortedMetrics() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return key("", out[i].pairs) < key("", out[j].pairs)
	})
	return out
}

// Snapshot returns a point-in-time copy of every registered metric,
// ordered by name then labels.
func (r *Registry) Snapshot() []Metric {
	ms := r.sortedMetrics()
	out := make([]Metric, 0, len(ms))
	for _, m := range ms {
		sm := Metric{Name: m.name, Kind: m.kind}
		if len(m.pairs) > 0 {
			sm.Labels = make(map[string]string, len(m.pairs)/2)
			for i := 0; i+1 < len(m.pairs); i += 2 {
				sm.Labels[m.pairs[i]] = m.pairs[i+1]
			}
		}
		switch m.kind {
		case "counter":
			sm.Value = m.c.Value()
		case "gauge":
			sm.Value = m.g.Value()
		case "histogram":
			h := m.h.Snapshot()
			sm.Value = h.Count
			sm.Histogram = &h
		}
		out = append(out, sm)
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric name, counters and
// gauges as plain samples, histograms as cumulative _bucket series plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	lastType := ""
	for _, m := range r.sortedMetrics() {
		if m.name != lastType {
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
			lastType = m.name
		}
		switch m.kind {
		case "counter":
			fmt.Fprintf(w, "%s %d\n", key(m.name, m.pairs), m.c.Value())
		case "gauge":
			fmt.Fprintf(w, "%s %d\n", key(m.name, m.pairs), m.g.Value())
		case "histogram":
			writePromHistogram(w, m)
		}
	}
}

func writePromHistogram(w io.Writer, m *metric) {
	s := m.h.Snapshot()
	cum := int64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, promLabels(m.pairs, "le", fmt.Sprintf("%d", b.Le)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, promLabels(m.pairs, "le", "+Inf"), s.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", m.name, promLabels(m.pairs), s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, promLabels(m.pairs), s.Count)
}

// promLabels renders a label set with optional extra pairs appended.
func promLabels(pairs []string, extra ...string) string {
	all := pairs
	if len(extra) > 0 {
		all = append(append([]string(nil), pairs...), extra...)
	}
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	writeLabels(&b, all)
	b.WriteByte('}')
	return b.String()
}
