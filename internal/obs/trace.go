package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// RunInfo describes one engine evaluation as it starts.
type RunInfo struct {
	Algorithm  string `json:"algorithm"`
	Routing    string `json:"routing"`
	Queue      string `json:"queue"`
	K          int    `json:"k"`
	QueryNodes int    `json:"query_nodes"`
}

// RunSummary reports the evaluation's final instrumentation — the
// paper's Section 6.2.3 measures (server operations, partial matches
// created, pruned) plus the answer count and wall clock.
type RunSummary struct {
	ServerOps       int64 `json:"server_ops"`
	JoinComparisons int64 `json:"join_comparisons"`
	MatchesCreated  int64 `json:"matches_created"`
	Pruned          int64 `json:"pruned"`
	// PrunedRemote is the subset of Pruned discarded while the threshold
	// was owned by another shard of a sharded evaluation (0 standalone).
	PrunedRemote int64 `json:"pruned_remote,omitempty"`
	// Steals and StolenMatches report work-stealing activity. On the
	// merged run summary they are the evaluation's totals; on a
	// per-shard summary (ShardSink.ShardRun) StolenMatches counts the
	// matches stolen FROM that shard's queue by non-owner workers.
	Steals        int64 `json:"steals,omitempty"`
	StolenMatches int64 `json:"stolen_matches,omitempty"`
	Answers       int   `json:"answers"`
	DurationUS    int64 `json:"duration_us"`
	// Aborted is set when the run's context was cancelled and the
	// partial result discarded.
	Aborted bool `json:"aborted,omitempty"`
}

// Lifecycle classifies a match-lifecycle trace event.
type Lifecycle uint8

const (
	// MatchesSpawned: n partial matches were created (root server batch
	// or server-operation extensions).
	MatchesSpawned Lifecycle = iota
	// MatchesPruned: n partial matches were discarded against
	// currentTopK.
	MatchesPruned
	// MatchesCompleted: n matches finished every server.
	MatchesCompleted
)

// String names the lifecycle kind for traces and logs.
func (l Lifecycle) String() string {
	switch l {
	case MatchesSpawned:
		return "created"
	case MatchesPruned:
		return "pruned"
	case MatchesCompleted:
		return "completed"
	default:
		return "lifecycle(?)"
	}
}

// TraceSink receives per-run engine events. The engine nil-checks its
// sink on every emission, so the default (no sink) adds one predictable
// branch and no allocation to the hot path; when a sink is configured
// the engine may invoke it from multiple goroutines concurrently
// (Whirlpool-M), so implementations must be safe for concurrent use.
//
// Router events use server = -1 for the router queue and the query-node
// ID for server queues.
type TraceSink interface {
	// RunStart opens a run.
	RunStart(info RunInfo)
	// RouteDecision reports that the router sent match matchSeq to
	// server next.
	RouteDecision(matchSeq int64, next int)
	// Threshold reports a new currentTopK pruning threshold. Values are
	// non-decreasing within a single-threaded run; under Whirlpool-M
	// samples are best-effort ordered.
	Threshold(value float64)
	// QueueDepth samples the depth of one queue (server = -1 for the
	// router queue) at a routing or phase boundary.
	QueueDepth(server, depth int)
	// MatchLifecycle reports n matches created / pruned / completed.
	MatchLifecycle(kind Lifecycle, n int)
	// RunEnd closes a run with its final counters.
	RunEnd(sum RunSummary)
}

// ShardSink is an optional extension of TraceSink for sharded
// evaluations: sinks that implement it additionally receive one
// per-shard summary per shard run, before the merged run's RunEnd.
type ShardSink interface {
	// ShardRun reports the final counters of one shard's engine run
	// within a sharded evaluation.
	ShardRun(shard int, sum RunSummary)
}

// Event is one recorded trace event, shaped for JSONL dumps: Kind
// selects which of the remaining fields are meaningful.
type Event struct {
	// I is the sink-assigned sequence number (arrival order).
	I int64 `json:"i"`
	// Kind is one of run_start, route, threshold, queue_depth, match,
	// shard_run, run_end.
	Kind     string      `json:"event"`
	Run      *RunInfo    `json:"run,omitempty"`
	Summary  *RunSummary `json:"summary,omitempty"`
	MatchSeq int64       `json:"match_seq,omitempty"`
	Server   int         `json:"server,omitempty"`
	Depth    int         `json:"depth,omitempty"`
	Value    float64     `json:"value,omitempty"`
	Life     string      `json:"kind,omitempty"`
	N        int         `json:"n,omitempty"`
	// Shard is the shard id of a shard_run event.
	Shard int `json:"shard,omitempty"`
}

// Collector is an in-memory TraceSink for tests and ad-hoc inspection.
// The zero value is ready to use.
type Collector struct {
	mu     sync.Mutex
	seq    int64
	events []Event
}

func (c *Collector) record(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	e.I = c.seq
	c.events = append(c.events, e)
}

// RunStart implements TraceSink.
func (c *Collector) RunStart(info RunInfo) { c.record(Event{Kind: "run_start", Run: &info}) }

// RouteDecision implements TraceSink.
func (c *Collector) RouteDecision(matchSeq int64, next int) {
	c.record(Event{Kind: "route", MatchSeq: matchSeq, Server: next})
}

// Threshold implements TraceSink.
func (c *Collector) Threshold(value float64) { c.record(Event{Kind: "threshold", Value: value}) }

// QueueDepth implements TraceSink.
func (c *Collector) QueueDepth(server, depth int) {
	c.record(Event{Kind: "queue_depth", Server: server, Depth: depth})
}

// MatchLifecycle implements TraceSink.
func (c *Collector) MatchLifecycle(kind Lifecycle, n int) {
	c.record(Event{Kind: "match", Life: kind.String(), N: n})
}

// RunEnd implements TraceSink.
func (c *Collector) RunEnd(sum RunSummary) { c.record(Event{Kind: "run_end", Summary: &sum}) }

// ShardRun implements ShardSink.
func (c *Collector) ShardRun(shard int, sum RunSummary) {
	c.record(Event{Kind: "shard_run", Shard: shard, Summary: &sum})
}

// Events returns a copy of everything recorded so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// CountKind returns how many events of the given Kind were recorded.
func (c *Collector) CountKind(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// LifeTotal sums the n of every match-lifecycle event of the given kind.
func (c *Collector) LifeTotal(kind Lifecycle) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	name := kind.String()
	for _, e := range c.events {
		if e.Kind == "match" && e.Life == name {
			total += int64(e.N)
		}
	}
	return total
}

// JSONL is a TraceSink that writes one JSON object per event to an
// io.Writer. A mutex serializes writers, so it is safe for Whirlpool-M's
// concurrent emitters; the first encode error is retained and stops
// further output.
type JSONL struct {
	mu  sync.Mutex
	seq int64
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing JSONL events to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

func (j *JSONL) record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.seq++
	e.I = j.seq
	j.err = j.enc.Encode(e)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// RunStart implements TraceSink.
func (j *JSONL) RunStart(info RunInfo) { j.record(Event{Kind: "run_start", Run: &info}) }

// RouteDecision implements TraceSink.
func (j *JSONL) RouteDecision(matchSeq int64, next int) {
	j.record(Event{Kind: "route", MatchSeq: matchSeq, Server: next})
}

// Threshold implements TraceSink.
func (j *JSONL) Threshold(value float64) { j.record(Event{Kind: "threshold", Value: value}) }

// QueueDepth implements TraceSink.
func (j *JSONL) QueueDepth(server, depth int) {
	j.record(Event{Kind: "queue_depth", Server: server, Depth: depth})
}

// MatchLifecycle implements TraceSink.
func (j *JSONL) MatchLifecycle(kind Lifecycle, n int) {
	j.record(Event{Kind: "match", Life: kind.String(), N: n})
}

// RunEnd implements TraceSink.
func (j *JSONL) RunEnd(sum RunSummary) { j.record(Event{Kind: "run_end", Summary: &sum}) }

// ShardRun implements ShardSink.
func (j *JSONL) ShardRun(shard int, sum RunSummary) {
	j.record(Event{Kind: "shard_run", Shard: shard, Summary: &sum})
}
