package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // dropped: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 900, 1024} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+1+1+2+3+900+1024 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// Expected buckets: le=0 (the 0), le=1 (two 1s), le=3 (2 and 3),
	// le=1023 (900), le=2047 (1024).
	want := map[int64]int64{0: 1, 1: 2, 3: 2, 1023: 1, 2047: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d (all: %+v)", b.Le, b.Count, want[b.Le], s.Buckets)
		}
	}
}

func TestBucketIndexBounds(t *testing.T) {
	if bucketIndex(-5) != 0 || bucketIndex(0) != 0 {
		t.Fatal("non-positive values must land in bucket 0")
	}
	if bucketUpper(64) != math.MaxInt64 {
		t.Fatalf("last bucket upper = %d", bucketUpper(64))
	}
	var h Histogram
	h.Observe(math.MaxInt64)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Le != math.MaxInt64 {
		t.Fatalf("maxint snapshot = %+v", s.Buckets)
	}
}

func TestRegistryIdentityAndLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "endpoint", "query")
	b := r.Counter("requests_total", "endpoint", "query")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("requests_total", "endpoint", "keyword")
	if a == other {
		t.Fatal("distinct labels must return distinct counters")
	}
	a.Add(3)
	other.Inc()
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Deterministic order: labels sorted lexically within a name.
	if snap[0].Labels["endpoint"] != "keyword" || snap[0].Value != 1 {
		t.Fatalf("snapshot[0] = %+v", snap[0])
	}
	if snap[1].Labels["endpoint"] != "query" || snap[1].Value != 3 {
		t.Fatalf("snapshot[1] = %+v", snap[1])
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter as a gauge must panic")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(42)
	r.Histogram("latency_us", "endpoint", "query").Observe(100)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back []Metric
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Histogram == nil || back[0].Histogram.Count != 1 {
		t.Fatalf("round trip = %s", data)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", "endpoint", "query", "code", "200").Add(2)
	r.Gauge("cache_entries").Set(9)
	h := r.Histogram("latency_us")
	h.Observe(3)
	h.Observe(100)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{endpoint="query",code="200"} 2`,
		"# TYPE cache_entries gauge",
		"cache_entries 9",
		"# TYPE latency_us histogram",
		`latency_us_bucket{le="3"} 1`,
		`latency_us_bucket{le="127"} 2`,
		`latency_us_bucket{le="+Inf"} 2`,
		"latency_us_sum 103",
		"latency_us_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestCollectorSink(t *testing.T) {
	var c Collector
	c.RunStart(RunInfo{Algorithm: "Whirlpool-S", K: 5})
	c.RouteDecision(1, 2)
	c.Threshold(0.5)
	c.QueueDepth(-1, 3)
	c.MatchLifecycle(MatchesSpawned, 4)
	c.MatchLifecycle(MatchesPruned, 2)
	c.RunEnd(RunSummary{ServerOps: 10, Answers: 5})
	if got := c.CountKind("route"); got != 1 {
		t.Fatalf("route events = %d", got)
	}
	if got := c.LifeTotal(MatchesSpawned); got != 4 {
		t.Fatalf("created total = %d", got)
	}
	events := c.Events()
	if len(events) != 7 || events[0].Kind != "run_start" || events[6].Kind != "run_end" {
		t.Fatalf("events = %+v", events)
	}
	for i, e := range events {
		if e.I != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.I)
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.RunStart(RunInfo{Algorithm: "Whirlpool-M", Routing: "min_alive_partial_matches"})
	j.Threshold(1.25)
	j.RunEnd(RunSummary{Answers: 3, DurationUS: 42})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 3 || kinds[0] != "run_start" || kinds[1] != "threshold" || kinds[2] != "run_end" {
		t.Fatalf("kinds = %v", kinds)
	}
}
