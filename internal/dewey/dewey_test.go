package dewey

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestChildParentRoundTrip(t *testing.T) {
	root := ID(nil)
	c2 := root.Child(2)
	if got := c2.String(); got != "2" {
		t.Fatalf("Child(2).String() = %q, want %q", got, "2")
	}
	c20 := c2.Child(0)
	if got := c20.String(); got != "2.0" {
		t.Fatalf("String() = %q, want %q", got, "2.0")
	}
	p, ok := c20.Parent()
	if !ok || !p.Equal(c2) {
		t.Fatalf("Parent(%v) = %v, %v; want %v, true", c20, p, ok, c2)
	}
	if _, ok := root.Parent(); ok {
		t.Fatalf("root should have no parent")
	}
}

func TestChildDoesNotAliasParentStorage(t *testing.T) {
	base := ID{1, 2}
	a := base.Child(3)
	b := base.Child(4)
	if a[2] != 3 || b[2] != 4 {
		t.Fatalf("siblings alias storage: %v %v", a, b)
	}
}

func TestParentDoesNotAliasForFurtherChildren(t *testing.T) {
	id := ID{1, 2, 3}
	p, _ := id.Parent()
	c := p.Child(9)
	if id[2] != 3 {
		t.Fatalf("Child on Parent() clobbered original: %v", id)
	}
	if !reflect.DeepEqual(c, ID{1, 2, 9}) {
		t.Fatalf("unexpected child: %v", c)
	}
}

func TestCompareDocumentOrder(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "0", -1},       // root precedes its child
		{"0", "1", -1},      // earlier sibling
		{"1.5", "1.5", 0},   // equal
		{"1.2", "1.10", -1}, // numeric, not lexicographic-string
		{"2", "1.9.9", 1},
		{"1", "1.0", -1}, // ancestor before descendant
	}
	for _, c := range cases {
		a, err := Parse(c.a)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.a, err)
		}
		b, err := Parse(c.b)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.b, err)
		}
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := b.Compare(a); got != -c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestAncestorDescendant(t *testing.T) {
	a := ID{1, 2}
	d := ID{1, 2, 0, 4}
	if !a.IsAncestorOf(d) {
		t.Error("IsAncestorOf failed on strict prefix")
	}
	if a.IsAncestorOf(a) {
		t.Error("a node is not its own ancestor")
	}
	if !d.IsDescendantOf(a) {
		t.Error("IsDescendantOf failed")
	}
	if a.IsParentOf(d) {
		t.Error("IsParentOf should require exactly one extra level")
	}
	if !a.IsParentOf(ID{1, 2, 7}) {
		t.Error("IsParentOf failed on direct child")
	}
	if (ID{1, 3}).IsAncestorOf(d) {
		t.Error("non-prefix claimed as ancestor")
	}
}

func TestSiblings(t *testing.T) {
	a := ID{3, 1}
	b := ID{3, 4}
	if !a.IsSiblingOf(b) || !b.IsSiblingOf(a) {
		t.Error("IsSiblingOf failed")
	}
	if a.IsSiblingOf(a) {
		t.Error("a node is not its own sibling")
	}
	if !b.IsFollowingSiblingOf(a) {
		t.Error("b should follow a")
	}
	if a.IsFollowingSiblingOf(b) {
		t.Error("a should not follow b")
	}
	if (ID{3, 1}).IsSiblingOf(ID{4, 1}) {
		t.Error("different parents are not siblings")
	}
	if (ID{}).IsSiblingOf(ID{}) {
		t.Error("roots are not siblings of themselves")
	}
}

func TestCommonPrefix(t *testing.T) {
	a := ID{1, 2, 3}
	b := ID{1, 2, 5, 0}
	got := a.CommonPrefix(b)
	if !got.Equal(ID{1, 2}) {
		t.Fatalf("CommonPrefix = %v, want 1.2", got)
	}
	if cp := a.CommonPrefix(ID{9}); len(cp) != 0 {
		t.Fatalf("disjoint prefix should be empty, got %v", cp)
	}
}

func TestDescendantUpperBound(t *testing.T) {
	id := ID{1, 2}
	ub := id.DescendantUpperBound()
	if !ub.Equal(ID{1, 3}) {
		t.Fatalf("upper bound = %v, want 1.3", ub)
	}
	// Every descendant sorts in [id, ub).
	for _, d := range []ID{{1, 2, 0}, {1, 2, 99}, {1, 2, 5, 5}} {
		if d.Compare(id) < 0 || d.Compare(ub) >= 0 {
			t.Errorf("descendant %v outside [%v,%v)", d, id, ub)
		}
	}
	for _, nd := range []ID{{1, 3}, {1, 1, 9}, {2}} {
		if nd.Compare(id) > 0 && nd.Compare(ub) < 0 {
			t.Errorf("non-descendant %v inside range", nd)
		}
	}
	// The original must not be mutated.
	if !id.Equal(ID{1, 2}) {
		t.Fatalf("DescendantUpperBound mutated receiver: %v", id)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, s := range []string{"·", "0", "1.2.3", "10.0.7"} {
		id, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := id.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	for _, bad := range []string{"a", "1..2", "-1", "1.-2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestAxisHolds(t *testing.T) {
	p := ID{0}
	c := ID{0, 1}
	d := ID{0, 1, 2}
	s := ID{0, 3}
	cases := []struct {
		axis     Axis
		from, to ID
		want     bool
	}{
		{Self, p, p, true},
		{Self, p, c, false},
		{Child, p, c, true},
		{Child, p, d, false},
		{Descendant, p, c, true},
		{Descendant, p, d, true},
		{Descendant, p, p, false},
		{FollowingSibling, c, s, true},
		{FollowingSibling, s, c, false},
		{FollowingSibling, c, d, false},
	}
	for _, tc := range cases {
		if got := tc.axis.Holds(tc.from, tc.to); got != tc.want {
			t.Errorf("%v.Holds(%v,%v) = %v, want %v", tc.axis, tc.from, tc.to, got, tc.want)
		}
	}
}

func TestAxisRelaxAndCompose(t *testing.T) {
	if Child.Relax() != Descendant {
		t.Error("pc must relax to ad")
	}
	if Descendant.Relax() != Descendant || Self.Relax() != Self {
		t.Error("non-pc axes relax to themselves")
	}
	if Compose(Self, Child) != Child || Compose(Child, Self) != Child {
		t.Error("Self must be the identity for Compose")
	}
	if Compose(Child, Child) != Descendant {
		t.Error("pc∘pc must widen to ad")
	}
	if Compose(Descendant, Child) != Descendant || Compose(Child, Descendant) != Descendant {
		t.Error("compositions through ad are ad")
	}
}

func TestAxisStrings(t *testing.T) {
	names := map[Axis]string{
		Self: "self", Child: "pc", Descendant: "ad", FollowingSibling: "following-sibling",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
	if Axis(99).String() != "axis(?)" {
		t.Error("unknown axis should render a placeholder")
	}
}

// randomID produces a bounded random Dewey ID for property tests.
func randomID(r *rand.Rand) ID {
	n := r.Intn(6)
	id := make(ID, n)
	for i := range id {
		id[i] = r.Intn(4)
	}
	return id
}

func TestPropCompareIsTotalOrder(t *testing.T) {
	// Antisymmetry and transitivity over random triples.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomID(r), randomID(r), randomID(r)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropAncestorIffDocOrderSandwich(t *testing.T) {
	// a is an ancestor of d iff a <= d < a's descendant upper bound
	// (for non-root a), matching the range-scan contract.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, d := randomID(r), randomID(r)
		if len(a) == 0 {
			return true
		}
		inRange := a.Compare(d) < 0 && d.Compare(a.DescendantUpperBound()) < 0
		return inRange == a.IsAncestorOf(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropChildImpliesDescendant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomID(r), randomID(r)
		if Child.Holds(a, b) && !Descendant.Holds(a, b) {
			return false
		}
		// Relaxation containment: anything satisfying an axis satisfies
		// its relaxed form.
		for _, ax := range []Axis{Self, Child, Descendant, FollowingSibling} {
			if ax.Holds(a, b) && !ax.Relax().Holds(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropCommonPrefixIsAncestorOrSelf(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomID(r), randomID(r)
		cp := a.CommonPrefix(b)
		okA := cp.Equal(a) || cp.IsAncestorOf(a)
		okB := cp.Equal(b) || cp.IsAncestorOf(b)
		return okA && okB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropDocumentOrderSortStable(t *testing.T) {
	// Sorting by Compare yields ancestors before descendants.
	r := rand.New(rand.NewSource(7))
	ids := make([]ID, 200)
	for i := range ids {
		ids[i] = randomID(r)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	for i := 0; i+1 < len(ids); i++ {
		if ids[i+1].IsAncestorOf(ids[i]) {
			t.Fatalf("descendant %v sorted before ancestor %v", ids[i], ids[i+1])
		}
	}
}
