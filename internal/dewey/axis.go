package dewey

// Axis identifies an XPath structural axis between two nodes. The paper's
// tree patterns use pc (parent-child) and ad (ancestor-descendant) edges;
// Self and FollowingSibling round out the predicates needed by the query
// decomposition in Section 4 (e.g. following-sibling::e).
type Axis int

const (
	// Self relates a node to itself.
	Self Axis = iota
	// Child relates a parent to its direct child (pc edge).
	Child
	// Descendant relates an ancestor to any strict descendant (ad edge).
	Descendant
	// FollowingSibling relates a node to a later sibling.
	FollowingSibling
)

// String returns the conventional short name of the axis.
func (a Axis) String() string {
	switch a {
	case Self:
		return "self"
	case Child:
		return "pc"
	case Descendant:
		return "ad"
	case FollowingSibling:
		return "following-sibling"
	default:
		return "axis(?)"
	}
}

// Holds reports whether axis a holds from `from` to `to`, i.e. whether
// `to` is on axis a of `from`. For Child and Descendant, `from` is the
// upper (ancestor-side) node.
func (a Axis) Holds(from, to ID) bool {
	switch a {
	case Self:
		return from.Equal(to)
	case Child:
		return from.IsParentOf(to)
	case Descendant:
		return from.IsAncestorOf(to)
	case FollowingSibling:
		return to.IsFollowingSiblingOf(from)
	default:
		return false
	}
}

// Relax returns the relaxed form of the axis under edge generalization:
// Child relaxes to Descendant; every other axis relaxes to itself.
func (a Axis) Relax() Axis {
	if a == Child {
		return Descendant
	}
	return a
}

// Compose returns the composition of two downward axes along a path, as
// used by Algorithm 1 to derive the predicate between a server node and
// the query root: pc∘pc is "grandchild" which this model conservatively
// widens to Descendant; any composition involving Descendant is
// Descendant; composing with Self is the identity.
func Compose(a, b Axis) Axis {
	if a == Self {
		return b
	}
	if b == Self {
		return a
	}
	return Descendant
}
