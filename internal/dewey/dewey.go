// Package dewey implements Dewey identifiers for XML nodes.
//
// A Dewey ID encodes the path from the document root to a node as the
// sequence of child ordinals along that path: the root of a tree is []
// (empty), its third child is [2], that child's first child is [2 0], and
// so on. Dewey IDs make the XPath structural axes cheap to decide:
//
//   - parent/child:        child's ID is the parent's ID plus one component
//   - ancestor/descendant: ancestor's ID is a strict prefix
//   - document order:      lexicographic comparison
//   - following-sibling:   equal prefixes, last component greater
//
// The Whirlpool servers (internal/core) evaluate every structural join
// predicate through this package, mirroring the paper's Dewey-based
// nested-loop joins (Section 6.2.1).
package dewey

import (
	"fmt"
	"strconv"
	"strings"
)

// ID is a Dewey identifier: the child-ordinal path from the root.
// The zero value (nil) identifies a tree root. IDs are treated as
// immutable; use Child or Copy instead of mutating components.
type ID []int

// Child returns the Dewey ID of the ordinal-th child of id.
// The returned ID shares no storage with id.
func (id ID) Child(ordinal int) ID {
	child := make(ID, len(id)+1)
	copy(child, id)
	child[len(id)] = ordinal
	return child
}

// Parent returns the Dewey ID of id's parent and true, or nil and false
// if id is a root.
func (id ID) Parent() (ID, bool) {
	if len(id) == 0 {
		return nil, false
	}
	return id[: len(id)-1 : len(id)-1], true
}

// Level returns the depth of the node: 0 for a root.
func (id ID) Level() int { return len(id) }

// Copy returns an independent copy of id.
func (id ID) Copy() ID {
	if id == nil {
		return nil
	}
	out := make(ID, len(id))
	copy(out, id)
	return out
}

// Compare orders IDs in document order (preorder): -1 if id precedes
// other, +1 if it follows, 0 if equal. An ancestor precedes its
// descendants.
func (id ID) Compare(other ID) int {
	n := len(id)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		switch {
		case id[i] < other[i]:
			return -1
		case id[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(id) < len(other):
		return -1
	case len(id) > len(other):
		return 1
	}
	return 0
}

// Equal reports whether the two IDs address the same node.
func (id ID) Equal(other ID) bool { return id.Compare(other) == 0 }

// IsAncestorOf reports whether id is a strict ancestor of other, i.e.
// id is a strict prefix of other.
func (id ID) IsAncestorOf(other ID) bool {
	if len(id) >= len(other) {
		return false
	}
	for i, c := range id {
		if other[i] != c {
			return false
		}
	}
	return true
}

// IsParentOf reports whether other is a direct child of id.
func (id ID) IsParentOf(other ID) bool {
	return len(other) == len(id)+1 && id.IsAncestorOf(other)
}

// IsDescendantOf reports whether id is a strict descendant of other.
func (id ID) IsDescendantOf(other ID) bool { return other.IsAncestorOf(id) }

// IsChildOf reports whether id is a direct child of other.
func (id ID) IsChildOf(other ID) bool { return other.IsParentOf(id) }

// IsSiblingOf reports whether the two IDs share a parent and are distinct.
func (id ID) IsSiblingOf(other ID) bool {
	if len(id) != len(other) || len(id) == 0 {
		return false
	}
	for i := 0; i < len(id)-1; i++ {
		if id[i] != other[i] {
			return false
		}
	}
	return id[len(id)-1] != other[len(other)-1]
}

// IsFollowingSiblingOf reports whether id is a sibling of other that
// appears after it in document order.
func (id ID) IsFollowingSiblingOf(other ID) bool {
	return id.IsSiblingOf(other) && id[len(id)-1] > other[len(other)-1]
}

// CommonPrefix returns the longest common prefix of the two IDs — the
// Dewey ID of the nodes' lowest common ancestor when both belong to the
// same tree.
func (id ID) CommonPrefix(other ID) ID {
	n := len(id)
	if len(other) < n {
		n = len(other)
	}
	i := 0
	for i < n && id[i] == other[i] {
		i++
	}
	return id[:i:i]
}

// DescendantUpperBound returns the smallest ID that is greater (in
// document order) than every descendant of id. It is intended for
// half-open range scans over document-ordered postings:
// descendants(id) = [id, DescendantUpperBound(id)).
func (id ID) DescendantUpperBound() ID {
	if len(id) == 0 {
		return nil // a root's descendants are unbounded within its tree
	}
	out := id.Copy()
	out[len(out)-1]++
	return out
}

// String renders the ID in the conventional dotted form, e.g. "2.0.4".
// A root renders as "·".
func (id ID) String() string {
	if len(id) == 0 {
		return "·"
	}
	var b strings.Builder
	for i, c := range id {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// Parse parses the dotted form produced by String. "·" and "" both parse
// to the root ID.
func Parse(s string) (ID, error) {
	if s == "" || s == "·" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	id := make(ID, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("dewey: invalid component %q in %q", p, s)
		}
		if v < 0 {
			return nil, fmt.Errorf("dewey: negative component %d in %q", v, s)
		}
		id[i] = v
	}
	return id, nil
}
