package relax

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/pattern"
)

// RelaxedQuery is one member of a query's relaxation closure, together
// with the mapping from its node IDs back to the original query's.
type RelaxedQuery struct {
	Query *pattern.Query
	// NodeMap[i] is the original query node ID of relaxed node i.
	NodeMap []int
}

// Enumerate computes the relaxation closure of q under the enabled
// relaxations, as a rewriting-based evaluator would (the strategy the
// paper's plan-relaxation approach [2] competes against). The original
// query is always the first element. The closure grows exponentially
// with query size — limit caps the number of queries returned (0 means
// no cap); the boolean result reports whether the closure was truncated.
//
// Following-sibling edges are never generalized or promoted (sibling
// order admits no relaxation, matching the engine); their subtrees can
// still be deleted leaf-by-leaf.
func Enumerate(q *pattern.Query, r Relaxation, limit int) ([]RelaxedQuery, bool) {
	start := RelaxedQuery{Query: q.Clone(), NodeMap: identityMap(q.Size())}
	seen := map[string]bool{canonical(start): true}
	out := []RelaxedQuery{start}
	queue := []RelaxedQuery{start}
	truncated := false
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range rewrites(cur, r) {
			key := canonical(next)
			if seen[key] {
				continue
			}
			seen[key] = true
			if limit > 0 && len(out) >= limit {
				truncated = true
				continue
			}
			out = append(out, next)
			queue = append(queue, next)
		}
	}
	return out, truncated
}

func identityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// canonical renders a dedup key: the query string plus the node map (two
// structurally equal queries with different provenance are kept once).
func canonical(rq RelaxedQuery) string {
	return rq.Query.String()
}

// rewrites applies every enabled single-step relaxation to rq.
func rewrites(rq RelaxedQuery, r Relaxation) []RelaxedQuery {
	var out []RelaxedQuery
	q := rq.Query
	if r.Has(EdgeGeneralization) {
		for id := 0; id < q.Size(); id++ {
			if q.Nodes[id].Axis == dewey.Child {
				c := rq.clone()
				c.Query.Nodes[id].Axis = dewey.Descendant
				out = append(out, c)
			}
		}
	}
	if r.Has(LeafDeletion) {
		for id := 1; id < q.Size(); id++ {
			if len(q.Nodes[id].Children) == 0 {
				out = append(out, rq.deleteLeaf(id))
			}
		}
	}
	if r.Has(SubtreePromotion) {
		for id := 1; id < q.Size(); id++ {
			n := q.Nodes[id]
			if n.Axis == dewey.FollowingSibling {
				continue // sibling order is not relaxed
			}
			parent := n.Parent
			if parent <= 0 {
				continue // already anchored at the root
			}
			if q.Nodes[parent].Axis == dewey.FollowingSibling {
				continue // would detach an order constraint's target
			}
			out = append(out, rq.promote(id))
		}
	}
	return out
}

func (rq RelaxedQuery) clone() RelaxedQuery {
	return RelaxedQuery{
		Query:   rq.Query.Clone(),
		NodeMap: append([]int(nil), rq.NodeMap...),
	}
}

// deleteLeaf removes leaf node id, renumbering the remaining nodes.
func (rq RelaxedQuery) deleteLeaf(id int) RelaxedQuery {
	old := rq.Query
	remap := make([]int, old.Size())
	next := 0
	for i := 0; i < old.Size(); i++ {
		if i == id {
			remap[i] = -1
			continue
		}
		remap[i] = next
		next++
	}
	nq := &pattern.Query{}
	nm := make([]int, 0, old.Size()-1)
	for i, n := range old.Nodes {
		if i == id {
			continue
		}
		cp := *n
		cp.ID = remap[i]
		if cp.Parent >= 0 {
			cp.Parent = remap[cp.Parent]
		}
		cp.Children = nil
		for _, c := range n.Children {
			if c != id {
				cp.Children = append(cp.Children, remap[c])
			}
		}
		nq.Nodes = append(nq.Nodes, &cp)
		nm = append(nm, rq.NodeMap[i])
	}
	return RelaxedQuery{Query: nq, NodeMap: nm}
}

// promote re-anchors node id (and its subtree) to its grandparent with
// an ad edge. Node IDs keep their declaration order, which preserves the
// parent-before-child invariant (the grandparent's ID is smaller still).
func (rq RelaxedQuery) promote(id int) RelaxedQuery {
	c := rq.clone()
	q := c.Query
	n := q.Nodes[id]
	parent := n.Parent
	grand := q.Nodes[parent].Parent
	// Detach from the parent.
	kids := q.Nodes[parent].Children[:0]
	for _, k := range q.Nodes[parent].Children {
		if k != id {
			kids = append(kids, k)
		}
	}
	q.Nodes[parent].Children = kids
	// Attach to the grandparent, keeping children sorted for a stable
	// canonical form.
	n.Parent = grand
	n.Axis = dewey.Descendant
	q.Nodes[grand].Children = append(q.Nodes[grand].Children, id)
	sort.Ints(q.Nodes[grand].Children)
	return c
}
