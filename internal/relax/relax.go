// Package relax implements the paper's query relaxation framework
// (Sections 2 and 5.2.1). Three relaxations — edge generalization
// (pc → ad), leaf deletion (a leaf node becomes optional) and subtree
// promotion (a subtree re-anchors to its grandparent) — and their
// compositions turn a tree pattern into a family of relaxed queries whose
// exact answers are the approximate answers of the original query.
//
// Rather than enumerating relaxed queries, Whirlpool encodes all
// relaxations in the evaluation plan (plan-relaxation, [2]): every server
// checks (i) a *structural predicate* relating the server node to the
// query root — the relaxed composition of the axes on the path between
// them — and (ii) a *conditional predicate sequence* against the other
// query nodes bound so far, each an ordered "if not exact, then relaxed"
// check. BuildPlans is the analog of the paper's Algorithm 1 (Server
// Predicates Generation).
package relax

import (
	"fmt"

	"repro/internal/dewey"
	"repro/internal/pattern"
)

// Relaxation is a bitmask of enabled relaxations.
type Relaxation uint8

const (
	// EdgeGeneralization replaces a pc edge by ad.
	EdgeGeneralization Relaxation = 1 << iota
	// LeafDeletion makes a leaf node optional. Composed with itself it
	// deletes whole subtrees bottom-up.
	LeafDeletion
	// SubtreePromotion moves a subtree from its parent to its
	// grandparent; composed with itself it re-anchors a subtree to any
	// pattern ancestor, ultimately the query root.
	SubtreePromotion

	// None disables relaxation: only exact matches qualify.
	None Relaxation = 0
	// All enables every relaxation — the paper's approximate-match
	// setting.
	All = EdgeGeneralization | LeafDeletion | SubtreePromotion
)

// Has reports whether r enables the given relaxation.
func (r Relaxation) Has(x Relaxation) bool { return r&x != 0 }

// String lists the enabled relaxations.
func (r Relaxation) String() string {
	if r == None {
		return "none"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "+"
		}
		s += name
	}
	if r.Has(EdgeGeneralization) {
		add("edge-generalization")
	}
	if r.Has(LeafDeletion) {
		add("leaf-deletion")
	}
	if r.Has(SubtreePromotion) {
		add("subtree-promotion")
	}
	return s
}

// PathPredicate is the composition of the axes along a pattern path: the
// target must be a strict descendant of the anchor with a level
// difference of exactly MinLevels (Exact) or at least MinLevels. A chain
// of k pc edges composes to {MinLevels: k, Exact: true}; any ad edge on
// the path drops Exact. A following-sibling edge contributes zero levels
// (the sibling hangs off the same parent).
type PathPredicate struct {
	MinLevels int
	Exact     bool
}

// HoldsExact reports whether target relates to anchor exactly as the
// unrelaxed path prescribes.
func (p PathPredicate) HoldsExact(anchor, target dewey.ID) bool {
	diff := target.Level() - anchor.Level()
	if diff < p.MinLevels || (p.Exact && diff != p.MinLevels) {
		return false
	}
	if p.MinLevels == 0 && diff == 0 {
		return anchor.Equal(target)
	}
	return anchor.IsAncestorOf(target)
}

// HoldsRelaxed reports whether target relates to anchor under full edge
// generalization: any strict descendant (or self when MinLevels is 0).
func (p PathPredicate) HoldsRelaxed(anchor, target dewey.ID) bool {
	if p.MinLevels == 0 && anchor.Equal(target) {
		return true
	}
	return anchor.IsAncestorOf(target)
}

// Relaxed returns the edge-generalized form of the predicate.
func (p PathPredicate) Relaxed() PathPredicate {
	return PathPredicate{MinLevels: minInt(p.MinLevels, 1), Exact: false}
}

// String renders e.g. "desc(=2)" or "desc(>=1)".
func (p PathPredicate) String() string {
	if p.Exact {
		return fmt.Sprintf("desc(=%d)", p.MinLevels)
	}
	return fmt.Sprintf("desc(>=%d)", p.MinLevels)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ComposePath composes the original (unrelaxed) axes along the pattern
// path from ancestor anc down to descendant desc (Algorithm 1's
// getComposition). anc == desc yields the Self predicate {0, true}.
// It panics when desc is not in anc's pattern subtree.
func ComposePath(q *pattern.Query, anc, desc int) PathPredicate {
	pp := PathPredicate{MinLevels: 0, Exact: true}
	cur := desc
	for cur != anc {
		n := q.Nodes[cur]
		if n.Parent == -1 {
			panic(fmt.Sprintf("relax: node %d is not a pattern descendant of %d", desc, anc))
		}
		switch n.Axis {
		case dewey.Child:
			pp.MinLevels++
		case dewey.Descendant:
			pp.MinLevels++
			pp.Exact = false
		case dewey.FollowingSibling:
			// The following sibling hangs off the same parent: zero
			// level contribution, exactness preserved.
		}
		cur = n.Parent
	}
	return pp
}

// Cond is one entry of a server's conditional predicate sequence: the
// pairwise predicate between the server node and another query node that
// is its pattern ancestor or descendant (or following-sibling anchor).
type Cond struct {
	// OtherID is the other query node.
	OtherID int
	// OtherIsAncestor is true when the other node is the server node's
	// pattern ancestor (the predicate runs other → server), false when
	// it is a pattern descendant (server → other).
	OtherIsAncestor bool
	// Path is the exact composed predicate between the two nodes.
	// Meaningless when FollowingSibling is set.
	Path PathPredicate
	// FollowingSibling marks the special sibling-order predicate: the
	// server node must be a following sibling of the other node's
	// binding (or vice versa when OtherIsAncestor is false).
	FollowingSibling bool
	// DirectParent is true when the other node is the server node's
	// immediate pattern parent (or immediate child when
	// OtherIsAncestor is false); exactness of the component predicate
	// hinges on these.
	DirectParent bool
}

// ServerPlan is everything one Whirlpool server needs to process partial
// matches for its query node: the structural probe predicate against the
// bound root, and the conditional predicate sequence against the other
// query nodes (Algorithm 1's output).
type ServerPlan struct {
	// NodeID is the query node this server instantiates.
	NodeID int
	// Tag and Value are the node's label predicates; ValueOp is the
	// content-predicate operator ("" means equality when Value is set).
	Tag, Value, ValueOp string
	// RootPath is the exact composed predicate root → node.
	RootPath PathPredicate
	// Conds is the conditional predicate sequence, in query-node order.
	Conds []Cond
	// Relax is the enabled relaxation set.
	Relax Relaxation
}

// ProbeAxis returns the axis the structural index probe should use:
// Child when the unrelaxed composition is a single pc edge and no
// relaxation can widen it, Descendant otherwise.
func (sp *ServerPlan) ProbeAxis() dewey.Axis {
	if sp.Relax.Has(EdgeGeneralization) || sp.Relax.Has(SubtreePromotion) {
		return dewey.Descendant
	}
	if sp.RootPath.Exact && sp.RootPath.MinLevels == 1 {
		return dewey.Child
	}
	return dewey.Descendant
}

// BuildPlans derives a ServerPlan for every non-root query node, plus a
// plan for the root itself at index 0 (its structural predicate is the
// root's own axis to the virtual document root). The slice is indexed by
// query node ID.
func BuildPlans(q *pattern.Query, r Relaxation) []*ServerPlan {
	plans := make([]*ServerPlan, q.Size())
	for id := 0; id < q.Size(); id++ {
		n := q.Nodes[id]
		sp := &ServerPlan{
			NodeID:  id,
			Tag:     n.Tag,
			Value:   n.Value,
			ValueOp: n.ValueOp,
			Relax:   r,
		}
		if id != 0 {
			sp.RootPath = ComposePath(q, 0, id)
			// The relation to the root (other == 0) is the structural
			// predicate itself — only non-root relatives yield
			// conditional predicates.
			for other := 1; other < q.Size(); other++ {
				if other == id {
					continue
				}
				switch {
				case q.IsDescendant(id, other):
					sp.Conds = append(sp.Conds, Cond{
						OtherID:          other,
						OtherIsAncestor:  true,
						Path:             ComposePath(q, other, id),
						FollowingSibling: false,
						DirectParent:     q.Nodes[id].Parent == other && n.Axis != dewey.FollowingSibling,
					})
				case q.IsDescendant(other, id):
					sp.Conds = append(sp.Conds, Cond{
						OtherID:         other,
						OtherIsAncestor: false,
						Path:            ComposePath(q, id, other),
						DirectParent:    q.Nodes[other].Parent == id && q.Nodes[other].Axis != dewey.FollowingSibling,
					})
				}
			}
			// Following-sibling edges add an ordering predicate against
			// the sibling anchor (the pattern parent).
			if n.Axis == dewey.FollowingSibling {
				sp.Conds = append(sp.Conds, Cond{
					OtherID:          n.Parent,
					OtherIsAncestor:  true,
					FollowingSibling: true,
					DirectParent:     true,
				})
			}
			for _, cid := range n.Children {
				if q.Nodes[cid].Axis == dewey.FollowingSibling {
					sp.Conds = append(sp.Conds, Cond{
						OtherID:          cid,
						OtherIsAncestor:  false,
						FollowingSibling: true,
						DirectParent:     true,
					})
				}
			}
		} else {
			// The root's structural predicate relates it to the virtual
			// document root: Child ⇒ forest root (level 1), Descendant ⇒
			// any level.
			sp.RootPath = PathPredicate{MinLevels: 1, Exact: n.Axis == dewey.Child}
		}
		plans[id] = sp
	}
	return plans
}

// fsCondHolds evaluates a following-sibling conditional predicate given
// the two bound Dewey IDs, oriented so that server is the node whose plan
// owns the condition.
func fsCondHolds(c Cond, server, other dewey.ID) bool {
	if c.OtherIsAncestor {
		// The server node follows its sibling anchor.
		return server.IsFollowingSiblingOf(other)
	}
	return other.IsFollowingSiblingOf(server)
}

// CondResult classifies how a conditional predicate was satisfied.
type CondResult int

const (
	// CondExact: the unrelaxed predicate holds.
	CondExact CondResult = iota
	// CondRelaxed: only a relaxed form holds (or the relation is waived
	// by subtree promotion / leaf deletion).
	CondRelaxed
	// CondFailed: no enabled relaxation can reconcile the bindings.
	CondFailed
)

// Check evaluates the conditional predicate c of plan sp for a candidate
// binding (server node) against the bound other node. otherID must be
// non-nil (callers skip conditions whose other node is unbound or
// missing, except for the missing-parent rule handled by the engine).
func (sp *ServerPlan) Check(c Cond, server, other dewey.ID) CondResult {
	if c.FollowingSibling {
		// Sibling order admits no relaxation.
		if fsCondHolds(c, server, other) {
			return CondExact
		}
		return CondFailed
	}
	anc, desc := other, server
	if !c.OtherIsAncestor {
		anc, desc = server, other
	}
	if c.Path.HoldsExact(anc, desc) {
		return CondExact
	}
	if sp.Relax.Has(EdgeGeneralization) && c.Path.HoldsRelaxed(anc, desc) {
		return CondRelaxed
	}
	if sp.Relax.Has(SubtreePromotion) {
		// Promotion (composed to any ancestor, ultimately the root)
		// waives the pairwise containment entirely — both nodes are
		// descendants of the root binding, which the structural probe
		// guarantees.
		return CondRelaxed
	}
	return CondFailed
}
