package relax

import (
	"strings"
	"testing"

	"repro/internal/dewey"
	"repro/internal/pattern"
)

func TestEnumerateFigure2(t *testing.T) {
	// The Figure 2(a) query; its relaxations include 2(b) (edge
	// generalization on book-title), 2(c) (promotion of publisher +
	// deletion of info + edge generalization) and 2(d) (further
	// deletions).
	q := pattern.MustParse("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	rqs, truncated := Enumerate(q, All, 0)
	if truncated {
		t.Fatal("uncapped enumeration reported truncation")
	}
	if len(rqs) < 20 {
		t.Fatalf("closure suspiciously small: %d", len(rqs))
	}
	if rqs[0].Query.String() != q.String() {
		t.Fatal("original query must come first")
	}
	have := make(map[string]bool)
	for _, rq := range rqs {
		have[rq.Query.String()] = true
		if err := rq.Query.Validate(); err != nil {
			t.Fatalf("invalid relaxed query %s: %v", rq.Query, err)
		}
		if len(rq.NodeMap) != rq.Query.Size() {
			t.Fatalf("node map size mismatch for %s", rq.Query)
		}
	}
	// Figure 2(b): edge generalization on title.
	if !have["/book[.//title = 'wodehouse' and ./info[./publisher[./name = 'psmith']]]"] {
		keys := make([]string, 0)
		for k := range have {
			if strings.Contains(k, ".//title") && strings.Contains(k, "./info") {
				keys = append(keys, k)
			}
		}
		t.Fatalf("missing Figure 2(b); related: %v", keys)
	}
	// Figure 2(d): only book and title remain, title generalized.
	if !have["/book[.//title = 'wodehouse']"] {
		t.Fatal("missing Figure 2(d)")
	}
	// Full deletion down to the bare root.
	if !have["/book"] {
		t.Fatal("missing fully-deleted query")
	}
}

func TestEnumerateExactMatchesPreserved(t *testing.T) {
	// Every relaxed query must be a superset pattern: node tags/values
	// that survive must appear in the original.
	q := pattern.MustParse("//item[./description/parlist]")
	rqs, _ := Enumerate(q, All, 0)
	for _, rq := range rqs {
		for i, n := range rq.Query.Nodes {
			orig := q.Nodes[rq.NodeMap[i]]
			if n.Tag != orig.Tag || n.Value != orig.Value {
				t.Fatalf("node identity broken in %s: %v vs %v", rq.Query, n, orig)
			}
		}
	}
}

func TestEnumerateSingleRelaxations(t *testing.T) {
	q := pattern.MustParse("/a[./b/c]")
	// Edge generalization alone: axes flip pc→ad, 3 edges ⇒ 2^3 = 8.
	eg, _ := Enumerate(q, EdgeGeneralization, 0)
	if len(eg) != 8 {
		t.Fatalf("eg closure = %d, want 8", len(eg))
	}
	// Leaf deletion alone: delete c, then b ⇒ {abc, ab, a}.
	ld, _ := Enumerate(q, LeafDeletion, 0)
	if len(ld) != 3 {
		t.Fatalf("ld closure = %d, want 3", len(ld))
	}
	// Promotion alone: only c can move (to a) ⇒ 2 queries.
	sp, _ := Enumerate(q, SubtreePromotion, 0)
	if len(sp) != 2 {
		t.Fatalf("sp closure = %d, want 2", len(sp))
	}
	// No relaxation: the closure is the query itself.
	none, _ := Enumerate(q, None, 0)
	if len(none) != 1 {
		t.Fatalf("none closure = %d, want 1", len(none))
	}
}

func TestEnumerateLimit(t *testing.T) {
	q := pattern.MustParse("//item[./description/parlist and ./mailbox/mail/text]")
	rqs, truncated := Enumerate(q, All, 10)
	if !truncated {
		t.Fatal("Q2's closure must exceed 10 queries")
	}
	if len(rqs) != 10 {
		t.Fatalf("limit not honored: %d", len(rqs))
	}
}

func TestEnumerateClosureGrowsExponentially(t *testing.T) {
	// The paper's argument for plan-relaxation: the number of relaxed
	// queries explodes with query size.
	sizes := []string{
		"//item[./description]",
		"//item[./description/parlist]",
		"//item[./description/parlist and ./mailbox]",
	}
	prev := 0
	for i, xp := range sizes {
		rqs, truncated := Enumerate(pattern.MustParse(xp), All, 5000)
		if truncated {
			// Exceeding the cap IS exponential growth; it may only
			// happen for the largest query.
			if i != len(sizes)-1 {
				t.Fatalf("closure of %s truncated unexpectedly", xp)
			}
			return
		}
		if len(rqs) <= prev {
			t.Fatalf("closure did not grow: %s has %d (prev %d)", xp, len(rqs), prev)
		}
		prev = len(rqs)
	}
	// Exact closure sizes: 3, 10, 30 — ×3 per added node.
	if prev != 30 {
		t.Fatalf("largest closure = %d, want 30", prev)
	}
}

func TestEnumerateDoesNotRelaxSiblingOrder(t *testing.T) {
	q := pattern.MustParse("/a[./c[following-sibling::e]]")
	rqs, _ := Enumerate(q, All, 0)
	for _, rq := range rqs {
		for _, n := range rq.Query.Nodes {
			if n.Axis == dewey.FollowingSibling {
				// e must still be anchored to c wherever both survive.
				if rq.Query.Nodes[n.Parent].Tag != "c" {
					t.Fatalf("fs edge re-anchored in %s", rq.Query)
				}
			}
		}
	}
}
