package relax

import (
	"testing"

	"repro/internal/dewey"
	"repro/internal/pattern"
)

// TestCheckLeafDeletionOnlyMode: with only leaf deletion enabled,
// containment predicates behave exactly (no edge generalization, no
// promotion).
func TestCheckLeafDeletionOnlyMode(t *testing.T) {
	q := pattern.MustParse("/book[./info/publisher]")
	var pubID int
	for _, n := range q.Nodes {
		if n.Tag == "publisher" {
			pubID = n.ID
		}
	}
	plan := BuildPlans(q, LeafDeletion)[pubID]
	var infoCond Cond
	for _, c := range plan.Conds {
		if q.Nodes[c.OtherID].Tag == "info" {
			infoCond = c
		}
	}
	info := dewey.ID{0, 1}
	direct := dewey.ID{0, 1, 0}
	deep := dewey.ID{0, 1, 0, 2}
	outside := dewey.ID{0, 2}
	if plan.Check(infoCond, direct, info) != CondExact {
		t.Fatal("direct child must be exact")
	}
	if plan.Check(infoCond, deep, info) != CondFailed {
		t.Fatal("deep descendant must fail without edge generalization")
	}
	if plan.Check(infoCond, outside, info) != CondFailed {
		t.Fatal("outside node must fail without promotion")
	}
	// Leaf-deletion-only probes stay precise where possible.
	if plan.ProbeAxis() != dewey.Descendant {
		t.Fatal("two-level path probes Descendant")
	}
	var infoID int
	for _, n := range q.Nodes {
		if n.Tag == "info" {
			infoID = n.ID
		}
	}
	if BuildPlans(q, LeafDeletion)[infoID].ProbeAxis() != dewey.Child {
		t.Fatal("single pc edge probes Child when no widening relaxation is on")
	}
}

// TestRelaxedProbeAlwaysWidens: any widening relaxation forces Descendant
// probes even for direct pc edges.
func TestRelaxedProbeAlwaysWidens(t *testing.T) {
	q := pattern.MustParse("/a[./b]")
	for _, r := range []Relaxation{EdgeGeneralization, SubtreePromotion, All} {
		if BuildPlans(q, r)[1].ProbeAxis() != dewey.Descendant {
			t.Fatalf("relaxation %v must widen the probe", r)
		}
	}
}

// TestPathPredicateZeroLevels covers the Self predicate edge cases.
func TestPathPredicateZeroLevels(t *testing.T) {
	pp := PathPredicate{MinLevels: 0, Exact: true}
	self := dewey.ID{1, 2}
	if !pp.HoldsExact(self, self) || !pp.HoldsRelaxed(self, self) {
		t.Fatal("self predicate must hold on equal IDs")
	}
	child := dewey.ID{1, 2, 0}
	if pp.HoldsExact(self, child) {
		t.Fatal("exact self must reject descendants")
	}
	if !pp.HoldsRelaxed(self, child) {
		t.Fatal("relaxed zero-level admits descendants")
	}
}
