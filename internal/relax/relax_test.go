package relax

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dewey"
	"repro/internal/pattern"
)

func TestRelaxationFlags(t *testing.T) {
	if !All.Has(EdgeGeneralization) || !All.Has(LeafDeletion) || !All.Has(SubtreePromotion) {
		t.Fatal("All must enable everything")
	}
	if None.Has(EdgeGeneralization) {
		t.Fatal("None must enable nothing")
	}
	if None.String() != "none" {
		t.Fatalf("None.String() = %q", None.String())
	}
	s := All.String()
	for _, part := range []string{"edge-generalization", "leaf-deletion", "subtree-promotion"} {
		if !strings.Contains(s, part) {
			t.Fatalf("All.String() = %q missing %q", s, part)
		}
	}
}

func TestPathPredicateHolds(t *testing.T) {
	anc := dewey.ID{0}
	child := dewey.ID{0, 1}
	grandchild := dewey.ID{0, 1, 2}
	cases := []struct {
		pp           PathPredicate
		target       dewey.ID
		exact, relax bool
	}{
		{PathPredicate{1, true}, child, true, true},
		{PathPredicate{1, true}, grandchild, false, true}, // too deep for exact pc
		{PathPredicate{2, true}, grandchild, true, true},
		{PathPredicate{2, true}, child, false, true}, // too shallow exactly; relaxed admits any descendant
		{PathPredicate{1, false}, grandchild, true, true},
		{PathPredicate{2, false}, child, false, true},
		{PathPredicate{0, true}, anc, true, true}, // self
		{PathPredicate{0, true}, child, false, true},
	}
	for i, c := range cases {
		if got := c.pp.HoldsExact(anc, c.target); got != c.exact {
			t.Errorf("case %d: HoldsExact = %v, want %v", i, got, c.exact)
		}
		if got := c.pp.HoldsRelaxed(anc, c.target); got != c.relax {
			t.Errorf("case %d: HoldsRelaxed = %v, want %v", i, got, c.relax)
		}
	}
	// Non-descendant fails both.
	other := dewey.ID{5}
	pp := PathPredicate{1, true}
	if pp.HoldsExact(anc, other) || pp.HoldsRelaxed(anc, other) {
		t.Fatal("non-descendant must fail")
	}
}

func TestPathPredicateRelaxedForm(t *testing.T) {
	pp := PathPredicate{3, true}
	r := pp.Relaxed()
	if r.Exact || r.MinLevels != 1 {
		t.Fatalf("Relaxed() = %+v", r)
	}
	if pp.String() != "desc(=3)" || r.String() != "desc(>=1)" {
		t.Fatalf("String: %s / %s", pp, r)
	}
}

func TestComposePath(t *testing.T) {
	// /book[./info/publisher/name and .//title]
	q := pattern.MustParse("/book[./info/publisher/name = 'x' and .//title]")
	var nameID, titleID, pubID int
	for _, n := range q.Nodes {
		switch n.Tag {
		case "name":
			nameID = n.ID
		case "title":
			titleID = n.ID
		case "publisher":
			pubID = n.ID
		}
	}
	if pp := ComposePath(q, 0, nameID); pp != (PathPredicate{3, true}) {
		t.Fatalf("book->name = %+v, want exactly 3 levels", pp)
	}
	if pp := ComposePath(q, 0, titleID); pp != (PathPredicate{1, false}) {
		t.Fatalf("book->title = %+v, want >=1 level", pp)
	}
	if pp := ComposePath(q, pubID, nameID); pp != (PathPredicate{1, true}) {
		t.Fatalf("publisher->name = %+v", pp)
	}
	if pp := ComposePath(q, 0, 0); pp != (PathPredicate{0, true}) {
		t.Fatalf("self = %+v", pp)
	}
}

func TestComposePathFollowingSibling(t *testing.T) {
	q := pattern.MustParse("/a[./c[following-sibling::e]]")
	var eID int
	for _, n := range q.Nodes {
		if n.Tag == "e" {
			eID = n.ID
		}
	}
	// Section 4: the component predicate for e is a[./e] — one exact level.
	if pp := ComposePath(q, 0, eID); pp != (PathPredicate{1, true}) {
		t.Fatalf("a->e = %+v, want exactly 1 level", pp)
	}
}

func TestComposePathPanicsOnNonDescendant(t *testing.T) {
	q := pattern.MustParse("/a[./b and ./c]")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ComposePath(q, 1, 2)
}

func TestBuildPlansBookQuery(t *testing.T) {
	// Figure 2(a): /book[./title='wodehouse' and ./info/publisher/name='psmith']
	q := pattern.MustParse("/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']")
	plans := BuildPlans(q, All)
	if len(plans) != q.Size() {
		t.Fatalf("plans = %d", len(plans))
	}
	var pub *ServerPlan
	var pubID int
	for id, p := range plans {
		if p.Tag == "publisher" {
			pub, pubID = p, id
		}
	}
	if pub == nil {
		t.Fatal("no publisher plan")
	}
	// Section 5.2.1: the publisher server checks pc(info, publisher) and
	// pc(publisher, name) — one ancestor cond (info) and one descendant
	// cond (name) — plus the root relation (book, distance 2).
	if pub.RootPath != (PathPredicate{2, true}) {
		t.Fatalf("publisher RootPath = %+v", pub.RootPath)
	}
	var infoCond, nameCond *Cond
	for i := range pub.Conds {
		c := &pub.Conds[i]
		switch q.Nodes[c.OtherID].Tag {
		case "info":
			infoCond = c
		case "name":
			nameCond = c
		}
	}
	if infoCond == nil || !infoCond.OtherIsAncestor || infoCond.Path != (PathPredicate{1, true}) || !infoCond.DirectParent {
		t.Fatalf("info cond = %+v", infoCond)
	}
	if nameCond == nil || nameCond.OtherIsAncestor || nameCond.Path != (PathPredicate{1, true}) || !nameCond.DirectParent {
		t.Fatalf("name cond = %+v", nameCond)
	}
	// The title branch is unrelated to publisher: no cond.
	for _, c := range pub.Conds {
		if q.Nodes[c.OtherID].Tag == "title" {
			t.Fatal("publisher must not check title")
		}
	}
	_ = pubID
}

func TestBuildPlansRoot(t *testing.T) {
	q := pattern.MustParse("/book[./title]")
	plans := BuildPlans(q, All)
	if plans[0].RootPath != (PathPredicate{1, true}) {
		t.Fatalf("rooted /book must bind forest roots: %+v", plans[0].RootPath)
	}
	q2 := pattern.MustParse("//item[./name]")
	plans2 := BuildPlans(q2, All)
	if plans2[0].RootPath != (PathPredicate{1, false}) {
		t.Fatalf("//item root predicate = %+v", plans2[0].RootPath)
	}
}

func TestProbeAxis(t *testing.T) {
	q := pattern.MustParse("/book[./title and ./info/publisher]")
	exact := BuildPlans(q, None)
	relaxed := BuildPlans(q, All)
	var titleID, pubID int
	for _, n := range q.Nodes {
		switch n.Tag {
		case "title":
			titleID = n.ID
		case "publisher":
			pubID = n.ID
		}
	}
	if exact[titleID].ProbeAxis() != dewey.Child {
		t.Fatal("exact direct child should probe Child")
	}
	if exact[pubID].ProbeAxis() != dewey.Descendant {
		t.Fatal("two-level exact path probes Descendant (filtered by conds)")
	}
	if relaxed[titleID].ProbeAxis() != dewey.Descendant {
		t.Fatal("relaxed probe must widen to Descendant")
	}
}

func TestCheckCondVariants(t *testing.T) {
	q := pattern.MustParse("/book[./info/publisher]")
	var pubID int
	for _, n := range q.Nodes {
		if n.Tag == "publisher" {
			pubID = n.ID
		}
	}
	plans := BuildPlans(q, All)
	pub := plans[pubID]
	var infoCond Cond
	for _, c := range pub.Conds {
		if q.Nodes[c.OtherID].Tag == "info" {
			infoCond = c
		}
	}
	info := dewey.ID{0, 1}
	directChild := dewey.ID{0, 1, 0}
	deepDesc := dewey.ID{0, 1, 0, 3}
	elsewhere := dewey.ID{0, 2, 0}

	if got := pub.Check(infoCond, directChild, info); got != CondExact {
		t.Fatalf("direct child = %v, want exact", got)
	}
	if got := pub.Check(infoCond, deepDesc, info); got != CondRelaxed {
		t.Fatalf("deep descendant = %v, want relaxed (edge generalization)", got)
	}
	if got := pub.Check(infoCond, elsewhere, info); got != CondRelaxed {
		t.Fatalf("non-descendant = %v, want relaxed (subtree promotion waives containment)", got)
	}

	// Without promotion, a non-descendant fails; a deep descendant still
	// passes via edge generalization.
	egOnly := BuildPlans(q, EdgeGeneralization)[pubID]
	if got := egOnly.Check(infoCond, elsewhere, info); got != CondFailed {
		t.Fatalf("eg-only non-descendant = %v, want failed", got)
	}
	if got := egOnly.Check(infoCond, deepDesc, info); got != CondRelaxed {
		t.Fatalf("eg-only deep descendant = %v, want relaxed", got)
	}

	// With no relaxation at all only the exact form passes.
	exact := BuildPlans(q, None)[pubID]
	if got := exact.Check(infoCond, deepDesc, info); got != CondFailed {
		t.Fatalf("exact-mode deep descendant = %v, want failed", got)
	}
	if got := exact.Check(infoCond, directChild, info); got != CondExact {
		t.Fatalf("exact-mode direct child = %v", got)
	}
}

func TestCheckFollowingSibling(t *testing.T) {
	q := pattern.MustParse("/a[./c[following-sibling::e]]")
	var eID, cID int
	for _, n := range q.Nodes {
		switch n.Tag {
		case "e":
			eID = n.ID
		case "c":
			cID = n.ID
		}
	}
	plans := BuildPlans(q, All)
	e := plans[eID]
	var fs Cond
	found := false
	for _, c := range e.Conds {
		if c.FollowingSibling {
			fs, found = c, true
		}
	}
	if !found || fs.OtherID != cID || !fs.OtherIsAncestor {
		t.Fatalf("fs cond = %+v found=%v", fs, found)
	}
	cBind := dewey.ID{0, 1}
	after := dewey.ID{0, 3}
	before := dewey.ID{0, 0}
	childOfC := dewey.ID{0, 1, 0}
	if e.Check(fs, after, cBind) != CondExact {
		t.Fatal("later sibling must pass")
	}
	if e.Check(fs, before, cBind) != CondFailed {
		t.Fatal("earlier sibling must fail (no relaxation for sibling order)")
	}
	if e.Check(fs, childOfC, cBind) != CondFailed {
		t.Fatal("non-sibling must fail")
	}
	// The c plan must carry the reciprocal condition.
	cPlan := plans[cID]
	found = false
	for _, cond := range cPlan.Conds {
		if cond.FollowingSibling && cond.OtherID == eID && !cond.OtherIsAncestor {
			found = true
			if cPlan.Check(cond, cBind, after) != CondExact {
				t.Fatal("reciprocal fs should pass")
			}
			if cPlan.Check(cond, cBind, before) != CondFailed {
				t.Fatal("reciprocal fs should fail for preceding sibling")
			}
		}
	}
	if !found {
		t.Fatal("c plan missing reciprocal fs cond")
	}
}

func TestBuildPlansCondCoverage(t *testing.T) {
	// Every ancestor/descendant pattern pair must yield exactly one cond
	// on each side.
	q := pattern.MustParse("//item[./mailbox/mail/text[./bold and ./keyword] and ./name]")
	plans := BuildPlans(q, All)
	for id := 1; id < q.Size(); id++ {
		sp := plans[id]
		want := 0
		// The root relation is the structural predicate, not a cond.
		for other := 1; other < q.Size(); other++ {
			if other != id && (q.IsDescendant(id, other) || q.IsDescendant(other, id)) {
				want++
			}
		}
		if len(sp.Conds) != want {
			t.Fatalf("node %s: %d conds, want %d", sp.Tag, len(sp.Conds), want)
		}
	}
}

// Property: exact satisfaction always implies relaxed satisfaction, for
// random predicates and random ancestor/target pairs.
func TestPropExactImpliesRelaxed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pp := PathPredicate{MinLevels: r.Intn(4), Exact: r.Intn(2) == 0}
		anc := make(dewey.ID, r.Intn(3))
		for i := range anc {
			anc[i] = r.Intn(3)
		}
		target := anc.Copy()
		for i := 0; i < r.Intn(4); i++ {
			target = target.Child(r.Intn(3))
		}
		if pp.HoldsExact(anc, target) && !pp.HoldsRelaxed(anc, target) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
