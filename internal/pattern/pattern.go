// Package pattern implements the paper's query model: tree patterns, an
// expressive subset of XPath (Section 2). A tree pattern is a rooted tree
// whose nodes are labeled with element tags (leaves optionally with
// values), whose edges are XPath axes (pc for parent-child, ad for
// ancestor-descendant), and whose root is the returned node.
//
// Patterns are built either programmatically or by parsing the XPath
// subset the paper uses, e.g.
//
//	/book[.//title = 'wodehouse' and ./info/publisher/name = 'psmith']
//	//item[./description/parlist and ./mailbox/mail/text]
package pattern

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dewey"
)

// Node is one node of a tree pattern. Node 0 of a Query is the root — the
// returned query node (q0 in the paper's notation).
type Node struct {
	// ID is the node's index within Query.Nodes.
	ID int
	// Tag is the element tag the node must match.
	Tag string
	// Value, when non-empty, constrains the matched element's text value
	// (the paper's content predicates, e.g. title='wodehouse'). ValueOp
	// selects the comparison: "" or "=" mean equality; "!=", "<", "<=",
	// ">", ">=" and "contains" extend the paper's equality-only
	// predicates.
	Value string
	// ValueOp is the content-predicate operator; empty means equality
	// when Value is set.
	ValueOp string
	// Axis relates this node to its pattern parent: Child (pc) or
	// Descendant (ad); FollowingSibling is also supported for the
	// component-predicate example of Section 4. For the root, Axis
	// relates it to the (virtual) document root: Child for /book,
	// Descendant for //item.
	Axis dewey.Axis
	// Parent is the pattern-parent's ID, or -1 for the root.
	Parent int
	// Children lists pattern-children IDs in declaration order.
	Children []int
}

// Query is a tree pattern. Nodes[0] is the returned node.
type Query struct {
	Nodes []*Node
}

// New returns a query containing only a root node with the given tag,
// related to the virtual document root by axis (Child for "/tag",
// Descendant for "//tag").
func New(tag string, axis dewey.Axis) *Query {
	return &Query{Nodes: []*Node{{ID: 0, Tag: tag, Axis: axis, Parent: -1}}}
}

// Add appends a node with the given tag under parentID via axis and
// returns its ID.
func (q *Query) Add(parentID int, tag string, axis dewey.Axis) int {
	id := len(q.Nodes)
	n := &Node{ID: id, Tag: tag, Axis: axis, Parent: parentID}
	q.Nodes = append(q.Nodes, n)
	q.Nodes[parentID].Children = append(q.Nodes[parentID].Children, id)
	return id
}

// AddValue appends a leaf node with an equality content predicate and
// returns its ID.
func (q *Query) AddValue(parentID int, tag string, axis dewey.Axis, value string) int {
	id := q.Add(parentID, tag, axis)
	q.Nodes[id].Value = value
	return id
}

// AddValueOp appends a leaf node with an arbitrary content predicate
// (op ∈ =, !=, <, <=, >, >=, contains) and returns its ID.
func (q *Query) AddValueOp(parentID int, tag string, axis dewey.Axis, op, value string) int {
	id := q.Add(parentID, tag, axis)
	q.Nodes[id].Value = value
	q.Nodes[id].ValueOp = op
	return id
}

// Root returns the returned node (q0).
func (q *Query) Root() *Node { return q.Nodes[0] }

// Size returns the number of query nodes.
func (q *Query) Size() int { return len(q.Nodes) }

// IsDescendant reports whether node a is a strict descendant of node b in
// the pattern tree (Algorithm 1's isDescendant(a, b)).
func (q *Query) IsDescendant(a, b int) bool {
	for cur := q.Nodes[a].Parent; cur != -1; cur = q.Nodes[cur].Parent {
		if cur == b {
			return true
		}
	}
	return false
}

// PathToRoot returns the node IDs from id up to (and including) the root.
func (q *Query) PathToRoot(id int) []int {
	var path []int
	for cur := id; cur != -1; cur = q.Nodes[cur].Parent {
		path = append(path, cur)
	}
	return path
}

// AxisBetween composes the edge axes along the pattern path from ancestor
// anc down to descendant desc (Algorithm 1's getComposition). It panics
// if desc is not in anc's subtree; callers establish that with
// IsDescendant. A single pc edge composes to Child; anything longer or
// involving an ad edge composes to Descendant.
func (q *Query) AxisBetween(anc, desc int) dewey.Axis {
	if anc == desc {
		return dewey.Self
	}
	axis := dewey.Self
	cur := desc
	for cur != anc {
		n := q.Nodes[cur]
		if n.Parent == -1 {
			panic(fmt.Sprintf("pattern: node %d is not a descendant of %d", desc, anc))
		}
		axis = dewey.Compose(n.Axis, axis)
		cur = n.Parent
	}
	return axis
}

// Validate checks structural well-formedness: a single root at index 0,
// consistent parent/child links, non-empty tags, supported axes.
func (q *Query) Validate() error {
	if len(q.Nodes) == 0 {
		return fmt.Errorf("pattern: empty query")
	}
	for i, n := range q.Nodes {
		if n == nil {
			return fmt.Errorf("pattern: nil node %d", i)
		}
		if n.ID != i {
			return fmt.Errorf("pattern: node %d has ID %d", i, n.ID)
		}
		if n.Tag == "" {
			return fmt.Errorf("pattern: node %d has empty tag", i)
		}
		if i == 0 {
			if n.Parent != -1 {
				return fmt.Errorf("pattern: root must have parent -1")
			}
		} else {
			if n.Parent < 0 || n.Parent >= len(q.Nodes) {
				return fmt.Errorf("pattern: node %d has bad parent %d", i, n.Parent)
			}
			if n.Parent >= i {
				return fmt.Errorf("pattern: node %d declared before its parent %d", i, n.Parent)
			}
			found := false
			for _, c := range q.Nodes[n.Parent].Children {
				if c == i {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("pattern: node %d missing from parent %d child list", i, n.Parent)
			}
		}
		switch n.Axis {
		case dewey.Child, dewey.Descendant, dewey.FollowingSibling:
		default:
			return fmt.Errorf("pattern: node %d has unsupported axis %v", i, n.Axis)
		}
		if i == 0 && n.Axis == dewey.FollowingSibling {
			return fmt.Errorf("pattern: root axis cannot be following-sibling")
		}
		if i > 0 && n.Axis == dewey.FollowingSibling && n.Parent == 0 {
			// A sibling of the returned node lies outside its subtree;
			// no evaluator binds nodes there.
			return fmt.Errorf("pattern: node %d: following-sibling predicates on the returned node are not supported", i)
		}
		switch n.ValueOp {
		case "", "=", "!=", "contains":
		case "<", "<=", ">", ">=":
			if _, err := strconv.ParseFloat(n.Value, 64); err != nil {
				return fmt.Errorf("pattern: node %d compares %q with non-numeric %q", i, n.ValueOp, n.Value)
			}
		default:
			return fmt.Errorf("pattern: node %d has unsupported value operator %q", i, n.ValueOp)
		}
	}
	return nil
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	out := &Query{Nodes: make([]*Node, len(q.Nodes))}
	for i, n := range q.Nodes {
		cp := *n
		cp.Children = append([]int(nil), n.Children...)
		out.Nodes[i] = &cp
	}
	return out
}

// String renders the pattern in the XPath subset accepted by Parse.
func (q *Query) String() string {
	var b strings.Builder
	root := q.Root()
	if root.Axis == dewey.Descendant {
		b.WriteString("//")
	} else {
		b.WriteString("/")
	}
	b.WriteString(root.Tag)
	q.writePredicates(&b, root)
	return b.String()
}

func (q *Query) writePredicates(b *strings.Builder, n *Node) {
	if len(n.Children) == 0 {
		return
	}
	b.WriteString("[")
	for i, cid := range n.Children {
		if i > 0 {
			b.WriteString(" and ")
		}
		q.writeStep(b, q.Nodes[cid])
	}
	b.WriteString("]")
}

func (q *Query) writeStep(b *strings.Builder, n *Node) {
	switch n.Axis {
	case dewey.Child:
		b.WriteString("./")
	case dewey.Descendant:
		b.WriteString(".//")
	case dewey.FollowingSibling:
		b.WriteString("following-sibling::")
	}
	b.WriteString(n.Tag)
	q.writePredicates(b, n)
	if n.Value == "" && n.ValueOp == "" {
		return
	}
	op := n.ValueOp
	if op == "" {
		op = "="
	}
	switch op {
	case "<", "<=", ">", ">=":
		b.WriteString(" " + op + " " + n.Value)
	case "contains":
		b.WriteString(" contains '" + n.Value + "'")
	default:
		b.WriteString(" " + op + " '" + n.Value + "'")
	}
}

// ServerOrders returns every permutation of the non-root node IDs — the
// static routing orders of Section 6.3.2 (120 permutations for the paper's
// default 6-node query Q2). The root is always evaluated first and is not
// part of the orders.
func (q *Query) ServerOrders() [][]int {
	ids := make([]int, 0, len(q.Nodes)-1)
	for i := 1; i < len(q.Nodes); i++ {
		ids = append(ids, i)
	}
	var out [][]int
	var permute func(k int)
	permute = func(k int) {
		if k == len(ids) {
			out = append(out, append([]int(nil), ids...))
			return
		}
		for i := k; i < len(ids); i++ {
			ids[k], ids[i] = ids[i], ids[k]
			permute(k + 1)
			ids[k], ids[i] = ids[i], ids[k]
		}
	}
	permute(0)
	return out
}
