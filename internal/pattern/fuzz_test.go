package pattern

import (
	"strings"
	"testing"
)

// FuzzParse checks that the query parser never panics, that accepted
// queries validate, and that String/Parse round-trips are stable.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"//item[./description/parlist]",
		"/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']",
		"//item[./mailbox/mail/text[./bold and ./keyword] and ./name]",
		"/a[./c[following-sibling::e]]",
		"/a[.//b = \"x\"]",
		"/a[",
		"//",
		"/a]extra",
		"/a[./b and]",
		"/a[following-sibling::x]",
		strings.Repeat("/a[", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %q: %v", input, err)
		}
		// Round trip: the rendered form must re-parse to an isomorphic
		// pattern whose rendering is a fixed point.
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("rendered form does not re-parse: %q -> %q: %v", input, s1, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("String not a fixed point: %q -> %q -> %q", input, s1, s2)
		}
		if q2.Size() != q.Size() {
			t.Fatalf("round trip changed size: %q", input)
		}
	})
}
