package pattern

import (
	"testing"
)

// TestCanonicalKeyIgnoresPredicateOrder checks that queries differing
// only in predicate declaration order share a key and a canonical form,
// while structurally distinct queries do not collide.
func TestCanonicalKeyIgnoresPredicateOrder(t *testing.T) {
	same := [][]string{
		{"/a[./b and ./c]", "/a[./c and ./b]"},
		{
			"//item[./description/parlist and ./mailbox/mail/text]",
			"//item[./mailbox/mail/text and ./description/parlist]",
		},
		{
			"/a[./b[./x and .//y] and ./b[.//y and ./x]]",
			"/a[./b[.//y and ./x] and ./b[./x and .//y]]",
		},
		{"/a[./b = 'v' and ./c]", "/a[./c and ./b = 'v']"},
	}
	for _, pair := range same {
		q1, q2 := MustParse(pair[0]), MustParse(pair[1])
		k1, k2 := CanonicalKey(q1), CanonicalKey(q2)
		if k1 != k2 {
			t.Errorf("%s and %s: keys differ:\n  %s\n  %s", pair[0], pair[1], k1, k2)
		}
		if c1, c2 := Canonicalize(q1).String(), Canonicalize(q2).String(); c1 != c2 {
			t.Errorf("%s and %s: canonical forms differ: %s vs %s", pair[0], pair[1], c1, c2)
		}
	}
	distinct := []string{
		"/a[./b and ./c]",
		"//a[./b and ./c]",
		"/a[./b and .//c]",
		"/a[./b = 'c]' and ./c]",
		"/a[./b = 'c' and ./c]",
		"/a[./b != 'c' and ./c]",
		"/a[./b[./c]]",
		"/a[./b and ./b]",
		"/a[./b]",
	}
	seen := make(map[string]string)
	for _, qs := range distinct {
		k := CanonicalKey(MustParse(qs))
		if prev, dup := seen[k]; dup {
			t.Errorf("distinct queries %s and %s collide on key %s", prev, qs, k)
		}
		seen[k] = qs
	}
}

// TestCanonicalizeValidates checks canonicalized queries stay
// well-formed and answer-equivalent in rendering terms: the canonical
// form re-parses and is a fixed point of Canonicalize.
func TestCanonicalizeValidates(t *testing.T) {
	for _, qs := range []string{
		"/a[./c[following-sibling::e] and ./b]",
		"//item[./mailbox/mail/text[./bold and ./keyword] and ./name]",
		"/a[.//b = \"x\"]",
	} {
		q := MustParse(qs)
		c := Canonicalize(q)
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: canonical form invalid: %v", qs, err)
		}
		if CanonicalKey(c) != CanonicalKey(q) {
			t.Fatalf("%s: canonicalization changed the key", qs)
		}
		again := Canonicalize(MustParse(c.String()))
		if again.String() != c.String() {
			t.Fatalf("%s: canonical form is not a fixed point: %s vs %s", qs, again, c)
		}
	}
}

// FuzzCanonicalKey drives the canonicalizer with parser-accepted
// queries: reversing every predicate list must not change the key, and
// two queries with equal keys must have identical canonical renderings
// (no collisions between structurally distinct queries).
func FuzzCanonicalKey(f *testing.F) {
	seeds := [][2]string{
		{"/a[./b and ./c]", "/a[./c and ./b]"},
		{"//item[./description/parlist]", "//item[./name = 'x']"},
		{"/a[./b[./x and .//y] and ./c]", "/a[./b and ./b]"},
		{"/a[./b = 'c]' and ./c]", "/a[./b = 'c' and ./c]"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, in1, in2 string) {
		q1, err := Parse(in1)
		if err != nil {
			return
		}
		// Order-invariance: recursively reversing every child list
		// must not change the canonical key.
		rev := q1.Clone()
		for _, n := range rev.Nodes {
			for i, j := 0, len(n.Children)-1; i < j; i, j = i+1, j-1 {
				n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
			}
		}
		if CanonicalKey(rev) != CanonicalKey(q1) {
			t.Fatalf("key of %q changes under predicate reversal", in1)
		}
		c1 := Canonicalize(q1)
		if err := c1.Validate(); err != nil {
			t.Fatalf("canonicalization of %q invalid: %v", in1, err)
		}
		q2, err := Parse(in2)
		if err != nil {
			return
		}
		eqKey := CanonicalKey(q1) == CanonicalKey(q2)
		eqForm := c1.String() == Canonicalize(q2).String()
		if eqKey != eqForm {
			t.Fatalf("key equality %v but canonical-form equality %v for %q vs %q", eqKey, eqForm, in1, in2)
		}
	})
}
