package pattern

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/dewey"
)

// CanonicalKey returns a canonical identity string for the query's
// shape: two queries get the same key iff they are isomorphic as tree
// patterns — same tags, axes and content predicates, with predicate
// declaration order ignored. It is the plan-cache key: `/a[./b and
// ./c]` and `/a[./c and ./b]` plan (and answer) identically, so they
// must share one cache entry, while structurally distinct queries must
// never collide.
//
// The encoding is injective on canonicalized shapes: each node renders
// as axis token + tag + optional `{op:len:value}` (the value is
// length-prefixed so no value can forge the bracket structure around
// it) + the node's child keys, sorted and joined inside `[` `|` `]`.
// Tags cannot contain the delimiter characters (the parser rejects
// them), so the rendering parses back unambiguously.
func CanonicalKey(q *Query) string {
	var b strings.Builder
	writeCanonical(&b, q, q.Root())
	return b.String()
}

// Canonicalize returns a deep copy of q with every node's predicate
// list sorted into canonical order (recursively, by the children's own
// canonical keys; ties keep declaration order). Two queries with equal
// CanonicalKey have canonicalizations that render to the same String().
// Node IDs are renumbered in the new declaration order, preserving the
// Validate invariant that parents precede children.
func Canonicalize(q *Query) *Query {
	out := New(q.Root().Tag, q.Root().Axis)
	out.Nodes[0].Value = q.Root().Value
	out.Nodes[0].ValueOp = q.Root().ValueOp
	var addSorted func(srcID, dstID int)
	addSorted = func(srcID, dstID int) {
		src := q.Nodes[srcID]
		order := append([]int(nil), src.Children...)
		sort.SliceStable(order, func(i, j int) bool {
			return nodeKey(q, q.Nodes[order[i]]) < nodeKey(q, q.Nodes[order[j]])
		})
		for _, cid := range order {
			c := q.Nodes[cid]
			id := out.AddValueOp(dstID, c.Tag, c.Axis, c.ValueOp, c.Value)
			addSorted(cid, id)
		}
	}
	addSorted(0, 0)
	return out
}

func nodeKey(q *Query, n *Node) string {
	var b strings.Builder
	writeCanonical(&b, q, n)
	return b.String()
}

func writeCanonical(b *strings.Builder, q *Query, n *Node) {
	switch n.Axis {
	case dewey.Descendant:
		b.WriteString("//")
	case dewey.FollowingSibling:
		b.WriteString("~")
	default:
		b.WriteString("/")
	}
	b.WriteString(n.Tag)
	if n.Value != "" || n.ValueOp != "" {
		op := n.ValueOp
		if op == "" {
			op = "="
		}
		b.WriteString("{")
		b.WriteString(op)
		b.WriteString(":")
		b.WriteString(strconv.Itoa(len(n.Value)))
		b.WriteString(":")
		b.WriteString(n.Value)
		b.WriteString("}")
	}
	if len(n.Children) == 0 {
		return
	}
	keys := make([]string, len(n.Children))
	for i, cid := range n.Children {
		keys[i] = nodeKey(q, q.Nodes[cid])
	}
	sort.Strings(keys)
	b.WriteString("[")
	for i, k := range keys {
		if i > 0 {
			b.WriteString("|")
		}
		b.WriteString(k)
	}
	b.WriteString("]")
}
