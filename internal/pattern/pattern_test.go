package pattern

import (
	"strings"
	"testing"

	"repro/internal/dewey"
)

// The paper's three XMark queries (Section 6.2.1) and the Figure 2
// bookstore query.
const (
	q1XPath    = "//item[./description/parlist]"
	q2XPath    = "//item[./description/parlist and ./mailbox/mail/text]"
	q3XPath    = "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]"
	bookXPath  = "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']"
	book2XPath = "/book[.//title = 'wodehouse' and .//publisher/name = 'psmith']"
)

func TestParseQ1(t *testing.T) {
	q, err := Parse(q1XPath)
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != 3 {
		t.Fatalf("Q1 size = %d, want 3", q.Size())
	}
	root := q.Root()
	if root.Tag != "item" || root.Axis != dewey.Descendant {
		t.Fatalf("root = %+v", root)
	}
	desc := q.Nodes[1]
	if desc.Tag != "description" || desc.Axis != dewey.Child || desc.Parent != 0 {
		t.Fatalf("description = %+v", desc)
	}
	parlist := q.Nodes[2]
	if parlist.Tag != "parlist" || parlist.Parent != 1 {
		t.Fatalf("parlist = %+v", parlist)
	}
}

func TestParseQ2(t *testing.T) {
	q := MustParse(q2XPath)
	if q.Size() != 6 {
		t.Fatalf("Q2 size = %d, want 6 (paper's 6-node query)", q.Size())
	}
	// Two branches under item.
	if len(q.Root().Children) != 2 {
		t.Fatalf("root children = %v", q.Root().Children)
	}
	tags := make([]string, q.Size())
	for i, n := range q.Nodes {
		tags[i] = n.Tag
	}
	want := []string{"item", "description", "parlist", "mailbox", "mail", "text"}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tags = %v, want %v", tags, want)
		}
	}
}

func TestParseQ3(t *testing.T) {
	q := MustParse(q3XPath)
	if q.Size() != 8 {
		t.Fatalf("Q3 size = %d, want 8 (paper's 8-node query)", q.Size())
	}
	// text has two pattern children: bold, keyword.
	var text *Node
	for _, n := range q.Nodes {
		if n.Tag == "text" {
			text = n
		}
	}
	if text == nil || len(text.Children) != 2 {
		t.Fatalf("text node = %+v", text)
	}
	if q.Nodes[text.Children[0]].Tag != "bold" || q.Nodes[text.Children[1]].Tag != "keyword" {
		t.Fatal("nested predicate children wrong")
	}
}

func TestParseValues(t *testing.T) {
	q := MustParse(bookXPath)
	if q.Size() != 5 {
		t.Fatalf("size = %d, want 5 (Figure 2(a): book, title, info, publisher, name)", q.Size())
	}
	var title, name *Node
	for _, n := range q.Nodes {
		switch n.Tag {
		case "title":
			title = n
		case "name":
			name = n
		}
	}
	if title.Value != "wodehouse" || title.Axis != dewey.Child {
		t.Fatalf("title = %+v", title)
	}
	if name.Value != "psmith" {
		t.Fatalf("name = %+v", name)
	}
	// Figure 2(c)-style query with ad edges.
	q2 := MustParse(book2XPath)
	var t2 *Node
	for _, n := range q2.Nodes {
		if n.Tag == "title" {
			t2 = n
		}
	}
	if t2.Axis != dewey.Descendant {
		t.Fatalf("//title should be ad, got %v", t2.Axis)
	}
}

func TestParseFollowingSibling(t *testing.T) {
	// Section 4's component-predicate example query.
	q, err := Parse("/a[./b and ./c[.//d and following-sibling::e]]")
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != 5 {
		t.Fatalf("size = %d, want 5", q.Size())
	}
	var e *Node
	for _, n := range q.Nodes {
		if n.Tag == "e" {
			e = n
		}
	}
	if e == nil || e.Axis != dewey.FollowingSibling {
		t.Fatalf("e = %+v", e)
	}
	if q.Nodes[e.Parent].Tag != "c" {
		t.Fatalf("e's parent should be c, got %s", q.Nodes[e.Parent].Tag)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"book",            // missing leading slash
		"/book[",          // unterminated predicate
		"/book[./]",       // missing name
		"/book[./a='x]",   // unterminated literal
		"/book]",          // trailing garbage
		"/book[.]",        // empty relative path
		"/book[a]",        // predicate must start with . or following-sibling
		"/book[./a and]",  // dangling and
		"//",              // missing tag
		"/book[./a = x ]", // unquoted value
		"/book[./a]extra", // trailing after predicates
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{q1XPath, q2XPath, q3XPath, bookXPath, book2XPath} {
		q := MustParse(s)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", q.String(), s, err)
		}
		if q2.Size() != q.Size() {
			t.Fatalf("round trip size changed: %q -> %q", s, q.String())
		}
		for i := range q.Nodes {
			a, b := q.Nodes[i], q2.Nodes[i]
			if a.Tag != b.Tag || a.Value != b.Value || a.Axis != b.Axis || a.Parent != b.Parent {
				t.Fatalf("round trip node %d: %+v vs %+v", i, a, b)
			}
		}
	}
}

func TestIsDescendant(t *testing.T) {
	q := MustParse(q3XPath)
	// text is a descendant of item (0) and mailbox; bold is a descendant
	// of text; item is no one's descendant.
	var textID, boldID int
	for _, n := range q.Nodes {
		switch n.Tag {
		case "text":
			textID = n.ID
		case "bold":
			boldID = n.ID
		}
	}
	if !q.IsDescendant(textID, 0) || !q.IsDescendant(boldID, textID) {
		t.Fatal("IsDescendant failed on true cases")
	}
	if q.IsDescendant(0, textID) || q.IsDescendant(textID, textID) {
		t.Fatal("IsDescendant failed on false cases")
	}
}

func TestAxisBetween(t *testing.T) {
	q := MustParse(q2XPath)
	// item -> description is pc; item -> parlist composes pc∘pc = ad;
	// self composition is Self.
	if got := q.AxisBetween(0, 1); got != dewey.Child {
		t.Fatalf("item->description = %v, want pc", got)
	}
	if got := q.AxisBetween(0, 2); got != dewey.Descendant {
		t.Fatalf("item->parlist = %v, want ad", got)
	}
	if got := q.AxisBetween(0, 0); got != dewey.Self {
		t.Fatalf("self = %v", got)
	}
	// ad anywhere on the path forces ad.
	qb := MustParse(book2XPath)
	var nameID int
	for _, n := range qb.Nodes {
		if n.Tag == "name" {
			nameID = n.ID
		}
	}
	if got := qb.AxisBetween(0, nameID); got != dewey.Descendant {
		t.Fatalf("book->name via ad = %v, want ad", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AxisBetween on non-descendant should panic")
		}
	}()
	q.AxisBetween(1, 3) // description is not an ancestor of mailbox
}

func TestPathToRoot(t *testing.T) {
	q := MustParse(q2XPath)
	path := q.PathToRoot(2) // parlist -> description -> item
	want := []int{2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestServerOrders(t *testing.T) {
	q := MustParse(q2XPath) // 6 nodes -> 5 non-root -> 120 permutations
	orders := q.ServerOrders()
	if len(orders) != 120 {
		t.Fatalf("orders = %d, want 120 (paper Section 6.3.2)", len(orders))
	}
	seen := make(map[string]bool)
	for _, o := range orders {
		if len(o) != 5 {
			t.Fatalf("order length = %d", len(o))
		}
		key := ""
		mask := 0
		for _, id := range o {
			key += string(rune('0' + id))
			mask |= 1 << id
		}
		if mask != 0b111110 {
			t.Fatalf("order %v is not a permutation of 1..5", o)
		}
		if seen[key] {
			t.Fatalf("duplicate order %v", o)
		}
		seen[key] = true
	}
}

func TestValidate(t *testing.T) {
	q := New("a", dewey.Child)
	q.Add(0, "b", dewey.Descendant)
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	// Broken parent link.
	q2 := New("a", dewey.Child)
	q2.Nodes = append(q2.Nodes, &Node{ID: 1, Tag: "b", Axis: dewey.Child, Parent: 0})
	if err := q2.Validate(); err == nil || !strings.Contains(err.Error(), "child list") {
		t.Fatalf("expected child-list error, got %v", err)
	}
	// Empty tag.
	q3 := New("", dewey.Child)
	if err := q3.Validate(); err == nil {
		t.Fatal("empty tag should fail")
	}
	// Root with following-sibling axis.
	q4 := New("a", dewey.FollowingSibling)
	if err := q4.Validate(); err == nil {
		t.Fatal("following-sibling root should fail")
	}
	// Empty query.
	q5 := &Query{}
	if err := q5.Validate(); err == nil {
		t.Fatal("empty query should fail")
	}
}

func TestClone(t *testing.T) {
	q := MustParse(q2XPath)
	c := q.Clone()
	c.Nodes[1].Tag = "CHANGED"
	c.Nodes[0].Children[0] = 99
	if q.Nodes[1].Tag == "CHANGED" || q.Nodes[0].Children[0] == 99 {
		t.Fatal("Clone shares storage with original")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}
