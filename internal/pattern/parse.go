package pattern

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/dewey"
)

// Parse parses the XPath subset used throughout the paper into a tree
// pattern:
//
//	query      = ("/" | "//") step
//	step       = name [ "[" expr "]" ]
//	expr       = term { "and" term }
//	term       = relpath [ "=" "'" value "'" ]
//	relpath    = "." axisstep { axisstep }
//	axisstep   = ("/" | "//") name [ "[" expr "]" ]
//	           | "/"? "following-sibling::" name [ "[" expr "]" ]
//
// Each step of a relative path becomes a query node; nested predicates
// recurse. A trailing ='value' attaches a content predicate to the last
// step of the path.
func Parse(input string) (*Query, error) {
	p := &parser{input: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("pattern: parsing %q: %w", input, err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests, examples
// and package-level query tables.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	input string
	pos   int
}

func (p *parser) parseQuery() (*Query, error) {
	p.skipSpace()
	axis := dewey.Child
	if p.eat("//") {
		axis = dewey.Descendant
	} else if !p.eat("/") {
		return nil, p.errf("query must start with / or //")
	}
	tag, err := p.name()
	if err != nil {
		return nil, err
	}
	q := New(tag, axis)
	if err := p.parsePredicates(q, 0); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, p.errf("trailing input %q", p.input[p.pos:])
	}
	return q, nil
}

// parsePredicates parses an optional "[expr]" block attaching children to
// node ownerID.
func (p *parser) parsePredicates(q *Query, ownerID int) error {
	p.skipSpace()
	if !p.eat("[") {
		return nil
	}
	for {
		if err := p.parseTerm(q, ownerID); err != nil {
			return err
		}
		p.skipSpace()
		if p.eatWord("and") {
			continue
		}
		break
	}
	p.skipSpace()
	if !p.eat("]") {
		return p.errf("expected ']'")
	}
	return nil
}

// parseTerm parses one relative path (with nested predicates and optional
// value comparison) rooted at ownerID.
func (p *parser) parseTerm(q *Query, ownerID int) error {
	p.skipSpace()
	cur := ownerID
	first := true
	if p.eat(".") {
		// Leading "." of a relative path; steps follow.
	} else if !strings.HasPrefix(p.rest(), "following-sibling::") {
		return p.errf("expected relative path starting with '.' or 'following-sibling::'")
	}
	for {
		p.skipSpace()
		var axis dewey.Axis
		switch {
		case p.eat("following-sibling::"):
			axis = dewey.FollowingSibling
		case p.eat("//"):
			axis = dewey.Descendant
		case p.eat("/"):
			if p.eat("following-sibling::") {
				axis = dewey.FollowingSibling
			} else {
				axis = dewey.Child
			}
		default:
			if first {
				return p.errf("expected step after '.'")
			}
			return nil
		}
		tag, err := p.name()
		if err != nil {
			return err
		}
		id := q.Add(cur, tag, axis)
		if err := p.parsePredicates(q, id); err != nil {
			return err
		}
		p.skipSpace()
		if op, ok := p.valueOp(); ok {
			var val string
			var err error
			if op == "<" || op == "<=" || op == ">" || op == ">=" {
				val, err = p.numberLiteral()
			} else {
				val, err = p.stringLiteral()
			}
			if err != nil {
				return err
			}
			q.Nodes[id].Value = val
			q.Nodes[id].ValueOp = op
			return nil
		}
		cur = id
		first = false
	}
}

func (p *parser) rest() string { return p.input[p.pos:] }

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
}

// eat consumes the literal s if it is next (no space skipping for
// operator characters; callers skipSpace first where needed).
func (p *parser) eat(s string) bool {
	if strings.HasPrefix(p.input[p.pos:], s) {
		// Avoid eating "/" when "//" is next and s == "/" callers handle
		// order (they try "//" first), so plain prefix match is correct.
		p.pos += len(s)
		return true
	}
	return false
}

// eatWord consumes an identifier word (like "and") only when followed by
// a non-identifier character, so tags starting with "and..." still parse.
func (p *parser) eatWord(w string) bool {
	if !strings.HasPrefix(p.input[p.pos:], w) {
		return false
	}
	end := p.pos + len(w)
	if end < len(p.input) && isNameChar(rune(p.input[end])) {
		return false
	}
	p.pos = end
	return true
}

func isNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '@'
}

func (p *parser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) && isNameChar(rune(p.input[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	return p.input[start:p.pos], nil
}

func (p *parser) stringLiteral() (string, error) {
	p.skipSpace()
	if !p.eat("'") && !p.eat("\"") {
		return "", p.errf("expected quoted value")
	}
	quote := p.input[p.pos-1]
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != quote {
		p.pos++
	}
	if p.pos == len(p.input) {
		return "", p.errf("unterminated string literal")
	}
	val := p.input[start:p.pos]
	p.pos++ // closing quote
	return val, nil
}

// valueOp consumes a content-predicate operator if one is next:
// =, !=, <=, >=, <, >, or the word "contains".
func (p *parser) valueOp() (string, bool) {
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if p.eat(op) {
			return op, true
		}
	}
	if p.eatWord("contains") {
		return "contains", true
	}
	return "", false
}

// numberLiteral parses an unquoted decimal number.
func (p *parser) numberLiteral() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos < len(p.input) && (p.input[p.pos] == '-' || p.input[p.pos] == '+') {
		p.pos++
	}
	digits := false
	for p.pos < len(p.input) && (p.input[p.pos] >= '0' && p.input[p.pos] <= '9' || p.input[p.pos] == '.') {
		if p.input[p.pos] != '.' {
			digits = true
		}
		p.pos++
	}
	if !digits {
		return "", p.errf("expected number")
	}
	return p.input[start:p.pos], nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}
