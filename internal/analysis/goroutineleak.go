package analysis

import (
	"go/ast"
)

// GoroutineLeak forbids fire-and-forget goroutines in non-test code.
// Whirlpool-M's workers all hang off a sync.WaitGroup so RunContext can
// guarantee nothing outlives the call; a stray `go` statement breaks
// that contract silently (workers still draining queues after the run
// returned its Result).
//
// A `go` statement passes the check when it launches a function literal
// whose body (transitively) defers or calls Done on a sync.WaitGroup.
// Goroutines whose lifecycle is owned elsewhere — e.g. handed to a
// supervisor — are annotated on the enclosing function:
//
//	// +whirllint:managed
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "report goroutines not tied to a sync.WaitGroup (fire-and-forget)",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) error {
	for _, fn := range funcDecls(pass) {
		if fn.Body == nil || hasAnnotation(fn, "managed") {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				pass.Reportf(g.Pos(),
					"goroutine launches a named function; wrap it in a func literal with `defer wg.Done()` or annotate the enclosing function %smanaged",
					annotationPrefix)
				return true
			}
			if !signalsWaitGroup(pass, lit.Body) {
				pass.Reportf(g.Pos(),
					"fire-and-forget goroutine: body never calls Done on a sync.WaitGroup; tie it to the run's WaitGroup or annotate the enclosing function %smanaged",
					annotationPrefix)
			}
			return true
		})
	}
	return nil
}

// signalsWaitGroup reports whether the block contains wg.Done() for
// some sync.WaitGroup wg (deferred or direct).
func signalsWaitGroup(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if t := pass.TypesInfo.TypeOf(sel.X); t != nil && isNamedType(t, "sync", "WaitGroup") {
			found = true
			return false
		}
		return true
	})
	return found
}
