// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems over them. It is
// the foundation the path-sensitive whirllint analyzers (lockorder,
// errflow, deadlinewait) share: the per-statement AST walks of the
// earlier suite cannot tell "checked on every path" from "checked
// somewhere in the body", and the engine's invariants — lock
// acquisition order, error propagation, deadline consultation — are
// all path properties.
//
// The graph is deliberately syntax-only (no go/types): a Block holds
// the flat statements and condition expressions executed in order, and
// edges model if/for/range/switch/select branching, break/continue/
// goto/labels, and returns. Deferred calls are recorded on the Graph
// (they run at function exit, whichever path reaches it); calls that
// provably never return (panic, os.Exit, (*testing.T).Fatal, ...)
// terminate their block with no successors, so diverging paths do not
// pollute the facts that reach Exit.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of nodes: all execute in order, and
// control leaves only at the end, to one of Succs. The node list holds
// "flat" nodes — simple statements and the condition/tag expressions
// of the enclosing control statement — never a statement with a nested
// body; use Inspect to walk a node without straying into a nested
// function literal.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the flat statements and expressions of the block, in
	// execution order.
	Nodes []ast.Node
	// Succs are the possible successors. A reachable block with no
	// successors (other than Exit) diverges: it ends in a call that
	// never returns.
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the first block executed; Exit is the single synthetic
	// block every return (and the fall-off-the-end path) leads to. Exit
	// has no nodes of its own.
	Entry, Exit *Block
	// Blocks lists every block, Entry first. Blocks unreachable from
	// Entry (code after an unconditional terminator) are still present.
	Blocks []*Block
	// Defers are the DeferStmts of the body in source order. The
	// deferred calls run when control reaches Exit; their argument
	// expressions were evaluated at the DeferStmt's place in its block.
	Defers []*ast.DeferStmt
}

// New builds the control-flow graph of a function body. mayReturn, if
// non-nil, overrides the built-in never-returns classifier for call
// expressions: returning false marks the call as terminating its path
// (panic-like). Passing nil uses the default classifier, which knows
// panic, os.Exit, runtime.Goexit, log.Fatal*, and testing's
// Fatal/FailNow/Skip methods.
func New(body *ast.BlockStmt, mayReturn func(*ast.CallExpr) bool) *Graph {
	if mayReturn == nil {
		mayReturn = defaultMayReturn
	}
	b := &builder{
		g:         &Graph{},
		mayReturn: mayReturn,
		labels:    make(map[string]*labelTarget),
	}
	b.g.Exit = &Block{} // patched into Blocks last, with the final index
	entry := b.newBlock()
	b.g.Entry = entry
	b.cur = entry
	b.stmtList(body.List)
	// Fall off the end of the body: an implicit return.
	b.jump(b.g.Exit)
	// Unresolved gotos (target label after the goto) were patched as
	// encountered; any still-pending ones point at code that does not
	// exist — ill-formed source — and are dropped.
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// Inspect walks the subtree rooted at n in depth-first order, calling f
// for each node, but does not descend into nested *ast.FuncLit bodies:
// a closure's statements belong to the closure's own graph, not to the
// enclosing function's blocks.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

// labelTarget resolves a label to the jump targets its statement
// offers.
type labelTarget struct {
	// start is the labeled statement's first block (the goto target);
	// nil until the label's statement has been built.
	start *Block
	// breakTo / continueTo are set while the labeled loop or switch is
	// being built.
	breakTo, continueTo *Block
	// pending are goto sources seen before the label's statement.
	pending []*Block
}

type builder struct {
	g         *Graph
	mayReturn func(*ast.CallExpr) bool
	// cur is the block under construction; nil after a terminator
	// (return, break, panic) until the next statement opens a fresh —
	// unreachable — block.
	cur    *Block
	labels map[string]*labelTarget
	// loop stack for unlabeled break/continue; switch/select push a
	// breakTo with a nil continueTo.
	loops []loopFrame
	// label pending attachment to the next loop/switch statement.
	curLabel *labelTarget
}

type loopFrame struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// block returns the block under construction, opening a fresh
// (unreachable) one after a terminator so trailing dead code is still
// represented.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// jump ends the current block with an edge to target.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

// branch adds an edge to target without ending the block (the other
// branch continues).
func (b *builder) branchTo(from, target *Block) {
	from.Succs = append(from.Succs, target)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		head := b.block()
		b.cur = nil
		thenBlk := b.newBlock()
		b.branchTo(head, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		afterThen := b.cur // nil if the then-branch terminated
		b.cur = nil
		var afterElse *Block
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.branchTo(head, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			afterElse = b.cur
			b.cur = nil
		}
		join := b.newBlock()
		if s.Else == nil {
			b.branchTo(head, join)
		}
		if afterThen != nil {
			b.branchTo(afterThen, join)
		}
		if afterElse != nil {
			b.branchTo(afterElse, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.jumpOrLink(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		head = b.block() // cond may have been added to head
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.branchTo(head, body)
		if s.Cond != nil {
			b.branchTo(head, exit)
		}
		b.setLabel(label, head, exit, post)
		b.pushLoop(exit, post)
		b.cur = body
		b.stmt(s.Body)
		b.jump(post)
		b.popLoop()
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.jump(head)
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.jumpOrLink(head)
		body := b.newBlock()
		exit := b.newBlock()
		b.branchTo(head, body)
		b.branchTo(head, exit)
		b.setLabel(label, head, exit, head)
		b.pushLoop(exit, head)
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.popLoop()
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitchBody(label, s.Body, func(c *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, 0, len(c.List))
			for _, e := range c.List {
				nodes = append(nodes, e)
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.buildSwitchBody(label, s.Body, func(*ast.CaseClause) []ast.Node { return nil })

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.block()
		b.cur = nil
		exit := b.newBlock()
		b.setLabel(label, head, exit, nil)
		b.pushSwitch(exit)
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			clause := b.newBlock()
			b.branchTo(head, clause)
			b.cur = clause
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(exit)
		}
		// Control always leaves through a clause, so head gets no
		// direct edge to exit; a clauseless select{} blocks forever and
		// head diverges.
		b.popLoop()
		b.cur = exit

	case *ast.LabeledStmt:
		lt := b.label(s.Label.Name)
		start := b.block()
		// If the labeled statement opens a fresh construct, the label's
		// start is the current block; resolve pending gotos to it.
		lt.start = start
		for _, src := range lt.pending {
			b.branchTo(src, start)
		}
		lt.pending = nil
		b.curLabel = lt
		b.stmt(s.Stmt)
		b.curLabel = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil && lt.breakTo != nil {
					b.jump(lt.breakTo)
					return
				}
			} else if t := b.breakTarget(); t != nil {
				b.jump(t)
				return
			}
			b.cur = nil // malformed; sever the path
		case token.CONTINUE:
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil && lt.continueTo != nil {
					b.jump(lt.continueTo)
					return
				}
			} else if t := b.continueTarget(); t != nil {
				b.jump(t)
				return
			}
			b.cur = nil
		case token.GOTO:
			lt := b.label(s.Label.Name)
			if lt.start != nil {
				b.jump(lt.start)
			} else {
				// Forward goto: link once the label is built.
				src := b.block()
				lt.pending = append(lt.pending, src)
				b.cur = nil
			}
		case token.FALLTHROUGH:
			// Handled structurally by buildSwitchBody.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && !b.mayReturn(call) {
			b.cur = nil // diverges: no successors
		}

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		b.add(s)
	}
}

// buildSwitchBody lowers the clause list shared by expression and type
// switches. caseNodes extracts the flat expressions a clause evaluates
// (its comparison list; empty for type switches and default).
func (b *builder) buildSwitchBody(label *labelTarget, body *ast.BlockStmt, caseNodes func(*ast.CaseClause) []ast.Node) {
	head := b.block()
	b.cur = nil
	exit := b.newBlock()
	b.setLabel(label, head, exit, nil)
	b.pushSwitch(exit)
	clauses := body.List
	hasDefault := false
	// Pre-create clause bodies so fallthrough can link clause i to i+1.
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	for i, raw := range clauses {
		c := raw.(*ast.CaseClause)
		if c.List == nil {
			hasDefault = true
		}
		b.branchTo(head, blocks[i])
		b.cur = blocks[i]
		for _, n := range caseNodes(c) {
			b.add(n)
		}
		falls := false
		for _, s := range c.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(s)
		}
		if falls && i+1 < len(clauses) {
			b.jump(blocks[i+1])
		} else {
			b.jump(exit)
		}
	}
	if !hasDefault {
		b.branchTo(head, exit)
	}
	b.popLoop()
	b.cur = exit
}

// jumpOrLink ends the current block into target, or — when the current
// path already terminated — leaves target unreachable.
func (b *builder) jumpOrLink(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
		b.cur = nil
	}
}

func (b *builder) pushLoop(breakTo, continueTo *Block) {
	b.loops = append(b.loops, loopFrame{breakTo: breakTo, continueTo: continueTo})
}

func (b *builder) pushSwitch(breakTo *Block) {
	b.loops = append(b.loops, loopFrame{breakTo: breakTo})
}

func (b *builder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *builder) breakTarget() *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].breakTo != nil {
			return b.loops[i].breakTo
		}
	}
	return nil
}

func (b *builder) continueTarget() *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].continueTo != nil {
			return b.loops[i].continueTo
		}
	}
	return nil
}

func (b *builder) label(name string) *labelTarget {
	lt := b.labels[name]
	if lt == nil {
		lt = &labelTarget{}
		b.labels[name] = lt
	}
	return lt
}

func (b *builder) takeLabel() *labelTarget {
	lt := b.curLabel
	b.curLabel = nil
	return lt
}

func (b *builder) setLabel(lt *labelTarget, start, breakTo, continueTo *Block) {
	if lt == nil {
		return
	}
	if lt.start == nil {
		lt.start = start
	}
	lt.breakTo = breakTo
	lt.continueTo = continueTo
}

// defaultMayReturn reports whether a call can return to its caller.
// It recognizes the stdlib's unconditional terminators plus testing's
// goroutine-exiting methods by name, without type information — good
// enough for dataflow precision, never for a diagnostic by itself.
func defaultMayReturn(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name != "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkg, ok := fun.X.(*ast.Ident); ok {
			switch pkg.Name {
			case "os":
				return name != "Exit"
			case "runtime":
				return name != "Goexit"
			case "log":
				return name != "Fatal" && name != "Fatalf" && name != "Fatalln" &&
					name != "Panic" && name != "Panicf" && name != "Panicln"
			}
		}
		// Methods that exit the calling goroutine: testing.T/B/F and
		// friends. Matching by name alone risks sparing a same-named
		// user method from dataflow — acceptable: the effect is only a
		// severed path, never a report.
		switch name {
		case "Fatal", "Fatalf", "FailNow", "SkipNow", "Skipf", "Skip":
			return false
		}
	}
	return true
}
