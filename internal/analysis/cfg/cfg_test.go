package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildGraph parses src (a file body) and returns the graph of the
// function named name.
func buildGraph(t *testing.T, src, name string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body, nil), fset
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// reachable returns the blocks reachable from Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestStraightLine(t *testing.T) {
	g, _ := buildGraph(t, `func f() { a(); b(); c() }`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable in straight-line function")
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3", len(g.Entry.Nodes))
	}
}

func TestIfJoin(t *testing.T) {
	g, _ := buildGraph(t, `func f(c bool) { if c { a() } else { b() }; d() }`, "f")
	// Entry (cond) must have two successors; both paths reach Exit.
	head := g.Entry
	if len(head.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2", len(head.Succs))
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g, _ := buildGraph(t, `func f(n int) { for i := 0; i < n; i++ { a() }; b() }`, "f")
	// Some block must have a back edge (successor with a lower index).
	back := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("no back edge in for loop")
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestUnboundedLoopNoExit(t *testing.T) {
	g, _ := buildGraph(t, `func f() { for { a() } }`, "f")
	if reachable(g)[g.Exit] {
		t.Fatal("for{} loop must not reach exit")
	}
}

func TestBreakReachesExit(t *testing.T) {
	g, _ := buildGraph(t, `func f() { for { if done() { break }; a() } }`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("break must open a path to exit")
	}
}

func TestLabeledBreak(t *testing.T) {
	g, _ := buildGraph(t, `func f() {
outer:
	for {
		for {
			break outer
		}
	}
	a()
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("labeled break must escape both loops")
	}
}

func TestGotoBackward(t *testing.T) {
	g, _ := buildGraph(t, `func f() {
loop:
	a()
	goto loop
}`, "f")
	if reachable(g)[g.Exit] {
		t.Fatal("unconditional backward goto must not reach exit")
	}
}

func TestPanicDiverges(t *testing.T) {
	g, _ := buildGraph(t, `func f(c bool) { if c { panic("x") }; a() }`, "f")
	// The panic path must not flow into the join: exactly one path
	// (the non-panicking one) reaches Exit.
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if len(b.Succs) != 0 {
					t.Fatalf("panic block has %d successors, want 0", len(b.Succs))
				}
			}
		}
	}
}

func TestSelectClauses(t *testing.T) {
	g, _ := buildGraph(t, `func f(a, b chan int) {
	select {
	case <-a:
		x()
	case v := <-b:
		_ = v
	}
	y()
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// The select head must branch to both clauses.
	found := false
	for _, b := range g.Blocks {
		if len(b.Succs) == 2 && b != g.Entry {
			found = true
		}
	}
	if !found && len(g.Entry.Succs) != 2 {
		t.Fatal("select head does not branch to its clauses")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g, _ := buildGraph(t, `func f(x int) {
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestDefersRecorded(t *testing.T) {
	g, _ := buildGraph(t, `func f() { defer a(); defer b(); c() }`, "f")
	if len(g.Defers) != 2 {
		t.Fatalf("recorded %d defers, want 2", len(g.Defers))
	}
}

// TestMustAnalysis solves a tiny must-consult problem: "was mark()
// called on every path?" — the lattice shared by the deadlinewait
// analyzer.
func TestMustAnalysis(t *testing.T) {
	run := func(src string) bool {
		g, _ := buildGraph(t, src, "f")
		fl := &Flow[bool]{
			EntryFact: false,
			Merge:     func(a, b bool) bool { return a && b },
			Equal:     func(a, b bool) bool { return a == b },
			Node: func(n ast.Node, in bool) bool {
				if in {
					return true
				}
				found := false
				Inspect(n, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
							found = true
						}
					}
					return true
				})
				return found
			},
		}
		in := fl.Forward(g)
		v, ok := in[g.Exit]
		return ok && v
	}

	if !run(`func f(c bool) { if c { mark() } else { mark() }; a() }`) {
		t.Error("mark on both branches: want consulted at exit")
	}
	if run(`func f(c bool) { if c { mark() }; a() }`) {
		t.Error("mark on one branch only: want not consulted at exit")
	}
	if !run(`func f(c bool) { if c { panic("x") }; mark() }`) {
		t.Error("panic path must not dilute the must-fact")
	}
}

// TestInspectSkipsFuncLit pins the closure boundary: a node walk must
// not descend into nested function literals.
func TestInspectSkipsFuncLit(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package p
func f() { g := func() { inner() }; g() }`, 0)
	if err != nil {
		t.Fatal(err)
	}
	var calls []string
	ast.Inspect(f, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncDecl); ok {
			return true
		}
		return true
	})
	fd := f.Decls[0].(*ast.FuncDecl)
	Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				calls = append(calls, id.Name)
			}
		}
		return true
	})
	joined := strings.Join(calls, ",")
	if strings.Contains(joined, "inner") {
		t.Fatalf("Inspect descended into a FuncLit: calls = %s", joined)
	}
	if !strings.Contains(joined, "g") {
		t.Fatalf("Inspect missed the enclosing body's call: calls = %s", joined)
	}
}
