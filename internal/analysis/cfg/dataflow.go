package cfg

import "go/ast"

// A Flow describes one forward dataflow problem over a Graph: the
// lattice (Merge/Equal), the boundary fact at function entry, and the
// per-node transfer function. The driver computes the fixpoint of
//
//	in(b)  = Merge over predecessors p of out(p)   (Entry gets EntryFact)
//	out(b) = Transfer applied to b's nodes in order, starting from in(b)
//
// Facts must be value-ish: Transfer and Merge must return fresh values
// (or treat their inputs as immutable), because the driver retains and
// compares previously computed facts across iterations.
type Flow[F any] struct {
	// EntryFact is the fact holding at function entry.
	EntryFact F
	// Merge combines the facts of two predecessor paths at a join
	// point. It must be commutative and associative (a join).
	Merge func(a, b F) F
	// Equal reports whether two facts are equal; the fixpoint
	// terminates when no block's input fact changes.
	Equal func(a, b F) bool
	// Node is the transfer function for a single flat node.
	Node func(n ast.Node, in F) F
}

// Transfer folds a whole block through the per-node transfer.
func (fl *Flow[F]) Transfer(b *Block, in F) F {
	for _, n := range b.Nodes {
		in = fl.Node(n, in)
	}
	return in
}

// Forward solves the dataflow problem and returns the input fact of
// every reached block, keyed by block. Blocks unreachable from Entry
// (dead code, or code cut off by a never-returning call) are absent
// from the map: analyzers must treat a missing entry as "never
// executed". The input of Graph.Exit merges every returning path; a
// function whose paths all diverge leaves Exit unmapped.
func (fl *Flow[F]) Forward(g *Graph) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = fl.EntryFact
	// Worklist seeded with Entry; FIFO order is fine at these sizes
	// (function bodies, tens of blocks).
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := fl.Transfer(b, in[b])
		for _, s := range b.Succs {
			next := out
			if cur, ok := in[s]; ok {
				next = fl.Merge(cur, out)
				if fl.Equal(cur, next) {
					continue
				}
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}
