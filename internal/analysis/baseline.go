package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline is a committed set of accepted pre-existing diagnostics
// (lint.baseline.json): a new analyzer can land and gate CI before the
// whole tree is clean, because findings recorded in the baseline do not
// fail the build — only *new* ones do. Entries are keyed by analyzer,
// repo-relative file, and message, deliberately not by line: unrelated
// edits that shift a finding a few lines must not resurrect it. Equal
// findings are counted, so adding a second instance of a baselined
// violation in the same file still fails.
type Baseline struct {
	// Entries maps baselineKey strings (analyzer\x00file\x00message) to
	// accepted occurrence counts. Serialized as a sorted list.
	entries map[baselineKey]int
}

type baselineKey struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// baselineEntry is the wire form of one accepted finding.
type baselineEntry struct {
	baselineKey
	Count int `json:"count"`
}

// baselineFile is the on-disk shape, versioned so the format can evolve.
type baselineFile struct {
	Version int             `json:"version"`
	Entries []baselineEntry `json:"entries"`
}

// NewBaseline builds a baseline accepting exactly the given
// diagnostics, with paths relativized against root.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	b := &Baseline{entries: make(map[baselineKey]int)}
	for _, d := range diags {
		b.entries[keyOf(d, root)]++
	}
	return b
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error: the clean-tree default needs no file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{entries: make(map[baselineKey]int)}, nil
	}
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported baseline version %d", path, f.Version)
	}
	b := &Baseline{entries: make(map[baselineKey]int, len(f.Entries))}
	for _, e := range f.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		b.entries[e.baselineKey] += n
	}
	return b, nil
}

// Save writes the baseline, sorted for stable diffs. An empty baseline
// serializes as "entries": [] — never null — so a clean tree's file is
// identical no matter whether it was produced from a nil or an empty
// entry map.
func (b *Baseline) Save(path string) error {
	f := baselineFile{Version: 1, Entries: []baselineEntry{}}
	for k, n := range b.entries {
		f.Entries = append(f.Entries, baselineEntry{baselineKey: k, Count: n})
	}
	sort.Slice(f.Entries, func(i, j int) bool {
		a, c := f.Entries[i], f.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Len returns the number of accepted findings (occurrences, not keys).
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.entries {
		n += c
	}
	return n
}

// Filter splits diagnostics into new (not covered by the baseline) and
// baselined ones. Matching consumes baseline budget per key, so k
// accepted occurrences cover at most k findings; it does not mutate b.
// The returned membership function reports, for any diagnostic in
// diags, whether it was baselined (for SARIF's baselineState).
func (b *Baseline) Filter(diags []Diagnostic, root string) (fresh, old []Diagnostic, baselined func(Diagnostic) bool) {
	budget := make(map[baselineKey]int, len(b.entries))
	for k, n := range b.entries {
		budget[k] = n
	}
	member := make(map[Diagnostic]bool, len(diags))
	for _, d := range diags {
		k := keyOf(d, root)
		if budget[k] > 0 {
			budget[k]--
			member[d] = true
			old = append(old, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, old, func(d Diagnostic) bool { return member[d] }
}

func keyOf(d Diagnostic, root string) baselineKey {
	return baselineKey{
		Analyzer: d.Analyzer,
		File:     relURI(d.Pos.Filename, root),
		Message:  d.Message,
	}
}
