package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// This file implements the `go vet -vettool` protocol, mirroring
// golang.org/x/tools/go/analysis/unitchecker: the go command invokes
// the tool once per package with a JSON config file describing the
// package's sources and the export data of its dependencies (already
// compiled, so no source type-checking is needed). The tool writes a
// facts file (the suite's exported object facts, serialized by
// FactStore.Encode) for downstream units and reports diagnostics on
// stderr. Facts of dependencies arrive through PackageVetx, so
// interprocedural analyzers (hotalloc) see across package boundaries
// exactly as they do in standalone mode.

// VetConfig is the JSON payload cmd/go hands a vet tool.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetTool analyzes the single package described by the config file
// and returns the process exit code: 0 clean, 1 operational failure,
// 2 diagnostics reported (the exit codes cmd/vet tools use). Output
// goes to stderr, like unitchecker.
func RunVetTool(cfgPath string, analyzers []*Analyzer) int {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The go command requires the facts file to exist even when the unit
	// contributes none; write an empty one up front and overwrite it
	// with real facts once analysis succeeds.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	// Standard-library dependencies carry none of this suite's
	// annotations; skip their (VetxOnly) units instead of re-analyzing
	// the stdlib on every vet run.
	if cfg.VetxOnly && cfg.Standard[cfg.ImportPath] {
		return 0
	}

	// Test files are analyzed like everything else: the go command hands
	// the test variant of each package as its own unit, with GoFiles
	// covering both production and _test.go sources.
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	var parseErrs []error
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			parseErrs = append(parseErrs, err)
		}
		if f != nil {
			files = append(files, f)
		}
	}
	if len(parseErrs) > 0 {
		// A unit that does not parse is reported, not crashed on —
		// matching unitchecker, the typecheck-failure escape hatch
		// applies here too.
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, err := range parseErrs {
			fmt.Fprintln(os.Stderr, err)
		}
		return 1
	}
	if len(files) == 0 {
		return 0
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := &types.Config{
		Importer:    imp,
		Sizes:       types.SizesFor(compiler, runtime.GOARCH),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, err := range typeErrs {
			fmt.Fprintln(os.Stderr, err)
		}
		return 1
	}

	// Dependency facts: each .vetx file holds the facts its unit
	// exported (JSON from FactStore.Encode). Unreadable or empty files
	// are tolerated — a missing fact only makes hotalloc less precise.
	store := NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue
		}
		if err := store.Decode(data); err != nil {
			fmt.Fprintf(os.Stderr, "whirlpool-lint: ignoring fact file %s: %v\n", vetx, err)
		}
	}

	pkg := &Package{
		Path:  cfg.ImportPath,
		Name:  tpkg.Name(),
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := RunWithFacts(analyzers, []*Package{pkg}, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		facts, err := store.Encode(cfg.ImportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return cfg, nil
}
