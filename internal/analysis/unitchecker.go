package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the `go vet -vettool` protocol, mirroring
// golang.org/x/tools/go/analysis/unitchecker: the go command invokes
// the tool once per package with a JSON config file describing the
// package's sources and the export data of its dependencies (already
// compiled, so no source type-checking is needed). The tool writes the
// (for this suite always empty) facts file the go command expects and
// reports diagnostics on stderr.

// VetConfig is the JSON payload cmd/go hands a vet tool.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetTool analyzes the single package described by the config file
// and returns the process exit code: 0 clean, 1 operational failure,
// 2 diagnostics reported (the exit codes cmd/vet tools use). Output
// goes to stderr, like unitchecker.
func RunVetTool(cfgPath string, analyzers []*Analyzer) int {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The go command requires the facts file even from tools that keep
	// no facts, and for VetxOnly packages (dependencies loaded just for
	// facts) it is the only output needed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		// The go command also vets test variants of each package; this
		// suite enforces invariants on production code only (tests
		// assert exact scores and drive loops synthetically).
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := &types.Config{
		Importer:    imp,
		Sizes:       types.SizesFor(compiler, runtime.GOARCH),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, err := range typeErrs {
			fmt.Fprintln(os.Stderr, err)
		}
		return 1
	}

	pkg := &Package{
		Path:  cfg.ImportPath,
		Name:  tpkg.Name(),
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := Run(analyzers, []*Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return cfg, nil
}
