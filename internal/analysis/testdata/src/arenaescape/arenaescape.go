// Package arenaescape is golden testdata for the arenaescape analyzer.
package arenaescape

import "sort"

// match mirrors the engine's arena-owned partial match; its own fields
// are never reported.
type match struct {
	score    float64
	bindings []*match
}

// freelist is a sanctioned holder: the arena's own recycling store.
// +whirllint:matchowner
type freelist struct {
	free []*match
}

// scratch is a sanctioned holder via a grouped declaration.
type (
	// +whirllint:matchowner
	scratch struct {
		exts []*match
	}
)

// entry copies scores out of matches instead of retaining them — no
// *match fields, nothing to report.
type entry struct {
	score float64
	seqs  []int64
}

type leak struct {
	best *match // want `retains an arena-owned \*match`
}

type sliceLeak struct {
	batch []*match // want `retains an arena-owned \*match`
}

type deepLeak struct {
	byRoot map[int][]*match // want `retains an arena-owned \*match`
	feed   chan *match      // want `retains an arena-owned \*match`
}

// wrapped holds another named holder type; that type's declaration is
// the responsible (and annotated) one, so wrapped itself stays silent.
type wrapped struct {
	fl freelist
}

// ---- flow layer: match values escaping through statements ----

// lastBest is the kind of storage the run cannot see into.
var lastBest *match

var recent []*match

// Shape A: assignment into a package-level variable.
func publish(m *match) {
	lastBest = m // want `arena-owned \*match is stored in package-level variable lastBest`
}

// Shape B: append rooted at a package-level slice is a store into it.
func remember(m *match) {
	recent = append(recent, m) // want `arena-owned \*match is stored in package-level variable recent`
}

// Shape C: map stores outlive the run's view of the match.
func index(byID map[int]*match, m *match) {
	byID[0] = m // want `arena-owned \*match is stored in a map`
}

// Shape D: channel sends hand the match to an unknown receiver.
func feed(ch chan *match, m *match) {
	ch <- m // want `arena-owned \*match is sent on a channel`
}

// Shape E: goroutines outlive the match's release, whether the match is
// passed as an argument or captured by the closure.
func spawnArg(m *match) {
	go consume(m) // want `arena-owned \*match is handed to a goroutine`
}

func spawnCapture(m *match) {
	go func() { // want `arena-owned \*match "m" is captured by a goroutine closure`
		_ = m.score
	}()
}

func consume(m *match) { _ = m.score }

// Shape F: interface boxing lets the match be stored anywhere.
type anySink interface{ accept(v any) }

func box(s anySink, m *match) {
	s.accept(m) // want `arena-owned \*match is boxed into an interface value`
}

// Shape G: the interprocedural path — stash's parameter reaches a
// global, so every call site feeding it is an escape too, transitively.
func stash(m *match) {
	lastBest = m // want `arena-owned \*match is stored in package-level variable lastBest`
}

func relay(m *match) {
	stash(m) // want `arena-owned \*match passed to stash, where parameter "m" is stored in package-level variable lastBest`
}

func source(m *match) {
	relay(m) // want `arena-owned \*match passed to relay, where parameter "m" is stored in package-level variable lastBest \(via stash\)`
}

// Sanctioned: storage through a field of an annotated owner type.
// +whirllint:matchowner
type registry struct {
	byID map[int]*match
	feed chan *match
}

func (r *registry) put(id int, m *match) {
	r.byID[id] = m // registry is an annotated owner: silent
	r.feed <- m
}

// Sanctioned: a function annotated as a transfer point is exempt
// end to end, and calls into it are not escapes.
// +whirllint:matchowner
func recycle(fl *freelist, m *match) {
	fl.free = append(fl.free, m)
}

func release(fl *freelist, m *match) {
	recycle(fl, m) // callee is a sanctioned transfer point: silent
}

// Sanctioned: sort boxes the slice header but provably does not retain
// it past the call.
func order(alive []*match) {
	sort.Slice(alive, func(i, j int) bool {
		return alive[i].score > alive[j].score
	})
}

// Local copies between locals are not sinks.
func rescore(m *match) float64 {
	cur := m
	best := cur.score
	for _, b := range cur.bindings {
		if b.score > best {
			best = b.score
		}
	}
	return best
}
