// Package arenaescape is golden testdata for the arenaescape analyzer.
package arenaescape

// match mirrors the engine's arena-owned partial match; its own fields
// are never reported.
type match struct {
	score    float64
	bindings []*match
}

// freelist is a sanctioned holder: the arena's own recycling store.
// +whirllint:matchowner
type freelist struct {
	free []*match
}

// scratch is a sanctioned holder via a grouped declaration.
type (
	// +whirllint:matchowner
	scratch struct {
		exts []*match
	}
)

// entry copies scores out of matches instead of retaining them — no
// *match fields, nothing to report.
type entry struct {
	score float64
	seqs  []int64
}

type leak struct {
	best *match // want `retains an arena-owned \*match`
}

type sliceLeak struct {
	batch []*match // want `retains an arena-owned \*match`
}

type deepLeak struct {
	byRoot map[int][]*match // want `retains an arena-owned \*match`
	feed   chan *match      // want `retains an arena-owned \*match`
}

// wrapped holds another named holder type; that type's declaration is
// the responsible (and annotated) one, so wrapped itself stays silent.
type wrapped struct {
	fl freelist
}
