// Package errflow is golden testdata for the errflow analyzer.
package errflow

import "errors"

func step(p string) error {
	if p == "" {
		return errors.New("empty")
	}
	return nil
}

func parse(p string) (int, error) {
	if p == "" {
		return 0, errors.New("empty")
	}
	return len(p), nil
}

// --- true positives ---

// The classic shadow-free overwrite: the first result is clobbered by
// the second call before anyone looks at it.
func overwritten(p string) error {
	err := step(p) // want `error assigned here is overwritten below before being checked`
	err = step(p + p)
	return err
}

// Checked on the verbose path only; the quiet path drops it.
func oneBranch(p string, verbose bool) {
	err := step(p) // want `error assigned here reaches a return without being checked`
	if verbose {
		println(err)
	}
}

// Re-using err in a second multi-assign before the check kills the
// first call's result.
func multi(p string) (int, error) {
	v, err := parse(p) // want `error assigned here is overwritten below before being checked`
	w, err := parse(p + p)
	if err != nil {
		return 0, err
	}
	return v + w, nil
}

// A named result assigned and then clobbered with nil on the way out.
func clobbered(p string) (err error) {
	err = step(p) // want `error assigned here is overwritten below before being checked`
	err = nil
	return
}

// Function literals get their own graph.
func litDrops() func(string) error {
	return func(p string) error {
		err := step(p) // want `error assigned here is overwritten below before being checked`
		err = step(p + p)
		return err
	}
}

// --- negatives ---

// The ordinary check-and-return chain.
func checked(p string) error {
	err := step(p)
	if err != nil {
		return err
	}
	return step(p + p)
}

// A bare return propagates a pending named result.
func propagates(p string) (err error) {
	err = step(p)
	return
}

// Inner-scope shadows are separate variables, each checked on its own.
func shadowed(p string) error {
	if err := step(p); err != nil {
		return err
	}
	if err := step(p + p); err != nil {
		return err
	}
	return nil
}

// A variable the closure captures may be checked after the closure
// runs; neither graph owns it.
func captured(p string, retry func(func())) error {
	var err error
	retry(func() {
		err = step(p)
	})
	return err
}

// Assigning into a checked accumulator inside a loop.
func firstError(ps []string) error {
	var first error
	for _, p := range ps {
		if err := step(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Handing the error to another function is a read.
func wrapped(p string) error {
	err := step(p)
	return errors.Join(err, step(p+p))
}

// --- escape hatch ---

// warm is best-effort by contract.
// +whirllint:errok cache warm-up; a miss is repopulated on first access
func warm(p string) {
	err := step(p)
	err = step(p + p)
	_ = err
}

// +whirllint:errok
func bareErrok() {} // want `\+whirllint:errok on bareErrok needs a justification`
