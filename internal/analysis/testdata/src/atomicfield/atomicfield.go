// Package atomicfield is golden testdata for the atomicfield analyzer:
// each line with a want expectation is a seeded violation, everything
// else must stay silent.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

// counter mixes atomic and plain access to the same fields — the race
// class the analyzer exists to catch.
type counter struct {
	hits   int64
	misses int64
	ratio  float64
}

func (c *counter) recordHit() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 0)
}

// Shape 1: plain read of an atomically written field.
func (c *counter) snapshotRacy() int64 {
	return c.hits // want `counter\.hits is accessed atomically .* but read or written plainly`
}

// Shape 2: plain store next to atomic adds.
func (c *counter) resetRacy() {
	c.misses = 0 // want `counter\.misses is accessed atomically .* but read or written plainly`
}

// Shape 3: composite-literal initialization of an atomically used field
// is a plain store too — construction is only safe before publication,
// which the analyzer cannot prove.
func newCounter() *counter {
	return &counter{hits: 1} // want `counter\.hits is accessed atomically .* but read or written plainly`
}

// Shape 4: taking the address for a non-atomic consumer leaks a plain
// access path.
func (c *counter) leak() *int64 {
	return &c.misses // want `counter\.misses is accessed atomically .* but read or written plainly`
}

// Clean: ratio is never touched atomically, so plain access is fine.
func (c *counter) setRatio(r float64) { c.ratio = r }

// gauges holds atomic.* struct-typed fields: those must only be used
// through methods or by pointer, never copied.
type gauges struct {
	depth atomic.Int64
	peak  atomic.Int64
}

func (g *gauges) observe(d int64) {
	g.depth.Store(d)
	if d > g.peak.Load() {
		g.peak.Store(d)
	}
}

// Shape 5: copying an atomic value forks its state.
func (g *gauges) snapshot() int64 {
	d := g.depth // want `gauges\.depth is an sync/atomic\.Int64; copying it forks the atomic state`
	return d.Load()
}

// Shape 6: assigning one atomic field into another copies both sides.
func (g *gauges) clobber() {
	g.peak = g.depth // want `gauges\.peak is an sync/atomic\.Int64` `gauges\.depth is an sync/atomic\.Int64`
}

// Clean: methods and pointers are the sanctioned uses.
func (g *gauges) peakPtr() *atomic.Int64 { return &g.peak }

// seqlocked carries the escape hatch: gen is written plainly under mu
// (the seqlock writer side) and read atomically by readers.
type seqlocked struct {
	mu sync.Mutex
	// +whirllint:seqlocked written under mu only; readers retry on odd gen
	gen uint64
}

// +whirllint:locked
func (s *seqlocked) bump() { s.gen++ }

func (s *seqlocked) read() uint64 { return atomic.LoadUint64(&s.gen) }

// badseq has the annotation but no justification: the waiver itself is
// reported, once, at the declaration.
type badseq struct {
	// +whirllint:seqlocked
	gen uint64 // want `\+whirllint:seqlocked on badseq\.gen needs a justification`
}

// +whirllint:locked
func (s *badseq) bump()        { s.gen++ }
func (s *badseq) read() uint64 { return atomic.LoadUint64(&s.gen) }
