// Package goroutineleak is golden testdata for the goroutineleak
// analyzer.
package goroutineleak

import "sync"

func managedLaunch() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func nonDeferredDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		wg.Done()
	}()
}

func fireAndForget() {
	go func() { // want `fire-and-forget goroutine`
		work()
	}()
}

func namedLaunch() {
	go work() // want `goroutine launches a named function`
}

// background hands its goroutine to the process supervisor, which owns
// the shutdown.
// +whirllint:managed
func background() {
	go work()
}

func work() {}
