// Package audit is golden testdata for the -audit-annotations mode.
// The stale notes below are deliberate; the audit test asserts each is
// reported (and that the healthy ones are not).
package audit

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// get reads n under the caller's lock. The justification names a
// symbol that still exists, so the note is healthy.
// +whirllint:locked callers hold store.mu around every read
func (s *store) get() int { return s.n }

// stale references a method that was renamed away: store.Acquire no
// longer resolves anywhere.
// +whirllint:locked callers hold the lock via store.Acquire()
func (s *store) stale() int { return s.n }

// unknownTag uses a tag no analyzer honours.
// +whirllint:nosuchtag this never did anything
func unknownTag() {}

// bare forgot the tag entirely.
// +whirllint:
func bare() {}

// prose justifications are not audited: no dotted or call-shaped
// token, no finding.
// +whirllint:errok warming the cache is best effort
func prose() {}
