// Package lockorder is golden testdata for the lockorder analyzer.
package lockorder

import "sync"

// --- direct cycle: two functions take the same pair in opposite order ---

type a struct {
	mu sync.Mutex
	n  int
}

type b struct {
	mu sync.Mutex
	n  int
}

func lockAB(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want `lock-order cycle: .*\(b\)\.mu is acquired here while holding .*\(a\)\.mu`
	y.n++
	y.mu.Unlock()
	x.mu.Unlock()
}

func lockBA(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
	y.mu.Unlock()
}

// --- interprocedural cycle: one side of the inversion hides in a callee ---

type c struct {
	mu sync.Mutex
	n  int
}

type d struct {
	mu sync.Mutex
	n  int
}

func helperLockD(y *d) {
	y.mu.Lock()
	y.n++
	y.mu.Unlock()
}

func viaCall(x *c, y *d) {
	x.mu.Lock()
	helperLockD(y) // want `lock-order cycle: .*\(d\)\.mu is acquired here while holding .*\(c\)\.mu`
	x.mu.Unlock()
}

func viaReverse(x *c, y *d) {
	y.mu.Lock()
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
	y.mu.Unlock()
}

// --- self-deadlock: sync.Mutex is not reentrant ---

type e struct {
	mu sync.Mutex
	n  int
}

func doubleLock(x *e) {
	x.mu.Lock()
	x.mu.Lock() // want `x\.mu is locked at .* and locked again here without an intervening unlock`
	x.n++
	x.mu.Unlock()
}

func lockE(x *e) {
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
}

func callWhileHolding(x *e) {
	x.mu.Lock()
	lockE(x) // want `the callee acquires .*\(e\)\.mu again at .* — self-deadlock`
	x.mu.Unlock()
}

// --- negatives ---

// Consistent global order: a before b everywhere is fine.
func alsoAB(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
	y.n = x.n
}

// Releasing before taking the next lock imposes no order.
func sequential(x *a, y *b) {
	y.mu.Lock()
	y.n++
	y.mu.Unlock()
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
}

// Distinct instances of one type carry no inherent order: hand-over-hand
// over a shard array is not a self-cycle.
func shardPair(shards []e) {
	shards[0].mu.Lock()
	shards[1].mu.Lock()
	shards[1].n = shards[0].n
	shards[1].mu.Unlock()
	shards[0].mu.Unlock()
}

// Two read locks cannot deadlock each other without a pending writer.
type r struct {
	mu sync.RWMutex
	n  int
}

func readHelper(x *r) int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.n
}

func readTwice(x *r) int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return readHelper(x)
}

// --- escape hatch ---

type g struct {
	mu sync.Mutex
	n  int
}

type h struct {
	mu sync.Mutex
	n  int
}

func lockGH(x *g, y *h) {
	x.mu.Lock()
	y.mu.Lock()
	y.n++
	y.mu.Unlock()
	x.mu.Unlock()
}

// lockHG inverts the g/h order on purpose.
// +whirllint:lockorder only ever called from the shutdown path, after lockGH's callers have drained
func lockHG(x *g, y *h) {
	y.mu.Lock()
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
	y.mu.Unlock()
}

// +whirllint:lockorder
func bareAnnotation() {} // want `\+whirllint:lockorder on .*bareAnnotation needs a justification`
