// Package lockguard is golden testdata for the lockguard analyzer.
package lockguard

import "sync"

type counter struct {
	name string // declared before mu: unguarded

	mu    sync.Mutex
	count int
	hits  map[string]int
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

func (c *counter) bad() int {
	return c.count // want `counter\.count is guarded by counter\.mu, but method bad never locks it`
}

func (c *counter) badTwice() int {
	c.count++          // want `counter\.count is guarded`
	return len(c.hits) // want `counter\.hits is guarded`
}

func (c *counter) readName() string { return c.name }

// flush resets the counters. Callers hold c.mu.
// +whirllint:locked
func (c *counter) flush() {
	c.count = 0
	for k := range c.hits {
		delete(c.hits, k)
	}
}

type rw struct {
	mu   sync.RWMutex
	data []int
}

func (r *rw) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[0]
}

func (r *rw) sneak() []int {
	return r.data // want `rw\.data is guarded by rw\.mu`
}

// plain has no mutex; its fields are never guarded.
type plain struct {
	n int
}

func (p *plain) get() int { return p.n }
