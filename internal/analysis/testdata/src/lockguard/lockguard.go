// Package lockguard is golden testdata for the lockguard analyzer.
package lockguard

import "sync"

type counter struct {
	name string // declared before mu: unguarded

	mu    sync.Mutex
	count int
	hits  map[string]int
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

func (c *counter) bad() int {
	return c.count // want `counter\.count is guarded by counter\.mu, but method bad never locks it`
}

func (c *counter) badTwice() int {
	c.count++          // want `counter\.count is guarded`
	return len(c.hits) // want `counter\.hits is guarded`
}

func (c *counter) readName() string { return c.name }

// flush resets the counters. Callers hold c.mu.
// +whirllint:locked
func (c *counter) flush() {
	c.count = 0
	for k := range c.hits {
		delete(c.hits, k)
	}
}

type rw struct {
	mu   sync.RWMutex
	data []int
}

func (r *rw) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[0]
}

func (r *rw) sneak() []int {
	return r.data // want `rw\.data is guarded by rw\.mu`
}

// plain has no mutex; its fields are never guarded.
type plain struct {
	n int
}

func (p *plain) get() int { return p.n }

// ---- copied mutexes (copylocks) ----

// valueGet copies the whole struct, mutex included: the Lock call in
// its body locks the copy, so before the copy diagnostic existed the
// analyzer wrongly treated the guard as held.
func (c counter) valueGet() int { // want `method valueGet has a value receiver, but lockguard\.counter contains sync\.Mutex`
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

func fork(c *counter) counter {
	snapshot := *c // want `assignment copies lockguard\.counter, which contains sync\.Mutex`
	return snapshot
}

func inspect(c counter) {} // an API taking a copy is flagged at each call

func callByValue(c *counter) {
	inspect(*c) // want `call passes lockguard\.counter by value, copying sync\.Mutex`
}

func sweep(rs []rw) int {
	total := 0
	for _, r := range rs { // want `range clause copies lockguard\.rw elements, each containing sync\.RWMutex`
		total += len(r.data)
	}
	return total
}

// ptrLock shares its mutex through a pointer: copying the struct
// copies the pointer, so value receivers still lock the real mutex and
// the guard check applies normally instead of the copy diagnostic.
type ptrLock struct {
	mu *sync.Mutex
	n  int
}

func (p ptrLock) locked() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

func (p ptrLock) unlocked() int {
	return p.n // want `ptrLock\.n is guarded by ptrLock\.mu, but method unlocked never locks it`
}

// Pointers are the sanctioned way to share a lock: all silent.
func share(c *counter) *counter {
	alias := c
	return alias
}

func sweepPtr(rs []*rw) int {
	total := 0
	for _, r := range rs {
		total += len(r.data)
	}
	return total
}
