// Package hotalloc is golden testdata for the hotalloc analyzer: the
// annotated hot-path roots below reach a variety of allocating
// constructs, each marked with a want expectation; cold functions and
// justified escapes must stay silent.
package hotalloc

import (
	"fmt"
	"sort"
)

type item struct {
	id    int
	score float64
}

type queue struct {
	items []item
	less  func(a, b item) bool
}

// push is a hot-path root: the steady-state serving loop calls it per
// match.
// +whirllint:hotpath
func (q *queue) push(it item) {
	q.items = append(q.items, it) // receiver-owned scratch: fine
}

// Shape 1: make on the hot path.
// +whirllint:hotpath
func (q *queue) snapshot() []item {
	out := make([]item, len(q.items)) // want `hot path \(\+whirllint:hotpath root hotalloc\.\(queue\)\.snapshot\): make allocates`
	copy(out, q.items)
	return out
}

// Shape 2: &composite literal escaping, reached transitively — the
// root itself is clean, the helper it calls is not.
// +whirllint:hotpath
func (q *queue) pushBoxed(id int) {
	q.pushItem(newItem(id))
}

func (q *queue) pushItem(p *item) { q.items = append(q.items, *p) }

func newItem(id int) *item {
	return &item{id: id} // want `hot path \(\+whirllint:hotpath root hotalloc\.\(queue\)\.pushBoxed\): &composite literal escapes to the heap`
}

// Shape 3: slice literal plus append into a fresh local (not
// caller-owned scratch).
// +whirllint:hotpath
func (q *queue) evictBatch() []int {
	ids := []int{} // want `hot path .*: slice literal allocates`
	for _, it := range q.items {
		ids = append(ids, it.id)
	}
	return ids
}

// evictInto is the sanctioned shape of evictBatch: the caller owns the
// buffer, append reuses its capacity.
// +whirllint:hotpath
func (q *queue) evictInto(dst []int) []int {
	dst = dst[:0]
	for _, it := range q.items {
		dst = append(dst, it.id)
	}
	return dst
}

type sink interface{ consume(v any) }

// Shape 4: interface boxing at a call site — the exact bug class the
// de-boxed matchHeap fixed.
// +whirllint:hotpath
func drain(s sink, q *queue) {
	for _, it := range q.items {
		s.consume(it) // want `hot path .*: interface boxing of .*item argument allocates`
	}
}

// drainPtr stores a pointer in the interface word: no allocation.
// +whirllint:hotpath
func drainPtr(s sink, q *queue) {
	for i := range q.items {
		s.consume(&q.items[i])
	}
}

// Shape 5: a closure capturing locals allocates the closure object.
// +whirllint:hotpath
func (q *queue) sortKey(base int) {
	q.less = func(a, b item) bool { // want `hot path .*: closure captures base, allocating a closure object`
		return a.id+base < b.id+base
	}
}

// Shape 6: fmt on the hot path.
// +whirllint:hotpath
func describe(it item) string {
	return fmt.Sprintf("item-%d", it.id) // want `hot path .*: call to fmt\.Sprintf allocates`
}

// Shape 7: dispatch through a function-valued field reaches whatever
// the package stores there.
// +whirllint:hotpath
func (q *queue) compare(a, b item) bool {
	if q.less != nil {
		return q.less(a, b)
	}
	return a.id < b.id
}

func init() {
	q := &queue{}
	q.less = expensiveLess
	_ = q
}

func expensiveLess(a, b item) bool {
	pair := make([]item, 0, 2) // want `hot path \(\+whirllint:hotpath root hotalloc\.\(queue\)\.compare\): make allocates`
	pair = append(pair, a, b)
	return pair[0].score < pair[1].score
}

// search hands its comparator straight to sort.Search: the callee's
// parameter does not escape, so the closure stays on the stack — clean
// even though it captures.
// +whirllint:hotpath
func (q *queue) search(id int) int {
	return sort.Search(len(q.items), func(i int) bool {
		return q.items[i].id >= id
	})
}

// refill is reachable from push? No — it is cold: allocations here are
// fine.
func (q *queue) refill() {
	q.items = make([]item, 0, 256)
	q.less = nil
}

// grow is reachable from a root but justified: amortized slab refill.
// +whirllint:hotpath
func (q *queue) offer(it item) {
	if len(q.items) == cap(q.items) {
		q.grow()
	}
	q.push(it)
}

// grow doubles the backing array.
// +whirllint:allocok amortized: one refill per capacity doubling
func (q *queue) grow() {
	next := make([]item, len(q.items), 2*cap(q.items)+1)
	copy(next, q.items)
	q.items = next
}

// shrink has the annotation but no justification: that is reported at
// the declaration even though shrink is cold.
// +whirllint:allocok
func (q *queue) shrink() { // want `\+whirllint:allocok on hotalloc\.\(queue\)\.shrink needs a justification`
	q.items = append([]item(nil), q.items...)
}
