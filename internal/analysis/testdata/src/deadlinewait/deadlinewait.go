// Package deadlinewait is golden testdata for the deadlinewait
// analyzer.
package deadlinewait

import (
	"context"
	"sync"
)

// --- true positives: the ctx parameter is dead weight ---

func waitRecv(ctx context.Context, ch chan int) int {
	return <-ch // want `this channel receive blocks until a sender is ready`
}

func sendResult(ctx context.Context, ch chan int, v int) {
	ch <- v // want `this channel send blocks until a receiver is ready`
}

func waitAll(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want `WaitGroup.Wait blocks until every worker calls Done`
}

func pickOne(ctx context.Context, a, b chan int) int {
	select { // want `this select has no default clause and no ctx arm`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func drain(ctx context.Context, ch chan int) int {
	total := 0
	for v := range ch { // want `ranging over a channel blocks until the sender closes it`
		total += v
	}
	return total
}

func spinForever(ctx context.Context) {
	n := 0
	for { // want `unbounded for-loop never consults ctx and has no exit`
		n++
	}
}

// Function literals with their own ctx parameter get their own graph.
func makeHandler() func(context.Context, chan int) int {
	return func(ctx context.Context, ch chan int) int {
		return <-ch // want `this channel receive blocks until a sender is ready`
	}
}

// --- negatives ---

// Handing ctx to the workers first is delegation: cancelling the ctx
// drains the pool and Wait returns.
func fanOut(ctx context.Context, wg *sync.WaitGroup, work func(context.Context)) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work(ctx)
	}()
	wg.Wait()
}

// A ctx arm makes the select deadline-aware.
func waitOrCancel(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// A default clause never blocks.
func poll(ctx context.Context, ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// Every path to the receive has consulted ctx.
func checkedRecv(ctx context.Context, ch chan int) int {
	if ctx.Err() != nil {
		return 0
	}
	return <-ch
}

// Deriving a child context counts: the callee observes cancellation.
func derived(ctx context.Context, ch chan int, start func(context.Context) chan int) int {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := start(runCtx)
	return <-out
}

// No ctx parameter: out of scope.
func plainRecv(ch chan int) int {
	return <-ch
}

// A loop with its own exit and a ctx consultation inside is live.
func pump(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// --- escape hatch ---

// shutdownWait is the rendezvous the cancelling side itself waits on.
// +whirllint:nodeadline shutdown barrier; the caller owning done is the one that cancels ctx
func shutdownWait(ctx context.Context, done chan struct{}) {
	<-done
}

// +whirllint:nodeadline
func bareNodeadline(ctx context.Context) {} // want `\+whirllint:nodeadline on bareNodeadline needs a justification`
