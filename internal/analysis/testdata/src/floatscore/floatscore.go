// Package floatscore is golden testdata for the floatscore analyzer.
package floatscore

const pruneEps = 1e-12

type match struct {
	score    float64
	maxFinal float64
}

// prunable is the sanctioned idiom: an epsilon absorbs float noise.
func prunable(m *match, threshold float64) bool {
	return m.maxFinal <= threshold+pruneEps
}

func badEqual(a, b *match) bool {
	return a.score == b.score // want `raw == between float64 scores`
}

func badNotEqual(a, b *match) bool {
	return a.score != b.score // want `raw != between float64 scores`
}

func badPrune(m *match, threshold float64) bool {
	return m.maxFinal <= threshold // want `raw <= between float64 scores`
}

func badGeq(contrib, threshold float64) bool {
	return contrib >= threshold // want `raw >= between float64 scores`
}

// Strict < and > order scores without asserting float equality.
func ordering(a, b match) bool {
	return a.score > b.score
}

// Not float64: exact comparison of integral scores is fine.
func intScores(scoreA, scoreB int) bool {
	return scoreA == scoreB
}

// Not score-typed names: out of the analyzer's jurisdiction.
func unrelated(x, y float64) bool {
	return x == y
}

// sortTies breaks score ties deterministically on purpose.
// +whirllint:exactscore
func sortTies(a, b match) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return false
}
