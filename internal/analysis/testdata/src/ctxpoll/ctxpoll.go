// Package ctxpoll is golden testdata for the ctxpoll analyzer.
package ctxpoll

import "context"

type run struct{ ctx context.Context }

func (r *run) cancelled() bool {
	select {
	case <-r.ctx.Done():
		return true
	default:
		return false
	}
}

// polling checks the run's cancellation flag every iteration.
func (r *run) polling(popped chan int) {
	for {
		if r.cancelled() {
			return
		}
		if _, ok := <-popped; !ok {
			return
		}
	}
}

// selectPoll receives from ctx.Done directly.
func selectPoll(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case _, ok := <-ch:
			if !ok {
				return
			}
		}
	}
}

// selectNoPoll drains two channels forever; a select alone is not a
// poll — without a Done arm the loop outlives its query.
func selectNoPoll(a, b chan int) {
	for { // want `unbounded loop never polls cancellation`
		select {
		case v := <-a:
			_ = v
		case v := <-b:
			_ = v
		}
	}
}

// selectDefault spins through a non-blocking select without ever
// checking cancellation.
func selectDefault(ch chan int) {
	for { // want `unbounded loop never polls cancellation`
		select {
		case v := <-ch:
			_ = v
		default:
		}
	}
}

// nestedSelectPoll keeps its Done arm in an inner select; any
// occurrence inside the loop body counts as polling.
func nestedSelectPoll(ctx context.Context, a, b chan int) {
	for {
		select {
		case v := <-a:
			_ = v
		case _, ok := <-b:
			if !ok {
				select {
				case <-ctx.Done():
					return
				default:
				}
			}
		}
	}
}

func (r *run) unbounded(ch chan int) {
	for { // want `unbounded loop never polls cancellation`
		v, ok := <-ch
		if !ok {
			return
		}
		_ = v
	}
}

// spin burns CPU until the deadline on purpose.
// +whirllint:busywait
func spin(deadline func() bool) {
	for deadline() {
	}
}

func busy(deadline func() bool) {
	for deadline() { // want `empty-body busy-wait loop`
	}
}

// bounded loops carry their own termination condition.
func bounded(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
