package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzSARIFEscaping feeds adversarial diagnostic messages and file
// names through the SARIF renderer: whatever the analyzers report —
// quotes, backslashes, control bytes, invalid UTF-8 from a mangled
// source file — the output must stay valid JSON, and valid-UTF-8
// messages must round-trip byte for byte.
func FuzzSARIFEscaping(f *testing.F) {
	f.Add(`plain message`, "internal/core/engine.go")
	f.Add(`quote " backslash \ slash /`, `C:\repo\x.go`)
	f.Add("newline\nand\ttab", "a\"b.go")
	f.Add("control \x00\x01\x1f bytes", "weird\x7f.go")
	f.Add("unicode ↯ ∞ → and \u2028 \u2029", "päth.go")
	f.Add(string([]byte{0xff, 0xfe, 'x'}), string([]byte{0x80}))
	f.Fuzz(func(t *testing.T, message, filename string) {
		diags := []Diagnostic{{
			Analyzer: "lockorder",
			Pos:      token.Position{Filename: filename, Line: 3, Column: 7},
			Message:  message,
		}}
		out, err := SARIF(All(), diags, "", nil)
		if err != nil {
			t.Fatalf("SARIF failed: %v", err)
		}
		var log sarifLog
		if err := json.Unmarshal(out, &log); err != nil {
			t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, out)
		}
		if len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
			t.Fatalf("want 1 run with 1 result, got %+v", log.Runs)
		}
		got := log.Runs[0].Results[0].Message.Text
		// encoding/json replaces invalid UTF-8 with U+FFFD; only valid
		// input is expected back verbatim.
		if utf8.ValidString(message) && got != message {
			t.Fatalf("message did not round-trip:\nin:  %q\nout: %q", message, got)
		}
		if !utf8.ValidString(message) && !utf8.ValidString(got) {
			t.Fatalf("invalid UTF-8 leaked through JSON encoding: %q", got)
		}
	})
}

// TestSARIFRuleSet pins that every registered analyzer publishes a
// rule even when it reported nothing, so code-scanning keeps the rule
// metadata across clean runs.
func TestSARIFRuleSet(t *testing.T) {
	out, err := SARIF(All(), nil, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) != len(All()) {
		t.Fatalf("published %d rules, want %d", len(rules), len(All()))
	}
	var names []string
	for _, r := range rules {
		names = append(names, r.ID)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"deadlinewait", "errflow", "lockorder"} {
		if !strings.Contains(joined, want) {
			t.Errorf("rule %s missing from SARIF driver rules: %s", want, joined)
		}
	}
}
