package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/cfg"
)

// LockOrder detects lock-order deadlocks: it tracks, with a forward
// CFG dataflow per function, which mutexes may be held at every
// program point, records an acquisition edge A→B whenever B is locked
// while A is held, stitches the edges into a global lock-acquisition
// graph through the fact store (so an edge taken inside a callee in
// another package still orders the caller's held locks before the
// callee's), and reports every cycle — two goroutines taking the same
// pair of locks in opposite orders is the deadlock `go test -race`
// cannot see because it needs the unlucky interleaving to happen.
//
// Locks are identified by their guarding structure, not by instance:
// a field `mu` of type T is the lock "(T).mu" wherever the instance
// lives, and a package-level mutex is "pkg.name". Two acquisitions of
// the *same* key are ordered only when they provably touch the same
// instance (same root variable and selector path) — locking
// shards[0].mu then shards[1].mu is not a self-cycle — but locking a
// mutex the function already holds, or calling a function whose
// summary says it will lock it again, is reported as a self-deadlock
// (sync.Mutex is not reentrant).
//
// Methods annotated `// +whirllint:locked` are analyzed with their
// receiver's mutex fields held at entry, matching lockguard's
// convention that every caller already holds the lock.
//
// The escape hatch for a deliberate, externally-serialized ordering is
//
//	// +whirllint:lockorder <justification>
//
// on the function whose acquisition closes the cycle; the
// justification is mandatory.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report lock-acquisition cycles (potential deadlocks) across the interprocedural lock graph",
	Run:  runLockOrder,
}

// LockAcquire is one mutex acquisition in a function summary: the
// canonical lock key, where it happens, and whether it is a read lock.
type LockAcquire struct {
	Key  string `json:"key"`
	Site string `json:"site"`
	Read bool   `json:"read,omitempty"`
}

// LockEdge is one ordered pair in the lock-acquisition graph: To was
// acquired while From was held. Via names the function whose body took
// the edge.
type LockEdge struct {
	From     string `json:"from"`
	FromSite string `json:"fromSite"`
	To       string `json:"to"`
	ToSite   string `json:"toSite"`
	Via      string `json:"via"`
	// pos is the To acquisition's position in the current pass; zero
	// for edges deserialized from facts (not on the wire).
	pos token.Pos
}

// LockFact is the per-function summary lockorder exports: every lock
// the function may acquire (directly or through callees) and every
// acquisition-order edge its body introduces.
type LockFact struct {
	Acquires []LockAcquire `json:"acquires,omitempty"`
	Edges    []LockEdge    `json:"edges,omitempty"`
}

// AFact marks LockFact as a fact type.
func (*LockFact) AFact() {}

func init() { RegisterFactType(new(LockFact)) }

// heldLock is one entry of the dataflow fact: a lock key with the
// acquisition that introduced it (first-seen site kept across merges,
// for deterministic diagnostics).
type heldLock struct {
	site token.Pos
	read bool
	// root pins the instance when it is provable: the object and
	// selector path of the acquisition expression. nil root means the
	// instance is unknown.
	root types.Object
	path string
}

// heldSet maps lock key -> acquisition. Treated as immutable by the
// dataflow; transfer copies on write.
type heldSet map[string]heldLock

// lockCallSite is a call made while locks were held, recorded for the
// interprocedural edge pass once callee summaries are solved.
type lockCallSite struct {
	callee *types.Func
	pos    token.Pos
	held   heldSet
}

// lockFn is one declared function or method under analysis.
type lockFn struct {
	decl  *ast.FuncDecl
	obj   *types.Func
	name  string
	skip  bool   // +whirllint:lockorder escape hatch
	justs string // its justification
	entry heldSet

	acquires []LockAcquire // direct acquisitions
	edges    []LockEdge    // direct (intra-body) edges
	calls    []lockCallSite

	summary   map[string]LockAcquire // transitive acquires, fixpoint
	selfCalls map[*types.Func]bool
}

func runLockOrder(pass *Pass) error {
	fns := collectLockFns(pass)
	if len(fns) == 0 {
		return nil
	}
	for _, fn := range fns {
		analyzeLockFlow(pass, fn)
	}
	solveLockSummaries(pass, fns)

	// Interprocedural edges: a call made with locks held orders every
	// held lock before everything the callee may acquire.
	for _, fn := range fns {
		if fn.skip {
			continue
		}
		for _, call := range fn.calls {
			for _, acq := range calleeAcquires(pass, fns, call.callee) {
				for from, h := range call.held {
					if from == acq.Key {
						// The callee re-acquires a lock the caller holds.
						// Instance identity across the call boundary is
						// unknowable here, so only exclusive locks are
						// certain trouble (RLock+RLock needs a pending
						// writer to deadlock).
						if !h.read || !acq.Read {
							pass.Reportf(call.pos,
								"calling %s while holding %s (acquired at %s): the callee acquires %s again at %s — self-deadlock, sync.Mutex is not reentrant; restructure so the lock is taken once, or annotate the enclosing function %slockorder with a justification",
								funcDisplayName(call.callee), from, shortPos(pass, h.site), acq.Key, acq.Site, annotationPrefix)
						}
						continue
					}
					fn.edges = append(fn.edges, LockEdge{
						From:     from,
						FromSite: shortPos(pass, h.site),
						To:       acq.Key,
						ToSite:   acq.Site,
						Via:      fn.name,
						pos:      call.pos,
					})
				}
			}
		}
	}

	// Assemble the global graph: every edge visible through facts plus
	// this package's fresh ones, then hunt cycles that a fresh edge
	// closes — each cycle is reported exactly once, in the package that
	// completes it.
	var old []LockEdge
	for _, of := range pass.AllObjectFacts() {
		if lf, ok := of.Fact.(*LockFact); ok {
			old = append(old, lf.Edges...)
		}
	}
	var fresh []LockEdge
	for _, fn := range fns {
		fresh = append(fresh, fn.edges...)
	}
	reportLockCycles(pass, fns, old, fresh)

	// Export summaries for downstream packages.
	for _, fn := range fns {
		if fn.obj == nil {
			continue
		}
		fact := &LockFact{Edges: fn.edges}
		keys := make([]string, 0, len(fn.summary))
		for k := range fn.summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fact.Acquires = append(fact.Acquires, fn.summary[k])
		}
		pass.ExportObjectFact(fn.obj, fact)
	}

	// A bare lockorder annotation waives a deadlock gate; the why is
	// mandatory.
	for _, fn := range fns {
		if fn.skip && fn.justs == "" {
			pass.Reportf(fn.decl.Name.Pos(),
				"%slockorder on %s needs a justification on the same line (why is this acquisition order safe?)",
				annotationPrefix, fn.name)
		}
	}
	return nil
}

func collectLockFns(pass *Pass) []*lockFn {
	var fns []*lockFn
	for _, decl := range funcDecls(pass) {
		if decl.Body == nil {
			continue
		}
		obj, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		skip, justs := funcAnnotation(decl, "lockorder")
		fn := &lockFn{
			decl:      decl,
			obj:       obj,
			skip:      skip,
			justs:     justs,
			entry:     heldSet{},
			summary:   make(map[string]LockAcquire),
			selfCalls: make(map[*types.Func]bool),
		}
		if obj != nil {
			fn.name = funcDisplayName(obj)
		} else {
			fn.name = decl.Name.Name
		}
		// A locked-annotated method runs with every caller holding the
		// receiver's mutex, so it is held from the first statement.
		if hasAnnotation(decl, "locked") && decl.Recv != nil {
			for key, h := range receiverMutexes(pass, decl) {
				fn.entry[key] = h
			}
		}
		fns = append(fns, fn)
	}
	return fns
}

// receiverMutexes returns the lock keys of the receiver struct's direct
// sync.Mutex/RWMutex fields, held-at-entry entries for +whirllint:locked.
func receiverMutexes(pass *Pass, decl *ast.FuncDecl) heldSet {
	out := heldSet{}
	if len(decl.Recv.List) != 1 {
		return out
	}
	t := pass.TypesInfo.TypeOf(decl.Recv.List[0].Type)
	if t == nil {
		return out
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return out
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return out
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isNamedType(f.Type(), "sync", "Mutex") || isNamedType(f.Type(), "sync", "RWMutex") {
			key := typeLockKey(named, f.Name())
			out[key] = heldLock{site: decl.Name.Pos(), path: "caller-held (+whirllint:locked)"}
		}
	}
	return out
}

// analyzeLockFlow runs the held-set dataflow over one function and
// fills its direct acquisitions, intra-body edges, self-deadlock
// reports, and call sites.
func analyzeLockFlow(pass *Pass, fn *lockFn) {
	g := cfg.New(fn.decl.Body, nil)
	flow := &cfg.Flow[heldSet]{
		EntryFact: fn.entry,
		Merge:     mergeHeld,
		Equal:     equalHeld,
		Node:      func(n ast.Node, in heldSet) heldSet { return lockTransfer(pass, n, in, nil) },
	}
	in := flow.Forward(g)

	// Re-walk each reached block, replaying the transfer with a sink
	// that records acquisitions, edges, and calls at the exact held-set
	// each occurs under.
	sink := &lockSink{pass: pass, fn: fn}
	for _, b := range g.Blocks {
		state, ok := in[b]
		if !ok {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			state = lockTransfer(pass, n, state, sink)
		}
	}
}

// lockSink collects the events of a replay walk.
type lockSink struct {
	pass *Pass
	fn   *lockFn
}

func (s *lockSink) acquire(pos token.Pos, key string, acq heldLock, held heldSet) {
	s.fn.acquires = append(s.fn.acquires, LockAcquire{
		Key: key, Site: shortPos(s.pass, pos), Read: acq.read,
	})
	if s.fn.skip {
		return
	}
	for from, h := range held {
		if from == key {
			// Same lock key: a self-deadlock only when it is provably the
			// same instance; distinct instances of one type (shard
			// arrays) carry no inherent order.
			if h.root != nil && h.root == acq.root && h.path == acq.path && (!h.read || !acq.read) {
				s.pass.Reportf(pos,
					"%s is locked at %s and locked again here without an intervening unlock — self-deadlock, sync.Mutex is not reentrant",
					h.path, shortPos(s.pass, h.site))
			}
			continue
		}
		s.fn.edges = append(s.fn.edges, LockEdge{
			From:     from,
			FromSite: shortPos(s.pass, h.site),
			To:       key,
			ToSite:   shortPos(s.pass, pos),
			Via:      s.fn.name,
			pos:      pos,
		})
	}
}

func (s *lockSink) call(callee *types.Func, pos token.Pos, held heldSet) {
	if len(held) == 0 {
		return
	}
	copied := make(heldSet, len(held))
	for k, v := range held {
		copied[k] = v
	}
	s.fn.calls = append(s.fn.calls, lockCallSite{callee: callee, pos: pos, held: copied})
	s.fn.selfCalls[callee] = true
}

// lockTransfer is the dataflow transfer for one flat node: Lock/RLock
// adds the lock to the held set (reporting through sink on the replay
// walk), Unlock/RUnlock removes it, and calls with locks held are
// recorded. Deferred statements only evaluate their arguments at the
// defer site — a deferred Unlock releases at exit, so it must not
// clear the lock mid-body.
func lockTransfer(pass *Pass, n ast.Node, in heldSet, sink *lockSink) heldSet {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return in
	}
	out := in
	cfg.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			// Plain function call f(...): record for interprocedural
			// edges when locks are held.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && sink != nil {
				if fnObj, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
					sink.call(fnObj, call.Pos(), out)
				}
			}
			return true
		}
		fnObj, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if fnObj == nil {
			return true
		}
		if kind := mutexMethod(fnObj); kind != "" {
			key, root, path := lockKey(pass, sel.X)
			if key == "" {
				return true
			}
			switch kind {
			case "Lock", "RLock":
				acq := heldLock{site: call.Pos(), read: kind == "RLock", root: root, path: path}
				if sink != nil {
					sink.acquire(call.Pos(), key, acq, out)
				}
				copied := make(heldSet, len(out)+1)
				for k, v := range out {
					copied[k] = v
				}
				if _, dup := copied[key]; !dup {
					copied[key] = acq
				}
				out = copied
			case "Unlock", "RUnlock":
				if _, held := out[key]; held {
					copied := make(heldSet, len(out))
					for k, v := range out {
						if k != key {
							copied[k] = v
						}
					}
					out = copied
				}
			}
			return true
		}
		if sink != nil {
			sink.call(fnObj, call.Pos(), out)
		}
		return true
	})
	return out
}

// mutexMethod classifies a callee as one of the four sync lock
// operations when its receiver is sync.Mutex or sync.RWMutex.
func mutexMethod(fn *types.Func) string {
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex") {
		return fn.Name()
	}
	return ""
}

// lockKey canonicalizes the receiver expression of a Lock call into a
// cross-package lock identity:
//
//	c.mu.Lock()            -> "pkg.(T).mu"   (T the named type owning mu)
//	globalMu.Lock()        -> "pkg.globalMu" (package-level var)
//	c.Lock()               -> "pkg.(T)"      (T embeds the mutex)
//
// root and path pin the concrete instance when the chain bottoms out in
// a simple variable, for exact self-deadlock detection; root is nil
// when the instance is unknowable (map/slice elements, call results).
func lockKey(pass *Pass, expr ast.Expr) (key string, root types.Object, path string) {
	expr = ast.Unparen(expr)
	path = types.ExprString(expr)
	root = chainRoot(pass, expr)

	switch e := expr.(type) {
	case *ast.SelectorExpr:
		// Owner of the final field determines the key.
		ot := pass.TypesInfo.TypeOf(e.X)
		if named := derefNamed(ot); named != nil && named.Obj().Pkg() != nil {
			return typeLockKey(named, e.Sel.Name), root, path
		}
		// No named owner: fall back to a package-level root if any.
		if root != nil && isPackageLevel(root) {
			return strippedPath(root.Pkg().Path()) + "." + root.Name() + "." + e.Sel.Name, root, path
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return "", nil, path
		}
		if isPackageLevel(obj) {
			return strippedPath(obj.Pkg().Path()) + "." + obj.Name(), obj, path
		}
		// Local or receiver with a promoted Lock: key by its named type
		// when that type is the package's own (embedding case). A bare
		// local sync.Mutex has no cross-function identity.
		if named := derefNamed(pass.TypesInfo.TypeOf(e)); named != nil && named.Obj().Pkg() != nil {
			if named.Obj().Pkg().Path() != "sync" {
				return typeLockKey(named, ""), obj, path
			}
		}
	case *ast.IndexExpr:
		k, r, _ := lockKey(pass, e.X)
		return k, r, path
	case *ast.StarExpr:
		return lockKey(pass, e.X)
	}
	return "", nil, path
}

func typeLockKey(named *types.Named, field string) string {
	key := strippedPath(named.Obj().Pkg().Path()) + ".(" + named.Obj().Name() + ")"
	if field != "" {
		key += "." + field
	}
	return key
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// chainRoot resolves the variable at the bottom of a selector/index
// chain; nil when the chain roots in a call or literal.
func chainRoot(pass *Pass, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func mergeHeld(a, b heldSet) heldSet {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(heldSet, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func equalHeld(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// solveLockSummaries computes each function's transitive acquire set:
// its direct acquisitions plus everything its callees may acquire,
// iterated to fixpoint across the package (imported facts seed the
// out-of-package callees).
func solveLockSummaries(pass *Pass, fns []*lockFn) {
	byObj := make(map[*types.Func]*lockFn, len(fns))
	for _, fn := range fns {
		for _, acq := range fn.acquires {
			if _, ok := fn.summary[acq.Key]; !ok {
				fn.summary[acq.Key] = acq
			}
		}
		if fn.obj != nil {
			byObj[fn.obj] = fn
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			for callee := range fn.selfCalls {
				var acquires []LockAcquire
				if local := byObj[callee]; local != nil {
					for _, acq := range local.summary {
						acquires = append(acquires, acq)
					}
				} else {
					var fact LockFact
					if pass.ImportObjectFact(callee, &fact) {
						acquires = fact.Acquires
					}
				}
				for _, acq := range acquires {
					if _, ok := fn.summary[acq.Key]; !ok {
						fn.summary[acq.Key] = acq
						changed = true
					}
				}
			}
		}
	}
}

// calleeAcquires resolves what a call may lock: the local summary for
// in-package callees, the imported fact otherwise.
func calleeAcquires(pass *Pass, fns []*lockFn, callee *types.Func) []LockAcquire {
	for _, fn := range fns {
		if fn.obj == callee {
			out := make([]LockAcquire, 0, len(fn.summary))
			keys := make([]string, 0, len(fn.summary))
			for k := range fn.summary {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				out = append(out, fn.summary[k])
			}
			return out
		}
	}
	var fact LockFact
	if pass.ImportObjectFact(callee, &fact) {
		return fact.Acquires
	}
	return nil
}

// reportLockCycles finds every cycle in old ∪ fresh that uses at least
// one fresh edge and reports it at the fresh edge's acquisition site.
func reportLockCycles(pass *Pass, fns []*lockFn, old, fresh []LockEdge) {
	adj := make(map[string][]LockEdge)
	seenEdge := make(map[string]bool)
	addEdge := func(e LockEdge) {
		sig := e.From + "\x00" + e.To + "\x00" + e.FromSite + "\x00" + e.ToSite
		if seenEdge[sig] {
			return
		}
		seenEdge[sig] = true
		adj[e.From] = append(adj[e.From], e)
	}
	for _, e := range old {
		addEdge(e)
	}
	for _, e := range fresh {
		addEdge(e)
	}

	reported := make(map[string]bool)
	for _, e := range fresh {
		// A fresh edge From→To closes a cycle iff To already reaches
		// From. BFS keeps the reported chain shortest.
		back := shortestPath(adj, e.To, e.From)
		if back == nil {
			continue
		}
		cycleKeys := []string{e.From, e.To}
		for _, be := range back {
			cycleKeys = append(cycleKeys, be.To)
		}
		sort.Strings(cycleKeys)
		sig := strings.Join(uniqueStrings(cycleKeys), "→")
		if reported[sig] {
			continue
		}
		reported[sig] = true

		var chain strings.Builder
		for _, be := range back {
			fmt.Fprintf(&chain, "; %s→%s (%s held at %s, %s acquired at %s, in %s)",
				be.From, be.To, be.From, be.FromSite, be.To, be.ToSite, be.Via)
		}
		pos := lockEdgePos(pass, fns, e)
		pass.Reportf(pos,
			"lock-order cycle: %s is acquired here while holding %s (held since %s), but the reverse order also exists%s — two goroutines taking these locks concurrently can deadlock; pick one global order, or annotate the function whose acquisition closes the cycle %slockorder with a justification",
			e.To, e.From, e.FromSite, chain.String(), annotationPrefix)
	}
}

// lockEdgePos recovers a reportable position for a fresh edge: the
// exact acquisition when the edge was built this pass, else the
// originating function's declaration.
func lockEdgePos(pass *Pass, fns []*lockFn, e LockEdge) token.Pos {
	if e.pos.IsValid() {
		return e.pos
	}
	for _, fn := range fns {
		if fn.name == e.Via {
			return fn.decl.Name.Pos()
		}
	}
	if len(fns) > 0 {
		return fns[0].decl.Name.Pos()
	}
	return token.NoPos
}

func shortestPath(adj map[string][]LockEdge, from, to string) []LockEdge {
	type step struct {
		key  string
		prev *step
		edge LockEdge
	}
	visited := map[string]bool{from: true}
	queue := []*step{{key: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.key] {
			if visited[e.To] {
				continue
			}
			next := &step{key: e.To, prev: cur, edge: e}
			if e.To == to {
				var path []LockEdge
				for s := next; s.prev != nil; s = s.prev {
					path = append(path, s.edge)
				}
				// Reverse into from→to order.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			visited[e.To] = true
			queue = append(queue, next)
		}
	}
	return nil
}

func uniqueStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// shortPos renders a position compactly (basename:line:col) for
// embedding in fact sites and diagnostics.
func shortPos(pass *Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}
