package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/cfg"
)

// DeadlineWait reports blocking operations in context-aware functions
// that can outlive the context's deadline. A function that takes a
// context.Context advertises that callers can bound or cancel it; a
// bare channel send or receive, a WaitGroup/Cond Wait, a select with
// neither a default nor a ctx case, or an unbounded loop that never
// touches the context breaks that contract — the caller's deadline
// expires and the goroutine keeps sitting on the operation. In
// whirlpoold that shape turns one slow shard into a stuck query: the
// executor's deadline fires, the caller gives up, and the worker
// blocks forever on a channel nobody reads anymore.
//
// The analysis is a forward must-dataflow over the function's CFG:
// the fact is "every path from entry to here has consulted the
// context" — called Done/Err/Deadline, passed a ctx value into a call
// (delegation: cancelling the ctx unblocks whatever we wait on), or
// captured it in a function literal. A blocking operation is reported
// only when some path reaches it without any consultation and the
// operation itself does not involve a ctx value. That keeps the
// fan-out/Wait pattern clean — runPooled hands runCtx to every worker
// before wg.Wait(), so cancellation drains the pool and Wait returns.
//
// Functions that block deliberately (a shutdown rendezvous, a
// generator driven solely by channel close) are annotated
//
//	// +whirllint:nodeadline <justification>
//
// on the declaration; the justification is mandatory.
var DeadlineWait = &Analyzer{
	Name: "deadlinewait",
	Doc:  "report blocking operations that a context-aware function can sit on after its context's deadline has expired",
	Run:  runDeadlineWait,
}

func runDeadlineWait(pass *Pass) error {
	for _, decl := range funcDecls(pass) {
		if decl.Body == nil {
			continue
		}
		ok, justif := funcAnnotation(decl, "nodeadline")
		if ok {
			if justif == "" {
				pass.Reportf(decl.Name.Pos(),
					"%snodeadline on %s needs a justification on the same line (why may this block past the deadline?)",
					annotationPrefix, decl.Name.Name)
			}
			continue
		}
		if params := ctxParams(pass, decl.Type); len(params) > 0 {
			analyzeDeadlineWait(pass, decl.Body)
		}
		// Function literals with their own ctx parameter (worker bodies,
		// callbacks) get their own graphs. An annotated declaration
		// (handled above) covers everything inside it.
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				if params := ctxParams(pass, lit.Type); len(params) > 0 {
					analyzeDeadlineWait(pass, lit.Body)
				}
			}
			return true
		})
	}
	return nil
}

// ctxParams returns the identifiers of parameters typed
// context.Context.
func ctxParams(pass *Pass, ft *ast.FuncType) []*ast.Ident {
	var out []*ast.Ident
	if ft.Params == nil {
		return out
	}
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isNamedType(obj.Type(), "context", "Context") {
				out = append(out, name)
			}
		}
	}
	return out
}

type deadlineWait struct {
	pass *Pass
	// ctxObjs is every context.Context-typed variable in the function:
	// the parameter plus anything derived from it (WithCancel results
	// and the like). Touching any of them counts as consulting.
	ctxObjs map[types.Object]bool
	// selectOf maps each comm statement to its enclosing select, so a
	// send/receive that is a select arm is judged as part of the select,
	// not as a bare blocking op.
	selectOf map[ast.Node]*ast.SelectStmt
	// safeSelect marks selects that cannot hang past the deadline: they
	// have a default clause or an arm involving a ctx value.
	safeSelect map[*ast.SelectStmt]bool
	// rangeChan maps the range expression node of a channel-range loop
	// (the only node the CFG emits for it) back to the RangeStmt.
	rangeChan map[ast.Node]*ast.RangeStmt
}

func analyzeDeadlineWait(pass *Pass, body *ast.BlockStmt) {
	dw := &deadlineWait{
		pass:       pass,
		ctxObjs:    make(map[types.Object]bool),
		selectOf:   make(map[ast.Node]*ast.SelectStmt),
		safeSelect: make(map[*ast.SelectStmt]bool),
		rangeChan:  make(map[ast.Node]*ast.RangeStmt),
	}
	dw.index(body)

	g := cfg.New(body, nil)
	flow := &cfg.Flow[bool]{
		EntryFact: false,
		Merge:     func(a, b bool) bool { return a && b },
		Equal:     func(a, b bool) bool { return a == b },
		Node: func(n ast.Node, in bool) bool {
			return in || dw.mentionsCtx(n)
		},
	}
	in := flow.Forward(g)

	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	reportedSelect := make(map[*ast.SelectStmt]bool)
	for _, b := range g.Blocks {
		state, ok := in[b]
		if !ok {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			if !state {
				if pos, msg := dw.blockingOp(n, reportedSelect); msg != "" {
					findings = append(findings, finding{pos, msg})
				}
			}
			state = state || dw.mentionsCtx(n)
		}
	}
	// Unbounded loops that provably never exit and never touch a ctx
	// value run forever no matter what the deadline says; path state is
	// irrelevant, so they are checked on the syntax directly.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed separately (if it takes a ctx at all)
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if dw.mentionsCtx(loop.Body) || loopCanEscape(loop.Body, true) {
			return true
		}
		findings = append(findings, finding{loop.Pos(),
			"unbounded for-loop never consults ctx and has no exit"})
		return true
	})

	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	seen := make(map[token.Pos]bool)
	for _, f := range findings {
		if seen[f.pos] {
			continue
		}
		seen[f.pos] = true
		pass.Reportf(f.pos,
			"%s, but this function takes a context — after the deadline expires this blocks forever; select on ctx.Done(), pass ctx to the other side, or annotate the function %snodeadline with a justification",
			f.msg, annotationPrefix)
	}
}

// index pre-walks the body once: collects every ctx-typed variable,
// maps select arms to their selects, and classifies selects as safe.
func (dw *deadlineWait) index(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := dw.pass.TypesInfo.Defs[n]
			if obj == nil {
				obj = dw.pass.TypesInfo.Uses[n]
			}
			if obj != nil && isNamedType(obj.Type(), "context", "Context") {
				dw.ctxObjs[obj] = true
			}
		case *ast.SelectStmt:
			safe := false
			for _, c := range n.Body.List {
				comm := c.(*ast.CommClause)
				if comm.Comm == nil {
					safe = true // default clause: non-blocking
					continue
				}
				dw.selectOf[comm.Comm] = n
			}
			dw.safeSelect[n] = safe
		case *ast.RangeStmt:
			if t := dw.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					dw.rangeChan[n.X] = n
				}
			}
		}
		return true
	})
	// Second pass: an arm that involves a ctx value (case <-ctx.Done())
	// makes its select safe. ctxObjs is complete by now.
	for comm, sel := range dw.selectOf {
		if dw.mentionsCtx(comm) {
			dw.safeSelect[sel] = true
		}
	}
}

// mentionsCtx reports whether n references any ctx-typed variable,
// including inside nested function literals — handing ctx to a
// goroutine body counts as consultation.
func (dw *deadlineWait) mentionsCtx(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := dw.pass.TypesInfo.Uses[id]; obj != nil && dw.ctxObjs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// blockingOp classifies one flat CFG node. It returns a position and
// description when the node blocks on an external event without
// involving a ctx value, or "" otherwise.
func (dw *deadlineWait) blockingOp(n ast.Node, reportedSelect map[*ast.SelectStmt]bool) (token.Pos, string) {
	// A select arm stands for the whole select: judge the select once.
	if sel, ok := dw.selectOf[n]; ok {
		if dw.safeSelect[sel] || reportedSelect[sel] {
			return token.NoPos, ""
		}
		reportedSelect[sel] = true
		return sel.Pos(), "this select has no default clause and no ctx arm"
	}
	if dw.mentionsCtx(n) {
		return token.NoPos, "" // e.g. <-ctx.Done() itself
	}
	if rng, ok := dw.rangeChan[n]; ok {
		return rng.Pos(), "ranging over a channel blocks until the sender closes it"
	}
	var pos token.Pos
	var msg string
	cfg.Inspect(n, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			pos, msg = n.Arrow, "this channel send blocks until a receiver is ready"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, msg = n.OpPos, "this channel receive blocks until a sender is ready"
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				t := dw.pass.TypesInfo.TypeOf(sel.X)
				if isNamedType(t, "sync", "WaitGroup") {
					pos, msg = n.Pos(), "WaitGroup.Wait blocks until every worker calls Done"
				} else if isNamedType(t, "sync", "Cond") {
					pos, msg = n.Pos(), "Cond.Wait blocks until another goroutine signals"
				}
			}
		}
		return true
	})
	return pos, msg
}

// loopCanEscape reports whether control can leave the loop whose body
// is given: a return, a break bound to this loop, a labeled branch or
// goto (assumed outward), or a diverging call. breakable tracks
// whether an unlabeled break at the current nesting level still binds
// our loop.
func loopCanEscape(n ast.Node, breakable bool) bool {
	switch n := n.(type) {
	case nil:
		return false
	case *ast.FuncLit:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if n.Label != nil || n.Tok == token.GOTO {
			return true // assume it targets outside the loop
		}
		return n.Tok == token.BREAK && breakable
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		return false
	case *ast.BlockStmt:
		for _, s := range n.List {
			if loopCanEscape(s, breakable) {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		return loopCanEscape(n.Body, breakable) || loopCanEscape(n.Else, breakable)
	case *ast.LabeledStmt:
		return loopCanEscape(n.Stmt, breakable)
	case *ast.ForStmt:
		return loopCanEscape(n.Body, false)
	case *ast.RangeStmt:
		return loopCanEscape(n.Body, false)
	case *ast.SwitchStmt:
		return loopBodyEscapes(n.Body)
	case *ast.TypeSwitchStmt:
		return loopBodyEscapes(n.Body)
	case *ast.SelectStmt:
		return loopBodyEscapes(n.Body)
	default:
		return false
	}
}

// loopBodyEscapes scans switch/select clause bodies; unlabeled break
// inside them binds the switch, not our loop.
func loopBodyEscapes(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		for _, s := range stmts {
			if loopCanEscape(s, false) {
				return true
			}
		}
	}
	return false
}
