package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/cfg"
)

// ErrFlow reports error values that are assigned and then dropped: a
// definition of an error-typed variable that, on some path through the
// function, reaches a return (or the next redefinition) without ever
// being read — not compared against nil, not returned, not logged,
// not wrapped, not even assigned onward. The Go compiler only rejects
// a := variable that is never used at all; the shapes that actually
// ship bugs — an err checked in one branch but not the other, an err
// overwritten by the next call's result, a named result clobbered
// with nil on one path — survive compilation, and in whirlpoold they
// turn failed writes into empty 200s.
//
// The analysis is a forward may-dataflow over the function's CFG:
// each assignment whose source could produce a non-nil error starts a
// pending definition; any read of the variable retires it; a pending
// definition reaching the exit or a redefinition is reported at the
// assignment. Variables captured by a closure or address-taken are
// not tracked (the closure may check them later); assigning the
// literal nil retires a pending definition without starting one.
//
// Deliberately dropped errors are annotated
//
//	// +whirllint:errok <justification>
//
// on the enclosing function; the justification is mandatory.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "report error values whose last assignment can reach a return, or be overwritten, without being checked",
	Run:  runErrFlow,
}

func runErrFlow(pass *Pass) error {
	for _, decl := range funcDecls(pass) {
		if decl.Body == nil {
			continue
		}
		ok, justif := funcAnnotation(decl, "errok")
		if ok {
			if justif == "" {
				pass.Reportf(decl.Name.Pos(),
					"%serrok on %s needs a justification on the same line (why is dropping this error acceptable?)",
					annotationPrefix, decl.Name.Name)
			}
			continue
		}
		analyzeErrFlow(pass, decl.Body, namedErrorResults(pass, decl))
		// Nested function literals get their own graphs; an errok on the
		// enclosing declaration (handled above) covers them too.
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				analyzeErrFlow(pass, lit.Body, litErrorResults(pass, lit))
			}
			return true
		})
	}
	return nil
}

// errState maps a tracked variable to its pending (unobserved)
// definition site. Immutable under the dataflow; transfer copies.
type errState map[types.Object]token.Pos

func analyzeErrFlow(pass *Pass, body *ast.BlockStmt, namedResults map[types.Object]bool) {
	tracked := trackedErrVars(pass, body)
	for obj := range namedResults {
		if isErrorType(obj.Type()) {
			tracked[obj] = true
		}
	}
	if len(tracked) == 0 {
		return
	}
	// Variables a nested closure reads or whose address escapes may be
	// checked on a path the CFG cannot see; drop them.
	for obj := range escapedErrVars(pass, body) {
		delete(tracked, obj)
	}
	if len(tracked) == 0 {
		return
	}

	ef := &errFlow{pass: pass, tracked: tracked, namedResults: namedResults}
	g := cfg.New(body, nil)
	flow := &cfg.Flow[errState]{
		EntryFact: errState{},
		Merge:     ef.merge,
		Equal:     equalErrState,
		Node:      func(n ast.Node, in errState) errState { return ef.transfer(n, in, nil) },
	}
	in := flow.Forward(g)

	reports := make(map[token.Pos]string)
	for _, b := range g.Blocks {
		state, okb := in[b]
		if !okb {
			continue
		}
		for _, n := range b.Nodes {
			state = ef.transfer(n, state, reports)
		}
	}
	// Whatever is still pending at exit was dropped on some returning
	// path. Pending named results are fine: falling through a bare
	// return propagates them to the caller.
	if exit, okb := in[g.Exit]; okb {
		for obj, pos := range exit {
			if namedResults[obj] {
				continue
			}
			if _, dup := reports[pos]; !dup {
				reports[pos] = "reaches a return without being checked"
			}
		}
	}

	positions := make([]token.Pos, 0, len(reports))
	for pos := range reports {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		pass.Reportf(pos,
			"error assigned here %s — handle it, return it, or annotate the enclosing function %serrok with a justification",
			reports[pos], annotationPrefix)
	}
}

type errFlow struct {
	pass         *Pass
	tracked      map[types.Object]bool
	namedResults map[types.Object]bool
}

func (ef *errFlow) merge(a, b errState) errState {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(errState, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if cur, okb := out[k]; !okb || v < cur {
			out[k] = v // keep the earliest site for determinism
		}
	}
	return out
}

func equalErrState(a, b errState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, okb := b[k]; !okb || bv != v {
			return false
		}
	}
	return true
}

// transfer applies one flat node: reads retire pending definitions,
// assignments start (or, for nil, retire) them. When reports is
// non-nil (the replay walk), a redefinition of a still-pending
// variable records the overwritten definition.
func (ef *errFlow) transfer(n ast.Node, in errState, reports map[token.Pos]string) errState {
	out := in
	kill := func(obj types.Object) {
		if _, okb := out[obj]; !okb {
			return
		}
		copied := make(errState, len(out))
		for k, v := range out {
			if k != obj {
				copied[k] = v
			}
		}
		out = copied
	}
	uses := func(e ast.Node, skip map[*ast.Ident]bool) {
		if e == nil {
			return
		}
		cfg.Inspect(e, func(node ast.Node) bool {
			id, okb := node.(*ast.Ident)
			if !okb || skip[id] {
				return true
			}
			if obj := ef.pass.TypesInfo.Uses[id]; obj != nil && ef.tracked[obj] {
				kill(obj)
			}
			return true
		})
	}

	switch n := n.(type) {
	case *ast.AssignStmt:
		// Assigned idents are definitions, not reads; everything else in
		// the statement is a read.
		targets := make(map[*ast.Ident]bool)
		for _, lhs := range n.Lhs {
			if id, okb := ast.Unparen(lhs).(*ast.Ident); okb {
				targets[id] = true
			}
		}
		for _, rhs := range n.Rhs {
			uses(rhs, nil)
		}
		for _, lhs := range n.Lhs {
			if id, okb := ast.Unparen(lhs).(*ast.Ident); okb {
				_ = id
				continue
			}
			uses(lhs, nil) // x.f = ..., a[i] = ...: reads of x, a, i
		}
		for i, lhs := range n.Lhs {
			id, okb := ast.Unparen(lhs).(*ast.Ident)
			if !okb || id.Name == "_" {
				continue
			}
			obj := ef.defTarget(id)
			if obj == nil || !ef.tracked[obj] {
				continue
			}
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0]
			}
			if prev, pending := out[obj]; pending && reports != nil {
				if _, dup := reports[prev]; !dup {
					reports[prev] = "is overwritten below before being checked"
				}
			}
			kill(obj)
			if rhs != nil && !isNilExpr(ef.pass, rhs) {
				copied := make(errState, len(out)+1)
				for k, v := range out {
					copied[k] = v
				}
				copied[obj] = id.Pos()
				out = copied
			}
		}

	case *ast.DeclStmt:
		if gd, okb := n.Decl.(*ast.GenDecl); okb {
			for _, spec := range gd.Specs {
				vs, okb := spec.(*ast.ValueSpec)
				if !okb {
					continue
				}
				for _, v := range vs.Values {
					uses(v, nil)
				}
				if len(vs.Values) == 0 {
					continue // zero value: nothing pending
				}
				for _, name := range vs.Names {
					obj := ef.pass.TypesInfo.Defs[name]
					if obj == nil || !ef.tracked[obj] {
						continue
					}
					copied := make(errState, len(out)+1)
					for k, v := range out {
						copied[k] = v
					}
					copied[obj] = name.Pos()
					out = copied
				}
			}
		}

	case *ast.ReturnStmt:
		if len(n.Results) == 0 {
			// Bare return: named results propagate to the caller.
			for obj := range ef.namedResults {
				kill(obj)
			}
		} else {
			uses(n, nil)
		}

	default:
		uses(n, nil)
	}
	return out
}

// defTarget resolves the object an assigned identifier binds: a fresh
// declaration (:=) or an existing variable (=).
func (ef *errFlow) defTarget(id *ast.Ident) types.Object {
	if obj := ef.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return ef.pass.TypesInfo.Uses[id]
}

// trackedErrVars collects the error-typed variables declared in the
// body. Variables a closure merely assigns (its free variables) are
// declared outside and excluded: their later reads happen beyond this
// graph.
func trackedErrVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	consider := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil || !isErrorType(obj.Type()) {
			return
		}
		if v, okb := obj.(*types.Var); !okb || v.IsField() || isPackageLevel(obj) {
			return
		}
		out[obj] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own graph
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, okb := ast.Unparen(lhs).(*ast.Ident); okb {
					consider(id)
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				consider(name)
			}
		}
		return true
	})
	return out
}

// escapedErrVars finds error variables a nested closure references or
// whose address is taken: their reads can happen outside the enclosing
// function's control flow.
func escapedErrVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Uses[id]; obj != nil && isErrorType(obj.Type()) {
			out[obj] = true
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil && isErrorType(obj.Type()) {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, okb := inner.(*ast.Ident); okb {
					mark(id)
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, okb := ast.Unparen(n.X).(*ast.Ident); okb {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}

// namedErrorResults returns the declared function's named result
// variables (bare returns propagate them).
func namedErrorResults(pass *Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if decl.Type.Results == nil {
		return out
	}
	for _, f := range decl.Type.Results.List {
		for _, name := range f.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func litErrorResults(pass *Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if lit.Type.Results == nil {
		return out
	}
	for _, f := range lit.Type.Results.List {
		for _, name := range f.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// isErrorType reports whether t is exactly the built-in error
// interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, okb := pass.TypesInfo.Types[e]
	return okb && tv.IsNil()
}
