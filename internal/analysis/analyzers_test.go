package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestAnalyzers runs every analyzer over its golden testdata package:
// seeded violations must be reported (matching the `// want` patterns)
// and clean code must stay silent.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		name     string
		analyzer *analysis.Analyzer
	}{
		{"arenaescape", analysis.ArenaEscape},
		{"atomicfield", analysis.AtomicField},
		{"hotalloc", analysis.HotAlloc},
		{"lockguard", analysis.LockGuard},
		{"floatscore", analysis.FloatScore},
		{"goroutineleak", analysis.GoroutineLeak},
		{"ctxpoll", analysis.CtxPoll},
		{"deadlinewait", analysis.DeadlineWait},
		{"errflow", analysis.ErrFlow},
		{"lockorder", analysis.LockOrder},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.analyzer.Name != tt.name {
				t.Fatalf("analyzer name = %q, want %q", tt.analyzer.Name, tt.name)
			}
			analysistest.Run(t, filepath.Join("testdata", "src", tt.name), tt.analyzer)
		})
	}
}

// TestRegistry pins the suite contents so a new analyzer cannot be
// added without wiring it into All (and thus whirlpool-lint).
func TestRegistry(t *testing.T) {
	var names []string
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incomplete", a)
		}
		names = append(names, a.Name)
	}
	got := strings.Join(names, ",")
	want := "arenaescape,atomicfield,ctxpoll,deadlinewait,errflow,floatscore,goroutineleak,hotalloc,lockguard,lockorder"
	if got != want {
		t.Fatalf("All() = %s, want %s", got, want)
	}
}

// TestSuiteCleanOnRepo is the acceptance gate: the analyzers must find
// nothing in the repo's own production code.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.Load("repro/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Fatalf("testdata package %s leaked into repro/...", pkg.Path)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
	diags, err := analysis.Run(analysis.All(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("lint regression: %s", d)
	}
}
