package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one loaded, parsed and type-checked target package.
type Package struct {
	// Path is the import path. For a test variant it is the bracketed
	// form go list uses ("repro/internal/core [repro/internal/core.test]");
	// PkgPath strips the brackets.
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds any type-checking problems. Analyzer results on
	// an ill-typed package are best-effort.
	TypeErrors []error
	// LoadErrors holds problems discovered before type-checking: go
	// list package errors (no Go files, unresolvable imports) and
	// parse failures. A package with load errors is still returned —
	// never dropped, never a panic — so callers can report it; Files
	// and Types hold whatever was salvaged.
	LoadErrors []error
}

// PkgPath is the package's import path with any test-variant bracket
// suffix removed: the path under which other packages import it.
func (p *Package) PkgPath() string { return strippedPath(p.Path) }

// strippedPath removes go list's test-variant suffix:
// "repro/internal/core [repro/internal/core.test]" -> "repro/internal/core".
func strippedPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Error      *struct{ Err string }
}

// loader type-checks a dependency graph produced by `go list -deps`.
// Dependencies are checked once each with function bodies ignored;
// target packages get full syntax, comments and types.Info.
type loader struct {
	fset  *token.FileSet
	metas map[string]*listPkg
	deps  map[string]*types.Package
	busy  map[string]bool
}

// Load runs `go list -deps` on the patterns and returns the matched
// (non-dependency) packages, parsed and type-checked, in dependency
// order (imported packages before their importers). Test files are
// excluded; use LoadTests to include them.
func Load(patterns ...string) ([]*Package, error) {
	return load(false, patterns)
}

// LoadTests is Load with each target's test files included: in-package
// _test.go files are compiled into the package itself (go list's test
// variant) and external _test packages are returned as their own
// targets, so the analyzers see exactly the code `go test` builds.
// Generated test-main packages (import path ending in ".test") are
// synthetic and skipped.
func LoadTests(patterns ...string) ([]*Package, error) {
	return load(true, patterns)
}

func load(tests bool, patterns []string) ([]*Package, error) {
	args := []string{
		"list", "-e",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Standard,DepOnly,ForTest,Error",
		"-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(append(args, "--"), patterns...)
	cmd := exec.Command("go", args...)
	// Cgo off: every stdlib package the tool touches then has a pure-Go
	// file set that go/types can check from source, offline.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	ld := &loader{
		fset:  token.NewFileSet(),
		metas: make(map[string]*listPkg),
		deps:  make(map[string]*types.Package),
		busy:  make(map[string]bool),
	}
	var targets []*listPkg
	hasVariant := make(map[string]bool) // plain path -> in-package test variant listed
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		m := new(listPkg)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		ld.metas[m.ImportPath] = m
		if m.DepOnly {
			continue
		}
		// Generated test mains (path "p.test") are synthetic harness
		// code in the build cache, not user code.
		if strings.HasSuffix(m.ImportPath, ".test") {
			continue
		}
		if m.ForTest != "" && strippedPath(m.ImportPath) == m.ForTest {
			// In-package test variant: production files + _test.go files
			// compiled together. It subsumes the plain package.
			hasVariant[m.ForTest] = true
		}
		targets = append(targets, m)
	}

	var pkgs []*Package
	for _, m := range targets {
		if hasVariant[m.ImportPath] {
			continue // the test variant covers this package's files
		}
		pkg, err := ld.check(m)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sortByDeps(pkgs, ld.metas)
	return pkgs, nil
}

// sortByDeps orders targets so that every package precedes the packages
// that import it, treating a test variant as standing in for the plain
// package it covers. Facts exported while analyzing a package are then
// always available to its importers (see facts.go). Test-only import
// edges can collapse into apparent cycles (p's tests import q, q
// imports p); members of such cycles keep their original relative
// order.
func sortByDeps(pkgs []*Package, metas map[string]*listPkg) {
	// Representative target for each plain path.
	rep := make(map[string]int, len(pkgs))
	for i, p := range pkgs {
		rep[p.PkgPath()] = i
	}
	indegree := make([]int, len(pkgs))
	dependents := make([][]int, len(pkgs))
	for i, p := range pkgs {
		m := metas[p.Path]
		if m == nil {
			continue
		}
		for _, imp := range m.Imports {
			j, ok := rep[strippedPath(imp)]
			if !ok || j == i {
				continue
			}
			dependents[j] = append(dependents[j], i)
			indegree[i]++
		}
	}
	order := make([]*Package, 0, len(pkgs))
	emitted := make([]bool, len(pkgs))
	// Kahn's algorithm, scanning in original (go list) order for
	// determinism; any cycle remainder flushes in original order.
	for remaining := len(pkgs); remaining > 0; {
		progress := false
		for i, p := range pkgs {
			if emitted[i] || indegree[i] > 0 {
				continue
			}
			emitted[i] = true
			order = append(order, p)
			for _, d := range dependents[i] {
				indegree[d]--
			}
			remaining--
			progress = true
		}
		if !progress {
			for i, p := range pkgs {
				if !emitted[i] {
					emitted[i] = true
					order = append(order, p)
					remaining--
				}
			}
		}
	}
	copy(pkgs, order)
}

// check fully type-checks one target package. Broken packages — a go
// list error (no Go files, bad imports) or files that fail to parse —
// come back with LoadErrors set and whatever syntax and types survived,
// so a degenerate input is reported, never a crash.
func (ld *loader) check(m *listPkg) (*Package, error) {
	pkg := &Package{
		Path: m.ImportPath,
		Name: m.Name,
		Dir:  m.Dir,
		Fset: ld.fset,
	}
	if m.Error != nil {
		pkg.LoadErrors = append(pkg.LoadErrors, fmt.Errorf("%s: %s", m.ImportPath, strings.TrimSpace(m.Error.Err)))
	}
	files, parseErrs := ld.parse(m, parser.ParseComments)
	pkg.Files = files
	pkg.LoadErrors = append(pkg.LoadErrors, parseErrs...)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg.Info = info
	conf := &types.Config{
		Importer:                 &mapImporter{ld: ld, importMap: m.ImportMap},
		Sizes:                    types.SizesFor("gc", runtime.GOARCH),
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	pkg.Types, _ = conf.Check(m.ImportPath, ld.fset, files, info)
	return pkg, nil
}

// dep type-checks a dependency (bodies ignored), memoized.
func (ld *loader) dep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.deps[path]; ok {
		return p, nil
	}
	m := ld.metas[path]
	if m == nil {
		return nil, fmt.Errorf("package %s not in go list -deps output", path)
	}
	if ld.busy[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.busy[path] = true
	defer delete(ld.busy, path)

	files, parseErrs := ld.parse(m, 0)
	if len(parseErrs) > 0 {
		return nil, parseErrs[0]
	}
	conf := &types.Config{
		Importer:                 &mapImporter{ld: ld, importMap: m.ImportMap},
		Sizes:                    types.SizesFor("gc", runtime.GOARCH),
		FakeImportC:              true,
		IgnoreFuncBodies:         true,
		DisableUnusedImportCheck: true,
		// Dependencies only need a usable exported API; tolerate noise.
		Error: func(error) {},
	}
	p, _ := conf.Check(path, ld.fset, files, nil)
	ld.deps[path] = p
	return p, nil
}

// parse parses the package's files, collecting (not aborting on) per-
// file failures: a syntax error in one file still yields the others,
// plus whatever partial AST the parser salvaged from the broken one.
func (ld *loader) parse(m *listPkg, mode parser.Mode) ([]*ast.File, []error) {
	var errs []error
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(m.Dir, name), nil, mode)
		if err != nil {
			errs = append(errs, err)
		}
		if f != nil {
			files = append(files, f)
		}
	}
	return files, errs
}

// mapImporter resolves one package's imports: through its vendor/module
// import map first, then via the shared dependency loader.
type mapImporter struct {
	ld        *loader
	importMap map[string]string
}

func (im *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	return im.ld.dep(path)
}
