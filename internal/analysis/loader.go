package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, parsed and type-checked target package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds any type-checking problems. Analyzer results on
	// an ill-typed package are best-effort.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// loader type-checks a dependency graph produced by `go list -deps`.
// Dependencies are checked once each with function bodies ignored;
// target packages get full syntax, comments and types.Info.
type loader struct {
	fset  *token.FileSet
	metas map[string]*listPkg
	deps  map[string]*types.Package
	busy  map[string]bool
}

// Load runs `go list -deps` on the patterns and returns the matched
// (non-dependency) packages, parsed and type-checked. Test files are
// excluded: the analyzers enforce invariants on production code.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Standard,DepOnly,Error",
		"-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	// Cgo off: every stdlib package the tool touches then has a pure-Go
	// file set that go/types can check from source, offline.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	ld := &loader{
		fset:  token.NewFileSet(),
		metas: make(map[string]*listPkg),
		deps:  make(map[string]*types.Package),
		busy:  make(map[string]bool),
	}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		m := new(listPkg)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		ld.metas[m.ImportPath] = m
		if !m.DepOnly {
			targets = append(targets, m)
		}
	}

	var pkgs []*Package
	for _, m := range targets {
		if m.Error != nil {
			return nil, fmt.Errorf("%s: %s", m.ImportPath, m.Error.Err)
		}
		pkg, err := ld.check(m)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check fully type-checks one target package.
func (ld *loader) check(m *listPkg) (*Package, error) {
	files, err := ld.parse(m, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg := &Package{
		Path:  m.ImportPath,
		Name:  m.Name,
		Dir:   m.Dir,
		Fset:  ld.fset,
		Files: files,
		Info:  info,
	}
	conf := &types.Config{
		Importer:                 &mapImporter{ld: ld, importMap: m.ImportMap},
		Sizes:                    types.SizesFor("gc", runtime.GOARCH),
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	pkg.Types, _ = conf.Check(m.ImportPath, ld.fset, files, info)
	return pkg, nil
}

// dep type-checks a dependency (bodies ignored), memoized.
func (ld *loader) dep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.deps[path]; ok {
		return p, nil
	}
	m := ld.metas[path]
	if m == nil {
		return nil, fmt.Errorf("package %s not in go list -deps output", path)
	}
	if ld.busy[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.busy[path] = true
	defer delete(ld.busy, path)

	files, err := ld.parse(m, 0)
	if err != nil {
		return nil, err
	}
	conf := &types.Config{
		Importer:                 &mapImporter{ld: ld, importMap: m.ImportMap},
		Sizes:                    types.SizesFor("gc", runtime.GOARCH),
		FakeImportC:              true,
		IgnoreFuncBodies:         true,
		DisableUnusedImportCheck: true,
		// Dependencies only need a usable exported API; tolerate noise.
		Error: func(error) {},
	}
	p, _ := conf.Check(path, ld.fset, files, nil)
	ld.deps[path] = p
	return p, nil
}

func (ld *loader) parse(m *listPkg, mode parser.Mode) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(m.Dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// mapImporter resolves one package's imports: through its vendor/module
// import map first, then via the shared dependency loader.
type mapImporter struct {
	ld        *loader
	importMap map[string]string
}

func (im *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	return im.ld.dep(path)
}
