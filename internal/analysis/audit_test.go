package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAuditAnnotations runs the annotation auditor over its golden
// package: stale symbol references, unknown tags, and bare annotations
// are reported; healthy and prose-only notes are not.
func TestAuditAnnotations(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "audit"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := AuditAnnotations(pkgs)
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	wants := []string{
		"store.Acquire, which no longer resolves",
		"+whirllint:nosuchtag is not a tag any analyzer honours",
		"bare +whirllint: annotation names no tag",
	}
	if len(got) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(wants), strings.Join(got, "\n"))
	}
	for _, want := range wants {
		found := false
		for _, msg := range got {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding containing %q in:\n%s", want, strings.Join(got, "\n"))
		}
	}
}

// TestAuditAnnotationsCleanTree is the acceptance gate for the repo's
// own notes: every committed +whirllint annotation must name a known
// tag and resolve the symbols its justification cites.
func TestAuditAnnotationsCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("repro/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range AuditAnnotations(pkgs) {
		t.Errorf("stale annotation: %s", d)
	}
}
