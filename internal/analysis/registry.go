package analysis

// All returns every Whirlpool analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{CtxPoll, FloatScore, GoroutineLeak, LockGuard}
}
