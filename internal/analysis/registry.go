package analysis

// All returns every Whirlpool analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ArenaEscape,
		AtomicField,
		CtxPoll,
		DeadlineWait,
		ErrFlow,
		FloatScore,
		GoroutineLeak,
		HotAlloc,
		LockGuard,
		LockOrder,
	}
}
