package analysis

import (
	"go/ast"
	"go/types"
)

// LockGuard enforces the repo's mutex convention: in a struct literal
// like
//
//	type topkSet struct {
//		mu sync.Mutex
//		k  int          // guarded
//		...
//	}
//
// every field declared after a mutex field named "mu" (sync.Mutex or
// sync.RWMutex) is guarded by it, and a method of that struct may only
// touch a guarded field through the receiver if the method body also
// acquires the mutex (mu.Lock or mu.RLock). Methods that deliberately
// run with the lock already held by their caller are annotated
//
//	// +whirllint:locked
//
// in their doc comment and are skipped.
//
// The check is an intra-method approximation: acquiring the lock
// anywhere in the method satisfies it, and accesses that escape through
// non-receiver aliases are not tracked. It exists to catch the common
// regression — a new method reading topkSet.top, blockingPQ.h or
// Reader caches without locking — not to prove the code race-free
// (`go test -race` stays in CI for that).
//
// The analyzer also reports copied mutexes, in the spirit of vet's
// copylocks: a value receiver on a lock-holding struct, an assignment
// copying a lock-holding value, a call passing one by value, or a range
// clause copying lock-holding elements. A Lock() through a value
// receiver locks the copy, so such a method never counts as holding the
// guard — the copy itself is the reported defect.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "report struct fields guarded by a mu sync.Mutex accessed in methods that never lock mu, and copied mutexes",
	Run:  runLockGuard,
}

// guardedStruct records which fields of a struct follow its mu field.
type guardedStruct struct {
	muName string
	fields map[string]bool
}

func runLockGuard(pass *Pass) error {
	guarded := make(map[*types.TypeName]*guardedStruct)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			gs := collectGuarded(pass, st)
			if gs != nil {
				guarded[obj] = gs
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	for _, fn := range funcDecls(pass) {
		if fn.Body != nil {
			reportLockCopies(pass, fn)
		}
		if fn.Recv == nil || fn.Body == nil || hasAnnotation(fn, "locked") {
			continue
		}
		recvObj, typeName := receiver(pass, fn)
		if recvObj == nil {
			continue
		}
		// A value receiver that copies a by-value mutex locks the copy:
		// mu.Lock() inside the method neither satisfies the guard nor
		// protects anything. The copy diagnostic (reported above) is the
		// actionable finding; skip the per-field reports to avoid noise.
		// A lock shared through a pointer field survives the copy, so the
		// guard check still applies there.
		if _, isPtr := recvObj.Type().(*types.Pointer); !isPtr {
			if lockIn(recvObj.Type(), nil) != "" {
				continue
			}
		}
		gs := guarded[typeName]
		if gs == nil {
			continue
		}
		locked := false
		var accesses []*ast.SelectorExpr
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// recv.mu.Lock() / recv.mu.RLock(): the inner selector is
			// recv.mu; the outer one carries the method name.
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok &&
					inner.Sel.Name == gs.muName && isReceiver(pass, inner.X, recvObj) {
					locked = true
				}
			}
			if gs.fields[sel.Sel.Name] && isReceiver(pass, sel.X, recvObj) {
				accesses = append(accesses, sel)
			}
			return true
		})
		if locked {
			continue
		}
		for _, sel := range accesses {
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s is guarded by %s.%s, but method %s never locks it (lock %s, or annotate the method %s%s if every caller holds the lock)",
				typeName.Name(), sel.Sel.Name, typeName.Name(), gs.muName,
				fn.Name.Name, gs.muName, annotationPrefix, "locked")
		}
	}
	return nil
}

// reportLockCopies flags the copylocks shapes in one function: a value
// receiver on a lock-holding struct, assignments and call arguments
// copying lock-holding values, and range clauses whose element copies
// carry a lock.
func reportLockCopies(pass *Pass, fn *ast.FuncDecl) {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
		if _, isPtr := t.(*types.Pointer); !isPtr && t != nil {
			if lock := lockIn(t, nil); lock != "" {
				pass.Reportf(fn.Recv.Pos(),
					"method %s has a value receiver, but %s contains %s; Lock on the receiver locks a copy — use a pointer receiver",
					fn.Name.Name, typeString(t), lock)
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if lock, t := copiedLock(pass, rhs); lock != "" {
					pass.Reportf(rhs.Pos(),
						"assignment copies %s, which contains %s; share it by pointer instead",
						typeString(t), lock)
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if lock, t := copiedLock(pass, arg); lock != "" {
					pass.Reportf(arg.Pos(),
						"call passes %s by value, copying %s; pass a pointer instead",
						typeString(t), lock)
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				t := pass.TypesInfo.TypeOf(n.Value)
				if t != nil {
					if lock := lockIn(t, nil); lock != "" {
						pass.Reportf(n.Value.Pos(),
							"range clause copies %s elements, each containing %s; range over indices or pointers instead",
							typeString(t), lock)
					}
				}
			}
		}
		return true
	})
}

// copiedLock reports the lock inside expr's value type when expr is a
// copy of existing state — an identifier, field, element, or
// dereference. Fresh values (composite literals, call results) and
// pointers are fine.
func copiedLock(pass *Pass, expr ast.Expr) (string, types.Type) {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return "", nil
	}
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return "", nil
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return "", nil
	}
	return lockIn(t, nil), t
}

// lockIn returns the name of the first sync lock held by value inside
// t (through structs, named types, and arrays), or "".
func lockIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	// Copying a pointer to a lock shares the lock — only locks held by
	// value are copy hazards.
	if _, isPtr := t.(*types.Pointer); isPtr {
		return ""
	}
	if isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex") ||
		isNamedType(t, "sync", "WaitGroup") || isNamedType(t, "sync", "Once") {
		return typeString(t)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockIn(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return ""
}

// typeString renders a type compactly for diagnostics (package name,
// not full import path).
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// collectGuarded returns the fields declared after a "mu" mutex field,
// or nil if the struct has none.
func collectGuarded(pass *Pass, st *ast.StructType) *guardedStruct {
	var gs *guardedStruct
	for _, field := range st.Fields.List {
		if gs != nil {
			for _, name := range field.Names {
				gs.fields[name.Name] = true
			}
			continue
		}
		for _, name := range field.Names {
			if name.Name != "mu" {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex") {
				gs = &guardedStruct{muName: name.Name, fields: make(map[string]bool)}
			}
		}
	}
	if gs == nil || len(gs.fields) == 0 {
		return nil
	}
	return gs
}

// receiver resolves a method's receiver variable and its struct's type
// name; nil when the receiver is anonymous or not a defined type.
func receiver(pass *Pass, fn *ast.FuncDecl) (*types.Var, *types.TypeName) {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil, nil
	}
	ident := fn.Recv.List[0].Names[0]
	if ident.Name == "_" {
		return nil, nil
	}
	obj, ok := pass.TypesInfo.Defs[ident].(*types.Var)
	if !ok {
		return nil, nil
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	return obj, named.Obj()
}

// isReceiver reports whether expr is an identifier bound to recv.
func isReceiver(pass *Pass, expr ast.Expr, recv *types.Var) bool {
	ident, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[ident] == recv
}
