package analysis

import (
	"go/ast"
	"go/types"
)

// LockGuard enforces the repo's mutex convention: in a struct literal
// like
//
//	type topkSet struct {
//		mu sync.Mutex
//		k  int          // guarded
//		...
//	}
//
// every field declared after a mutex field named "mu" (sync.Mutex or
// sync.RWMutex) is guarded by it, and a method of that struct may only
// touch a guarded field through the receiver if the method body also
// acquires the mutex (mu.Lock or mu.RLock). Methods that deliberately
// run with the lock already held by their caller are annotated
//
//	// +whirllint:locked
//
// in their doc comment and are skipped.
//
// The check is an intra-method approximation: acquiring the lock
// anywhere in the method satisfies it, and accesses that escape through
// non-receiver aliases are not tracked. It exists to catch the common
// regression — a new method reading topkSet.top, blockingPQ.h or
// Reader caches without locking — not to prove the code race-free
// (`go test -race` stays in CI for that).
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "report struct fields guarded by a mu sync.Mutex accessed in methods that never lock mu",
	Run:  runLockGuard,
}

// guardedStruct records which fields of a struct follow its mu field.
type guardedStruct struct {
	muName string
	fields map[string]bool
}

func runLockGuard(pass *Pass) error {
	guarded := make(map[*types.TypeName]*guardedStruct)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			gs := collectGuarded(pass, st)
			if gs != nil {
				guarded[obj] = gs
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	for _, fn := range funcDecls(pass) {
		if fn.Recv == nil || fn.Body == nil || hasAnnotation(fn, "locked") {
			continue
		}
		recvObj, typeName := receiver(pass, fn)
		if recvObj == nil {
			continue
		}
		gs := guarded[typeName]
		if gs == nil {
			continue
		}
		locked := false
		var accesses []*ast.SelectorExpr
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// recv.mu.Lock() / recv.mu.RLock(): the inner selector is
			// recv.mu; the outer one carries the method name.
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok &&
					inner.Sel.Name == gs.muName && isReceiver(pass, inner.X, recvObj) {
					locked = true
				}
			}
			if gs.fields[sel.Sel.Name] && isReceiver(pass, sel.X, recvObj) {
				accesses = append(accesses, sel)
			}
			return true
		})
		if locked {
			continue
		}
		for _, sel := range accesses {
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s is guarded by %s.%s, but method %s never locks it (lock %s, or annotate the method %s%s if every caller holds the lock)",
				typeName.Name(), sel.Sel.Name, typeName.Name(), gs.muName,
				fn.Name.Name, gs.muName, annotationPrefix, "locked")
		}
	}
	return nil
}

// collectGuarded returns the fields declared after a "mu" mutex field,
// or nil if the struct has none.
func collectGuarded(pass *Pass, st *ast.StructType) *guardedStruct {
	var gs *guardedStruct
	for _, field := range st.Fields.List {
		if gs != nil {
			for _, name := range field.Names {
				gs.fields[name.Name] = true
			}
			continue
		}
		for _, name := range field.Names {
			if name.Name != "mu" {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex") {
				gs = &guardedStruct{muName: name.Name, fields: make(map[string]bool)}
			}
		}
	}
	if gs == nil || len(gs.fields) == 0 {
		return nil
	}
	return gs
}

// receiver resolves a method's receiver variable and its struct's type
// name; nil when the receiver is anonymous or not a defined type.
func receiver(pass *Pass, fn *ast.FuncDecl) (*types.Var, *types.TypeName) {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil, nil
	}
	ident := fn.Recv.List[0].Names[0]
	if ident.Name == "_" {
		return nil, nil
	}
	obj, ok := pass.TypesInfo.Defs[ident].(*types.Var)
	if !ok {
		return nil, nil
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	return obj, named.Obj()
}

// isReceiver reports whether expr is an identifier bound to recv.
func isReceiver(pass *Pass, expr ast.Expr, recv *types.Var) bool {
	ident, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[ident] == recv
}
