package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBaselineEmptySerialization pins the clean-tree wire form: an
// empty baseline must serialize "entries" as [], not null, so the
// committed lint.baseline.json is byte-stable regardless of whether it
// was rewritten from a nil or an emptied map.
func TestBaselineEmptySerialization(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := NewBaseline(nil, "").Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "null") {
		t.Fatalf("empty baseline serialized a null: %s", data)
	}
	if !strings.Contains(string(data), `"entries": []`) {
		t.Fatalf("empty baseline must serialize entries as []: %s", data)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("reloaded empty baseline has %d entries", b.Len())
	}
}

// TestBaselineRoundTrip checks Save/Load preserve counts and that the
// entry order on disk is deterministic.
func TestBaselineRoundTrip(t *testing.T) {
	diag := func(analyzer, file, msg string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: file, Line: 1, Column: 1},
			Message:  msg,
		}
	}
	diags := []Diagnostic{
		diag("lockorder", "b.go", "cycle"),
		diag("errflow", "a.go", "dropped"),
		diag("errflow", "a.go", "dropped"), // same key twice: counted
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := NewBaseline(diags, "").Save(path); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("round-tripped Len = %d, want 3", b.Len())
	}
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("baseline serialization is not stable:\n%s\nvs\n%s", first, second)
	}

	fresh, old, _ := b.Filter(append(diags, diag("errflow", "a.go", "dropped")), "")
	if len(old) != 3 || len(fresh) != 1 {
		t.Fatalf("Filter budget: fresh=%d old=%d, want 1/3", len(fresh), len(old))
	}
}
