package analysis

import (
	"go/ast"
	"strings"
)

// CtxPoll keeps RunContext cancellation prompt: inside the engine
// (internal/core) and the daemon (cmd/whirlpoold), an unbounded loop —
// `for { ... }` with no condition, the shape of every match-processing
// and queue-pop loop — must poll cancellation on each iteration, either
// r.cancelled() or a receive from ctx.Done(). Without the poll, a
// cancelled query keeps burning CPU until its queues drain naturally.
//
// Busy-wait loops with an empty body are reported unconditionally:
// they cannot poll anything. The one sanctioned busy-wait, spin() in
// internal/core/engine.go (it exists to simulate per-operation cost,
// Figure 8), carries the exemption annotation on the enclosing
// function:
//
//	// +whirllint:busywait
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "report unbounded engine loops that never poll cancellation (r.cancelled() / ctx.Done())",
	Run:  runCtxPoll,
}

// CtxPollScope limits the analyzer to the packages whose unbounded
// loops process matches and queue pops. A package is in scope when its
// import path contains one of these substrings. internal/shard is in
// scope for the worker pool's steal loop: a worker that stops polling
// would keep stepping stolen matches long after the query died.
var CtxPollScope = []string{"internal/core", "internal/shard", "cmd/whirlpoold", "testdata/src/ctxpoll"}

func runCtxPoll(pass *Pass) error {
	inScope := false
	for _, s := range CtxPollScope {
		if strings.Contains(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, fn := range funcDecls(pass) {
		if fn.Body == nil || hasAnnotation(fn, "busywait") {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if len(loop.Body.List) == 0 {
				pass.Reportf(loop.Pos(),
					"empty-body busy-wait loop; poll cancellation or annotate the enclosing function %sbusywait",
					annotationPrefix)
				return true
			}
			if loop.Cond == nil && !pollsCancellation(pass, loop.Body) {
				pass.Reportf(loop.Pos(),
					"unbounded loop never polls cancellation; check r.cancelled() or ctx.Done() each iteration so RunContext cancellation stays prompt, or annotate the enclosing function %sbusywait",
					annotationPrefix)
			}
			return true
		})
	}
	return nil
}

// pollsCancellation reports whether the loop body contains a call to a
// method named cancelled, or Done() on a context.Context (the receive
// in a select case is a CallExpr too, so `case <-ctx.Done():` counts).
func pollsCancellation(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "cancelled":
			found = true
			return false
		case "Done":
			if t := pass.TypesInfo.TypeOf(sel.X); t != nil && isNamedType(t, "context", "Context") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
