package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Annotation auditing. Every `+whirllint:<tag>` escape hatch in the
// tree is a small debt note: it names a tag an analyzer honours and
// (for the tags that require one) a justification explaining why the
// suppressed pattern is safe. Both halves rot. A tag can outlive the
// analyzer vocabulary, and a justification that says "the caller
// holds s.mu via AcquireShard" keeps suppressing the finding long
// after AcquireShard was renamed away. AuditAnnotations re-validates
// the notes: unknown tags are reported, and any code-shaped token in
// a justification (pkg.Name, Type.Method, name()) must still resolve
// to a symbol in the analyzed packages or their imports.

// knownTags maps each honoured annotation tag to the analyzer (or
// analyzers) that consult it.
var knownTags = map[string]string{
	"allocok":    "hotalloc",
	"busywait":   "ctxpoll",
	"errok":      "errflow",
	"exactscore": "floatscore",
	"hotpath":    "arenaescape, hotalloc",
	"locked":     "lockguard, lockorder",
	"lockorder":  "lockorder",
	"managed":    "goroutineleak",
	"matchowner": "atomicfield",
	"nodeadline": "deadlinewait",
	"seqlocked":  "atomicfield, lockguard",
}

// AuditAnnotations scans every comment in the loaded packages for
// +whirllint annotations and returns a diagnostic for each stale one:
// a tag no analyzer honours, or a justification naming a symbol that
// no longer exists. Diagnostics are sorted by position.
func AuditAnnotations(pkgs []*Package) []Diagnostic {
	idx := buildSymbolIndex(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(line, annotationPrefix)
					if !ok {
						continue
					}
					tag, justif, _ := strings.Cut(rest, " ")
					report := func(format string, args ...any) {
						diags = append(diags, Diagnostic{
							Analyzer: "annotations",
							Pos:      pkg.Fset.Position(c.Pos()),
							Message:  fmt.Sprintf(format, args...),
						})
					}
					if tag == "" {
						report("bare %s annotation names no tag — write %s<tag>", annotationPrefix, annotationPrefix)
						continue
					}
					if _, known := knownTags[tag]; !known {
						report("%s%s is not a tag any analyzer honours (known tags: %s)",
							annotationPrefix, tag, knownTagList())
						continue
					}
					for _, token := range codeTokens(justif) {
						if !idx.resolves(token) {
							report("justification for %s%s references %s, which no longer resolves to any symbol in the analyzed packages — update the note",
								annotationPrefix, tag, token)
						}
					}
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

func knownTagList() string {
	tags := make([]string, 0, len(knownTags))
	for t := range knownTags {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return strings.Join(tags, ", ")
}

// symbolIndex answers "does this name still exist somewhere?" for the
// loaded packages and their direct imports.
type symbolIndex struct {
	// qualified holds "pkgname.Name" and "Type.Member" pairs.
	qualified map[string]bool
	// names holds every bare identifier: package-level names, method
	// names, and struct field names.
	names map[string]bool
}

func buildSymbolIndex(pkgs []*Package) *symbolIndex {
	idx := &symbolIndex{
		qualified: make(map[string]bool),
		names:     make(map[string]bool),
	}
	seen := make(map[*types.Package]bool)
	var addPkg func(p *types.Package, withImports bool)
	addPkg = func(p *types.Package, withImports bool) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		scope := p.Scope()
		for _, name := range scope.Names() {
			idx.qualified[p.Name()+"."+name] = true
			idx.names[name] = true
			obj := scope.Lookup(name)
			tn, ok := obj.(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				idx.qualified[tn.Name()+"."+m.Name()] = true
				idx.names[m.Name()] = true
			}
			if st, ok := named.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					idx.qualified[tn.Name()+"."+f.Name()] = true
					idx.names[f.Name()] = true
				}
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				for i := 0; i < iface.NumMethods(); i++ {
					m := iface.Method(i)
					idx.qualified[tn.Name()+"."+m.Name()] = true
					idx.names[m.Name()] = true
				}
			}
		}
		if withImports {
			for _, imp := range p.Imports() {
				addPkg(imp, false)
			}
		}
	}
	for _, pkg := range pkgs {
		addPkg(pkg.Types, true)
	}
	// Local identifiers referenced in justifications ("the ready channel
	// is closed exactly once") are usually receivers and parameters;
	// index function-local defs too so they don't read as stale.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if pkg.Info.Defs[id] != nil {
						idx.names[id.Name] = true
					}
				}
				return true
			})
		}
	}
	return idx
}

// resolves reports whether a code-shaped token still names something.
// Dotted tokens resolve through the qualified index or — to tolerate
// value-qualified prose like "ctx.Done" where ctx is a local — via the
// final segment's bare name; call-shaped tokens via the bare name.
func (idx *symbolIndex) resolves(token string) bool {
	token = strings.TrimSuffix(token, "()")
	if idx.qualified[token] {
		return true
	}
	parts := strings.Split(token, ".")
	last := parts[len(parts)-1]
	if len(parts) >= 2 {
		if idx.qualified[parts[len(parts)-2]+"."+last] {
			return true
		}
	}
	return idx.names[last]
}

// codeTokens extracts the tokens in a justification that look like
// code references: dotted paths (pkg.Name, Type.Method) and explicit
// calls (name()). Plain prose words are not audited.
func codeTokens(justif string) []string {
	var out []string
	fields := strings.FieldsFunc(justif, func(r rune) bool {
		return !(r == '.' || r == '(' || r == ')' || r == '_' ||
			r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
	})
	for _, f := range fields {
		call := strings.HasSuffix(f, "()")
		f = strings.TrimSuffix(f, "()")
		f = strings.Trim(f, ".")
		if f == "" || strings.ContainsAny(f, "()") {
			continue
		}
		if !call && !strings.Contains(f, ".") {
			continue // bare prose word
		}
		// A dotted token must look like identifiers, not an ellipsis or
		// a version number.
		valid := true
		for _, part := range strings.Split(f, ".") {
			if part == "" || part[0] >= '0' && part[0] <= '9' {
				valid = false
				break
			}
		}
		if valid {
			out = append(out, f)
		}
	}
	return out
}
