// Package analysistest runs an analyzer over a golden testdata package
// and compares its findings against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's own
// framework.
//
// A testdata source line expecting a finding carries a trailing
// comment with a regular expression the diagnostic message must match:
//
//	t.count++ // want `guarded by .*mu`
//
// Lines without a want comment must produce no finding.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRE matches the whole want clause; backtickRE then extracts each
// expectation, so one line can expect several diagnostics:
// `// want `first` `second“.
var (
	wantRE     = regexp.MustCompile("// want ((?:`[^`]*`[ \t]*)+)")
	backtickRE = regexp.MustCompile("`([^`]*)`")
)

// Run loads the package rooted at dir (a testdata directory), applies
// the analyzer, and reports mismatches between diagnostics and want
// comments on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(abs)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
	}
	pkg := pkgs[0]
	for _, err := range pkg.LoadErrors {
		t.Errorf("testdata does not load: %v", err)
	}
	for _, err := range pkg.TypeErrors {
		t.Errorf("testdata does not type-check: %v", err)
	}

	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Errorf("%s: malformed want comment %q (use // want `regexp`)",
							pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, g := range backtickRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(g[1])
					if err != nil {
						t.Errorf("%s: bad want regexp: %v", pos, err)
						continue
					}
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching `%s`", k.file, k.line, re)
		}
	}
}
