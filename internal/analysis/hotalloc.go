package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc proves the zero-allocation property of the serving loop
// statically: a function annotated
//
//	// +whirllint:hotpath
//
// is a hot-path root (run.process, the heap ops, topkSet.offer, the
// arena's get/release, every AppendCandidates implementation), and no
// allocating construct may be reachable from a root through the
// package's call graph. BenchmarkProcessAllocs and the benchcheck
// alloc-ratio gate catch a regression only when a benchmark happens to
// exercise it; this analyzer fails the build on every path.
//
// The call graph walk covers direct calls, method calls on concrete
// receivers, interface method calls (conservatively: every method of an
// in-package type that implements the interface), and calls through
// function-valued fields (conservatively: every function or closure the
// package ever stores in a field of that name and type). Calls that
// leave the package consult the AllocFact exported when the callee's
// package was analyzed earlier in the run, so the gate is
// interprocedural across the repo's own dependency graph; callees with
// no fact (stdlib, bodies not analyzed) are assumed clean except for
// the known allocators (fmt, errors).
//
// Flagged constructs: make and new, escaping composite literals (&T{},
// slice and map literals), append into a slice that is not caller-owned
// scratch (a parameter, receiver field, or local derived from one),
// interface boxing of a non-pointer argument at a call site (the
// container/heap bug class PR 5 de-boxed), closures capturing outer
// variables, and calls into fmt/errors.
//
// The escape hatch for deliberate amortized allocation — slab refills,
// first-seen-root entries — is a function annotation with a mandatory
// justification:
//
//	// +whirllint:allocok amortized: one slab per 256 matches
//
// An allocok function is trusted clean (its own body is skipped and it
// exports a non-allocating fact); a bare allocok with no justification
// is itself reported.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "report allocating constructs reachable from +whirllint:hotpath roots",
	Run:  runHotAlloc,
}

// AllocFact is the per-function summary hotalloc exports: whether the
// function (transitively) allocates, and the first reason found.
type AllocFact struct {
	Allocates bool   `json:"allocates"`
	Reason    string `json:"reason,omitempty"`
}

// AFact marks AllocFact as a fact type.
func (*AllocFact) AFact() {}

func init() { RegisterFactType(new(AllocFact)) }

// allocSite is one allocating construct found in a function body.
type allocSite struct {
	pos  token.Pos
	desc string
}

// hotNode is one call-graph node: a declared function or a function
// literal.
type hotNode struct {
	name    string // for diagnostics
	fn      *types.Func
	body    *ast.BlockStmt
	sig     *types.Signature
	hotpath bool
	allocok bool
	justif  string
	decl    *ast.FuncDecl // nil for literals

	allocs []allocSite
	// extAllocs are call sites whose out-of-package callee is known to
	// allocate (fact or known-allocator list).
	extAllocs []allocSite
	edges     []*hotNode

	allocates bool   // fixed-point summary
	reason    string // first reason, for the exported fact
}

func runHotAlloc(pass *Pass) error {
	g := newHotGraph(pass)
	if g == nil {
		return nil
	}
	g.solve()
	g.exportFacts()

	// Bare allocok is reported wherever it appears; the annotation
	// waives a correctness gate, so the why is mandatory.
	for _, n := range g.nodes {
		if n.allocok && n.justif == "" && n.decl != nil {
			pass.Reportf(n.decl.Name.Pos(),
				"%sallocok on %s needs a justification on the same line (why is allocating here acceptable?)",
				annotationPrefix, n.name)
		}
	}

	// Walk from the hotpath roots and report every allocating construct
	// in reach. A site is reported once, with the first root that
	// reaches it.
	reported := make(map[*hotNode]bool)
	for _, root := range g.ordered {
		if !root.hotpath {
			continue
		}
		g.reportReachable(pass, root, root.name, reported)
	}
	return nil
}

func (g *hotGraph) reportReachable(pass *Pass, n *hotNode, root string, reported map[*hotNode]bool) {
	if reported[n] || n.allocok {
		return
	}
	reported[n] = true
	for _, site := range n.allocs {
		pass.Reportf(site.pos,
			"hot path (%shotpath root %s): %s; keep the serving loop allocation-free, or annotate the enclosing function %sallocok with a justification",
			annotationPrefix, root, site.desc, annotationPrefix)
	}
	for _, site := range n.extAllocs {
		pass.Reportf(site.pos,
			"hot path (%shotpath root %s): %s; keep the serving loop allocation-free, or annotate the enclosing function %sallocok with a justification",
			annotationPrefix, root, site.desc, annotationPrefix)
	}
	for _, e := range n.edges {
		g.reportReachable(pass, e, root, reported)
	}
}

// hotGraph is the per-package call graph with allocation summaries.
type hotGraph struct {
	pass    *Pass
	nodes   map[ast.Node]*hotNode // FuncDecl or FuncLit -> node
	byFunc  map[*types.Func]*hotNode
	ordered []*hotNode
	// fieldFuncs maps a struct field (of function type) to every
	// function or literal the package stores in it, for conservative
	// dispatch through function-valued fields.
	fieldFuncs map[*types.Var][]*hotNode
	// ifaceMethods caches conservative interface-dispatch resolution.
	namedTypes []*types.Named
}

// newHotGraph builds nodes, local allocation lists and call edges; nil
// when the package declares no functions.
func newHotGraph(pass *Pass) *hotGraph {
	g := &hotGraph{
		pass:       pass,
		nodes:      make(map[ast.Node]*hotNode),
		byFunc:     make(map[*types.Func]*hotNode),
		fieldFuncs: make(map[*types.Var][]*hotNode),
	}

	// Named types of the package, for interface dispatch.
	if scope := pass.Pkg.Scope(); scope != nil {
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					g.namedTypes = append(g.namedTypes, named)
				}
			}
		}
	}

	// Declared functions.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			hot, _ := funcAnnotation(fd, "hotpath")
			okAlloc, justif := funcAnnotation(fd, "allocok")
			n := &hotNode{
				name:    funcDisplayName(obj),
				fn:      obj,
				body:    fd.Body,
				sig:     obj.Type().(*types.Signature),
				hotpath: hot,
				allocok: okAlloc,
				justif:  justif,
				decl:    fd,
			}
			g.nodes[fd] = n
			g.byFunc[obj] = n
			g.ordered = append(g.ordered, n)
		}
	}
	if len(g.ordered) == 0 {
		return nil
	}

	// Function literals: each is its own node, linked by an edge from
	// its enclosing function (a hot function that builds a closure is
	// assumed to run it).
	for _, f := range pass.Files {
		decls := f.Decls
		for _, d := range decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			parent := g.nodes[fd]
			g.addLiteralNodes(fd.Body, parent)
		}
	}

	// Field-stored functions, for x.f() dispatch: every assignment or
	// composite-literal entry whose target is a function-typed field
	// registers the stored function.
	for _, f := range pass.Files {
		g.collectFieldFuncs(f)
	}

	// Local allocation sites and call edges.
	for _, n := range g.ordered {
		g.analyzeBody(n)
	}
	return g
}

// addLiteralNodes creates a node for each function literal lexically
// inside body (but not inside a nested literal) and links parent to it.
func (g *hotGraph) addLiteralNodes(body ast.Node, parent *hotNode) {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false // nested literals handled recursively
		}
		return true
	})
	for _, lit := range lits {
		sig, _ := g.pass.TypesInfo.TypeOf(lit).(*types.Signature)
		n := &hotNode{
			name: parent.name + " literal",
			body: lit.Body,
			sig:  sig,
			// A literal inside an allocok function inherits the waiver:
			// the annotation covers the function's whole body.
			allocok: parent.allocok,
			justif:  parent.justif,
		}
		g.nodes[lit] = n
		g.ordered = append(g.ordered, n)
		parent.edges = append(parent.edges, n)
		g.addLiteralNodes(lit.Body, n)
	}
}

// collectFieldFuncs records which functions the package stores into
// function-typed struct fields.
func (g *hotGraph) collectFieldFuncs(f *ast.File) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fieldObj, ok := g.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !fieldObj.IsField() {
			return
		}
		if n := g.nodeForFuncExpr(rhs); n != nil {
			g.fieldFuncs[fieldObj] = append(g.fieldFuncs[fieldObj], n)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				fieldObj, ok := g.pass.TypesInfo.Uses[key].(*types.Var)
				if !ok || !fieldObj.IsField() {
					continue
				}
				if fn := g.nodeForFuncExpr(kv.Value); fn != nil {
					g.fieldFuncs[fieldObj] = append(g.fieldFuncs[fieldObj], fn)
				}
			}
		}
		return true
	})
}

// nodeForFuncExpr resolves an expression that stores a function value:
// a reference to a declared function, or a literal.
func (g *hotGraph) nodeForFuncExpr(e ast.Expr) *hotNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.nodes[e]
	case *ast.Ident:
		if fn, ok := g.pass.TypesInfo.Uses[e].(*types.Func); ok {
			return g.byFunc[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := g.pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return g.byFunc[fn]
		}
	}
	return nil
}

// analyzeBody fills one node's local allocation sites and call edges.
func (g *hotGraph) analyzeBody(n *hotNode) {
	pass := g.pass
	scratch := scratchBases(pass, n)

	// Closure literals handed straight to a non-escaping callee (the
	// sort package's comparator params) never outlive the call, so the
	// compiler keeps them on the stack — pre-order walk marks them
	// before the FuncLit case sees them.
	stackLits := make(map[*ast.FuncLit]bool)

	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		if node == nil {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit:
			// Closure creation: capturing literals allocate the closure
			// object; the body is analyzed as its own node.
			if caps := captures(pass, node); len(caps) > 0 && !stackLits[node] {
				n.allocs = append(n.allocs, allocSite{node.Pos(),
					fmt.Sprintf("closure captures %s, allocating a closure object", strings.Join(caps, ", "))})
			}
			return false
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(node)
			switch t.Underlying().(type) {
			case *types.Slice:
				n.allocs = append(n.allocs, allocSite{node.Pos(), "slice literal allocates"})
			case *types.Map:
				n.allocs = append(n.allocs, allocSite{node.Pos(), "map literal allocates"})
			}
			// Struct value literals are stack values unless address-
			// taken, which the UnaryExpr case below catches.
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if cl, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					n.allocs = append(n.allocs, allocSite{node.Pos(), "&composite literal escapes to the heap"})
					// Avoid double-reporting an inner slice/map literal.
					for _, el := range cl.Elts {
						ast.Inspect(el, walkWrap(walk))
					}
					return false
				}
			}
		case *ast.CallExpr:
			if nonEscapingCallee(pass, node) {
				for _, arg := range node.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						stackLits[lit] = true
					}
				}
			}
			g.analyzeCall(n, node, scratch)
		}
		return true
	}
	ast.Inspect(n.body, walkWrap(walk))
}

// nonEscapingCallee recognizes stdlib callees whose parameters provably
// do not escape, so closure and interface arguments stay on the stack.
// Kept deliberately narrow: the sort package, whose Search/Slice
// comparators are the hot loops' one legitimate closure idiom.
func nonEscapingCallee(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sort"
}

// walkWrap adapts walk for a nested ast.Inspect.
func walkWrap(walk func(ast.Node) bool) func(ast.Node) bool {
	return func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return walk(n)
	}
}

// analyzeCall classifies one call expression: builtin allocators, append
// discipline, boxing, and call-graph edges.
func (g *hotGraph) analyzeCall(n *hotNode, call *ast.CallExpr, scratch map[types.Object]bool) {
	pass := g.pass
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				n.allocs = append(n.allocs, allocSite{call.Pos(), "make allocates"})
			case "new":
				n.allocs = append(n.allocs, allocSite{call.Pos(), "new allocates"})
			case "append":
				if len(call.Args) > 0 && !isScratchExpr(pass, call.Args[0], scratch) {
					n.allocs = append(n.allocs, allocSite{call.Pos(),
						"append grows a slice that is not caller-owned scratch"})
				}
			}
			return
		}
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			g.addCallEdge(n, call, fn)
		} else if v, ok := pass.TypesInfo.Uses[fun].(*types.Var); ok && v.IsField() {
			g.addFieldEdges(n, v)
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			g.addCallEdge(n, call, fn)
		} else if v, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Var); ok && v.IsField() {
			// Call through a function-valued field: conservatively every
			// function the package ever stores there.
			g.addFieldEdges(n, v)
		}
	case *ast.FuncLit:
		if lit := g.nodes[fun]; lit != nil {
			n.edges = append(n.edges, lit)
		}
	}
	g.checkBoxing(n, call)
}

func (g *hotGraph) addFieldEdges(n *hotNode, field *types.Var) {
	n.edges = append(n.edges, g.fieldFuncs[field]...)
}

// addCallEdge links a call to a resolved callee: an in-package node, an
// imported fact, the known-allocator list, or (for interface methods)
// every in-package implementation.
func (g *hotGraph) addCallEdge(n *hotNode, call *ast.CallExpr, fn *types.Func) {
	pass := g.pass
	if local := g.byFunc[fn]; local != nil {
		n.edges = append(n.edges, local)
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			g.addInterfaceEdges(n, fn.Name(), iface)
			return
		}
	}
	// Out-of-package static call: facts first, then the known list.
	var fact AllocFact
	if pass.ImportObjectFact(fn, &fact) {
		if fact.Allocates {
			reason := fact.Reason
			if reason == "" {
				reason = "it allocates"
			}
			n.extAllocs = append(n.extAllocs, allocSite{call.Pos(),
				fmt.Sprintf("call to %s allocates (%s)", funcDisplayName(fn), reason)})
		}
		return
	}
	if pkg := fn.Pkg(); pkg != nil && knownAllocator(pkg.Path(), fn.Name()) {
		n.extAllocs = append(n.extAllocs, allocSite{call.Pos(),
			fmt.Sprintf("call to %s.%s allocates", pkg.Path(), fn.Name())})
	}
}

// addInterfaceEdges conservatively resolves an interface method call to
// every in-package implementation.
func (g *hotGraph) addInterfaceEdges(n *hotNode, method string, iface *types.Interface) {
	for _, named := range g.namedTypes {
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, g.pass.Pkg, method)
		if fn, ok := obj.(*types.Func); ok {
			if local := g.byFunc[fn]; local != nil {
				n.edges = append(n.edges, local)
			}
		}
	}
}

// checkBoxing flags non-pointer concrete arguments passed to interface
// parameters: the conversion boxes the value on the heap (pointers are
// stored directly and do not allocate).
func (g *hotGraph) checkBoxing(n *hotNode, call *ast.CallExpr) {
	pass := g.pass
	sigT := pass.TypesInfo.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return // builtin or conversion
	}
	// Calls already flagged whole (fmt, errors) don't need per-argument
	// boxing reports on top, and non-escaping callees (sort) let the
	// compiler stack-allocate the boxed header.
	if nonEscapingCallee(pass, call) {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			knownAllocator(fn.Pkg().Path(), fn.Name()) {
			return
		}
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // interface-shaped: stored without boxing
		}
		n.allocs = append(n.allocs, allocSite{arg.Pos(),
			fmt.Sprintf("interface boxing of %s argument allocates", at.String())})
	}
}

// knownAllocator lists out-of-module callees treated as allocating even
// without facts: the formatting and error-construction APIs whose whole
// job is building heap values.
func knownAllocator(pkgPath, name string) bool {
	switch pkgPath {
	case "fmt":
		return true
	case "errors":
		return name == "New" || name == "Errorf" || name == "Join"
	}
	return false
}

// scratchBases computes the objects that root caller-owned scratch in a
// function: parameters, the receiver, and locals initialized (or
// assigned) from an expression rooted at one of those. append into such
// a base is amortized reuse, not steady-state allocation.
func scratchBases(pass *Pass, n *hotNode) map[types.Object]bool {
	scratch := make(map[types.Object]bool)
	if n.sig != nil {
		if r := n.sig.Recv(); r != nil {
			scratch[r] = true
		}
		for i := 0; i < n.sig.Params().Len(); i++ {
			scratch[n.sig.Params().At(i)] = true
		}
	}
	// Propagate through local assignments until stable: the common
	// pattern is one hop (exts := sc.exts[:0]).
	for changed := true; changed; {
		changed = false
		ast.Inspect(n.body, func(node ast.Node) bool {
			if _, ok := node.(*ast.FuncLit); ok && node != n.body {
				return false
			}
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				ident, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[ident]
				if obj == nil {
					obj = pass.TypesInfo.Uses[ident]
				}
				if obj == nil || scratch[obj] {
					continue
				}
				if isScratchExpr(pass, as.Rhs[i], scratch) {
					scratch[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return scratch
}

// isScratchExpr reports whether the expression is rooted at a scratch
// base: a parameter or receiver, possibly through selectors, slicing,
// indexing, dereference, or an append of another scratch expression.
func isScratchExpr(pass *Pass, e ast.Expr, scratch map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && scratch[obj]
	case *ast.SelectorExpr:
		// A field of a scratch base (sc.exts) is scratch; so is a
		// package-level variable's field only if the base is scratch.
		return isScratchExpr(pass, e.X, scratch)
	case *ast.SliceExpr:
		return isScratchExpr(pass, e.X, scratch)
	case *ast.IndexExpr:
		return isScratchExpr(pass, e.X, scratch)
	case *ast.StarExpr:
		return isScratchExpr(pass, e.X, scratch)
	case *ast.UnaryExpr:
		// &recv.shards[i] is still receiver-owned storage.
		if e.Op == token.AND {
			return isScratchExpr(pass, e.X, scratch)
		}
	case *ast.CompositeLit:
		// The literal itself is reported as an allocation; appends into
		// it are growth of an already-flagged base, not a second site.
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "append":
					// append(scratchBase, ...) yields a scratch value.
					if len(e.Args) > 0 {
						return isScratchExpr(pass, e.Args[0], scratch)
					}
				case "make":
					// The make is reported as the allocation; growing the
					// result is not a separate finding.
					return true
				}
			}
		}
	}
	return false
}

// captures lists the names of outer variables a function literal
// captures (variables declared outside the literal that are neither
// package-level nor the literal's own parameters).
func captures(pass *Pass, lit *ast.FuncLit) []string {
	inside := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			inside[obj] = true
		}
		return true
	})
	pkgScope := pass.Pkg.Scope()
	seen := make(map[types.Object]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || inside[obj] || seen[obj] {
			return true
		}
		if obj.Pkg() != pass.Pkg {
			return true
		}
		if pkgScope != nil && pkgScope.Lookup(obj.Name()) == obj {
			return true // package-level: no capture
		}
		seen[obj] = true
		names = append(names, obj.Name())
		return true
	})
	sort.Strings(names)
	return names
}

// solve computes the transitive allocates summary by fixed point.
func (g *hotGraph) solve() {
	for _, n := range g.ordered {
		if n.allocok {
			continue
		}
		if len(n.allocs) > 0 {
			n.allocates, n.reason = true, n.allocs[0].desc
		} else if len(n.extAllocs) > 0 {
			n.allocates, n.reason = true, n.extAllocs[0].desc
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.ordered {
			if n.allocates || n.allocok {
				continue
			}
			for _, e := range n.edges {
				if e.allocates {
					n.allocates = true
					n.reason = "calls " + e.name + ", which allocates"
					changed = true
					break
				}
			}
		}
	}
}

// exportFacts publishes each declared function's summary for downstream
// packages.
func (g *hotGraph) exportFacts() {
	for _, n := range g.ordered {
		if n.fn == nil {
			continue
		}
		g.pass.ExportObjectFact(n.fn, &AllocFact{Allocates: n.allocates, Reason: n.reason})
	}
}

// funcDisplayName renders a function or method for diagnostics:
// "pkg.F" or "pkg.(T).M".
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = "(" + named.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg().Name() != "" {
		return fn.Pkg().Name() + "." + name
	}
	return name
}
