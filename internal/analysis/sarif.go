package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 output, the static-analysis interchange format GitHub
// code scanning ingests: one run, one rule per analyzer, one result per
// diagnostic. Only the subset of the schema the suite needs is
// modelled; the full schema is at
// https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// BaselineState marks results suppressed by the committed baseline
	// ("unchanged"); new findings carry "new".
	BaselineState string `json:"baselineState,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. Rules are derived
// from the analyzers (so suppressed-to-zero runs still publish the rule
// set); file paths are made repo-relative to root when possible, as
// code-scanning uploads require relative URIs. baselined, keyed like
// Baseline.Match, marks which results are pre-existing.
func SARIF(analyzers []*Analyzer, diags []Diagnostic, root string, baselined func(Diagnostic) bool) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		summary := a.Doc
		if i := strings.IndexByte(summary, '\n'); i >= 0 {
			summary = summary[:i]
		}
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: summary},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		state := "new"
		if baselined != nil && baselined(d) {
			state = "unchanged"
		}
		results = append(results, sarifResult{
			RuleID:        d.Analyzer,
			Level:         "error",
			Message:       sarifText{Text: d.Message},
			BaselineState: state,
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relURI(d.Pos.Filename, root)},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "whirlpool-lint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

// relURI converts an absolute diagnostic path to a slash-separated
// path relative to root; paths outside root pass through unchanged.
func relURI(path, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}
