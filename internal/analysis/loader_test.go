package analysis_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// The loader and the vet-tool entry point both promise the same thing
// about degenerate input: report it, never panic, never drop the
// package silently. These tests build throwaway modules in t.TempDir()
// and feed the loader the broken shapes that show up in practice — a
// file that does not parse, a directory with no Go files, a vendored
// dependency tree.

// writeTree materializes a file tree under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadSyntaxErrorPackage(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com/broken\n\ngo 1.22\n",
		// ok.go parses; bad.go has a valid package clause but a broken
		// body, so the package is listed with both files.
		"ok.go":  "package broken\n\nfunc Fine() int { return 1 }\n",
		"bad.go": "package broken\n\nfunc Oops() {\n\tif {\n}\n",
	})
	t.Chdir(dir)

	pkgs, err := analysis.Load("./...")
	if err != nil {
		t.Fatalf("Load on a syntax-error package must report, not fail: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1 (broken packages are returned, not dropped)", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.LoadErrors) == 0 {
		t.Fatalf("package %s has no LoadErrors; want the parse failure surfaced", pkg.Path)
	}
	found := false
	for _, e := range pkg.LoadErrors {
		if strings.Contains(e.Error(), "bad.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("LoadErrors %v do not mention bad.go", pkg.LoadErrors)
	}
	// The healthy file's syntax must survive for best-effort analysis.
	if len(pkg.Files) == 0 {
		t.Fatal("no ASTs salvaged from a package with one good file")
	}
	// Running the full suite over the partial package must not panic.
	if _, err := analysis.Run(analysis.All(), pkgs); err != nil {
		t.Fatalf("Run over partial package: %v", err)
	}
}

func TestLoadNoGoFiles(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":           "module example.com/empty\n\ngo 1.22\n",
		"docs/README.txt":  "nothing to compile here\n",
		"main.go":          "package main\n\nfunc main() {}\n",
		"docs/placeholder": "",
	})
	t.Chdir(dir)

	// Naming the no-Go-files directory explicitly must yield a reported
	// package, not an abort: go list -e flags it, the loader keeps it.
	pkgs, err := analysis.Load("./docs")
	if err != nil {
		t.Fatalf("Load on a no-Go-files directory must report, not fail: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.LoadErrors) == 0 {
		t.Fatal("no LoadErrors on a directory without Go files")
	}
	if len(pkg.Files) != 0 {
		t.Errorf("got %d files, want 0", len(pkg.Files))
	}
	if _, err := analysis.Run(analysis.All(), pkgs); err != nil {
		t.Fatalf("Run over an empty package: %v", err)
	}
}

func TestLoadVendoredDeps(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com/vend\n\ngo 1.22\n\nrequire example.com/dep v1.0.0\n",
		"vendor/modules.txt": "# example.com/dep v1.0.0\n" +
			"## explicit; go 1.22\n" +
			"example.com/dep\n",
		"vendor/example.com/dep/dep.go": "package dep\n\nfunc Answer() int { return 42 }\n",
		"main.go": "package main\n\n" +
			"import \"example.com/dep\"\n\n" +
			"func main() { _ = dep.Answer() }\n",
	})
	t.Chdir(dir)

	pkgs, err := analysis.Load("./...")
	if err != nil {
		t.Fatalf("Load with a vendor directory: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d target packages, want 1 (vendored deps are deps, not targets)", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.LoadErrors) != 0 || len(pkg.TypeErrors) != 0 {
		t.Fatalf("vendored import did not resolve: load=%v type=%v", pkg.LoadErrors, pkg.TypeErrors)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("main") == nil {
		t.Fatal("package did not type-check against its vendored dependency")
	}
	if _, err := analysis.Run(analysis.All(), pkgs); err != nil {
		t.Fatalf("Run over vendored module: %v", err)
	}
}

func TestLoadTestsVariants(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com/tested\n\ngo 1.22\n",
		"lib.go": "package tested\n\nfunc Double(n int) int { return n * 2 }\n",
		"lib_internal_test.go": "package tested\n\n" +
			"import \"testing\"\n\n" +
			"func TestDouble(t *testing.T) { _ = Double(2) }\n",
		"lib_external_test.go": "package tested_test\n\n" +
			"import (\n\t\"testing\"\n\n\t\"example.com/tested\"\n)\n\n" +
			"func TestDoubleExt(t *testing.T) { _ = tested.Double(3) }\n",
	})
	t.Chdir(dir)

	pkgs, err := analysis.LoadTests("./...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	// The in-package test variant subsumes the plain package; the
	// external _test package is its own target; the synthetic test main
	// is skipped.
	byPath := make(map[string]*analysis.Package)
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	variant := byPath["example.com/tested [example.com/tested.test]"]
	if variant == nil {
		t.Fatalf("no in-package test variant in %v", paths)
	}
	if byPath["example.com/tested"] != nil {
		t.Errorf("plain package listed alongside its test variant: %v", paths)
	}
	if byPath["example.com/tested_test [example.com/tested.test]"] == nil {
		t.Errorf("external test package missing from %v", paths)
	}
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, ".test") {
			t.Errorf("synthetic test main %s leaked into targets", p.Path)
		}
	}
	if got := variant.PkgPath(); got != "example.com/tested" {
		t.Errorf("variant PkgPath() = %q, want the bracket-stripped path", got)
	}
	names := make(map[string]bool)
	for _, f := range variant.Files {
		names[filepath.Base(variant.Fset.Position(f.Pos()).Filename)] = true
	}
	if !names["lib.go"] || !names["lib_internal_test.go"] {
		t.Errorf("variant files = %v; want production and _test.go sources together", names)
	}
}

func TestLoadDependencyOrder(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":       "module example.com/order\n\ngo 1.22\n",
		"top/top.go":   "package top\n\nimport \"example.com/order/base\"\n\nfunc Use() int { return base.N }\n",
		"base/base.go": "package base\n\nconst N = 7\n",
	})
	t.Chdir(dir)

	pkgs, err := analysis.Load("./top", "./base")
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, p := range pkgs {
		pos[p.PkgPath()] = i
	}
	if pos["example.com/order/base"] > pos["example.com/order/top"] {
		t.Errorf("base sorted after its importer top: %v", pkgs)
	}
}

// TestVetToolDegenerateInputs drives RunVetTool the way cmd/go does,
// but with the inputs broken in each of the ways a vet run can break.
func TestVetToolDegenerateInputs(t *testing.T) {
	writeCfg := func(t *testing.T, cfg *analysis.VetConfig) string {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "vet.cfg")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("missing config", func(t *testing.T) {
		if code := analysis.RunVetTool(filepath.Join(t.TempDir(), "absent.cfg"), analysis.All()); code != 1 {
			t.Errorf("exit code = %d, want 1", code)
		}
	})

	t.Run("malformed config", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "vet.cfg")
		if err := os.WriteFile(path, []byte("{not json"), 0o666); err != nil {
			t.Fatal(err)
		}
		if code := analysis.RunVetTool(path, analysis.All()); code != 1 {
			t.Errorf("exit code = %d, want 1", code)
		}
	})

	t.Run("syntax error honors SucceedOnTypecheckFailure", func(t *testing.T) {
		dir := t.TempDir()
		writeTree(t, dir, map[string]string{
			"bad.go": "package broken\n\nfunc Oops() {\n\tif {\n}\n",
		})
		for _, succeed := range []bool{true, false} {
			vetx := filepath.Join(t.TempDir(), "out.vetx")
			cfg := &analysis.VetConfig{
				ImportPath:                "example.com/broken",
				Dir:                       dir,
				GoFiles:                   []string{filepath.Join(dir, "bad.go")},
				VetxOutput:                vetx,
				SucceedOnTypecheckFailure: succeed,
			}
			want := 1
			if succeed {
				want = 0
			}
			if code := analysis.RunVetTool(writeCfg(t, cfg), analysis.All()); code != want {
				t.Errorf("SucceedOnTypecheckFailure=%v: exit code = %d, want %d", succeed, code, want)
			}
			// The go command requires the facts file regardless.
			if _, err := os.Stat(vetx); err != nil {
				t.Errorf("SucceedOnTypecheckFailure=%v: facts file not written: %v", succeed, err)
			}
		}
	})

	t.Run("no Go files", func(t *testing.T) {
		vetx := filepath.Join(t.TempDir(), "out.vetx")
		cfg := &analysis.VetConfig{
			ImportPath: "example.com/empty",
			VetxOutput: vetx,
		}
		if code := analysis.RunVetTool(writeCfg(t, cfg), analysis.All()); code != 0 {
			t.Errorf("exit code = %d, want 0 for an empty unit", code)
		}
		if _, err := os.Stat(vetx); err != nil {
			t.Errorf("facts file not written for empty unit: %v", err)
		}
	})

	t.Run("corrupt dependency facts tolerated", func(t *testing.T) {
		dir := t.TempDir()
		writeTree(t, dir, map[string]string{
			"ok.go": "package ok\n\nfunc Fine() int { return 1 }\n",
		})
		badVetx := filepath.Join(dir, "dep.vetx")
		if err := os.WriteFile(badVetx, []byte("\x00garbage"), 0o666); err != nil {
			t.Fatal(err)
		}
		cfg := &analysis.VetConfig{
			ImportPath:  "example.com/ok",
			Dir:         dir,
			GoFiles:     []string{filepath.Join(dir, "ok.go")},
			PackageVetx: map[string]string{"example.com/dep": badVetx},
			VetxOutput:  filepath.Join(t.TempDir(), "out.vetx"),
		}
		if code := analysis.RunVetTool(writeCfg(t, cfg), analysis.All()); code != 0 {
			t.Errorf("exit code = %d, want 0 (bad fact files degrade precision, not the run)", code)
		}
	})
}
