// Package analysis is a self-contained static-analysis framework plus
// the Whirlpool-specific analyzers built on it. It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// implemented entirely on the standard library's go/ast and go/types so
// the module stays dependency-free.
//
// The analyzers enforce the conventions Whirlpool's correctness rests
// on: mutex-guarded struct fields only touched under the lock
// (lockguard), no raw float equality between scores (floatscore), no
// fire-and-forget goroutines (goroutineleak), and prompt cancellation
// polling in unbounded engine loops (ctxpoll). Deliberate exceptions
// are annotated in source with `// +whirllint:<tag>` lines in the doc
// comment of the enclosing function; each analyzer documents the tag it
// honours.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// command line.
	Name string
	// Doc is the analyzer's help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	facts *FactStore
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position. Analyzer errors (not findings) abort.
// Packages are visited in the order given; Load returns them in
// dependency order, so facts exported while analyzing a package are
// visible to the passes over its importers.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return RunWithFacts(analyzers, pkgs, NewFactStore())
}

// RunWithFacts is Run against a caller-supplied fact store, which may
// be pre-seeded with facts imported from earlier runs (the vet-tool
// protocol seeds it from dependency .vetx files) and afterwards holds
// every fact the analyzers exported.
func RunWithFacts(analyzers []*Analyzer, pkgs []*Package, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
				facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// annotationPrefix introduces a lint annotation inside a doc comment:
// `// +whirllint:locked`, `// +whirllint:exactscore`, ...
const annotationPrefix = "+whirllint:"

// hasAnnotation reports whether the function declaration carries the
// given whirllint annotation (e.g. tag "locked") in its doc comment.
func hasAnnotation(fn *ast.FuncDecl, tag string) bool {
	if fn == nil {
		return false
	}
	ok, _ := commentAnnotation(fn.Doc, tag)
	return ok
}

// commentAnnotation scans a comment group for `+whirllint:<tag>` and
// returns whether it was found plus any trailing justification text on
// the same line (`// +whirllint:seqlocked readers use atomic loads`).
func commentAnnotation(doc *ast.CommentGroup, tag string) (found bool, justification string) {
	if doc == nil {
		return false, ""
	}
	want := annotationPrefix + tag
	for _, c := range doc.List {
		line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if line == want {
			return true, ""
		}
		if rest, ok := strings.CutPrefix(line, want+" "); ok {
			return true, strings.TrimSpace(rest)
		}
	}
	return false, ""
}

// fieldAnnotation scans a struct field's doc comment and trailing
// same-line comment for the given annotation.
func fieldAnnotation(field *ast.Field, tag string) (found bool, justification string) {
	for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if ok, j := commentAnnotation(doc, tag); ok {
			return ok, j
		}
	}
	return false, ""
}

// funcAnnotation is commentAnnotation on a function's doc comment.
func funcAnnotation(fn *ast.FuncDecl, tag string) (found bool, justification string) {
	if fn == nil {
		return false, ""
	}
	return commentAnnotation(fn.Doc, tag)
}

// hasTypeAnnotation reports whether the type declaration carries the
// given whirllint annotation. The doc comment may sit on the TypeSpec
// (grouped `type (...)` declarations) or on the enclosing GenDecl (the
// common single-type form); both are honoured.
func hasTypeAnnotation(gd *ast.GenDecl, ts *ast.TypeSpec, tag string) bool {
	want := annotationPrefix + tag
	for _, doc := range []*ast.CommentGroup{ts.Doc, gd.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == want {
				return true
			}
		}
	}
	return false
}

// funcDecls yields every function declaration in the pass's files.
func funcDecls(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// isNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
