package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatScore forbids raw ==, !=, <= and >= between score-typed float64
// expressions. Whirlpool's pruning bound (Section 5.2.2) compares
// accumulated floating-point sums, so exact comparisons silently turn
// into tie-break coin flips; the sanctioned idiom absorbs the noise
// with an epsilon, as prunable does in internal/core/run.go:
//
//	m.maxFinal <= t+pruneEps
//
// An expression is score-typed when it is float64 and mentions an
// identifier matching score/contrib/threshold/maxFinal. A comparison is
// exempt when either side mentions an eps/epsilon identifier (it is the
// idiom), or when the enclosing function is annotated
//
//	// +whirllint:exactscore
//
// for the few places — deterministic sort tie-breaks — where exact
// comparison is the point.
var FloatScore = &Analyzer{
	Name: "floatscore",
	Doc:  "report raw ==/!=/<=/>= between score-typed float64 expressions (use the pruneEps idiom)",
	Run:  runFloatScore,
}

var floatScoreOps = map[token.Token]bool{
	token.EQL: true, // ==
	token.NEQ: true, // !=
	token.LEQ: true, // <=
	token.GEQ: true, // >=
}

var scoreNames = []string{"score", "contrib", "threshold", "maxfinal"}

func runFloatScore(pass *Pass) error {
	for _, fn := range funcDecls(pass) {
		if fn.Body == nil || hasAnnotation(fn, "exactscore") {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || !floatScoreOps[cmp.Op] {
				return true
			}
			if !isFloat64(pass, cmp.X) || !isFloat64(pass, cmp.Y) {
				return true
			}
			scoreish := mentionsAny(cmp.X, scoreNames) || mentionsAny(cmp.Y, scoreNames)
			epsish := mentionsAny(cmp.X, []string{"eps"}) || mentionsAny(cmp.Y, []string{"eps"})
			if scoreish && !epsish {
				pass.Reportf(cmp.OpPos,
					"raw %s between float64 scores; absorb float noise with the pruneEps idiom (internal/core/run.go) or annotate the function %sexactscore for deliberate tie-breaks",
					cmp.Op, annotationPrefix)
			}
			return true
		})
	}
	return nil
}

func isFloat64(pass *Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Float64
}

// mentionsAny reports whether any identifier (or field selector) inside
// expr contains one of the given lower-case substrings.
func mentionsAny(expr ast.Expr, substrings []string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		var name string
		switch n := n.(type) {
		case *ast.Ident:
			name = n.Name
		default:
			return true
		}
		lower := strings.ToLower(name)
		for _, s := range substrings {
			if strings.Contains(lower, s) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
