package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// A Fact is a property of a package-level object that an analyzer
// derives while analyzing the object's defining package and that
// analyzers of downstream packages import — e.g. hotalloc's "this
// function allocates". Facts make the suite interprocedural across the
// dependency graph without re-analyzing callee bodies at every call
// site: Run visits packages in dependency order (see sortByDeps), so by
// the time a caller is analyzed, its callees' facts are in the store.
//
// Fact types must be pointers to JSON-serializable structs and must be
// registered with RegisterFactType so the vet-tool protocol
// (unitchecker.go) can round-trip them through .vetx files.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// factRegistry maps a fact type's registered name to its concrete
// struct type, for decoding serialized fact files.
var (
	factMu       sync.Mutex
	factRegistry = map[string]reflect.Type{}
)

// RegisterFactType makes a fact type known to the (de)serializer. The
// example must be a non-nil pointer to a struct; its type name is the
// wire tag. Registration is idempotent.
func RegisterFactType(example Fact) {
	t := reflect.TypeOf(example)
	if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("RegisterFactType: %T is not a pointer to struct", example))
	}
	factMu.Lock()
	defer factMu.Unlock()
	factRegistry[t.Elem().Name()] = t.Elem()
}

// factKey identifies one object fact: which analyzer derived it and
// the canonical key of the object it describes.
type factKey struct {
	analyzer string
	object   string
}

// FactStore holds the facts exported so far in a Run (or imported from
// serialized .vetx files in vet-tool mode). One store spans all
// packages of a Run; keys embed the defining package's path.
type FactStore struct {
	mu sync.Mutex
	m  map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

// ObjectKey returns the canonical cross-package key of a package-level
// object (function, method, type, or var): the defining package's
// import path (test-variant brackets stripped, so a fact exported while
// analyzing "p [p.test]" is visible to importers of "p") joined with
// the receiver-qualified name. Objects without a package (builtins,
// locals promoted by the type checker) get "" — no fact identity.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	path := strippedPath(obj.Pkg().Path())
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return path + ".(" + named.Obj().Name() + ")." + fn.Name()
			}
			return "" // method on an unnamed receiver: no stable key
		}
	}
	return path + "." + obj.Name()
}

func (s *FactStore) export(analyzer string, obj types.Object, fact Fact) {
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[factKey{analyzer, key}] = fact
}

func (s *FactStore) importFact(analyzer string, obj types.Object, out Fact) bool {
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	s.mu.Lock()
	got, ok := s.m[factKey{analyzer, key}]
	s.mu.Unlock()
	if !ok || reflect.TypeOf(got) != reflect.TypeOf(out) {
		return false
	}
	reflect.ValueOf(out).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// serializedFact is the wire form of one fact in a .vetx file.
type serializedFact struct {
	Analyzer string          `json:"analyzer"`
	Object   string          `json:"object"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// Encode serializes the store's facts whose object keys belong to the
// given package path (brackets stripped); pkgPath "" encodes all facts.
// The output is deterministic.
func (s *FactStore) Encode(pkgPath string) ([]byte, error) {
	pkgPath = strippedPath(pkgPath)
	s.mu.Lock()
	var out []serializedFact
	for k, f := range s.m {
		if pkgPath != "" && !strings.HasPrefix(k.object, pkgPath+".") {
			continue
		}
		data, err := json.Marshal(f)
		if err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("encoding fact %v: %w", k, err)
		}
		out = append(out, serializedFact{
			Analyzer: k.analyzer,
			Object:   k.object,
			Type:     reflect.TypeOf(f).Elem().Name(),
			Data:     data,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return json.Marshal(out)
}

// Decode merges facts serialized by Encode into the store. Facts whose
// type was never registered in this process are skipped (a newer tool
// version may know more fact types than an older one).
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in []serializedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decoding fact file: %w", err)
	}
	factMu.Lock()
	reg := make(map[string]reflect.Type, len(factRegistry))
	for k, v := range factRegistry {
		reg[k] = v
	}
	factMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sf := range in {
		t, ok := reg[sf.Type]
		if !ok {
			continue
		}
		v := reflect.New(t)
		if err := json.Unmarshal(sf.Data, v.Interface()); err != nil {
			return fmt.Errorf("decoding fact %s for %s: %w", sf.Type, sf.Object, err)
		}
		fact, ok := v.Interface().(Fact)
		if !ok {
			continue
		}
		s.m[factKey{sf.Analyzer, sf.Object}] = fact
	}
	return nil
}

// ExportObjectFact records a fact about a package-level object for
// downstream passes. The fact is keyed by the analyzer, so two
// analyzers' facts about one object never collide.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.export(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies the fact of p's analyzer about obj into out
// (a non-nil pointer of the fact's concrete type), reporting whether
// one was found. Facts about objects in the current package are visible
// as soon as they are exported; facts about imported packages were
// recorded when those packages were analyzed earlier in the Run.
func (p *Pass) ImportObjectFact(obj types.Object, out Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.importFact(p.Analyzer.Name, obj, out)
}

// An ObjectFact pairs a fact with the canonical key (ObjectKey) of the
// object it describes.
type ObjectFact struct {
	Object string
	Fact   Fact
}

// AllObjectFacts returns every fact of p's analyzer currently in the
// store, sorted by object key — in standalone mode all facts exported
// by the packages analyzed so far, in vet-tool mode the facts imported
// from dependency .vetx files plus the current unit's. Mirrors
// golang.org/x/tools' Pass.AllObjectFacts; lockorder uses it to see
// the whole lock-acquisition graph, not just the facts of functions it
// happens to reference.
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.allFacts(p.Analyzer.Name)
}

func (s *FactStore) allFacts(analyzer string) []ObjectFact {
	s.mu.Lock()
	out := make([]ObjectFact, 0, len(s.m))
	for k, f := range s.m {
		if k.analyzer == analyzer {
			out = append(out, ObjectFact{Object: k.object, Fact: f})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Object < out[j].Object })
	return out
}
